#!/usr/bin/env sh
# The regression sentinel's quick deterministic cell set.
#
#   tools/regression_cells.sh <arinoc_sim> write <store-dir>   # (re-)anchor
#   tools/regression_cells.sh <arinoc_sim> check <store-dir>   # gate
#
# Four cells spanning the axes the sentinel watches: scheme (baseline vs
# ARI), workload intensity (bfs saturating, hotspot mid, matrixMul light),
# and fabric (mesh/torus/cmesh). Small enough to finish in seconds, long
# enough past warmup that every tracked metric is exercised. The simulator
# is deterministic, so `check` against the committed store must pass
# byte-for-byte on an unchanged tree — CI runs exactly this script and
# fails on exit 7 (see .github/workflows/ci.yml, docs/observability.md).
#
# Any change to these flags changes the canonical-config hash and makes the
# committed anchors unreachable: re-run `write` and commit the new store in
# the same change, with the reason in the commit message.
set -eu

if [ "$#" -lt 3 ]; then
  echo "usage: $0 <arinoc_sim> write|check <store-dir>" >&2
  exit 2
fi
SIM=$1
MODE=$2
STORE=$3
case "$MODE" in
  write) FLAG=--baseline-write ;;
  check) FLAG=--baseline-check ;;
  *) echo "unknown mode '$MODE' (want write|check)" >&2; exit 2 ;;
esac

COMMON="--mesh 4 --mcs 4 --cycles 2000 --warmup 500 --no-cache"

status=0
run_cell() {
  # shellcheck disable=SC2086  # COMMON is intentionally word-split.
  "$SIM" $COMMON "$@" "$FLAG" "$STORE" >/dev/null || status=$?
}

run_cell --benchmark bfs       --scheme XY-Baseline
run_cell --benchmark bfs       --scheme Ada-ARI
run_cell --benchmark hotspot   --scheme Ada-ARI      --topology torus
run_cell --benchmark matrixMul --scheme Ada-Baseline --topology cmesh:4

exit "$status"
