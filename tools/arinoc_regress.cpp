// arinoc_regress — the regression-sentinel CLI.
//
//   arinoc_regress check --store <dir> --candidate <dir|file>
//       [--ignore-improvements] [--default-tol <x>] [--tol <metric>=<x>]
//       [--all]
//
//     Compares candidate golden-baseline entries (written by
//     `arinoc_sim --baseline-write`) against the anchored store. The
//     comparison is noise-aware and direction-aware: each metric is judged
//     by its MetricPolicy tolerance and goodness direction (IPC falling is
//     a regression, IPC jumping past tolerance is an *improvement* — which
//     still fails unless --ignore-improvements, because unexplained 30%
//     jumps deserve the same scrutiny as drops). A candidate cell with no
//     anchor in the store is a configuration error: anchor it first.
//
//       --ignore-improvements   good-direction out-of-tolerance moves pass
//       --default-tol <x>       override every metric's relative tolerance
//       --tol <metric>=<x>      override one metric's tolerance
//       --all                   print in-tolerance rows too
//
//   arinoc_regress trend --out-html <file> [--out-json <file>]
//       <snapshot.json>...
//
//     Folds a history of stamped BENCH_*.json snapshots (oldest first; the
//     command-line order is the time axis) into "arinoc-trend-v1" series
//     and renders a self-contained HTML sparkline dashboard. Documents
//     without the "arinoc-bench-v1" stamp are rejected with a clear error:
//     trending a foreign or stale artifact against a fresh one is how
//     silent regressions hide.
//
//   Exit codes: 0 ok, 1 runtime error, 2 usage/config error,
//               7 regression detected (check).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/regress/baseline.hpp"
#include "obs/regress/compare.hpp"
#include "obs/regress/trend.hpp"

using namespace arinoc::obs::regress;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: arinoc_regress check --store <dir> --candidate <dir|file>\n"
      "           [--ignore-improvements] [--default-tol <x>]\n"
      "           [--tol <metric>=<x>] [--all]\n"
      "       arinoc_regress trend --out-html <file> [--out-json <file>]\n"
      "           <snapshot.json>...\n");
  return 2;
}

std::string slurp(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream os;
  os << in.rdbuf();
  *ok = in.good() || in.eof();
  return os.str();
}

/// The .json entry files under `path` (sorted), or `path` itself when it
/// names a file.
std::vector<std::string> entry_files(const std::string& path, bool* ok) {
  *ok = true;
  std::error_code ec;
  if (std::filesystem::is_regular_file(path, ec)) return {path};
  if (!std::filesystem::is_directory(path, ec)) {
    std::fprintf(stderr, "error: '%s' is not a file or directory\n",
                 path.c_str());
    *ok = false;
    return {};
  }
  std::vector<std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(path, ec)) {
    if (e.path().extension() == ".json") files.push_back(e.path().string());
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot list '%s': %s\n", path.c_str(),
                 ec.message().c_str());
    *ok = false;
    return {};
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_check(int argc, char** argv) {
  std::string store, candidate;
  CompareOptions opts;
  bool all = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--store") {
      store = value();
    } else if (arg == "--candidate") {
      candidate = value();
    } else if (arg == "--ignore-improvements") {
      opts.ignore_improvements = true;
    } else if (arg == "--default-tol") {
      opts.default_tol = std::strtod(value(), nullptr);
      if (opts.default_tol < 0.0) {
        std::fprintf(stderr, "--default-tol requires a value >= 0\n");
        return 2;
      }
    } else if (arg == "--tol") {
      const std::string spec = value();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "malformed --tol '%s' (want <metric>=<x>)\n",
                     spec.c_str());
        return 2;
      }
      opts.tol_override[spec.substr(0, eq)] =
          std::strtod(spec.c_str() + eq + 1, nullptr);
    } else if (arg == "--all") {
      all = true;
    } else {
      std::fprintf(stderr, "unknown check option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (store.empty() || candidate.empty()) return usage();

  bool ok = true;
  const std::vector<std::string> files = entry_files(candidate, &ok);
  if (!ok) return 2;
  if (files.empty()) {
    std::fprintf(stderr, "error: no candidate entries under '%s'\n",
                 candidate.c_str());
    return 2;
  }

  int worst = 0;
  std::size_t regressed_cells = 0;
  for (const std::string& file : files) {
    bool read_ok = true;
    const std::string text = slurp(file, &read_ok);
    if (!read_ok) {
      std::fprintf(stderr, "error: cannot read '%s'\n", file.c_str());
      return 1;
    }
    BaselineEntry cand;
    try {
      cand = parse_baseline_entry(text, file);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    const std::string cell = cand.provenance.benchmark + "/" +
                             cand.provenance.scheme + "/" +
                             cand.provenance.fabric;
    BaselineEntry anchored;
    try {
      anchored = load_baseline_entry(store, cand);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", cell.c_str(), e.what());
      worst = std::max(worst, 2);
      continue;
    }
    const CompareReport report = compare_entries(anchored, cand, opts);
    if (report.failed) {
      ++regressed_cells;
      std::printf("REGRESSED %s\n%s", cell.c_str(),
                  report.text(all).c_str());
      worst = std::max(worst, 7);
    } else {
      std::printf("ok        %s  (%zu metrics, %zu improved, %zu new)\n",
                  cell.c_str(), report.deltas.size(),
                  report.count(Verdict::kImproved),
                  report.count(Verdict::kNew));
      if (all) std::printf("%s", report.text(true).c_str());
    }
  }
  if (worst == 7) {
    std::fprintf(stderr, "regression detected in %zu/%zu cell(s)\n",
                 regressed_cells, files.size());
  }
  return worst;
}

int run_trend(int argc, char** argv) {
  std::string out_html, out_json;
  std::vector<std::string> snapshots;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out-html") {
      out_html = value();
    } else if (arg == "--out-json") {
      out_json = value();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown trend option '%s'\n", arg.c_str());
      return 2;
    } else {
      snapshots.push_back(arg);
    }
  }
  if (snapshots.empty() || (out_html.empty() && out_json.empty())) {
    return usage();
  }
  for (const std::string* out : {&out_html, &out_json}) {
    if (!out->empty() && !parent_dir_exists(*out)) {
      std::fprintf(stderr,
                   "error: parent directory '%s' of '%s' does not exist\n",
                   parent_dir_of(*out).c_str(), out->c_str());
      return 2;
    }
  }

  TrendBuilder trend;
  for (const std::string& path : snapshots) {
    bool read_ok = true;
    const std::string text = slurp(path, &read_ok);
    if (!read_ok) {
      std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
      return 1;
    }
    try {
      trend.add_snapshot_text(
          std::filesystem::path(path).filename().string(), text);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  for (const auto& [path, body] :
       {std::pair<std::string, std::string>{out_json, trend.to_json()},
        {out_html, trend_html_document(trend)}}) {
    if (path.empty()) continue;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) out << body;
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
      return 1;
    }
  }
  std::printf("trend: %zu snapshot(s), %zu series\n",
              trend.snapshots().size(), trend.series().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "check") return run_check(argc - 2, argv + 2);
  if (cmd == "trend") return run_trend(argc - 2, argv + 2);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return usage();
}
