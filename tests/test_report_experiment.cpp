// Table formatting and the experiment driver helpers.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace arinoc {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  const std::string s = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Every line is padded to the same width (aligned columns).
  std::vector<std::size_t> lengths;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    lengths.push_back(nl - pos);
    pos = nl + 1;
  }
  for (std::size_t len : lengths) EXPECT_EQ(len, lengths[0]);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
}

TEST(TextTable, HeaderFirst) {
  TextTable t({"h1", "h2"});
  t.add_row({"r", "s"});
  const std::string s = t.to_string();
  EXPECT_LT(s.find("h1"), s.find("r"));
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(FmtPct, Percentage) {
  EXPECT_EQ(fmt_pct(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_pct(0.123, 0), "12%");
}

TEST(Experiment, BaseConfigIsTable1) {
  const Config cfg = make_base_config();
  EXPECT_EQ(cfg.num_ccs(), 28u);
  EXPECT_EQ(cfg.num_mcs, 8u);
  EXPECT_EQ(cfg.num_vcs, 4u);
  EXPECT_EQ(cfg.validate(), "");
}

TEST(Experiment, EnvOverridesRunLength) {
  setenv("ARINOC_RUN_CYCLES", "1234", 1);
  setenv("ARINOC_WARMUP_CYCLES", "56", 1);
  const Config cfg = apply_env_overrides(Config{});
  EXPECT_EQ(cfg.run_cycles, 1234u);
  EXPECT_EQ(cfg.warmup_cycles, 56u);
  unsetenv("ARINOC_RUN_CYCLES");
  unsetenv("ARINOC_WARMUP_CYCLES");
}

TEST(Experiment, RunSchemeProducesMetrics) {
  Config cfg;
  cfg.warmup_cycles = 200;
  cfg.run_cycles = 800;
  const Metrics m = run_scheme(cfg, Scheme::kXYBaseline, "hotspot");
  EXPECT_EQ(m.cycles, 800u);
  EXPECT_GT(m.ipc, 0.0);
}

TEST(Experiment, TweakHookApplies) {
  Config cfg;
  cfg.warmup_cycles = 200;
  cfg.run_cycles = 600;
  bool tweaked = false;
  run_scheme(cfg, Scheme::kXYBaseline, "hotspot", [&](Config& c) {
    tweaked = true;
    EXPECT_EQ(c.routing, RoutingAlgo::kXY);  // Preset applied first.
  });
  EXPECT_TRUE(tweaked);
}

TEST(Experiment, RunSuitePreservesOrder) {
  Config cfg;
  cfg.warmup_cycles = 100;
  cfg.run_cycles = 400;
  const auto results =
      run_suite(cfg, Scheme::kXYBaseline, {"hotspot", "matrixMul"});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].benchmark, "hotspot");
  EXPECT_EQ(results[1].benchmark, "matrixMul");
  EXPECT_EQ(results[0].scheme, Scheme::kXYBaseline);
}

}  // namespace
}  // namespace arinoc
