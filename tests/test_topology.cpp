// Mesh topology: coordinates, neighbours, distances, MC placement.
#include <gtest/gtest.h>

#include <set>

#include "noc/topology.hpp"

namespace arinoc {
namespace {

TEST(Mesh, CoordinateRoundTrip) {
  Mesh m(6, 6, 8);
  for (NodeId n = 0; n < 36; ++n) {
    EXPECT_EQ(m.node_at(m.x_of(n), m.y_of(n)), n);
  }
}

TEST(Mesh, NeighborSymmetry) {
  Mesh m(6, 6, 8);
  for (NodeId n = 0; n < 36; ++n) {
    for (int d = 0; d < kNumDirections; ++d) {
      const NodeId nb = m.neighbor(n, d);
      if (nb == kInvalidNode) continue;
      EXPECT_EQ(m.neighbor(nb, opposite(d)), n);
    }
  }
}

TEST(Mesh, EdgeNodesHaveNoOutsideNeighbors) {
  Mesh m(4, 4, 4);
  EXPECT_EQ(m.neighbor(m.node_at(0, 0), kNorth), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.node_at(0, 0), kWest), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.node_at(3, 3), kSouth), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.node_at(3, 3), kEast), kInvalidNode);
}

TEST(Mesh, HopsIsManhattanDistance) {
  Mesh m(6, 6, 8);
  EXPECT_EQ(m.hops(m.node_at(0, 0), m.node_at(5, 5)), 10u);
  EXPECT_EQ(m.hops(m.node_at(2, 3), m.node_at(2, 3)), 0u);
  EXPECT_EQ(m.hops(m.node_at(1, 1), m.node_at(4, 1)), 3u);
}

TEST(Mesh, McCountMatchesRequest) {
  Mesh m(6, 6, 8);
  EXPECT_EQ(m.mc_nodes().size(), 8u);
  EXPECT_EQ(m.cc_nodes().size(), 28u);
}

TEST(Mesh, McAndCcPartitionNodes) {
  Mesh m(6, 6, 8);
  std::set<NodeId> all;
  for (NodeId n : m.mc_nodes()) {
    EXPECT_TRUE(m.is_mc(n));
    all.insert(n);
  }
  for (NodeId n : m.cc_nodes()) {
    EXPECT_FALSE(m.is_mc(n));
    all.insert(n);
  }
  EXPECT_EQ(all.size(), 36u);
}

TEST(Mesh, DiamondPlacementSpreadsMcs) {
  // The diamond-style placement must not cluster MCs: minimum pairwise
  // distance of at least 2 hops in a 6x6/8-MC mesh.
  Mesh m(6, 6, 8);
  const auto& mcs = m.mc_nodes();
  for (std::size_t i = 0; i < mcs.size(); ++i) {
    for (std::size_t j = i + 1; j < mcs.size(); ++j) {
      EXPECT_GE(m.hops(mcs[i], mcs[j]), 2u)
          << "MCs " << mcs[i] << " and " << mcs[j] << " are adjacent";
    }
  }
}

TEST(Mesh, McsAvoidCorners) {
  Mesh m(6, 6, 8);
  for (NodeId corner : {m.node_at(0, 0), m.node_at(5, 0), m.node_at(0, 5),
                        m.node_at(5, 5)}) {
    EXPECT_FALSE(m.is_mc(corner)) << "corner node " << corner << " is an MC";
  }
}

TEST(Mesh, BisectionLinkCount) {
  // 6x6 mesh: 12 uni-directional links cross the vertical bisection —
  // exactly the paper's 192 GB/s bisection-bandwidth calculation (§3).
  Mesh m(6, 6, 8);
  EXPECT_EQ(m.bisection_links(), 12u);
}

TEST(Mesh, PlacementIsDeterministic) {
  Mesh a(6, 6, 8), b(6, 6, 8);
  EXPECT_EQ(a.mc_nodes(), b.mc_nodes());
}

class MeshSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MeshSizes, PlacementWorksAcrossScalabilitySizes) {
  const std::uint32_t k = GetParam();
  Mesh m(k, k, 8);
  EXPECT_EQ(m.mc_nodes().size(), 8u);
  EXPECT_EQ(m.cc_nodes().size(), k * k - 8u);
  // Every MC has full mesh connectivity to at least 2 neighbours.
  for (NodeId mc : m.mc_nodes()) {
    int degree = 0;
    for (int d = 0; d < kNumDirections; ++d) {
      if (m.neighbor(mc, d) != kInvalidNode) ++degree;
    }
    EXPECT_GE(degree, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(ScalabilitySweep, MeshSizes,
                         ::testing::Values(4u, 6u, 8u));

TEST(McPlacement, TopBottomSitsOnEdgeRows) {
  Mesh m(6, 6, 8, McPlacement::kTopBottom);
  EXPECT_EQ(m.mc_nodes().size(), 8u);
  for (NodeId mc : m.mc_nodes()) {
    EXPECT_TRUE(m.y_of(mc) == 0 || m.y_of(mc) == 5) << "MC at row "
                                                    << m.y_of(mc);
  }
}

TEST(McPlacement, ColumnClustersInCenter) {
  Mesh m(6, 6, 8, McPlacement::kColumn);
  EXPECT_EQ(m.mc_nodes().size(), 8u);
  for (NodeId mc : m.mc_nodes()) {
    EXPECT_TRUE(m.x_of(mc) == 2 || m.x_of(mc) == 3);
  }
}

TEST(McPlacement, DiamondSpreadsFartherThanColumn) {
  auto mean_pairwise = [](const Mesh& m) {
    double sum = 0;
    int n = 0;
    const auto& mcs = m.mc_nodes();
    for (std::size_t i = 0; i < mcs.size(); ++i) {
      for (std::size_t j = i + 1; j < mcs.size(); ++j) {
        sum += m.hops(mcs[i], mcs[j]);
        ++n;
      }
    }
    return sum / n;
  };
  Mesh diamond(6, 6, 8, McPlacement::kDiamond);
  Mesh column(6, 6, 8, McPlacement::kColumn);
  EXPECT_GT(mean_pairwise(diamond), mean_pairwise(column));
}

TEST(McPlacement, NamesStable) {
  EXPECT_STREQ(placement_name(McPlacement::kDiamond), "diamond");
  EXPECT_STREQ(placement_name(McPlacement::kTopBottom), "top-bottom");
  EXPECT_STREQ(placement_name(McPlacement::kColumn), "column");
}

TEST(Direction, OppositePairs) {
  EXPECT_EQ(opposite(kNorth), kSouth);
  EXPECT_EQ(opposite(kSouth), kNorth);
  EXPECT_EQ(opposite(kEast), kWest);
  EXPECT_EQ(opposite(kWest), kEast);
}

TEST(Direction, NamesAreStable) {
  EXPECT_STREQ(direction_name(kNorth), "N");
  EXPECT_STREQ(direction_name(kLocal), "L");
}

}  // namespace
}  // namespace arinoc
