// Full-system integration: the assembled GPGPU simulator under every
// scheme, conservation properties, determinism, and the paper's headline
// directional effects on a short run.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {
namespace {

Config quick_config() {
  Config cfg;
  cfg.warmup_cycles = 500;
  cfg.run_cycles = 3000;
  return cfg;
}

Metrics quick_run(Scheme scheme, const std::string& bench,
                  bool da2mesh = false) {
  Config cfg = apply_scheme(quick_config(), scheme);
  GpgpuSim sim(cfg, *find_benchmark(bench), da2mesh);
  sim.run_with_warmup();
  return sim.collect();
}

class AllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AllSchemes, RunsAndMakesProgress) {
  const Metrics m = quick_run(GetParam(), "bfs");
  EXPECT_GT(m.ipc, 0.05) << scheme_name(GetParam());
  EXPECT_GT(m.warp_instructions, 100u);
  EXPECT_GT(m.flits_by_type[0] + m.flits_by_type[2], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SchemeSweep, AllSchemes,
    ::testing::Values(Scheme::kRawBaseline, Scheme::kXYBaseline,
                      Scheme::kXYARI, Scheme::kAdaBaseline,
                      Scheme::kAdaMultiPort, Scheme::kAdaARI,
                      Scheme::kAccSupply, Scheme::kAccConsume,
                      Scheme::kAccBothNoPrio),
    [](const auto& info) {
      std::string n = scheme_name(info.param);
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(Integration, DeterministicAcrossRuns) {
  const Metrics a = quick_run(Scheme::kAdaARI, "bfs");
  const Metrics b = quick_run(Scheme::kAdaARI, "bfs");
  EXPECT_EQ(a.warp_instructions, b.warp_instructions);
  EXPECT_EQ(a.mc_stall_cycles, b.mc_stall_cycles);
  EXPECT_EQ(a.flits_by_type, b.flits_by_type);
  EXPECT_DOUBLE_EQ(a.request_latency, b.request_latency);
}

TEST(Integration, SeedChangesTraffic) {
  Config cfg = apply_scheme(quick_config(), Scheme::kAdaBaseline);
  GpgpuSim a(cfg, *find_benchmark("bfs"));
  cfg.seed = 999;
  GpgpuSim b(cfg, *find_benchmark("bfs"));
  a.run_with_warmup();
  b.run_with_warmup();
  EXPECT_NE(a.collect().warp_instructions, b.collect().warp_instructions);
}

TEST(Integration, AriReducesMcStallOnHighSensitivityBenchmark) {
  // The Fig. 12 headline: ARI removes nearly all MC data stalls.
  const Metrics base = quick_run(Scheme::kAdaBaseline, "bfs");
  const Metrics ari = quick_run(Scheme::kAdaARI, "bfs");
  EXPECT_GT(base.mc_stall_cycles, 100u);
  EXPECT_LT(static_cast<double>(ari.mc_stall_cycles),
            0.5 * static_cast<double>(base.mc_stall_cycles));
}

TEST(Integration, AriImprovesIpcOnHighSensitivityBenchmark) {
  const Metrics base = quick_run(Scheme::kAdaBaseline, "bfs");
  const Metrics ari = quick_run(Scheme::kAdaARI, "bfs");
  EXPECT_GT(ari.ipc, base.ipc * 1.05);  // Fig. 11 shape.
}

TEST(Integration, AriReducesReplyLatency) {
  const Metrics base = quick_run(Scheme::kAdaBaseline, "bfs");
  const Metrics ari = quick_run(Scheme::kAdaARI, "bfs");
  EXPECT_LT(ari.reply_latency, base.reply_latency);
}

TEST(Integration, LowSensitivityBenchmarkUnaffected) {
  const Metrics base = quick_run(Scheme::kAdaBaseline, "matrixMul");
  const Metrics ari = quick_run(Scheme::kAdaARI, "matrixMul");
  EXPECT_NEAR(ari.ipc / base.ipc, 1.0, 0.05);
}

TEST(Integration, ReplyNetworkCarriesMostFlits) {
  // Fig. 5: read replies dominate the flit mix.
  const Metrics m = quick_run(Scheme::kXYBaseline, "bfs");
  const double total = static_cast<double>(
      m.flits_by_type[0] + m.flits_by_type[1] + m.flits_by_type[2] +
      m.flits_by_type[3]);
  const double reply = static_cast<double>(m.flits_by_type[2] +
                                           m.flits_by_type[3]);
  EXPECT_GT(reply / total, 0.55);
}

TEST(Integration, InjectionLinksHotterThanInternalLinks) {
  // §3: reply injection-link utilization far above in-network utilization.
  const Metrics m = quick_run(Scheme::kXYBaseline, "bfs");
  EXPECT_GT(m.reply_injection_util, 2.0 * m.reply_internal_util);
}

TEST(Integration, RequestLatencyExceedsReplyLatencyAtBaseline) {
  // Fig. 3: backpressure inflates request latency although congestion is
  // on the reply side.
  const Metrics m = quick_run(Scheme::kXYBaseline, "bfs");
  EXPECT_GT(m.request_latency, m.reply_latency);
}

TEST(Integration, LiveTxnsBoundedByStructuralCapacity) {
  // Conservation: outstanding transactions can never exceed what the
  // structures (MSHRs, queues, network buffers) can hold — no txn leak.
  Config cfg = apply_scheme(quick_config(), Scheme::kAdaARI);
  GpgpuSim sim(cfg, *find_benchmark("hotspot"));
  const std::size_t bound =
      sim.num_cores() * (cfg.mshr_entries + 2 * cfg.ni_queue_flits + 64) +
      sim.num_mcs() * (cfg.mc_request_queue + cfg.dram_queue_depth +
                       cfg.ni_queue_flits + 64);
  for (int k = 0; k < 8; ++k) {
    sim.run(500);
    EXPECT_LE(sim.live_txns(), bound) << "after " << sim.now() << " cycles";
    // Credit-conservation audit: every link's credits + buffered flits +
    // in-flight events must sum to the VC depth at all times.
    EXPECT_EQ(sim.request_net().validate_credit_invariants(), "")
        << "after " << sim.now() << " cycles";
    EXPECT_EQ(sim.reply_net().validate_credit_invariants(), "")
        << "after " << sim.now() << " cycles";
  }
}

TEST(Integration, Da2MeshOverlayRunsAndAriHelps) {
  const Metrics plain = quick_run(Scheme::kAdaBaseline, "bfs", true);
  const Metrics ari = quick_run(Scheme::kAdaARI, "bfs", true);
  EXPECT_GT(plain.ipc, 0.1);
  EXPECT_GE(ari.ipc, plain.ipc);  // Fig. 16 direction.
}

TEST(Integration, MeshSizesRun) {
  for (std::uint32_t k : {4u, 8u}) {
    Config cfg = apply_scheme(quick_config(), Scheme::kAdaARI);
    cfg.mesh_width = cfg.mesh_height = k;
    GpgpuSim sim(cfg, *find_benchmark("bfs"));
    sim.run_with_warmup();
    EXPECT_GT(sim.collect().ipc, 0.05) << k << "x" << k;
  }
}

TEST(Integration, TwoVcConfigurationRuns) {
  Config cfg = apply_scheme(quick_config(), Scheme::kAdaARI);
  cfg.num_vcs = 2;
  cfg.injection_speedup = 2;
  cfg.split_queues = 2;
  ASSERT_EQ(cfg.validate(), "");
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  EXPECT_GT(sim.collect().ipc, 0.05);
}

TEST(Integration, WiderReplyLinksBeatWiderRequestLinks) {
  // The Fig. 4 experiment in miniature: doubling the reply width helps,
  // doubling the request width does not.
  Config cfg = apply_scheme(quick_config(), Scheme::kXYBaseline);
  GpgpuSim base(cfg, *find_benchmark("bfs"));
  base.run_with_warmup();
  Config wreq = cfg;
  wreq.link_width_bits_request = 256;
  GpgpuSim req(wreq, *find_benchmark("bfs"));
  req.run_with_warmup();
  Config wrep = cfg;
  wrep.link_width_bits_reply = 256;
  GpgpuSim rep(wrep, *find_benchmark("bfs"));
  rep.run_with_warmup();
  const double b = base.collect().ipc;
  EXPECT_GT(rep.collect().ipc, b * 1.02);
  EXPECT_LT(req.collect().ipc, rep.collect().ipc);
}

TEST(Integration, MetricsCollectCoherent) {
  const Metrics m = quick_run(Scheme::kAdaARI, "kmeans");
  EXPECT_EQ(m.cycles, 3000u);
  EXPECT_NEAR(m.ipc, static_cast<double>(m.warp_instructions) / 3000.0,
              1e-9);
  EXPECT_GE(m.l1_hit_rate, 0.0);
  EXPECT_LE(m.l1_hit_rate, 1.0);
  EXPECT_GT(m.energy.total_nj(), 0.0);
  EXPECT_GT(m.activity.core_instructions, 0u);
}

}  // namespace
}  // namespace arinoc
