// Serving / overload-robustness layer: pace profiles, admission control,
// the degradation state machine, open-loop clients, and the contract that
// the whole layer is strictly inert when disabled — admission-off runs are
// byte-identical across every scheme no matter how the serving knobs are
// set.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/stats.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "noc/admission.hpp"
#include "workloads/benchmark.hpp"
#include "workloads/pace.hpp"

namespace arinoc {
namespace {

Config serving_config() {
  Config cfg;
  cfg.warmup_cycles = 300;
  cfg.run_cycles = 1500;
  return cfg;
}

// ---------------------------------------------------------------------------
// PaceProfile: built-in generators, spec parsing, pace files.
// ---------------------------------------------------------------------------

TEST(PaceProfile, ConstantSpec) {
  const PaceProfile p = PaceProfile::parse_spec("constant:0.05");
  EXPECT_EQ(p.kind(), PaceKind::kConstant);
  EXPECT_DOUBLE_EQ(p.rate_at(0), 0.05);
  EXPECT_DOUBLE_EQ(p.rate_at(123456), 0.05);
  EXPECT_DOUBLE_EQ(p.rate_at(10, 2.0), 0.10);  // Load factor scales.
  EXPECT_DOUBLE_EQ(p.peak_rate(), 0.05);
}

TEST(PaceProfile, RateClampedToOnePerCycle) {
  const PaceProfile p = PaceProfile::parse_spec("constant:0.5");
  EXPECT_DOUBLE_EQ(p.rate_at(0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(p.rate_at(0, -1.0), 0.0);
}

TEST(PaceProfile, DiurnalSwingsAroundBase) {
  const PaceProfile p =
      PaceProfile::parse_spec("diurnal:0.1,period=1000,amp=0.5");
  // Quarter period = sine peak; three quarters = trough.
  EXPECT_NEAR(p.rate_at(250), 0.15, 1e-9);
  EXPECT_NEAR(p.rate_at(750), 0.05, 1e-9);
  EXPECT_NEAR(p.rate_at(0), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 0.15);
}

TEST(PaceProfile, BurstSquareWave) {
  const PaceProfile p =
      PaceProfile::parse_spec("burst:0.02,period=1000,duty=0.25,peak=4");
  EXPECT_DOUBLE_EQ(p.rate_at(0), 0.08);     // High phase.
  EXPECT_DOUBLE_EQ(p.rate_at(249), 0.08);
  EXPECT_DOUBLE_EQ(p.rate_at(250), 0.02);   // Low phase.
  EXPECT_DOUBLE_EQ(p.rate_at(1100), 0.08);  // Periodic.
}

TEST(PaceProfile, FlashCrowdEpisode) {
  const PaceProfile p =
      PaceProfile::parse_spec("flash:0.03,at=4000,len=2000,mult=8");
  EXPECT_DOUBLE_EQ(p.rate_at(3999), 0.03);
  EXPECT_DOUBLE_EQ(p.rate_at(4000), 0.24);
  EXPECT_DOUBLE_EQ(p.rate_at(5999), 0.24);
  EXPECT_DOUBLE_EQ(p.rate_at(6000), 0.03);
}

TEST(PaceProfile, FileBreakpointsHoldStepwise) {
  const std::string path = "test_pace_profile.pace";
  {
    std::ofstream out(path);
    out << "arinoc-pace v1\n# ramp\n0 0.01\n1000 0.05\n3000 0.02\n";
  }
  const PaceProfile p = PaceProfile::load(path);
  EXPECT_EQ(p.kind(), PaceKind::kFile);
  EXPECT_DOUBLE_EQ(p.rate_at(0), 0.01);
  EXPECT_DOUBLE_EQ(p.rate_at(999), 0.01);
  EXPECT_DOUBLE_EQ(p.rate_at(1000), 0.05);
  EXPECT_DOUBLE_EQ(p.rate_at(5000), 0.02);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 0.05);
  std::remove(path.c_str());
}

TEST(PaceProfile, MalformedSpecsThrow) {
  EXPECT_THROW(PaceProfile::parse_spec(""), std::invalid_argument);
  EXPECT_THROW(PaceProfile::parse_spec("wave:0.1"), std::invalid_argument);
  EXPECT_THROW(PaceProfile::parse_spec("constant:"), std::invalid_argument);
  EXPECT_THROW(PaceProfile::parse_spec("constant:-0.1"),
               std::invalid_argument);
  EXPECT_THROW(PaceProfile::parse_spec("burst:0.02,duty=2"),
               std::invalid_argument);
  EXPECT_THROW(PaceProfile::parse_spec("diurnal:0.1,amp=-3"),
               std::invalid_argument);
}

TEST(PaceProfile, MissingOrMalformedFileThrows) {
  EXPECT_THROW(PaceProfile::load("no/such/file.pace"), std::invalid_argument);
  const std::string path = "test_bad_pace.pace";
  {
    std::ofstream out(path);
    out << "not-a-pace-header\n0 0.01\n";
  }
  EXPECT_THROW(PaceProfile::load(path), std::invalid_argument);
  {
    std::ofstream out(path);
    out << "arinoc-pace v1\n1000 0.05\n500 0.01\n";  // Non-ascending.
  }
  EXPECT_THROW(PaceProfile::load(path), std::invalid_argument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// LogHistogram tail edges (the numbers SLOs are judged on).
// ---------------------------------------------------------------------------

TEST(LogHistogramTail, EmptyHistogramReportsZero) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(LogHistogramTail, SingleSampleIsExactAtEveryPercentile) {
  LogHistogram h;
  h.add(137.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.1), 137.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 137.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 137.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 137.0);
}

TEST(LogHistogramTail, P999InterpolatesInsideTheTailBucket) {
  // 999 fast samples and one slow outlier: p99.9 lands in the outlier's
  // bucket, interpolates inside it, and clamps to the observed max.
  LogHistogram h;
  for (int i = 0; i < 999; ++i) h.add(100.0);
  h.add(10000.0);
  const double p999 = h.percentile(99.9);
  EXPECT_GT(p999, 100.0);
  EXPECT_LE(p999, 10000.0);
  // Degenerate single-value tail bucket: interpolation may not exceed max.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10000.0);
  // Monotonicity across the tail.
  EXPECT_LE(h.percentile(99.0), p999);
  EXPECT_LE(h.percentile(50.0), h.percentile(99.0));
}

TEST(LogHistogramTail, SameBucketStreamClampsToObservedRange) {
  // All samples inside one geometric bucket: every percentile must stay
  // within [min, max] — in-bucket interpolation cannot escape the data.
  LogHistogram h;
  for (int i = 0; i < 10000; ++i) h.add(100.0 + (i % 7));
  EXPECT_GE(h.percentile(99.9), 100.0);
  EXPECT_LE(h.percentile(99.9), 106.0);
  EXPECT_GE(h.percentile(0.01), 100.0);
}

// ---------------------------------------------------------------------------
// Degradation FSM: hysteresis, dwell, stepwise recovery.
// ---------------------------------------------------------------------------

AdmissionParams test_params() {
  AdmissionParams p;
  p.rate = 0.5;
  p.burst = 4;
  p.throttle_occ = 0.6;
  p.shed_occ = 0.85;
  p.recover_occ = 0.35;
  p.dwell = 10;
  return p;
}

TEST(DegradationFsm, EscalatesAndRecoversStepwise) {
  DegradationFsm fsm(test_params());
  Cycle now = 0;
  // Below threshold: stays NORMAL forever.
  for (; now < 50; ++now) fsm.update(now, 0.2, false);
  EXPECT_EQ(fsm.state(), DegradeState::kNormal);
  // Over the throttle threshold: escalates (after dwell).
  for (; now < 100; ++now) fsm.update(now, 0.7, false);
  EXPECT_EQ(fsm.state(), DegradeState::kThrottled);
  // Over the shed threshold: escalates again.
  for (; now < 150; ++now) fsm.update(now, 0.9, false);
  EXPECT_EQ(fsm.state(), DegradeState::kShedding);
  // Pressure clears: recovery steps down one level at a time (the first
  // step lands as soon as the dwell allows; the second needs another dwell).
  for (; now < 155; ++now) fsm.update(now, 0.1, false);
  EXPECT_EQ(fsm.state(), DegradeState::kThrottled);
  for (; now < 250; ++now) fsm.update(now, 0.1, false);
  EXPECT_EQ(fsm.state(), DegradeState::kNormal);
  EXPECT_EQ(fsm.transitions(), 4u);
  EXPECT_GT(fsm.degraded_cycles(), 0u);
}

TEST(DegradationFsm, HysteresisBandHoldsState) {
  DegradationFsm fsm(test_params());
  Cycle now = 0;
  for (; now < 50; ++now) fsm.update(now, 0.7, false);
  ASSERT_EQ(fsm.state(), DegradeState::kThrottled);
  // Occupancy between recover (0.35) and throttle (0.6): no flapping.
  for (; now < 500; ++now) fsm.update(now, 0.5, false);
  EXPECT_EQ(fsm.state(), DegradeState::kThrottled);
  EXPECT_EQ(fsm.transitions(), 1u);
}

TEST(DegradationFsm, DwellBoundsTransitionRate) {
  DegradationFsm fsm(test_params());
  // Max-pressure signal the whole time: NORMAL -> THROTTLED -> SHEDDING
  // still needs one dwell period per step.
  for (Cycle now = 0; now < 15; ++now) fsm.update(now, 1.0, true);
  EXPECT_EQ(fsm.state(), DegradeState::kThrottled);
  for (Cycle now = 15; now < 25; ++now) fsm.update(now, 1.0, true);
  EXPECT_EQ(fsm.state(), DegradeState::kShedding);
}

TEST(DegradationFsm, PreTripWarningEscalatesAndBlocksRecovery) {
  DegradationFsm fsm(test_params());
  Cycle now = 0;
  // Low occupancy but the watchdog is warning: escalate anyway.
  for (; now < 50; ++now) fsm.update(now, 0.1, true);
  EXPECT_EQ(fsm.state(), DegradeState::kShedding);
  // Warning still active: recovery is held off even at zero occupancy.
  for (; now < 100; ++now) fsm.update(now, 0.0, true);
  EXPECT_EQ(fsm.state(), DegradeState::kShedding);
  for (; now < 150; ++now) fsm.update(now, 0.0, false);
  EXPECT_EQ(fsm.state(), DegradeState::kNormal);
}

// ---------------------------------------------------------------------------
// AdmissionGate: token bucket, state scaling, refunds.
// ---------------------------------------------------------------------------

TEST(AdmissionGate, BurstThenDefer) {
  DegradationFsm fsm(test_params());
  AdmissionGate gate(test_params(), &fsm);
  // Bucket starts full (burst = 4): four immediate admits, then a defer.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(gate.request(0), AdmissionDecision::kAdmit);
  }
  EXPECT_EQ(gate.request(0), AdmissionDecision::kDefer);
  EXPECT_EQ(gate.admitted(), 4u);
  EXPECT_EQ(gate.deferred(), 1u);
  // rate = 0.5: two cycles later one token has accrued.
  EXPECT_EQ(gate.request(2), AdmissionDecision::kAdmit);
}

TEST(AdmissionGate, RefundRestoresTokenAndCount) {
  DegradationFsm fsm(test_params());
  AdmissionGate gate(test_params(), &fsm);
  for (int i = 0; i < 4; ++i) gate.request(0);
  ASSERT_EQ(gate.request(0), AdmissionDecision::kDefer);
  gate.refund_admit();
  EXPECT_EQ(gate.admitted(), 3u);
  EXPECT_EQ(gate.request(0), AdmissionDecision::kAdmit);
}

TEST(AdmissionGate, SheddingStateShedsWithoutTouchingTheBucket) {
  DegradationFsm fsm(test_params());
  AdmissionGate gate(test_params(), &fsm);
  for (Cycle now = 0; now < 50; ++now) fsm.update(now, 1.0, false);
  ASSERT_EQ(fsm.state(), DegradeState::kShedding);
  EXPECT_EQ(gate.request(50), AdmissionDecision::kShed);
  EXPECT_EQ(gate.shed(), 1u);
  EXPECT_EQ(gate.admitted(), 0u);
}

TEST(AdmissionGate, ThrottledStateRefillsSlower) {
  AdmissionParams p = test_params();
  p.rate = 0.5;
  p.throttle_factor = 0.5;  // Throttled refill: 0.25 tokens/cycle.
  DegradationFsm fsm(p);
  AdmissionGate gate(p, &fsm);
  for (Cycle now = 0; now < 50; ++now) fsm.update(now, 0.7, false);
  ASSERT_EQ(fsm.state(), DegradeState::kThrottled);
  // Drain the (refilled) bucket while throttled.
  int admits = 0;
  while (gate.request(50) == AdmissionDecision::kAdmit) ++admits;
  EXPECT_EQ(admits, 4);  // Bucket depth unchanged by state.
  // 2 cycles at 0.25/cycle = 0.5 tokens: not enough yet.
  EXPECT_EQ(gate.request(52), AdmissionDecision::kDefer);
  // 4 cycles at 0.25/cycle = 1 token.
  EXPECT_EQ(gate.request(54), AdmissionDecision::kAdmit);
}

// ---------------------------------------------------------------------------
// Open-loop end-to-end behaviour.
// ---------------------------------------------------------------------------

TEST(OpenLoopServing, LowLoadGoodputTracksOffered) {
  Config cfg = apply_scheme(serving_config(), Scheme::kAdaARI);
  cfg.open_loop = true;
  cfg.pace_spec = "constant:0.02";
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  const Metrics m = sim.collect();
  EXPECT_GT(m.requests_offered, 0u);
  EXPECT_GT(m.goodput, 0.0);
  // Uncongested: nearly everything offered completes, nothing is shed.
  EXPECT_GE(m.goodput, 0.85 * m.offered_rate);
  EXPECT_EQ(m.requests_shed, 0u);
  EXPECT_GT(m.e2e_latency_p99, 0.0);
  EXPECT_GE(m.e2e_latency_p999, m.e2e_latency_p99);
}

TEST(OpenLoopServing, OverloadWithAdmissionShedsAndDegrades) {
  Config cfg = apply_scheme(serving_config(), Scheme::kXYBaseline);
  cfg.open_loop = true;
  cfg.pace_spec = "constant:0.25";  // Far past the baseline's capacity.
  cfg.admission_enabled = true;
  cfg.run_cycles = 3000;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  const Metrics m = sim.collect();
  EXPECT_LT(m.goodput, m.offered_rate * 0.9);     // Saturated.
  EXPECT_GT(m.requests_shed, 0u);                 // Admission shed load.
  EXPECT_GT(m.cycles_throttled + m.cycles_shedding, 0u);
  EXPECT_GT(m.degrade_transitions, 0u);
}

TEST(OpenLoopServing, OverlayRejectsServingLayer) {
  Config cfg = apply_scheme(serving_config(), Scheme::kAdaARI);
  cfg.open_loop = true;
  EXPECT_THROW(GpgpuSim(cfg, *find_benchmark("bfs"), /*use_da2mesh=*/true),
               std::invalid_argument);
  Config cfg2 = apply_scheme(serving_config(), Scheme::kAdaARI);
  cfg2.admission_enabled = true;
  EXPECT_THROW(GpgpuSim(cfg2, *find_benchmark("bfs"), /*use_da2mesh=*/true),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

std::string run_serving_json(const Config& cfg) {
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  return metrics_to_json(sim.collect());
}

TEST(ServingDeterminism, OpenLoopRunsAreReproducible) {
  Config cfg = apply_scheme(serving_config(), Scheme::kAdaARI);
  cfg.open_loop = true;
  cfg.pace_spec = "burst:0.03,period=400,duty=0.25,peak=4";
  cfg.admission_enabled = true;
  EXPECT_EQ(run_serving_json(cfg), run_serving_json(cfg));
}

TEST(ServingDeterminism, OpenLoopActivityModeBitIdentical) {
  Config cfg = apply_scheme(serving_config(), Scheme::kAdaBaseline);
  cfg.open_loop = true;
  cfg.pace_spec = "constant:0.05";
  cfg.admission_enabled = true;
  Config on = cfg, off = cfg;
  on.activity_driven = true;
  off.activity_driven = false;
  EXPECT_EQ(run_serving_json(on), run_serving_json(off));
}

TEST(ServingDeterminism, AdmissionOffIsInertAcrossAllSchemes) {
  // The whole serving layer disabled must be strictly inert: closed-loop
  // metrics are byte-identical no matter how the serving knobs are tuned,
  // for every scheme. This is the "admission off == today" contract the
  // bit-identity harness (test_activity) extends across stepping modes.
  for (Scheme s : {Scheme::kXYBaseline, Scheme::kAdaBaseline,
                   Scheme::kAdaMultiPort, Scheme::kAdaARI}) {
    Config plain = apply_scheme(serving_config(), s);
    Config tuned = plain;
    tuned.pace_spec = "flash:0.9,at=1,len=100000,mult=1";  // Never consulted.
    tuned.pace_scale = 7.0;
    tuned.adm_rate = 0.01;
    tuned.adm_burst = 1;
    tuned.adm_throttle_occ = 0.5;
    tuned.adm_shed_occ = 0.6;
    tuned.adm_recover_occ = 0.1;
    EXPECT_EQ(run_serving_json(plain), run_serving_json(tuned))
        << scheme_name(s);
  }
}

}  // namespace
}  // namespace arinoc
