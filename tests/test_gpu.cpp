// GPU side: coalescer, warp scheduler policies, and the SIMT core's issue
// pacing, scoreboard stalls and reply-driven wakeups.
#include <gtest/gtest.h>

#include <memory>
#include <queue>

#include "gpu/coalescer.hpp"
#include "gpu/core.hpp"
#include "gpu/scheduler.hpp"
#include "mem/address_map.hpp"

namespace arinoc {
namespace {

// ------------------------------------------------------------- Coalescer

TEST(Coalescer, DeduplicatesLines) {
  Instr i;
  i.is_mem = true;
  i.num_lines = 4;
  i.lines = {0x100, 0x100, 0x200, 0x100};
  EXPECT_EQ(coalesce(&i), 2);
  EXPECT_EQ(i.lines[0], 0x100u);
  EXPECT_EQ(i.lines[1], 0x200u);
}

TEST(Coalescer, AllDistinctUnchanged) {
  Instr i;
  i.is_mem = true;
  i.num_lines = 3;
  i.lines = {0x0, 0x40, 0x80, 0};
  EXPECT_EQ(coalesce(&i), 3);
}

TEST(Coalescer, SingleLine) {
  Instr i;
  i.num_lines = 1;
  i.lines = {0x40, 0, 0, 0};
  EXPECT_EQ(coalesce(&i), 1);
}

// ------------------------------------------------------------- Scheduler

std::vector<Warp> make_warps(std::uint32_t n) {
  std::vector<Warp> warps(n);
  for (std::uint32_t i = 0; i < n; ++i) warps[i].id = i;
  return warps;
}

TEST(Scheduler, GtoSticksWithCurrentWarp) {
  auto warps = make_warps(4);
  WarpScheduler sched(SchedPolicy::kGreedyThenOldest, 4);
  std::vector<bool> all(4, true);
  const int first = sched.pick(warps, all);
  sched.issued(static_cast<std::uint32_t>(first));
  warps[static_cast<std::size_t>(first)].last_issue = 10;
  EXPECT_EQ(sched.pick(warps, all), first);  // Greedy.
}

TEST(Scheduler, GtoFallsBackToOldest) {
  auto warps = make_warps(3);
  warps[0].last_issue = 30;
  warps[1].last_issue = 10;  // Oldest.
  warps[2].last_issue = 20;
  WarpScheduler sched(SchedPolicy::kGreedyThenOldest, 3);
  sched.issued(0);
  const std::vector<bool> eligible = {false, true, true};  // Current stalled.
  EXPECT_EQ(sched.pick(warps, eligible), 1);
}

TEST(Scheduler, ReturnsMinusOneWhenNoneEligible) {
  auto warps = make_warps(2);
  WarpScheduler sched(SchedPolicy::kGreedyThenOldest, 2);
  EXPECT_EQ(sched.pick(warps, {false, false}), -1);
}

TEST(Scheduler, LooseRoundRobinRotates) {
  auto warps = make_warps(3);
  WarpScheduler sched(SchedPolicy::kLooseRoundRobin, 3);
  const std::vector<bool> all = {true, true, true};
  EXPECT_EQ(sched.pick(warps, all), 0);
  EXPECT_EQ(sched.pick(warps, all), 1);
  EXPECT_EQ(sched.pick(warps, all), 2);
  EXPECT_EQ(sched.pick(warps, all), 0);
}

// ------------------------------------------------------------------ Core

/// Scripted instruction source: cycles through a fixed list per warp.
class ScriptedSource : public InstrSource {
 public:
  Instr next(std::uint32_t, std::uint32_t) override {
    if (script.empty()) return Instr{};
    const Instr i = script.front();
    script.pop();
    return i;
  }
  std::queue<Instr> script;
};

class CapturePort : public RequestPort {
 public:
  bool try_send_request(bool write, TxnId txn, NodeId dest,
                        Cycle) override {
    if (blocked) return false;
    sent.push_back({write, txn, dest});
    return true;
  }
  struct Req {
    bool write;
    TxnId txn;
    NodeId dest;
  };
  bool blocked = false;
  std::vector<Req> sent;
};

struct CoreHarness {
  CoreHarness() : amap(cfg.num_mcs, cfg.line_bytes, cfg.dram_banks) {
    cfg.warps_per_core = 2;
    mc_nodes = {10, 11, 12, 13, 14, 15, 16, 17};
    core = std::make_unique<SimtCore>(cfg, 0, 1, &source, &txns, &amap,
                                      &mc_nodes, &port);
  }
  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) core->cycle(now++);
  }
  static Instr load(Addr line) {
    Instr i;
    i.is_mem = true;
    i.num_lines = 1;
    i.lines[0] = line;
    return i;
  }
  static Instr store(Addr line) {
    Instr i = load(line);
    i.is_store = true;
    return i;
  }

  Config cfg;
  TxnPool txns;
  AddressMap amap;
  ScriptedSource source;
  CapturePort port;
  std::vector<NodeId> mc_nodes;
  std::unique_ptr<SimtCore> core;
  Cycle now = 0;
};

TEST(SimtCore, IssuePacedBySimdWidth) {
  CoreHarness h;
  // Pure ALU stream: one warp instruction per warp_size/simd_width cycles.
  h.run(40);
  EXPECT_EQ(h.core->warp_instructions(), 40u / 4);
  EXPECT_EQ(h.core->thread_instructions(), (40u / 4) * 32);
}

TEST(SimtCore, LoadMissSendsRequestToOwningMc) {
  CoreHarness h;
  const Addr line = 0x40;  // Line 1 -> MC index 1 -> node 11.
  h.source.script.push(CoreHarness::load(line));
  h.run(8);
  ASSERT_EQ(h.port.sent.size(), 1u);
  EXPECT_FALSE(h.port.sent[0].write);
  EXPECT_EQ(h.port.sent[0].dest, 11);
  EXPECT_EQ(h.txns.at(h.port.sent[0].txn).line, line);
  EXPECT_EQ(h.txns.at(h.port.sent[0].txn).src_cc, 1);
}

TEST(SimtCore, WarpBlocksUntilReplyArrives) {
  CoreHarness h;
  h.cfg.warps_per_core = 1;
  h.core = std::make_unique<SimtCore>(h.cfg, 0, 1, &h.source, &h.txns,
                                      &h.amap, &h.mc_nodes, &h.port);
  h.source.script.push(CoreHarness::load(0x40));
  h.run(40);
  const auto issued_before = h.core->warp_instructions();
  h.run(40);
  // The single warp is scoreboard-blocked: no further issue.
  EXPECT_EQ(h.core->warp_instructions(), issued_before);
  // Deliver the read reply: the warp wakes and resumes issuing.
  ASSERT_EQ(h.port.sent.size(), 1u);
  Packet reply;
  reply.type = PacketType::kReadReply;
  reply.txn = h.port.sent[0].txn;
  h.core->deliver(reply, h.now);
  h.run(20);
  EXPECT_GT(h.core->warp_instructions(), issued_before);
}

TEST(SimtCore, StoresDoNotBlockWarp) {
  CoreHarness h;
  h.cfg.warps_per_core = 1;
  h.core = std::make_unique<SimtCore>(h.cfg, 0, 1, &h.source, &h.txns,
                                      &h.amap, &h.mc_nodes, &h.port);
  h.source.script.push(CoreHarness::store(0x40));
  h.run(40);
  EXPECT_EQ(h.port.sent.size(), 1u);
  EXPECT_TRUE(h.port.sent[0].write);
  EXPECT_GT(h.core->warp_instructions(), 1u);  // Issued past the store.
}

TEST(SimtCore, L1HitAvoidsTraffic) {
  CoreHarness h;
  h.cfg.warps_per_core = 1;
  h.core = std::make_unique<SimtCore>(h.cfg, 0, 1, &h.source, &h.txns,
                                      &h.amap, &h.mc_nodes, &h.port);
  h.source.script.push(CoreHarness::load(0x40));
  h.run(20);
  ASSERT_EQ(h.port.sent.size(), 1u);
  Packet reply;
  reply.type = PacketType::kReadReply;
  reply.txn = h.port.sent[0].txn;
  h.core->deliver(reply, h.now);  // Fills L1.
  h.source.script.push(CoreHarness::load(0x40));
  h.run(20);
  EXPECT_EQ(h.port.sent.size(), 1u);  // Second load hit in L1.
  EXPECT_GT(h.core->l1().hits(), 0u);
}

TEST(SimtCore, MshrMergesDuplicateMisses) {
  CoreHarness h;  // Two warps, both loading the same line.
  h.source.script.push(CoreHarness::load(0x40));
  h.source.script.push(CoreHarness::load(0x40));
  h.run(20);
  EXPECT_EQ(h.port.sent.size(), 1u);  // One network request for both warps.
  // Both warps blocked; reply wakes both.
  Packet reply;
  reply.type = PacketType::kReadReply;
  reply.txn = h.port.sent[0].txn;
  h.core->deliver(reply, h.now);
  h.run(20);
  EXPECT_GT(h.core->warp_instructions(), 2u);
}

TEST(SimtCore, BlockedPortQueuesAndRetries) {
  CoreHarness h;
  h.port.blocked = true;
  h.source.script.push(CoreHarness::load(0x40));
  h.run(20);
  EXPECT_TRUE(h.port.sent.empty());
  h.port.blocked = false;
  h.run(5);
  EXPECT_EQ(h.port.sent.size(), 1u);
}

TEST(SimtCore, WriteReplyRetiresTxn) {
  CoreHarness h;
  h.source.script.push(CoreHarness::store(0x80));
  h.run(20);
  ASSERT_EQ(h.port.sent.size(), 1u);
  const std::size_t live_before = h.txns.live();
  Packet reply;
  reply.type = PacketType::kWriteReply;
  reply.txn = h.port.sent[0].txn;
  h.core->deliver(reply, h.now);
  EXPECT_EQ(h.txns.live(), live_before - 1);
}

TEST(SimtCore, ResetStatsPreservesArchState) {
  CoreHarness h;
  h.run(20);
  EXPECT_GT(h.core->warp_instructions(), 0u);
  h.core->reset_stats();
  EXPECT_EQ(h.core->warp_instructions(), 0u);
  h.run(20);
  EXPECT_GT(h.core->warp_instructions(), 0u);  // Still running.
}

}  // namespace
}  // namespace arinoc
