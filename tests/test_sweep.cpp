// Sweep driver: grid execution order and CSV rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/sweep.hpp"

namespace arinoc {
namespace {

Config tiny() {
  Config cfg;
  cfg.warmup_cycles = 100;
  cfg.run_cycles = 500;
  return cfg;
}

TEST(Sweep, RunsFullGridInOrder) {
  const auto cells =
      Sweep(tiny())
          .over({{"vc2",
                  [](Config& c) {
                    c.num_vcs = 2;
                    // Tweaks run after the scheme preset: keep the ARI
                    // knobs within the Eq.(2) bound.
                    c.injection_speedup = std::min(c.injection_speedup, 2u);
                    c.split_queues = std::min(c.split_queues, 2u);
                  }},
                 {"vc4", [](Config& c) { c.num_vcs = 4; }}})
          .schemes({Scheme::kXYBaseline, Scheme::kXYARI})
          .benchmarks({"hotspot"})
          .run();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].point, "vc2");
  EXPECT_EQ(cells[0].scheme, "XY-Baseline");
  EXPECT_EQ(cells[1].scheme, "XY-ARI");
  EXPECT_EQ(cells[2].point, "vc4");
  for (const auto& c : cells) {
    EXPECT_EQ(c.benchmark, "hotspot");
    EXPECT_GT(c.metrics.ipc, 0.0);
  }
}

TEST(Sweep, DefaultAxisIsBaseConfig) {
  const auto cells = Sweep(tiny())
                         .schemes({Scheme::kXYBaseline})
                         .benchmarks({"matrixMul"})
                         .run();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].point, "base");
}

TEST(Sweep, CsvHasHeaderAndOneRowPerCell) {
  const auto cells = Sweep(tiny())
                         .schemes({Scheme::kXYBaseline, Scheme::kAdaARI})
                         .benchmarks({"nn"})
                         .run();
  const std::string csv = Sweep::to_csv(cells);
  std::istringstream is(csv);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line.rfind("point,scheme,benchmark", 0), 0u);
  // Header columns match every row's field count.
  const auto cols = std::count(line.begin(), line.end(), ',');
  int rows = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), cols);
    ++rows;
  }
  EXPECT_EQ(rows, 2);
  EXPECT_NE(csv.find("Ada-ARI,nn"), std::string::npos);
}

}  // namespace
}  // namespace arinoc
