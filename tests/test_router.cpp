// Router microarchitecture: injection VC admission (WPF vs atomic),
// crossbar speedup at the injection port, priority arbitration with the
// starvation override, and ejection.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "noc/topology.hpp"

namespace arinoc {
namespace {

/// 2x2 mesh network harness with direct access to routers.
class RouterHarness {
 public:
  explicit RouterHarness(NetworkParams params)
      : mesh_(2, 2, 1), net_(patch(params), &mesh_) {}

  static NetworkParams patch(NetworkParams p) {
    p.vc_depth_flits = 5;
    return p;
  }

  /// Injects a full packet into injection VC `vc` of the router at `src`.
  PacketId inject_packet(NodeId src, NodeId dest, PacketType type,
                         std::uint8_t prio, int vc, Cycle now) {
    const PacketId id = net_.make_packet(type, src, dest, prio, 0, now);
    const Packet& p = net_.arena().at(id);
    Router& r = net_.router(src);
    EXPECT_TRUE(r.injection_vc_ready(0, vc, p.num_flits));
    for (std::uint16_t s = 0; s < p.num_flits; ++s) {
      r.inject_flit(0, vc, PacketArena::flit_of(id, s, p.num_flits), now);
    }
    return id;
  }

  /// Steps until `id`'s flits are fully ejected at `dest` or `limit` cycles
  /// elapse; returns the ejection-complete cycle or 0 on timeout.
  Cycle step_until_delivered(NodeId dest, std::uint16_t flits, Cycle limit) {
    std::uint16_t got = 0;
    for (Cycle t = 0; t < limit; ++t) {
      net_.step(now_);
      ++now_;
      Router& r = net_.router(dest);
      while (r.has_ejected_flit()) {
        r.pop_ejected_flit();
        if (++got == flits) return now_;
      }
    }
    return 0;
  }

  Mesh mesh_;
  Network net_;
  Cycle now_ = 0;
};

NetworkParams base_params() {
  NetworkParams p;
  p.link_width_bits = 128;
  p.num_vcs = 4;
  p.vc_depth_flits = 5;
  p.routing = RoutingAlgo::kXY;
  return p;
}

TEST(Router, DeliversSingleFlitPacketAcrossOneHop) {
  RouterHarness h(base_params());
  const NodeId src = h.mesh_.node_at(0, 0);
  const NodeId dst = h.mesh_.node_at(1, 0);
  h.inject_packet(src, dst, PacketType::kReadRequest, 0, 0, 0);
  const Cycle done = h.step_until_delivered(dst, 1, 50);
  ASSERT_GT(done, 0u);
  EXPECT_LE(done, 10u);  // RC/VA/SA + link, small constant.
}

TEST(Router, DeliversLongPacketInOrder) {
  RouterHarness h(base_params());
  const NodeId src = h.mesh_.node_at(0, 0);
  const NodeId dst = h.mesh_.node_at(1, 1);
  const PacketId id =
      h.inject_packet(src, dst, PacketType::kReadReply, 0, 0, 0);
  std::uint16_t expected_seq = 0;
  for (Cycle t = 0; t < 100 && expected_seq < 5; ++t) {
    h.net_.step(h.now_++);
    Router& r = h.net_.router(dst);
    while (r.has_ejected_flit()) {
      const Flit f = r.pop_ejected_flit();
      EXPECT_EQ(f.pkt, id);
      EXPECT_EQ(f.seq, expected_seq++);
    }
  }
  EXPECT_EQ(expected_seq, 5);
}

TEST(Router, LocalDeliveryWhenSrcEqualsDest) {
  RouterHarness h(base_params());
  const NodeId n = h.mesh_.node_at(0, 1);
  h.inject_packet(n, n, PacketType::kWriteReply, 0, 0, 0);
  EXPECT_GT(h.step_until_delivered(n, 1, 20), 0u);
}

TEST(Router, InjectionVcReadyRespectsWpfSpace) {
  RouterHarness h(base_params());
  Router& r = h.net_.router(0);
  EXPECT_TRUE(r.injection_vc_ready(0, 0, 5));
  // Fill VC 0 with a parked packet (destination far; do not step).
  const PacketId id =
      h.net_.make_packet(PacketType::kReadReply, 0, 3, 0, 0, 0);
  for (std::uint16_t s = 0; s < 5; ++s) {
    r.inject_flit(0, 0, PacketArena::flit_of(id, s, 5), 0);
  }
  EXPECT_FALSE(r.injection_vc_ready(0, 0, 5));  // No room for 5 more.
  EXPECT_TRUE(r.injection_vc_ready(0, 1, 5));   // Other VC untouched.
}

TEST(Router, AtomicPolicyRequiresIdleVc) {
  NetworkParams p = base_params();
  p.non_atomic_vc = false;
  RouterHarness h(p);
  Router& r = h.net_.router(0);
  const PacketId id =
      h.net_.make_packet(PacketType::kWriteReply, 0, 3, 0, 0, 0);
  r.inject_flit(0, 0, PacketArena::flit_of(id, 0, 1), 0);
  // One flit of space remains physically, but atomic allocation forbids a
  // second packet while the VC is non-idle.
  EXPECT_FALSE(r.injection_vc_ready(0, 0, 1));
}

TEST(Router, WpfAdmitsShortPacketBehindDrainingOne) {
  RouterHarness h(base_params());
  Router& r = h.net_.router(0);
  const PacketId id =
      h.net_.make_packet(PacketType::kWriteReply, 0, 3, 0, 0, 0);
  r.inject_flit(0, 0, PacketArena::flit_of(id, 0, 1), 0);
  // Non-atomic (WPF): a 1-flit packet fits in the remaining 4 slots.
  EXPECT_TRUE(r.injection_vc_ready(0, 0, 1));
  EXPECT_FALSE(r.injection_vc_ready(0, 0, 5));
}

// With speedup 1, two VCs of the injection port holding single-flit packets
// to different outputs drain at 1 flit/cycle; with speedup 2 they drain
// concurrently.
TEST(Router, InjectionSpeedupConsumesVcsConcurrently) {
  auto run = [](std::uint32_t speedup) {
    NetworkParams p = base_params();
    p.treat_mcs_specially = true;
    p.mc_injection_speedup = speedup;
    Mesh probe(2, 2, 1);
    const NodeId mc = probe.mc_nodes()[0];
    RouterHarness h(p);
    // Two 5-flit packets to different destinations from different VCs.
    NodeId d1 = kInvalidNode, d2 = kInvalidNode;
    for (NodeId n = 0; n < 4; ++n) {
      if (n == mc) continue;
      if (d1 == kInvalidNode && h.mesh_.hops(mc, n) == 1) {
        d1 = n;
      } else if (d2 == kInvalidNode && h.mesh_.hops(mc, n) == 1) {
        d2 = n;
      }
    }
    h.inject_packet(mc, d1, PacketType::kReadReply, 0, 0, 0);
    h.inject_packet(mc, d2, PacketType::kReadReply, 0, 1, 0);
    // Count cycles until the MC router has pushed out all 10 flits.
    Router& r = h.net_.router(mc);
    Cycle t = 0;
    while (r.flits_sent(kNorth) + r.flits_sent(kEast) + r.flits_sent(kSouth) +
               r.flits_sent(kWest) <
           10) {
      h.net_.step(h.now_++);
      if (++t >= 200) {
        ADD_FAILURE() << "router never drained (speedup " << speedup << ")";
        return Cycle{0};
      }
    }
    return t;
  };
  const Cycle serial = run(1);
  const Cycle parallel = run(2);
  EXPECT_LT(parallel, serial);
  EXPECT_GE(serial, 10u);   // >= one flit per cycle.
  EXPECT_LE(parallel, 9u);  // Strictly better than serialized drain.
}

// A high-priority injected packet beats an in-network packet competing for
// the same output port.
TEST(Router, PriorityPacketWinsSwitchArbitration) {
  NetworkParams p = base_params();
  p.priority_levels = 2;
  p.treat_mcs_specially = true;
  p.mc_injection_speedup = 1;
  RouterHarness h(p);
  Mesh& m = h.mesh_;
  const NodeId mc = m.mc_nodes()[0];

  // Through traffic: a packet from a neighbour crossing `mc` toward the
  // opposite side cannot exist in a 2x2 (no through node), so test the
  // arbitration directly at the flit level: inject a low-priority packet
  // first, then a high-priority one on another VC to the same output; the
  // high one's head must leave first once both are candidates.
  NodeId dest = kInvalidNode;
  for (NodeId n = 0; n < 4; ++n) {
    if (n != mc && m.hops(mc, n) == 1) {
      dest = n;
      break;
    }
  }
  const PacketId low =
      h.inject_packet(mc, dest, PacketType::kReadReply, 0, 0, 0);
  const PacketId high =
      h.inject_packet(mc, dest, PacketType::kReadReply, 1, 1, 0);
  // Drain and observe arrival order of heads at dest.
  std::vector<PacketId> head_order;
  for (Cycle t = 0; t < 100 && head_order.size() < 2; ++t) {
    h.net_.step(h.now_++);
    Router& r = h.net_.router(dest);
    while (r.has_ejected_flit()) {
      const Flit f = r.pop_ejected_flit();
      if (f.head) head_order.push_back(f.pkt);
    }
  }
  ASSERT_EQ(head_order.size(), 2u);
  // Both target the same output VC set; the high-priority packet should
  // not lose the switch to the low one once contending. Because `low` was
  // injected first it may have grabbed the only free downstream VC first;
  // accept either order but require the high packet's total delay to be
  // within one packet service time (i.e. no starvation of high).
  EXPECT_TRUE(head_order[0] == high || head_order[1] == high);
  (void)low;
}

TEST(Router, StatCountersAdvance) {
  RouterHarness h(base_params());
  const NodeId src = h.mesh_.node_at(0, 0);
  const NodeId dst = h.mesh_.node_at(1, 0);
  h.inject_packet(src, dst, PacketType::kReadReply, 0, 0, 0);
  h.step_until_delivered(dst, 5, 100);
  Router& s = h.net_.router(src);
  Router& d = h.net_.router(dst);
  EXPECT_EQ(s.flits_injected(), 5u);
  EXPECT_EQ(s.flits_sent(kEast), 5u);
  EXPECT_EQ(d.flits_ejected(), 5u);
  EXPECT_GE(s.crossbar_traversals(), 5u);
  s.reset_stats();
  EXPECT_EQ(s.flits_injected(), 0u);
}

TEST(Router, CreditProtocolSustainsBackToBackPackets) {
  // Stream many packets through one VC; all must arrive, and throughput
  // must approach 1 flit/cycle (credits returned promptly).
  RouterHarness h(base_params());
  const NodeId src = h.mesh_.node_at(0, 0);
  const NodeId dst = h.mesh_.node_at(1, 0);
  std::uint32_t sent = 0, received = 0;
  Cycle t = 0;
  for (; t < 400; ++t) {
    Router& r = h.net_.router(src);
    if (sent < 20 && r.injection_vc_ready(0, 0, 5)) {
      const PacketId id =
          h.net_.make_packet(PacketType::kReadReply, src, dst, 0, 0, t);
      for (std::uint16_t s = 0; s < 5; ++s) {
        r.inject_flit(0, 0, PacketArena::flit_of(id, s, 5), t);
      }
      ++sent;
    }
    h.net_.step(h.now_++);
    Router& rd = h.net_.router(dst);
    while (rd.has_ejected_flit()) {
      if (rd.pop_ejected_flit().tail) ++received;
    }
    if (received == 20) break;
  }
  EXPECT_EQ(received, 20u);
  // 100 flits over a single narrow path: ideal ~100 cycles + pipeline.
  EXPECT_LE(t, 160u);
}

}  // namespace
}  // namespace arinoc
