// Network-level properties: delivery guarantees under random traffic for
// both routing algorithms, latency accounting, link-utilization probes, and
// conservation (no packet lost or duplicated).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/ni.hpp"
#include "noc/topology.hpp"

namespace arinoc {
namespace {

class RecordingSink : public PacketSink {
 public:
  void deliver(const Packet& pkt, Cycle) override {
    ++delivered;
    flits += pkt.num_flits;
    last_src = pkt.src;
  }
  int delivered = 0;
  int flits = 0;
  NodeId last_src = kInvalidNode;
};

/// Random uniform traffic through a full mesh network with one enhanced NI
/// per node; checks conservation and delivery.
struct TrafficParams {
  RoutingAlgo routing;
  std::uint32_t mesh;
  std::uint32_t vcs;
  double load;  // Packet offer probability per node per cycle.
};

class NetworkTraffic : public ::testing::TestWithParam<TrafficParams> {};

TEST_P(NetworkTraffic, AllOfferedPacketsDelivered) {
  const TrafficParams tp = GetParam();
  Mesh mesh(tp.mesh, tp.mesh, 1);
  NetworkParams np;
  np.num_vcs = tp.vcs;
  np.vc_depth_flits = 5;
  np.routing = tp.routing;
  Network net(np, &mesh);

  RecordingSink sink;
  std::vector<std::unique_ptr<EnhancedInjectNi>> nis;
  std::vector<std::unique_ptr<EjectNi>> ejs;
  for (NodeId n = 0; n < static_cast<NodeId>(mesh.nodes()); ++n) {
    nis.push_back(std::make_unique<EnhancedInjectNi>(&net, n, 36));
    ejs.push_back(std::make_unique<EjectNi>(&net, n, &sink));
  }

  Xoshiro256 rng(99);
  int offered = 0;
  const Cycle inject_for = 600;
  const Cycle drain_until = 4000;
  for (Cycle t = 0; t < drain_until; ++t) {
    if (t < inject_for) {
      for (NodeId n = 0; n < static_cast<NodeId>(mesh.nodes()); ++n) {
        if (!rng.chance(tp.load)) continue;
        NodeId dst = static_cast<NodeId>(rng.next_below(mesh.nodes()));
        if (dst == n) continue;
        const PacketType type =
            rng.chance(0.5) ? PacketType::kReadReply : PacketType::kWriteReply;
        const PacketId id = net.make_packet(type, n, dst, 0, 0, t);
        if (nis[static_cast<std::size_t>(n)]->try_accept(id, t)) {
          ++offered;
        } else {
          net.abandon_packet(id);
        }
      }
    }
    for (auto& ni : nis) ni->cycle(t);
    net.step(t);
    for (auto& ej : ejs) ej->cycle(t);
    if (t > inject_for && net.arena().live() == 0) break;
  }
  EXPECT_GT(offered, 50);
  EXPECT_EQ(sink.delivered, offered);  // Nothing lost, nothing duplicated.
  EXPECT_EQ(net.arena().live(), 0u);   // Conservation: everything retired.
  EXPECT_EQ(static_cast<int>(net.stats().total_packets()), offered);
}

INSTANTIATE_TEST_SUITE_P(
    RoutingAndLoadSweep, NetworkTraffic,
    ::testing::Values(TrafficParams{RoutingAlgo::kXY, 4, 4, 0.05},
                      TrafficParams{RoutingAlgo::kXY, 4, 4, 0.3},
                      TrafficParams{RoutingAlgo::kXY, 6, 4, 0.15},
                      TrafficParams{RoutingAlgo::kMinAdaptive, 4, 4, 0.05},
                      TrafficParams{RoutingAlgo::kMinAdaptive, 4, 4, 0.3},
                      TrafficParams{RoutingAlgo::kMinAdaptive, 6, 4, 0.15},
                      TrafficParams{RoutingAlgo::kMinAdaptive, 6, 2, 0.15},
                      TrafficParams{RoutingAlgo::kXY, 8, 4, 0.1}));

TEST(Network, LatencyMatchesHopDistanceAtLowLoad) {
  Mesh mesh(6, 6, 1);
  NetworkParams np;
  np.routing = RoutingAlgo::kXY;
  Network net(np, &mesh);
  RecordingSink sink;
  EnhancedInjectNi ni(&net, mesh.node_at(0, 0), 36);
  EjectNi ej(&net, mesh.node_at(5, 5), &sink);

  const PacketId id = net.make_packet(
      PacketType::kWriteReply, mesh.node_at(0, 0), mesh.node_at(5, 5), 0, 0, 0);
  ASSERT_TRUE(ni.try_accept(id, 0));
  for (Cycle t = 0; t < 100 && sink.delivered == 0; ++t) {
    ni.cycle(t);
    net.step(t);
    ej.cycle(t);
  }
  ASSERT_EQ(sink.delivered, 1);
  // 10 hops; each hop costs router pipeline + link. Sanity bounds: at
  // least one cycle per hop, at most 5x that without load.
  const double lat = net.stats().mean_latency(PacketType::kWriteReply);
  EXPECT_GE(lat, 10.0);
  EXPECT_LE(lat, 50.0);
}

TEST(Network, FlitWeightedStatsPerType) {
  Mesh mesh(4, 4, 1);
  NetworkParams np;
  Network net(np, &mesh);
  RecordingSink sink;
  EnhancedInjectNi ni(&net, 0, 36);
  EjectNi ej(&net, 5, &sink);
  ASSERT_TRUE(
      ni.try_accept(net.make_packet(PacketType::kReadReply, 0, 5, 0, 0, 0), 0));
  ASSERT_TRUE(
      ni.try_accept(net.make_packet(PacketType::kWriteReply, 0, 5, 0, 0, 0), 0));
  for (Cycle t = 0; t < 60 && sink.delivered < 2; ++t) {
    ni.cycle(t);
    net.step(t);
    ej.cycle(t);
  }
  ASSERT_EQ(sink.delivered, 2);
  const NocStats& s = net.stats();
  EXPECT_EQ(s.flits_delivered[static_cast<int>(PacketType::kReadReply)], 5u);
  EXPECT_EQ(s.flits_delivered[static_cast<int>(PacketType::kWriteReply)], 1u);
  EXPECT_EQ(s.total_flits(), 6u);
}

TEST(Network, InjectionUtilizationProbe) {
  Mesh mesh(4, 4, 1);
  NetworkParams np;
  Network net(np, &mesh);
  RecordingSink sink;
  EnhancedInjectNi ni(&net, 0, 36);
  EjectNi ej(&net, 15, &sink);
  // Saturate node 0's injection link for 50 cycles.
  for (Cycle t = 0; t < 50; ++t) {
    const PacketId id =
        net.make_packet(PacketType::kReadReply, 0, 15, 0, 0, t);
    if (!ni.try_accept(id, t)) net.abandon_packet(id);
    ni.cycle(t);
    net.step(t);
    ej.cycle(t);
  }
  const double inj = net.injection_link_utilization(50, {0});
  EXPECT_GT(inj, 0.8);  // Near 1 flit/cycle on the saturated link.
  const double internal = net.internal_link_utilization(50);
  EXPECT_GT(internal, 0.0);
  EXPECT_LT(internal, inj);  // One path among 48 links.
}

TEST(Network, WiderLinksShrinkLongPackets) {
  Mesh mesh(4, 4, 1);
  NetworkParams np;
  np.link_width_bits = 256;
  Network net(np, &mesh);
  net.data_payload_bits = 512;
  EXPECT_EQ(net.flits_for(PacketType::kReadReply), 3);  // 1 + 512/256.
  EXPECT_EQ(net.flits_for(PacketType::kReadRequest), 1);
}

TEST(Network, ResetStatsClearsEverything) {
  Mesh mesh(4, 4, 1);
  NetworkParams np;
  Network net(np, &mesh);
  RecordingSink sink;
  EnhancedInjectNi ni(&net, 0, 36);
  EjectNi ej(&net, 3, &sink);
  ASSERT_TRUE(
      ni.try_accept(net.make_packet(PacketType::kReadReply, 0, 3, 0, 0, 0), 0));
  for (Cycle t = 0; t < 40 && sink.delivered == 0; ++t) {
    ni.cycle(t);
    net.step(t);
    ej.cycle(t);
  }
  ASSERT_EQ(sink.delivered, 1);
  net.reset_stats();
  EXPECT_EQ(net.stats().total_packets(), 0u);
  EXPECT_EQ(net.router(0).flits_injected(), 0u);
}

// Deadlock-freedom soak: adaptive routing with WPF under sustained high
// load in a mesh with hotspot destinations must keep making progress.
TEST(Network, AdaptiveHotspotTrafficMakesProgress) {
  Mesh mesh(6, 6, 8);
  NetworkParams np;
  np.routing = RoutingAlgo::kMinAdaptive;
  Network net(np, &mesh);
  RecordingSink sink;
  std::vector<std::unique_ptr<EnhancedInjectNi>> nis;
  std::vector<std::unique_ptr<EjectNi>> ejs;
  for (NodeId n = 0; n < 36; ++n) {
    nis.push_back(std::make_unique<EnhancedInjectNi>(&net, n, 36));
    ejs.push_back(std::make_unique<EjectNi>(&net, n, &sink));
  }
  Xoshiro256 rng(5);
  const auto& mcs = mesh.mc_nodes();
  for (Cycle t = 0; t < 3000; ++t) {
    // All CCs hammer the 8 MC nodes (few-to-many in reverse: many-to-few,
    // the worst congestion pattern for adaptive escape paths).
    for (NodeId n : mesh.cc_nodes()) {
      const NodeId dst = mcs[rng.next_below(mcs.size())];
      const PacketId id = net.make_packet(PacketType::kReadReply, n, dst, 0,
                                          0, t);
      if (!nis[static_cast<std::size_t>(n)]->try_accept(id, t)) {
        net.abandon_packet(id);
      }
    }
    for (auto& ni : nis) ni->cycle(t);
    net.step(t);
    for (auto& ej : ejs) ej->cycle(t);
  }
  EXPECT_GT(sink.delivered, 1000);  // Sustained forward progress.
}

}  // namespace
}  // namespace arinoc
