// DA2mesh overlay reply fabric: serialization rates (plain vs ARI supply),
// delivery, occupancy and backpressure.
#include <gtest/gtest.h>

#include <vector>

#include "noc/overlay.hpp"

namespace arinoc {
namespace {

class VecSink : public PacketSink {
 public:
  void deliver(const Packet& pkt, Cycle now) override {
    arrivals.push_back({pkt.src, pkt.dest, now});
  }
  struct Arrival {
    NodeId src;
    NodeId dest;
    Cycle at;
  };
  std::vector<Arrival> arrivals;
};

OverlayParams params(bool ari) {
  OverlayParams p;
  p.lanes = 4;
  p.lane_rate = 1.0;
  p.base_wire_latency = 3;
  p.queue_flits = 36;
  p.ari = ari;
  return p;
}

struct OverlayHarness {
  explicit OverlayHarness(bool ari)
      : mesh(6, 6, 8), overlay(params(ari), &mesh) {
    for (NodeId cc : mesh.cc_nodes()) overlay.set_sink(cc, &sink);
    mc = mesh.mc_nodes()[0];
    cc = mesh.cc_nodes()[0];
  }
  bool offer(PacketType type, Cycle now) {
    const PacketId id = overlay.make_packet(type, mc, cc, 0, now);
    if (overlay.try_accept(mc, id, now)) return true;
    overlay.abandon_packet(id);
    return false;
  }
  Mesh mesh;
  Da2MeshOverlay overlay;
  VecSink sink;
  NodeId mc = 0;
  NodeId cc = 0;
};

TEST(Overlay, DeliversPacketToSink) {
  OverlayHarness h(false);
  ASSERT_TRUE(h.offer(PacketType::kReadReply, 0));
  for (Cycle t = 0; t < 30 && h.sink.arrivals.empty(); ++t) {
    h.overlay.step(t);
  }
  ASSERT_EQ(h.sink.arrivals.size(), 1u);
  EXPECT_EQ(h.sink.arrivals[0].src, h.mc);
  EXPECT_EQ(h.sink.arrivals[0].dest, h.cc);
  // Serialization (5 flits) + wire latency 3.
  EXPECT_GE(h.sink.arrivals[0].at, 7u);
  EXPECT_LE(h.sink.arrivals[0].at, 12u);
}

TEST(Overlay, PlainModeSerializesOnePacketAtATime) {
  OverlayHarness h(false);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(h.offer(PacketType::kReadReply, 0));
  Cycle t = 0;
  while (h.sink.arrivals.size() < 4 && t < 200) h.overlay.step(t++);
  ASSERT_EQ(h.sink.arrivals.size(), 4u);
  // 4 long packets over a single effective lane: >= 20 serialization cycles.
  EXPECT_GE(h.sink.arrivals.back().at, 20u);
}

TEST(Overlay, AriModeUsesLanesConcurrently) {
  OverlayHarness plain(false);
  OverlayHarness ari(true);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(plain.offer(PacketType::kReadReply, 0));
    ASSERT_TRUE(ari.offer(PacketType::kReadReply, 0));
  }
  Cycle t_plain = 0, t_ari = 0;
  while (plain.sink.arrivals.size() < 4 && t_plain < 200) {
    plain.overlay.step(t_plain++);
  }
  while (ari.sink.arrivals.size() < 4 && t_ari < 200) {
    ari.overlay.step(t_ari++);
  }
  ASSERT_EQ(plain.sink.arrivals.size(), 4u);
  ASSERT_EQ(ari.sink.arrivals.size(), 4u);
  // Split supply feeds all 4 lanes at once: ~4x faster drain.
  EXPECT_LT(t_ari * 2, t_plain);
}

TEST(Overlay, QueueFullRefusesAndRecovers) {
  OverlayHarness h(false);
  int accepted = 0;
  while (h.offer(PacketType::kReadReply, 0)) ++accepted;
  EXPECT_EQ(accepted, 7);  // 36 flits / 5-flit packets.
  EXPECT_GT(h.overlay.occupancy_flits(h.mc), 0u);
  for (Cycle t = 0; t < 10; ++t) h.overlay.step(t);
  EXPECT_TRUE(h.offer(PacketType::kReadReply, 10));  // Space freed.
}

TEST(Overlay, StatsRecordInjectionsAndDeliveries) {
  OverlayHarness h(true);
  ASSERT_TRUE(h.offer(PacketType::kReadReply, 0));
  ASSERT_TRUE(h.offer(PacketType::kWriteReply, 0));
  for (Cycle t = 0; t < 40 && h.sink.arrivals.size() < 2; ++t) {
    h.overlay.step(t);
  }
  const NocStats& s = h.overlay.stats();
  EXPECT_EQ(s.packets_injected, 2u);
  EXPECT_EQ(s.total_packets(), 2u);
  EXPECT_EQ(s.flits_delivered[static_cast<int>(PacketType::kReadReply)], 5u);
  EXPECT_GT(s.mean_latency(PacketType::kWriteReply), 0.0);
}

TEST(Overlay, ShortPacketsFasterThanLong) {
  OverlayHarness h(false);
  ASSERT_TRUE(h.offer(PacketType::kWriteReply, 0));
  for (Cycle t = 0; t < 30 && h.sink.arrivals.empty(); ++t) h.overlay.step(t);
  ASSERT_EQ(h.sink.arrivals.size(), 1u);
  const Cycle short_at = h.sink.arrivals[0].at;
  OverlayHarness h2(false);
  ASSERT_TRUE(h2.offer(PacketType::kReadReply, 0));
  for (Cycle t = 0; t < 30 && h2.sink.arrivals.empty(); ++t) {
    h2.overlay.step(t);
  }
  ASSERT_EQ(h2.sink.arrivals.size(), 1u);
  EXPECT_LT(short_at, h2.sink.arrivals[0].at);
}

}  // namespace
}  // namespace arinoc
