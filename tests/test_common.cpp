// Tests for common utilities: RNG determinism, statistics helpers, the
// clock-ratio ticker, configuration validation and scheme presets.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace arinoc {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Xoshiro, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, ChanceMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Accumulator, TracksMeanMinMax) {
  Accumulator a;
  a.add(2.0);
  a.add(4.0);
  a.add(6.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Geomean, MatchesClosedForm) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Geomean, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Mean, Basic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
}

TEST(ClockRatio, IntegerRatio) {
  ClockRatio cr(2.0);
  int total = 0;
  for (int i = 0; i < 100; ++i) total += static_cast<int>(cr.ticks_this_cycle());
  EXPECT_EQ(total, 200);
}

TEST(ClockRatio, FractionalRatioAveragesOut) {
  ClockRatio cr(1.75);  // The GDDR5 : NoC clock ratio.
  int total = 0;
  for (int i = 0; i < 1000; ++i) total += static_cast<int>(cr.ticks_this_cycle());
  EXPECT_EQ(total, 1750);
}

TEST(ClockRatio, PerCycleTicksBounded) {
  ClockRatio cr(1.75);
  for (int i = 0; i < 100; ++i) {
    const auto t = cr.ticks_this_cycle();
    EXPECT_GE(t, 1u);
    EXPECT_LE(t, 2u);
  }
}

TEST(Config, DefaultsValid) {
  Config cfg;
  EXPECT_EQ(cfg.validate(), "");
}

TEST(Config, DerivedGeometry) {
  Config cfg;
  EXPECT_EQ(cfg.num_nodes(), 36u);
  EXPECT_EQ(cfg.num_ccs(), 28u);
  // 512-bit payload over 128-bit links: 1 header + 4 payload flits.
  EXPECT_EQ(cfg.reply_long_flits(), 5u);
  EXPECT_EQ(cfg.vc_depth_flits_reply(), 5u);
}

TEST(Config, WiderLinkShrinksLongPackets) {
  Config cfg;
  cfg.link_width_bits_reply = 256;
  EXPECT_EQ(cfg.reply_long_flits(), 3u);
}

TEST(Config, RejectsSpeedupAboveVcs) {
  Config cfg;
  cfg.injection_speedup = 5;
  cfg.num_vcs = 4;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Config, RejectsTinyNiQueue) {
  Config cfg;
  cfg.ni_queue_flits = 2;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Config, RejectsZeroMcs) {
  Config cfg;
  cfg.num_mcs = 0;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Config, Table1MentionsKeyParameters) {
  Config cfg;
  const std::string t = cfg.table1();
  EXPECT_NE(t.find("FR-FCFS"), std::string::npos);
  EXPECT_NE(t.find("Diamond"), std::string::npos);
  EXPECT_NE(t.find("Greedy-then-oldest"), std::string::npos);
  EXPECT_NE(t.find("6x6"), std::string::npos);
}

TEST(SchemePresets, XYBaselineIsEnhancedNoAri) {
  const Config cfg = apply_scheme(Config{}, Scheme::kXYBaseline);
  EXPECT_EQ(cfg.routing, RoutingAlgo::kXY);
  EXPECT_EQ(cfg.reply_ni, NiArch::kEnhanced);
  EXPECT_EQ(cfg.injection_speedup, 1u);
  EXPECT_EQ(cfg.priority_levels, 1u);
}

TEST(SchemePresets, AdaAriEnablesAllThree) {
  const Config cfg = apply_scheme(Config{}, Scheme::kAdaARI);
  EXPECT_EQ(cfg.routing, RoutingAlgo::kMinAdaptive);
  EXPECT_EQ(cfg.reply_ni, NiArch::kSplitQueue);
  EXPECT_EQ(cfg.injection_speedup, 4u);
  EXPECT_EQ(cfg.priority_levels, 2u);
}

TEST(SchemePresets, AccSupplyOnlyAcceleratesSupply) {
  const Config cfg = apply_scheme(Config{}, Scheme::kAccSupply);
  EXPECT_EQ(cfg.reply_ni, NiArch::kSplitQueue);
  EXPECT_EQ(cfg.injection_speedup, 1u);
  EXPECT_EQ(cfg.priority_levels, 1u);
}

TEST(SchemePresets, AccConsumeOnlyAcceleratesConsumption) {
  const Config cfg = apply_scheme(Config{}, Scheme::kAccConsume);
  EXPECT_EQ(cfg.reply_ni, NiArch::kEnhanced);
  EXPECT_EQ(cfg.injection_speedup, 4u);
  EXPECT_EQ(cfg.priority_levels, 1u);
}

TEST(SchemePresets, MultiPortUsesExtraPorts) {
  const Config cfg = apply_scheme(Config{}, Scheme::kAdaMultiPort);
  EXPECT_EQ(cfg.reply_ni, NiArch::kMultiPort);
  EXPECT_GE(cfg.multiport_ports, 2u);
}

TEST(SchemePresets, RawBaselineHasNarrowMcNiLink) {
  const Config cfg = apply_scheme(Config{}, Scheme::kRawBaseline);
  EXPECT_EQ(cfg.mc_ni_link, McNiLink::kNarrow);
  EXPECT_EQ(cfg.reply_ni, NiArch::kBaseline);
}

TEST(SchemePresets, SpeedupClampedByVcCount) {
  Config base;
  base.num_vcs = 2;
  const Config cfg = apply_scheme(base, Scheme::kAdaARI);
  EXPECT_EQ(cfg.injection_speedup, 2u);  // Eq. (2): S <= N_vc.
  EXPECT_EQ(cfg.validate(), "");
}

TEST(SchemeNames, AllDistinct) {
  std::set<std::string> names;
  for (Scheme s :
       {Scheme::kXYBaseline, Scheme::kXYARI, Scheme::kAdaBaseline,
        Scheme::kAdaMultiPort, Scheme::kAdaARI, Scheme::kAccSupply,
        Scheme::kAccConsume, Scheme::kAccBothNoPrio, Scheme::kRawBaseline}) {
    names.insert(scheme_name(s));
  }
  EXPECT_EQ(names.size(), 9u);
}

}  // namespace
}  // namespace arinoc
