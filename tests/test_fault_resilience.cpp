// Fault-injection & resilience subsystem: deterministic fault schedules,
// CRC/retransmission recovery, credit-loss accounting, and the
// deadlock/livelock watchdog.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "core/watchdog.hpp"
#include "noc/fault.hpp"
#include "noc/topology.hpp"

namespace arinoc {
namespace {

Config tiny_config() {
  Config cfg;
  cfg.warmup_cycles = 300;
  cfg.run_cycles = 1500;
  return cfg;
}

// ---------------------------------------------------------------------------
// Determinism: the fault schedule is a pure function of (fault seed, mesh,
// rates) — independent of the traffic seed and workload.
// ---------------------------------------------------------------------------

TEST(FaultDeterminism, SameFaultSeedSameScheduleAcrossTrafficSeeds) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_corrupt_rate = 1e-3;
  cfg.fault_link_stall_rate = 1e-4;
  cfg.fault_credit_loss_rate = 1e-4;
  cfg.fault_seed = 777;

  auto digest_with_traffic_seed = [&](std::uint64_t traffic_seed) {
    Config c = cfg;
    c.seed = traffic_seed;
    GpgpuSim sim(c, *find_benchmark("bfs"));
    sim.run(2000);
    const FaultInjector* fi = sim.reply_net().fault();
    EXPECT_NE(fi, nullptr);
    return fi->schedule_digest();
  };

  const std::uint64_t d1 = digest_with_traffic_seed(1);
  const std::uint64_t d2 = digest_with_traffic_seed(999);
  EXPECT_EQ(d1, d2);  // Traffic seed must not perturb the fault schedule.

  // But a different *fault* seed draws a different schedule.
  cfg.fault_seed = 778;
  Config c = cfg;
  c.seed = 1;
  GpgpuSim sim(c, *find_benchmark("bfs"));
  sim.run(2000);
  EXPECT_NE(sim.reply_net().fault()->schedule_digest(), d1);
}

TEST(FaultDeterminism, IdenticalConfigBitIdenticalStatsJson) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_corrupt_rate = 5e-4;
  cfg.fault_link_stall_rate = 5e-5;
  auto run_json = [&] {
    GpgpuSim sim(cfg, *find_benchmark("kmeans"));
    sim.run_with_warmup();
    return metrics_to_json(sim.collect());
  };
  EXPECT_EQ(run_json(), run_json());
}

TEST(FaultDeterminism, ZeroRatesConstructNoSubsystem) {
  // All-rates-zero is a strict no-op: no injector, no tracker.
  GpgpuSim sim(apply_scheme(tiny_config(), Scheme::kAdaARI),
               *find_benchmark("bfs"));
  EXPECT_EQ(sim.reply_net().fault(), nullptr);
  EXPECT_EQ(sim.reply_net().retransmit(), nullptr);
  EXPECT_EQ(sim.request_net().fault(), nullptr);
}

// ---------------------------------------------------------------------------
// Recovery: CRC-failed reply packets are retransmitted and re-delivered.
// ---------------------------------------------------------------------------

TEST(FaultRecovery, CorruptedPacketsAreRecovered) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_corrupt_rate = 1e-3;
  cfg.run_cycles = 4000;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  const Metrics m = sim.collect();
  ASSERT_GT(m.packets_corrupted, 0u);
  EXPECT_GT(m.packets_retransmitted, 0u);
  EXPECT_GT(m.packets_recovered, 0u);
  // >= 99% of corrupted packets recovered (the rest may still be in flight,
  // but none may exhaust their retry budget at this fault rate).
  EXPECT_LE(m.packets_lost,
            static_cast<std::uint64_t>(0.01 * m.packets_corrupted));
  // The system keeps making progress under faults.
  EXPECT_GT(m.ipc, 0.05);
}

TEST(FaultRecovery, WithoutRecoveryCorruptPacketsAreLost) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_corrupt_rate = 1e-3;
  cfg.fault_recovery = false;
  cfg.watchdog_enabled = false;  // Lost replies wedge their warps.
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run(3000);
  const Metrics m = sim.collect();
  ASSERT_GT(m.packets_corrupted, 0u);
  EXPECT_EQ(m.packets_retransmitted, 0u);
  EXPECT_EQ(m.packets_lost, m.packets_corrupted);
}

TEST(FaultRecovery, CreditLossIsAccountedByValidator) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_credit_loss_rate = 5e-4;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run(3000);
  const Metrics m = sim.collect();
  EXPECT_GT(m.credits_lost, 0u);
  // Destroyed credits are part of the conservation ledger, not a violation.
  EXPECT_EQ(sim.reply_net().validate_credit_invariants(), "");
  EXPECT_EQ(sim.request_net().validate_credit_invariants(), "");
}

TEST(FaultRecovery, LinkStallsDoNotLoseFlits) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_link_stall_rate = 2e-4;
  cfg.fault_link_stall_len = 30;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run(3000);
  const Metrics m = sim.collect();
  EXPECT_GT(m.link_stall_events, 0u);
  EXPECT_EQ(m.packets_lost, 0u);
  EXPECT_EQ(sim.reply_net().validate_credit_invariants(), "");
}

TEST(FaultRecovery, Da2MeshOverlayRejectsFaultCampaigns) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_corrupt_rate = 1e-3;
  EXPECT_THROW(GpgpuSim(cfg, *find_benchmark("bfs"), /*use_da2mesh=*/true),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Watchdog: synthetic-observation unit tests.
// ---------------------------------------------------------------------------

Watchdog::Observation obs(std::uint64_t movement, std::size_t live,
                          Cycle oldest = 0, bool has_oldest = false) {
  return {movement, live, oldest, has_oldest};
}

const std::function<std::string()> kNoAudit = [] { return std::string(); };

TEST(WatchdogUnit, DeadlockTripsAfterWindowWithLivePackets) {
  WatchdogParams p;
  p.deadlock_window = 200;
  p.check_interval = 50;
  Watchdog w(p);
  // Movement frozen at 42 with one live packet.
  WatchdogTripKind kind = WatchdogTripKind::kNone;
  for (Cycle t = 0; t <= 400 && kind == WatchdogTripKind::kNone; t += 50)
    kind = w.poll(t, [&] { return obs(42, 1); }, kNoAudit);
  EXPECT_EQ(kind, WatchdogTripKind::kDeadlock);
  EXPECT_NE(w.detail().find("no flit movement"), std::string::npos);
}

TEST(WatchdogUnit, NoTripWhenIdleOrMoving) {
  WatchdogParams p;
  p.deadlock_window = 200;
  p.check_interval = 50;
  {
    Watchdog w(p);  // Frozen movement but zero live packets: just idle.
    for (Cycle t = 0; t <= 1000; t += 50)
      EXPECT_EQ(w.poll(t, [&] { return obs(42, 0); }, kNoAudit),
                WatchdogTripKind::kNone);
  }
  {
    Watchdog w(p);  // Movement advances each poll: healthy.
    std::uint64_t mv = 0;
    for (Cycle t = 0; t <= 1000; t += 50)
      EXPECT_EQ(w.poll(t, [&] { return obs(++mv, 5); }, kNoAudit),
                WatchdogTripKind::kNone);
  }
}

TEST(WatchdogUnit, LivelockTripsOnPacketAgeCeiling) {
  WatchdogParams p;
  p.livelock_age = 300;
  p.check_interval = 50;
  Watchdog w(p);
  std::uint64_t mv = 0;  // Plenty of movement: deadlock detector stays quiet.
  WatchdogTripKind kind = WatchdogTripKind::kNone;
  for (Cycle t = 0; t <= 600 && kind == WatchdogTripKind::kNone; t += 50)
    kind = w.poll(t, [&] { return obs(++mv, 3, /*oldest=*/0, true); },
                  kNoAudit);
  EXPECT_EQ(kind, WatchdogTripKind::kLivelock);
}

TEST(WatchdogUnit, AuditFailureTripsInvariant) {
  WatchdogParams p;
  p.audit_interval = 100;
  p.check_interval = 50;
  Watchdog w(p);
  std::uint64_t mv = 0;
  WatchdogTripKind kind = WatchdogTripKind::kNone;
  for (Cycle t = 0; t <= 300 && kind == WatchdogTripKind::kNone; t += 50)
    kind = w.poll(t, [&] { return obs(++mv, 1); },
                  [] { return std::string("credit leak on link X"); });
  EXPECT_EQ(kind, WatchdogTripKind::kInvariant);
  EXPECT_NE(w.detail().find("credit leak"), std::string::npos);
}

TEST(WatchdogUnit, TripExitStatusesAreDistinct) {
  const WatchdogTrip dead(WatchdogTripKind::kDeadlock, "d", "dump");
  const WatchdogTrip live(WatchdogTripKind::kLivelock, "l", "dump");
  const WatchdogTrip inv(WatchdogTripKind::kInvariant, "i", "dump");
  EXPECT_EQ(dead.exit_status(), 3);
  EXPECT_EQ(live.exit_status(), 4);
  EXPECT_EQ(inv.exit_status(), 5);
}

// ---------------------------------------------------------------------------
// Watchdog: end-to-end behaviour inside GpgpuSim.
// ---------------------------------------------------------------------------

TEST(WatchdogSim, WedgedNetworkTripsWithDiagnosticDump) {
  // Seeded permanent port failures with recovery disabled wedge the reply
  // network; the watchdog must convert the hang into a clean diagnosis.
  Config cfg = apply_scheme(tiny_config(), Scheme::kXYBaseline);
  cfg.fault_port_fail_rate = 2e-5;
  cfg.fault_recovery = false;
  cfg.watchdog_deadlock_window = 600;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  bool tripped = false;
  try {
    sim.run(30000);
  } catch (const WatchdogTrip& trip) {
    tripped = true;
    EXPECT_EQ(trip.kind(), WatchdogTripKind::kDeadlock);
    EXPECT_EQ(trip.exit_status(), 3);
    EXPECT_FALSE(trip.dump().empty());
    // The dump names the failed links and the stuck packets (with ages).
    EXPECT_NE(trip.dump().find("blocked links"), std::string::npos);
    EXPECT_NE(trip.dump().find("age"), std::string::npos);
  }
  EXPECT_TRUE(tripped);
}

TEST(WatchdogSim, NoFalsePositivesAcrossSmokeSuite) {
  // Every benchmark in the 30-workload suite runs clean under an aggressive
  // watchdog (tight deadlock window + periodic credit audits).
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.watchdog_deadlock_window = 300;
  cfg.watchdog_audit_interval = 500;
  for (const BenchmarkTraits& b : benchmark_suite()) {
    GpgpuSim sim(cfg, b);
    EXPECT_NO_THROW(sim.run(1200)) << "false positive on " << b.name;
  }
}

TEST(WatchdogSim, DiagnosticDumpIsCallableOnHealthySystem) {
  GpgpuSim sim(apply_scheme(tiny_config(), Scheme::kAdaARI),
               *find_benchmark("bfs"));
  sim.run(500);
  const std::string dump = sim.diagnostic_dump("test probe");
  EXPECT_NE(dump.find("test probe"), std::string::npos);
  EXPECT_NE(dump.find("request"), std::string::npos);
  EXPECT_NE(dump.find("reply"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Config validation & entry-point hardening.
// ---------------------------------------------------------------------------

TEST(FaultConfig, ValidateRejectsBadFaultKnobs) {
  Config cfg;
  cfg.fault_corrupt_rate = 1.5;
  EXPECT_NE(cfg.validate().find("fault_corrupt_rate"), std::string::npos);
  cfg = Config{};
  cfg.fault_credit_loss_rate = -0.1;
  EXPECT_NE(cfg.validate().find("fault_credit_loss_rate"), std::string::npos);
  cfg = Config{};
  cfg.rtx_timeout = 0;
  EXPECT_NE(cfg.validate().find("rtx_timeout"), std::string::npos);
  cfg = Config{};
  cfg.watchdog_deadlock_window = 0;
  EXPECT_NE(cfg.validate().find("watchdog_deadlock_window"),
            std::string::npos);
  cfg.watchdog_enabled = false;  // Knob only checked when the watchdog is on.
  EXPECT_EQ(cfg.validate(), "");
}

TEST(FaultConfig, ValidateMessagesEmbedOffendingValues) {
  Config cfg;
  cfg.mesh_width = 0;
  EXPECT_NE(cfg.validate().find("0x6"), std::string::npos);
  cfg = Config{};
  cfg.injection_speedup = 7;
  EXPECT_NE(cfg.validate().find("S=7"), std::string::npos);
}

TEST(FaultConfig, SimAndExperimentRejectInvalidConfigs) {
  Config bad = tiny_config();
  bad.num_vcs = 0;
  EXPECT_THROW(GpgpuSim(bad, *find_benchmark("bfs")), std::invalid_argument);
  EXPECT_THROW(run_scheme(tiny_config(), Scheme::kAdaARI, "no-such-bench"),
               std::invalid_argument);
  EXPECT_THROW(run_scheme(tiny_config(), Scheme::kAdaARI, "bfs",
                          [](Config& c) { c.fault_corrupt_rate = 2.0; }),
               std::invalid_argument);
}

TEST(FaultConfig, EnableMaskGatesFaultClasses) {
  Config cfg;
  cfg.fault_corrupt_rate = 1e-3;
  cfg.fault_enable_mask = 0;  // Rate set but class masked off: no faults.
  EXPECT_FALSE(cfg.fault_enabled());
  cfg.fault_enable_mask = kFaultCorrupt;
  EXPECT_TRUE(cfg.fault_enabled());
}

// ---------------------------------------------------------------------------
// Stall windows must close: the injector has to push the *unblock*
// transition when a window expires, not just the block. (Regression: the
// old change detection recomputed "was blocked" at the current cycle, so a
// window expiring exactly then looked like no transition and the router
// stayed blocked forever — the chaos soak wedged on this.)
// ---------------------------------------------------------------------------

TEST(FaultInjection, StallWindowsUnblockAfterExpiry) {
  Mesh mesh(4, 4, 4);
  FaultParams p;
  p.link_stall_rate = 5e-3;
  p.link_stall_len = 20;
  FaultInjector fi(p, &mesh);

  Cycle now = 0;
  NodeId src = kInvalidNode;
  int dir = -1;
  // Drive until the first stall window opens; the block transition must be
  // pushed that cycle.
  while (fi.counters().stall_events == 0) {
    ASSERT_LT(now, 10000u) << "no stall drawn at rate 5e-3";
    fi.begin_cycle(now++);
  }
  ASSERT_FALSE(fi.changed_links().empty());
  std::tie(src, dir) = fi.changed_links().front();
  EXPECT_TRUE(fi.link_blocked(src, dir));

  // The window holds for link_stall_len cycles and then must report the
  // unblock transition for the same link.
  bool unblocked = false;
  for (Cycle end = now + 2 * p.link_stall_len; now < end && !unblocked;
       ++now) {
    fi.begin_cycle(now);
    for (const auto& [n, d] : fi.changed_links()) {
      if (n == src && d == dir && !fi.link_blocked(n, d)) unblocked = true;
    }
  }
  EXPECT_TRUE(unblocked) << "stall window never reported its unblock";
  EXPECT_FALSE(fi.link_blocked(src, dir));
}

TEST(FaultInjection, StalledFabricDrainsAfterWindowsClose) {
  // End-to-end shape of the same contract: with only transient stalls
  // enabled, throughput must keep flowing long after many windows opened.
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_link_stall_rate = 1e-4;
  cfg.fault_enable_mask = kFaultLinkStall;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run(3000);
  const std::uint64_t mid = sim.collect().warp_instructions;
  sim.run(3000);
  const Metrics m = sim.collect();
  EXPECT_GT(m.link_stall_events, 0u);
  // Fresh progress in the second half: no creeping permanent blockage.
  EXPECT_GT(m.warp_instructions, mid + mid / 4);
}

}  // namespace
}  // namespace arinoc
