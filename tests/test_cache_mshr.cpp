// Cache (LRU set-associative) and MSHR behaviour.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/mshr.hpp"

namespace arinoc {
namespace {

TEST(Cache, MissThenHitAfterFill) {
  Cache c(1024, 2, 64);
  EXPECT_FALSE(c.access(0x100));
  c.fill(0x100);
  EXPECT_TRUE(c.access(0x100));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, GeometryDerived) {
  Cache c(16 * 1024, 4, 64);  // The L1 configuration.
  EXPECT_EQ(c.num_sets(), 64u);
  EXPECT_EQ(c.assoc(), 4u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 1 set: third distinct line evicts the least recently used.
  Cache c(128, 2, 64);
  ASSERT_EQ(c.num_sets(), 1u);
  c.fill(0 * 64);
  c.fill(1 * 64);
  EXPECT_TRUE(c.access(0 * 64));  // Touch line 0: line 1 becomes LRU.
  const Addr evicted = c.fill(2 * 64);
  EXPECT_EQ(evicted, 1 * 64u);
  EXPECT_TRUE(c.contains(0 * 64));
  EXPECT_FALSE(c.contains(1 * 64));
  EXPECT_TRUE(c.contains(2 * 64));
}

TEST(Cache, FillOfPresentLineDoesNotEvict) {
  Cache c(128, 2, 64);
  c.fill(0);
  c.fill(64);
  EXPECT_EQ(c.fill(0), 0u);  // Already present: no eviction.
  EXPECT_TRUE(c.contains(64));
}

TEST(Cache, SetIndexingSeparatesLines) {
  Cache c(256, 1, 64);  // 4 sets, direct mapped.
  c.fill(0 * 64);
  c.fill(1 * 64);
  c.fill(2 * 64);
  c.fill(3 * 64);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(64));
  EXPECT_TRUE(c.contains(128));
  EXPECT_TRUE(c.contains(192));
  // A conflicting line (same set as 0) evicts only line 0.
  c.fill(4 * 64);
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(64));
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(1024, 2, 64);
  c.fill(0x40);
  EXPECT_TRUE(c.invalidate(0x40));
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_FALSE(c.invalidate(0x40));  // Second invalidate is a no-op.
}

TEST(Cache, ContainsDoesNotPerturbLruOrStats) {
  Cache c(128, 2, 64);
  c.fill(0);
  c.fill(64);
  // Probing line 0 must NOT refresh it.
  EXPECT_TRUE(c.contains(0));
  c.fill(128);  // Evicts LRU = line 0 (fill order, no touch).
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, ResetClearsContents) {
  Cache c(1024, 2, 64);
  c.fill(0x80);
  c.access(0x80);
  c.reset();
  EXPECT_FALSE(c.contains(0x80));
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, HitRateComputation) {
  Cache c(1024, 2, 64);
  c.fill(0);
  c.access(0);
  c.access(0);
  c.access(64);  // miss
  EXPECT_NEAR(c.hit_rate(), 2.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------- MSHR

TEST(Mshr, FirstMissAllocates) {
  Mshr m(4, 2);
  EXPECT_EQ(m.lookup(0x100, 1), Mshr::Outcome::kNewMiss);
  EXPECT_TRUE(m.has_entry(0x100));
  EXPECT_EQ(m.used_entries(), 1u);
}

TEST(Mshr, SecondMissMerges) {
  Mshr m(4, 2);
  EXPECT_EQ(m.lookup(0x100, 1), Mshr::Outcome::kNewMiss);
  EXPECT_EQ(m.lookup(0x100, 2), Mshr::Outcome::kMerged);
  EXPECT_EQ(m.used_entries(), 1u);  // Same entry.
}

TEST(Mshr, MergeCapacityEnforced) {
  Mshr m(4, 2);
  EXPECT_EQ(m.lookup(0x100, 1), Mshr::Outcome::kNewMiss);
  EXPECT_EQ(m.lookup(0x100, 2), Mshr::Outcome::kMerged);
  EXPECT_EQ(m.lookup(0x100, 3), Mshr::Outcome::kFull);
}

TEST(Mshr, EntryCapacityEnforced) {
  Mshr m(2, 8);
  EXPECT_EQ(m.lookup(0x000, 1), Mshr::Outcome::kNewMiss);
  EXPECT_EQ(m.lookup(0x040, 1), Mshr::Outcome::kNewMiss);
  EXPECT_EQ(m.lookup(0x080, 1), Mshr::Outcome::kFull);
  EXPECT_TRUE(m.full());
}

TEST(Mshr, FillReturnsAllMergedTagsAndFrees) {
  Mshr m(4, 8);
  m.lookup(0x100, 7);
  m.lookup(0x100, 9);
  m.lookup(0x100, 7);  // The same warp can wait twice (two instructions).
  const auto tags = m.fill(0x100);
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], 7u);
  EXPECT_EQ(tags[1], 9u);
  EXPECT_EQ(tags[2], 7u);
  EXPECT_FALSE(m.has_entry(0x100));
  EXPECT_EQ(m.used_entries(), 0u);
}

TEST(Mshr, SpuriousFillIsEmpty) {
  Mshr m(4, 8);
  EXPECT_TRUE(m.fill(0xdead).empty());
}

}  // namespace
}  // namespace arinoc
