// Chaos/soak harness: flash-crowd overload combined with transient fault
// injection on the scheme whose reply path actually collapses (XY baseline).
// The contract under test is *graceful degradation and recovery*:
//
//  1. the watchdog never trips (no deadlock/livelock escalation) — overload
//     degrades service, it does not wedge the fabric;
//  2. the system enters a degraded state during the flash crowd and sheds
//     request-side load instead of letting the reply path collapse;
//  3. once the crowd passes, the degradation FSM steps all the way back to
//     NORMAL and the tail latency re-attains the steady-state SLO.
//
// Parameters are the smallest grid that reliably drives the XY baseline
// through THROTTLED/SHEDDING and back on the default 6x6 mesh.
#include <gtest/gtest.h>

#include "core/gpgpu_sim.hpp"
#include "core/watchdog.hpp"
#include "noc/admission.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {
namespace {

Config chaos_config() {
  Config cfg = apply_scheme(Config{}, Scheme::kXYBaseline);
  cfg.open_loop = true;
  // Steady 0.045 req/cycle/CC with a 20x flash crowd over [500, 3500).
  cfg.pace_spec = "flash:0.03,at=500,len=3000,mult=20";
  cfg.pace_scale = 1.5;
  cfg.admission_enabled = true;
  // Transient faults with recovery: corrupted flits are dropped by CRC and
  // retransmitted, stall windows open and close.
  cfg.fault_corrupt_rate = 1e-4;
  cfg.fault_link_stall_rate = 1e-5;
  cfg.fault_recovery = true;
  return cfg;
}

TEST(ChaosSoak, FlashCrowdWithFaultsDegradesGracefullyAndRecovers) {
  GpgpuSim sim(chaos_config(), *find_benchmark("bfs"));

  // Phase 1 — steady state before the crowd. No step() may throw
  // WatchdogTrip anywhere in this test; ASSERT_NO_THROW makes the contract
  // explicit rather than relying on gtest's uncaught-exception failure.
  ASSERT_NO_THROW(sim.run(500));
  sim.reset_stats();

  // Phase 2 — the flash crowd plus drain time. 20x the offered load is far
  // past the XY baseline's capacity: the FSM must engage and shed.
  ASSERT_NO_THROW(sim.run(4000));
  const Metrics overload = sim.collect();
  EXPECT_GT(overload.degrade_transitions, 0u) << "FSM never engaged";
  EXPECT_GT(overload.cycles_throttled + overload.cycles_shedding, 0u);
  EXPECT_GT(overload.requests_shed, 0u) << "admission shed nothing";
  // Shedding bounds the collapse: some goodput survives the crowd.
  EXPECT_GT(overload.goodput, 0.0);

  // Phase 3 — soak past the episode until the backlog drains and the FSM
  // steps back down. The flash ends at cycle 3500; give recovery headroom.
  ASSERT_NO_THROW(sim.run(3500));
  EXPECT_EQ(sim.degrade_state(), DegradeState::kNormal)
      << "did not recover to NORMAL after the flash crowd";

  // Phase 4 — SLO re-attained: measure a fresh window at the base rate and
  // hold it to a steady-state tail bound. 0.045 req/cycle/CC is ~1/4 of the
  // baseline's capacity; p99 sits near 120 cycles when healthy and in the
  // thousands while collapsed.
  sim.reset_stats();
  ASSERT_NO_THROW(sim.run(3000));
  const Metrics tail = sim.collect();
  EXPECT_EQ(sim.degrade_state(), DegradeState::kNormal);
  EXPECT_EQ(tail.cycles_shedding, 0u) << "still shedding after recovery";
  EXPECT_GT(tail.requests_completed, 0u);
  EXPECT_GE(tail.goodput, 0.85 * tail.offered_rate);
  EXPECT_LT(tail.e2e_latency_p99, 1000.0)
      << "tail latency did not re-attain the steady-state SLO";
}

TEST(ChaosSoak, AdmissionBoundsTailVersusUngatedOverload) {
  // The same crowd without admission control collapses harder: the gated
  // run must land a strictly better p99 during the overload window.
  Config gated = chaos_config();
  Config ungated = chaos_config();
  ungated.admission_enabled = false;

  GpgpuSim g(gated, *find_benchmark("bfs"));
  GpgpuSim u(ungated, *find_benchmark("bfs"));
  ASSERT_NO_THROW(g.run(500));
  ASSERT_NO_THROW(u.run(500));
  g.reset_stats();
  u.reset_stats();
  ASSERT_NO_THROW(g.run(4000));
  ASSERT_NO_THROW(u.run(4000));
  const Metrics mg = g.collect();
  const Metrics mu = u.collect();
  EXPECT_LT(mg.e2e_latency_p99, mu.e2e_latency_p99)
      << "admission did not improve the overload tail";
  EXPECT_GT(mg.requests_shed, 0u);
  EXPECT_EQ(mu.requests_shed, 0u);  // Nothing sheds without admission.
}

}  // namespace
}  // namespace arinoc
