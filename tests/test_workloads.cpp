// Workload suite composition and trace-generator statistics: the synthetic
// streams must reproduce the traits they were parameterized with.
#include <gtest/gtest.h>

#include <set>

#include "workloads/benchmark.hpp"
#include "workloads/suite.hpp"
#include "workloads/tracegen.hpp"

namespace arinoc {
namespace {

TEST(Suite, ThirtyBenchmarks) {
  EXPECT_EQ(benchmark_suite().size(), 30u);
}

TEST(Suite, SensitivityMixMatchesPaper) {
  // §6.2: 9 highly sensitive, 11 medium, 10 low.
  EXPECT_EQ(benchmarks_with(Sensitivity::kHigh).size(), 9u);
  EXPECT_EQ(benchmarks_with(Sensitivity::kMedium).size(), 11u);
  EXPECT_EQ(benchmarks_with(Sensitivity::kLow).size(), 10u);
}

TEST(Suite, NamesUnique) {
  std::set<std::string> names;
  for (const auto& b : benchmark_suite()) names.insert(b.name);
  EXPECT_EQ(names.size(), 30u);
}

TEST(Suite, FindByName) {
  ASSERT_NE(find_benchmark("bfs"), nullptr);
  EXPECT_EQ(find_benchmark("bfs")->sensitivity, Sensitivity::kHigh);
  EXPECT_EQ(find_benchmark("no-such-benchmark"), nullptr);
}

TEST(Suite, FigureSubsetsExist) {
  for (const auto& name : fig6_benchmarks()) {
    EXPECT_NE(find_benchmark(name), nullptr) << name;
  }
  for (const auto& name : fig9_benchmarks()) {
    EXPECT_NE(find_benchmark(name), nullptr) << name;
  }
  for (const auto& name : fig15_benchmarks()) {
    EXPECT_NE(find_benchmark(name), nullptr) << name;
  }
  EXPECT_EQ(fig9_benchmarks().size(), 2u);
  EXPECT_EQ(fig15_benchmarks().size(), 4u);
}

TEST(Suite, TraitsWithinModelRanges) {
  for (const auto& b : benchmark_suite()) {
    EXPECT_GT(b.mem_ratio, 0.0) << b.name;
    EXPECT_LT(b.mem_ratio, 1.0) << b.name;
    EXPECT_GE(b.store_frac, 0.0) << b.name;
    EXPECT_LE(b.store_frac, 0.6) << b.name;
    EXPECT_GE(b.lines_mean, 1.0) << b.name;
    EXPECT_LE(b.lines_mean, 4.0) << b.name;
    EXPECT_GT(b.working_set_kb, 0u) << b.name;
  }
}

TEST(Suite, HighSensitivityMeansMoreTraffic) {
  // Class averages of memory intensity must be ordered high > med > low.
  auto class_mean = [](Sensitivity s) {
    double sum = 0;
    int n = 0;
    for (const auto& b : benchmark_suite()) {
      if (b.sensitivity == s) {
        sum += b.mem_ratio;
        ++n;
      }
    }
    return sum / n;
  };
  EXPECT_GT(class_mean(Sensitivity::kHigh), class_mean(Sensitivity::kMedium));
  EXPECT_GT(class_mean(Sensitivity::kMedium), class_mean(Sensitivity::kLow));
}

// ------------------------------------------------------------- TraceGen

TEST(TraceGen, DeterministicForSameSeed) {
  const BenchmarkTraits& t = *find_benchmark("bfs");
  TraceGen a(t, 4, 4, 64, 42), b(t, 4, 4, 64, 42);
  for (int i = 0; i < 500; ++i) {
    const Instr x = a.next(1, 2);
    const Instr y = b.next(1, 2);
    EXPECT_EQ(x.is_mem, y.is_mem);
    EXPECT_EQ(x.is_store, y.is_store);
    EXPECT_EQ(x.num_lines, y.num_lines);
    for (int k = 0; k < x.num_lines; ++k) EXPECT_EQ(x.lines[k], y.lines[k]);
  }
}

TEST(TraceGen, MemRatioMatchesTraits) {
  const BenchmarkTraits& t = *find_benchmark("bfs");  // mem_ratio 0.42.
  TraceGen gen(t, 1, 1, 64, 7);
  int mem = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.next(0, 0).is_mem) ++mem;
  }
  EXPECT_NEAR(static_cast<double>(mem) / n, t.mem_ratio, 0.02);
}

TEST(TraceGen, StoreFractionMatchesTraits) {
  const BenchmarkTraits& t = *find_benchmark("transpose");  // stores 0.45.
  TraceGen gen(t, 1, 1, 64, 7);
  int mem = 0, stores = 0;
  for (int i = 0; i < 40000; ++i) {
    const Instr instr = gen.next(0, 0);
    if (instr.is_mem) {
      ++mem;
      if (instr.is_store) ++stores;
    }
  }
  EXPECT_NEAR(static_cast<double>(stores) / mem, t.store_frac, 0.03);
}

TEST(TraceGen, MeanLinesMatchesTraits) {
  const BenchmarkTraits& t = *find_benchmark("mummergpu");  // lines 3.2.
  TraceGen gen(t, 1, 1, 64, 7);
  double lines = 0;
  int mem = 0;
  for (int i = 0; i < 40000; ++i) {
    const Instr instr = gen.next(0, 0);
    if (instr.is_mem) {
      ++mem;
      lines += instr.num_lines;
    }
  }
  // Before coalescing (duplicates possible), mean matches the trait.
  EXPECT_NEAR(lines / mem, t.lines_mean, 0.1);
}

TEST(TraceGen, AddressesLineAlignedAndInBounds) {
  const BenchmarkTraits& t = *find_benchmark("hotspot");
  const std::uint32_t cores = 4;
  TraceGen gen(t, cores, 2, 64, 9);
  const Addr ws = static_cast<Addr>(t.working_set_kb) * 1024;
  const Addr limit = ws * (cores + 1);  // Private regions + shared region.
  for (int i = 0; i < 20000; ++i) {
    const Instr instr = gen.next(i % cores, i % 2);
    for (int k = 0; k < instr.num_lines; ++k) {
      EXPECT_EQ(instr.lines[k] % 64, 0u);
      EXPECT_LT(instr.lines[k], limit);
    }
  }
}

TEST(TraceGen, PrivateRegionsAreDisjointAcrossCores) {
  BenchmarkTraits t = *find_benchmark("matrixMul");
  t.shared_frac = 0.0;  // Only private accesses.
  const Addr ws = static_cast<Addr>(t.working_set_kb) * 1024;
  TraceGen gen(t, 3, 1, 64, 11);
  for (int i = 0; i < 5000; ++i) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      const Instr instr = gen.next(c, 0);
      for (int k = 0; k < instr.num_lines; ++k) {
        EXPECT_GE(instr.lines[k], ws * c);
        EXPECT_LT(instr.lines[k], ws * (c + 1));
      }
    }
  }
}

TEST(TraceGen, SharedFractionTargetsSharedRegion) {
  BenchmarkTraits t = *find_benchmark("bfs");
  t.shared_frac = 1.0;
  t.locality = 0.0;
  const std::uint32_t cores = 2;
  const Addr ws = static_cast<Addr>(t.working_set_kb) * 1024;
  TraceGen gen(t, cores, 1, 64, 13);
  for (int i = 0; i < 2000; ++i) {
    const Instr instr = gen.next(0, 0);
    for (int k = 0; k < instr.num_lines; ++k) {
      EXPECT_GE(instr.lines[k], ws * cores);  // Shared region is last.
    }
  }
}

TEST(TraceGen, LocalityProducesRepeatedLines) {
  BenchmarkTraits hi = *find_benchmark("matrixMul");  // locality 0.78.
  BenchmarkTraits lo = hi;
  lo.locality = 0.0;
  auto distinct_frac = [](const BenchmarkTraits& t) {
    TraceGen gen(t, 1, 1, 64, 21);
    std::set<Addr> seen;
    int total = 0;
    for (int i = 0; i < 20000 && total < 2000; ++i) {
      const Instr instr = gen.next(0, 0);
      if (!instr.is_mem) continue;
      for (int k = 0; k < instr.num_lines; ++k) {
        seen.insert(instr.lines[k]);
        ++total;
      }
    }
    return static_cast<double>(seen.size()) / total;
  };
  EXPECT_LT(distinct_frac(hi), distinct_frac(lo));
}

TEST(TraceGen, BurstinessModulatesPhases) {
  BenchmarkTraits t = *find_benchmark("srad");
  t.burstiness = 0.8;
  t.burst_period = 200;
  TraceGen gen(t, 1, 1, 64, 5);
  // First half of the period is the hot phase, second half cold.
  int hot_mem = 0, cold_mem = 0;
  for (int period = 0; period < 100; ++period) {
    for (int i = 0; i < 100; ++i) {
      if (gen.next(0, 0).is_mem) ++hot_mem;
    }
    for (int i = 0; i < 100; ++i) {
      if (gen.next(0, 0).is_mem) ++cold_mem;
    }
  }
  EXPECT_GT(hot_mem, cold_mem * 3);  // (1+b)/(1-b) = 9 in expectation.
}

TEST(TraceGen, ZeroBurstinessIsStationary) {
  const BenchmarkTraits& t = *find_benchmark("srad");
  ASSERT_EQ(t.burstiness, 0.0);
  TraceGen gen(t, 1, 1, 64, 5);
  int first = 0, second = 0;
  for (int i = 0; i < 5000; ++i) {
    if (gen.next(0, 0).is_mem) ++first;
  }
  for (int i = 0; i < 5000; ++i) {
    if (gen.next(0, 0).is_mem) ++second;
  }
  EXPECT_NEAR(static_cast<double>(first) / second, 1.0, 0.1);
}

// Parameterized property: every suite benchmark generates a valid stream.
class AllBenchmarks : public ::testing::TestWithParam<std::string> {};

TEST_P(AllBenchmarks, GeneratesValidInstructions) {
  const BenchmarkTraits& t = *find_benchmark(GetParam());
  TraceGen gen(t, 2, 2, 64, 3);
  int mem = 0;
  for (int i = 0; i < 5000; ++i) {
    const Instr instr = gen.next(i % 2, (i / 2) % 2);
    if (instr.is_mem) {
      ++mem;
      ASSERT_GE(instr.num_lines, 1);
      ASSERT_LE(instr.num_lines, Instr::kMaxLines);
    } else {
      ASSERT_EQ(instr.num_lines, 0);
    }
  }
  EXPECT_GT(mem, 0);
}

INSTANTIATE_TEST_SUITE_P(Suite, AllBenchmarks,
                         ::testing::ValuesIn(all_benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace arinoc
