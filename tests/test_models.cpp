// ARI design-guideline math (Eq. 1/2), the analytical area model and the
// activity-based energy model.
#include <gtest/gtest.h>

#include "core/area_model.hpp"
#include "core/energy.hpp"
#include "core/scheme.hpp"

namespace arinoc {
namespace {

// ----------------------------------------------------------- Eq. (1)/(2)

TEST(SpeedupGuideline, Eq1CeilsProduct) {
  // 0.5 pkt/cycle x 4.5 flits/pkt = 2.25 -> S >= 3.
  EXPECT_EQ(min_speedup_eq1(0.5, 4.5), 3u);
  EXPECT_EQ(min_speedup_eq1(0.2, 5.0), 1u);
  EXPECT_EQ(min_speedup_eq1(1.0, 5.0), 5u);
}

TEST(SpeedupGuideline, Eq2Bound) {
  EXPECT_EQ(max_speedup_eq2(4, 4), 4u);  // 2D mesh, 4 VCs -> 4.
  EXPECT_EQ(max_speedup_eq2(4, 2), 2u);
  EXPECT_EQ(max_speedup_eq2(3, 4), 3u);  // Edge router.
}

TEST(SpeedupGuideline, RecommendationClampedByEq2) {
  // Eq. (1) wants 5, Eq. (2) caps at 4 — the paper's main configuration.
  EXPECT_EQ(recommended_speedup(1.0, 5.0, 4, 4), 4u);
  // Low rate: minimal S suffices.
  EXPECT_EQ(recommended_speedup(0.1, 5.0, 4, 4), 1u);
}

TEST(SpeedupGuideline, MeanReplyFlitsWeighted) {
  // 90% long read replies (5 flits), 10% short write replies.
  EXPECT_NEAR(mean_reply_flits(0.9, 5), 4.6, 1e-12);
  EXPECT_NEAR(mean_reply_flits(0.0, 5), 1.0, 1e-12);
  EXPECT_NEAR(mean_reply_flits(1.0, 5), 5.0, 1e-12);
}

// ------------------------------------------------------------- Area §6.1

TEST(AreaModel, AriRouterLargerThanBaseline) {
  AreaModel m;
  Config cfg = apply_scheme(Config{}, Scheme::kAdaARI);
  const AreaReport r = m.evaluate(cfg);
  EXPECT_GT(r.ari_router_um2, r.baseline_router_um2);
  EXPECT_GT(r.ari_ni_um2, r.baseline_ni_um2);
}

TEST(AreaModel, PairOverheadInPaperBallpark) {
  // Paper §6.1: ~5.4% per modified NI + MC-router pair. Accept 2-12% from
  // the analytical substitute.
  AreaModel m;
  const AreaReport r = m.evaluate(apply_scheme(Config{}, Scheme::kAdaARI));
  EXPECT_GT(r.pair_overhead_pct, 2.0);
  EXPECT_LT(r.pair_overhead_pct, 12.0);
}

TEST(AreaModel, AmortizedOverheadBelowOnePercentish) {
  // Paper §6.1: 0.7% amortized over the whole network (only 8 of 72
  // router+NI pairs change).
  AreaModel m;
  const AreaReport r = m.evaluate(apply_scheme(Config{}, Scheme::kAdaARI));
  EXPECT_GT(r.network_overhead_pct, 0.1);
  EXPECT_LT(r.network_overhead_pct, 1.5);
  EXPECT_LT(r.network_overhead_pct, r.pair_overhead_pct / 4.0);
}

TEST(AreaModel, OverheadGrowsWithSpeedup) {
  AreaModel m;
  Config s2 = apply_scheme(Config{}, Scheme::kAdaARI);
  s2.injection_speedup = 2;
  Config s4 = apply_scheme(Config{}, Scheme::kAdaARI);
  EXPECT_LT(m.evaluate(s2).pair_overhead_pct,
            m.evaluate(s4).pair_overhead_pct);
}

TEST(AreaModel, RouterAreaScalesWithBuffering) {
  AreaModel m;
  const double small = m.router_um2(5, 5, 5, 2, 5, 128);
  const double large = m.router_um2(5, 5, 5, 4, 5, 128);
  EXPECT_GT(large, small);
}

// ------------------------------------------------------------ Energy §7.5

TEST(EnergyModel, StaticScalesWithCycles) {
  EnergyModel m;
  ActivityCounters a;
  a.cycles = 1000;
  const EnergyBreakdown e1 = m.evaluate(a);
  a.cycles = 2000;
  const EnergyBreakdown e2 = m.evaluate(a);
  EXPECT_NEAR(e2.static_nj, 2.0 * e1.static_nj, 1e-9);
  EXPECT_DOUBLE_EQ(e1.dynamic_nj(), 0.0);
}

TEST(EnergyModel, DynamicScalesWithActivity) {
  EnergyModel m;
  ActivityCounters a;
  a.noc_link_flits = 100;
  a.dram_accesses = 10;
  a.core_instructions = 50;
  const EnergyBreakdown e = m.evaluate(a);
  EXPECT_GT(e.dynamic_noc_nj, 0.0);
  EXPECT_GT(e.dynamic_mem_nj, 0.0);
  EXPECT_GT(e.dynamic_core_nj, 0.0);
  EXPECT_DOUBLE_EQ(e.total_nj(), e.dynamic_nj() + e.static_nj);
}

TEST(EnergyModel, SameWorkLessTimeSavesEnergy) {
  // The Fig. 14 mechanism: equal dynamic activity, shorter runtime ->
  // lower total energy via the static term.
  EnergyModel m;
  ActivityCounters slow, fast;
  slow.noc_link_flits = fast.noc_link_flits = 10000;
  slow.dram_accesses = fast.dram_accesses = 1000;
  slow.cycles = 20000;
  fast.cycles = 17000;  // ~15% faster (the ARI speedup).
  EXPECT_LT(m.evaluate(fast).total_nj(), m.evaluate(slow).total_nj());
}

}  // namespace
}  // namespace arinoc
