// Bottleneck analyzer: the §3 diagnosis tool must identify the reply
// injection point on a congested baseline and see the verdict move once
// ARI removes it.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"

namespace arinoc {
namespace {

Config quick() {
  Config cfg;
  cfg.warmup_cycles = 500;
  cfg.run_cycles = 3000;
  return cfg;
}

TEST(Analyzer, BaselineBfsDiagnosesReplyInjection) {
  const BottleneckAnalyzer analyzer(0.8);
  const BottleneckReport rep = analyzer.analyze(
      apply_scheme(quick(), Scheme::kAdaBaseline), *find_benchmark("bfs"));
  EXPECT_EQ(rep.verdict, "reply injection links");
}

TEST(Analyzer, AriMovesTheBottleneckOffTheNoc) {
  const BottleneckAnalyzer analyzer(0.8);
  const BottleneckReport rep = analyzer.analyze(
      apply_scheme(quick(), Scheme::kAdaARI), *find_benchmark("bfs"));
  EXPECT_NE(rep.verdict, "reply injection links");
}

TEST(Analyzer, UncongestedWorkloadIsLatencyOrIssueBound) {
  const BottleneckAnalyzer analyzer(0.8);
  const BottleneckReport rep =
      analyzer.analyze(apply_scheme(quick(), Scheme::kAdaARI),
                       *find_benchmark("matrixMul"));
  // matrixMul saturates the issue width (IPC pinned at the core limit).
  EXPECT_TRUE(rep.verdict == "core issue width" ||
              rep.verdict.rfind("latency-bound", 0) == 0)
      << rep.verdict;
}

TEST(Analyzer, ResourcesSortedByUtilization) {
  const BottleneckAnalyzer analyzer;
  const BottleneckReport rep = analyzer.analyze(
      apply_scheme(quick(), Scheme::kAdaBaseline), *find_benchmark("bfs"));
  ASSERT_GE(rep.resources.size(), 5u);
  for (std::size_t i = 1; i < rep.resources.size(); ++i) {
    EXPECT_GE(rep.resources[i - 1].utilization,
              rep.resources[i].utilization);
  }
  for (const auto& r : rep.resources) {
    EXPECT_GE(r.utilization, 0.0);
    EXPECT_LT(r.utilization, 2.0) << r.name;  // Sane capacity models.
  }
}

TEST(Analyzer, ReportRendersEveryResource) {
  const BottleneckAnalyzer analyzer;
  const BottleneckReport rep = analyzer.analyze(
      apply_scheme(quick(), Scheme::kXYBaseline), *find_benchmark("hotspot"));
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("bottleneck verdict:"), std::string::npos);
  EXPECT_NE(text.find("reply injection links"), std::string::npos);
  EXPECT_NE(text.find("DRAM"), std::string::npos);
  EXPECT_NE(text.find("core issue width"), std::string::npos);
}

TEST(Analyzer, WorksWithDa2MeshOverlay) {
  Config cfg = apply_scheme(quick(), Scheme::kAdaBaseline);
  GpgpuSim sim(cfg, *find_benchmark("bfs"), /*use_da2mesh=*/true);
  sim.run_with_warmup();
  const BottleneckAnalyzer analyzer(0.8);
  const BottleneckReport rep = analyzer.diagnose(sim);
  EXPECT_FALSE(rep.resources.empty());
  // The overlay has no mesh reply routers: no CC-reply-ejection row.
  for (const auto& r : rep.resources) {
    EXPECT_NE(r.name, "CC reply ejection");
  }
}

TEST(Analyzer, DiagnoseReusesRunSimulator) {
  Config cfg = apply_scheme(quick(), Scheme::kAdaBaseline);
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  const BottleneckAnalyzer analyzer(0.8);
  const BottleneckReport rep = analyzer.diagnose(sim);
  EXPECT_EQ(rep.metrics.cycles, cfg.run_cycles);
  EXPECT_FALSE(rep.resources.empty());
}

}  // namespace
}  // namespace arinoc
