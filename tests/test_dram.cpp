// GDDR5 timing model and FR-FCFS scheduling invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mem/dram.hpp"

namespace arinoc {
namespace {

DramTimings table1_timings() {
  return DramTimings{12, 40, 6, 28, 12, 12, 4};
}

/// Runs the DRAM until a completion appears; returns (txn, tick).
std::pair<TxnId, std::uint64_t> run_until_completion(GddrDram& d,
                                                     std::uint64_t limit) {
  for (std::uint64_t t = 0; t < limit; ++t) {
    d.tick(false);
    const auto done = d.drain_completed();
    if (!done.empty()) return {done[0].txn, t + 1};
  }
  return {~TxnId{0}, 0};
}

TEST(Dram, ClosedBankAccessLatency) {
  GddrDram d(16, table1_timings(), 8);
  d.enqueue({1, 0, 5, false, 0});
  const auto [txn, t] = run_until_completion(d, 200);
  EXPECT_EQ(txn, 1u);
  // ACT + tRCD + tCL + burst = 1 + 12 + 12 + 4 = 29 ticks.
  EXPECT_EQ(t, 29u);
}

TEST(Dram, RowHitIsFasterThanConflict) {
  GddrDram d(16, table1_timings(), 8);
  d.enqueue({1, 0, 5, false, 0});
  auto [txn1, t1] = run_until_completion(d, 200);
  ASSERT_EQ(txn1, 1u);
  // Same row: hit.
  d.enqueue({2, 0, 5, false, 0});
  auto [txn2, t2] = run_until_completion(d, 200);
  ASSERT_EQ(txn2, 2u);
  // Different row, same bank: conflict pays tRAS/tRP/tRCD.
  d.enqueue({3, 0, 9, false, 0});
  auto [txn3, t3] = run_until_completion(d, 200);
  ASSERT_EQ(txn3, 3u);
  EXPECT_LT(t2, t3);
  EXPECT_EQ(d.row_hits(), 1u);
  EXPECT_EQ(d.accesses(), 3u);
  EXPECT_EQ(d.activates(), 2u);
}

TEST(Dram, FrFcfsPrefersReadyRowHit) {
  GddrDram d(16, table1_timings(), 8);
  // Open row 5 on bank 0.
  d.enqueue({1, 0, 5, false, 0});
  run_until_completion(d, 200);
  // Older conflict (row 9) then younger hit (row 5): FR-FCFS services the
  // hit first.
  d.enqueue({2, 0, 9, false, 0});
  d.enqueue({3, 0, 5, false, 0});
  const auto [first, t] = run_until_completion(d, 400);
  (void)t;
  EXPECT_EQ(first, 3u);
}

TEST(Dram, BankParallelismBeatsSingleBank) {
  // 4 random-row requests to 4 different banks complete much sooner than 4
  // to the same bank.
  auto drain_time = [](bool same_bank) {
    GddrDram d(16, table1_timings(), 8);
    for (TxnId i = 0; i < 4; ++i) {
      d.enqueue({i, same_bank ? 0u : static_cast<std::uint32_t>(i),
                 100 + i * 7, false, 0});
    }
    std::uint64_t done = 0, t = 0;
    while (done < 4 && t < 2000) {
      d.tick(false);
      done += d.drain_completed().size();
      ++t;
    }
    return t;
  };
  EXPECT_LT(drain_time(false), drain_time(true));
}

TEST(Dram, TrrdLimitsActivateRate) {
  // Saturating random-row traffic: activates per tick can never exceed
  // 1/tRRD on average.
  GddrDram d(16, table1_timings(), 32);
  Xoshiro256 rng(3);
  TxnId id = 0;
  std::uint64_t ticks = 5000;
  for (std::uint64_t t = 0; t < ticks; ++t) {
    while (d.can_enqueue()) {
      d.enqueue({id++, static_cast<std::uint32_t>(rng.next_below(16)),
                 rng.next_below(5000), false, 0});
    }
    d.tick(false);
    d.drain_completed();
  }
  const double act_rate = static_cast<double>(d.activates()) / ticks;
  EXPECT_LE(act_rate, 1.0 / table1_timings().t_rrd + 0.01);
  EXPECT_GT(act_rate, 0.5 / table1_timings().t_rrd);  // But not crippled.
}

TEST(Dram, BusLimitsStreamingThroughput) {
  // Perfectly streaming (all row hits after the first): throughput is
  // bounded by the burst occupancy of the shared data bus.
  GddrDram d(16, table1_timings(), 32);
  TxnId id = 0;
  std::uint64_t row_seq = 0;
  int per_row = 0;
  std::uint64_t completed = 0;
  const std::uint64_t ticks = 4000;
  for (std::uint64_t t = 0; t < ticks; ++t) {
    while (d.can_enqueue()) {
      d.enqueue({id++, static_cast<std::uint32_t>(row_seq % 16),
                 row_seq / 16, false, 0});
      if (++per_row == 32) {
        per_row = 0;
        ++row_seq;
      }
    }
    d.tick(false);
    completed += d.drain_completed().size();
  }
  const double rate = static_cast<double>(completed) / ticks;
  EXPECT_LE(rate, 1.0 / table1_timings().burst + 0.01);
  EXPECT_GT(rate, 0.8 / table1_timings().burst);  // Bus well utilized.
  EXPECT_GT(d.row_hit_rate(), 0.9);
}

TEST(Dram, OutputBlockedStopsReadsNotWrites) {
  GddrDram d(16, table1_timings(), 8);
  d.enqueue({1, 0, 5, false, 0});  // Read.
  d.enqueue({2, 1, 6, true, 0});   // Write.
  std::uint64_t done_reads = 0, done_writes = 0;
  for (std::uint64_t t = 0; t < 100; ++t) {
    d.tick(/*output_blocked=*/true);
    for (const auto& c : d.drain_completed()) {
      if (c.write) {
        ++done_writes;
      } else {
        ++done_reads;
      }
    }
  }
  EXPECT_EQ(done_reads, 0u);  // Reads held while the reply path is full.
  EXPECT_EQ(done_writes, 1u);
  // Unblock: the read proceeds.
  for (std::uint64_t t = 0; t < 100 && done_reads == 0; ++t) {
    d.tick(false);
    for (const auto& c : d.drain_completed()) {
      if (!c.write) ++done_reads;
    }
  }
  EXPECT_EQ(done_reads, 1u);
}

TEST(Dram, StarvationCapForcesOldestFirst) {
  // A steady stream of row hits to bank 0 must not starve a conflicting
  // request (row 9) forever: after starvation_cap cycles, oldest-first
  // kicks in and the conflict is serviced.
  DramTimings t = table1_timings();
  t.starvation_cap = 64;
  GddrDram d(16, t, 32);
  d.enqueue({1, 0, 5, false, 0});
  run_until_completion(d, 200);  // Opens row 5.
  d.enqueue({2, 0, 9, false, 0});  // The conflict.
  bool conflict_done = false;
  TxnId next_hit = 100;
  for (std::uint64_t tick = 0; tick < 2000 && !conflict_done; ++tick) {
    if (d.can_enqueue()) d.enqueue({next_hit++, 0, 5, false, 0});
    d.tick(false);
    for (const auto& c : d.drain_completed()) {
      if (c.txn == 2) conflict_done = true;
    }
  }
  EXPECT_TRUE(conflict_done) << "row conflict starved behind row hits";
}

TEST(Dram, WithoutCapHitsBypassConflictLonger) {
  // Control for the starvation test: with a huge cap the conflict waits
  // much longer than with a tight one.
  auto conflict_wait = [](std::uint32_t cap) {
    DramTimings t = table1_timings();
    t.starvation_cap = cap;
    GddrDram d(16, t, 32);
    d.enqueue({1, 0, 5, false, 0});
    run_until_completion(d, 200);
    d.enqueue({2, 0, 9, false, 0});
    TxnId next_hit = 100;
    for (std::uint64_t tick = 0; tick < 5000; ++tick) {
      if (d.can_enqueue()) d.enqueue({next_hit++, 0, 5, false, 0});
      d.tick(false);
      for (const auto& c : d.drain_completed()) {
        if (c.txn == 2) return tick;
      }
    }
    return std::uint64_t{5000};
  };
  EXPECT_LT(conflict_wait(32), conflict_wait(2000));
}

TEST(Dram, QueueCapacityEnforced) {
  GddrDram d(16, table1_timings(), 2);
  EXPECT_TRUE(d.can_enqueue());
  d.enqueue({1, 0, 0, false, 0});
  d.enqueue({2, 1, 0, false, 0});
  EXPECT_FALSE(d.can_enqueue());
  EXPECT_EQ(d.queue_depth(), 2u);
}

TEST(Dram, StatsReset) {
  GddrDram d(16, table1_timings(), 8);
  d.enqueue({1, 0, 5, false, 0});
  run_until_completion(d, 100);
  EXPECT_GT(d.accesses(), 0u);
  d.reset_stats();
  EXPECT_EQ(d.accesses(), 0u);
  EXPECT_EQ(d.activates(), 0u);
  EXPECT_EQ(d.row_hits(), 0u);
}

// Property: under any random request mix, every enqueued request completes.
TEST(Dram, NoRequestIsLost) {
  GddrDram d(8, table1_timings(), 16);
  Xoshiro256 rng(17);
  TxnId id = 0;
  std::uint64_t completed = 0;
  for (std::uint64_t t = 0; t < 20000 && id < 300; ++t) {
    if (d.can_enqueue() && rng.chance(0.3)) {
      d.enqueue({id++, static_cast<std::uint32_t>(rng.next_below(8)),
                 rng.next_below(50), rng.chance(0.3), 0});
    }
    d.tick(rng.chance(0.2));  // Occasional output blockage.
    completed += d.drain_completed().size();
  }
  for (std::uint64_t t = 0; t < 5000 && completed < id; ++t) {
    d.tick(false);
    completed += d.drain_completed().size();
  }
  EXPECT_EQ(completed, id);
}

}  // namespace
}  // namespace arinoc
