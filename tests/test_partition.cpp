// K-way spatial domain partitioning (topo/partition.hpp): balance within
// one node, chiplet-boundary respect, complete boundary extraction, and
// fail-fast rejection of impossible domain counts.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"
#include "topo/fabric.hpp"
#include "topo/file.hpp"
#include "topo/graph.hpp"
#include "topo/partition.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {
namespace {

Config fabric_config(const std::string& kind) {
  Config cfg;
  cfg.fabric = kind;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.cmesh_concentration = 2;
  cfg.chiplets_x = 2;
  cfg.chiplets_y = 2;
  return cfg;
}

topo::Fabric file_fabric(const char* rel) {
  Config cfg;
  cfg.fabric = "file";
  cfg.topology_file = std::string(ARINOC_SOURCE_DIR) + rel;
  const topo::FabricGraph g = topo::parse_topology_file(cfg.topology_file);
  cfg.num_mcs =
      static_cast<std::uint32_t>(g.count_role(topo::NodeRole::kMC));
  return topo::make_fabric(cfg);
}

/// Structural invariants every partition must satisfy, for any fabric and
/// any K: complete coverage, |size_i - size_j| <= 1, sorted members
/// consistent with domain_of/local_of, and a boundary list that contains
/// exactly the cross-domain directed links of the fabric.
void check_partition(const topo::Fabric& fab,
                     const topo::DomainPartition& part, std::uint32_t k,
                     bool require_balance = true) {
  const std::size_t n = fab.nodes();
  ASSERT_EQ(part.num_domains, k);
  ASSERT_EQ(part.domain_of.size(), n);
  ASSERT_EQ(part.members.size(), k);
  ASSERT_EQ(part.local_of.size(), n);

  std::size_t min_size = n, max_size = 0, total = 0;
  for (std::uint32_t d = 0; d < k; ++d) {
    const auto& m = part.members[d];
    min_size = std::min(min_size, m.size());
    max_size = std::max(max_size, m.size());
    total += m.size();
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (i > 0) EXPECT_LT(m[i - 1], m[i]) << "members not ascending";
      EXPECT_EQ(part.domain_of[static_cast<std::size_t>(m[i])], d);
      EXPECT_EQ(part.local_of[static_cast<std::size_t>(m[i])], i);
    }
  }
  EXPECT_EQ(total, n) << "every node owned by exactly one domain";
  EXPECT_GT(min_size, 0u) << "no empty domains";
  // Asymmetric chiplet fabrics trade node balance for cutting only on
  // high-latency links (whole zero-latency components per domain), so the
  // +/-1 guarantee applies to the contiguous-range rule only.
  if (require_balance) {
    EXPECT_LE(max_size - min_size, 1u) << "balance within one node";
  }

  // Boundary completeness: every cross-domain directed link, nothing else.
  std::size_t cross = 0;
  std::uint32_t min_extra = 0;
  bool have_extra = false;
  for (NodeId src = 0; src < static_cast<NodeId>(n); ++src) {
    for (int p = 0; p < fab.max_ports(); ++p) {
      const NodeId dst = fab.neighbor(src, p);
      if (dst == kInvalidNode) continue;
      if (part.domain_of[static_cast<std::size_t>(src)] ==
          part.domain_of[static_cast<std::size_t>(dst)]) {
        continue;
      }
      ++cross;
      const std::uint32_t extra = fab.link_extra_latency(src, p);
      if (!have_extra || extra < min_extra) min_extra = extra;
      have_extra = true;
    }
  }
  EXPECT_EQ(part.boundary.size(), cross);
  for (const auto& b : part.boundary) {
    EXPECT_NE(part.domain_of[static_cast<std::size_t>(b.src)],
              part.domain_of[static_cast<std::size_t>(b.dst)]);
    EXPECT_EQ(fab.neighbor(b.src, b.src_port), b.dst);
    EXPECT_EQ(b.extra_latency, fab.link_extra_latency(b.src, b.src_port));
  }
  if (have_extra) EXPECT_EQ(part.min_boundary_extra, min_extra);
}

TEST(Partition, BalancedOnRegularFabrics) {
  for (const char* kind : {"mesh", "torus", "cmesh"}) {
    const topo::Fabric fab = topo::make_fabric(fabric_config(kind));
    for (const std::uint32_t k : {2u, 3u, 4u, 5u, 7u}) {
      if (k > fab.nodes()) continue;
      SCOPED_TRACE(std::string(kind) + " k=" + std::to_string(k));
      check_partition(fab, topo::partition_fabric(fab, k), k);
    }
  }
}

TEST(Partition, SingleDomainAndOnePerNode) {
  const topo::Fabric fab = topo::make_fabric(fabric_config("mesh"));
  const auto one = topo::partition_fabric(fab, 1);
  check_partition(fab, one, 1);
  EXPECT_TRUE(one.boundary.empty());
  const auto each =
      topo::partition_fabric(fab, static_cast<std::uint32_t>(fab.nodes()));
  check_partition(fab, each, static_cast<std::uint32_t>(fab.nodes()));
}

TEST(Partition, ChipletDomainsRespectChipletBoundaries) {
  // chiplet 2x2 over a 4x4 mesh: four 2x2 chiplets joined by serdes links
  // (the only links with extra latency). When K divides the chiplet count,
  // every domain is a union of whole chiplets, so every cut link is a
  // serdes link.
  Config cfg = fabric_config("chiplet");
  cfg.serdes_latency = 4;
  const topo::Fabric fab = topo::make_fabric(cfg);
  for (const std::uint32_t k : {2u, 4u}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const auto part = topo::partition_fabric(fab, k);
    check_partition(fab, part, k);
    ASSERT_FALSE(part.boundary.empty());
    for (const auto& b : part.boundary) {
      EXPECT_GT(b.extra_latency, 0u)
          << "cut link " << b.src << "->" << b.dst << " is not serdes";
    }
    EXPECT_GT(part.min_boundary_extra, 0u);
  }
  // K=3 does not divide 4 chiplets: the contiguous fallback still balances.
  check_partition(fab, topo::partition_fabric(fab, 3), 3);
}

TEST(Partition, FileTopologies) {
  for (const char* rel : {"/examples/topologies/asym_chiplet.topo",
                          "/examples/topologies/express_mesh.topo"}) {
    SCOPED_TRACE(rel);
    const topo::Fabric fab = file_fabric(rel);
    for (const std::uint32_t k : {2u, 3u, 4u}) {
      if (k > fab.nodes()) continue;
      check_partition(fab, topo::partition_fabric(fab, k), k,
                      /*require_balance=*/false);
    }
  }
}

TEST(Partition, Deterministic) {
  const topo::Fabric fab = topo::make_fabric(fabric_config("cmesh"));
  const auto a = topo::partition_fabric(fab, 4);
  const auto b = topo::partition_fabric(fab, 4);
  EXPECT_EQ(a.domain_of, b.domain_of);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.boundary.size(), b.boundary.size());
  EXPECT_EQ(a.min_boundary_extra, b.min_boundary_extra);
}

TEST(Partition, RejectsImpossibleDomainCounts) {
  const topo::Fabric fab = topo::make_fabric(fabric_config("mesh"));
  EXPECT_THROW(topo::partition_fabric(fab, 0), std::invalid_argument);
  EXPECT_THROW(
      topo::partition_fabric(fab,
                             static_cast<std::uint32_t>(fab.nodes()) + 1),
      std::invalid_argument);
}

TEST(Partition, SimRejectsMoreThreadsThanNodes) {
  // The CLI maps std::invalid_argument to exit code 2; at this layer the
  // throw itself is the fail-fast contract.
  Config cfg = fabric_config("mesh");
  cfg.num_mcs = 4;
  cfg.warmup_cycles = 10;
  cfg.run_cycles = 10;
  cfg.threads = 17;  // 4x4 mesh has 16 nodes.
  EXPECT_THROW(GpgpuSim(cfg, *find_benchmark("bfs")), std::invalid_argument);
}

}  // namespace
}  // namespace arinoc
