// Arbitrary-fabric subsystem (src/topo): topology-file parser error paths,
// the mesh-as-topology-file bit-identity guard, end-to-end completion of
// the generated fabrics under every scheme, up*/down* routing-table
// properties, generator shape invariants, and the file-fabric cache-key
// contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/gpgpu_sim.hpp"
#include "exec/result_cache.hpp"
#include "exec/runner.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "topo/fabric.hpp"
#include "topo/file.hpp"
#include "topo/generators.hpp"
#include "topo/graph.hpp"
#include "topo/table.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {
namespace {

// ---------------------------------------------------------------------------
// Parser error paths: every malformed file fails fast with a message that
// names the problem, before any simulation state exists.
// ---------------------------------------------------------------------------

std::string parse_error(const std::string& text) {
  std::istringstream in(text);
  try {
    topo::parse_topology(in, "test.topo");
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(TopologyParser, AcceptsMinimalValidGraph) {
  std::istringstream in(
      "topology custom\n"
      "node 0 cc\n"
      "node 1 mc\n"
      "link 0.0 1.0\n"
      "link 1.0 0.0\n");
  const topo::FabricGraph g = topo::parse_topology(in, "ok.topo");
  EXPECT_EQ(g.kind, "custom");
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.links.size(), 2u);
  EXPECT_EQ(g.count_role(topo::NodeRole::kMC), 1u);
}

TEST(TopologyParser, RejectsUnknownRole) {
  const std::string err = parse_error(
      "topology t\n"
      "node 0 cc\n"
      "node 1 dram\n"
      "link 0.0 1.0\n"
      "link 1.0 0.0\n");
  EXPECT_TRUE(contains(err, "unknown node role 'dram'")) << err;
  EXPECT_TRUE(contains(err, "test.topo:3:")) << err;  // Line-anchored.
}

TEST(TopologyParser, RejectsDanglingLinkEndpoint) {
  const std::string err = parse_error(
      "topology t\n"
      "node 0 cc\n"
      "node 1 mc\n"
      "link 0.0 1.0\n"
      "link 1.0 0.0\n"
      "link 0.1 7.0\n"
      "link 7.0 0.1\n");
  EXPECT_TRUE(contains(err, "dangling link endpoint")) << err;
  EXPECT_TRUE(contains(err, "7")) << err;
}

TEST(TopologyParser, RejectsAsymmetricLink) {
  const std::string err = parse_error(
      "topology t\n"
      "node 0 cc\n"
      "node 1 mc\n"
      "link 0.0 1.0\n");  // No mirror 1.0 -> 0.0.
  EXPECT_TRUE(contains(err, "asymmetric link")) << err;
  EXPECT_TRUE(contains(err, "no mirror link")) << err;
}

TEST(TopologyParser, RejectsAsymmetricLinkAttributes) {
  const std::string err = parse_error(
      "topology t\n"
      "node 0 cc\n"
      "node 1 mc\n"
      "link 0.0 1.0 extra=3\n"
      "link 1.0 0.0 extra=5\n");
  EXPECT_TRUE(contains(err, "asymmetric link")) << err;
  EXPECT_TRUE(contains(err, "attributes differ")) << err;
}

TEST(TopologyParser, RejectsZeroWidthLink) {
  const std::string err = parse_error(
      "topology t\n"
      "node 0 cc\n"
      "node 1 mc\n"
      "link 0.0 1.0 width=0\n"
      "link 1.0 0.0 width=0\n");
  EXPECT_TRUE(contains(err, "zero-width link")) << err;
}

TEST(TopologyParser, RejectsDuplicateNodeId) {
  const std::string err = parse_error(
      "topology t\n"
      "node 0 cc\n"
      "node 0 mc\n");
  EXPECT_TRUE(contains(err, "duplicate node id 0")) << err;
}

TEST(TopologyParser, RejectsSparseNodeIds) {
  const std::string err = parse_error(
      "topology t\n"
      "node 0 cc\n"
      "node 2 mc\n"
      "link 0.0 2.0\n"
      "link 2.0 0.0\n");
  EXPECT_TRUE(contains(err, "dense 0..N-1")) << err;
}

TEST(TopologyParser, RejectsUnknownDirective) {
  const std::string err = parse_error("wormhole yes\n");
  EXPECT_TRUE(contains(err, "unknown directive 'wormhole'")) << err;
}

TEST(TopologyParser, RejectsDisconnectedGraph) {
  const std::string err = parse_error(
      "topology t\n"
      "node 0 cc\n"
      "node 1 mc\n"
      "node 2 cc\n"
      "node 3 mc\n"
      "link 0.0 1.0\n"
      "link 1.0 0.0\n"
      "link 2.0 3.0\n"
      "link 3.0 2.0\n");
  EXPECT_TRUE(contains(err, "invalid topology")) << err;
}

TEST(TopologyParser, UnreadableFileFailsFast) {
  try {
    topo::parse_topology_file(::testing::TempDir() + "nope-does-not-exist");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_TRUE(contains(e.what(), "cannot read topology file"));
  }
}

TEST(TopologyParser, EmitParseRoundTripPreservesGraph) {
  const topo::FabricGraph g =
      topo::make_torus_graph(4, 4, 4, McPlacement::kDiamond);
  std::istringstream in(topo::emit_topology(g));
  const topo::FabricGraph back = topo::parse_topology(in, "rt.topo");
  EXPECT_EQ(back.kind, g.kind);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.links.size(), g.links.size());
  EXPECT_EQ(back.count_role(topo::NodeRole::kMC),
            g.count_role(topo::NodeRole::kMC));
  // The round-tripped graph must compile into a working fabric.
  topo::Fabric f(back);
  EXPECT_EQ(f.nodes(), g.num_nodes());
}

// ---------------------------------------------------------------------------
// Satellite 1: a mesh written out as a topology file must be bit-identical
// to the native Mesh path — metrics, packet trace, and telemetry series are
// byte-compared across all four headline schemes.
// ---------------------------------------------------------------------------

struct RunArtifacts {
  std::string metrics;
  std::string trace;
  std::string telemetry;
};

Config identity_config() {
  Config cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_mcs = 4;
  cfg.warmup_cycles = 300;
  cfg.run_cycles = 2000;
  return cfg;
}

RunArtifacts run_artifacts(const Config& cfg) {
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  obs::PacketTracer tracer(4096);
  sim.attach_tracer(&tracer);
  sim.enable_sampling(250);
  sim.run_with_warmup();
  sim.flush_sampler();
  return {exec::serialize_metrics(sim.collect()), tracer.to_chrome_json(),
          sim.sampler()->to_jsonl()};
}

class MeshFileIdentity : public ::testing::TestWithParam<Scheme> {};

TEST_P(MeshFileIdentity, FileDrivenMeshIsBitIdenticalToNative) {
  const Config native = apply_scheme(identity_config(), GetParam());

  const std::string path = ::testing::TempDir() + "identity_mesh.topo";
  topo::write_topology_file(topo::make_fabric(native).graph(), path);

  Config from_file = native;
  from_file.fabric = "file";
  from_file.topology_file = path;

  const RunArtifacts a = run_artifacts(native);
  const RunArtifacts b = run_artifacts(from_file);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.telemetry, b.telemetry);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, MeshFileIdentity,
    ::testing::Values(Scheme::kXYBaseline, Scheme::kXYARI,
                      Scheme::kAdaBaseline, Scheme::kAdaARI),
    [](const auto& info) {
      std::string n = scheme_name(info.param);
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// Generated fabrics complete real workloads under every headline scheme
// with the watchdog armed: no deadlock/livelock trips, replies delivered.
// ---------------------------------------------------------------------------

Config fabric_config(const std::string& fabric) {
  Config cfg;
  cfg.fabric = fabric;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_mcs = 4;
  if (fabric == "chiplet") {
    // 2x2 dies of 2x2 routers: same 16-node count, serdes on boundaries.
    cfg.mesh_width = 2;
    cfg.mesh_height = 2;
    cfg.chiplets_x = 2;
    cfg.chiplets_y = 2;
  }
  cfg.warmup_cycles = 300;
  cfg.run_cycles = 2500;
  return cfg;
}

class GeneratedFabrics
    : public ::testing::TestWithParam<std::tuple<const char*, Scheme>> {};

TEST_P(GeneratedFabrics, CompletesWorkloadWithWatchdogArmed) {
  const auto& [fabric, scheme] = GetParam();
  const Config cfg = apply_scheme(fabric_config(fabric), scheme);
  ASSERT_TRUE(cfg.watchdog_enabled);
  GpgpuSim sim(cfg, *find_benchmark("hotspot"));
  // A watchdog trip (deadlock/livelock/credit-leak) throws out of here.
  ASSERT_NO_THROW(sim.run_with_warmup());
  const Metrics m = sim.collect();
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_GT(m.packets_by_type[2] + m.packets_by_type[3], 0u)
      << "no read/write replies delivered on " << fabric;
}

INSTANTIATE_TEST_SUITE_P(
    FabricBySchemes, GeneratedFabrics,
    ::testing::Combine(::testing::Values("torus", "cmesh", "chiplet"),
                       ::testing::Values(Scheme::kXYBaseline, Scheme::kXYARI,
                                         Scheme::kAdaBaseline,
                                         Scheme::kAdaARI)),
    [](const auto& info) {
      std::string n = std::string(std::get<0>(info.param)) + "_" +
                      scheme_name(std::get<1>(info.param));
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// Up*/down* routing-table properties. For each generated graph:
//  * every (source, dest) pair is reachable from the injection (up) phase;
//  * the escape port is always a member of the minimal port mask;
//  * distance strictly decreases along the escape walk until delivery;
//  * no entry in the down phase ever routes over an up link (the forbidden
//    turn that makes the channel dependency graph acyclic).
// ---------------------------------------------------------------------------

void check_updown_properties(const topo::FabricGraph& g) {
  const topo::RoutingTable t(g);
  const int n = g.num_nodes();

  // (node, out port) -> (next node, arrival port) adjacency.
  std::map<std::pair<NodeId, int>, std::pair<NodeId, int>> out;
  for (const topo::GraphLink& l : g.links) {
    out[{l.src, l.src_port}] = {l.dst, l.dst_port};
  }
  const auto is_down_link = [&](NodeId src, NodeId dst) {
    return std::make_pair(t.level(dst), dst) > std::make_pair(t.level(src),
                                                              src);
  };

  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId src = 0; src < n; ++src) {
      if (src == dest) continue;

      // Reachability from injection.
      const topo::RouteEntry& first =
          t.entry(dest, src, topo::kPhaseUp);
      ASSERT_NE(first.dist, topo::RouteEntry::kUnreachable)
          << src << " -> " << dest;
      ASSERT_NE(first.port_mask, 0u);

      // Walk the escape path; dist must strictly decrease each hop.
      NodeId at = src;
      int phase = topo::kPhaseUp;
      int steps = 0;
      while (at != dest) {
        const topo::RouteEntry& e = t.entry(dest, at, phase);
        ASSERT_GE(e.escape, 0);
        ASSERT_TRUE(e.port_mask & (1u << e.escape))
            << "escape port outside the minimal mask";
        const auto it = out.find({at, e.escape});
        ASSERT_TRUE(it != out.end()) << "escape port is unwired";
        const auto [next, in_port] = it->second;
        const int next_phase = t.phase_of(next, in_port);
        if (next != dest) {
          ASSERT_LT(t.entry(dest, next, next_phase).dist, e.dist)
              << "escape hop does not make progress";
        }
        at = next;
        phase = next_phase;
        ASSERT_LT(++steps, 4 * n) << "escape walk did not terminate";
      }
    }

    // Forbidden turn: a down-phase entry may only use down links.
    for (NodeId node = 0; node < n; ++node) {
      if (node == dest) continue;
      const topo::RouteEntry& e = t.entry(dest, node, topo::kPhaseDown);
      for (int p = 0; p < 32; ++p) {
        if (!(e.port_mask & (1u << p))) continue;
        const auto it = out.find({node, p});
        ASSERT_TRUE(it != out.end());
        EXPECT_TRUE(is_down_link(node, it->second.first))
            << "down-phase route over an up link at node " << node;
      }
    }
  }
}

TEST(RoutingTable, TorusUpDownProperties) {
  check_updown_properties(topo::make_torus_graph(4, 4, 4,
                                                 McPlacement::kDiamond));
}

TEST(RoutingTable, CmeshUpDownProperties) {
  check_updown_properties(
      topo::make_cmesh_graph(2, 2, 4, 2, McPlacement::kDiamond));
}

TEST(RoutingTable, ChipletUpDownProperties) {
  check_updown_properties(
      topo::make_chiplet_graph(2, 2, 2, 2, 4, McPlacement::kDiamond, 4));
}

// ---------------------------------------------------------------------------
// Generator shape invariants.
// ---------------------------------------------------------------------------

TEST(Generators, TorusHasDegreeFourEverywhere) {
  const topo::Fabric f(topo::make_torus_graph(4, 4, 4,
                                              McPlacement::kDiamond));
  for (NodeId n = 0; n < f.nodes(); ++n) {
    for (int p = 0; p < 4; ++p) {
      EXPECT_NE(f.neighbor(n, p), kInvalidNode)
          << "torus node " << n << " port " << p << " unwired";
    }
  }
}

TEST(Generators, CmeshLeavesHangOffPortZeroOnly) {
  const topo::Fabric f(
      topo::make_cmesh_graph(2, 2, 4, 2, McPlacement::kDiamond));
  int leaves = 0;
  for (NodeId n = 0; n < f.nodes(); ++n) {
    if (!f.is_endpoint(n)) continue;  // Hubs are pure routers.
    ++leaves;
    EXPECT_NE(f.neighbor(n, 0), kInvalidNode);
    for (int p = 1; p < f.max_ports(); ++p) {
      EXPECT_EQ(f.neighbor(n, p), kInvalidNode)
          << "cmesh leaf " << n << " has a second link on port " << p;
    }
  }
  EXPECT_EQ(leaves, 2 * 2 * 4);
}

TEST(Generators, ChipletBoundaryLinksCarrySerdesLatency) {
  const std::uint32_t serdes = 7;
  const topo::FabricGraph g =
      topo::make_chiplet_graph(2, 2, 2, 2, 4, McPlacement::kDiamond, serdes);
  int boundary = 0;
  for (const topo::GraphLink& l : g.links) {
    if (l.extra_latency != 0) {
      EXPECT_EQ(l.extra_latency, serdes);
      ++boundary;
    }
  }
  // 2x2 dies of 2x2 routers = a 4x4 global mesh; each of the two cut lines
  // severs 4 row/column pairs, each wired in both directions.
  EXPECT_EQ(boundary, 16);
  EXPECT_EQ(topo::Fabric(g).max_extra_latency(), serdes);
}

TEST(Generators, MakeFabricRejectsMcCountMismatch) {
  Config cfg = identity_config();
  const std::string path = ::testing::TempDir() + "mismatch_mesh.topo";
  topo::write_topology_file(topo::make_fabric(cfg).graph(), path);
  cfg.fabric = "file";
  cfg.topology_file = path;
  cfg.num_mcs = 5;  // File declares 4 MC nodes.
  try {
    topo::make_fabric(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_TRUE(contains(e.what(), "num_mcs=5")) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Satellite 2: the result cache keys file-driven fabrics by topology-file
// *contents*, so editing the file invalidates cached results in place.
// ---------------------------------------------------------------------------

TEST(FabricCacheTag, GeneratedFabricsUseTheirKind) {
  Config cfg;
  EXPECT_EQ(exec::fabric_cache_tag(cfg), "mesh");
  cfg.fabric = "torus";
  EXPECT_EQ(exec::fabric_cache_tag(cfg), "torus");
}

TEST(FabricCacheTag, HashesTopologyFileContents) {
  const std::string path = ::testing::TempDir() + "cache_tag.topo";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "topology t\nnode 0 cc\nnode 1 mc\nlink 0.0 1.0\nlink 1.0 0.0\n";
  }
  Config cfg;
  cfg.fabric = "file";
  cfg.topology_file = path;
  const std::string tag1 = exec::fabric_cache_tag(cfg);
  EXPECT_EQ(tag1.rfind("file:", 0), 0u);

  {
    std::ofstream out(path, std::ios::app);
    out << "link 0.1 1.1\nlink 1.1 0.1\n";
  }
  const std::string tag2 = exec::fabric_cache_tag(cfg);
  EXPECT_NE(tag1, tag2) << "editing the file must change the cache tag";

  // The tag flows into distinct cache keys for otherwise-identical cells.
  EXPECT_NE(exec::cache_key_string(cfg, "s", "b", tag1),
            exec::cache_key_string(cfg, "s", "b", tag2));

  cfg.topology_file = ::testing::TempDir() + "missing_cache_tag.topo";
  EXPECT_EQ(exec::fabric_cache_tag(cfg), "file:unreadable");
}

// ---------------------------------------------------------------------------
// Satellite 3 (library half of the CLI contract): a bad topology file is a
// config error with exit status 2 — the same status arinoc_sim exits with.
// ---------------------------------------------------------------------------

TEST(FabricExec, UnreadableTopologyFileIsConfigErrorExitTwo) {
  Config base;
  base.fabric = "file";
  base.topology_file = ::testing::TempDir() + "missing_exec.topo";
  base.warmup_cycles = 10;
  base.run_cycles = 100;
  exec::ExperimentRunner runner(base);
  const auto res =
      runner.run({{"p", Scheme::kXYBaseline, "bfs", nullptr, false}});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_FALSE(res[0].ok());
  EXPECT_EQ(res[0].error_kind, "config");
  EXPECT_EQ(res[0].exit_status, 2);
  EXPECT_EQ(res[0].fabric, "file:unreadable");
  EXPECT_TRUE(contains(res[0].error, "cannot read topology file"))
      << res[0].error;
}

TEST(FabricExec, MalformedTopologyFileIsConfigErrorExitTwo) {
  const std::string path = ::testing::TempDir() + "malformed_exec.topo";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "topology t\nnode 0 cc\nnode 0 mc\n";  // Duplicate node id.
  }
  Config base;
  base.fabric = "file";
  base.topology_file = path;
  base.warmup_cycles = 10;
  base.run_cycles = 100;
  exec::ExperimentRunner runner(base);
  const auto res =
      runner.run({{"p", Scheme::kXYBaseline, "bfs", nullptr, false}});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].error_kind, "config");
  EXPECT_EQ(res[0].exit_status, 2);
  EXPECT_TRUE(contains(res[0].error, "duplicate node id")) << res[0].error;
}

}  // namespace
}  // namespace arinoc
