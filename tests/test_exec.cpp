// Execution engine: JobPool, deterministic parallel sweeps, the on-disk
// result cache, and per-cell crash isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "exec/job_pool.hpp"
#include "exec/result_cache.hpp"
#include "exec/runner.hpp"

namespace arinoc {
namespace {

// Small grid cells: 4x4 mesh keeps each simulation to a few milliseconds.
Config tiny() {
  Config cfg;
  cfg.mesh_width = cfg.mesh_height = 4;
  cfg.num_mcs = 4;
  cfg.warmup_cycles = 100;
  cfg.run_cycles = 400;
  return cfg;
}

// A fresh, empty per-test cache directory under the gtest temp dir.
std::filesystem::path fresh_cache_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(JobPool, RunsEverySubmittedJob) {
  exec::JobPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  EXPECT_GE(exec::JobPool::hardware_jobs(), 1u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 200; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 200 * 201 / 2);
}

TEST(JobPool, RunsJobsConcurrently) {
  // All four jobs must be in flight at once to release each other; a serial
  // pool would leave `started` stuck below 4 until the deadline.
  exec::JobPool pool(4);
  std::atomic<int> started{0};
  std::atomic<bool> all_running{false};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      started.fetch_add(1);
      while (started.load() < 4 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      if (started.load() == 4) all_running.store(true);
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(all_running.load());
}

TEST(JobPool, RethrowsFirstEscapedExceptionFromWaitIdle) {
  exec::JobPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The escaped exception does not poison the pool: the other jobs still
  // ran, and the pool accepts new work.
  EXPECT_EQ(ran.load(), 8);
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ExecSeed, DerivationIsDeterministicAndBenchmarkSensitive) {
  const auto s1 = derive_cell_seed(1, "bfs");
  EXPECT_EQ(s1, derive_cell_seed(1, "bfs"));
  EXPECT_NE(s1, derive_cell_seed(1, "kmeans"));
  EXPECT_NE(s1, derive_cell_seed(2, "bfs"));
}

TEST(ExecRunner, ResolveAppliesSchemeTweakAndDerivedSeed) {
  const Config base = tiny();
  exec::ExperimentRunner runner(base);
  const Config cfg = runner.resolve({"p", Scheme::kAdaARI, "bfs",
                                     [](Config& c) {
                                       // Tweaks run after the scheme preset:
                                       // keep the ARI knobs within Eq.(2).
                                       c.num_vcs = 2;
                                       c.injection_speedup = 2;
                                       c.split_queues = 2;
                                     }});
  EXPECT_EQ(cfg.num_vcs, 2u);
  EXPECT_EQ(cfg.seed, derive_cell_seed(base.seed, "bfs"));
  // Same benchmark => same seed across schemes: comparisons stay seed-paired.
  const Config other =
      runner.resolve({"p", Scheme::kXYBaseline, "bfs", nullptr});
  EXPECT_EQ(cfg.seed, other.seed);
}

TEST(ExecDeterminism, CsvByteIdenticalAcrossJobCounts) {
  const std::vector<SweepPoint> points = {
      {"S=1", [](Config& c) { c.injection_speedup = 1; }},
      {"S=2", [](Config& c) { c.injection_speedup = 2; }}};
  const std::vector<Scheme> schemes = {Scheme::kAdaBaseline,
                                       Scheme::kAdaARI};
  const std::vector<std::string> benches = {"bfs", "kmeans", "hotspot",
                                            "nn"};
  auto sweep_with = [&](unsigned jobs) {
    return Sweep(tiny())
        .over(points)
        .schemes(schemes)
        .benchmarks(benches)
        .jobs(jobs)
        .run();
  };
  const auto serial = sweep_with(1);
  const auto parallel = sweep_with(8);
  ASSERT_EQ(serial.size(), 16u);  // >= 16-cell grid, per the acceptance bar.
  for (const auto& c : serial) EXPECT_TRUE(c.ok()) << c.error;
  EXPECT_EQ(Sweep::to_csv(serial), Sweep::to_csv(parallel));
}

TEST(ExecCache, HitMissAndInvalidateOnConfigChange) {
  const auto dir = fresh_cache_dir("arinoc_exec_cache");
  exec::ExecOptions opts;
  opts.jobs = 2;
  opts.cache_enabled = true;
  opts.cache_dir = dir.string();

  const std::vector<exec::CellSpec> cells = {
      {"base", Scheme::kAdaBaseline, "bfs", nullptr},
      {"base", Scheme::kAdaBaseline, "kmeans", nullptr},
      {"base", Scheme::kAdaARI, "bfs", nullptr},
      {"base", Scheme::kAdaARI, "kmeans", nullptr}};

  exec::ExperimentRunner cold(tiny(), opts);
  const auto first = cold.run(cells);
  EXPECT_EQ(cold.stats().simulated, 4u);
  EXPECT_EQ(cold.stats().cache_hits, 0u);

  exec::ExperimentRunner warm(tiny(), opts);
  const auto second = warm.run(cells);
  EXPECT_EQ(warm.stats().simulated, 0u);
  EXPECT_EQ(warm.stats().cache_hits, 4u);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache);
    // Hexfloat serialization makes hits lossless: bit-identical metrics.
    EXPECT_EQ(exec::serialize_metrics(second[i].metrics),
              exec::serialize_metrics(first[i].metrics));
  }

  // Any key-material change (here: run_cycles) must miss.
  Config longer = tiny();
  longer.run_cycles += 100;
  exec::ExperimentRunner invalidated(longer, opts);
  invalidated.run(cells);
  EXPECT_EQ(invalidated.stats().simulated, 4u);
  EXPECT_EQ(invalidated.stats().cache_hits, 0u);

  std::filesystem::remove_all(dir);
}

TEST(ExecIsolation, WatchdogTripIsStructuredPerCellError) {
  // watchdog_livelock_age = 1 trips at the first poll with any packet in
  // flight — a deterministic stand-in for a real livelock.
  const std::vector<exec::CellSpec> cells = {
      {"healthy", Scheme::kAdaARI, "bfs", nullptr},
      {"tripped", Scheme::kAdaARI, "bfs",
       [](Config& c) { c.watchdog_livelock_age = 1; }},
      {"healthy", Scheme::kAdaBaseline, "bfs", nullptr}};
  exec::ExecOptions opts;
  opts.jobs = 2;
  exec::ExperimentRunner runner(tiny(), opts);
  const auto results = runner.run(cells);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error_kind, "livelock");
  EXPECT_EQ(results[1].exit_status, 4);
  EXPECT_FALSE(results[1].error_detail.empty());  // Watchdog dump.
  EXPECT_EQ(runner.stats().errors, 1u);

  // The siblings were not taken down with it.
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_TRUE(results[2].ok()) << results[2].error;
  EXPECT_GT(results[0].metrics.ipc, 0.0);
}

TEST(ExecIsolation, InvalidConfigIsACellErrorNotAnAbort) {
  const std::vector<exec::CellSpec> cells = {
      {"bad", Scheme::kAdaARI, "bfs", [](Config& c) { c.num_vcs = 0; }},
      {"good", Scheme::kAdaARI, "bfs", nullptr}};
  exec::ExperimentRunner runner(tiny());
  const auto results = runner.run(cells);
  EXPECT_EQ(results[0].error_kind, "config");
  EXPECT_EQ(results[0].exit_status, 2);
  EXPECT_TRUE(results[1].ok()) << results[1].error;
}

TEST(ExecIsolation, SweepRendersCellErrorsInCsv) {
  const auto cells =
      Sweep(tiny())
          .over({{"ok", nullptr},
                 {"trip", [](Config& c) { c.watchdog_livelock_age = 1; }}})
          .schemes({Scheme::kAdaARI})
          .benchmarks({"bfs"})
          .jobs(2)
          .run();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_TRUE(cells[0].ok());
  EXPECT_EQ(cells[1].error_kind, "livelock");
  const std::string csv = Sweep::to_csv(cells);
  EXPECT_NE(csv.find("livelock"), std::string::npos);
}

TEST(ResultCache, MetricsSerializationRoundTripsLosslessly) {
  Metrics m{};
  m.cycles = 12345;
  m.ipc = 0.1;                // Not exactly representable in binary.
  m.request_latency = 1e-9;
  m.reply_latency = 987.654321;
  m.flits_by_type[2] = 42;
  const std::string text = exec::serialize_metrics(m);
  const auto back = exec::deserialize_metrics(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cycles, 12345u);
  EXPECT_EQ(back->ipc, 0.1);  // Exact: hexfloat round-trip.
  EXPECT_EQ(back->request_latency, 1e-9);
  EXPECT_EQ(back->flits_by_type[2], 42u);
  EXPECT_EQ(exec::serialize_metrics(*back), text);

  EXPECT_FALSE(exec::deserialize_metrics("not a metrics record").has_value());
  EXPECT_FALSE(exec::deserialize_metrics("").has_value());
}

TEST(ResultCache, KeyStringCoversSchemeBenchmarkFabricAndConfig) {
  const Config a = tiny();
  Config b = tiny();
  b.run_cycles += 1;
  const auto key = [](const Config& c, const char* s, const char* bench,
                      const char* fab) {
    return exec::cache_key_string(c, s, bench, fab);
  };
  EXPECT_EQ(key(a, "Ada-ARI", "bfs", "mesh"), key(a, "Ada-ARI", "bfs", "mesh"));
  EXPECT_NE(key(a, "Ada-ARI", "bfs", "mesh"), key(b, "Ada-ARI", "bfs", "mesh"));
  EXPECT_NE(key(a, "Ada-ARI", "bfs", "mesh"),
            key(a, "Ada-Baseline", "bfs", "mesh"));
  EXPECT_NE(key(a, "Ada-ARI", "bfs", "mesh"), key(a, "Ada-ARI", "nn", "mesh"));
  EXPECT_NE(key(a, "Ada-ARI", "bfs", "mesh"),
            key(a, "Ada-ARI", "bfs", "da2mesh"));
}

TEST(SweepCsv, EscapesDelimitersQuotesAndNewlines) {
  EXPECT_EQ(Sweep::csv_escape("plain"), "plain");
  EXPECT_EQ(Sweep::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(Sweep::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(Sweep::csv_escape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(Sweep::csv_escape(""), "");
}

TEST(SweepCsv, QuotedPointLabelKeepsRowParseable) {
  const auto cells = Sweep(tiny())
                         .over({{"vc=2, fast", nullptr}})
                         .schemes({Scheme::kXYBaseline})
                         .benchmarks({"hotspot"})
                         .jobs(1)
                         .run();
  const std::string csv = Sweep::to_csv(cells);
  EXPECT_NE(csv.find("\"vc=2, fast\""), std::string::npos);
}

}  // namespace
}  // namespace arinoc
