// Observability subsystem: log-scale histograms, the packet-lifecycle
// tracer, the telemetry sampler, and the counter registry — plus the two
// system-level guarantees: determinism (same seed => byte-identical trace)
// and zero perturbation (observers never change the simulation's results).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>

#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "exec/result_cache.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "workloads/benchmark.hpp"

#include "json_checker.hpp"

namespace arinoc {
namespace {

using testutil::valid_json;

Config tiny_config() {
  Config cfg;
  cfg.warmup_cycles = 100;
  cfg.run_cycles = 500;
  return cfg;
}

TEST(JsonChecker, SanityOnKnownGoodAndBadInputs) {
  EXPECT_TRUE(valid_json(R"({"a":1,"b":[1,2.5e-3,"x"],"c":{"d":true}})"));
  EXPECT_TRUE(valid_json("[]"));
  EXPECT_FALSE(valid_json(R"({"a":1,})"));
  EXPECT_FALSE(valid_json(R"({"a":})"));
  EXPECT_FALSE(valid_json(R"({"a":1)"));
  EXPECT_FALSE(valid_json("{'a':1}"));
}

// ---------------------------------------------------------------------------
// LogHistogram (common/stats).
// ---------------------------------------------------------------------------

TEST(LogHistogram, EmptyHistogramReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(LogHistogram, ExactForRepeatedSingleValue) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(42.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  // Interpolation clamps to [min, max], so a degenerate distribution is
  // reported exactly.
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p95(), 42.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(LogHistogram, PercentilesWithinBucketResolution) {
  LogHistogram h;
  for (int i = 1; i <= 1024; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1024u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1024.0);
  // 4 sub-buckets per octave => worst-case relative error 2^(1/4)-1 ~ 19%.
  EXPECT_NEAR(h.p50(), 512.0, 512.0 * 0.2);
  EXPECT_NEAR(h.p99(), 1014.0, 1014.0 * 0.2);
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_LE(h.p99(), h.max());
}

TEST(LogHistogram, MergeMatchesSingleCombinedHistogram) {
  LogHistogram a, b, combined;
  for (int i = 1; i <= 500; ++i) {
    a.add(static_cast<double>(i));
    combined.add(static_cast<double>(i));
  }
  for (int i = 501; i <= 1000; ++i) {
    b.add(static_cast<double>(i));
    combined.add(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.p50(), combined.p50());
  EXPECT_DOUBLE_EQ(a.p99(), combined.p99());
}

TEST(LogHistogram, SubUnitValuesLandInUnderflowBucket) {
  LogHistogram h;
  h.add(0.25);
  EXPECT_EQ(h.count(), 1u);
  // The underflow bucket's range is clamped to [min, max] = [0.25, 0.25].
  EXPECT_DOUBLE_EQ(h.p50(), 0.25);
}

// ---------------------------------------------------------------------------
// PacketTracer.
// ---------------------------------------------------------------------------

TEST(PacketTracer, RingOverwritesOldestWhenFull) {
  obs::PacketTracer tracer(16);
  EXPECT_EQ(tracer.capacity(), 16u);
  for (Cycle t = 0; t < 40; ++t) {
    tracer.record(obs::TraceEventKind::kLinkHop, 1, t, 7,
                  PacketType::kReadReply, 3, 0);
  }
  EXPECT_EQ(tracer.size(), 16u);
  EXPECT_EQ(tracer.recorded(), 40u);
  EXPECT_EQ(tracer.dropped(), 24u);
  const auto evs = tracer.events();
  ASSERT_EQ(evs.size(), 16u);
  EXPECT_EQ(evs.front().cycle, 24u);  // Oldest surviving event.
  EXPECT_EQ(evs.back().cycle, 39u);
}

TEST(PacketTracer, BreakdownReconstructsQueueAndTransitSpans) {
  obs::PacketTracer tracer(64);
  // Packet 5, read reply: enqueued at 10, injected at 15, delivered at 35.
  tracer.record(obs::TraceEventKind::kNiEnqueue, 1, 10, 5,
                PacketType::kReadReply, 2, -1);
  tracer.record(obs::TraceEventKind::kInject, 1, 15, 5,
                PacketType::kReadReply, 2, 0);
  tracer.record(obs::TraceEventKind::kDeliver, 1, 35, 5,
                PacketType::kReadReply, 9, -1);
  // Packet 6, read request: dropped after enqueue.
  tracer.record(obs::TraceEventKind::kNiEnqueue, 0, 40, 6,
                PacketType::kReadRequest, 1, -1);
  tracer.record(obs::TraceEventKind::kDrop, 0, 50, 6,
                PacketType::kReadRequest, 4, 2);
  const auto rows = tracer.breakdown();
  ASSERT_EQ(rows.size(), 4u);
  const auto& reply = rows[static_cast<std::size_t>(PacketType::kReadReply)];
  EXPECT_EQ(reply.delivered, 1u);
  EXPECT_DOUBLE_EQ(reply.mean_queue_cycles, 5.0);
  EXPECT_DOUBLE_EQ(reply.mean_transit_cycles, 20.0);
  const auto& req = rows[static_cast<std::size_t>(PacketType::kReadRequest)];
  EXPECT_EQ(req.delivered, 0u);
  EXPECT_EQ(req.drops, 1u);
  const std::string report = tracer.breakdown_report();
  EXPECT_NE(report.find("read_reply"), std::string::npos);
  EXPECT_NE(report.find("delivered"), std::string::npos);
}

TEST(PacketTracer, BreakdownBooksRetransmitTransitUnderRetx) {
  obs::PacketTracer tracer(64);
  // First incarnation of a reply: enqueued 10, injected 12, corrupted and
  // dropped at 20.
  tracer.record(obs::TraceEventKind::kNiEnqueue, 1, 10, 5,
                PacketType::kReadReply, 2, -1);
  tracer.record(obs::TraceEventKind::kInject, 1, 12, 5,
                PacketType::kReadReply, 2, 0);
  tracer.record(obs::TraceEventKind::kDrop, 1, 20, 5,
                PacketType::kReadReply, 9, 1);
  // Recovery incarnation (fresh packet id 6): the tracker re-enqueues it and
  // tags it kRetransmit; its transit (30 -> 55 = 25 cycles) is fault
  // overhead, not plain transit.
  tracer.record(obs::TraceEventKind::kNiEnqueue, 1, 28, 6,
                PacketType::kReadReply, 2, -1);
  tracer.record(obs::TraceEventKind::kRetransmit, 1, 28, 6,
                PacketType::kReadReply, 2, 1);
  tracer.record(obs::TraceEventKind::kInject, 1, 30, 6,
                PacketType::kReadReply, 2, 0);
  tracer.record(obs::TraceEventKind::kDeliver, 1, 55, 6,
                PacketType::kReadReply, 9, -1);
  // An untouched packet keeps its transit in the plain column.
  tracer.record(obs::TraceEventKind::kNiEnqueue, 1, 60, 7,
                PacketType::kReadReply, 2, -1);
  tracer.record(obs::TraceEventKind::kInject, 1, 61, 7,
                PacketType::kReadReply, 2, 0);
  tracer.record(obs::TraceEventKind::kDeliver, 1, 76, 7,
                PacketType::kReadReply, 9, -1);

  const auto rows = tracer.breakdown();
  const auto& reply = rows[static_cast<std::size_t>(PacketType::kReadReply)];
  EXPECT_EQ(reply.delivered, 2u);
  EXPECT_EQ(reply.retransmits, 1u);
  EXPECT_EQ(reply.drops, 1u);
  // Means are over both delivered packets: retx (25+0)/2, transit (0+15)/2,
  // queue (2+1)/2.
  EXPECT_DOUBLE_EQ(reply.mean_retx_cycles, 12.5);
  EXPECT_DOUBLE_EQ(reply.mean_transit_cycles, 7.5);
  EXPECT_DOUBLE_EQ(reply.mean_queue_cycles, 1.5);
  EXPECT_NE(tracer.breakdown_report().find("retx(mean)"), std::string::npos);
}

TEST(PacketTracer, ChromeJsonIsValidAndCarriesSpansAndInstants) {
  obs::PacketTracer tracer(64);
  tracer.record(obs::TraceEventKind::kNiEnqueue, 1, 10, 5,
                PacketType::kReadReply, 2, -1);
  tracer.record(obs::TraceEventKind::kInject, 1, 15, 5,
                PacketType::kReadReply, 2, 0);
  tracer.record(obs::TraceEventKind::kLinkHop, 1, 20, 5,
                PacketType::kReadReply, 3, 1);
  tracer.record(obs::TraceEventKind::kDeliver, 1, 35, 5,
                PacketType::kReadReply, 9, -1);
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // Complete span.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // Instant (hop).
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);    // 35 - 10.
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
}

TEST(PacketTracer, TailTextNamesTheLastEvents) {
  obs::PacketTracer tracer(64);
  tracer.record(obs::TraceEventKind::kNiEnqueue, 0, 1, 2,
                PacketType::kWriteRequest, 0, -1);
  tracer.record(obs::TraceEventKind::kInject, 0, 3, 2,
                PacketType::kWriteRequest, 0, 1);
  const std::string tail = tracer.tail_text(8);
  EXPECT_NE(tail.find("NiEnqueue"), std::string::npos);
  EXPECT_NE(tail.find("Inject"), std::string::npos);
  EXPECT_NE(tail.find("write_request"), std::string::npos);
}

// ---------------------------------------------------------------------------
// System-level guarantees: determinism and zero perturbation.
// ---------------------------------------------------------------------------

TEST(TracerSim, SameSeedProducesByteIdenticalTraces) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    GpgpuSim sim(cfg, *find_benchmark("bfs"));
    obs::PacketTracer tracer;
    sim.attach_tracer(&tracer);
    sim.run(400);
    *out = tracer.to_chrome_json();
  }
  EXPECT_GT(first.size(), 100u);  // Actually traced something.
  EXPECT_EQ(first, second);
}

TEST(TracerSim, ObserversDoNotPerturbSimulationResults) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  std::string plain, observed;
  {
    GpgpuSim sim(cfg, *find_benchmark("hotspot"));
    sim.run_with_warmup();
    plain = metrics_to_json(sim.collect());
  }
  {
    GpgpuSim sim(cfg, *find_benchmark("hotspot"));
    obs::PacketTracer tracer;
    sim.attach_tracer(&tracer);
    sim.enable_sampling(100);
    sim.run_with_warmup();
    sim.flush_sampler();
    observed = metrics_to_json(sim.collect());
    EXPECT_GT(tracer.recorded(), 0u);
    EXPECT_FALSE(sim.sampler()->samples().empty());
  }
  EXPECT_EQ(plain, observed);
}

TEST(TracerSim, MetricsJsonCarriesTailLatencyPercentiles) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  const Metrics m = sim.collect();
  EXPECT_GT(m.reply_latency_p50, 0.0);
  EXPECT_LE(m.reply_latency_p50, m.reply_latency_p95);
  EXPECT_LE(m.reply_latency_p95, m.reply_latency_p99);
  const std::string json = metrics_to_json(m);
  EXPECT_TRUE(valid_json(json));
  EXPECT_NE(json.find("\"reply_latency_p99\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_p99_read_reply\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// TelemetrySampler: interval math and exporters.
// ---------------------------------------------------------------------------

TEST(TelemetrySampler, ExactDivisionYieldsFullWindowsOnly) {
  GpgpuSim sim(apply_scheme(tiny_config(), Scheme::kAdaARI),
               *find_benchmark("bfs"));
  sim.enable_sampling(250);
  sim.run(1000);
  sim.flush_sampler();
  const auto& samples = sim.sampler()->samples();
  ASSERT_EQ(samples.size(), 4u);
  for (const auto& s : samples) EXPECT_EQ(s.window, 250u);
  EXPECT_EQ(samples.back().cycle, 1000u);
}

TEST(TelemetrySampler, TrailingPartialWindowIsFlushed) {
  GpgpuSim sim(apply_scheme(tiny_config(), Scheme::kAdaARI),
               *find_benchmark("bfs"));
  sim.enable_sampling(300);
  sim.run(1000);
  sim.flush_sampler();
  const auto& samples = sim.sampler()->samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.back().window, 100u);  // 1000 = 3*300 + 100.
  Cycle covered = 0;
  for (const auto& s : samples) covered += s.window;
  EXPECT_EQ(covered, 1000u);
}

TEST(TelemetrySampler, WarmupResetKeepsOnlyMeasuredWindows) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.warmup_cycles = 200;
  cfg.run_cycles = 400;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.enable_sampling(150);
  sim.run_with_warmup();
  sim.flush_sampler();
  const auto& samples = sim.sampler()->samples();
  ASSERT_FALSE(samples.empty());
  // reset_stats() at the warmup boundary cleared earlier samples and
  // re-anchored, so the series covers exactly the measured cycles.
  Cycle covered = 0;
  for (const auto& s : samples) {
    EXPECT_GT(s.cycle, cfg.warmup_cycles);
    covered += s.window;
  }
  EXPECT_EQ(covered, cfg.run_cycles);
}

TEST(TelemetrySampler, JsonlAndCsvExportersAreWellFormed) {
  GpgpuSim sim(apply_scheme(tiny_config(), Scheme::kAdaARI),
               *find_benchmark("bfs"));
  sim.enable_sampling(100);
  sim.run(500);
  const std::string jsonl = sim.sampler()->to_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    if (!line.empty()) {
      ++lines;
      EXPECT_TRUE(valid_json(line)) << line;
      EXPECT_NE(line.find("\"ipc\":"), std::string::npos);
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, sim.sampler()->samples().size());

  const std::string csv = sim.sampler()->to_csv();
  EXPECT_EQ(csv.rfind("cycle,window,ipc", 0), 0u);  // Header first.
  std::size_t rows = 0;
  for (const char c : csv) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, lines + 1);  // Header + one row per sample.
}

// ---------------------------------------------------------------------------
// CounterRegistry.
// ---------------------------------------------------------------------------

TEST(CounterRegistry, ProbesReadLiveValuesAndDumpSortedJson) {
  obs::CounterRegistry reg;
  std::uint64_t hits = 7;
  double depth = 3.5;
  LogHistogram lat;
  lat.add(10.0);
  lat.add(20.0);
  reg.register_counter("b.hits", [&hits] { return hits; });
  reg.register_gauge("a.depth", [&depth] { return depth; });
  reg.register_histogram("c.latency", &lat);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter_value("b.hits"), 7u);
  hits = 9;  // Probes read on demand, not at registration time.
  EXPECT_EQ(reg.counter_value("b.hits"), 9u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("a.depth"), 3.5);
  EXPECT_EQ(reg.counter_value("no.such.probe"), 0u);

  const std::string json = reg.to_json();
  EXPECT_TRUE(valid_json(json)) << json;
  const std::size_t a = json.find("\"a.depth\"");
  const std::size_t b = json.find("\"b.hits\"");
  const std::size_t c = json.find("\"c.latency\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(CounterRegistry, ReRegistrationReplacesTheProbe) {
  obs::CounterRegistry reg;
  reg.register_counter("x", [] { return std::uint64_t{1}; });
  reg.register_counter("x", [] { return std::uint64_t{2}; });
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.counter_value("x"), 2u);
}

TEST(CounterRegistry, SimRegistersProbesForEveryComponent) {
  GpgpuSim sim(apply_scheme(tiny_config(), Scheme::kAdaARI),
               *find_benchmark("bfs"));
  sim.run(300);
  obs::CounterRegistry reg;
  sim.register_counters(&reg);
  EXPECT_GT(reg.size(), 20u);
  EXPECT_EQ(reg.counter_value("sim.cycles"), 300u);
  EXPECT_GT(reg.counter_value("reply.packets_delivered"), 0u);
  EXPECT_TRUE(valid_json(reg.to_json()));
}

// ---------------------------------------------------------------------------
// Watchdog integration: trip dumps carry the trace tail + last sample.
// ---------------------------------------------------------------------------

TEST(WatchdogObs, DiagnosticDumpIncludesTraceTailAndLastSample) {
  GpgpuSim sim(apply_scheme(tiny_config(), Scheme::kAdaARI),
               *find_benchmark("bfs"));
  obs::PacketTracer tracer;
  sim.attach_tracer(&tracer);
  sim.enable_sampling(100);
  sim.run(500);
  const std::string dump = sim.diagnostic_dump("obs probe");
  EXPECT_NE(dump.find("last trace events:"), std::string::npos);
  EXPECT_NE(dump.find("last telemetry sample:"), std::string::npos);
  EXPECT_NE(dump.find("  cycle "), std::string::npos);  // Tail line format.
}

TEST(WatchdogObs, TripDumpCarriesTraceTailFromWedgedNetwork) {
  // Same wedge recipe as the resilience suite: permanent port failures
  // with recovery off deadlock the reply network.
  Config cfg = apply_scheme(tiny_config(), Scheme::kXYBaseline);
  cfg.fault_port_fail_rate = 2e-5;
  cfg.fault_recovery = false;
  cfg.watchdog_deadlock_window = 600;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  obs::PacketTracer tracer;
  sim.attach_tracer(&tracer);
  bool tripped = false;
  try {
    sim.run(30000);
  } catch (const WatchdogTrip& trip) {
    tripped = true;
    EXPECT_NE(trip.dump().find("last trace events:"), std::string::npos);
  }
  EXPECT_TRUE(tripped);
}

// ---------------------------------------------------------------------------
// Result cache: the new percentile fields survive a round-trip.
// ---------------------------------------------------------------------------

TEST(ResultCacheObs, PercentileFieldsRoundTripLosslessly) {
  Metrics m;
  m.ipc = 1.25;
  m.request_latency_p50 = 10.125;
  m.request_latency_p95 = 20.25;
  m.request_latency_p99 = 30.5;
  m.reply_latency_p50 = 11.0625;
  m.reply_latency_p95 = 22.125;
  m.reply_latency_p99 = 33.25;
  for (std::size_t i = 0; i < m.latency_p99_by_type.size(); ++i) {
    m.latency_p99_by_type[i] = 100.5 + static_cast<double>(i);
  }
  const auto back = exec::deserialize_metrics(exec::serialize_metrics(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->request_latency_p50, m.request_latency_p50);
  EXPECT_EQ(back->request_latency_p95, m.request_latency_p95);
  EXPECT_EQ(back->request_latency_p99, m.request_latency_p99);
  EXPECT_EQ(back->reply_latency_p50, m.reply_latency_p50);
  EXPECT_EQ(back->reply_latency_p95, m.reply_latency_p95);
  EXPECT_EQ(back->reply_latency_p99, m.reply_latency_p99);
  for (std::size_t i = 0; i < m.latency_p99_by_type.size(); ++i) {
    EXPECT_EQ(back->latency_p99_by_type[i], m.latency_p99_by_type[i]);
  }
}

}  // namespace
}  // namespace arinoc
