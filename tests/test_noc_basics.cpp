// Packet arena, flit buffers, arbiters and route computation.
#include <gtest/gtest.h>

#include "noc/arbiter.hpp"
#include "noc/buffer.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

namespace arinoc {
namespace {

// ---------------------------------------------------------------- Packets

TEST(PacketArena, CreateInitializesFields) {
  PacketArena arena;
  const PacketId id =
      arena.create(PacketType::kReadReply, 3, 7, 5, 1, 42, 100);
  const Packet& p = arena.at(id);
  EXPECT_EQ(p.type, PacketType::kReadReply);
  EXPECT_EQ(p.src, 3);
  EXPECT_EQ(p.dest, 7);
  EXPECT_EQ(p.num_flits, 5);
  EXPECT_EQ(p.priority, 1);
  EXPECT_EQ(p.txn, 42u);
  EXPECT_EQ(p.created, 100u);
}

TEST(PacketArena, RetireRecyclesSlots) {
  PacketArena arena;
  const PacketId a = arena.create(PacketType::kReadRequest, 0, 1, 1, 0, 0, 0);
  arena.retire(a);
  const PacketId b = arena.create(PacketType::kWriteReply, 1, 2, 1, 0, 0, 0);
  EXPECT_EQ(a, b);  // Slot reused.
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.capacity(), 1u);
}

TEST(PacketArena, LiveCountTracksCreateRetire) {
  PacketArena arena;
  std::vector<PacketId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(arena.create(PacketType::kReadRequest, 0, 1, 1, 0, 0, 0));
  }
  EXPECT_EQ(arena.live(), 10u);
  for (auto id : ids) arena.retire(id);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(PacketArena, FlitSequenceHeadAndTail) {
  const Flit head = PacketArena::flit_of(9, 0, 5);
  const Flit body = PacketArena::flit_of(9, 2, 5);
  const Flit tail = PacketArena::flit_of(9, 4, 5);
  EXPECT_TRUE(head.head);
  EXPECT_FALSE(head.tail);
  EXPECT_FALSE(body.head);
  EXPECT_FALSE(body.tail);
  EXPECT_FALSE(tail.head);
  EXPECT_TRUE(tail.tail);
}

TEST(PacketArena, SingleFlitPacketIsHeadAndTail) {
  const Flit f = PacketArena::flit_of(1, 0, 1);
  EXPECT_TRUE(f.head);
  EXPECT_TRUE(f.tail);
}

TEST(PacketTypes, LongShortClassification) {
  EXPECT_FALSE(is_long_packet(PacketType::kReadRequest));
  EXPECT_TRUE(is_long_packet(PacketType::kWriteRequest));
  EXPECT_TRUE(is_long_packet(PacketType::kReadReply));
  EXPECT_FALSE(is_long_packet(PacketType::kWriteReply));
}

TEST(PacketTypes, ReplyClassification) {
  EXPECT_FALSE(is_reply(PacketType::kReadRequest));
  EXPECT_FALSE(is_reply(PacketType::kWriteRequest));
  EXPECT_TRUE(is_reply(PacketType::kReadReply));
  EXPECT_TRUE(is_reply(PacketType::kWriteReply));
}

// ---------------------------------------------------------------- Buffers

TEST(FlitBuffer, FifoOrder) {
  FlitBuffer buf(4);
  for (std::uint16_t s = 0; s < 3; ++s) {
    buf.push(PacketArena::flit_of(1, s, 3));
  }
  EXPECT_EQ(buf.pop().seq, 0);
  EXPECT_EQ(buf.pop().seq, 1);
  EXPECT_EQ(buf.pop().seq, 2);
  EXPECT_TRUE(buf.empty());
}

TEST(FlitBuffer, CapacityAccounting) {
  FlitBuffer buf(5);
  EXPECT_TRUE(buf.fits(5));
  buf.push(PacketArena::flit_of(1, 0, 1));
  EXPECT_EQ(buf.free_space(), 4u);
  EXPECT_TRUE(buf.fits(4));
  EXPECT_FALSE(buf.fits(5));
}

TEST(FlitBuffer, OccupancySampling) {
  FlitBuffer buf(10);
  buf.push(PacketArena::flit_of(1, 0, 1));
  buf.sample();
  buf.push(PacketArena::flit_of(2, 0, 1));
  buf.push(PacketArena::flit_of(3, 0, 1));
  buf.sample();
  EXPECT_DOUBLE_EQ(buf.mean_occupancy(), 2.0);  // (1 + 3) / 2.
  EXPECT_EQ(buf.peak_occupancy(), 3u);
}

// ---------------------------------------------------------------- Arbiters

TEST(RoundRobinArbiter, GrantsRotate) {
  RoundRobinArbiter arb(3);
  const std::vector<bool> all = {true, true, true};
  EXPECT_EQ(arb.pick(all), 0);
  EXPECT_EQ(arb.pick(all), 1);
  EXPECT_EQ(arb.pick(all), 2);
  EXPECT_EQ(arb.pick(all), 0);
}

TEST(RoundRobinArbiter, SkipsNonRequesters) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.pick({false, false, true, false}), 2);
  EXPECT_EQ(arb.pick({true, false, true, false}), 0);  // Pointer is past 2.
}

TEST(RoundRobinArbiter, NoRequestsReturnsMinusOne) {
  RoundRobinArbiter arb(2);
  EXPECT_EQ(arb.pick({false, false}), -1);
}

TEST(RoundRobinArbiter, FairUnderSaturation) {
  RoundRobinArbiter arb(4);
  int grants[4] = {0, 0, 0, 0};
  const std::vector<bool> all = {true, true, true, true};
  for (int i = 0; i < 400; ++i) ++grants[arb.pick(all)];
  for (int g : grants) EXPECT_EQ(g, 100);
}

TEST(PriorityArbiter, HighestKeyWins) {
  PriorityArbiter arb(3);
  EXPECT_EQ(arb.pick({true, true, true}, {0, 2, 1}), 1);
}

TEST(PriorityArbiter, TieBrokenRoundRobin) {
  PriorityArbiter arb(3);
  const std::vector<bool> req = {true, true, false};
  const std::vector<std::uint32_t> key = {1, 1, 0};
  const int first = arb.pick(req, key);
  const int second = arb.pick(req, key);
  EXPECT_NE(first, second);  // Rotates among equal-priority requesters.
}

TEST(PriorityArbiter, IgnoresKeysOfNonRequesters) {
  PriorityArbiter arb(3);
  EXPECT_EQ(arb.pick({true, false, false}, {0, 9, 9}), 0);
}

// ---------------------------------------------------------------- Routing

TEST(Routing, XYGoesEastFirst) {
  Mesh m(6, 6, 8);
  const auto rc = compute_route(m, m.node_at(0, 0), m.node_at(3, 3),
                                RoutingAlgo::kXY);
  ASSERT_EQ(rc.minimal.size(), 1u);
  EXPECT_EQ(rc.minimal[0], kEast);
  EXPECT_EQ(rc.xy, kEast);
}

TEST(Routing, XYGoesVerticalWhenAligned) {
  Mesh m(6, 6, 8);
  const auto rc = compute_route(m, m.node_at(3, 0), m.node_at(3, 4),
                                RoutingAlgo::kXY);
  EXPECT_EQ(rc.xy, kSouth);
}

TEST(Routing, ArrivalIsLocal) {
  Mesh m(6, 6, 8);
  const auto rc =
      compute_route(m, m.node_at(2, 2), m.node_at(2, 2), RoutingAlgo::kXY);
  ASSERT_EQ(rc.minimal.size(), 1u);
  EXPECT_EQ(rc.minimal[0], kLocal);
}

TEST(Routing, AdaptiveOffersBothMinimalDirections) {
  Mesh m(6, 6, 8);
  const auto rc = compute_route(m, m.node_at(0, 0), m.node_at(3, 3),
                                RoutingAlgo::kMinAdaptive);
  ASSERT_EQ(rc.minimal.size(), 2u);
  EXPECT_EQ(rc.minimal[0], kEast);
  EXPECT_EQ(rc.minimal[1], kSouth);
  EXPECT_EQ(rc.xy, kEast);  // Escape direction stays dimension-ordered.
}

TEST(Routing, AdaptiveSingleDirectionWhenAligned) {
  Mesh m(6, 6, 8);
  const auto rc = compute_route(m, m.node_at(5, 2), m.node_at(1, 2),
                                RoutingAlgo::kMinAdaptive);
  ASSERT_EQ(rc.minimal.size(), 1u);
  EXPECT_EQ(rc.minimal[0], kWest);
}

// Property: for every (src, dst) pair, repeatedly following the XY
// direction reaches the destination in exactly hops(src, dst) steps.
TEST(Routing, XYAlwaysReachesDestination) {
  Mesh m(6, 6, 8);
  for (NodeId s = 0; s < 36; ++s) {
    for (NodeId d = 0; d < 36; ++d) {
      NodeId cur = s;
      std::uint32_t steps = 0;
      while (cur != d) {
        const auto rc = compute_route(m, cur, d, RoutingAlgo::kXY);
        ASSERT_NE(rc.xy, kLocal);
        cur = m.neighbor(cur, rc.xy);
        ASSERT_NE(cur, kInvalidNode);
        ASSERT_LE(++steps, 10u);
      }
      EXPECT_EQ(steps, m.hops(s, d));
    }
  }
}

// Property: every adaptive candidate strictly reduces distance (minimal).
TEST(Routing, AdaptiveCandidatesAreAllMinimal) {
  Mesh m(6, 6, 8);
  for (NodeId s = 0; s < 36; ++s) {
    for (NodeId d = 0; d < 36; ++d) {
      if (s == d) continue;
      const auto rc = compute_route(m, s, d, RoutingAlgo::kMinAdaptive);
      for (int dir : rc.minimal) {
        const NodeId next = m.neighbor(s, dir);
        ASSERT_NE(next, kInvalidNode);
        EXPECT_EQ(m.hops(next, d) + 1, m.hops(s, d));
      }
    }
  }
}

}  // namespace
}  // namespace arinoc
