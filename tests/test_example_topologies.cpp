// The checked-in irregular example topologies (examples/topologies/*.topo)
// must stay loadable end to end: parse + validate through the file-format
// path, round-trip through emit_topology(), and carry a full simulation to
// completion under the watchdog (table routing must reach every endpoint,
// or the deadlock check trips).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"
#include "topo/file.hpp"
#include "topo/graph.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {
namespace {

std::string topo_path(const char* name) {
  return std::string(ARINOC_SOURCE_DIR) + "/examples/topologies/" + name;
}

void check_example(const char* file, std::uint32_t want_mcs) {
  const std::string path = topo_path(file);

  // Parse + validate, and round-trip through the emitter.
  topo::FabricGraph g;
  ASSERT_NO_THROW(g = topo::parse_topology_file(path)) << path;
  EXPECT_GT(g.num_nodes(), 0);
  EXPECT_EQ(g.count_role(topo::NodeRole::kMC), want_mcs);
  std::istringstream round(topo::emit_topology(g));
  topo::FabricGraph g2;
  ASSERT_NO_THROW(g2 = topo::parse_topology(round, "round-trip"));
  EXPECT_EQ(g2.roles, g.roles);
  EXPECT_EQ(g2.links, g.links);

  // A short run completes cleanly: routes exist between every CC/MC pair
  // and the watchdog (on by default) sees forward progress throughout.
  Config cfg;
  cfg.fabric = "file";
  cfg.topology_file = path;
  cfg.num_mcs = want_mcs;  // arinoc_sim derives this; GpgpuSim checks it.
  cfg.warmup_cycles = 100;
  cfg.run_cycles = 600;
  const BenchmarkTraits* traits = find_benchmark("hotspot");
  ASSERT_NE(traits, nullptr);
  GpgpuSim sim(cfg, *traits);
  ASSERT_NO_THROW(sim.run_with_warmup()) << file;
  const Metrics m = sim.collect();
  EXPECT_GT(m.ipc, 0.0);
}

TEST(ExampleTopologies, ExpressMeshLoadsRoutesAndCompletes) {
  check_example("express_mesh.topo", 4);
}

TEST(ExampleTopologies, AsymChipletLoadsRoutesAndCompletes) {
  check_example("asym_chiplet.topo", 2);
}

}  // namespace
}  // namespace arinoc
