// Latency-attribution engine (obs/attr) and simulator self-profiler
// (obs/selfprof): exact additive decomposition of every traced packet's
// end-to-end latency, the top-k bottleneck report, the windowed congestion
// series + HTML dashboard, per-cell attribution artifacts from the exec
// runner, and the paper's headline observation — at saturation the MC
// reply-NI injection stage dominates reply latency under the baseline and
// is demoted once ARI widens the injection path.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "obs/attr.hpp"
#include "obs/selfprof.hpp"
#include "topo/graph.hpp"
#include "topo/layout.hpp"
#include "workloads/benchmark.hpp"

#include "json_checker.hpp"

namespace arinoc {
namespace {

using obs::AttrStage;
using obs::LatencyAttributor;
using testutil::valid_json;

Config tiny_config() {
  Config cfg;
  cfg.warmup_cycles = 100;
  cfg.run_cycles = 600;
  return cfg;
}

/// The same normalized small-fabric shapes the benches sweep over
/// (bench::fabric_axis_points), inlined so the tests stay bench-free.
Config fabric_config(const std::string& fabric) {
  Config cfg = tiny_config();
  if (fabric == "mesh" || fabric == "torus") {
    cfg.fabric = fabric;
    cfg.mesh_width = cfg.mesh_height = 4;
    cfg.num_mcs = 4;
  } else if (fabric == "cmesh") {
    cfg.fabric = "cmesh";
    cfg.mesh_width = cfg.mesh_height = 2;
    cfg.cmesh_concentration = 4;
    cfg.num_mcs = 2;
  } else {
    ADD_FAILURE() << "unknown test fabric " << fabric;
  }
  return cfg;
}

/// Runs one attributed simulation and returns the attributor for checks.
/// The sim dies with this scope while the attributor lives on — report
/// generation afterwards exercises set_topology()'s copy semantics (a
/// borrowed graph pointer would dangle here).
void run_attributed(const Config& cfg, const std::string& benchmark,
                    LatencyAttributor& attr) {
  const BenchmarkTraits* traits = find_benchmark(benchmark);
  ASSERT_NE(traits, nullptr);
  GpgpuSim sim(cfg, *traits);
  sim.attach_attributor(&attr);
  sim.run_with_warmup();
}

// ---------------------------------------------------------------------------
// Conservation: the stage decomposition sums exactly to the measured e2e
// latency — for every scheme, on every fabric family the attributor covers.
// ---------------------------------------------------------------------------

TEST(AttrConservation, EverySchemeOnMeshTorusAndCmesh) {
  const std::vector<Scheme> schemes = {
      Scheme::kXYBaseline,   Scheme::kXYARI,       Scheme::kAdaBaseline,
      Scheme::kAdaMultiPort, Scheme::kAdaARI,      Scheme::kAccSupply,
      Scheme::kAccConsume,   Scheme::kAccBothNoPrio, Scheme::kRawBaseline,
  };
  for (const std::string fabric : {"mesh", "torus", "cmesh"}) {
    for (const Scheme s : schemes) {
      SCOPED_TRACE(std::string(scheme_name(s)) + " on " + fabric);
      const Config cfg = apply_scheme(fabric_config(fabric), s);
      LatencyAttributor attr;
      run_attributed(cfg, "hotspot", attr);

      EXPECT_GT(attr.delivered(), 0u);
      EXPECT_EQ(attr.conservation_violations(), 0u);
      // Per packet: the telescoped stages sum to delivered - origin.
      for (const obs::PacketAttr& p : attr.packets()) {
        ASSERT_EQ(p.stage_sum(), p.e2e()) << "packet " << p.pkt;
      }
      // Per network: stage totals sum to the e2e total.
      for (std::uint8_t net = 0; net < 2; ++net) {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < obs::kNumAttrStages; ++i) {
          sum += attr.stage_total(net, static_cast<AttrStage>(i));
        }
        EXPECT_EQ(sum, attr.e2e_total(net)) << "net " << int(net);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Zero perturbation: attaching the attributor never changes simulation
// results, so an attribution-off run is byte-identical to one that never
// heard of the feature (only the report fields differ, and they are empty
// when attribution is off).
// ---------------------------------------------------------------------------

/// Clears the attribution summary fields so a with-attribution Metrics can
/// be byte-compared against a plain run.
Metrics scrub_attr(Metrics m) {
  m.attr_enabled = false;
  m.request_stage_share = {};
  m.reply_stage_share = {};
  m.attr_violations = 0;
  m.bottleneck.clear();
  return m;
}

TEST(Attr, AttributorDoesNotPerturbSimulationResults) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  const BenchmarkTraits* traits = find_benchmark("hotspot");
  ASSERT_NE(traits, nullptr);

  GpgpuSim plain(cfg, *traits);
  plain.run_with_warmup();
  const std::string plain_json = metrics_to_json(plain.collect());
  // Attribution off => no attr block in the report at all.
  EXPECT_EQ(plain_json.find("stage_share"), std::string::npos);
  EXPECT_EQ(plain_json.find("\"bottleneck\""), std::string::npos);

  GpgpuSim observed(cfg, *traits);
  LatencyAttributor attr;
  observed.attach_attributor(&attr);
  observed.run_with_warmup();
  const Metrics with_attr = observed.collect();
  EXPECT_TRUE(with_attr.attr_enabled);
  EXPECT_FALSE(with_attr.bottleneck.empty());
  EXPECT_EQ(metrics_to_json(scrub_attr(with_attr)), plain_json);
}

// ---------------------------------------------------------------------------
// The acceptance check from the paper: at saturation, the baseline's reply
// latency is dominated by source-NI queueing at the MCs (the narrow MC
// reply-NI injection path), and ARI demotes that stage.
// ---------------------------------------------------------------------------

TEST(Attr, BaselineBottleneckIsMcReplyNiQueueAndAriDemotesIt) {
  Config base;
  base.warmup_cycles = 2000;
  base.run_cycles = 8000;

  const auto reply_ni_share = [](const LatencyAttributor& attr) {
    const std::uint64_t e2e = attr.e2e_total(1);
    return e2e == 0 ? 0.0
                    : static_cast<double>(
                          attr.stage_total(1, AttrStage::kNiQueue)) /
                          static_cast<double>(e2e);
  };
  const auto reply_argmax = [](const LatencyAttributor& attr) {
    AttrStage best = AttrStage::kNiQueue;
    std::uint64_t best_cycles = 0;
    for (std::size_t i = 0; i < obs::kNumAttrStages; ++i) {
      const auto s = static_cast<AttrStage>(i);
      if (attr.stage_total(1, s) > best_cycles) {
        best_cycles = attr.stage_total(1, s);
        best = s;
      }
    }
    return best;
  };

  // Baseline at saturation (bfs is the memory-bound saturating workload).
  const Config base_cfg = apply_scheme(base, Scheme::kXYBaseline);
  const BenchmarkTraits* traits = find_benchmark("bfs");
  ASSERT_NE(traits, nullptr);
  GpgpuSim base_sim(base_cfg, *traits);
  LatencyAttributor base_attr;
  base_sim.attach_attributor(&base_attr);
  base_sim.run_with_warmup();

  // Reply-network latency is dominated by the MC-side NI injection queue.
  EXPECT_EQ(reply_argmax(base_attr), AttrStage::kNiQueue);
  const double base_share = reply_ni_share(base_attr);
  EXPECT_GT(base_share, 0.35);

  // And the top reply-network *location* is the NI queue at an MC node.
  const auto entries = base_attr.bottlenecks(64);
  const auto top_reply = std::find_if(
      entries.begin(), entries.end(),
      [](const obs::BottleneckEntry& e) { return e.net == 1; });
  ASSERT_NE(top_reply, entries.end());
  EXPECT_EQ(top_reply->stage, AttrStage::kNiQueue);
  EXPECT_TRUE(base_sim.fabric().is_mc(top_reply->node))
      << "top reply bottleneck at node " << top_reply->node;

  // Under ARI the same workload no longer queues at the MC reply NI.
  const Config ari_cfg = apply_scheme(base, Scheme::kAdaARI);
  GpgpuSim ari_sim(ari_cfg, *traits);
  LatencyAttributor ari_attr;
  ari_sim.attach_attributor(&ari_attr);
  ari_sim.run_with_warmup();

  const double ari_share = reply_ni_share(ari_attr);
  EXPECT_LT(ari_share, base_share * 0.5);
  EXPECT_NE(reply_argmax(ari_attr), AttrStage::kNiQueue);
}

// ---------------------------------------------------------------------------
// Fault interaction: retransmitted packets book their recovery time into the
// distinct retx stage, and conservation still holds under packet loss.
// ---------------------------------------------------------------------------

TEST(Attr, RetransmissionTimeLandsInRetxStageWithConservation) {
  Config cfg = tiny_config();
  cfg.run_cycles = 3000;
  cfg.fault_corrupt_rate = 1e-2;
  const Config run_cfg = apply_scheme(cfg, Scheme::kXYBaseline);
  LatencyAttributor attr;
  run_attributed(run_cfg, "bfs", attr);

  EXPECT_EQ(attr.conservation_violations(), 0u);
  const std::uint64_t retx = attr.stage_total(0, AttrStage::kRetx) +
                             attr.stage_total(1, AttrStage::kRetx);
  EXPECT_GT(retx, 0u);
  // At least one delivered packet carries a non-zero retx component that
  // still telescopes to its e2e.
  bool saw_retx_packet = false;
  for (const obs::PacketAttr& p : attr.packets()) {
    if (p.stage[static_cast<std::size_t>(AttrStage::kRetx)] > 0) {
      saw_retx_packet = true;
      EXPECT_EQ(p.stage_sum(), p.e2e());
    }
  }
  EXPECT_TRUE(saw_retx_packet);
}

// ---------------------------------------------------------------------------
// Report surfaces: JSON schema, windowed congestion series, bottleneck
// labels, HTML dashboard, node layout.
// ---------------------------------------------------------------------------

TEST(Attr, ToJsonIsValidAndCarriesSchema) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kXYBaseline);
  LatencyAttributor attr(128);
  run_attributed(cfg, "hotspot", attr);

  const std::string json = attr.to_json();
  EXPECT_TRUE(valid_json(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"arinoc-attr-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"conservation\""), std::string::npos);
  EXPECT_NE(json.find("\"bottlenecks\""), std::string::npos);
  EXPECT_NE(json.find("\"ni_queue\""), std::string::npos);
}

TEST(Attr, WindowSeriesIsSortedAndWindowed) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kXYBaseline);
  LatencyAttributor attr(128);
  run_attributed(cfg, "hotspot", attr);
  EXPECT_EQ(attr.window_cycles(), 128u);

  const auto series = attr.window_series();
  ASSERT_FALSE(series.empty());
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].window, series[i].window);
  }
  for (const auto& cell : series) EXPECT_GT(cell.count, 0u);
}

TEST(Attr, HtmlDashboardEmbedsFabricAndSeries) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kXYBaseline);
  LatencyAttributor attr;
  run_attributed(cfg, "hotspot", attr);

  const BenchmarkTraits* traits = find_benchmark("hotspot");
  ASSERT_NE(traits, nullptr);
  GpgpuSim sim(cfg, *traits);
  const std::string html =
      obs::attr_html_document(attr, &sim.fabric().graph());
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("const SERIES"), std::string::npos);
  EXPECT_NE(html.find("arinoc"), std::string::npos);
}

TEST(Attr, NodeLayoutCoversEveryNode) {
  const Config cfg = fabric_config("cmesh");
  const BenchmarkTraits* traits = find_benchmark("hotspot");
  ASSERT_NE(traits, nullptr);
  GpgpuSim sim(cfg, *traits);
  const topo::FabricGraph& g = sim.fabric().graph();
  const auto pts = topo::node_layout(g);
  EXPECT_EQ(pts.size(), static_cast<std::size_t>(g.num_nodes()));
}

// ---------------------------------------------------------------------------
// Self-profiler: epochs tile the run, wake counts never exceed capacity,
// and the JSONL stream is schema-tagged valid JSON per line.
// ---------------------------------------------------------------------------

TEST(SelfProfiler, EpochsTileRunAndJsonlIsValid) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kXYBaseline);
  const BenchmarkTraits* traits = find_benchmark("hotspot");
  ASSERT_NE(traits, nullptr);
  GpgpuSim sim(cfg, *traits);
  obs::SelfProfiler prof(256);
  sim.attach_self_profiler(&prof);
  sim.run_with_warmup();
  prof.finish(sim.now());

  const auto& epochs = prof.epochs();
  ASSERT_GE(epochs.size(), 2u);
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const auto& e = epochs[i];
    EXPECT_EQ(e.index, i);
    EXPECT_LT(e.start_cycle, e.end_cycle);
    if (i > 0) {
      EXPECT_EQ(e.start_cycle, epochs[i - 1].end_cycle);
    }
    for (std::size_t g = 0; g < obs::kNumProfGroups; ++g) {
      EXPECT_LE(e.awake[g], e.capacity[g]);
    }
  }
  // Activity-driven sleeping must be visible: router wakes below capacity.
  const std::size_t routers =
      static_cast<std::size_t>(obs::ProfGroup::kRouters);
  std::uint64_t awake = 0, capacity = 0;
  for (const auto& e : epochs) {
    awake += e.awake[routers];
    capacity += e.capacity[routers];
  }
  EXPECT_GT(capacity, 0u);
  EXPECT_LE(awake, capacity);

  const std::string jsonl = prof.to_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(valid_json(line)) << line.substr(0, 200);
    EXPECT_NE(line.find("\"arinoc-selfprof-v1\""), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, epochs.size());
}

TEST(SelfProfiler, DoesNotPerturbSimulationResults) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  const BenchmarkTraits* traits = find_benchmark("hotspot");
  ASSERT_NE(traits, nullptr);

  GpgpuSim plain(cfg, *traits);
  plain.run_with_warmup();

  GpgpuSim profiled(cfg, *traits);
  obs::SelfProfiler prof(256);
  profiled.attach_self_profiler(&prof);
  profiled.run_with_warmup();
  prof.finish(profiled.now());

  EXPECT_EQ(metrics_to_json(profiled.collect()),
            metrics_to_json(plain.collect()));
}

// ---------------------------------------------------------------------------
// Exec integration: attribution cells write one report per cell, fill the
// CSV bottleneck column, and bypass the result cache.
// ---------------------------------------------------------------------------

TEST(SweepAttribution, WritesPerCellReportsAndBypassesCache) {
  const std::string root = testing::TempDir() + "/arinoc_attr_sweep";
  const std::string attr_dir = root + "/attr";
  const std::string cache_dir = root + "/cache";
  std::filesystem::remove_all(root);

  const auto run_once = [&] {
    return Sweep(tiny_config())
        .schemes({Scheme::kXYBaseline})
        .benchmarks({"hotspot"})
        .jobs(1)
        .cache(true, cache_dir)
        .attribution(attr_dir)
        .run();
  };

  const auto first = run_once();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_TRUE(first[0].ok()) << first[0].error;
  EXPECT_FALSE(first[0].from_cache);
  ASSERT_FALSE(first[0].attr_path.empty());

  std::ifstream in(first[0].attr_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << first[0].attr_path;
  std::ostringstream body;
  body << in.rdbuf();
  EXPECT_TRUE(valid_json(body.str()));
  EXPECT_NE(body.str().find("\"arinoc-attr-v1\""), std::string::npos);

  // The Metrics summary feeds the CSV bottleneck column.
  EXPECT_TRUE(first[0].metrics.attr_enabled);
  EXPECT_FALSE(first[0].metrics.bottleneck.empty());
  const std::string csv = Sweep::to_csv(first);
  EXPECT_NE(csv.find(",bottleneck,"), std::string::npos);
  EXPECT_NE(csv.find(Sweep::csv_escape(first[0].metrics.bottleneck)),
            std::string::npos);

  // Attribution cells must re-simulate: a cache hit would skip the report.
  const auto second = run_once();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].from_cache);
  EXPECT_FALSE(second[0].attr_path.empty());

  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace arinoc
