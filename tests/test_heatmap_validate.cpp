// Heatmap rendering and the credit-conservation invariant checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/heatmap.hpp"
#include "core/experiment.hpp"
#include "noc/ni.hpp"

namespace arinoc {
namespace {

TEST(Shade, MonotoneAndBounded) {
  EXPECT_EQ(detail::shade(0.0, 1.0), ' ');
  EXPECT_EQ(detail::shade(1.0, 1.0), '@');
  EXPECT_EQ(detail::shade(5.0, 1.0), '@');  // Clamped.
  EXPECT_EQ(detail::shade(0.5, 0.0), ' ');  // Max 0: everything cold.
  char prev = ' ';
  for (double v = 0.0; v <= 1.0; v += 0.1) {
    const char c = detail::shade(v, 1.0);
    EXPECT_GE(std::string(" .:-=+*#%@").find(c),
              std::string(" .:-=+*#%@").find(prev));
    prev = c;
  }
}

TEST(Heatmap, RendersGridWithMcMarkers) {
  Config cfg = apply_scheme(Config{}, Scheme::kXYBaseline);
  cfg.warmup_cycles = 200;
  cfg.run_cycles = 1000;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  const std::string map = link_heatmap(sim.reply_net(), 1000);
  // 6 rows of 6 cells + title.
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 7);
  auto grid_of = [](const std::string& s) {
    return s.substr(s.find('\n') + 1);  // Strip the title line.
  };
  const std::string grid = grid_of(map);
  EXPECT_EQ(std::count(grid.begin(), grid.end(), 'M'), 8);
  EXPECT_EQ(std::count(grid.begin(), grid.end(), 'c'), 28);
  // Reply traffic is injected only at MCs: every CC cell's shade is blank
  // and at least one MC cell is hot.
  const std::string inj = grid_of(injection_heatmap(sim.reply_net(), 1000));
  bool hot_mc = false;
  for (std::size_t i = 0; i + 1 < inj.size(); ++i) {
    if (inj[i] == 'M' && inj[i + 1] != ' ') hot_mc = true;
    if (inj[i] == 'c') {
      EXPECT_EQ(inj[i + 1], ' ') << "CC injecting replies?";
    }
  }
  EXPECT_TRUE(hot_mc);
}

TEST(CreditInvariant, HoldsOnIdleNetwork) {
  Mesh mesh(4, 4, 2);
  NetworkParams np;
  Network net(np, &mesh);
  EXPECT_EQ(net.validate_credit_invariants(), "");
}

TEST(CreditInvariant, HoldsDuringAndAfterTraffic) {
  Mesh mesh(4, 4, 2);
  NetworkParams np;
  np.routing = RoutingAlgo::kMinAdaptive;
  np.priority_levels = 2;
  np.treat_mcs_specially = true;
  np.mc_injection_speedup = 4;
  Network net(np, &mesh);
  std::vector<std::unique_ptr<EnhancedInjectNi>> nis;
  std::vector<std::unique_ptr<EjectNi>> ejs;
  class Sink : public PacketSink {
   public:
    void deliver(const Packet&, Cycle) override {}
  } sink;
  for (NodeId n = 0; n < 16; ++n) {
    nis.push_back(std::make_unique<EnhancedInjectNi>(&net, n, 36));
    ejs.push_back(std::make_unique<EjectNi>(&net, n, &sink));
  }
  Xoshiro256 rng(5);
  for (Cycle t = 0; t < 600; ++t) {
    for (NodeId n = 0; n < 16; ++n) {
      if (!rng.chance(0.3)) continue;
      const NodeId dst = static_cast<NodeId>(rng.next_below(16));
      if (dst == n) continue;
      const PacketId id =
          net.make_packet(PacketType::kReadReply, n, dst, 1, 0, t);
      if (!nis[static_cast<std::size_t>(n)]->try_accept(id, t)) {
        net.abandon_packet(id);
      }
    }
    for (auto& ni : nis) ni->cycle(t);
    net.step(t);
    for (auto& ej : ejs) ej->cycle(t);
    // The invariant must hold at EVERY cycle boundary, not only at rest.
    ASSERT_EQ(net.validate_credit_invariants(), "") << "at cycle " << t;
  }
}

TEST(CreditInvariant, HoldsWithMultiCycleLinks) {
  Mesh mesh(4, 4, 2);
  NetworkParams np;
  np.link_latency = 3;
  Network net(np, &mesh);
  EnhancedInjectNi ni(&net, 0, 36);
  class Sink : public PacketSink {
   public:
    void deliver(const Packet&, Cycle) override {}
  } sink;
  EjectNi ej(&net, 15, &sink);
  for (Cycle t = 0; t < 200; ++t) {
    const PacketId id = net.make_packet(PacketType::kReadReply, 0, 15, 0, 0, t);
    if (!ni.try_accept(id, t)) net.abandon_packet(id);
    ni.cycle(t);
    net.step(t);
    ej.cycle(t);
    ASSERT_EQ(net.validate_credit_invariants(), "") << "at cycle " << t;
  }
}

}  // namespace
}  // namespace arinoc
