// Property/fuzz tests for the NoC: randomized traffic across parameter
// combinations must never lose, duplicate, or corrupt packets, and must
// always make forward progress (deadlock freedom), including under the
// ARI features (speedup, priority, split supply) and adverse settings
// (atomic VC allocation, 2 VCs, multi-cycle links).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/ni.hpp"
#include "noc/topology.hpp"

namespace arinoc {
namespace {

struct FuzzParams {
  RoutingAlgo routing;
  std::uint32_t vcs;
  bool non_atomic;
  std::uint32_t speedup;
  std::uint32_t link_latency;
  std::uint32_t priority_levels;
  std::uint64_t seed;
};

class SequenceSink : public PacketSink {
 public:
  void deliver(const Packet& pkt, Cycle) override {
    ++delivered;
    total_flits += pkt.num_flits;
  }
  std::uint64_t delivered = 0;
  std::uint64_t total_flits = 0;
};

class NocFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(NocFuzz, ConservationAndProgress) {
  const FuzzParams fp = GetParam();
  Mesh mesh(5, 5, 4);
  NetworkParams np;
  np.routing = fp.routing;
  np.num_vcs = fp.vcs;
  np.vc_depth_flits = 5;
  np.non_atomic_vc = fp.non_atomic;
  np.link_latency = fp.link_latency;
  np.priority_levels = fp.priority_levels;
  np.treat_mcs_specially = true;
  np.mc_injection_speedup = std::min(fp.speedup, fp.vcs);
  Network net(np, &mesh);

  SequenceSink sink;
  std::vector<std::unique_ptr<InjectNi>> nis;
  std::vector<std::unique_ptr<EjectNi>> ejs;
  Config cfg;
  cfg.num_vcs = fp.vcs;
  cfg.split_queues = std::min(4u, fp.vcs);
  for (NodeId n = 0; n < static_cast<NodeId>(mesh.nodes()); ++n) {
    // MCs get the ARI split-queue NI, CCs the enhanced NI.
    nis.push_back(make_inject_ni(
        mesh.is_mc(n) ? NiArch::kSplitQueue : NiArch::kEnhanced, &net, n,
        cfg));
    ejs.push_back(std::make_unique<EjectNi>(&net, n, &sink));
  }

  Xoshiro256 rng(fp.seed);
  std::uint64_t offered = 0;
  std::uint64_t offered_flits = 0;
  const Cycle inject_until = 800;
  for (Cycle t = 0; t < 6000; ++t) {
    if (t < inject_until) {
      for (NodeId n = 0; n < static_cast<NodeId>(mesh.nodes()); ++n) {
        if (!rng.chance(0.25)) continue;
        NodeId dst = static_cast<NodeId>(rng.next_below(mesh.nodes()));
        if (dst == n) continue;
        const PacketType type = static_cast<PacketType>(rng.next_below(4));
        const std::uint8_t prio = static_cast<std::uint8_t>(
            rng.next_below(fp.priority_levels));
        const PacketId id = net.make_packet(type, n, dst, prio, 0, t);
        if (nis[static_cast<std::size_t>(n)]->try_accept(id, t)) {
          ++offered;
          offered_flits += net.arena().at(id).num_flits;
        } else {
          net.abandon_packet(id);
        }
      }
    }
    for (auto& ni : nis) ni->cycle(t);
    net.step(t);
    for (auto& ej : ejs) ej->cycle(t);
    if (t > inject_until && net.arena().live() == 0) break;
  }
  EXPECT_GT(offered, 100u);
  EXPECT_EQ(sink.delivered, offered) << "lost or duplicated packets";
  EXPECT_EQ(sink.total_flits, offered_flits) << "flit corruption";
  EXPECT_EQ(net.arena().live(), 0u) << "stuck packets (deadlock?)";
}

std::vector<FuzzParams> fuzz_matrix() {
  std::vector<FuzzParams> out;
  std::uint64_t seed = 1;
  for (RoutingAlgo algo : {RoutingAlgo::kXY, RoutingAlgo::kMinAdaptive}) {
    for (std::uint32_t vcs : {2u, 4u}) {
      for (bool non_atomic : {false, true}) {
        for (std::uint32_t speedup : {1u, 4u}) {
          out.push_back({algo, vcs, non_atomic, speedup, 1, 2, seed++});
        }
      }
    }
  }
  // Multi-cycle links and deeper priority as extra corners.
  out.push_back({RoutingAlgo::kMinAdaptive, 4, true, 4, 3, 2, 99});
  out.push_back({RoutingAlgo::kXY, 4, true, 4, 2, 4, 100});
  out.push_back({RoutingAlgo::kMinAdaptive, 4, true, 4, 1, 6, 101});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, NocFuzz, ::testing::ValuesIn(fuzz_matrix()),
    [](const auto& info) {
      const FuzzParams& p = info.param;
      std::string n;
      n += p.routing == RoutingAlgo::kXY ? "XY" : "Ada";
      n += "_v" + std::to_string(p.vcs);
      n += p.non_atomic ? "_wpf" : "_atomic";
      n += "_s" + std::to_string(p.speedup);
      n += "_l" + std::to_string(p.link_latency);
      n += "_p" + std::to_string(p.priority_levels);
      n += "_seed" + std::to_string(p.seed);
      return n;
    });

// MultiPort routers (two injection input ports) under random traffic:
// conservation must hold with the extra ports too.
TEST(NocFuzzExtra, MultiPortInjectionConserves) {
  Mesh mesh(4, 4, 2);
  NetworkParams np;
  np.routing = RoutingAlgo::kMinAdaptive;
  np.treat_mcs_specially = true;
  np.mc_injection_ports = 2;
  Network net(np, &mesh);
  SequenceSink sink;
  Config cfg;
  std::vector<std::unique_ptr<InjectNi>> nis;
  std::vector<std::unique_ptr<EjectNi>> ejs;
  for (NodeId n = 0; n < 16; ++n) {
    nis.push_back(make_inject_ni(
        mesh.is_mc(n) ? NiArch::kMultiPort : NiArch::kEnhanced, &net, n,
        cfg));
    ejs.push_back(std::make_unique<EjectNi>(&net, n, &sink));
  }
  Xoshiro256 rng(31);
  std::uint64_t offered = 0;
  for (Cycle t = 0; t < 4000; ++t) {
    if (t < 600) {
      for (NodeId n = 0; n < 16; ++n) {
        if (!rng.chance(0.3)) continue;
        const NodeId dst = static_cast<NodeId>(rng.next_below(16));
        if (dst == n) continue;
        const PacketId id = net.make_packet(
            static_cast<PacketType>(rng.next_below(4)), n, dst, 0, 0, t);
        if (nis[static_cast<std::size_t>(n)]->try_accept(id, t)) {
          ++offered;
        } else {
          net.abandon_packet(id);
        }
      }
    }
    for (auto& ni : nis) ni->cycle(t);
    net.step(t);
    for (auto& ej : ejs) ej->cycle(t);
    if (t > 600 && net.arena().live() == 0) break;
  }
  EXPECT_GT(offered, 100u);
  EXPECT_EQ(sink.delivered, offered);
  EXPECT_EQ(net.arena().live(), 0u);
}

// Stress: sustained saturation with ARI features on; throughput must stay
// near the ejection capacity and never collapse (livelock check).
TEST(NocStress, SaturationThroughputStable) {
  Mesh mesh(6, 6, 8);
  NetworkParams np;
  np.routing = RoutingAlgo::kMinAdaptive;
  np.priority_levels = 2;
  np.treat_mcs_specially = true;
  np.mc_injection_speedup = 4;
  Network net(np, &mesh);
  SequenceSink sink;
  Config cfg;
  std::vector<std::unique_ptr<InjectNi>> nis;
  std::vector<std::unique_ptr<EjectNi>> ejs;
  for (NodeId mc : mesh.mc_nodes()) {
    nis.push_back(make_inject_ni(NiArch::kSplitQueue, &net, mc, cfg));
  }
  for (NodeId cc : mesh.cc_nodes()) {
    ejs.push_back(std::make_unique<EjectNi>(&net, cc, &sink));
  }
  Xoshiro256 rng(7);
  std::uint64_t window_start = 0;
  double min_rate = 1e9, max_rate = 0.0;
  for (Cycle t = 0; t < 8000; ++t) {
    for (std::size_t i = 0; i < nis.size(); ++i) {
      const NodeId dst =
          mesh.cc_nodes()[rng.next_below(mesh.cc_nodes().size())];
      const PacketId id = net.make_packet(PacketType::kReadReply,
                                          mesh.mc_nodes()[i], dst, 1, 0, t);
      if (!nis[i]->try_accept(id, t)) net.abandon_packet(id);
    }
    for (auto& ni : nis) ni->cycle(t);
    net.step(t);
    for (auto& ej : ejs) ej->cycle(t);
    if ((t + 1) % 2000 == 0) {
      if (t > 2000) {  // Skip the warm-up window.
        const double rate =
            static_cast<double>(sink.delivered - window_start) / 2000.0;
        min_rate = std::min(min_rate, rate);
        max_rate = std::max(max_rate, rate);
      }
      window_start = sink.delivered;
    }
  }
  EXPECT_GT(min_rate, 1.0);              // Sustained high throughput.
  EXPECT_LT(max_rate / min_rate, 1.5);   // No collapse over time.
}

}  // namespace
}  // namespace arinoc
