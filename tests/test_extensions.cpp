// Extension knobs: L1 bypass (cache-bypassing traffic increase) and
// cross-warp MSHR merge control (WarpPool-like coalescing).
#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"

namespace arinoc {
namespace {

Config tiny_config() {
  Config cfg;
  cfg.warmup_cycles = 300;
  cfg.run_cycles = 1500;
  return cfg;
}

std::uint64_t read_requests(const Metrics& m) {
  return m.packets_by_type[static_cast<int>(PacketType::kReadRequest)];
}

TEST(Extensions, L1BypassIncreasesTrafficPerInstruction) {
  // A dense high-locality workload so reuse (not compulsory misses)
  // dominates inside the short test window.
  BenchmarkTraits traits = *find_benchmark("matrixMul");
  traits.mem_ratio = 0.4;
  traits.locality = 0.8;
  auto run = [&](bool bypass) {
    Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
    cfg.l1_bypass = bypass;
    GpgpuSim sim(cfg, traits);
    sim.run_with_warmup();
    return sim.collect();
  };
  const Metrics with_l1 = run(false);
  const Metrics bypass = run(true);
  // Without an L1 every load travels the network: the *intensity*
  // (requests per issued warp instruction) must rise even when the system
  // is throughput-saturated.
  const double i0 = static_cast<double>(read_requests(with_l1)) /
                    static_cast<double>(with_l1.warp_instructions);
  const double i1 = static_cast<double>(read_requests(bypass)) /
                    static_cast<double>(bypass.warp_instructions);
  EXPECT_GT(i1, i0 * 1.1);
  EXPECT_DOUBLE_EQ(bypass.l1_hit_rate, 0.0);
  EXPECT_GT(with_l1.l1_hit_rate, 0.1);
}

TEST(Extensions, DisablingCrossWarpMergeIncreasesTraffic) {
  // bfs has a large shared region: many warps miss on the same lines. The
  // short window makes the raw counts sensitive to reply-priority timing
  // (switch arbitration reads the priority latched at VC allocation), so
  // allow 2% slack rather than a strict ordering of near-equal counts.
  const Metrics merged = run_scheme(tiny_config(), Scheme::kAdaARI, "bfs");
  const Metrics split = run_scheme(
      tiny_config(), Scheme::kAdaARI, "bfs",
      [](Config& c) { c.cross_warp_merge = false; });
  EXPECT_GE(static_cast<double>(read_requests(split)),
            static_cast<double>(read_requests(merged)) * 0.98);
}

TEST(Extensions, BypassStillCorrectlyWakesWarps) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.l1_bypass = true;
  GpgpuSim sim(cfg, *find_benchmark("hotspot"));
  sim.run_with_warmup();
  // Forward progress (warps unblock) despite no L1 fills.
  EXPECT_GT(sim.collect().ipc, 0.05);
}

TEST(Extensions, NoMergeStillCorrectlyWakesWarps) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.cross_warp_merge = false;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run_with_warmup();
  EXPECT_GT(sim.collect().ipc, 0.05);
}

TEST(Extensions, RequestSideAriIsHarmlessNegativeControl) {
  const Metrics reply_only = run_scheme(tiny_config(), Scheme::kAdaARI, "bfs");
  const Metrics both = run_scheme(tiny_config(), Scheme::kAdaARI, "bfs",
                                  [](Config& c) {
                                    c.request_side_ari = true;
                                  });
  // The request side is not the bottleneck: adding ARI there changes IPC
  // by only a few percent either way.
  EXPECT_NEAR(both.ipc / reply_only.ipc, 1.0, 0.10);
}

TEST(Extensions, DeeperRouterPipelineRaisesLatency) {
  const Metrics fast = run_scheme(tiny_config(), Scheme::kAdaBaseline,
                                  "matrixMul");
  const Metrics slow = run_scheme(tiny_config(), Scheme::kAdaBaseline,
                                  "matrixMul", [](Config& c) {
                                    c.router_pipeline_stages = 3;
                                  });
  // matrixMul is uncongested: latency reflects per-hop cost directly.
  EXPECT_GT(slow.reply_latency, fast.reply_latency * 1.3);
}

TEST(Extensions, PipelineStagesValidated) {
  Config cfg;
  cfg.router_pipeline_stages = 0;
  EXPECT_NE(cfg.validate(), "");
  cfg.router_pipeline_stages = 5;
  EXPECT_NE(cfg.validate(), "");
  cfg.router_pipeline_stages = 3;
  EXPECT_EQ(cfg.validate(), "");
}

TEST(Extensions, CtaBarriersKeepWarpsInLockstep) {
  // With barriers every 50 instructions, no warp of a CTA may get more
  // than one epoch ahead of its siblings.
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.barrier_interval = 50;
  cfg.warps_per_cta = 3;
  GpgpuSim sim(cfg, *find_benchmark("bfs"));
  sim.run(2000);
  // Warps of CTA 0 on core 0: epochs within 1 of each other — verified
  // indirectly: the system still makes progress (no barrier deadlock)...
  EXPECT_GT(sim.collect().ipc, 0.05);
}

TEST(Extensions, CtaBarriersReduceIpcSlightly) {
  // Synchronization can only remove scheduling freedom.
  const Metrics free_run = run_scheme(tiny_config(), Scheme::kAdaARI, "bfs");
  const Metrics barriered = run_scheme(
      tiny_config(), Scheme::kAdaARI, "bfs", [](Config& c) {
        c.barrier_interval = 20;
        c.warps_per_cta = 8;
      });
  EXPECT_LE(barriered.ipc, free_run.ipc * 1.02);
  EXPECT_GT(barriered.ipc, 0.05);  // But never deadlocks.
}

TEST(Extensions, McPlacementChangesTopologyInsideSim) {
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaBaseline);
  cfg.mc_placement = McPlacement::kTopBottom;
  GpgpuSim sim(cfg, *find_benchmark("hotspot"));
  for (NodeId mc : sim.mesh().mc_nodes()) {
    EXPECT_TRUE(sim.mesh().y_of(mc) == 0 ||
                sim.mesh().y_of(mc) == cfg.mesh_height - 1);
  }
  sim.run_with_warmup();
  EXPECT_GT(sim.collect().ipc, 0.05);
}

}  // namespace
}  // namespace arinoc
