// Coverage for the stats plumbing: NocStats decomposition, Metrics
// coherence across schemes, JSON edge cases, and energy composition.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "noc/noc_stats.hpp"

namespace arinoc {
namespace {

TEST(NocStats, DecompositionSumsToLatency) {
  NocStats s;
  Packet p;
  p.type = PacketType::kReadReply;
  p.num_flits = 5;
  p.created = 100;
  p.injected = 130;
  s.record_delivery(p, 150);
  EXPECT_DOUBLE_EQ(s.ni_wait.mean(), 30.0);
  EXPECT_DOUBLE_EQ(s.net_transit.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean_latency(PacketType::kReadReply), 50.0);
  EXPECT_DOUBLE_EQ(s.mean_latency_all(), 50.0);
}

TEST(NocStats, PerTypeAccounting) {
  NocStats s;
  Packet rr;
  rr.type = PacketType::kReadReply;
  rr.num_flits = 5;
  Packet wr;
  wr.type = PacketType::kWriteReply;
  wr.num_flits = 1;
  s.record_delivery(rr, 10);
  s.record_delivery(rr, 20);
  s.record_delivery(wr, 30);
  EXPECT_EQ(s.packets_delivered[2], 2u);
  EXPECT_EQ(s.packets_delivered[3], 1u);
  EXPECT_EQ(s.total_flits(), 11u);
  EXPECT_EQ(s.total_packets(), 3u);
  s.reset();
  EXPECT_EQ(s.total_packets(), 0u);
  EXPECT_EQ(s.ni_wait.count(), 0u);
}

TEST(NocStats, SkipsDecompositionForUninjectedPackets) {
  NocStats s;
  Packet p;
  p.created = 50;
  p.injected = 0;  // Never injected (e.g. overlay without stamping).
  s.record_delivery(p, 60);
  EXPECT_EQ(s.ni_wait.count(), 0u);
  EXPECT_EQ(s.latency[0].count(), 1u);
}

TEST(PacketTypeNames, Stable) {
  EXPECT_STREQ(packet_type_name(PacketType::kReadRequest), "read_request");
  EXPECT_STREQ(packet_type_name(PacketType::kWriteRequest), "write_request");
  EXPECT_STREQ(packet_type_name(PacketType::kReadReply), "read_reply");
  EXPECT_STREQ(packet_type_name(PacketType::kWriteReply), "write_reply");
}

TEST(MetricsJson, ParsesAsBalancedJson) {
  Metrics m;
  m.cycles = 12345;
  m.ipc = 0.333333333;
  const std::string j = metrics_to_json(m);
  // Structural sanity: balanced braces, no trailing comma, quoted keys.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), 1);
  EXPECT_EQ(std::count(j.begin(), j.end(), '}'), 1);
  EXPECT_EQ(j.find(",\n}"), std::string::npos);
  const auto colons = std::count(j.begin(), j.end(), ':');
  const auto quotes = std::count(j.begin(), j.end(), '"');
  EXPECT_EQ(quotes, colons * 2);  // Every key quoted, values numeric.
}

TEST(MetricsJson, EmitsIntegersWithoutFraction) {
  Metrics m;
  m.cycles = 777;
  const std::string j = metrics_to_json(m);
  EXPECT_NE(j.find("\"cycles\": 777"), std::string::npos);
  EXPECT_EQ(j.find("777.0"), std::string::npos);
}

TEST(Energy, MetricsEnergyConsistentWithActivity) {
  Config cfg;
  cfg.warmup_cycles = 200;
  cfg.run_cycles = 1000;
  const Metrics m = run_scheme(cfg, Scheme::kXYBaseline, "hotspot");
  const EnergyBreakdown recomputed = EnergyModel{}.evaluate(m.activity);
  EXPECT_DOUBLE_EQ(m.energy.total_nj(), recomputed.total_nj());
  EXPECT_EQ(m.activity.cycles, m.cycles);
  EXPECT_GT(m.activity.noc_link_flits, 0u);
  EXPECT_GT(m.activity.dram_accesses, 0u);
}

TEST(Energy, AriAddsNoDramActivityPerRequest) {
  // ARI changes the NoC, not the memory protocol: DRAM accesses per served
  // request must be scheme-independent (within noise).
  Config cfg;
  cfg.warmup_cycles = 500;
  cfg.run_cycles = 3000;
  const Metrics base = run_scheme(cfg, Scheme::kAdaBaseline, "bfs");
  const Metrics ari = run_scheme(cfg, Scheme::kAdaARI, "bfs");
  const double per_req_base =
      static_cast<double>(base.activity.dram_accesses) /
      static_cast<double>(base.packets_by_type[0] + base.packets_by_type[1]);
  const double per_req_ari =
      static_cast<double>(ari.activity.dram_accesses) /
      static_cast<double>(ari.packets_by_type[0] + ari.packets_by_type[1]);
  EXPECT_NEAR(per_req_ari / per_req_base, 1.0, 0.15);
}

TEST(Accumulator, MinMaxAcrossSignChanges) {
  Accumulator a;
  a.add(-5.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  EXPECT_DOUBLE_EQ(a.mean(), -1.0);
}

TEST(RunWithWarmup, ExcludesWarmupFromMetrics) {
  Config cfg = apply_scheme(Config{}, Scheme::kXYBaseline);
  cfg.warmup_cycles = 1000;
  cfg.run_cycles = 2000;
  GpgpuSim sim(cfg, *find_benchmark("hotspot"));
  sim.run_with_warmup();
  const Metrics m = sim.collect();
  EXPECT_EQ(m.cycles, 2000u);
  EXPECT_EQ(sim.now(), 3000u);
}

}  // namespace
}  // namespace arinoc
