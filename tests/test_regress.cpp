// Regression sentinel (obs/regress): the strict JSON parser, run
// provenance, the golden baseline store's byte-for-byte round trip, the
// noise-aware/direction-aware comparator's edge cases, trend ingestion of
// stamped bench artifacts, the selfprof JSONL schema, and the output-path
// fail-fast helpers shared by the CLI drivers.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/version.hpp"
#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "obs/regress/baseline.hpp"
#include "obs/regress/compare.hpp"
#include "obs/regress/json.hpp"
#include "obs/regress/provenance.hpp"
#include "obs/regress/trend.hpp"
#include "obs/selfprof.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {
namespace {

using namespace obs::regress;

// ---------------------------------------------------------------------------
// JSON parser: strict acceptance, source-text number preservation, and
// located errors.

TEST(RegressJson, ParsesNestedDocument) {
  const JsonParseResult r = json_parse(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\"y"}, "d": true, "e": null})");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());
  const JsonValue* a = r.value.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.5);
  const JsonValue* b = r.value.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_or("c"), "x\"y");
  EXPECT_TRUE(r.value.find("d")->as_bool());
  EXPECT_TRUE(r.value.find("e")->is_null());
}

TEST(RegressJson, PreservesNumberSourceText) {
  // The golden store's byte-for-byte contract needs the parser to hand back
  // exactly the %.17g spelling the emitter wrote.
  const JsonParseResult r =
      json_parse(R"({"v": 1.2050000000000001, "i": 42})");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.find("v")->raw_number(), "1.2050000000000001");
  EXPECT_EQ(r.value.find("i")->raw_number(), "42");
}

TEST(RegressJson, RejectsMalformedWithLocation) {
  for (const char* bad :
       {"{", "{\"a\" 1}", "[1,]", "{\"a\": 1,}", "tru", "\"open",
        "{\"a\": 01}", "{} trailing"}) {
    const JsonParseResult r = json_parse(bad);
    EXPECT_FALSE(r.ok) << "accepted: " << bad;
    EXPECT_NE(r.error.find("line "), std::string::npos) << r.error;
  }
}

TEST(RegressJson, MembersPreserveOrder) {
  const JsonParseResult r = json_parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(r.ok);
  const auto& m = r.value.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].first, "z");
  EXPECT_EQ(m[1].first, "a");
  EXPECT_EQ(m[2].first, "m");
}

// ---------------------------------------------------------------------------
// Provenance: deterministic identity half, volatile environment half.

TEST(RegressProvenance, ConfigHashIsStableAndConfigSensitive) {
  Config a = make_base_config();
  EXPECT_EQ(config_hash_hex(a), config_hash_hex(a));
  EXPECT_EQ(config_hash_hex(a).size(), 16u);
  Config b = a;
  b.seed += 1;
  EXPECT_NE(config_hash_hex(a), config_hash_hex(b));
  Config c = a;
  c.run_cycles += 1;
  EXPECT_NE(config_hash_hex(a), config_hash_hex(c));
}

TEST(RegressProvenance, DeterministicRenderingDropsEnvironment) {
  Provenance p = collect_provenance();
  p.config_hash = "0123456789abcdef";
  p.scheme = "Ada-ARI";
  p.benchmark = "bfs";
  p.fabric = "mesh";
  p.seed = 7;
  p.wall_s = 1.25;

  const std::string det = provenance_json(p, /*deterministic=*/true);
  EXPECT_EQ(det.find("host"), std::string::npos);
  EXPECT_EQ(det.find("unix_time_s"), std::string::npos);
  EXPECT_EQ(det.find("wall_s"), std::string::npos);
  // Two collections render identically in deterministic mode.
  Provenance q = collect_provenance();
  q.config_hash = p.config_hash;
  q.scheme = p.scheme;
  q.benchmark = p.benchmark;
  q.fabric = p.fabric;
  q.seed = p.seed;
  EXPECT_EQ(det, provenance_json(q, /*deterministic=*/true));

  const std::string full = provenance_json(p);
  EXPECT_NE(full.find("\"host\""), std::string::npos);
  EXPECT_NE(full.find("\"wall_s\""), std::string::npos);
  EXPECT_NE(full.find(kProvenanceSchema), std::string::npos);
  EXPECT_NE(full.find(kArinocVersion), std::string::npos);
  ASSERT_TRUE(json_parse(full).ok);
  ASSERT_TRUE(json_parse(det).ok);
}

// ---------------------------------------------------------------------------
// Baseline store: snapshot extraction, byte-exact round trip, error paths.

BaselineEntry sample_entry() {
  BaselineEntry e;
  e.provenance = collect_provenance();
  e.provenance.config_hash = "00000000deadbeef";
  e.provenance.scheme = "Ada-ARI";
  e.provenance.benchmark = "bfs";
  e.provenance.fabric = "mesh";
  e.provenance.seed = 42;
  e.metrics = {{"cycles", 2000.0},
               {"ipc", 1.2050000000000001},
               {"reply_latency_p99", 61.375},
               {"packets_lost", 0.0}};
  return e;
}

TEST(RegressBaseline, SnapshotTracksCanonicalMetricSet) {
  Metrics m;
  m.cycles = 1000;
  m.ipc = 1.5;
  m.packets_retransmitted = 8;
  m.packets_recovered = 6;
  const auto snap = snapshot_metrics(m);
  std::map<std::string, double> by_name(snap.begin(), snap.end());
  EXPECT_EQ(by_name.size(), snap.size()) << "duplicate metric names";
  EXPECT_DOUBLE_EQ(by_name.at("cycles"), 1000.0);
  EXPECT_DOUBLE_EQ(by_name.at("ipc"), 1.5);
  EXPECT_DOUBLE_EQ(by_name.at("recovery_rate"), 0.75);
  EXPECT_TRUE(by_name.count("reply_latency_p999"));
  EXPECT_TRUE(by_name.count("energy_total_nj"));
  EXPECT_TRUE(by_name.count("goodput"));
  // No attribution ran: the stage shares stay out of the snapshot.
  EXPECT_FALSE(by_name.count("attr_reply_ni_queue"));

  Metrics attr = m;
  attr.attr_enabled = true;
  const auto asnap = snapshot_metrics(attr);
  std::map<std::string, double> aby(asnap.begin(), asnap.end());
  EXPECT_TRUE(aby.count("attr_reply_ni_queue"));
  EXPECT_TRUE(aby.count("attr_request_retx"));
}

TEST(RegressBaseline, RecoveryRateIsPerfectWhenNothingRetransmitted) {
  Metrics m;
  const auto snap = snapshot_metrics(m);
  for (const auto& [name, v] : snap) {
    if (name == "recovery_rate") EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(RegressBaseline, JsonRoundTripIsByteExact) {
  const BaselineEntry e = sample_entry();
  const std::string once = baseline_entry_json(e);
  const BaselineEntry back = parse_baseline_entry(once, "test");
  EXPECT_EQ(back.provenance.config_hash, e.provenance.config_hash);
  EXPECT_EQ(back.provenance.scheme, e.provenance.scheme);
  EXPECT_EQ(back.provenance.seed, e.provenance.seed);
  ASSERT_EQ(back.metrics.size(), e.metrics.size());
  // Render the reparsed entry again: byte-identical (the golden contract).
  EXPECT_EQ(baseline_entry_json(back), once);
}

TEST(RegressBaseline, WriteLoadRoundTripOnDisk) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "arinoc_regress_store_test")
          .string();
  std::filesystem::remove_all(dir);
  const BaselineEntry e = sample_entry();
  const std::string path = write_baseline_entry(dir, e);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::path(path).filename().string(), e.file_name());
  const BaselineEntry loaded = load_baseline_entry(dir, e);
  EXPECT_EQ(baseline_entry_json(loaded), baseline_entry_json(e));
  std::filesystem::remove_all(dir);
}

TEST(RegressBaseline, MissingEntrySuggestsAnchoring) {
  const BaselineEntry e = sample_entry();
  try {
    load_baseline_entry("/nonexistent-store-dir", e);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("--baseline-write"),
              std::string::npos);
  }
}

TEST(RegressBaseline, ParseRejectsForeignAndMalformedNamingOrigin) {
  try {
    parse_baseline_entry("{\"schema\": \"other-v9\"}", "origin.json");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("origin.json"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find(kBaselineSchema),
              std::string::npos);
  }
  EXPECT_THROW(parse_baseline_entry("{nope", "x"), std::invalid_argument);
  EXPECT_THROW(
      parse_baseline_entry("{\"schema\": \"arinoc-baseline-v1\"}", "x"),
      std::invalid_argument);
}

TEST(RegressBaseline, FileNameEmbedsIdentityAndSanitizes) {
  BaselineEntry e = sample_entry();
  e.provenance.benchmark = "traces/evil name";
  const std::string name = e.file_name();
  EXPECT_EQ(name.find('/'), std::string::npos);
  EXPECT_EQ(name.find(' '), std::string::npos);
  EXPECT_NE(name.find("00000000deadbeef"), std::string::npos);
  EXPECT_NE(name.find("Ada-ARI"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Comparator: tolerance boundary, directions, zero baselines, missing/new
// metrics, overrides.

using MetricVec = std::vector<std::pair<std::string, double>>;

TEST(RegressCompare, ExactlyAtToleranceBoundaryPasses) {
  // ipc tolerance is 1%: a 1.0% move is within, 1.0001x is out.
  const MetricVec base = {{"ipc", 1.0}};
  CompareReport at = compare_metrics(base, {{"ipc", 1.01}});
  EXPECT_FALSE(at.failed);
  EXPECT_EQ(at.deltas[0].verdict, Verdict::kOk);
  CompareReport past = compare_metrics(base, {{"ipc", 1.0101}});
  EXPECT_TRUE(past.failed);
}

TEST(RegressCompare, DirectionDistinguishesRegressionFromImprovement) {
  const MetricVec base = {{"ipc", 1.0}, {"reply_latency_p99", 100.0}};
  // IPC down + latency up: both regressions.
  CompareReport worse =
      compare_metrics(base, {{"ipc", 0.9}, {"reply_latency_p99", 120.0}});
  EXPECT_TRUE(worse.failed);
  EXPECT_EQ(worse.count(Verdict::kRegressed), 2u);
  // IPC up + latency down: improvements — still fail by default...
  CompareReport better =
      compare_metrics(base, {{"ipc", 1.1}, {"reply_latency_p99", 80.0}});
  EXPECT_TRUE(better.failed);
  EXPECT_EQ(better.count(Verdict::kImproved), 2u);
  EXPECT_EQ(better.count(Verdict::kRegressed), 0u);
  // ...and pass with --ignore-improvements.
  CompareOptions relaxed;
  relaxed.ignore_improvements = true;
  CompareReport ok = compare_metrics(
      base, {{"ipc", 1.1}, {"reply_latency_p99", 80.0}}, relaxed);
  EXPECT_FALSE(ok.failed);
  // A regression still fails even with improvements ignored.
  CompareReport mixed = compare_metrics(
      base, {{"ipc", 0.9}, {"reply_latency_p99", 80.0}}, relaxed);
  EXPECT_TRUE(mixed.failed);
}

TEST(RegressCompare, NeutralDirectionFailsEitherWay) {
  const MetricVec base = {{"offered_rate", 0.5}};
  EXPECT_TRUE(compare_metrics(base, {{"offered_rate", 0.55}}).failed);
  EXPECT_TRUE(compare_metrics(base, {{"offered_rate", 0.45}}).failed);
  EXPECT_FALSE(compare_metrics(base, {{"offered_rate", 0.502}}).failed);
}

TEST(RegressCompare, ZeroBaselineComparesAbsolutely) {
  // packets_lost anchored at 0 must stay ~0: the relative delta would be
  // undefined, so the comparison degrades to |candidate| <= tol.
  const MetricVec base = {{"packets_lost", 0.0}};
  EXPECT_FALSE(compare_metrics(base, {{"packets_lost", 0.0}}).failed);
  CompareReport lost = compare_metrics(base, {{"packets_lost", 3.0}});
  EXPECT_TRUE(lost.failed);
  EXPECT_DOUBLE_EQ(lost.deltas[0].rel, 3.0);
}

TEST(RegressCompare, MissingMetricAlwaysFailsNewNeverDoes) {
  const MetricVec base = {{"ipc", 1.0}, {"goodput", 0.4}};
  const MetricVec cand = {{"ipc", 1.0}, {"shiny_new_metric", 9.0}};
  const CompareReport r = compare_metrics(base, cand);
  EXPECT_TRUE(r.failed);  // goodput vanished.
  EXPECT_EQ(r.count(Verdict::kMissing), 1u);
  EXPECT_EQ(r.count(Verdict::kNew), 1u);
  // Only the new metric: never a failure.
  const CompareReport rn =
      compare_metrics({{"ipc", 1.0}}, {{"ipc", 1.0}, {"extra", 1.0}});
  EXPECT_FALSE(rn.failed);
}

TEST(RegressCompare, ToleranceOverridesApply) {
  const MetricVec base = {{"ipc", 1.0}, {"goodput", 1.0}};
  const MetricVec cand = {{"ipc", 1.05}, {"goodput", 1.05}};
  CompareOptions opts;
  opts.default_tol = 0.10;  // Everything within 10%.
  EXPECT_FALSE(compare_metrics(base, cand, opts).failed);
  opts.tol_override["ipc"] = 0.01;  // ...except ipc, pinned tight again.
  const CompareReport r = compare_metrics(base, cand, opts);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.count(Verdict::kImproved), 1u);
}

TEST(RegressCompare, EntryIdentityGateRejectsForeignAnchors) {
  BaselineEntry anchor = sample_entry();
  BaselineEntry cand = sample_entry();
  cand.provenance.config_hash = "ffffffffffffffff";
  const CompareReport r = compare_entries(anchor, cand);
  EXPECT_TRUE(r.failed);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_NE(r.deltas[0].name.find("config_hash"), std::string::npos);
  EXPECT_NE(r.deltas[0].name.find("re-anchor"), std::string::npos);

  BaselineEntry stale = sample_entry();
  stale.provenance.version = "0.0.1-ancient";
  EXPECT_TRUE(compare_entries(stale, sample_entry()).failed);
  EXPECT_FALSE(compare_entries(anchor, sample_entry()).failed);
}

TEST(RegressCompare, ReportTextNamesOffendingMetrics) {
  const CompareReport r =
      compare_metrics({{"ipc", 1.0}}, {{"ipc", 0.5}});
  const std::string text = r.text();
  EXPECT_NE(text.find("ipc"), std::string::npos);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("RESULT: REGRESSION"), std::string::npos);
  EXPECT_EQ(compare_exit_status(r), 7);
  const CompareReport ok = compare_metrics({{"ipc", 1.0}}, {{"ipc", 1.0}});
  EXPECT_EQ(compare_exit_status(ok), 0);
  EXPECT_NE(ok.text().find("RESULT: ok"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trend ingestion: stamped snapshots in, per-(cell, metric) series out.

std::string stamped_snapshot(const char* kind, double cps, bool quick) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"arinoc-bench-v1\",\n  \"kind\": \"" << kind
     << "\",\n  \"provenance\": {\"schema\": \"arinoc-provenance-v1\", "
        "\"version\": \""
     << kArinocVersion
     << "\", \"config_hash\": \"abcdef0123456789\", \"seed\": 1},\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"cells\": [\n"
     << "    {\"name\": \"saturated\", \"workload\": \"bfs\", \"scheme\": "
        "\"Ada-ARI\", \"activity_cps\": "
     << cps << ", \"bit_identical\": true},\n"
     << "    {\"name\": \"low-inj\", \"workload\": \"matrixMul\", "
        "\"scheme\": \"XY-Baseline\", \"activity_cps\": "
     << cps * 2 << ", \"bit_identical\": true}\n"
     << "  ],\n  \"geomean_speedup\": 3.5\n}\n";
  return os.str();
}

TEST(RegressTrend, BuildsSeriesAcrossSnapshots) {
  TrendBuilder trend;
  trend.add_snapshot_text("day1", stamped_snapshot("throughput", 100e3, false));
  trend.add_snapshot_text("day2", stamped_snapshot("throughput", 120e3, false));
  ASSERT_EQ(trend.snapshots().size(), 2u);

  const auto series = trend.series();
  ASSERT_FALSE(series.empty());
  // Find the saturated/Ada-ARI activity_cps series and check both points.
  bool found = false;
  for (const TrendSeries& s : series) {
    if (s.metric != "activity_cps") continue;
    if (s.cell.find("saturated") == std::string::npos) continue;
    found = true;
    ASSERT_EQ(s.points.size(), 2u);
    EXPECT_EQ(s.points[0].snapshot, 0u);
    EXPECT_DOUBLE_EQ(s.points[0].value, 100e3);
    EXPECT_DOUBLE_EQ(s.points[1].value, 120e3);
    // Identity fields shape the cell key, not the metric set.
    EXPECT_NE(s.cell.find("Ada-ARI"), std::string::npos);
  }
  EXPECT_TRUE(found);
  // Booleans trend as 0/1; top-level scalars trend under the bench kind.
  bool saw_bool = false, saw_top = false;
  for (const TrendSeries& s : series) {
    if (s.metric == "bit_identical") {
      saw_bool = true;
      EXPECT_DOUBLE_EQ(s.points[0].value, 1.0);
    }
    if (s.metric == "geomean_speedup") saw_top = true;
  }
  EXPECT_TRUE(saw_bool);
  EXPECT_TRUE(saw_top);
}

TEST(RegressTrend, QuickRunsTrendSeparatelyFromFullRuns) {
  TrendBuilder trend;
  trend.add_snapshot_text("full", stamped_snapshot("throughput", 100e3, false));
  trend.add_snapshot_text("quick", stamped_snapshot("throughput", 90e3, true));
  // The quick snapshot's rows land in "throughput[quick]" cells, so the two
  // run lengths never share a series (their numbers are incomparable).
  bool full_cell = false, quick_cell = false;
  for (const TrendSeries& s : trend.series()) {
    if (s.metric != "activity_cps") continue;
    if (s.cell.rfind("throughput[quick]", 0) == 0) {
      quick_cell = true;
      EXPECT_EQ(s.points.size(), 1u);
    } else if (s.cell.rfind("throughput", 0) == 0) {
      full_cell = true;
      EXPECT_EQ(s.points.size(), 1u);
    }
  }
  EXPECT_TRUE(full_cell);
  EXPECT_TRUE(quick_cell);
}

TEST(RegressTrend, RejectsUnstampedAndEmptyDocuments) {
  TrendBuilder trend;
  try {
    trend.add_snapshot_text("foreign", "{\"cells\": [{\"x\": 1}]}");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(kBenchSchema), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("foreign"), std::string::npos);
  }
  EXPECT_THROW(trend.add_snapshot_text("bad", "{not json"),
               std::invalid_argument);
  EXPECT_EQ(trend.snapshots().size(), 0u);
}

TEST(RegressTrend, JsonAndHtmlRender) {
  TrendBuilder trend;
  trend.add_snapshot_text("a", stamped_snapshot("throughput", 100e3, false));
  trend.add_snapshot_text("b", stamped_snapshot("throughput", 110e3, false));
  const std::string js = trend.to_json();
  const JsonParseResult parsed = json_parse(js);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema"), kTrendSchema);
  ASSERT_NE(parsed.value.find("snapshots"), nullptr);
  EXPECT_EQ(parsed.value.find("snapshots")->items().size(), 2u);

  const std::string html = trend_html_document(trend, "test trend");
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("polyline"), std::string::npos);
  EXPECT_NE(html.find("test trend"), std::string::npos);
  EXPECT_NE(html.find("activity_cps"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Self-profiler JSONL schema: every line the simulator emits must parse and
// carry the documented "arinoc-selfprof-v1" fields (CI validates the same
// schema on real artifacts; this pins it at the unit level).

TEST(RegressSchemas, SelfProfilerJsonlMatchesSchema) {
  Config cfg;
  cfg.warmup_cycles = 100;
  cfg.run_cycles = 600;
  const Config resolved = resolve_cell_config(cfg, Scheme::kAdaARI, "bfs");
  const BenchmarkTraits* traits = find_benchmark("bfs");
  ASSERT_NE(traits, nullptr);
  GpgpuSim sim(resolved, *traits);
  obs::SelfProfiler prof(256);
  sim.attach_self_profiler(&prof);
  sim.run_with_warmup();
  prof.finish(sim.now());

  const std::string jsonl = prof.to_jsonl();
  ASSERT_FALSE(jsonl.empty());
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n;
    const JsonParseResult r = json_parse(line);
    ASSERT_TRUE(r.ok) << "line " << n << ": " << r.error;
    EXPECT_EQ(r.value.string_or("schema"), "arinoc-selfprof-v1");
    for (const char* key :
         {"epoch", "start_cycle", "end_cycle", "cycles", "wall_ns_total"}) {
      const JsonValue* v = r.value.find(key);
      ASSERT_NE(v, nullptr) << "missing " << key;
      EXPECT_TRUE(v->is_number()) << key;
    }
    for (const char* obj : {"wall_ns", "awake", "capacity"}) {
      const JsonValue* v = r.value.find(obj);
      ASSERT_NE(v, nullptr) << "missing " << obj;
      ASSERT_TRUE(v->is_object()) << obj;
      EXPECT_FALSE(v->members().empty()) << obj;
      for (const auto& [name, field] : v->members()) {
        EXPECT_TRUE(field.is_number()) << obj << "." << name;
      }
    }
  }
  EXPECT_GT(n, 0u);
}

// ---------------------------------------------------------------------------
// metrics_to_json provenance embedding: absent by default (byte-identity
// with pre-sentinel output), leading member when supplied.

TEST(RegressSchemas, MetricsJsonProvenanceIsOptIn) {
  Metrics m;
  m.cycles = 10;
  m.ipc = 1.0;
  const std::string plain = metrics_to_json(m);
  EXPECT_EQ(plain, metrics_to_json(m, 2, ""));
  EXPECT_EQ(plain.find("provenance"), std::string::npos);

  Provenance p = collect_provenance();
  p.config_hash = "0123456789abcdef";
  const std::string stamped = metrics_to_json(m, 2, provenance_json(p));
  EXPECT_EQ(stamped.find("  \"provenance\": {"), 2u)
      << "provenance must be the leading member";
  ASSERT_TRUE(json_parse(stamped).ok);
  // Everything after the provenance member is unchanged.
  EXPECT_NE(stamped.find("\"cycles\": 10"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Output-path fail-fast helpers.

TEST(RegressPaths, ParentDirHelpers) {
  EXPECT_EQ(parent_dir_of("plain.json"), "");
  EXPECT_EQ(parent_dir_of("a/b/c.json"), "a/b");
  EXPECT_TRUE(parent_dir_exists("plain.json"));  // CWD always exists.
  EXPECT_TRUE(parent_dir_exists(
      (std::filesystem::temp_directory_path() / "x.json").string()));
  EXPECT_FALSE(parent_dir_exists("/no/such/dir/anywhere/x.json"));
}

// ---------------------------------------------------------------------------
// End-to-end: a real simulated cell anchors, re-anchors byte-identically,
// and a perturbed candidate regresses with the documented exit status.

TEST(RegressEndToEnd, AnchorCheckAndPerturbationDetection) {
  Config cfg;
  cfg.warmup_cycles = 100;
  cfg.run_cycles = 600;
  const Config resolved = resolve_cell_config(cfg, Scheme::kAdaARI, "bfs");
  const BenchmarkTraits* traits = find_benchmark("bfs");
  ASSERT_NE(traits, nullptr);

  auto run_cell = [&]() {
    GpgpuSim sim(resolved, *traits);
    sim.run_with_warmup();
    return sim.collect();
  };
  BaselineEntry entry;
  entry.provenance = collect_provenance();
  entry.provenance.config_hash = config_hash_hex(resolved);
  entry.provenance.scheme = scheme_name(Scheme::kAdaARI);
  entry.provenance.benchmark = "bfs";
  entry.provenance.fabric = "mesh";
  entry.provenance.seed = resolved.seed;
  entry.metrics = snapshot_metrics(run_cell());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "arinoc_regress_e2e_test")
          .string();
  std::filesystem::remove_all(dir);
  const std::string path = write_baseline_entry(dir, entry);

  // Re-run: the simulator is deterministic, so the rewritten entry is
  // byte-identical and the comparison is all-ok.
  BaselineEntry rerun = entry;
  rerun.metrics = snapshot_metrics(run_cell());
  EXPECT_EQ(baseline_entry_json(rerun), baseline_entry_json(entry));
  const BaselineEntry anchored = load_baseline_entry(dir, rerun);
  EXPECT_FALSE(compare_entries(anchored, rerun).failed);

  // Perturb one metric past tolerance: regression, exit status 7.
  BaselineEntry perturbed = rerun;
  for (auto& [name, v] : perturbed.metrics) {
    if (name == "ipc") v *= 0.7;
  }
  const CompareReport r = compare_entries(anchored, perturbed);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(compare_exit_status(r), 7);
  EXPECT_NE(r.text().find("ipc"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace arinoc
