// Activity-driven simulation core: ActiveSet semantics and the sweep-level
// bit-identity contract — activity-gated stepping must produce byte-identical
// metrics, traces, telemetry, and counter dumps to always-on stepping for
// every scheme, with faults active, with observers attached, and across the
// warmup/measure reset boundary. A single diverging byte is a missed-wake or
// catch-up bug, never an acceptable approximation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/active_set.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {
namespace {

Config tiny_config() {
  Config cfg;
  cfg.warmup_cycles = 300;
  cfg.run_cycles = 1500;
  return cfg;
}

// ---------------------------------------------------------------------------
// ActiveSet unit semantics.
// ---------------------------------------------------------------------------

TEST(ActiveSet, DuplicateWakesAbsorbed) {
  ActiveSet s;
  s.resize(8);
  s.wake(3);
  s.wake(3);
  s.wake(3);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(2));

  std::vector<std::size_t> drained;
  s.drain_sorted([&](std::size_t i) { drained.push_back(i); });
  EXPECT_EQ(drained, (std::vector<std::size_t>{3}));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(ActiveSet, DrainVisitsAscendingRegardlessOfWakeOrder) {
  ActiveSet s;
  s.resize(10);
  for (std::size_t i : {7u, 2u, 9u, 0u, 5u}) s.wake(i);
  std::vector<std::size_t> drained;
  s.drain_sorted([&](std::size_t i) { drained.push_back(i); });
  EXPECT_EQ(drained, (std::vector<std::size_t>{0, 2, 5, 7, 9}));
}

TEST(ActiveSet, WakeDuringDrainLandsInNextDrain) {
  ActiveSet s;
  s.resize(4);
  s.wake(0);
  s.wake(1);
  std::vector<std::size_t> first;
  s.drain_sorted([&](std::size_t i) {
    first.push_back(i);
    s.wake(2);  // Peer wake mid-drain.
    s.wake(i);  // Self re-wake mid-drain.
  });
  // Neither the peer nor the self re-wakes may be re-entered this drain.
  EXPECT_EQ(first, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(s.pending(), 3u);  // {0, 1, 2} pending for the next drain.
  std::vector<std::size_t> second;
  s.drain_sorted([&](std::size_t i) { second.push_back(i); });
  EXPECT_EQ(second, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ActiveSet, ClearDropsPendingAndStampsStayConsistent) {
  ActiveSet s;
  s.resize(4);
  s.wake(1);
  s.clear();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.contains(1));
  s.wake(1);  // Must be wakeable again in the new epoch.
  EXPECT_EQ(s.pending(), 1u);
}

TEST(ActiveSet, ResizeResetsMembership) {
  ActiveSet s;
  s.resize(4);
  s.wake_all();
  EXPECT_EQ(s.pending(), 4u);
  s.resize(6);
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.pending(), 0u);
  s.wake_all();
  EXPECT_EQ(s.pending(), 6u);
}

// ---------------------------------------------------------------------------
// Bit-identity: activity-driven vs always-on stepping.
// ---------------------------------------------------------------------------

/// Every observable artefact of one instrumented run, byte-for-byte.
struct RunOutputs {
  std::string metrics;
  std::string trace;
  std::string samples;
  std::string counters;
};

RunOutputs run_instrumented(Config cfg, const std::string& bench,
                            bool activity, bool da2mesh = false) {
  cfg.activity_driven = activity;
  obs::PacketTracer tracer(1 << 15);
  obs::CounterRegistry reg;
  GpgpuSim sim(cfg, *find_benchmark(bench), da2mesh);
  sim.attach_tracer(&tracer);
  sim.enable_sampling(250);
  sim.register_counters(&reg);
  sim.run_with_warmup();  // Crosses the stats-reset boundary.
  sim.flush_sampler();
  RunOutputs o;
  o.metrics = metrics_to_json(sim.collect());
  o.trace = tracer.to_chrome_json();
  o.samples = sim.sampler()->to_jsonl();
  o.counters = reg.to_json();
  return o;
}

void expect_identical(const RunOutputs& on, const RunOutputs& off,
                      const std::string& what) {
  EXPECT_EQ(on.metrics, off.metrics) << what << ": metrics diverged";
  EXPECT_EQ(on.trace, off.trace) << what << ": trace diverged";
  EXPECT_EQ(on.samples, off.samples) << what << ": telemetry diverged";
  EXPECT_EQ(on.counters, off.counters) << what << ": counters diverged";
}

TEST(ActivityBitIdentity, AllSchemesWithObservers) {
  for (Scheme s : {Scheme::kXYBaseline, Scheme::kAdaBaseline,
                   Scheme::kAdaMultiPort, Scheme::kAdaARI}) {
    const Config cfg = apply_scheme(tiny_config(), s);
    expect_identical(run_instrumented(cfg, "bfs", true),
                     run_instrumented(cfg, "bfs", false), scheme_name(s));
  }
}

TEST(ActivityBitIdentity, LowIntensityWorkload) {
  // A mostly-idle system is where activity gating skips the most work —
  // and where a missed wake or a broken catch-up replay shows up first.
  const Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  expect_identical(run_instrumented(cfg, "myocyte", true),
                   run_instrumented(cfg, "myocyte", false), "myocyte");
}

TEST(ActivityBitIdentity, FaultsAndRecoveryActive) {
  // Faults exercise the hardest wake edges: blocked links, corrupted-flit
  // drops, and retransmission timers re-injecting into sleeping NIs. The
  // fault RNG stream is drawn per cycle, so any stepping divergence also
  // desynchronizes the schedule and snowballs — a sharp detector.
  Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  cfg.fault_corrupt_rate = 1e-3;
  cfg.fault_link_stall_rate = 1e-4;
  cfg.fault_credit_loss_rate = 1e-4;
  cfg.fault_port_fail_rate = 1e-5;
  expect_identical(run_instrumented(cfg, "bfs", true),
                   run_instrumented(cfg, "bfs", false), "fault campaign");
}

TEST(ActivityBitIdentity, Da2MeshOverlay) {
  const Config cfg = apply_scheme(tiny_config(), Scheme::kAdaARI);
  expect_identical(
      run_instrumented(cfg, "hotspot", true, /*da2mesh=*/true),
      run_instrumented(cfg, "hotspot", false, /*da2mesh=*/true), "da2mesh");
}

TEST(ActivityBitIdentity, MidRunObserverReadsMatch) {
  // Deferred bookkeeping (issue stalls, MC queue occupancy of sleeping
  // components) must be flushed by run()'s sync point: a counter dump taken
  // between two run() calls reads the same values in both modes.
  auto dump_between_runs = [](bool activity) {
    Config cfg = apply_scheme(tiny_config(), Scheme::kAdaBaseline);
    cfg.activity_driven = activity;
    obs::CounterRegistry reg;
    GpgpuSim sim(cfg, *find_benchmark("matrixMul"));
    sim.register_counters(&reg);
    sim.run(700);
    const std::string mid = reg.to_json();
    sim.run(700);
    return mid + reg.to_json();
  };
  EXPECT_EQ(dump_between_runs(true), dump_between_runs(false));
}

}  // namespace
}  // namespace arinoc
