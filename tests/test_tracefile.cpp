// Trace-file workloads: parsing, validation, round-trip, address
// relocation, and driving the full simulator from a trace.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/report.hpp"
#include "workloads/tracefile.hpp"

namespace arinoc {
namespace {

TEST(Trace, ParsesAllRecordTypes) {
  std::istringstream in(
      "# a comment\n"
      "A\n"
      "L 0x100 0x140\n"
      "S 256\n"
      "\n"
      "L 0x200  # trailing comment\n");
  const Trace t = Trace::parse(in);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_FALSE(t.at(0).is_mem);
  EXPECT_TRUE(t.at(1).is_mem);
  EXPECT_FALSE(t.at(1).is_store);
  EXPECT_EQ(t.at(1).num_lines, 2);
  EXPECT_EQ(t.at(1).lines[0], 0x100u);
  EXPECT_EQ(t.at(1).lines[1], 0x140u);
  EXPECT_TRUE(t.at(2).is_store);
  EXPECT_EQ(t.at(2).lines[0], 256u);
  EXPECT_EQ(t.at(3).lines[0], 0x200u);
}

TEST(Trace, RejectsMalformedInput) {
  {
    std::istringstream in("X 0x100\n");
    EXPECT_THROW(Trace::parse(in), std::runtime_error);
  }
  {
    std::istringstream in("L\n");  // Memory op without address.
    EXPECT_THROW(Trace::parse(in), std::runtime_error);
  }
  {
    std::istringstream in("L zzz\n");
    EXPECT_THROW(Trace::parse(in), std::runtime_error);
  }
  {
    std::istringstream in("L 1 2 3 4 5\n");  // Too many addresses.
    EXPECT_THROW(Trace::parse(in), std::runtime_error);
  }
  {
    std::istringstream in("# only comments\n");
    EXPECT_THROW(Trace::parse(in), std::runtime_error);
  }
}

TEST(Trace, RoundTripsThroughText) {
  std::istringstream in("A\nL 0x100\nS 0x40 0x80\n");
  const Trace t = Trace::parse(in);
  std::istringstream again(t.to_text());
  const Trace t2 = Trace::parse(again);
  ASSERT_EQ(t2.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t2.at(i).is_mem, t.at(i).is_mem);
    EXPECT_EQ(t2.at(i).is_store, t.at(i).is_store);
    EXPECT_EQ(t2.at(i).num_lines, t.at(i).num_lines);
    for (int k = 0; k < t.at(i).num_lines; ++k) {
      EXPECT_EQ(t2.at(i).lines[k], t.at(i).lines[k]);
    }
  }
}

TEST(Trace, LoadReportsPathOnError) {
  try {
    Trace::load("/no/such/trace.txt");
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/trace.txt"),
              std::string::npos);
  }
}

TEST(TraceFileSource, RelocatesPrivateAddressesPerCore) {
  std::istringstream in("L 0x0\nL 0x40\n");
  TraceFileSource src(Trace::parse(in), /*cores=*/2, /*warps=*/1, 64);
  const Instr a = src.next(0, 0);
  const Instr b = src.next(1, 0);
  EXPECT_EQ(a.lines[0] % 64, 0u);
  EXPECT_NE(a.lines[0], b.lines[0]);  // Different cores, different regions.
}

TEST(TraceFileSource, SharedAddressesIdenticalAcrossCores) {
  std::ostringstream trace_text;
  trace_text << "L 0x" << std::hex << (Trace::kSharedBit | 0x100) << "\n";
  std::istringstream in(trace_text.str());
  TraceFileSource src(Trace::parse(in), 3, 1, 64);
  const Addr a = src.next(0, 0).lines[0];
  const Addr b = src.next(1, 0).lines[0];
  const Addr c = src.next(2, 0).lines[0];
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(TraceFileSource, LoopsAndStaggersWarps) {
  std::istringstream in("A\nL 0x40\nA\nS 0x80\n");
  TraceFileSource src(Trace::parse(in), 1, 2, 64);
  // Warp 1 starts halfway through the 4-entry stream.
  const Instr w0_first = src.next(0, 0);
  const Instr w1_first = src.next(0, 1);
  EXPECT_FALSE(w0_first.is_mem);           // Entry 0: A.
  EXPECT_FALSE(w1_first.is_mem);           // Entry 2: A.
  const Instr w1_second = src.next(0, 1);  // Entry 3: S.
  EXPECT_TRUE(w1_second.is_store);
  // Looping: 4 more fetches of warp 0 wrap to the start.
  src.next(0, 0);
  src.next(0, 0);
  src.next(0, 0);
  const Instr wrapped = src.next(0, 0);
  EXPECT_FALSE(wrapped.is_mem);
}

TEST(TraceFileSource, DrivesFullSimulator) {
  // A read-heavy streaming trace through the whole system.
  std::ostringstream text;
  for (int i = 0; i < 32; ++i) {
    text << "A\nA\nL 0x" << std::hex << (i * 64) << "\n";
  }
  std::istringstream in(text.str());
  TraceFileSource src(Trace::parse(in), 28, 24, 64);
  Config cfg = apply_scheme(Config{}, Scheme::kAdaARI);
  cfg.warmup_cycles = 300;
  cfg.run_cycles = 1500;
  GpgpuSim sim(cfg, &src);
  sim.run_with_warmup();
  const Metrics m = sim.collect();
  EXPECT_GT(m.ipc, 0.1);
  EXPECT_GT(m.flits_by_type[0], 0u);  // Reads reached the network.
}

TEST(MetricsJson, ContainsStableKeys) {
  Metrics m;
  m.cycles = 100;
  m.ipc = 1.5;
  m.mc_stall_cycles = 7;
  const std::string j = metrics_to_json(m);
  EXPECT_NE(j.find("\"cycles\": 100"), std::string::npos);
  EXPECT_NE(j.find("\"ipc\": 1.5"), std::string::npos);
  EXPECT_NE(j.find("\"mc_stall_cycles\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"energy_total_nj\""), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

}  // namespace
}  // namespace arinoc
