// Network-interface architectures (paper Fig. 7): acceptance semantics,
// supply rates into the router, occupancy accounting, and ejection-side
// reassembly with backpressure.
#include <gtest/gtest.h>

#include <memory>

#include "noc/network.hpp"
#include "noc/ni.hpp"
#include "noc/topology.hpp"

namespace arinoc {
namespace {

struct NiHarness {
  NiHarness() : mesh(2, 2, 1), net(params(), &mesh) {}

  static NetworkParams params() {
    NetworkParams p;
    p.num_vcs = 4;
    p.vc_depth_flits = 5;
    p.routing = RoutingAlgo::kXY;
    return p;
  }

  PacketId make(PacketType type, NodeId src, NodeId dst) {
    return net.make_packet(type, src, dst, 0, 0, now);
  }

  Mesh mesh;
  Network net;
  Cycle now = 0;
};

Config ni_config() {
  Config cfg;
  cfg.ni_queue_flits = 20;  // 4 long packets.
  cfg.split_queues = 4;
  return cfg;
}

TEST(BaselineNi, SerializesAcceptOverNarrowLink) {
  NiHarness h;
  BaselineInjectNi ni(&h.net, 0, 20);
  const PacketId a = h.make(PacketType::kReadReply, 0, 3);
  EXPECT_TRUE(ni.try_accept(a, 0));
  // The narrow node->NI link is busy for num_flits cycles: a second packet
  // is refused until the transfer completes.
  const PacketId b = h.make(PacketType::kReadReply, 0, 3);
  EXPECT_FALSE(ni.try_accept(b, 0));
  for (Cycle t = 0; t < 5; ++t) ni.cycle(t);
  EXPECT_TRUE(ni.try_accept(b, 5));
}

TEST(EnhancedNi, AcceptsWholePacketPerCycle) {
  NiHarness h;
  EnhancedInjectNi ni(&h.net, 0, 20);
  // Wide link (Fig. 7a): back-to-back accepts in consecutive offers as long
  // as the queue has room — 4 long packets fill the 20-flit queue.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0))
        << "accept " << i;
  }
  EXPECT_FALSE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  EXPECT_EQ(ni.occupancy_flits(), 20u);
  EXPECT_EQ(ni.occupancy_packets(), 4u);
}

TEST(EnhancedNi, SuppliesOneFlitPerCycle) {
  NiHarness h;
  EnhancedInjectNi ni(&h.net, 0, 20);
  ASSERT_TRUE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  ASSERT_TRUE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  // The narrow AB link moves at most one flit per cycle into the router.
  for (Cycle t = 0; t < 6; ++t) ni.cycle(t);
  EXPECT_EQ(h.net.router(0).flits_injected(), 6u);
}

TEST(EnhancedNi, StampsCreatedAtAccept) {
  NiHarness h;
  EnhancedInjectNi ni(&h.net, 0, 20);
  const PacketId id = h.make(PacketType::kReadReply, 0, 3);
  ASSERT_TRUE(ni.try_accept(id, 123));
  EXPECT_EQ(h.net.arena().at(id).created, 123u);
}

TEST(SplitQueueNi, SuppliesUpToKFlitsPerCycle) {
  NiHarness h;
  SplitQueueInjectNi ni(&h.net, 0, 20, 4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  }
  // 4 queues, each wired to its own VC: 4 flits enter the router per cycle.
  ni.cycle(0);
  EXPECT_EQ(h.net.router(0).flits_injected(), 4u);
  ni.cycle(1);
  EXPECT_EQ(h.net.router(0).flits_injected(), 8u);
}

TEST(SplitQueueNi, EachQueueHoldsAtLeastOnePacket) {
  NiHarness h;
  // Total budget of 8 flits over 4 queues would give 2-flit queues; the
  // §4.1 minimum (one long packet each) must win.
  SplitQueueInjectNi ni(&h.net, 0, 8, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  }
  EXPECT_EQ(ni.occupancy_packets(), 4u);
}

TEST(SplitQueueNi, DistributesPacketsRoundRobin) {
  NiHarness h;
  SplitQueueInjectNi ni(&h.net, 0, 40, 4);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ni.try_accept(h.make(PacketType::kWriteReply, 0, 3), 0));
  }
  // 8 short packets over 4 queues: every queue drains one per cycle for
  // two cycles (perfect distribution).
  ni.cycle(0);
  EXPECT_EQ(h.net.router(0).flits_injected(), 4u);
  ni.cycle(1);
  EXPECT_EQ(h.net.router(0).flits_injected(), 8u);
}

TEST(SplitQueueNi, RefusesWhenAllQueuesFull) {
  NiHarness h;
  SplitQueueInjectNi ni(&h.net, 0, 20, 4);  // 5 flits per queue.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  }
  EXPECT_FALSE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  // But a short packet cannot fit either (each queue has 0 free).
  EXPECT_FALSE(ni.try_accept(h.make(PacketType::kWriteReply, 0, 3), 0));
}

TEST(MultiPortNi, SingleQueueSupplyOneFlitPerCycle) {
  NetworkParams p = NiHarness::params();
  p.treat_mcs_specially = true;
  p.mc_injection_ports = 2;
  Mesh mesh(2, 2, 1);
  Network net(p, &mesh);
  const NodeId mc = mesh.mc_nodes()[0];
  MultiPortInjectNi ni(&net, mc, 20);
  auto mk = [&](PacketType t) {
    return net.make_packet(t, mc, mc == 0 ? 3 : 0, 0, 0, 0);
  };
  ASSERT_TRUE(ni.try_accept(mk(PacketType::kReadReply), 0));
  ASSERT_TRUE(ni.try_accept(mk(PacketType::kReadReply), 0));
  for (Cycle t = 0; t < 7; ++t) ni.cycle(t);
  // Despite two injection ports, the single NI read port caps supply at
  // one flit per cycle — the limitation §2.2/[3] discussion points out.
  EXPECT_EQ(net.router(mc).flits_injected(), 7u);
}

TEST(MultiPortNi, AlternatesPortsBetweenPackets) {
  NetworkParams p = NiHarness::params();
  p.treat_mcs_specially = true;
  p.mc_injection_ports = 2;
  Mesh mesh(2, 2, 1);
  Network net(p, &mesh);
  const NodeId mc = mesh.mc_nodes()[0];
  const NodeId dst = mc == 0 ? 3 : 0;
  MultiPortInjectNi ni(&net, mc, 40);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        ni.try_accept(net.make_packet(PacketType::kWriteReply, mc, dst, 0, 0, 0), 0));
  }
  // 4 single-flit packets: after 4 cycles, both ports have seen flits
  // (alternation), visible via per-port buffered flits having moved.
  for (Cycle t = 0; t < 4; ++t) ni.cycle(t);
  EXPECT_EQ(net.router(mc).flits_injected(), 4u);
}

TEST(InjectNiFactory, BuildsRequestedArchitecture) {
  NiHarness h;
  Config cfg = ni_config();
  EXPECT_NE(dynamic_cast<BaselineInjectNi*>(
                make_inject_ni(NiArch::kBaseline, &h.net, 0, cfg).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<EnhancedInjectNi*>(
                make_inject_ni(NiArch::kEnhanced, &h.net, 0, cfg).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<SplitQueueInjectNi*>(
                make_inject_ni(NiArch::kSplitQueue, &h.net, 0, cfg).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<MultiPortInjectNi*>(
                make_inject_ni(NiArch::kMultiPort, &h.net, 0, cfg).get()),
            nullptr);
}

TEST(InjectNi, OccupancySamplingAverages) {
  NiHarness h;
  EnhancedInjectNi ni(&h.net, 0, 20);
  ni.sample();  // 0 packets.
  ASSERT_TRUE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  ASSERT_TRUE(ni.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  ni.sample();  // 2 packets.
  EXPECT_DOUBLE_EQ(ni.mean_occupancy_packets(), 1.0);
  ni.reset_stats();
  EXPECT_DOUBLE_EQ(ni.mean_occupancy_packets(), 0.0);
}

// ------------------------------------------------------------- Ejection

class CountingSink : public PacketSink {
 public:
  bool sink_ready() const override { return ready; }
  void deliver(const Packet& pkt, Cycle) override {
    delivered.push_back(pkt.type);
  }
  bool ready = true;
  std::vector<PacketType> delivered;
};

TEST(EjectNi, ReassemblesAndDelivers) {
  NiHarness h;
  CountingSink sink;
  EnhancedInjectNi inj(&h.net, 0, 20);
  EjectNi ej(&h.net, 3, &sink);
  ASSERT_TRUE(inj.try_accept(h.make(PacketType::kReadReply, 0, 3), 0));
  for (Cycle t = 0; t < 40 && sink.delivered.empty(); ++t) {
    inj.cycle(t);
    h.net.step(t);
    ej.cycle(t);
  }
  ASSERT_EQ(sink.delivered.size(), 1u);
  EXPECT_EQ(sink.delivered[0], PacketType::kReadReply);
  // Delivery also recorded in network stats and the packet retired.
  EXPECT_EQ(h.net.stats().packets_delivered[2], 1u);
  EXPECT_EQ(h.net.arena().live(), 0u);
}

TEST(EjectNi, BackpressuresWhenSinkNotReady) {
  NiHarness h;
  CountingSink sink;
  sink.ready = false;
  EnhancedInjectNi inj(&h.net, 0, 20);
  EjectNi ej(&h.net, 3, &sink);
  ASSERT_TRUE(inj.try_accept(h.make(PacketType::kWriteReply, 0, 3), 0));
  for (Cycle t = 0; t < 30; ++t) {
    inj.cycle(t);
    h.net.step(t);
    ej.cycle(t);
  }
  EXPECT_TRUE(sink.delivered.empty());
  EXPECT_GT(h.net.router(3).ejection_backlog(), 0u);
  // Release the backpressure: the packet flows.
  sink.ready = true;
  for (Cycle t = 30; t < 40; ++t) ej.cycle(t);
  EXPECT_EQ(sink.delivered.size(), 1u);
}

TEST(EjectNi, DrainRateLimitsThroughput) {
  // Two 1-flit packets ejected; a drain rate of 1 delivers one per cycle.
  NiHarness h;
  CountingSink sink;
  EnhancedInjectNi inj(&h.net, 0, 20);
  EjectNi ej(&h.net, 3, &sink, /*drain_flits_per_cycle=*/1);
  ASSERT_TRUE(inj.try_accept(h.make(PacketType::kWriteReply, 0, 3), 0));
  ASSERT_TRUE(inj.try_accept(h.make(PacketType::kWriteReply, 0, 3), 0));
  Cycle first = 0, second = 0;
  for (Cycle t = 0; t < 40 && sink.delivered.size() < 2; ++t) {
    inj.cycle(t);
    h.net.step(t);
    ej.cycle(t);
    if (sink.delivered.size() == 1 && first == 0) first = t;
    if (sink.delivered.size() == 2 && second == 0) second = t;
  }
  ASSERT_EQ(sink.delivered.size(), 2u);
  EXPECT_GT(second, first);  // Serialized by the narrow ejection link.
}

}  // namespace
}  // namespace arinoc
