// Minimal recursive-descent JSON validator shared by the test suites: no
// dependency, strict enough to catch the classic emitter bugs (trailing
// commas, unquoted keys, bad number formats, unterminated strings).
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace arinoc::testutil {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // Skip the escaped character.
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(peek())) ++pos_;
    if (peek() == '.') { ++pos_; while (std::isdigit(peek())) ++pos_; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(peek())) ++pos_;
    }
    return pos_ > start && std::isdigit(s_[pos_ - 1]);
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  int peek() const { return pos_ < s_.size() ? s_[pos_] : -1; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool valid_json(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace arinoc::testutil
