// Address interleaving across MCs, banks and rows.
#include <gtest/gtest.h>

#include <set>

#include "mem/address_map.hpp"

namespace arinoc {
namespace {

TEST(AddressMap, ConsecutiveLinesRotateMcs) {
  AddressMap m(8, 64, 16);
  for (Addr line = 0; line < 32; ++line) {
    EXPECT_EQ(m.mc_of(line * 64), line % 8);
  }
}

TEST(AddressMap, WithinLineSameMc) {
  AddressMap m(8, 64, 16);
  EXPECT_EQ(m.mc_of(0x100), m.mc_of(0x13F));
  EXPECT_NE(m.mc_of(0x100), m.mc_of(0x140));
}

TEST(AddressMap, LineAlignment) {
  AddressMap m(8, 64, 16);
  EXPECT_EQ(m.line_of(0x1234), 0x1200u);
  EXPECT_EQ(m.line_of(0x1200), 0x1200u);
}

TEST(AddressMap, BanksRotateWithinMc) {
  AddressMap m(8, 64, 16);
  // Lines mapping to MC 0: addresses 0, 8*64, 16*64, ... rotate banks.
  std::set<std::uint32_t> banks;
  for (Addr k = 0; k < 16; ++k) {
    const Addr addr = k * 8 * 64;  // Every 8th line -> MC 0.
    ASSERT_EQ(m.mc_of(addr), 0u);
    banks.insert(m.bank_of(addr));
  }
  EXPECT_EQ(banks.size(), 16u);  // Full bank-level parallelism.
}

TEST(AddressMap, RowAdvancesAfterBankSweep) {
  AddressMap m(8, 64, 16, 2048);
  // lines_per_row = 32; a row at one bank covers 32 local lines spaced by
  // the bank count.
  const Addr base = 0;
  const std::uint64_t row0 = m.row_of(base);
  // Same bank, 16 local lines later (one bank rotation) -> same row until
  // 32 lines consumed.
  const Addr next_same_bank = 16ull * 8 * 64;
  EXPECT_EQ(m.bank_of(next_same_bank), m.bank_of(base));
  EXPECT_EQ(m.row_of(next_same_bank), row0);
  // 16 * 32 bank-line slots later the row must change.
  const Addr far = 16ull * 32 * 8 * 64;
  EXPECT_EQ(m.bank_of(far), m.bank_of(base));
  EXPECT_NE(m.row_of(far), row0);
}

TEST(AddressMap, NonPowerOfTwoMcCountSupported) {
  AddressMap m(6, 64, 8);
  std::set<std::uint32_t> mcs;
  for (Addr line = 0; line < 60; ++line) mcs.insert(m.mc_of(line * 64));
  EXPECT_EQ(mcs.size(), 6u);
}

}  // namespace
}  // namespace arinoc
