// Memory-controller node: request service through L2/DRAM, reply
// generation, merge behaviour and the Fig.-12 stall accounting.
#include <gtest/gtest.h>

#include <vector>

#include "mem/address_map.hpp"
#include "mem/mem_controller.hpp"
#include "mem/txn.hpp"

namespace arinoc {
namespace {

class FakeReplyPort : public ReplyPort {
 public:
  bool try_send_reply(PacketType type, TxnId txn, NodeId dest,
                      Cycle) override {
    if (blocked) return false;
    sent.push_back({type, txn, dest});
    return true;
  }
  struct Sent {
    PacketType type;
    TxnId txn;
    NodeId dest;
  };
  bool blocked = false;
  std::vector<Sent> sent;
};

struct McHarness {
  McHarness() : amap(cfg.num_mcs, cfg.line_bytes, cfg.dram_banks) {
    mc = std::make_unique<MemController>(cfg, /*node=*/7, &txns, &amap,
                                         &port);
  }

  /// Injects a request as if delivered from the request network.
  TxnId request(Addr line, bool write, NodeId src = 2) {
    const TxnId id = txns.create({line, src, 7, write, 0, now});
    Packet pkt;
    pkt.type = write ? PacketType::kWriteRequest : PacketType::kReadRequest;
    pkt.txn = id;
    pkt.src = src;
    pkt.dest = 7;
    mc->deliver(pkt, now);
    return id;
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) mc->cycle(now++);
  }

  Config cfg;
  TxnPool txns;
  AddressMap amap;
  FakeReplyPort port;
  std::unique_ptr<MemController> mc;
  Cycle now = 0;
};

TEST(MemController, ReadMissGoesToDramAndReplies) {
  McHarness h;
  const TxnId id = h.request(0x1000, false);
  h.run(150);
  ASSERT_EQ(h.port.sent.size(), 1u);
  EXPECT_EQ(h.port.sent[0].type, PacketType::kReadReply);
  EXPECT_EQ(h.port.sent[0].txn, id);
  EXPECT_EQ(h.port.sent[0].dest, 2);
  EXPECT_GT(h.mc->dram().accesses(), 0u);
}

TEST(MemController, ReadHitSkipsDram) {
  McHarness h;
  h.request(0x1000, false);
  h.run(150);  // First read fills L2.
  const auto dram_before = h.mc->dram().accesses();
  h.request(0x1000, false);
  h.run(50);
  EXPECT_EQ(h.port.sent.size(), 2u);
  EXPECT_EQ(h.mc->dram().accesses(), dram_before);  // Served from L2.
  EXPECT_GT(h.mc->l2().hits(), 0u);
}

TEST(MemController, L2HitLatencyShorterThanMiss) {
  McHarness h;
  h.request(0x2000, false);
  Cycle miss_done = 0;
  for (Cycle t = 0; t < 300 && h.port.sent.empty(); ++t) {
    h.run(1);
    if (!h.port.sent.empty()) miss_done = h.now;
  }
  ASSERT_EQ(h.port.sent.size(), 1u);
  const Cycle t0 = h.now;
  h.request(0x2000, false);
  Cycle hit_done = 0;
  for (Cycle t = 0; t < 300 && h.port.sent.size() < 2; ++t) {
    h.run(1);
    if (h.port.sent.size() == 2) hit_done = h.now;
  }
  ASSERT_EQ(h.port.sent.size(), 2u);
  EXPECT_LT(hit_done - t0, miss_done);
}

TEST(MemController, WriteAcknowledgedPosted) {
  McHarness h;
  const TxnId id = h.request(0x3000, true);
  h.run(30);
  ASSERT_EQ(h.port.sent.size(), 1u);
  EXPECT_EQ(h.port.sent[0].type, PacketType::kWriteReply);
  EXPECT_EQ(h.port.sent[0].txn, id);
}

TEST(MemController, ConcurrentMissesToSameLineMerge) {
  McHarness h;
  h.request(0x4000, false, 2);
  h.request(0x4000, false, 3);
  h.run(200);
  EXPECT_EQ(h.port.sent.size(), 2u);  // Both requesters answered...
  EXPECT_EQ(h.mc->dram().accesses(), 1u);  // ...from a single DRAM read.
}

TEST(MemController, StallCountsWhenReplyPortBlocked) {
  McHarness h;
  h.port.blocked = true;
  h.request(0x5000, false);
  h.run(200);
  EXPECT_TRUE(h.port.sent.empty());
  EXPECT_GT(h.mc->stall_cycles(), 0u);
  const Cycle stalled = h.mc->stall_cycles();
  // Unblock: reply drains and stalls stop accumulating.
  h.port.blocked = false;
  h.run(10);
  EXPECT_EQ(h.port.sent.size(), 1u);
  EXPECT_LE(h.mc->stall_cycles(), stalled + 1);
}

TEST(MemController, SinkReadyReflectsQueueCapacity) {
  McHarness h;
  EXPECT_TRUE(h.mc->sink_ready());
  h.port.blocked = true;  // Freeze the pipeline output.
  for (std::uint32_t i = 0; i < h.cfg.mc_request_queue; ++i) {
    h.request(0x10000 + i * 64ull * h.cfg.num_mcs, false);
  }
  EXPECT_FALSE(h.mc->sink_ready());
}

TEST(MemController, ServesOneRequestPerCycleSustained) {
  McHarness h;
  // All L2 hits after priming: service rate should approach 1/cycle.
  h.request(0x6000, false);
  h.run(200);
  const auto served0 = h.mc->requests_served();
  for (int i = 0; i < 8; ++i) h.request(0x6000, false);
  h.run(40);
  EXPECT_EQ(h.mc->requests_served() - served0, 8u);
  EXPECT_EQ(h.port.sent.size(), 9u);
}

TEST(MemController, StatsResetClearsCounters) {
  McHarness h;
  h.port.blocked = true;
  h.request(0x7000, false);
  h.run(100);
  h.mc->reset_stats();
  EXPECT_EQ(h.mc->stall_cycles(), 0u);
  EXPECT_EQ(h.mc->requests_served(), 0u);
  EXPECT_EQ(h.mc->dram().accesses(), 0u);
}

TEST(MemController, RepliesPreserveRequesterNode) {
  McHarness h;
  h.request(0x8000, false, 11);
  h.request(0x9000, true, 13);
  h.run(200);
  ASSERT_EQ(h.port.sent.size(), 2u);
  for (const auto& s : h.port.sent) {
    if (s.type == PacketType::kReadReply) {
      EXPECT_EQ(s.dest, 11);
    } else {
      EXPECT_EQ(s.dest, 13);
    }
  }
}

}  // namespace
}  // namespace arinoc
