// Domain-parallel stepping is an implementation detail, not a model change:
// every metric, telemetry series, trace, and diagnostic artifact must be
// bit-identical across thread counts — including warmup reset mid-run
// (run_with_warmup), fault campaigns, epoch-slack synchronization, serving
// runs, observer-forced serial fallback, and watchdog trip dumps.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/watchdog.hpp"
#include "obs/regress/baseline.hpp"
#include "obs/regress/compare.hpp"
#include "obs/regress/provenance.hpp"
#include "obs/trace.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {
namespace {

using Snapshot = std::vector<std::pair<std::string, double>>;

Config small_config() {
  Config cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.num_mcs = 4;
  cfg.warmup_cycles = 300;
  cfg.run_cycles = 1500;
  return cfg;
}

/// Warmup + mid-run stats reset + measured run, exactly like the exec path.
Snapshot run_snapshot(Config cfg, Scheme scheme, const std::string& bench,
                      std::uint32_t threads) {
  cfg.threads = threads;
  const Config resolved = resolve_cell_config(cfg, scheme, bench);
  GpgpuSim sim(resolved, *find_benchmark(bench));
  sim.run_with_warmup();
  return obs::regress::snapshot_metrics(sim.collect());
}

TEST(DomainSim, BitIdenticalAcrossSchemesAndFabrics) {
  const Scheme schemes[] = {Scheme::kXYBaseline, Scheme::kXYARI,
                            Scheme::kAdaBaseline, Scheme::kAdaMultiPort,
                            Scheme::kAdaARI};
  for (const char* fabric : {"mesh", "torus", "cmesh"}) {
    for (const Scheme s : schemes) {
      Config cfg = small_config();
      cfg.fabric = fabric;
      cfg.cmesh_concentration = 2;
      const Snapshot serial = run_snapshot(cfg, s, "bfs", 1);
      for (const std::uint32_t t : {2u, 4u}) {
        SCOPED_TRACE(std::string(fabric) + "/" + scheme_name(s) +
                     " threads=" + std::to_string(t));
        EXPECT_EQ(serial, run_snapshot(cfg, s, "bfs", t));
      }
    }
  }
}

TEST(DomainSim, FaultCampaignBitIdentical) {
  Config cfg = small_config();
  cfg.run_cycles = 2000;
  cfg.fault_corrupt_rate = 1e-3;
  cfg.fault_credit_loss_rate = 5e-4;
  cfg.fault_link_stall_rate = 1e-4;
  const Snapshot serial = run_snapshot(cfg, Scheme::kAdaARI, "bfs", 1);
  EXPECT_EQ(serial, run_snapshot(cfg, Scheme::kAdaARI, "bfs", 2));
  EXPECT_EQ(serial, run_snapshot(cfg, Scheme::kAdaARI, "bfs", 4));
  // Epoch-slack synchronization is exact, not approximate.
  Config epoch = cfg;
  epoch.domain_epoch = true;
  EXPECT_EQ(serial, run_snapshot(epoch, Scheme::kAdaARI, "bfs", 4));
}

TEST(DomainSim, EpochSlackExactOnChipletFabric) {
  // Serdes latency > 1 gives epoch-slack real room: domains exchange
  // mailboxes every min-link-latency cycles instead of every cycle, and
  // delivery times still match the serial schedule exactly.
  Config cfg = small_config();
  cfg.fabric = "chiplet";
  cfg.chiplets_x = 2;
  cfg.chiplets_y = 2;
  cfg.serdes_latency = 4;
  cfg.run_cycles = 2000;
  const Snapshot serial = run_snapshot(cfg, Scheme::kAdaARI, "hotspot", 1);
  Config epoch = cfg;
  epoch.domain_epoch = true;
  EXPECT_EQ(serial, run_snapshot(epoch, Scheme::kAdaARI, "hotspot", 2));
  EXPECT_EQ(serial, run_snapshot(epoch, Scheme::kAdaARI, "hotspot", 4));
}

TEST(DomainSim, OpenLoopServingBitIdentical) {
  Config cfg = small_config();
  cfg.open_loop = true;
  cfg.pace_spec = "constant:0.05";
  cfg.admission_enabled = true;
  cfg.run_cycles = 2000;
  const Snapshot serial = run_snapshot(cfg, Scheme::kAdaARI, "bfs", 1);
  EXPECT_EQ(serial, run_snapshot(cfg, Scheme::kAdaARI, "bfs", 2));
  EXPECT_EQ(serial, run_snapshot(cfg, Scheme::kAdaARI, "bfs", 4));
}

TEST(DomainSim, TelemetrySeriesBitIdentical) {
  const auto series = [](std::uint32_t threads) {
    Config cfg = small_config();
    cfg.threads = threads;
    const Config resolved = resolve_cell_config(cfg, Scheme::kAdaARI, "bfs");
    GpgpuSim sim(resolved, *find_benchmark("bfs"));
    sim.enable_sampling(256);
    sim.run_with_warmup();
    sim.flush_sampler();
    return sim.sampler()->to_jsonl();
  };
  const std::string serial = series(1);
  EXPECT_EQ(serial, series(2));
  EXPECT_EQ(serial, series(4));
}

TEST(DomainSim, TracerForcesIdenticalSerialFallback) {
  // A per-event observer needs the globally-ordered serial path; the
  // fallback must produce the same metrics AND the same event stream as a
  // 1-thread run, event for event.
  const auto traced = [](std::uint32_t threads, Snapshot* snap) {
    Config cfg = small_config();
    cfg.threads = threads;
    const Config resolved = resolve_cell_config(cfg, Scheme::kAdaARI, "bfs");
    GpgpuSim sim(resolved, *find_benchmark("bfs"));
    obs::PacketTracer tracer;
    sim.attach_tracer(&tracer);
    sim.run_with_warmup();
    *snap = obs::regress::snapshot_metrics(sim.collect());
    return tracer.to_chrome_json();
  };
  Snapshot s1, s4;
  const std::string t1 = traced(1, &s1);
  const std::string t4 = traced(4, &s4);
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(t1, t4);
}

TEST(DomainSim, WatchdogTripDumpBitIdentical) {
  // Permanent port failures without recovery wedge the reply network; the
  // deadlock trip (kind, message, diagnostic dump) must not depend on the
  // thread count.
  const auto trip = [](std::uint32_t threads) {
    Config cfg = small_config();
    cfg.threads = threads;
    cfg.warmup_cycles = 0;
    cfg.run_cycles = 6000;
    cfg.fault_port_fail_rate = 0.002;
    cfg.fault_recovery = false;
    cfg.watchdog_deadlock_window = 400;
    const Config resolved = resolve_cell_config(cfg, Scheme::kAdaARI, "bfs");
    GpgpuSim sim(resolved, *find_benchmark("bfs"));
    std::string text;
    try {
      sim.run(cfg.run_cycles);
    } catch (const WatchdogTrip& t) {
      text = std::string(watchdog_trip_name(t.kind())) + "\n" + t.what() +
             "\n" + t.dump();
    }
    return text;
  };
  const std::string serial = trip(1);
  ASSERT_FALSE(serial.empty()) << "scenario no longer trips the watchdog";
  EXPECT_EQ(serial, trip(2));
  EXPECT_EQ(serial, trip(4));
}

TEST(DomainSim, ThreadsExcludedFromCanonicalConfig) {
  // Cache keys and golden baselines are keyed by the canonical config
  // string: thread count and epoch mode must not change it (they do not
  // change results either — that is the whole point).
  Config a = small_config();
  Config b = small_config();
  b.threads = 4;
  b.domain_epoch = true;
  EXPECT_EQ(a.canonical_string(), b.canonical_string());
  EXPECT_EQ(obs::regress::config_hash_hex(a),
            obs::regress::config_hash_hex(b));
}

TEST(DomainSim, FourThreadRunPassesBaselineCheckAgainstSerialAnchor) {
  // The regression-sentinel contract end to end: anchor with 1 thread,
  // check with 4 — same entry identity (config hash), zero metric drift.
  Config cfg = small_config();
  const Config resolved = resolve_cell_config(cfg, Scheme::kAdaARI, "bfs");

  const auto entry_for = [&](std::uint32_t threads) {
    Config run_cfg = resolved;
    run_cfg.threads = threads;
    GpgpuSim sim(run_cfg, *find_benchmark("bfs"));
    sim.run_with_warmup();
    obs::regress::BaselineEntry e;
    e.provenance = obs::regress::collect_provenance();
    e.provenance.config_hash = obs::regress::config_hash_hex(run_cfg);
    e.provenance.scheme = scheme_name(Scheme::kAdaARI);
    e.provenance.benchmark = "bfs";
    e.provenance.fabric = "mesh";
    e.provenance.seed = run_cfg.seed;
    e.metrics = obs::regress::snapshot_metrics(sim.collect());
    return e;
  };
  const obs::regress::BaselineEntry anchored = entry_for(1);
  const obs::regress::BaselineEntry candidate = entry_for(4);
  EXPECT_EQ(anchored.provenance.config_hash,
            candidate.provenance.config_hash);
  const obs::regress::CompareReport report =
      obs::regress::compare_entries(anchored, candidate, {});
  EXPECT_FALSE(report.failed) << report.text();
}

}  // namespace
}  // namespace arinoc
