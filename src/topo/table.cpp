#include "topo/table.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace arinoc::topo {

namespace {

/// Spanning-tree ordering key; links move strictly toward ("up") or away
/// from ("down") the root under this key, never sideways.
std::pair<int, NodeId> tree_key(const std::vector<int>& level, NodeId n) {
  return {level[static_cast<std::size_t>(n)], n};
}

}  // namespace

RoutingTable::RoutingTable(const FabricGraph& g) {
  nodes_ = static_cast<std::size_t>(g.num_nodes());
  max_ports_ = g.num_ports();

  // Adjacency by (node, out_port) for deterministic ascending-port
  // iteration when filling port masks.
  struct Out {
    int port;
    NodeId dst;
  };
  std::vector<std::vector<Out>> out(nodes_);
  for (const GraphLink& l : g.links) {
    out[static_cast<std::size_t>(l.src)].push_back(Out{l.src_port, l.dst});
  }
  for (auto& v : out) {
    std::sort(v.begin(), v.end(),
              [](const Out& a, const Out& b) { return a.port < b.port; });
  }

  // BFS levels from node 0 (validate_graph guarantees connectivity).
  level_.assign(nodes_, -1);
  std::vector<NodeId> queue{0};
  level_[0] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const Out& o : out[static_cast<std::size_t>(u)]) {
      if (level_[static_cast<std::size_t>(o.dst)] < 0) {
        level_[static_cast<std::size_t>(o.dst)] =
            level_[static_cast<std::size_t>(u)] + 1;
        queue.push_back(o.dst);
      }
    }
  }

  // Arrival phase per (node, in_port): arriving over a down link puts the
  // packet in the down phase. Ports without an incoming link stay kPhaseUp
  // (covers injection).
  phase_in_.assign(nodes_ * static_cast<std::size_t>(max_ports_), kPhaseUp);
  for (const GraphLink& l : g.links) {
    if (tree_key(level_, l.dst) > tree_key(level_, l.src)) {
      phase_in_[static_cast<std::size_t>(l.dst) *
                    static_cast<std::size_t>(max_ports_) +
                static_cast<std::size_t>(l.dst_port)] = kPhaseDown;
    }
  }

  // Reverse state-graph edges for the per-destination BFS. Forward
  // transitions: (u, up-phase) may take any link; (u, down-phase) only down
  // links; traversing a down link lands in the down phase, an up link stays
  // in the up phase.
  struct RevEdge {
    NodeId from_node;  // Predecessor state's node...
    std::int8_t from_phase;  // ...and phase.
  };
  std::vector<std::vector<RevEdge>> rev(nodes_ * 2);
  auto state = [](NodeId n, int phase) {
    return static_cast<std::size_t>(n) * 2 + static_cast<std::size_t>(phase);
  };
  for (const GraphLink& l : g.links) {
    if (tree_key(level_, l.dst) < tree_key(level_, l.src)) {
      // Up link: only usable from the up phase, lands in the up phase.
      rev[state(l.dst, kPhaseUp)].push_back(
          RevEdge{l.src, static_cast<std::int8_t>(kPhaseUp)});
    } else {
      // Down link: usable from either phase, lands in the down phase.
      rev[state(l.dst, kPhaseDown)].push_back(
          RevEdge{l.src, static_cast<std::int8_t>(kPhaseUp)});
      rev[state(l.dst, kPhaseDown)].push_back(
          RevEdge{l.src, static_cast<std::int8_t>(kPhaseDown)});
    }
  }

  entries_.assign(nodes_ * nodes_ * 2, RouteEntry{});
  std::vector<std::uint32_t> dist(nodes_ * 2);
  std::vector<std::size_t> bfs;
  bfs.reserve(nodes_ * 2);
  for (NodeId dest = 0; dest < static_cast<NodeId>(nodes_); ++dest) {
    dist.assign(nodes_ * 2, RouteEntry::kUnreachable);
    bfs.clear();
    dist[state(dest, kPhaseUp)] = 0;
    dist[state(dest, kPhaseDown)] = 0;
    bfs.push_back(state(dest, kPhaseUp));
    bfs.push_back(state(dest, kPhaseDown));
    for (std::size_t head = 0; head < bfs.size(); ++head) {
      const std::size_t s = bfs[head];
      for (const RevEdge& e : rev[s]) {
        const std::size_t p = state(e.from_node, e.from_phase);
        if (dist[p] == RouteEntry::kUnreachable) {
          dist[p] = dist[s] + 1;
          bfs.push_back(p);
        }
      }
    }

    for (NodeId u = 0; u < static_cast<NodeId>(nodes_); ++u) {
      for (int phase = 0; phase < 2; ++phase) {
        RouteEntry& e =
            entries_[(static_cast<std::size_t>(dest) * nodes_ +
                      static_cast<std::size_t>(u)) * 2 +
                     static_cast<std::size_t>(phase)];
        const std::uint32_t d = dist[state(u, phase)];
        e.dist = d;
        if (u == dest || d == RouteEntry::kUnreachable) continue;
        for (const Out& o : out[static_cast<std::size_t>(u)]) {
          const bool down = tree_key(level_, o.dst) > tree_key(level_, u);
          if (phase == kPhaseDown && !down) continue;
          const std::uint32_t next =
              dist[state(o.dst, down ? kPhaseDown : kPhaseUp)];
          if (next != RouteEntry::kUnreachable && next + 1 == d) {
            e.port_mask |= 1u << o.port;
            if (e.escape < 0) e.escape = static_cast<std::int8_t>(o.port);
          }
        }
        assert(e.port_mask != 0 &&
               "finite distance implies a minimal legal port");
      }
    }
  }

  // Every phase-up state must reach every destination (climb the spanning
  // tree, then descend); compile-time sanity rather than a runtime check.
  for (NodeId dest = 0; dest < static_cast<NodeId>(nodes_); ++dest) {
    for (NodeId u = 0; u < static_cast<NodeId>(nodes_); ++u) {
      assert(entry(dest, u, kPhaseUp).dist != RouteEntry::kUnreachable);
      (void)dest;
      (void)u;
    }
  }
}

int RoutingTable::phase_of(NodeId node, int in_port) const {
  if (in_port < 0 || in_port >= max_ports_) return kPhaseUp;
  return phase_in_[static_cast<std::size_t>(node) *
                       static_cast<std::size_t>(max_ports_) +
                   static_cast<std::size_t>(in_port)];
}

}  // namespace arinoc::topo
