// 2-D node coordinates for rendering a FabricGraph (HTML dashboards,
// heatmaps). Purely cosmetic — never feeds routing or timing.
#pragma once

#include <utility>
#include <vector>

#include "topo/graph.hpp"

namespace arinoc::topo {

/// One (x, y) position per node, in abstract layout units (callers scale to
/// pixels). Grid placement when the graph carries geometry hints
/// (mesh/torus/chiplet use the node grid; cmesh puts leaves in a ring
/// around their hub); a circle for file-driven/custom graphs.
std::vector<std::pair<double, double>> node_layout(const FabricGraph& g);

}  // namespace arinoc::topo
