// Built-in fabric generators. Each returns a validated FabricGraph; the
// runtime Fabric (fabric.hpp) compiles routing for it. Parameters and the
// resulting port conventions are documented in docs/fabrics.md.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "topo/graph.hpp"

namespace arinoc::topo {

/// 2D mesh, ports 0..3 = N/E/S/W. Reproduces the native Mesh exactly
/// (same node ids, adjacency, and MC placement order); the runtime detects
/// the declared geometry and routes through the original XY/adaptive math,
/// so this generator is bit-identical to the built-in Mesh path.
FabricGraph make_mesh_graph(std::uint32_t width, std::uint32_t height,
                            std::uint32_t num_mcs, McPlacement placement);

/// 2D torus: the mesh plus wraparound links (every router has all four
/// neighbours). Requires width, height >= 2. XY would deadlock on the
/// wrap cycles, so tori always route via the up*/down* tables.
FabricGraph make_torus_graph(std::uint32_t width, std::uint32_t height,
                             std::uint32_t num_mcs, McPlacement placement);

/// Concentrated mesh: a width x height hub mesh of pure routers, each hub
/// concentrating `concentration` endpoint nodes on dedicated ports
/// (4..4+concentration-1). Endpoints are leaves with a single port-0 link
/// to their hub. MC hubs are chosen by the given placement on the hub mesh;
/// the first leaf of each MC hub is the MC endpoint. Requires
/// num_mcs <= width*height.
FabricGraph make_cmesh_graph(std::uint32_t width, std::uint32_t height,
                             std::uint32_t concentration,
                             std::uint32_t num_mcs, McPlacement placement);

/// Chiplet mesh-of-meshes: a chiplets_x x chiplets_y grid of width x height
/// sub-meshes. Node ids and ports follow the flattened
/// (chiplets_x*width) x (chiplets_y*height) global mesh; links crossing a
/// chiplet boundary carry `serdes_latency` extra cycles (die-to-die serdes).
FabricGraph make_chiplet_graph(std::uint32_t chiplets_x,
                               std::uint32_t chiplets_y, std::uint32_t width,
                               std::uint32_t height, std::uint32_t num_mcs,
                               McPlacement placement,
                               std::uint32_t serdes_latency);

}  // namespace arinoc::topo
