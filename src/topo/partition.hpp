// K-way spatial partitioning of a fabric for domain-parallel stepping.
//
// A DomainPartition assigns every node of a compiled Fabric to exactly one
// of `num_domains` domains. The simulator steps each domain's routers on its
// own worker thread; flits and credits that cross a domain boundary are
// staged into per-domain mailboxes and merged at a serial barrier, so the
// partition also enumerates the boundary links and their latencies (the
// epoch-slack synchronization mode needs the minimum boundary latency).
//
// Partitioning rules (docs/performance.md "Domain decomposition"):
//
//  * Multi-die fabrics (the chiplet generator, or file topologies whose
//    serdes-latency links delimit dies): when the number of
//    zero-extra-latency connected components is a multiple of k, whole
//    components are grouped — every domain boundary then lies on a serdes
//    link, the cheapest possible cut, and no domain ever splits a die.
//  * Everything else (mesh, torus, cmesh, single-component files, or a k
//    that does not divide the die count): contiguous node-index ranges with
//    sizes balanced within one node.
//
// Domain membership is a pure function of (fabric, k): the same inputs
// always produce the same partition, which the bit-identity guarantee of
// domain-parallel stepping rests on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "topo/fabric.hpp"

namespace arinoc::topo {

/// One directed link whose endpoints live in different domains.
struct BoundaryLink {
  NodeId src = 0;
  int src_port = 0;
  NodeId dst = 0;
  std::uint32_t extra_latency = 0;  ///< Serdes cycles on top of the base hop.
};

struct DomainPartition {
  std::uint32_t num_domains = 1;
  std::vector<std::uint32_t> domain_of;      ///< [node] -> owning domain.
  /// Per-domain member nodes in ascending node order (the order a domain
  /// steps its routers in).
  std::vector<std::vector<NodeId>> members;
  std::vector<std::uint32_t> local_of;       ///< [node] -> index in members.
  /// Every directed link crossing a domain boundary.
  std::vector<BoundaryLink> boundary;
  /// Minimum extra (serdes) latency over the boundary links; 0 when no link
  /// crosses a boundary or all boundary links are plain hops.
  std::uint32_t min_boundary_extra = 0;
};

/// Partitions `fabric` into k domains per the rules above. Throws
/// std::invalid_argument when k == 0 or k exceeds the node count (callers
/// surface this as the exit-2 configuration-error path).
DomainPartition partition_fabric(const Fabric& fabric, std::uint32_t k);

}  // namespace arinoc::topo
