#include "topo/layout.hpp"

#include <cmath>

namespace arinoc::topo {

std::vector<std::pair<double, double>> node_layout(const FabricGraph& g) {
  const int n = g.num_nodes();
  std::vector<std::pair<double, double>> pos(
      static_cast<std::size_t>(n < 0 ? 0 : n));
  if (n <= 0) return pos;

  const std::uint32_t w = g.mesh_width;
  const std::uint32_t h = g.mesh_height;
  const std::uint32_t grid = w * h;

  if (grid > 0 && static_cast<std::uint32_t>(n) == grid) {
    // mesh / torus / chiplet: node id is row-major over the grid.
    for (int i = 0; i < n; ++i) {
      pos[static_cast<std::size_t>(i)] = {
          static_cast<double>(static_cast<std::uint32_t>(i) % w),
          static_cast<double>(static_cast<std::uint32_t>(i) / w)};
    }
    return pos;
  }

  if (grid > 0 && static_cast<std::uint32_t>(n) > grid &&
      (static_cast<std::uint32_t>(n) - grid) % grid == 0) {
    // cmesh: ids 0..grid-1 are hubs on the grid, then `conc` leaves per hub
    // in id order. Hubs sit on a coarse grid; leaves ring their hub.
    const std::uint32_t conc = (static_cast<std::uint32_t>(n) - grid) / grid;
    constexpr double kHubSpacing = 3.0;
    constexpr double kLeafRadius = 0.95;
    for (std::uint32_t hub = 0; hub < grid; ++hub) {
      const double hx = static_cast<double>(hub % w) * kHubSpacing;
      const double hy = static_cast<double>(hub / w) * kHubSpacing;
      pos[hub] = {hx, hy};
      for (std::uint32_t k = 0; k < conc; ++k) {
        const double ang =
            2.0 * M_PI * static_cast<double>(k) / static_cast<double>(conc) -
            M_PI / 2.0;
        pos[grid + hub * conc + k] = {hx + kLeafRadius * std::cos(ang),
                                      hy + kLeafRadius * std::sin(ang)};
      }
    }
    return pos;
  }

  // File-driven / custom graphs: a circle keeps every link visible without
  // needing a real embedding.
  const double r = static_cast<double>(n) / (2.0 * M_PI) + 1.0;
  for (int i = 0; i < n; ++i) {
    const double ang =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n) -
        M_PI / 2.0;
    pos[static_cast<std::size_t>(i)] = {r * std::cos(ang),
                                        r * std::sin(ang)};
  }
  return pos;
}

}  // namespace arinoc::topo
