#include "topo/fabric.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/config.hpp"
#include "noc/topology.hpp"
#include "topo/file.hpp"
#include "topo/generators.hpp"

namespace arinoc::topo {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument(msg);
}

McPlacement placement_from(const std::string& s) {
  if (s == "diamond") return McPlacement::kDiamond;
  if (s == "top-bottom") return McPlacement::kTopBottom;
  if (s == "column") return McPlacement::kColumn;
  fail("unknown MC placement '" + s +
       "' (expected diamond, top-bottom, or column)");
}

/// Verifies that a kind=="mesh" graph is exactly the Mesh its geometry line
/// declares: same roles and the full N/E/S/W adjacency, nothing more.
void cross_check_mesh(const FabricGraph& g, const Mesh& m) {
  if (g.num_nodes() != static_cast<int>(m.nodes())) {
    fail("topology declares " + std::to_string(g.num_nodes()) +
         " nodes but geometry mesh " + std::to_string(m.width()) + "x" +
         std::to_string(m.height()) + " has " + std::to_string(m.nodes()));
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const NodeRole r = g.roles[static_cast<std::size_t>(n)];
    if (r == NodeRole::kRouter) {
      fail("mesh geometry cannot contain rtr nodes (node " +
           std::to_string(n) + "); every mesh node is an endpoint");
    }
    if ((r == NodeRole::kMC) != m.is_mc(n)) {
      fail("MC placement mismatch at node " + std::to_string(n) +
           ": the declared geometry places an " +
           (m.is_mc(n) ? std::string("mc") : std::string("cc")) +
           " there but the file says " + role_name(r));
    }
  }
  std::map<std::pair<NodeId, int>, const GraphLink*> by_out;
  for (const GraphLink& l : g.links) by_out.emplace(std::make_pair(l.src, l.src_port), &l);
  std::size_t expected = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (int dir = 0; dir < kNumDirections; ++dir) {
      const NodeId nbr = m.neighbor(n, dir);
      const auto it = by_out.find({n, dir});
      if (nbr == kInvalidNode) {
        if (it != by_out.end()) {
          fail("link " + std::to_string(n) + "." + std::to_string(dir) +
               " points off the mesh edge declared by the geometry");
        }
        continue;
      }
      ++expected;
      if (it == by_out.end()) {
        fail("missing mesh link " + std::to_string(n) + "." +
             std::to_string(dir) + " -> " + std::to_string(nbr) + "." +
             std::to_string(opposite(dir)));
      }
      const GraphLink& l = *it->second;
      if (l.dst != nbr || l.dst_port != opposite(dir)) {
        fail("link " + std::to_string(n) + "." + std::to_string(dir) +
             " -> " + std::to_string(l.dst) + "." +
             std::to_string(l.dst_port) +
             " does not match the declared mesh geometry (expected " +
             std::to_string(nbr) + "." + std::to_string(opposite(dir)) +
             ")");
      }
      if (l.extra_latency != 0) {
        fail("mesh geometry links cannot carry extra latency (link " +
             std::to_string(n) + "." + std::to_string(dir) +
             "); use a non-mesh kind for serdes links");
      }
    }
  }
  if (g.links.size() != expected) {
    fail("topology declares " + std::to_string(g.links.size()) +
         " directed links but the mesh geometry has " +
         std::to_string(expected));
  }
}

}  // namespace

Fabric::Fabric(FabricGraph graph) : graph_(std::move(graph)) {
  if (graph_.kind == "mesh") {
    if (graph_.mesh_width == 0 || graph_.mesh_height == 0 ||
        graph_.mesh_placement.empty()) {
      fail("mesh topology requires a 'geometry mesh <W> <H> <placement>' "
           "line so the native mesh routing can be used");
    }
    mesh_owned_ = std::make_unique<Mesh>(
        graph_.mesh_width, graph_.mesh_height,
        graph_.count_role(NodeRole::kMC),
        placement_from(graph_.mesh_placement));
    cross_check_mesh(graph_, *mesh_owned_);
    init_from_mesh(mesh_owned_.get());
  } else {
    init_from_table(graph_);
  }
}

Fabric::Fabric(const Mesh* mesh) {
  graph_.kind = "mesh";
  graph_.mesh_width = mesh->width();
  graph_.mesh_height = mesh->height();
  graph_.roles.resize(mesh->nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(mesh->nodes()); ++n) {
    graph_.roles[static_cast<std::size_t>(n)] =
        mesh->is_mc(n) ? NodeRole::kMC : NodeRole::kCC;
    for (int dir = 0; dir < kNumDirections; ++dir) {
      const NodeId m = mesh->neighbor(n, dir);
      if (m != kInvalidNode) {
        graph_.links.push_back(GraphLink{n, dir, m, opposite(dir), 0, 0});
      }
    }
  }
  init_from_mesh(mesh);
}

void Fabric::init_from_mesh(const Mesh* mesh) {
  mesh_ = mesh;
  max_ports_ = kNumDirections;
  max_extra_ = 0;
  const std::size_t n = mesh->nodes();
  roles_.resize(n);
  neighbor_.assign(n * kNumDirections, kInvalidNode);
  peer_port_.assign(n * kNumDirections, -1);
  extra_.assign(n * kNumDirections, 0);
  for (NodeId node = 0; node < static_cast<NodeId>(n); ++node) {
    roles_[static_cast<std::size_t>(node)] =
        mesh->is_mc(node) ? NodeRole::kMC : NodeRole::kCC;
    for (int dir = 0; dir < kNumDirections; ++dir) {
      const NodeId m = mesh->neighbor(node, dir);
      if (m != kInvalidNode) {
        neighbor_[idx(node, dir)] = m;
        peer_port_[idx(node, dir)] = opposite(dir);
      }
    }
  }
  mc_nodes_ = mesh->mc_nodes();
  cc_nodes_ = mesh->cc_nodes();
}

void Fabric::init_from_table(const FabricGraph& g) {
  max_ports_ = g.num_ports();
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  roles_ = g.roles;
  neighbor_.assign(n * static_cast<std::size_t>(max_ports_), kInvalidNode);
  peer_port_.assign(n * static_cast<std::size_t>(max_ports_), -1);
  extra_.assign(n * static_cast<std::size_t>(max_ports_), 0);
  max_extra_ = 0;
  for (const GraphLink& l : g.links) {
    neighbor_[idx(l.src, l.src_port)] = l.dst;
    peer_port_[idx(l.src, l.src_port)] = l.dst_port;
    extra_[idx(l.src, l.src_port)] = l.extra_latency;
    max_extra_ = std::max(max_extra_, l.extra_latency);
  }
  for (NodeId node = 0; node < static_cast<NodeId>(n); ++node) {
    if (roles_[static_cast<std::size_t>(node)] == NodeRole::kMC) {
      mc_nodes_.push_back(node);
    } else if (roles_[static_cast<std::size_t>(node)] == NodeRole::kCC) {
      cc_nodes_.push_back(node);
    }
  }
  table_ = std::make_unique<RoutingTable>(g);
}

std::uint32_t Fabric::hops(NodeId a, NodeId b) const {
  return mesh_ ? mesh_->hops(a, b) : table_->hops(a, b);
}

std::string Fabric::port_name(int port) const {
  if (port == max_ports_) return "L";
  if (mesh_) return direction_name(port);
  return "p" + std::to_string(port);
}

Fabric make_fabric(const Config& cfg) {
  auto build = [&]() -> Fabric {
    if (cfg.fabric == "mesh") {
      return Fabric(make_mesh_graph(cfg.mesh_width, cfg.mesh_height,
                                    cfg.num_mcs, cfg.mc_placement));
    }
    if (cfg.fabric == "torus") {
      return Fabric(make_torus_graph(cfg.mesh_width, cfg.mesh_height,
                                     cfg.num_mcs, cfg.mc_placement));
    }
    if (cfg.fabric == "cmesh") {
      return Fabric(make_cmesh_graph(cfg.mesh_width, cfg.mesh_height,
                                     cfg.cmesh_concentration, cfg.num_mcs,
                                     cfg.mc_placement));
    }
    if (cfg.fabric == "chiplet") {
      return Fabric(make_chiplet_graph(cfg.chiplets_x, cfg.chiplets_y,
                                       cfg.mesh_width, cfg.mesh_height,
                                       cfg.num_mcs, cfg.mc_placement,
                                       cfg.serdes_latency));
    }
    if (cfg.fabric == "file") {
      if (cfg.topology_file.empty()) {
        fail("fabric 'file' requires topology_file to be set");
      }
      return Fabric(parse_topology_file(cfg.topology_file));
    }
    fail("unknown fabric '" + cfg.fabric +
         "' (expected mesh, torus, cmesh, chiplet, or file)");
  };
  Fabric f = build();
  if (static_cast<std::uint32_t>(f.mc_nodes().size()) != cfg.num_mcs) {
    fail("topology provides " + std::to_string(f.mc_nodes().size()) +
         " MC nodes but the config expects num_mcs=" +
         std::to_string(cfg.num_mcs));
  }
  return f;
}

}  // namespace arinoc::topo
