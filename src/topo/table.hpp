// Table-based deadlock-free routing for arbitrary fabrics.
//
// The compiler runs once at startup and produces, per (destination, node,
// phase), the set of output ports that lie on a minimal *permitted* path.
// Permitted paths follow the up*/down* discipline (Autonet; used here with
// a deterministic BFS spanning tree rooted at node 0):
//
//   - level[n] = BFS hop distance from node 0; a directed link u -> v is an
//     "up" link iff (level[v], v) < (level[u], u) lexicographically, else a
//     "down" link. Every link is strictly one or the other, in opposite
//     directions on its two ends.
//   - A legal route is zero or more up links followed by zero or more down
//     links. The forbidden turn is down -> up.
//
// Deadlock freedom: order channels by the (level, id) key of their sink for
// up links and source for down links; along any permitted route, up links
// strictly descend that key and down links strictly ascend it, and the
// single down->up transition is forbidden, so the channel dependency graph
// is acyclic on *every* virtual channel. Unlike the mesh's escape-VC
// scheme, no VC restriction is needed; the escape port kept in each entry
// just preserves the router's uniform fallback structure.
//
// The routing phase is derivable locally: a packet that arrived over a down
// link is in the down phase (only down links remain legal); one that
// arrived over an up link, or was just injected, is in the up phase. The
// table is therefore indexed by (dest, node, phase) with phase computed
// from (node, in_port) alone — no per-packet state.
//
// Distances are computed per destination by reverse BFS over the 2N-state
// graph {(node, phase)}; the phase-0 distance is always finite (climb the
// spanning tree to the root, then descend), so every (source, dest) pair
// has a legal route.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "topo/graph.hpp"

namespace arinoc::topo {

/// Packet is still allowed to take up links.
inline constexpr int kPhaseUp = 0;
/// Packet has taken a down link; only down links remain legal.
inline constexpr int kPhaseDown = 1;

/// Routing decision for one (destination, node, phase) state.
struct RouteEntry {
  std::uint32_t port_mask = 0;  ///< Minimal legal output ports (bit = port).
  std::int8_t escape = -1;      ///< Lowest-numbered minimal port.
  std::uint32_t dist = kUnreachable;  ///< Hops to destination.

  static constexpr std::uint32_t kUnreachable = 0xffffffffu;
};

class RoutingTable {
 public:
  /// Compiles the table for a validated graph. O(N * (N + L)) time,
  /// O(N^2) entries.
  explicit RoutingTable(const FabricGraph& g);

  /// BFS level (distance from node 0) of `node` in the spanning tree.
  int level(NodeId node) const {
    return level_[static_cast<std::size_t>(node)];
  }

  /// Routing phase of a packet sitting in input port `in_port` of `node`.
  /// Injection (in_port < 0 or a port with no incoming link) is kPhaseUp.
  int phase_of(NodeId node, int in_port) const;

  /// Entry for a packet at `node` in `phase` heading to `dest`. For any
  /// state the table routing can actually reach, port_mask != 0 (or the
  /// packet is at its destination).
  const RouteEntry& entry(NodeId dest, NodeId node, int phase) const {
    return entries_[(static_cast<std::size_t>(dest) * nodes_ +
                     static_cast<std::size_t>(node)) * 2 +
                    static_cast<std::size_t>(phase)];
  }

  /// Minimal legal hop count from `a` (freshly injected, phase up) to `b`.
  std::uint32_t hops(NodeId a, NodeId b) const {
    return entry(b, a, kPhaseUp).dist;
  }

 private:
  std::size_t nodes_ = 0;
  int max_ports_ = 0;
  std::vector<int> level_;
  /// phase_in_[node*max_ports_+port]: phase after arriving at that input.
  std::vector<std::int8_t> phase_in_;
  std::vector<RouteEntry> entries_;
};

}  // namespace arinoc::topo
