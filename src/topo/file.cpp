#include "topo/file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace arinoc::topo {

namespace {

[[noreturn]] void fail_at(const std::string& name, int line,
                          const std::string& msg) {
  throw std::invalid_argument(name + ":" + std::to_string(line) + ": " + msg);
}

/// Strict non-negative integer parse (no sign, no trailing junk).
bool parse_uint(const std::string& s, long long* out) {
  if (s.empty()) return false;
  long long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 1'000'000'000LL) return false;
  }
  *out = v;
  return true;
}

/// Parses "<node>.<port>" into its two components.
bool parse_endpoint(const std::string& s, long long* node, long long* port) {
  const std::size_t dot = s.find('.');
  if (dot == std::string::npos) return false;
  return parse_uint(s.substr(0, dot), node) &&
         parse_uint(s.substr(dot + 1), port);
}

}  // namespace

FabricGraph parse_topology(std::istream& in, const std::string& name) {
  FabricGraph g;
  // Nodes may be declared in any order; collect (id, role) pairs and check
  // density afterwards.
  std::vector<std::pair<long long, NodeRole>> nodes;
  long long max_id = -1;

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // Blank line.

    if (tok == "topology") {
      if (!(ls >> g.kind)) fail_at(name, lineno, "topology needs a kind");
    } else if (tok == "geometry") {
      std::string shape;
      long long w = 0, h = 0;
      std::string sw, sh;
      if (!(ls >> shape >> sw >> sh >> g.mesh_placement) || shape != "mesh" ||
          !parse_uint(sw, &w) || !parse_uint(sh, &h) || w == 0 || h == 0) {
        fail_at(name, lineno,
                "malformed geometry line (expected: geometry mesh <W> <H> "
                "<placement>)");
      }
      g.mesh_width = static_cast<std::uint32_t>(w);
      g.mesh_height = static_cast<std::uint32_t>(h);
    } else if (tok == "node") {
      std::string sid, srole;
      long long id = 0;
      if (!(ls >> sid >> srole) || !parse_uint(sid, &id)) {
        fail_at(name, lineno, "malformed node line (expected: node <id> "
                              "<role>)");
      }
      NodeRole role;
      try {
        role = role_from(srole);
      } catch (const std::invalid_argument& e) {
        fail_at(name, lineno, e.what());
      }
      for (const auto& [seen_id, seen_role] : nodes) {
        (void)seen_role;
        if (seen_id == id) {
          fail_at(name, lineno,
                  "duplicate node id " + std::to_string(id));
        }
      }
      nodes.emplace_back(id, role);
      max_id = std::max(max_id, id);
    } else if (tok == "link") {
      std::string sa, sb;
      if (!(ls >> sa >> sb)) {
        fail_at(name, lineno, "malformed link line (expected: link "
                              "<src>.<port> <dst>.<port> [width=N] "
                              "[extra=N])");
      }
      GraphLink l;
      long long sn = 0, sp = 0, dn = 0, dp = 0;
      if (!parse_endpoint(sa, &sn, &sp) || !parse_endpoint(sb, &dn, &dp)) {
        fail_at(name, lineno,
                "malformed link endpoint (expected <node>.<port>)");
      }
      l.src = static_cast<NodeId>(sn);
      l.src_port = static_cast<int>(sp);
      l.dst = static_cast<NodeId>(dn);
      l.dst_port = static_cast<int>(dp);
      std::string attr;
      while (ls >> attr) {
        const std::size_t eq = attr.find('=');
        long long v = 0;
        if (eq == std::string::npos ||
            !parse_uint(attr.substr(eq + 1), &v)) {
          fail_at(name, lineno, "malformed link attribute '" + attr + "'");
        }
        const std::string key = attr.substr(0, eq);
        if (key == "width") {
          if (v == 0) {
            fail_at(name, lineno, "zero-width link " + sa + " " + sb +
                                  " (width must be >= 1 bit)");
          }
          l.width_bits = static_cast<std::uint32_t>(v);
        } else if (key == "extra") {
          l.extra_latency = static_cast<std::uint32_t>(v);
        } else {
          fail_at(name, lineno, "unknown link attribute '" + key + "'");
        }
      }
      g.links.push_back(l);
    } else {
      fail_at(name, lineno, "unknown directive '" + tok + "'");
    }
  }

  if (nodes.empty()) {
    throw std::invalid_argument(name + ": no node declarations");
  }
  g.roles.assign(static_cast<std::size_t>(max_id + 1), NodeRole::kCC);
  std::vector<char> declared(static_cast<std::size_t>(max_id + 1), 0);
  for (const auto& [id, role] : nodes) {
    g.roles[static_cast<std::size_t>(id)] = role;
    declared[static_cast<std::size_t>(id)] = 1;
  }
  for (long long id = 0; id <= max_id; ++id) {
    if (!declared[static_cast<std::size_t>(id)]) {
      throw std::invalid_argument(
          name + ": node ids must be dense 0..N-1 (id " +
          std::to_string(id) + " is missing)");
    }
  }

  try {
    validate_graph(g);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(name + ": " + e.what());
  }
  return g;
}

FabricGraph parse_topology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot read topology file: " + path);
  }
  return parse_topology(in, path);
}

std::string emit_topology(const FabricGraph& g) {
  std::ostringstream os;
  os << "# arinoc topology (" << g.kind << ", " << g.num_nodes()
     << " nodes, " << g.links.size() << " directed links)\n";
  os << "topology " << g.kind << "\n";
  if (g.kind == "mesh" && g.mesh_width > 0 && !g.mesh_placement.empty()) {
    os << "geometry mesh " << g.mesh_width << " " << g.mesh_height << " "
       << g.mesh_placement << "\n";
  }
  for (int n = 0; n < g.num_nodes(); ++n) {
    os << "node " << n << " "
       << role_name(g.roles[static_cast<std::size_t>(n)]) << "\n";
  }
  for (const GraphLink& l : g.links) {
    os << "link " << l.src << "." << l.src_port << " " << l.dst << "."
       << l.dst_port;
    if (l.width_bits != 0) os << " width=" << l.width_bits;
    if (l.extra_latency != 0) os << " extra=" << l.extra_latency;
    os << "\n";
  }
  return os.str();
}

void write_topology_file(const FabricGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write topology file: " + path);
  }
  out << emit_topology(g);
  if (!out.good()) {
    throw std::runtime_error("I/O error writing topology file: " + path);
  }
}

}  // namespace arinoc::topo
