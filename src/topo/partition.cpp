#include "topo/partition.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace arinoc::topo {

namespace {

/// Labels every node with its connected component in the subgraph of
/// zero-extra-latency links. Components are numbered in order of their
/// smallest node id, so the labelling is deterministic. Returns the labels
/// and writes the component count to `count`.
std::vector<std::uint32_t> zero_latency_components(const Fabric& fabric,
                                                   std::uint32_t* count) {
  const int nodes = fabric.nodes();
  constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> comp(static_cast<std::size_t>(nodes), kUnvisited);
  std::uint32_t next = 0;
  std::vector<NodeId> stack;
  for (NodeId seed = 0; seed < nodes; ++seed) {
    if (comp[static_cast<std::size_t>(seed)] != kUnvisited) continue;
    comp[static_cast<std::size_t>(seed)] = next;
    stack.push_back(seed);
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (int port = 0; port < fabric.max_ports(); ++port) {
        const NodeId nb = fabric.neighbor(n, port);
        if (nb == kInvalidNode) continue;
        if (fabric.link_extra_latency(n, port) != 0) continue;
        auto& c = comp[static_cast<std::size_t>(nb)];
        if (c != kUnvisited) continue;
        c = next;
        stack.push_back(nb);
      }
    }
    ++next;
  }
  *count = next;
  return comp;
}

}  // namespace

DomainPartition partition_fabric(const Fabric& fabric, std::uint32_t k) {
  const int nodes = fabric.nodes();
  if (k == 0) {
    throw std::invalid_argument("domain partition: domain count must be >= 1");
  }
  if (static_cast<int>(k) > nodes) {
    throw std::invalid_argument(
        "domain partition: " + std::to_string(k) + " domains exceed the " +
        std::to_string(nodes) + "-node fabric");
  }

  DomainPartition part;
  part.num_domains = k;
  part.domain_of.assign(static_cast<std::size_t>(nodes), 0);

  std::uint32_t ncomp = 0;
  const std::vector<std::uint32_t> comp =
      zero_latency_components(fabric, &ncomp);
  if (k > 1 && ncomp > 1 && ncomp % k == 0) {
    // Multi-die fabric and k divides the die count: group whole dies so no
    // domain splits one and every boundary sits on a serdes link.
    const std::uint32_t per = ncomp / k;
    for (NodeId n = 0; n < nodes; ++n) {
      part.domain_of[static_cast<std::size_t>(n)] =
          comp[static_cast<std::size_t>(n)] / per;
    }
  } else {
    // Contiguous node-index ranges, sizes within one of each other: the
    // first (nodes % k) domains take the extra node.
    const std::uint32_t q = static_cast<std::uint32_t>(nodes) / k;
    const std::uint32_t r = static_cast<std::uint32_t>(nodes) % k;
    NodeId n = 0;
    for (std::uint32_t d = 0; d < k; ++d) {
      const std::uint32_t size = q + (d < r ? 1 : 0);
      for (std::uint32_t i = 0; i < size; ++i, ++n) {
        part.domain_of[static_cast<std::size_t>(n)] = d;
      }
    }
  }

  part.members.resize(k);
  part.local_of.assign(static_cast<std::size_t>(nodes), 0);
  for (NodeId n = 0; n < nodes; ++n) {
    auto& m = part.members[part.domain_of[static_cast<std::size_t>(n)]];
    part.local_of[static_cast<std::size_t>(n)] =
        static_cast<std::uint32_t>(m.size());
    m.push_back(n);
  }

  part.min_boundary_extra = std::numeric_limits<std::uint32_t>::max();
  for (NodeId n = 0; n < nodes; ++n) {
    for (int port = 0; port < fabric.max_ports(); ++port) {
      const NodeId nb = fabric.neighbor(n, port);
      if (nb == kInvalidNode) continue;
      if (part.domain_of[static_cast<std::size_t>(n)] ==
          part.domain_of[static_cast<std::size_t>(nb)]) {
        continue;
      }
      const std::uint32_t extra = fabric.link_extra_latency(n, port);
      part.boundary.push_back(BoundaryLink{n, port, nb, extra});
      part.min_boundary_extra = std::min(part.min_boundary_extra, extra);
    }
  }
  if (part.boundary.empty()) part.min_boundary_extra = 0;
  return part;
}

}  // namespace arinoc::topo
