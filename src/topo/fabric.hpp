// Runtime fabric: the compiled, query-ready form of a FabricGraph.
//
// A Fabric answers everything the NoC layer needs about the interconnect
// shape — adjacency by (node, port), per-link extra latency, node roles,
// hop distances — behind one interface, so Router/Network/NI construction
// is topology-agnostic. Two routing backends hide behind it:
//
//   - mesh_view() != nullptr: the fabric is a 2D mesh (built-in, or a
//     topology file declaring `geometry mesh`). Routing dispatches to the
//     original XY/minimal-adaptive math, bit-identical to the pre-fabric
//     code path.
//   - table() != nullptr: anything else routes via the compiled up*/down*
//     tables (topo/table.hpp), deadlock-free on all VCs.
//
// Exactly one backend is non-null.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "topo/graph.hpp"
#include "topo/table.hpp"

namespace arinoc {
class Mesh;
struct Config;
}  // namespace arinoc

namespace arinoc::topo {

class Fabric {
 public:
  /// Compiles a validated graph. Graphs with kind "mesh" must declare the
  /// `geometry mesh` line; the native Mesh is reconstructed from it and
  /// cross-checked against the declared roles and links (fail-fast on any
  /// mismatch), then used for routing. All other kinds get up*/down*
  /// tables.
  explicit Fabric(FabricGraph graph);

  /// Non-owning view of an existing Mesh — the compatibility path for
  /// code (mostly tests) that builds Network/Router directly from a Mesh.
  explicit Fabric(const Mesh* mesh);

  Fabric(Fabric&&) = default;
  Fabric& operator=(Fabric&&) = default;

  const std::string& kind() const { return graph_.kind; }
  const FabricGraph& graph() const { return graph_; }

  int nodes() const { return static_cast<int>(roles_.size()); }
  /// Router radix. Injection/ejection ("local") uses port index
  /// max_ports(), generalizing the mesh's kLocal == kNumDirections.
  int max_ports() const { return max_ports_; }
  int local_port() const { return max_ports_; }

  /// Downstream node of the link leaving (n, port), or kInvalidNode when
  /// the port is unwired.
  NodeId neighbor(NodeId n, int port) const {
    return neighbor_[idx(n, port)];
  }
  /// Port at the other end of the link attached to (n, port): flits sent
  /// out of (n, port) arrive there, and credits for our input (n, port)
  /// return to it. Generalizes the mesh's opposite().
  int peer_port(NodeId n, int port) const { return peer_port_[idx(n, port)]; }
  /// Serdes cycles on top of the base per-hop latency for the link leaving
  /// (n, port) (chiplet boundary links; 0 elsewhere).
  std::uint32_t link_extra_latency(NodeId n, int port) const {
    return extra_[idx(n, port)];
  }
  std::uint32_t max_extra_latency() const { return max_extra_; }

  NodeRole role(NodeId n) const { return roles_[static_cast<std::size_t>(n)]; }
  bool is_mc(NodeId n) const { return role(n) == NodeRole::kMC; }
  /// Endpoints source/sink traffic; kRouter nodes (cmesh hubs) do not.
  bool is_endpoint(NodeId n) const { return role(n) != NodeRole::kRouter; }
  const std::vector<NodeId>& mc_nodes() const { return mc_nodes_; }
  const std::vector<NodeId>& cc_nodes() const { return cc_nodes_; }

  /// Minimal legal hop count (Manhattan on meshes, table distance
  /// elsewhere — both count router-to-router hops).
  std::uint32_t hops(NodeId a, NodeId b) const;

  const Mesh* mesh_view() const { return mesh_; }
  const RoutingTable* table() const { return table_.get(); }

  /// Human-readable port label for diagnostics: N/E/S/W/L on meshes,
  /// p<k>/L elsewhere.
  std::string port_name(int port) const;

 private:
  std::size_t idx(NodeId n, int port) const {
    return static_cast<std::size_t>(n) * static_cast<std::size_t>(max_ports_) +
           static_cast<std::size_t>(port);
  }
  void init_from_mesh(const Mesh* mesh);
  void init_from_table(const FabricGraph& g);

  FabricGraph graph_;
  std::vector<NodeRole> roles_;
  std::vector<NodeId> mc_nodes_;
  std::vector<NodeId> cc_nodes_;
  int max_ports_ = 0;
  std::uint32_t max_extra_ = 0;
  std::vector<NodeId> neighbor_;
  std::vector<int> peer_port_;
  std::vector<std::uint32_t> extra_;

  std::unique_ptr<Mesh> mesh_owned_;
  const Mesh* mesh_ = nullptr;  ///< Non-null iff native mesh routing.
  std::unique_ptr<RoutingTable> table_;  ///< Non-null iff table routing.
};

/// Builds the fabric selected by cfg.fabric: "mesh" (default), "torus",
/// "cmesh", "chiplet" from the built-in generators, or "file" loading
/// cfg.topology_file. Throws std::invalid_argument on any invalid
/// combination, before any simulation state exists.
Fabric make_fabric(const Config& cfg);

}  // namespace arinoc::topo
