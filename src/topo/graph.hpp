// Generic directed-graph fabric description (topo subsystem).
//
// A FabricGraph is the declarative form of an interconnect: nodes with roles
// (compute cluster, memory controller, or pure router), and directed links
// between (node, port) endpoints with per-link width and extra latency.
// Graphs come from the built-in generators (generators.hpp) or from a
// topology file (file.hpp); either way validate_graph() runs before the
// runtime Fabric is built, so every structural error fails fast with a
// message naming the problem instead of corrupting a simulation.
//
// Link symmetry: the credit-based flow control pairs each physical channel
// with a reverse channel on the same port pair (flits downstream, credits
// upstream). The graph therefore declares *directed* links but requires
// every link (a.p -> b.q) to have a mirror (b.q -> a.p) with identical
// width/extra-latency attributes; a missing or mismatched mirror is the
// "asymmetric link" validation error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace arinoc::topo {

/// Role of a fabric node. CC and MC nodes are endpoints (they get NIs and
/// traffic sources/sinks); kRouter nodes carry only through-traffic
/// (concentration hubs in cmesh fabrics).
enum class NodeRole : std::uint8_t { kCC = 0, kMC = 1, kRouter = 2 };

const char* role_name(NodeRole r);
/// Parses "cc" / "mc" / "rtr". Throws std::invalid_argument on anything else.
NodeRole role_from(const std::string& s);

/// One directed link: flits leave `src` through output port `src_port` and
/// arrive at `dst` on input port `dst_port`.
struct GraphLink {
  NodeId src = kInvalidNode;
  int src_port = -1;
  NodeId dst = kInvalidNode;
  int dst_port = -1;
  std::uint32_t width_bits = 0;     ///< 0 = the network's default link width.
  std::uint32_t extra_latency = 0;  ///< Serdes cycles on top of the base
                                    ///< per-hop link latency (chiplet
                                    ///< boundary links).

  bool operator==(const GraphLink&) const = default;
};

/// Declarative fabric description. `kind` names the generator family; when
/// kind == "mesh" the mesh_* geometry fields let the runtime reconstruct the
/// native Mesh object and dispatch to the existing XY/adaptive routing math,
/// which keeps a generated-then-reloaded mesh bit-identical to the built-in
/// path. All other kinds route via the compiled up*/down* tables.
struct FabricGraph {
  std::string kind = "custom";  ///< mesh|torus|cmesh|chiplet|custom.
  // Geometry declaration for kind=="mesh" (0/empty otherwise). The loader
  // rebuilds Mesh(mesh_width, mesh_height, #mc-roles, mesh_placement) and
  // cross-checks it against roles/links, failing fast on any mismatch.
  std::uint32_t mesh_width = 0;
  std::uint32_t mesh_height = 0;
  std::string mesh_placement;

  std::vector<NodeRole> roles;  ///< Dense, indexed by NodeId.
  std::vector<GraphLink> links;

  int num_nodes() const { return static_cast<int>(roles.size()); }
  /// Highest port index used by any link, plus one (the fabric radix).
  int num_ports() const;
  std::uint32_t count_role(NodeRole r) const;
};

/// Maximum port index a node may use (+1); keeps routing-table candidate
/// sets in a 32-bit mask.
inline constexpr int kMaxPorts = 32;

/// Fail-fast structural validation. Throws std::invalid_argument describing
/// the first problem found: out-of-range or dangling link endpoint, port
/// conflict, self-link, asymmetric link, mixed explicit link widths,
/// missing CC/MC endpoints, or a disconnected graph.
void validate_graph(const FabricGraph& g);

}  // namespace arinoc::topo
