// Topology file format: a line-oriented, fail-fast-validated text
// description of a FabricGraph (docs/fabrics.md has the full grammar).
//
//   # comment / blank lines are ignored
//   topology <kind>                      # optional, default "custom"
//   geometry mesh <W> <H> <placement>    # mesh fast-path declaration
//   node <id> <role>                     # role: cc | mc | rtr
//   link <src>.<port> <dst>.<port> [width=<bits>] [extra=<cycles>]
//
// Node ids must be dense 0..N-1 (any order). Every link line declares ONE
// direction; the mirror direction must be declared too (validate_graph's
// asymmetric-link check). Generators and emit_topology always write both.
//
// Parse errors throw std::invalid_argument prefixed "<name>:<line>:" so the
// CLI can surface them verbatim with exit code 2 (the --pace convention).
#pragma once

#include <iosfwd>
#include <string>

#include "topo/graph.hpp"

namespace arinoc::topo {

/// Parses and validates a topology from a stream; `name` prefixes error
/// messages (usually the file path). Throws std::invalid_argument.
FabricGraph parse_topology(std::istream& in, const std::string& name);

/// Reads, parses and validates a topology file. A missing or unreadable
/// file throws std::invalid_argument (fail fast, before any simulation).
FabricGraph parse_topology_file(const std::string& path);

/// Serializes a graph in the file format above; parse_topology() of the
/// result reproduces the graph exactly.
std::string emit_topology(const FabricGraph& g);

/// Writes emit_topology(g) to `path`; throws std::runtime_error on I/O
/// failure.
void write_topology_file(const FabricGraph& g, const std::string& path);

}  // namespace arinoc::topo
