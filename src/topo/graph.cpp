#include "topo/graph.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace arinoc::topo {

const char* role_name(NodeRole r) {
  switch (r) {
    case NodeRole::kCC: return "cc";
    case NodeRole::kMC: return "mc";
    case NodeRole::kRouter: return "rtr";
  }
  return "?";
}

NodeRole role_from(const std::string& s) {
  if (s == "cc") return NodeRole::kCC;
  if (s == "mc") return NodeRole::kMC;
  if (s == "rtr") return NodeRole::kRouter;
  throw std::invalid_argument("unknown node role '" + s +
                              "' (expected cc, mc, or rtr)");
}

int FabricGraph::num_ports() const {
  int ports = 0;
  for (const GraphLink& l : links) {
    ports = std::max(ports, std::max(l.src_port, l.dst_port) + 1);
  }
  return ports;
}

std::uint32_t FabricGraph::count_role(NodeRole r) const {
  std::uint32_t n = 0;
  for (const NodeRole x : roles) {
    if (x == r) ++n;
  }
  return n;
}

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("invalid topology: " + msg);
}

std::string link_str(const GraphLink& l) {
  std::ostringstream os;
  os << l.src << "." << l.src_port << " -> " << l.dst << "." << l.dst_port;
  return os.str();
}

}  // namespace

void validate_graph(const FabricGraph& g) {
  const int n = g.num_nodes();
  if (n < 2) fail("a fabric needs at least 2 nodes");
  if (g.links.empty()) fail("a fabric needs at least 1 link");

  const int ports = g.num_ports();
  if (ports > kMaxPorts) {
    fail("port index " + std::to_string(ports - 1) + " exceeds the maximum "
         "radix of " + std::to_string(kMaxPorts));
  }

  // Endpoint / port-conflict checks, and an index of every directed link so
  // the mirror lookup below is O(log L).
  std::map<std::pair<NodeId, int>, const GraphLink*> by_out;
  std::uint32_t explicit_width = 0;
  for (const GraphLink& l : g.links) {
    if (l.src < 0 || l.src >= n) {
      fail("dangling link endpoint: node " + std::to_string(l.src) +
           " in link " + link_str(l) + " is not declared");
    }
    if (l.dst < 0 || l.dst >= n) {
      fail("dangling link endpoint: node " + std::to_string(l.dst) +
           " in link " + link_str(l) + " is not declared");
    }
    if (l.src == l.dst) fail("self-link at node " + std::to_string(l.src));
    if (l.src_port < 0 || l.dst_port < 0) {
      fail("negative port index in link " + link_str(l));
    }
    if (l.width_bits != 0) {
      if (explicit_width == 0) {
        explicit_width = l.width_bits;
      } else if (explicit_width != l.width_bits) {
        fail("mixed link widths (" + std::to_string(explicit_width) +
             " and " + std::to_string(l.width_bits) +
             " bits): the runtime supports one uniform width per network");
      }
    }
    if (l.extra_latency > 4096) {
      fail("extra latency " + std::to_string(l.extra_latency) +
           " on link " + link_str(l) + " exceeds the 4096-cycle bound");
    }
    const auto key = std::make_pair(l.src, l.src_port);
    if (!by_out.emplace(key, &l).second) {
      fail("port conflict: two links leave node " + std::to_string(l.src) +
           " through port " + std::to_string(l.src_port));
    }
  }

  // Symmetry: every directed link needs its mirror with equal attributes,
  // and the mirror's arrival port must be this link's departure port (the
  // credit return path shares the port pair).
  for (const GraphLink& l : g.links) {
    const auto it = by_out.find({l.dst, l.dst_port});
    if (it == by_out.end() || it->second->dst != l.src ||
        it->second->dst_port != l.src_port) {
      fail("asymmetric link " + link_str(l) + ": no mirror link " +
           std::to_string(l.dst) + "." + std::to_string(l.dst_port) +
           " -> " + std::to_string(l.src) + "." +
           std::to_string(l.src_port));
    }
    const GraphLink& m = *it->second;
    if (m.width_bits != l.width_bits || m.extra_latency != l.extra_latency) {
      fail("asymmetric link " + link_str(l) +
           ": mirror link attributes differ (width " +
           std::to_string(l.width_bits) + " vs " +
           std::to_string(m.width_bits) + ", extra " +
           std::to_string(l.extra_latency) + " vs " +
           std::to_string(m.extra_latency) + ")");
    }
  }

  if (g.count_role(NodeRole::kMC) == 0) fail("no MC node declared");
  if (g.count_role(NodeRole::kCC) == 0) fail("no CC node declared");

  // Connectivity (BFS over directed links; symmetry makes this undirected).
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> queue{0};
  seen[0] = 1;
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (const GraphLink& l : g.links) {
    adj[static_cast<std::size_t>(l.src)].push_back(l.dst);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const NodeId m : adj[static_cast<std::size_t>(queue[head])]) {
      if (!seen[static_cast<std::size_t>(m)]) {
        seen[static_cast<std::size_t>(m)] = 1;
        queue.push_back(m);
      }
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    if (!seen[static_cast<std::size_t>(i)]) {
      fail("disconnected graph: node " + std::to_string(i) +
           " is unreachable from node 0");
    }
  }
}

}  // namespace arinoc::topo
