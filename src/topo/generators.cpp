#include "topo/generators.hpp"

#include <stdexcept>
#include <string>

#include "noc/topology.hpp"

namespace arinoc::topo {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("fabric generator: " + msg);
}

/// Appends both directions of the physical channel between (a, ap) and
/// (b, bp); `extra` is the serdes latency on top of the base link latency.
void add_channel(FabricGraph* g, NodeId a, int ap, NodeId b, int bp,
                 std::uint32_t extra = 0) {
  g->links.push_back(GraphLink{a, ap, b, bp, 0, extra});
  g->links.push_back(GraphLink{b, bp, a, ap, 0, extra});
}

}  // namespace

FabricGraph make_mesh_graph(std::uint32_t width, std::uint32_t height,
                            std::uint32_t num_mcs, McPlacement placement) {
  if (width == 0 || height == 0) fail("mesh dimensions must be >= 1");
  if (num_mcs == 0 || num_mcs >= width * height) {
    fail("mesh needs 1 <= num_mcs < width*height (got " +
         std::to_string(num_mcs) + " of " +
         std::to_string(width * height) + ")");
  }
  const Mesh mesh(width, height, num_mcs, placement);
  FabricGraph g;
  g.kind = "mesh";
  g.mesh_width = width;
  g.mesh_height = height;
  g.mesh_placement = placement_name(placement);
  g.roles.resize(mesh.nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(mesh.nodes()); ++n) {
    g.roles[static_cast<std::size_t>(n)] =
        mesh.is_mc(n) ? NodeRole::kMC : NodeRole::kCC;
    // One directed link per valid (node, dir); the reverse direction is
    // emitted when the neighbour's iteration reaches the opposite port.
    for (int dir = 0; dir < kNumDirections; ++dir) {
      const NodeId m = mesh.neighbor(n, dir);
      if (m != kInvalidNode) {
        g.links.push_back(GraphLink{n, dir, m, opposite(dir), 0, 0});
      }
    }
  }
  validate_graph(g);
  return g;
}

FabricGraph make_torus_graph(std::uint32_t width, std::uint32_t height,
                             std::uint32_t num_mcs, McPlacement placement) {
  if (width < 2 || height < 2) {
    fail("torus dimensions must be >= 2 (wraparound links would be "
         "self-links)");
  }
  if (num_mcs == 0 || num_mcs >= width * height) {
    fail("torus needs 1 <= num_mcs < width*height (got " +
         std::to_string(num_mcs) + " of " +
         std::to_string(width * height) + ")");
  }
  // Reuse the mesh MC placement so a torus is the matching mesh plus
  // wraparound links.
  const Mesh mesh(width, height, num_mcs, placement);
  FabricGraph g;
  g.kind = "torus";
  // Grid-layout hint for rendering; Fabric ignores geometry for non-mesh
  // kinds (they always go through the routing-table path).
  g.mesh_width = width;
  g.mesh_height = height;
  g.roles.resize(mesh.nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(mesh.nodes()); ++n) {
    g.roles[static_cast<std::size_t>(n)] =
        mesh.is_mc(n) ? NodeRole::kMC : NodeRole::kCC;
    const std::uint32_t x = mesh.x_of(n);
    const std::uint32_t y = mesh.y_of(n);
    const NodeId north = mesh.node_at(x, (y + height - 1) % height);
    const NodeId east = mesh.node_at((x + 1) % width, y);
    const NodeId south = mesh.node_at(x, (y + 1) % height);
    const NodeId west = mesh.node_at((x + width - 1) % width, y);
    g.links.push_back(GraphLink{n, kNorth, north, kSouth, 0, 0});
    g.links.push_back(GraphLink{n, kEast, east, kWest, 0, 0});
    g.links.push_back(GraphLink{n, kSouth, south, kNorth, 0, 0});
    g.links.push_back(GraphLink{n, kWest, west, kEast, 0, 0});
  }
  validate_graph(g);
  return g;
}

FabricGraph make_cmesh_graph(std::uint32_t width, std::uint32_t height,
                             std::uint32_t concentration,
                             std::uint32_t num_mcs, McPlacement placement) {
  if (width == 0 || height == 0) fail("cmesh dimensions must be >= 1");
  if (concentration < 1 ||
      concentration > static_cast<std::uint32_t>(kMaxPorts) - 4) {
    fail("cmesh concentration must be in [1, " +
         std::to_string(kMaxPorts - 4) + "] (got " +
         std::to_string(concentration) + ")");
  }
  const std::uint32_t hubs = width * height;
  if (num_mcs == 0 || num_mcs >= hubs) {
    fail("cmesh needs 1 <= num_mcs < width*height hub count (got " +
         std::to_string(num_mcs) + " of " + std::to_string(hubs) + ")");
  }
  // The hub mesh doubles as the MC-placement oracle: an endpoint under an
  // MC hub is close to where the mesh placement would put that MC.
  const Mesh hub_mesh(width, height, num_mcs, placement);
  FabricGraph g;
  g.kind = "cmesh";
  // Hub-grid layout hint for rendering (leaves cluster around their hub).
  g.mesh_width = width;
  g.mesh_height = height;
  g.roles.assign(hubs + hubs * concentration, NodeRole::kCC);
  for (NodeId hub = 0; hub < static_cast<NodeId>(hubs); ++hub) {
    g.roles[static_cast<std::size_t>(hub)] = NodeRole::kRouter;
    // Hub mesh links on ports 0..3 (N/E/S/W, same convention as the mesh).
    for (int dir = 0; dir < kNumDirections; ++dir) {
      const NodeId m = hub_mesh.neighbor(hub, dir);
      if (m != kInvalidNode) {
        g.links.push_back(GraphLink{hub, dir, m, opposite(dir), 0, 0});
      }
    }
    // Leaves hang off ports 4..4+concentration-1; each leaf reaches its hub
    // through its single port 0.
    for (std::uint32_t k = 0; k < concentration; ++k) {
      const NodeId leaf = static_cast<NodeId>(
          hubs + static_cast<std::uint32_t>(hub) * concentration + k);
      add_channel(&g, hub, kNumDirections + static_cast<int>(k), leaf, 0);
      if (hub_mesh.is_mc(hub) && k == 0) {
        g.roles[static_cast<std::size_t>(leaf)] = NodeRole::kMC;
      }
    }
  }
  validate_graph(g);
  return g;
}

FabricGraph make_chiplet_graph(std::uint32_t chiplets_x,
                               std::uint32_t chiplets_y, std::uint32_t width,
                               std::uint32_t height, std::uint32_t num_mcs,
                               McPlacement placement,
                               std::uint32_t serdes_latency) {
  if (chiplets_x == 0 || chiplets_y == 0) {
    fail("chiplet grid dimensions must be >= 1");
  }
  if (chiplets_x * chiplets_y < 2) {
    fail("a chiplet fabric needs at least 2 chiplets (use the mesh fabric "
         "for a single die)");
  }
  if (width == 0 || height == 0) fail("chiplet mesh dimensions must be >= 1");
  const std::uint32_t gw = chiplets_x * width;
  const std::uint32_t gh = chiplets_y * height;
  if (num_mcs == 0 || num_mcs >= gw * gh) {
    fail("chiplet fabric needs 1 <= num_mcs < total node count (got " +
         std::to_string(num_mcs) + " of " + std::to_string(gw * gh) + ")");
  }
  // Roles come from the flattened global mesh so MC placement behaves like
  // one big die; only link latencies know about the chiplet boundaries.
  const Mesh mesh(gw, gh, num_mcs, placement);
  FabricGraph g;
  g.kind = "chiplet";
  // Global-grid layout hint for rendering.
  g.mesh_width = gw;
  g.mesh_height = gh;
  g.roles.resize(mesh.nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(mesh.nodes()); ++n) {
    g.roles[static_cast<std::size_t>(n)] =
        mesh.is_mc(n) ? NodeRole::kMC : NodeRole::kCC;
    for (int dir = 0; dir < kNumDirections; ++dir) {
      const NodeId m = mesh.neighbor(n, dir);
      if (m == kInvalidNode) continue;
      const bool crosses =
          mesh.x_of(n) / width != mesh.x_of(m) / width ||
          mesh.y_of(n) / height != mesh.y_of(m) / height;
      g.links.push_back(GraphLink{n, dir, m, opposite(dir), 0,
                                  crosses ? serdes_latency : 0});
    }
  }
  validate_graph(g);
  return g;
}

}  // namespace arinoc::topo
