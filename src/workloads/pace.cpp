#include "workloads/pace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace arinoc {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Splits "key=value" pairs after the leading base rate.
struct SpecParams {
  double base = 0.0;
  std::vector<std::pair<std::string, double>> kv;
};

SpecParams parse_params(const std::string& spec, const std::string& body) {
  SpecParams out;
  std::istringstream is(body);
  std::string tok;
  bool first = true;
  while (std::getline(is, tok, ',')) {
    if (first) {
      first = false;
      char* end = nullptr;
      out.base = std::strtod(tok.c_str(), &end);
      if (end == tok.c_str() || *end != '\0') {
        throw std::invalid_argument("pace spec '" + spec +
                                    "': expected a base rate, got '" + tok +
                                    "'");
      }
      continue;
    }
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("pace spec '" + spec +
                                  "': expected key=value, got '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    char* end = nullptr;
    const double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0') {
      throw std::invalid_argument("pace spec '" + spec + "': bad value for '" +
                                  key + "'");
    }
    out.kv.emplace_back(key, v);
  }
  if (first) {
    throw std::invalid_argument("pace spec '" + spec + "': missing base rate");
  }
  if (!(out.base >= 0.0) || out.base > 1.0) {
    throw std::invalid_argument(
        "pace spec '" + spec +
        "': base rate must be in [0, 1] requests/cycle/CC");
  }
  return out;
}

[[noreturn]] void unknown_key(const std::string& spec, const std::string& key) {
  throw std::invalid_argument("pace spec '" + spec + "': unknown parameter '" +
                              key + "'");
}

bool looks_like_path(const std::string& spec) {
  if (spec.find('/') != std::string::npos) return true;
  const std::string suffix = ".pace";
  return spec.size() > suffix.size() &&
         spec.compare(spec.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

const char* pace_kind_name(PaceKind k) {
  switch (k) {
    case PaceKind::kConstant: return "constant";
    case PaceKind::kDiurnal: return "diurnal";
    case PaceKind::kBurst: return "burst";
    case PaceKind::kFlashCrowd: return "flash";
    case PaceKind::kFile: return "file";
  }
  return "?";
}

PaceProfile::PaceProfile(double rate) : base_(rate) {}

PaceProfile PaceProfile::parse_spec(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("pace spec is empty");
  }
  if (looks_like_path(spec)) return load(spec);

  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument(
        "pace spec '" + spec +
        "': expected <kind>:<rate>[,key=value...] or a pace-file path");
  }
  const std::string kind = spec.substr(0, colon);
  const SpecParams p = parse_params(spec, spec.substr(colon + 1));

  PaceProfile out(p.base);
  if (kind == "constant") {
    out.kind_ = PaceKind::kConstant;
    if (!p.kv.empty()) unknown_key(spec, p.kv.front().first);
  } else if (kind == "diurnal") {
    out.kind_ = PaceKind::kDiurnal;
    for (const auto& [k, v] : p.kv) {
      if (k == "period") out.period_ = static_cast<Cycle>(v);
      else if (k == "amp") out.amp_ = v;
      else unknown_key(spec, k);
    }
    if (out.amp_ < 0.0 || out.amp_ > 1.0) {
      throw std::invalid_argument("pace spec '" + spec +
                                  "': amp must be in [0, 1]");
    }
  } else if (kind == "burst") {
    out.kind_ = PaceKind::kBurst;
    for (const auto& [k, v] : p.kv) {
      if (k == "period") out.period_ = static_cast<Cycle>(v);
      else if (k == "duty") out.duty_ = v;
      else if (k == "peak") out.peak_ = v;
      else unknown_key(spec, k);
    }
    if (out.duty_ <= 0.0 || out.duty_ >= 1.0) {
      throw std::invalid_argument("pace spec '" + spec +
                                  "': duty must be in (0, 1)");
    }
    if (out.peak_ < 1.0) {
      throw std::invalid_argument("pace spec '" + spec +
                                  "': peak must be >= 1");
    }
  } else if (kind == "flash") {
    out.kind_ = PaceKind::kFlashCrowd;
    for (const auto& [k, v] : p.kv) {
      if (k == "at") out.flash_at_ = static_cast<Cycle>(v);
      else if (k == "len") out.flash_len_ = static_cast<Cycle>(v);
      else if (k == "mult") out.flash_mult_ = v;
      else unknown_key(spec, k);
    }
    if (out.flash_mult_ < 1.0) {
      throw std::invalid_argument("pace spec '" + spec +
                                  "': mult must be >= 1");
    }
  } else {
    throw std::invalid_argument(
        "pace spec '" + spec + "': unknown kind '" + kind +
        "' (constant | diurnal | burst | flash | <pace file>)");
  }
  if (out.period_ == 0) {
    throw std::invalid_argument("pace spec '" + spec +
                                "': period must be >= 1 cycle");
  }
  return out;
}

PaceProfile PaceProfile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open pace file: " + path);
  }
  std::string header;
  if (!std::getline(in, header) || header != "arinoc-pace v1") {
    throw std::invalid_argument(path +
                                ": missing 'arinoc-pace v1' header line");
  }
  PaceProfile out(0.0);
  out.kind_ = PaceKind::kFile;
  out.source_ = path;
  std::string line;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream is(line);
    std::uint64_t cycle = 0;
    double rate = 0.0;
    if (!(is >> cycle)) continue;  // Blank/comment-only line.
    if (!(is >> rate) || !(rate >= 0.0) || rate > 1.0) {
      throw std::invalid_argument(
          path + ":" + std::to_string(lineno) +
          ": expected '<cycle> <rate in [0,1]>', got '" + line + "'");
    }
    std::string extra;
    if (is >> extra) {
      throw std::invalid_argument(path + ":" + std::to_string(lineno) +
                                  ": trailing garbage '" + extra + "'");
    }
    if (!out.points_.empty() && cycle <= out.points_.back().cycle) {
      throw std::invalid_argument(path + ":" + std::to_string(lineno) +
                                  ": breakpoint cycles must be ascending");
    }
    out.points_.push_back({cycle, rate});
  }
  if (out.points_.empty()) {
    throw std::invalid_argument(path + ": pace file has no breakpoints");
  }
  out.base_ = out.points_.front().rate;
  return out;
}

double PaceProfile::rate_at(Cycle now, double scale) const {
  double r = base_;
  switch (kind_) {
    case PaceKind::kConstant:
      break;
    case PaceKind::kDiurnal: {
      const double phase =
          static_cast<double>(now % period_) / static_cast<double>(period_);
      r = base_ * (1.0 + amp_ * std::sin(kTwoPi * phase));
      break;
    }
    case PaceKind::kBurst: {
      const double phase =
          static_cast<double>(now % period_) / static_cast<double>(period_);
      r = phase < duty_ ? base_ * peak_ : base_;
      break;
    }
    case PaceKind::kFlashCrowd:
      if (now >= flash_at_ && now - flash_at_ < flash_len_) {
        r = base_ * flash_mult_;
      }
      break;
    case PaceKind::kFile: {
      // Stepwise hold: the last breakpoint at or before `now`. Before the
      // first breakpoint the first rate applies.
      r = points_.front().rate;
      for (const Breakpoint& bp : points_) {
        if (bp.cycle > now) break;
        r = bp.rate;
      }
      break;
    }
  }
  return std::clamp(r * scale, 0.0, 1.0);
}

double PaceProfile::peak_rate() const {
  switch (kind_) {
    case PaceKind::kConstant: return base_;
    case PaceKind::kDiurnal: return base_ * (1.0 + amp_);
    case PaceKind::kBurst: return base_ * peak_;
    case PaceKind::kFlashCrowd: return base_ * flash_mult_;
    case PaceKind::kFile: {
      double peak = 0.0;
      for (const Breakpoint& bp : points_) peak = std::max(peak, bp.rate);
      return peak;
    }
  }
  return base_;
}

std::string PaceProfile::describe() const {
  char buf[160];
  switch (kind_) {
    case PaceKind::kConstant:
      std::snprintf(buf, sizeof(buf), "constant:%g", base_);
      break;
    case PaceKind::kDiurnal:
      std::snprintf(buf, sizeof(buf), "diurnal:%g,period=%llu,amp=%g", base_,
                    static_cast<unsigned long long>(period_), amp_);
      break;
    case PaceKind::kBurst:
      std::snprintf(buf, sizeof(buf), "burst:%g,period=%llu,duty=%g,peak=%g",
                    base_, static_cast<unsigned long long>(period_), duty_,
                    peak_);
      break;
    case PaceKind::kFlashCrowd:
      std::snprintf(buf, sizeof(buf), "flash:%g,at=%llu,len=%llu,mult=%g",
                    base_, static_cast<unsigned long long>(flash_at_),
                    static_cast<unsigned long long>(flash_len_), flash_mult_);
      break;
    case PaceKind::kFile:
      std::snprintf(buf, sizeof(buf), "file:%s (%zu breakpoints)",
                    source_.c_str(), points_.size());
      break;
  }
  return buf;
}

}  // namespace arinoc
