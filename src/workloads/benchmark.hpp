// Synthetic models of the paper's 30 Rodinia / CUDA-SDK benchmarks.
//
// Each benchmark is reduced to the traffic signature the NoC experiments
// depend on: memory intensity, read/write mix, coalescing quality, reuse
// locality, streaming behaviour (DRAM row locality) and cross-core sharing.
// The suite keeps the paper's sensitivity mix: 9 highly NoC-sensitive,
// 11 medium, 10 low (§6.2).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace arinoc {

enum class Sensitivity { kHigh, kMedium, kLow };

const char* sensitivity_name(Sensitivity s);

struct BenchmarkTraits {
  std::string name;
  Sensitivity sensitivity = Sensitivity::kMedium;
  /// Probability that a warp instruction is a memory operation.
  double mem_ratio = 0.2;
  /// Fraction of memory operations that are stores.
  double store_frac = 0.15;
  /// Probability of re-touching a recently used line (L1 locality).
  double locality = 0.5;
  /// Probability that a fresh address continues the warp's stream
  /// (sequential lines -> DRAM row-buffer hits).
  double stream_frac = 0.7;
  /// Probability that an access targets the cross-core shared region.
  double shared_frac = 0.1;
  /// Mean distinct lines per memory instruction after coalescing (1..4);
  /// irregular benchmarks coalesce poorly and generate more transactions.
  double lines_mean = 1.5;
  /// Per-core private working set.
  std::uint32_t working_set_kb = 256;
  /// Traffic burstiness in [0, 1): the memory-op ratio oscillates between
  /// phases of (1+b)x and (1-b)x the mean over `burst_period` instructions.
  /// Kernels alternate compute and memory phases; bursts are what produce
  /// the "multiple back-to-back ready data" at MCs that §4.1 targets.
  double burstiness = 0.0;
  std::uint32_t burst_period = 512;
};

/// The full 30-benchmark evaluation suite (ordered, deterministic).
const std::vector<BenchmarkTraits>& benchmark_suite();

/// Lookup by name; nullptr if unknown.
const BenchmarkTraits* find_benchmark(std::string_view name);

/// Names of all suite members with the given sensitivity.
std::vector<std::string> benchmarks_with(Sensitivity s);

}  // namespace arinoc
