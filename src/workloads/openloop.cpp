#include "workloads/openloop.hpp"

#include <algorithm>
#include <cassert>

namespace arinoc {

namespace {

/// SplitMix64 finalizer — decorrelates per-client RNG streams from the run
/// seed without consuming draws from a shared generator.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kQ32One = 1ull << 32;

/// At most this many issue attempts per cycle: steady state needs one
/// (arrival rate is clamped to <= 1/cycle), the rest drains backlog after
/// backpressure clears without unbounded per-cycle work.
constexpr int kMaxIssuesPerCycle = 4;

}  // namespace

OpenLoopClient::OpenLoopClient(const Config& cfg, std::uint32_t client_id,
                               NodeId node, const PaceProfile* pace,
                               TxnPool* txns, const AddressMap* amap,
                               const std::vector<NodeId>* mc_nodes,
                               RequestPort* request_port, AdmissionGate* gate)
    : cfg_(cfg),
      client_id_(client_id),
      node_(node),
      pace_(pace),
      txns_(txns),
      amap_(amap),
      mc_nodes_(mc_nodes),
      request_port_(request_port),
      gate_(gate),
      // Per-node phase offset: clients cross the arrival threshold on
      // different cycles even under identical rates.
      arrival_accum_q32_(mix64(cfg.seed ^ (0xA11C0ull + node)) & 0xffffffffull),
      rng_(mix64(cfg.seed ^ (0x0137EA11ull + node))),
      region_base_(static_cast<Addr>(client_id) << 24),  // 16 MiB apart.
      region_bytes_(Addr{1} << 20) {}                    // 1 MiB working set.

Addr OpenLoopClient::next_address() {
  // Mostly streaming (DRAM row locality), occasional random jump so the
  // request stream touches every MC/bank like real serving traffic.
  if (rng_.chance(0.1)) {
    cursor_ = (rng_.next() % region_bytes_) & ~static_cast<Addr>(cfg_.line_bytes - 1);
  } else {
    cursor_ += cfg_.line_bytes;
    if (cursor_ >= region_bytes_) cursor_ = 0;
  }
  return region_base_ + cursor_;
}

void OpenLoopClient::generate_arrivals(Cycle now) {
  const double rate = pace_->rate_at(now, cfg_.pace_scale);
  arrival_accum_q32_ +=
      static_cast<std::uint64_t>(std::clamp(rate, 0.0, 1.0) * 4294967296.0);
  while (arrival_accum_q32_ >= kQ32One) {
    arrival_accum_q32_ -= kQ32One;
    ++offered_;
    if (pending_.size() >= cfg_.ol_queue_cap) {
      // Front-door overflow: the arrival is lost, not queued.
      ++queue_drops_;
      ++shed_;
      continue;
    }
    PendingReq req;
    req.arrival = now;
    req.line = amap_->line_of(next_address());
    req.write = rng_.chance(cfg_.ol_write_frac);
    pending_.push_back(req);
  }
}

bool OpenLoopClient::try_issue_head(Cycle now) {
  PendingReq& head = pending_.front();
  if (head.next_try > now) return false;  // Backing off after a defer.

  if (gate_ != nullptr) {
    switch (gate_->request(now)) {
      case AdmissionDecision::kAdmit:
        break;
      case AdmissionDecision::kDefer: {
        ++defer_events_;
        ++head.denials;
        if (head.denials > cfg_.adm_retry_max) {
          ++shed_;
          pending_.pop_front();
          return true;  // Head consumed; the next request may proceed.
        }
        // Exponential backoff, capped at 2^6 * base.
        const Cycle shift = std::min<std::uint32_t>(head.denials - 1, 6);
        head.next_try = now + (cfg_.adm_backoff << shift);
        return false;
      }
      case AdmissionDecision::kShed:
        ++shed_;
        pending_.pop_front();
        return true;
    }
  }

  const std::uint32_t mc = amap_->mc_of(head.line);
  const NodeId dest = (*mc_nodes_)[mc];
  MemTxn txn;
  txn.line = head.line;
  txn.src_cc = node_;
  txn.dest_mc = dest;
  txn.write = head.write;
  txn.core = client_id_;
  txn.issued = now;
  txn.mshr_key = head.line;
  const TxnId id = txns_->create(txn);
  if (!request_port_->try_send_request(head.write, id, dest, now)) {
    // NI backpressure: not an admission event — refund the token so the
    // gate only charges requests that actually entered the fabric.
    txns_->retire(id);
    if (gate_ != nullptr) gate_->refund_admit();
    return false;
  }
  outstanding_.emplace(id, head.arrival);
  pending_.pop_front();
  return true;
}

void OpenLoopClient::cycle(Cycle now) {
  generate_arrivals(now);
  for (int i = 0; i < kMaxIssuesPerCycle && !pending_.empty(); ++i) {
    if (!try_issue_head(now)) break;
  }
}

void OpenLoopClient::deliver(const Packet& pkt, Cycle now) {
  assert(is_reply(pkt.type));
  const auto it = outstanding_.find(pkt.txn);
  if (it != outstanding_.end()) {
    ++completed_;
    e2e_.add(static_cast<double>(now - it->second));
    outstanding_.erase(it);
  }
  txns_->retire(pkt.txn);
}

void OpenLoopClient::reset_stats() {
  e2e_.reset();
  offered_ = 0;
  completed_ = 0;
  shed_ = 0;
  queue_drops_ = 0;
  defer_events_ = 0;
}

}  // namespace arinoc
