// Synthetic instruction/address stream generator implementing InstrSource
// from BenchmarkTraits. Deterministic given (traits, seed, core/warp grid).
//
// Address space layout: each core owns a private region sized by the
// benchmark's working set; a shared region of the same size follows all
// private regions and is touched with probability shared_frac (this is what
// makes the per-MC L2 banks useful across cores).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "gpu/instr.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {

class TraceGen : public InstrSource {
 public:
  TraceGen(const BenchmarkTraits& traits, std::uint32_t num_cores,
           std::uint32_t warps_per_core, std::uint32_t line_bytes,
           std::uint64_t seed);

  Instr next(std::uint32_t core, std::uint32_t warp) override;

  const BenchmarkTraits& traits() const { return traits_; }

 private:
  struct WarpState {
    Addr cursor = 0;  ///< Streaming pointer inside the active region.
    std::uint32_t ring_pos = 0;
    std::uint64_t instr_count = 0;  ///< For burst-phase modulation.
    std::vector<Addr> recent;  ///< Reuse ring (L1 locality source).
    Xoshiro256 rng{1};
  };

  WarpState& state(std::uint32_t core, std::uint32_t warp) {
    return states_[static_cast<std::size_t>(core) * warps_per_core_ + warp];
  }
  Addr fresh_address(std::uint32_t core, WarpState& ws);

  BenchmarkTraits traits_;
  std::uint32_t num_cores_;
  std::uint32_t warps_per_core_;
  std::uint32_t line_bytes_;
  Addr ws_bytes_;      ///< Private region size per core.
  Addr shared_base_;   ///< Start of the shared region.
  std::vector<WarpState> states_;
};

}  // namespace arinoc
