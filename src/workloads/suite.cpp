#include "workloads/suite.hpp"

namespace arinoc {

std::vector<std::string> all_benchmark_names() {
  std::vector<std::string> names;
  for (const auto& b : benchmark_suite()) names.push_back(b.name);
  return names;
}

std::vector<std::string> fig6_benchmarks() {
  return {"pathfinder", "hotspot", "srad", "bfs"};
}

std::vector<std::string> fig9_benchmarks() { return {"bfs", "mummergpu"}; }

std::vector<std::string> fig15_benchmarks() {
  return {"bfs", "b+tree", "hotspot", "pathfinder"};
}

std::vector<std::string> quick_benchmarks() {
  return {"bfs", "hotspot", "matrixMul"};
}

}  // namespace arinoc
