// Named benchmark selections used by the evaluation (which figure uses
// which subset of the 30-benchmark suite).
#pragma once

#include <string>
#include <vector>

#include "workloads/benchmark.hpp"

namespace arinoc {

/// All 30 benchmark names, suite order.
std::vector<std::string> all_benchmark_names();

/// Fig. 6 (queue occupancy): pathfinder, hotspot, srad, bfs.
std::vector<std::string> fig6_benchmarks();

/// Fig. 9 (priority levels): bfs, mummergpu.
std::vector<std::string> fig9_benchmarks();

/// Fig. 15 (virtual channels): bfs, b+tree, hotspot, pathfinder.
std::vector<std::string> fig15_benchmarks();

/// A small representative mix (one per sensitivity class) for quick runs.
std::vector<std::string> quick_benchmarks();

}  // namespace arinoc
