#include "workloads/benchmark.hpp"

namespace arinoc {

const char* sensitivity_name(Sensitivity s) {
  switch (s) {
    case Sensitivity::kHigh: return "high";
    case Sensitivity::kMedium: return "medium";
    case Sensitivity::kLow: return "low";
  }
  return "?";
}

namespace {

std::vector<BenchmarkTraits> build_suite() {
  using S = Sensitivity;
  // name, sens, mem_ratio, store, locality, stream, shared, lines, ws_kb
  return {
      // ---- 9 highly NoC-sensitive: memory-bound, poor reuse ----
      {"bfs",            S::kHigh, 0.42, 0.10, 0.15, 0.15, 0.30, 3.0, 1024},
      {"kmeans",         S::kHigh, 0.38, 0.18, 0.22, 0.60, 0.25, 1.8, 768},
      {"mummergpu",      S::kHigh, 0.40, 0.05, 0.12, 0.20, 0.35, 3.2, 1024},
      {"srad",           S::kHigh, 0.35, 0.25, 0.28, 0.75, 0.10, 1.4, 640},
      {"streamcluster",  S::kHigh, 0.36, 0.08, 0.20, 0.65, 0.30, 1.6, 896},
      {"cfd",            S::kHigh, 0.34, 0.20, 0.25, 0.55, 0.15, 2.0, 768},
      {"particlefilter", S::kHigh, 0.33, 0.15, 0.18, 0.35, 0.20, 2.4, 640},
      {"b+tree",         S::kHigh, 0.37, 0.06, 0.20, 0.25, 0.40, 2.8, 896},
      {"backprop",       S::kHigh, 0.32, 0.22, 0.30, 0.70, 0.15, 1.5, 512},
      // ---- 11 medium sensitivity ----
      {"hotspot",        S::kMedium, 0.26, 0.20, 0.45, 0.80, 0.10, 1.3, 384},
      {"pathfinder",     S::kMedium, 0.28, 0.15, 0.40, 0.85, 0.10, 1.2, 448},
      {"lud",            S::kMedium, 0.22, 0.18, 0.50, 0.70, 0.15, 1.4, 320},
      {"nw",             S::kMedium, 0.24, 0.16, 0.42, 0.75, 0.12, 1.3, 384},
      {"gaussian",       S::kMedium, 0.20, 0.14, 0.48, 0.80, 0.10, 1.2, 256},
      {"heartwall",      S::kMedium, 0.23, 0.12, 0.45, 0.60, 0.20, 1.6, 320},
      {"leukocyte",      S::kMedium, 0.21, 0.10, 0.52, 0.65, 0.15, 1.5, 256},
      {"nn",             S::kMedium, 0.25, 0.05, 0.38, 0.90, 0.05, 1.2, 512},
      {"blackscholes",   S::kMedium, 0.27, 0.30, 0.35, 0.95, 0.05, 1.1, 512},
      {"histogram",      S::kMedium, 0.24, 0.35, 0.40, 0.30, 0.30, 1.8, 256},
      {"transpose",      S::kMedium, 0.26, 0.45, 0.36, 0.50, 0.05, 2.0, 384},
      // ---- 10 low sensitivity: compute-bound, cache-friendly ----
      {"myocyte",        S::kLow, 0.08, 0.15, 0.75, 0.70, 0.10, 1.2, 128},
      {"lavaMD",         S::kLow, 0.10, 0.12, 0.70, 0.60, 0.20, 1.3, 160},
      {"dwt2d",          S::kLow, 0.12, 0.25, 0.65, 0.85, 0.05, 1.2, 192},
      {"matrixMul",      S::kLow, 0.11, 0.10, 0.78, 0.80, 0.15, 1.1, 128},
      {"convolution",    S::kLow, 0.12, 0.18, 0.72, 0.90, 0.05, 1.1, 160},
      {"fastWalsh",      S::kLow, 0.10, 0.30, 0.68, 0.85, 0.05, 1.2, 192},
      {"mergeSort",      S::kLow, 0.12, 0.35, 0.60, 0.55, 0.10, 1.4, 224},
      {"reduction",      S::kLow, 0.09, 0.08, 0.74, 0.95, 0.10, 1.1, 128},
      {"scalarProd",     S::kLow, 0.10, 0.06, 0.70, 0.95, 0.05, 1.1, 160},
      {"sortingNetworks",S::kLow, 0.11, 0.32, 0.66, 0.60, 0.08, 1.3, 192},
  };
}

}  // namespace

const std::vector<BenchmarkTraits>& benchmark_suite() {
  static const std::vector<BenchmarkTraits> suite = build_suite();
  return suite;
}

const BenchmarkTraits* find_benchmark(std::string_view name) {
  for (const auto& b : benchmark_suite()) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

std::vector<std::string> benchmarks_with(Sensitivity s) {
  std::vector<std::string> out;
  for (const auto& b : benchmark_suite()) {
    if (b.sensitivity == s) out.push_back(b.name);
  }
  return out;
}

}  // namespace arinoc
