#include "workloads/tracegen.hpp"

#include <algorithm>

namespace arinoc {

namespace {
constexpr std::size_t kReuseRing = 8;
}

TraceGen::TraceGen(const BenchmarkTraits& traits, std::uint32_t num_cores,
                   std::uint32_t warps_per_core, std::uint32_t line_bytes,
                   std::uint64_t seed)
    : traits_(traits),
      num_cores_(num_cores),
      warps_per_core_(warps_per_core),
      line_bytes_(line_bytes),
      ws_bytes_(static_cast<Addr>(traits.working_set_kb) * 1024),
      shared_base_(static_cast<Addr>(num_cores) *
                   static_cast<Addr>(traits.working_set_kb) * 1024),
      states_(static_cast<std::size_t>(num_cores) * warps_per_core) {
  for (std::uint32_t c = 0; c < num_cores; ++c) {
    for (std::uint32_t w = 0; w < warps_per_core; ++w) {
      WarpState& ws = state(c, w);
      ws.rng = Xoshiro256(seed * 0x10001 + c * 977 + w * 131 + 7);
      ws.recent.assign(kReuseRing, 0);
      // Stagger warp streams across the core's private region.
      const Addr lines = ws_bytes_ / line_bytes_;
      ws.cursor = (static_cast<Addr>(w) * lines / warps_per_core) *
                  line_bytes_;
    }
  }
}

Addr TraceGen::fresh_address(std::uint32_t core, WarpState& ws) {
  const bool shared = ws.rng.chance(traits_.shared_frac);
  const Addr base =
      shared ? shared_base_ : static_cast<Addr>(core) * ws_bytes_;
  const Addr region_lines = ws_bytes_ / line_bytes_;
  Addr line_index;
  if (ws.rng.chance(traits_.stream_frac)) {
    // Streaming: advance the warp's cursor (sequential lines hit open DRAM
    // rows and prefill caches until the region wraps).
    ws.cursor = (ws.cursor + line_bytes_) % ws_bytes_;
    line_index = ws.cursor / line_bytes_;
  } else {
    line_index = ws.rng.next_below(region_lines);
  }
  return base + line_index * line_bytes_;
}

Instr TraceGen::next(std::uint32_t core, std::uint32_t warp) {
  WarpState& ws = state(core, warp);
  Instr instr;
  // Phase-modulated memory intensity: alternate memory-heavy and
  // compute-heavy halves of each burst period (kernel-phase behaviour).
  double mem_ratio = traits_.mem_ratio;
  if (traits_.burstiness > 0.0 && traits_.burst_period > 1) {
    const std::uint64_t pos = ws.instr_count++ % traits_.burst_period;
    const bool hot = pos < traits_.burst_period / 2;
    mem_ratio *= hot ? (1.0 + traits_.burstiness)
                     : (1.0 - traits_.burstiness);
    mem_ratio = std::min(mem_ratio, 0.95);
  }
  if (!ws.rng.chance(mem_ratio)) {
    return instr;  // ALU op.
  }
  instr.is_mem = true;
  instr.is_store = ws.rng.chance(traits_.store_frac);
  // Binomial line count with mean lines_mean in [1, kMaxLines].
  const double p_extra =
      std::clamp((traits_.lines_mean - 1.0) / (Instr::kMaxLines - 1), 0.0, 1.0);
  std::uint8_t n = 1;
  for (std::uint8_t i = 1; i < Instr::kMaxLines; ++i) {
    if (ws.rng.chance(p_extra)) ++n;
  }
  instr.num_lines = n;
  for (std::uint8_t i = 0; i < n; ++i) {
    Addr addr = 0;
    if (ws.rng.chance(traits_.locality)) {
      addr = ws.recent[ws.rng.next_below(kReuseRing)];
    }
    if (addr == 0) addr = fresh_address(core, ws);  // Ring slot still empty.
    instr.lines[i] = addr;
    ws.recent[ws.ring_pos] = addr;
    ws.ring_pos = (ws.ring_pos + 1) % kReuseRing;
  }
  return instr;
}

}  // namespace arinoc
