#include "workloads/tracefile.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace arinoc {

Trace Trace::parse(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;  // Blank/comment line.
    Instr instr;
    if (op == "A") {
      trace.append(instr);
      continue;
    }
    if (op != "L" && op != "S") {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": unknown op '" + op + "'");
    }
    instr.is_mem = true;
    instr.is_store = (op == "S");
    std::string tok;
    while (ls >> tok) {
      if (instr.num_lines >= Instr::kMaxLines) {
        throw std::runtime_error("trace line " + std::to_string(lineno) +
                                 ": more than 4 addresses");
      }
      try {
        instr.lines[instr.num_lines++] =
            static_cast<Addr>(std::stoull(tok, nullptr, 0));
      } catch (const std::exception&) {
        throw std::runtime_error("trace line " + std::to_string(lineno) +
                                 ": bad address '" + tok + "'");
      }
    }
    if (instr.num_lines == 0) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": memory op without address");
    }
    trace.append(instr);
  }
  if (trace.empty()) throw std::runtime_error("empty trace");
  return trace;
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  try {
    return parse(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::string Trace::to_text() const {
  std::ostringstream os;
  for (const Instr& i : instrs_) {
    if (!i.is_mem) {
      os << "A\n";
      continue;
    }
    os << (i.is_store ? "S" : "L");
    for (std::uint8_t k = 0; k < i.num_lines; ++k) {
      os << " 0x" << std::hex << i.lines[k] << std::dec;
    }
    os << "\n";
  }
  return os.str();
}

Addr Trace::max_private_addr() const {
  Addr max_addr = 0;
  for (const Instr& i : instrs_) {
    for (std::uint8_t k = 0; k < i.num_lines; ++k) {
      if (!(i.lines[k] & kSharedBit)) {
        max_addr = std::max(max_addr, i.lines[k]);
      }
    }
  }
  return max_addr;
}

TraceFileSource::TraceFileSource(Trace trace, std::uint32_t num_cores,
                                 std::uint32_t warps_per_core,
                                 std::uint32_t line_bytes)
    : trace_(std::move(trace)),
      num_cores_(num_cores),
      warps_per_core_(warps_per_core),
      line_bytes_(line_bytes),
      cursor_(static_cast<std::size_t>(num_cores) * warps_per_core) {
  // Private regions are sized to the trace footprint, line-aligned up.
  const Addr footprint = trace_.max_private_addr() + line_bytes;
  core_region_bytes_ = (footprint + line_bytes - 1) / line_bytes * line_bytes;
  // Stagger warp start positions through the stream.
  for (std::uint32_t c = 0; c < num_cores; ++c) {
    for (std::uint32_t w = 0; w < warps_per_core; ++w) {
      cursor_[static_cast<std::size_t>(c) * warps_per_core + w] =
          (static_cast<std::size_t>(w) * trace_.size()) / warps_per_core;
    }
  }
}

Instr TraceFileSource::next(std::uint32_t core, std::uint32_t warp) {
  std::size_t& cur =
      cursor_[static_cast<std::size_t>(core) * warps_per_core_ + warp];
  Instr instr = trace_.at(cur);
  cur = (cur + 1) % trace_.size();
  if (instr.is_mem) {
    for (std::uint8_t k = 0; k < instr.num_lines; ++k) {
      Addr a = instr.lines[k];
      if (a & Trace::kSharedBit) {
        // Shared address: same location for every core, placed after all
        // private regions.
        a = (a & ~Trace::kSharedBit) + core_region_bytes_ * num_cores_;
      } else {
        a += core_region_bytes_ * core;  // Relocate into the core's region.
      }
      instr.lines[k] = a & ~static_cast<Addr>(line_bytes_ - 1);
    }
  }
  return instr;
}

}  // namespace arinoc
