// Pace profiles: time-varying open-loop arrival rates (overload robustness).
//
// A PaceProfile maps a simulation cycle to an offered request rate in
// requests/cycle/CC-node. Closed-loop workloads can never push the fabric
// past its service capacity — the cores stall and self-throttle — so the
// saturation cliff the paper argues about stays invisible. An open-loop
// profile keeps offering traffic at the scheduled rate no matter how the
// system responds, the way "millions of users" would keep arriving at a
// saturated service.
//
// Built-in shapes (all rates per CC per cycle):
//  * constant    — flat rate.
//  * diurnal     — sinusoidal ramp around the base rate (day/night swing).
//  * burst       — square wave: `peak`x the base rate for `duty` of each
//                  period, base rate otherwise (kernel-phase bursts).
//  * flash       — flat base with one flash-crowd episode: `mult`x the base
//                  rate during [at, at+len) (the overload event the chaos
//                  harness drives).
//  * file        — compact pace file of (cycle, rate) breakpoints, stepwise
//                  (each rate holds until the next breakpoint).
//
// Spec strings (parse_spec):
//   constant:0.05
//   diurnal:0.05,period=16000,amp=0.6
//   burst:0.05,period=4000,duty=0.25,peak=4
//   flash:0.03,at=4000,len=3000,mult=8
//   <path>            (anything containing '/' or ending in .pace)
//
// Pace file format (load):
//   arinoc-pace v1
//   # comment
//   <cycle> <rate>    (ascending cycles; rate holds until the next line)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace arinoc {

enum class PaceKind { kConstant, kDiurnal, kBurst, kFlashCrowd, kFile };

const char* pace_kind_name(PaceKind k);

class PaceProfile {
 public:
  /// Flat profile at `rate` requests/cycle/CC (the default).
  explicit PaceProfile(double rate = 0.02);

  /// Parses a spec string (see header comment). Specs that look like paths
  /// (contain '/' or end in ".pace") are loaded as pace files. Throws
  /// std::invalid_argument with a precise message on any malformed spec.
  static PaceProfile parse_spec(const std::string& spec);

  /// Loads a pace file. Throws std::invalid_argument when the file is
  /// missing/unreadable or malformed (fail-fast: callers surface this as a
  /// usage error before any simulation work starts).
  static PaceProfile load(const std::string& path);

  /// Offered rate at `now`, scaled by `scale` (the load factor), clamped to
  /// [0, 1] — at most one new request per CC per cycle enters the arrival
  /// accumulator.
  double rate_at(Cycle now, double scale = 1.0) const;

  /// Peak unscaled rate over one period/episode (sweep normalization).
  double peak_rate() const;

  PaceKind kind() const { return kind_; }
  double base_rate() const { return base_; }

  /// Human-readable one-liner ("flash:0.03,at=4000,len=3000,mult=8").
  std::string describe() const;

 private:
  PaceKind kind_ = PaceKind::kConstant;
  double base_ = 0.02;
  // Diurnal / burst shape.
  Cycle period_ = 16000;
  double amp_ = 0.6;    ///< Diurnal swing fraction of base.
  double duty_ = 0.25;  ///< Burst high-phase fraction of the period.
  double peak_ = 4.0;   ///< Burst high-phase multiplier.
  // Flash crowd episode.
  Cycle flash_at_ = 4000;
  Cycle flash_len_ = 3000;
  double flash_mult_ = 8.0;
  // File-driven breakpoints (ascending, stepwise-held).
  struct Breakpoint {
    Cycle cycle;
    double rate;
  };
  std::vector<Breakpoint> points_;
  std::string source_;  ///< Pace-file path, for describe().
};

}  // namespace arinoc
