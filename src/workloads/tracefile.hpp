// Trace-driven workloads: replaces the synthetic generators with a
// recorded instruction stream, so users can drive the simulator with
// traces captured from real applications (e.g. converted from GPGPU-Sim or
// NVBit output).
//
// Format (text, one record per line, '#' comments):
//   A                          — ALU warp instruction
//   L <addr> [<addr> ...]      — load touching up to 4 line addresses (hex
//                                 or decimal)
//   S <addr> [<addr> ...]      — store
//
// The file holds one canonical warp stream; TraceFileSource hands each
// (core, warp) its own cursor into the stream, offset so that warps do not
// run in lock-step (matching how real warps interleave one kernel's
// instructions). Addresses of different cores are relocated into disjoint
// regions unless the record's address has the shared-region bit set (bit
// 47), in which case it is used verbatim — letting traces express both
// private and shared data.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "gpu/instr.hpp"

namespace arinoc {

/// Parsed trace: a sequence of warp instructions.
class Trace {
 public:
  /// Parses from a stream; throws std::runtime_error on malformed input.
  static Trace parse(std::istream& in);
  /// Parses a file; throws std::runtime_error (includes the path).
  static Trace load(const std::string& path);

  /// Serializes back to the trace text format (round-trip safe).
  std::string to_text() const;

  void append(const Instr& instr) { instrs_.push_back(instr); }
  std::size_t size() const { return instrs_.size(); }
  bool empty() const { return instrs_.empty(); }
  const Instr& at(std::size_t i) const { return instrs_[i]; }

  /// Largest private (non-shared) address in the trace, for relocation.
  Addr max_private_addr() const;

  /// Bit marking an address as shared across cores (used verbatim).
  static constexpr Addr kSharedBit = Addr{1} << 47;

 private:
  std::vector<Instr> instrs_;
};

/// InstrSource that replays a Trace for every (core, warp), looping.
class TraceFileSource : public InstrSource {
 public:
  TraceFileSource(Trace trace, std::uint32_t num_cores,
                  std::uint32_t warps_per_core, std::uint32_t line_bytes);

  Instr next(std::uint32_t core, std::uint32_t warp) override;

  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
  std::uint32_t num_cores_;
  std::uint32_t warps_per_core_;
  std::uint32_t line_bytes_;
  Addr core_region_bytes_;
  std::vector<std::size_t> cursor_;  ///< Per (core, warp).
};

}  // namespace arinoc
