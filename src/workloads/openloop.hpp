// Open-loop serving clients (overload robustness layer).
//
// One OpenLoopClient per CC node replaces the SIMT core when
// Config::open_loop is set: instead of warps that stall on outstanding
// loads (closed loop — the workload self-throttles at capacity), the client
// generates memory requests at the rate a PaceProfile schedules,
// independent of how the system is coping. Arrivals that cannot enter the
// fabric queue up in the client; under sustained overload the queue grows
// without bound (capped at `queue_cap`, beyond which arrivals are dropped
// and counted) — exactly the behaviour of a service front door under more
// offered load than it can serve.
//
// The client is also the reply-side PacketSink for its node, so it owns
// end-to-end latency accounting: each sample runs from the request's
// *scheduled arrival* (not NI accept) to reply delivery, making queueing
// delay — the quantity SLOs are written against — part of the measurement.
//
// With an AdmissionGate attached, every send attempt first asks admission:
//  * admit — the request proceeds to the NI (a failed NI accept refunds the
//    token so admission never double-charges backpressure);
//  * defer — the request stays queued and backs off exponentially
//    (base * 2^denials, capped); after `retry_max` denials it is shed;
//  * shed  — the request is dropped on the spot and counted.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpu/core.hpp"
#include "mem/address_map.hpp"
#include "mem/txn.hpp"
#include "noc/admission.hpp"
#include "noc/ni.hpp"
#include "workloads/pace.hpp"

namespace arinoc {

class OpenLoopClient : public PacketSink {
 public:
  OpenLoopClient(const Config& cfg, std::uint32_t client_id, NodeId node,
                 const PaceProfile* pace, TxnPool* txns,
                 const AddressMap* amap, const std::vector<NodeId>* mc_nodes,
                 RequestPort* request_port, AdmissionGate* gate);

  /// One interconnect cycle: accrue scheduled arrivals, then try to move
  /// queued requests through admission and into the request NI.
  void cycle(Cycle now);

  // ---- PacketSink (reply-network ejection side) ----
  void deliver(const Packet& pkt, Cycle now) override;

  // ---- Serving stats ----
  std::uint64_t offered() const { return offered_; }
  std::uint64_t completed() const { return completed_; }
  /// Dropped requests: admission sheds + retry exhaustion + queue overflow.
  std::uint64_t shed() const { return shed_; }
  std::uint64_t queue_drops() const { return queue_drops_; }
  /// Admission defer events (each backoff round counts once).
  std::uint64_t defer_events() const { return defer_events_; }
  std::size_t backlog() const { return pending_.size(); }
  std::size_t in_flight() const { return outstanding_.size(); }
  /// Scheduled-arrival -> reply-delivery latency distribution.
  const LogHistogram& e2e_latency() const { return e2e_; }
  void reset_stats();

  NodeId node() const { return node_; }

 private:
  struct PendingReq {
    Cycle arrival;             ///< Scheduled arrival cycle.
    Addr line;                 ///< Line-aligned target address.
    bool write;
    std::uint32_t denials = 0; ///< Admission defer count (backoff driver).
    Cycle next_try = 0;        ///< Earliest re-attempt after a defer.
  };

  void generate_arrivals(Cycle now);
  Addr next_address();
  /// Attempts to issue the queue head; returns false when the head must
  /// stay (backoff pending, admission defer, or NI backpressure).
  bool try_issue_head(Cycle now);

  Config cfg_;
  std::uint32_t client_id_;
  NodeId node_;
  const PaceProfile* pace_;
  TxnPool* txns_;
  const AddressMap* amap_;
  const std::vector<NodeId>* mc_nodes_;
  RequestPort* request_port_;
  AdmissionGate* gate_;  ///< Null when admission is disabled.

  // Deterministic arrival schedule: Q32 accumulator, seeded with a per-node
  // phase offset so clients do not inject in lockstep.
  std::uint64_t arrival_accum_q32_;
  Xoshiro256 rng_;
  Addr region_base_;   ///< Private address region of this client.
  Addr region_bytes_;
  Addr cursor_ = 0;    ///< Streaming pointer within the region.

  std::deque<PendingReq> pending_;
  std::unordered_map<TxnId, Cycle> outstanding_;  ///< Txn -> arrival cycle.

  LogHistogram e2e_;
  std::uint64_t offered_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t defer_events_ = 0;
};

}  // namespace arinoc
