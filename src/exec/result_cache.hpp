// On-disk result cache for simulation cells.
//
// A cell is keyed by FNV-1a-64 over (canonicalized Config, scheme name,
// benchmark name, reply-fabric variant, library version); the value is the
// cell's full Metrics record, serialized losslessly (integers in decimal,
// doubles in hexfloat), so a cache hit reproduces byte-identical CSV/JSON
// output. Entries carry the full key material and are verified on load, so
// a 64-bit hash collision degrades to a miss, never a wrong result.
//
// Writes go through a temp file + rename: concurrent writers (pool workers,
// or two sweeps sharing a directory) can only ever publish complete entries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"

namespace arinoc::exec {

/// FNV-1a 64-bit — stable across platforms, good enough for file naming
/// (correctness never depends on it: entries verify their key material).
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// The full key material for one cell. `fabric` distinguishes the reply
/// fabric variant: "da2mesh" for the overlay, otherwise fabric_cache_tag().
std::string cache_key_string(const Config& cfg, std::string_view scheme,
                             std::string_view benchmark,
                             std::string_view fabric);

/// Cache-key fragment naming the fabric a cell runs on. Generated fabrics
/// are identified by their kind (the generator parameters are already in
/// the canonical config); file-driven fabrics append an FNV-1a-64 hash of
/// the topology file *contents*, so editing the file invalidates cached
/// results even when its path is unchanged. An unreadable file hashes as
/// "file:unreadable" (the simulation itself will fail the cell).
std::string fabric_cache_tag(const Config& cfg);

/// Lossless flat-text Metrics serialization (the cache value format).
std::string serialize_metrics(const Metrics& m);
/// Inverse of serialize_metrics; nullopt on malformed/unknown-layout input.
std::optional<Metrics> deserialize_metrics(const std::string& text);

class ResultCache {
 public:
  /// `dir` is created on first store. An empty dir disables the cache
  /// (every lookup misses, stores are dropped).
  explicit ResultCache(std::string dir) : dir_(std::move(dir)) {}

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Returns the cached Metrics for this key material, or nullopt.
  std::optional<Metrics> load(const std::string& key_material) const;

  /// Publishes a result. Failures (unwritable dir, full disk) are silently
  /// ignored — the cache is an accelerator, never a correctness dependency.
  void store(const std::string& key_material, const Metrics& m) const;

  /// Default directory: $ARINOC_CACHE_DIR, else ".arinoc-cache".
  static std::string default_dir();

 private:
  std::string entry_path(const std::string& key_material) const;

  std::string dir_;
};

}  // namespace arinoc::exec
