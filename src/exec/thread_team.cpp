#include "exec/thread_team.hpp"

#include <algorithm>

namespace arinoc::exec {

namespace {
constexpr unsigned kGenShift = 32;
constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << kGenShift) - 1;
}  // namespace

ThreadTeam::ThreadTeam(unsigned threads) : threads_(std::max(1u, threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadTeam::claim(std::uint64_t gen, std::size_t n, std::size_t* idx) {
  std::uint64_t cur = cursor_.load(std::memory_order_acquire);
  for (;;) {
    if ((cur >> kGenShift) != gen) return false;  // superseded fork
    const std::size_t i = static_cast<std::size_t>(cur & kIdxMask);
    if (i >= n) return false;
    if (cursor_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      *idx = i;
      return true;
    }
  }
}

void ThreadTeam::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lk(mu_);
    gen = ++gen_;
    n_ = n;
    fn_ = &fn;
    done_.store(0, std::memory_order_relaxed);
    cursor_.store(gen << kGenShift, std::memory_order_release);
  }
  cv_.notify_all();

  std::size_t i;
  while (claim(gen, n, &i)) {
    fn(i);
    done_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Join: a short spin catches workers finishing within a cycle's worth of
  // work; past that, yield so single-core hosts actually schedule them.
  int spins = 0;
  while (done_.load(std::memory_order_acquire) < n) {
    if (++spins > 128) std::this_thread::yield();
  }
}

void ThreadTeam::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    std::size_t n;
    std::uint64_t gen;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return shutdown_ || gen_ != seen; });
      if (shutdown_) return;
      seen = gen_;
      gen = gen_;
      fn = fn_;
      n = n_;
    }
    std::size_t i;
    while (claim(gen, n, &i)) {
      (*fn)(i);
      done_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

}  // namespace arinoc::exec
