// Persistent fork-join worker team for intra-simulation parallelism.
//
// The domain-decomposed stepping loop forks once per simulated cycle (tens
// of thousands of forks per run), which is far too frequent for the
// mutex-per-task JobPool used by the experiment runner. A ThreadTeam keeps
// its workers parked on a condition variable between cycles and wakes them
// all with a single generation bump; joins spin briefly and then yield so
// oversubscribed or single-core hosts degrade gracefully instead of
// burning the core the workers need.
//
// Determinism contract: run() distributes task indices dynamically (an
// atomic cursor), so WHICH thread runs a task is not reproducible — only
// tasks that touch disjoint state may share a team. The simulator's
// bit-identity guarantee therefore lives in the domain decomposition (each
// task owns its domain's routers and mailboxes), not here.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arinoc::exec {

class ThreadTeam {
 public:
  /// Spawns threads - 1 workers (the caller of run() is the remaining
  /// thread). threads <= 1 spawns nothing and run() executes inline.
  explicit ThreadTeam(unsigned threads);
  ~ThreadTeam();
  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  unsigned threads() const { return threads_; }

  /// Runs fn(i) exactly once for every i in [0, n), spread across the team
  /// (caller included), and returns once all calls have finished. All
  /// writes made by the tasks are visible to the caller on return.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims the next unclaimed task index of generation `gen`, or returns
  /// false when that generation has no tasks left (or has been superseded).
  bool claim(std::uint64_t gen, std::size_t n, std::size_t* idx);

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t gen_ = 0;     // guarded by mu_; bumped once per fork
  bool shutdown_ = false;     // guarded by mu_
  std::size_t n_ = 0;         // guarded by mu_ (read by workers after wake)
  const std::function<void(std::size_t)>* fn_ = nullptr;  // guarded by mu_

  // Packs (generation << 32 | next task index). Tagging the cursor with the
  // generation lets a worker that wakes late — after the caller has already
  // observed completion and started the next fork — fail its claim instead
  // of stealing a task from the new generation with the old closure.
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::size_t> done_{0};
};

}  // namespace arinoc::exec
