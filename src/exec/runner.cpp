#include "exec/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/experiment.hpp"
#include "core/watchdog.hpp"
#include "exec/job_pool.hpp"
#include "exec/result_cache.hpp"
#include "obs/attr.hpp"
#include "obs/regress/provenance.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc::exec {

namespace {

/// Serialized stderr progress line: [done/total] + elapsed + ETA.
class Progress {
 public:
  Progress(bool enabled, std::size_t total)
      : enabled_(enabled && total > 0),
        total_(total),
        start_(std::chrono::steady_clock::now()) {}

  void tick(const CellResult& r) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double eta =
        elapsed / static_cast<double>(done_) *
        static_cast<double>(total_ - done_);
    std::fprintf(stderr,
                 "\r[%3zu/%3zu] %3.0f%% elapsed %5.1fs eta %5.1fs  %s%s/%s "
                 "%-12s\x1b[K",
                 done_, total_, 100.0 * static_cast<double>(done_) /
                                    static_cast<double>(total_),
                 elapsed, eta, r.from_cache ? "(cached) " : "",
                 r.scheme.c_str(), r.benchmark.c_str(),
                 r.ok() ? "" : "[error]");
    if (done_ == total_) std::fputc('\n', stderr);
    std::fflush(stderr);
  }

 private:
  bool enabled_;
  std::size_t total_;
  std::size_t done_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
};

void record_error(CellResult& r, std::string kind, const char* what,
                  int exit_status, std::string detail = {}) {
  r.error = what;
  r.error_kind = std::move(kind);
  r.error_detail = std::move(detail);
  r.exit_status = exit_status;
  r.metrics = Metrics{};
}

/// Filesystem-safe slug for telemetry file names.
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '-';
  }
  return out.empty() ? std::string("cell") : out;
}

/// Writes one per-cell artifact (telemetry series, attribution report) under
/// `dir` with the cell-identity file name; returns the path, "" on failure.
std::string write_cell_artifact(const std::string& dir, const CellResult& r,
                                const char* ext, const std::string& body) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/" + sanitize(r.point) + "_" +
                           sanitize(r.scheme) + "_" + sanitize(r.benchmark) +
                           ext;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return {};
  out << body;
  return out ? path : std::string{};
}

}  // namespace

ExperimentRunner::ExperimentRunner(Config base, ExecOptions opts)
    : base_(std::move(base)), opts_(std::move(opts)) {}

Config ExperimentRunner::resolve(const CellSpec& cell) const {
  return resolve_cell_config(base_, cell.scheme, cell.benchmark, cell.tweak);
}

std::vector<CellResult> ExperimentRunner::run(
    const std::vector<CellSpec>& cells) {
  stats_ = Stats{};
  stats_.total = cells.size();

  const ResultCache cache(
      opts_.cache_enabled
          ? (opts_.cache_dir.empty() ? ResultCache::default_dir()
                                     : opts_.cache_dir)
          : std::string{});

  // Phase 1 (serial): identity + full config resolution, so every cell's
  // seed and cache key are fixed before any worker touches anything.
  std::vector<CellResult> results(cells.size());
  std::vector<Config> configs(cells.size());
  std::vector<bool> runnable(cells.size(), false);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    results[i].point = cells[i].point;
    results[i].scheme = scheme_name(cells[i].scheme);
    results[i].benchmark = cells[i].benchmark;
    try {
      configs[i] = resolve(cells[i]);
      runnable[i] = true;
      results[i].fabric =
          cells[i].da2mesh ? "da2mesh" : fabric_cache_tag(configs[i]);
      results[i].config_hash = obs::regress::config_hash_hex(configs[i]);
    } catch (const std::invalid_argument& e) {
      record_error(results[i], "config", e.what(), 2);
    }
  }

  // Intra-simulation threads ride along on every resolved config, after the
  // cache keys above were computed: `threads` is excluded from the canonical
  // config string, so keys (and golden baselines) are identical across
  // thread counts — as are the results themselves.
  if (opts_.threads != 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (runnable[i]) configs[i].threads = opts_.threads;
    }
  }
  // Cap the pool so jobs x per-simulation threads never oversubscribes the
  // host: cell parallelism and domain parallelism compete for the same
  // cores, and oversubscription just adds barrier jitter.
  unsigned jobs = opts_.jobs;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned per_cell = opts_.threads == 0 ? hw : opts_.threads;
  if (per_cell > 1) {
    const unsigned want = jobs == 0 ? hw : jobs;
    const unsigned capped = std::max(1u, hw / per_cell);
    if (capped < want) {
      std::fprintf(stderr,
                   "exec: capping jobs %u -> %u (%u simulation threads per "
                   "cell, %u hardware threads)\n",
                   want, capped, per_cell, hw);
      jobs = capped;
    }
  }

  // Phase 2 (parallel): each worker owns exactly one result slot.
  Progress progress(opts_.progress, cells.size());
  {
    JobPool pool(jobs);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!runnable[i]) {
        progress.tick(results[i]);
        continue;
      }
      pool.submit([this, i, &cells, &configs, &results, &cache, &progress] {
        CellResult& r = results[i];
        const std::string key =
            cache_key_string(configs[i], r.scheme, r.benchmark, r.fabric);
        // Sampling and attribution cells always simulate: a cache hit would
        // return the aggregate Metrics but skip producing the per-cell
        // telemetry series / attribution report.
        const bool sampling = opts_.sample_interval > 0;
        const bool attributing = !opts_.attr_dir.empty();
        std::optional<Metrics> cached;
        if (!sampling && !attributing) cached = cache.load(key);
        if (cached) {
          r.metrics = *cached;
          r.from_cache = true;
        } else {
          try {
            const BenchmarkTraits* traits = find_benchmark(r.benchmark);
            if (traits == nullptr) {
              throw std::invalid_argument("unknown benchmark '" +
                                          r.benchmark + "'");
            }
            GpgpuSim sim(configs[i], *traits, cells[i].da2mesh);
            if (sampling) sim.enable_sampling(opts_.sample_interval);
            obs::LatencyAttributor attr(
                opts_.attr_window > 0 ? opts_.attr_window
                                      : obs::LatencyAttributor::kDefaultWindow);
            if (attributing) sim.attach_attributor(&attr);
            sim.run_with_warmup();
            if (sampling) sim.flush_sampler();
            r.metrics = sim.collect();
            if (sampling) {
              const std::string dir = opts_.telemetry_dir.empty()
                                          ? std::string("arinoc-telemetry")
                                          : opts_.telemetry_dir;
              r.telemetry_path = write_cell_artifact(
                  dir, r, ".jsonl", sim.sampler()->to_jsonl());
            }
            if (attributing) {
              r.attr_path = write_cell_artifact(opts_.attr_dir, r, ".json",
                                                attr.to_json() + "\n");
            }
            if (!sampling && !attributing) cache.store(key, r.metrics);
          } catch (const WatchdogTrip& trip) {
            record_error(r, watchdog_trip_name(trip.kind()), trip.what(),
                         trip.exit_status(), trip.dump());
          } catch (const std::invalid_argument& e) {
            record_error(r, "config", e.what(), 2);
          } catch (const std::exception& e) {
            record_error(r, "runtime", e.what(), 1);
          }
        }
        progress.tick(r);
      });
    }
    pool.wait_idle();
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].from_cache) ++stats_.cache_hits;
    if (!results[i].ok()) ++stats_.errors;
    if (runnable[i] && !results[i].from_cache) ++stats_.simulated;
  }
  return results;
}

}  // namespace arinoc::exec
