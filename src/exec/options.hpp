// Shared command-line / environment plumbing for ExecOptions, used by the
// bench binaries and example drivers so every one of them speaks the same
// dialect:
//
//   --jobs N             worker threads (0 = hardware concurrency)
//   --threads N          network threads per simulation (1 = serial,
//                        0 = auto; bit-identical across values)
//   --no-cache           disable the on-disk result cache
//   --cache-dir D        result-cache directory
//   --sample-interval N  telemetry sample every N cycles (0 = off)
//   --telemetry-dir D    per-cell telemetry JSONL directory
//   --attr-dir D         per-cell latency-attribution report directory
//                        (setting it turns attribution on for every cell)
//
// Environment fallbacks (read first, flags override): ARINOC_JOBS,
// ARINOC_THREADS,
// ARINOC_NO_CACHE (any value), ARINOC_CACHE_DIR, ARINOC_SAMPLE_INTERVAL,
// ARINOC_TELEMETRY_DIR, ARINOC_ATTR_DIR. Progress/ETA reporting defaults to
// on when stderr is a terminal.
#pragma once

#include "exec/runner.hpp"

namespace arinoc::exec {

/// Baseline options from the environment. `default_cache` is what the
/// binary wants when neither ARINOC_NO_CACHE nor --no-cache is present
/// (benches default to caching ON so re-runs only simulate changed cells).
ExecOptions options_from_env(bool default_cache);

/// Consumes the exec flags from argv (compacting it in place and updating
/// argc) on top of env defaults; leaves unrelated flags for the caller.
/// Returns false (after printing to stderr) on a malformed exec flag.
bool parse_exec_flags(int& argc, char** argv, ExecOptions& opts);

/// One-call convenience for binaries whose only flags are the exec flags:
/// env + argv, exits(2) on malformed or leftover unknown arguments.
ExecOptions require_exec_flags(int argc, char** argv,
                               bool default_cache = true);

}  // namespace arinoc::exec
