#include "exec/result_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <type_traits>

#include "common/version.hpp"

namespace arinoc::exec {

namespace {

constexpr const char kFormatTag[] = "arinoc-cache-v1";

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string fabric_cache_tag(const Config& cfg) {
  if (cfg.fabric != "file") return cfg.fabric;
  std::ifstream in(cfg.topology_file, std::ios::binary);
  if (!in) return "file:unreadable";
  std::ostringstream contents;
  contents << in.rdbuf();
  return "file:" + hex64(fnv1a64(contents.str()));
}

std::string cache_key_string(const Config& cfg, std::string_view scheme,
                             std::string_view benchmark,
                             std::string_view fabric) {
  std::ostringstream os;
  os << "version=" << kArinocVersion << '\n'
     << "scheme=" << scheme << '\n'
     << "benchmark=" << benchmark << '\n'
     << "fabric=" << fabric << '\n'
     << cfg.canonical_string();
  return os.str();
}

std::string serialize_metrics(const Metrics& m) {
  std::ostringstream os;
  auto u = [&os](const char* name, std::uint64_t v) {
    os << name << ' ' << v << '\n';
  };
  auto d = [&os](const char* name, double v) {
    os << name << ' ' << fmt_double(v) << '\n';
  };
  u("cycles", m.cycles);
  u("warp_instructions", m.warp_instructions);
  d("ipc", m.ipc);
  d("request_latency", m.request_latency);
  d("reply_latency", m.reply_latency);
  d("request_latency_p50", m.request_latency_p50);
  d("request_latency_p95", m.request_latency_p95);
  d("request_latency_p99", m.request_latency_p99);
  d("reply_latency_p50", m.reply_latency_p50);
  d("reply_latency_p95", m.reply_latency_p95);
  d("reply_latency_p99", m.reply_latency_p99);
  u("mc_stall_cycles", m.mc_stall_cycles);
  for (int i = 0; i < 4; ++i) {
    u(("flits_by_type" + std::to_string(i)).c_str(), m.flits_by_type[i]);
    u(("packets_by_type" + std::to_string(i)).c_str(), m.packets_by_type[i]);
    d(("latency_p99_by_type" + std::to_string(i)).c_str(),
      m.latency_p99_by_type[i]);
  }
  d("reply_injection_util", m.reply_injection_util);
  d("reply_internal_util", m.reply_internal_util);
  d("request_injection_util", m.request_injection_util);
  d("request_internal_util", m.request_internal_util);
  d("ni_occupancy_pkts", m.ni_occupancy_pkts);
  d("l1_hit_rate", m.l1_hit_rate);
  d("l2_hit_rate", m.l2_hit_rate);
  d("dram_row_hit_rate", m.dram_row_hit_rate);
  u("flits_corrupted", m.flits_corrupted);
  u("packets_corrupted", m.packets_corrupted);
  u("packets_retransmitted", m.packets_retransmitted);
  u("packets_recovered", m.packets_recovered);
  u("packets_lost", m.packets_lost);
  u("duplicates_dropped", m.duplicates_dropped);
  u("credits_lost", m.credits_lost);
  u("link_stall_events", m.link_stall_events);
  u("port_failures", m.port_failures);
  u("requests_offered", m.requests_offered);
  u("requests_completed", m.requests_completed);
  u("requests_shed", m.requests_shed);
  u("requests_deferred", m.requests_deferred);
  u("queue_drops", m.queue_drops);
  d("offered_rate", m.offered_rate);
  d("goodput", m.goodput);
  d("e2e_latency_p50", m.e2e_latency_p50);
  d("e2e_latency_p99", m.e2e_latency_p99);
  d("e2e_latency_p999", m.e2e_latency_p999);
  d("request_latency_p999", m.request_latency_p999);
  d("reply_latency_p999", m.reply_latency_p999);
  u("degrade_transitions", m.degrade_transitions);
  u("cycles_normal", m.cycles_normal);
  u("cycles_throttled", m.cycles_throttled);
  u("cycles_shedding", m.cycles_shedding);
  u("watchdog_pre_trips", m.watchdog_pre_trips);
  u("act_noc_link_flits", m.activity.noc_link_flits);
  u("act_noc_buffer_ops", m.activity.noc_buffer_ops);
  u("act_noc_crossbar", m.activity.noc_crossbar);
  u("act_noc_retx_flits", m.activity.noc_retx_flits);
  u("act_dram_activates", m.activity.dram_activates);
  u("act_dram_accesses", m.activity.dram_accesses);
  u("act_l2_accesses", m.activity.l2_accesses);
  u("act_l1_accesses", m.activity.l1_accesses);
  u("act_core_instructions", m.activity.core_instructions);
  u("act_cycles", m.activity.cycles);
  d("energy_dynamic_noc_nj", m.energy.dynamic_noc_nj);
  d("energy_dynamic_mem_nj", m.energy.dynamic_mem_nj);
  d("energy_dynamic_core_nj", m.energy.dynamic_core_nj);
  d("energy_static_nj", m.energy.static_nj);
  u("attr_enabled", m.attr_enabled ? 1 : 0);
  for (int i = 0; i < 6; ++i) {
    d(("attr_request_share" + std::to_string(i)).c_str(),
      m.request_stage_share[static_cast<std::size_t>(i)]);
    d(("attr_reply_share" + std::to_string(i)).c_str(),
      m.reply_stage_share[static_cast<std::size_t>(i)]);
  }
  u("attr_violations", m.attr_violations);
  // The bottleneck label can hold spaces; hex-encode it so the token-based
  // parser stays one `name value` pair per line ("-" = empty).
  os << "bottleneck_hex ";
  if (m.bottleneck.empty()) {
    os << '-';
  } else {
    static const char* kHex = "0123456789abcdef";
    for (const unsigned char c : m.bottleneck) {
      os << kHex[c >> 4] << kHex[c & 0xF];
    }
  }
  os << '\n';
  return os.str();
}

std::optional<Metrics> deserialize_metrics(const std::string& text) {
  Metrics m;
  std::istringstream is(text);
  std::string name, value;
  std::size_t fields = 0;
  auto want_u = [&](const char* key, auto& out) {
    if (name != key) return false;
    out = static_cast<std::remove_reference_t<decltype(out)>>(
        std::strtoull(value.c_str(), nullptr, 10));
    ++fields;
    return true;
  };
  auto want_d = [&](const char* key, double& out) {
    if (name != key) return false;
    out = std::strtod(value.c_str(), nullptr);  // Accepts hexfloat.
    ++fields;
    return true;
  };
  while (is >> name >> value) {
    bool matched =
        want_u("cycles", m.cycles) ||
        want_u("warp_instructions", m.warp_instructions) ||
        want_d("ipc", m.ipc) || want_d("request_latency", m.request_latency) ||
        want_d("reply_latency", m.reply_latency) ||
        want_d("request_latency_p50", m.request_latency_p50) ||
        want_d("request_latency_p95", m.request_latency_p95) ||
        want_d("request_latency_p99", m.request_latency_p99) ||
        want_d("reply_latency_p50", m.reply_latency_p50) ||
        want_d("reply_latency_p95", m.reply_latency_p95) ||
        want_d("reply_latency_p99", m.reply_latency_p99) ||
        want_u("mc_stall_cycles", m.mc_stall_cycles) ||
        want_d("reply_injection_util", m.reply_injection_util) ||
        want_d("reply_internal_util", m.reply_internal_util) ||
        want_d("request_injection_util", m.request_injection_util) ||
        want_d("request_internal_util", m.request_internal_util) ||
        want_d("ni_occupancy_pkts", m.ni_occupancy_pkts) ||
        want_d("l1_hit_rate", m.l1_hit_rate) ||
        want_d("l2_hit_rate", m.l2_hit_rate) ||
        want_d("dram_row_hit_rate", m.dram_row_hit_rate) ||
        want_u("flits_corrupted", m.flits_corrupted) ||
        want_u("packets_corrupted", m.packets_corrupted) ||
        want_u("packets_retransmitted", m.packets_retransmitted) ||
        want_u("packets_recovered", m.packets_recovered) ||
        want_u("packets_lost", m.packets_lost) ||
        want_u("duplicates_dropped", m.duplicates_dropped) ||
        want_u("credits_lost", m.credits_lost) ||
        want_u("link_stall_events", m.link_stall_events) ||
        want_u("port_failures", m.port_failures) ||
        want_u("requests_offered", m.requests_offered) ||
        want_u("requests_completed", m.requests_completed) ||
        want_u("requests_shed", m.requests_shed) ||
        want_u("requests_deferred", m.requests_deferred) ||
        want_u("queue_drops", m.queue_drops) ||
        want_d("offered_rate", m.offered_rate) ||
        want_d("goodput", m.goodput) ||
        want_d("e2e_latency_p50", m.e2e_latency_p50) ||
        want_d("e2e_latency_p99", m.e2e_latency_p99) ||
        want_d("e2e_latency_p999", m.e2e_latency_p999) ||
        want_d("request_latency_p999", m.request_latency_p999) ||
        want_d("reply_latency_p999", m.reply_latency_p999) ||
        want_u("degrade_transitions", m.degrade_transitions) ||
        want_u("cycles_normal", m.cycles_normal) ||
        want_u("cycles_throttled", m.cycles_throttled) ||
        want_u("cycles_shedding", m.cycles_shedding) ||
        want_u("watchdog_pre_trips", m.watchdog_pre_trips) ||
        want_u("act_noc_link_flits", m.activity.noc_link_flits) ||
        want_u("act_noc_buffer_ops", m.activity.noc_buffer_ops) ||
        want_u("act_noc_crossbar", m.activity.noc_crossbar) ||
        want_u("act_noc_retx_flits", m.activity.noc_retx_flits) ||
        want_u("act_dram_activates", m.activity.dram_activates) ||
        want_u("act_dram_accesses", m.activity.dram_accesses) ||
        want_u("act_l2_accesses", m.activity.l2_accesses) ||
        want_u("act_l1_accesses", m.activity.l1_accesses) ||
        want_u("act_core_instructions", m.activity.core_instructions) ||
        want_u("act_cycles", m.activity.cycles) ||
        want_d("energy_dynamic_noc_nj", m.energy.dynamic_noc_nj) ||
        want_d("energy_dynamic_mem_nj", m.energy.dynamic_mem_nj) ||
        want_d("energy_dynamic_core_nj", m.energy.dynamic_core_nj) ||
        want_d("energy_static_nj", m.energy.static_nj);
    if (!matched && name == "attr_enabled") {
      m.attr_enabled = value != "0";
      ++fields;
      matched = true;
    }
    if (!matched) matched = want_u("attr_violations", m.attr_violations);
    if (!matched && name == "bottleneck_hex") {
      m.bottleneck.clear();
      if (value != "-") {
        if (value.size() % 2 != 0) return std::nullopt;
        for (std::size_t i = 0; i + 1 < value.size(); i += 2) {
          const char hx[3] = {value[i], value[i + 1], 0};
          m.bottleneck += static_cast<char>(std::strtoul(hx, nullptr, 16));
        }
      }
      ++fields;
      matched = true;
    }
    if (!matched) {
      for (int i = 0; i < 4 && !matched; ++i) {
        matched = want_u(("flits_by_type" + std::to_string(i)).c_str(),
                         m.flits_by_type[i]) ||
                  want_u(("packets_by_type" + std::to_string(i)).c_str(),
                         m.packets_by_type[i]) ||
                  want_d(("latency_p99_by_type" + std::to_string(i)).c_str(),
                         m.latency_p99_by_type[i]);
      }
    }
    if (!matched) {
      for (int i = 0; i < 6 && !matched; ++i) {
        matched =
            want_d(("attr_request_share" + std::to_string(i)).c_str(),
                   m.request_stage_share[static_cast<std::size_t>(i)]) ||
            want_d(("attr_reply_share" + std::to_string(i)).c_str(),
                   m.reply_stage_share[static_cast<std::size_t>(i)]);
      }
    }
    if (!matched) return std::nullopt;  // Unknown field: stale layout.
  }
  // 63 scalar fields + 24 array slots; anything short is a truncated entry.
  if (fields != 87) return std::nullopt;
  return m;
}

std::string ResultCache::default_dir() {
  if (const char* dir = std::getenv("ARINOC_CACHE_DIR")) return dir;
  return ".arinoc-cache";
}

std::string ResultCache::entry_path(const std::string& key_material) const {
  return dir_ + "/" + hex64(fnv1a64(key_material)) + ".cell";
}

std::optional<Metrics> ResultCache::load(
    const std::string& key_material) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(entry_path(key_material), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Layout: tag line, "<key bytes> <metrics bytes>" counts line, the key
  // material verbatim, then the metrics payload.
  std::istringstream header(text);
  std::string tag;
  std::size_t key_len = 0, val_len = 0;
  if (!std::getline(header, tag) || tag != kFormatTag) return std::nullopt;
  if (!(header >> key_len >> val_len)) return std::nullopt;
  header.ignore(1);  // The newline after the counts.
  const auto body = static_cast<std::size_t>(header.tellg());
  if (body == static_cast<std::size_t>(-1) ||
      text.size() != body + key_len + val_len) {
    return std::nullopt;
  }
  if (text.compare(body, key_len, key_material) != 0) {
    return std::nullopt;  // Hash collision: treat as a miss.
  }
  return deserialize_metrics(text.substr(body + key_len, val_len));
}

void ResultCache::store(const std::string& key_material,
                        const Metrics& m) const {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;

  const std::string payload = serialize_metrics(m);
  std::ostringstream os;
  os << kFormatTag << '\n'
     << key_material.size() << ' ' << payload.size() << '\n'
     << key_material << payload;

  const std::string path = entry_path(key_material);
  // Unique temp name per writer thread so concurrent stores never interleave.
  const std::string tmp =
      path + ".tmp" +
      hex64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << os.str();
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace arinoc::exec
