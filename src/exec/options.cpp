#include "exec/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#ifdef _WIN32
#include <io.h>
#define ARINOC_ISATTY_STDERR() (_isatty(2) != 0)
#else
#include <unistd.h>
#define ARINOC_ISATTY_STDERR() (isatty(2) != 0)
#endif

namespace arinoc::exec {

ExecOptions options_from_env(bool default_cache) {
  ExecOptions opts;
  if (const char* jobs = std::getenv("ARINOC_JOBS")) {
    opts.jobs = static_cast<unsigned>(std::strtoul(jobs, nullptr, 10));
  }
  if (const char* threads = std::getenv("ARINOC_THREADS")) {
    opts.threads = static_cast<unsigned>(std::strtoul(threads, nullptr, 10));
  }
  opts.cache_enabled = default_cache;
  if (std::getenv("ARINOC_NO_CACHE") != nullptr) opts.cache_enabled = false;
  if (const char* dir = std::getenv("ARINOC_CACHE_DIR")) opts.cache_dir = dir;
  if (const char* iv = std::getenv("ARINOC_SAMPLE_INTERVAL")) {
    opts.sample_interval =
        static_cast<Cycle>(std::strtoull(iv, nullptr, 10));
  }
  if (const char* dir = std::getenv("ARINOC_TELEMETRY_DIR")) {
    opts.telemetry_dir = dir;
  }
  if (const char* dir = std::getenv("ARINOC_ATTR_DIR")) opts.attr_dir = dir;
  opts.progress = ARINOC_ISATTY_STDERR();
  return opts;
}

bool parse_exec_flags(int& argc, char** argv, ExecOptions& opts) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--jobs") == 0) {
      const char* v = value("--jobs");
      if (v == nullptr) return false;
      char* end = nullptr;
      const unsigned long n = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--jobs expects a number, got '%s'\n", v);
        return false;
      }
      opts.jobs = static_cast<unsigned>(n);
    } else if (std::strcmp(arg, "--threads") == 0) {
      const char* v = value("--threads");
      if (v == nullptr) return false;
      char* end = nullptr;
      const unsigned long n = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--threads expects a number, got '%s'\n", v);
        return false;
      }
      opts.threads = static_cast<unsigned>(n);
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      opts.cache_enabled = false;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      const char* v = value("--cache-dir");
      if (v == nullptr) return false;
      opts.cache_dir = v;
      opts.cache_enabled = true;
    } else if (std::strcmp(arg, "--sample-interval") == 0) {
      const char* v = value("--sample-interval");
      if (v == nullptr) return false;
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--sample-interval expects a number, got '%s'\n",
                     v);
        return false;
      }
      opts.sample_interval = static_cast<Cycle>(n);
    } else if (std::strcmp(arg, "--telemetry-dir") == 0) {
      const char* v = value("--telemetry-dir");
      if (v == nullptr) return false;
      opts.telemetry_dir = v;
    } else if (std::strcmp(arg, "--attr-dir") == 0) {
      const char* v = value("--attr-dir");
      if (v == nullptr) return false;
      opts.attr_dir = v;
    } else {
      argv[out++] = argv[i];  // Not ours: keep for the caller.
    }
  }
  argc = out;
  return true;
}

ExecOptions require_exec_flags(int argc, char** argv, bool default_cache) {
  ExecOptions opts = options_from_env(default_cache);
  if (!parse_exec_flags(argc, argv, opts)) std::exit(2);
  if (argc > 1) {
    std::fprintf(stderr,
                 "unknown option '%s' (supported: --jobs N, --threads N, "
                 "--no-cache, --cache-dir D, --sample-interval N, "
                 "--telemetry-dir D, --attr-dir D)\n",
                 argv[1]);
    std::exit(2);
  }
  return opts;
}

}  // namespace arinoc::exec
