// ExperimentRunner: maps a grid of simulation cells onto the JobPool.
//
// Guarantees:
//  * Deterministic output. Every cell's full Config (including its derived
//    RNG seed) is resolved serially, before any worker runs; results land
//    in a pre-sized vector slot per cell. Byte-identical output for any
//    jobs count and any scheduling order.
//  * Seeding discipline. Each cell simulates with
//    derive_cell_seed(cfg.seed, benchmark) (see core/experiment.hpp) — the
//    base seed decorrelates the RNG streams of different workloads while
//    every (point, scheme) comparison on the same benchmark stays
//    seed-paired, which is what the paper-shape checks rely on.
//  * Crash isolation. A cell that trips the watchdog (or throws anything
//    else) records a structured error in its CellResult; the remaining
//    cells keep running.
//  * Optional on-disk result caching (see result_cache.hpp): re-running a
//    sweep only simulates cells whose key material changed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"

namespace arinoc::exec {

struct ExecOptions {
  unsigned jobs = 0;          ///< Worker threads; 0 = hardware concurrency.
  /// Intra-simulation network threads, applied to every cell's resolved
  /// Config: 1 = serial (default), 0 = auto (one per hardware core, clamped
  /// to the cell's node count), N > 1 = N spatial domains. Results are
  /// bit-identical across values, and `threads` is excluded from the
  /// canonical config string, so cache keys and baselines are unaffected.
  /// The runner caps jobs so jobs x threads never exceeds hardware
  /// concurrency (with a stderr warning).
  unsigned threads = 1;
  bool cache_enabled = false;
  std::string cache_dir;      ///< Empty = ResultCache::default_dir().
  bool progress = false;      ///< Live [done/total] + ETA lines on stderr.
  /// Telemetry: sample every N cycles and write each cell's series as JSONL
  /// into `telemetry_dir`. 0 (default) = no sampling. Sampling cells bypass
  /// the result cache — a cache hit would skip producing the series.
  Cycle sample_interval = 0;
  std::string telemetry_dir;  ///< Empty = "arinoc-telemetry".
  /// Latency attribution: non-empty attaches a LatencyAttributor to every
  /// cell and writes each cell's report JSON into this directory. Like
  /// sampling, attribution cells bypass the result cache — a cache hit
  /// would return the aggregate Metrics but skip producing the report.
  std::string attr_dir;
  Cycle attr_window = 0;  ///< 0 = LatencyAttributor::kDefaultWindow.
};

/// One grid cell: (point label, scheme, benchmark) plus an optional config
/// mutation applied after the scheme preset (same contract as Sweep).
struct CellSpec {
  std::string point;
  Scheme scheme = Scheme::kXYBaseline;
  std::string benchmark;
  std::function<void(Config&)> tweak;
  bool da2mesh = false;
};

struct CellResult {
  std::string point;
  std::string scheme;
  std::string benchmark;
  /// Reply-fabric tag the cell ran on: "da2mesh" for the overlay, otherwise
  /// fabric_cache_tag(resolved config) — e.g. "mesh", "torus",
  /// "file:<content-hash>".
  std::string fabric;
  /// 16-hex FNV-1a-64 of the resolved config's canonical string — the same
  /// canonical-config hash every "arinoc-provenance-v1" block carries.
  /// Filled for every runnable cell, cache hits included (the hash keys the
  /// cache, so a hit is by definition the same hash).
  std::string config_hash;
  Metrics metrics;

  // Structured per-cell error. ok() == false leaves `metrics` zeroed.
  std::string error;       ///< Human-readable message; empty = success.
  std::string error_kind;  ///< "config" | "deadlock" | "livelock" |
                           ///< "invariant-violation" | "runtime".
  std::string error_detail;  ///< Watchdog diagnostic dump, when available.
  int exit_status = 0;       ///< Matches the arinoc_sim exit-code contract.
  bool from_cache = false;
  /// Telemetry JSONL written for this cell (sampling enabled, run ok).
  std::string telemetry_path;
  /// Attribution report JSON written for this cell (attr_dir set, run ok).
  std::string attr_path;

  bool ok() const { return error.empty(); }
};

class ExperimentRunner {
 public:
  struct Stats {
    std::size_t total = 0;
    std::size_t simulated = 0;   ///< Cells actually run this call.
    std::size_t cache_hits = 0;
    std::size_t errors = 0;
  };

  explicit ExperimentRunner(Config base, ExecOptions opts = {});

  /// Runs the grid; results are in cell-submission order.
  std::vector<CellResult> run(const std::vector<CellSpec>& cells);

  /// Stats for the most recent run() call.
  const Stats& stats() const { return stats_; }
  const ExecOptions& options() const { return opts_; }

  /// The fully resolved per-cell config (scheme preset, tweak, derived
  /// seed) — exposed so tests can audit the seeding/caching discipline.
  Config resolve(const CellSpec& cell) const;

 private:
  Config base_;
  ExecOptions opts_;
  Stats stats_;
};

}  // namespace arinoc::exec
