// Work-stealing thread pool for the experiment-execution engine.
//
// Each worker owns a deque: it pushes/pops its own work LIFO (cache-warm)
// and steals FIFO from the other workers when its deque runs dry, so a few
// long-running simulation cells at the end of a grid do not leave most of
// the pool idle. Simulation cells are milliseconds-to-minutes coarse, so
// the queues share one mutex — contention is irrelevant at this
// granularity and the locking stays trivially ThreadSanitizer-clean.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arinoc::exec {

class JobPool {
 public:
  /// `jobs == 0` means hardware_jobs().
  explicit JobPool(unsigned jobs = 0);
  ~JobPool();

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static unsigned hardware_jobs();

  unsigned jobs() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueues a job (round-robin across worker deques). Jobs should catch
  /// their own domain errors; an exception that does escape is captured and
  /// rethrown from wait_idle() (first one wins, the rest of the jobs still
  /// run).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished, then rethrows the first
  /// escaped job exception, if any.
  void wait_idle();

 private:
  void worker_loop(std::size_t id);
  /// Pops own work (back) or steals (front) from a sibling. Caller holds mu_.
  bool take_locked(std::size_t id, std::function<void()>& out);

  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< Signals workers: work or stop.
  std::condition_variable idle_cv_;   ///< Signals wait_idle(): drained.
  std::size_t inflight_ = 0;          ///< Queued + currently running jobs.
  std::size_t next_queue_ = 0;        ///< Round-robin submission cursor.
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace arinoc::exec
