#include "exec/job_pool.hpp"

#include <utility>

namespace arinoc::exec {

unsigned JobPool::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

JobPool::JobPool(unsigned jobs) {
  const unsigned n = jobs == 0 ? hardware_jobs() : jobs;
  queues_.resize(n);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

JobPool::~JobPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void JobPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(job));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++inflight_;
  }
  work_cv_.notify_one();
}

void JobPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

bool JobPool::take_locked(std::size_t id, std::function<void()>& out) {
  if (!queues_[id].empty()) {  // Own work: newest first.
    out = std::move(queues_[id].back());
    queues_[id].pop_back();
    return true;
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {  // Steal: oldest first.
    const std::size_t victim = (id + k) % queues_.size();
    if (!queues_[victim].empty()) {
      out = std::move(queues_[victim].front());
      queues_[victim].pop_front();
      return true;
    }
  }
  return false;
}

void JobPool::worker_loop(std::size_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> job;
    if (take_locked(id, job)) {
      lock.unlock();
      std::exception_ptr err;
      try {
        job();
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !first_error_) first_error_ = err;
      if (--inflight_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace arinoc::exec
