#include "core/experiment.hpp"

#include <cstdlib>
#include <stdexcept>

namespace arinoc {

Config make_base_config() {
  Config cfg;  // Defaults already encode Table I.
  cfg.warmup_cycles = 2000;
  cfg.run_cycles = 8000;  // Keeps full-suite benches minutes-fast; export
                          // ARINOC_RUN_CYCLES for higher-fidelity runs.
  return apply_env_overrides(cfg);
}

Config apply_env_overrides(Config cfg) {
  if (const char* rc = std::getenv("ARINOC_RUN_CYCLES")) {
    cfg.run_cycles = static_cast<Cycle>(std::strtoull(rc, nullptr, 10));
  }
  if (const char* wc = std::getenv("ARINOC_WARMUP_CYCLES")) {
    cfg.warmup_cycles = static_cast<Cycle>(std::strtoull(wc, nullptr, 10));
  }
  return cfg;
}

Metrics run_scheme(const Config& base, Scheme scheme,
                   const std::string& benchmark,
                   const std::function<void(Config&)>& tweak, bool da2mesh) {
  const BenchmarkTraits* traits = find_benchmark(benchmark);
  if (traits == nullptr) {
    throw std::invalid_argument("unknown benchmark '" + benchmark + "'");
  }
  Config cfg = apply_scheme(base, scheme);
  if (tweak) tweak(cfg);
  const std::string err = cfg.validate();
  if (!err.empty()) {
    throw std::invalid_argument("invalid configuration for scheme " +
                                std::string(scheme_name(scheme)) + ": " + err);
  }
  GpgpuSim sim(cfg, *traits, da2mesh);
  sim.run_with_warmup();
  return sim.collect();
}

std::vector<RunResult> run_suite(const Config& base, Scheme scheme,
                                 const std::vector<std::string>& benchmarks,
                                 bool da2mesh) {
  std::vector<RunResult> results;
  results.reserve(benchmarks.size());
  for (const auto& b : benchmarks) {
    results.push_back({b, scheme, run_scheme(base, scheme, b, nullptr,
                                             da2mesh)});
  }
  return results;
}

}  // namespace arinoc
