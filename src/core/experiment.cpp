#include "core/experiment.hpp"

#include <cstdlib>
#include <stdexcept>

#include "exec/runner.hpp"

namespace arinoc {

Config make_base_config() {
  Config cfg;  // Defaults already encode Table I.
  cfg.warmup_cycles = 2000;
  cfg.run_cycles = 8000;  // Keeps full-suite benches minutes-fast; export
                          // ARINOC_RUN_CYCLES for higher-fidelity runs.
  return apply_env_overrides(cfg);
}

Config apply_env_overrides(Config cfg) {
  if (const char* rc = std::getenv("ARINOC_RUN_CYCLES")) {
    cfg.run_cycles = static_cast<Cycle>(std::strtoull(rc, nullptr, 10));
  }
  if (const char* wc = std::getenv("ARINOC_WARMUP_CYCLES")) {
    cfg.warmup_cycles = static_cast<Cycle>(std::strtoull(wc, nullptr, 10));
  }
  return cfg;
}

std::uint64_t derive_cell_seed(std::uint64_t seed,
                               std::string_view benchmark) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the workload name.
  for (const unsigned char c : benchmark) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  std::uint64_t z = (seed ^ h) + 0x9e3779b97f4a7c15ull;  // SplitMix64 mix.
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Config resolve_cell_config(const Config& base, Scheme scheme,
                           const std::string& benchmark,
                           const std::function<void(Config&)>& tweak) {
  Config cfg = apply_scheme(base, scheme);
  if (tweak) tweak(cfg);
  cfg.seed = derive_cell_seed(cfg.seed, benchmark);
  const std::string err = cfg.validate();
  if (!err.empty()) {
    throw std::invalid_argument("invalid configuration for scheme " +
                                std::string(scheme_name(scheme)) + ": " + err);
  }
  return cfg;
}

Metrics run_scheme(const Config& base, Scheme scheme,
                   const std::string& benchmark,
                   const std::function<void(Config&)>& tweak, bool da2mesh) {
  const BenchmarkTraits* traits = find_benchmark(benchmark);
  if (traits == nullptr) {
    throw std::invalid_argument("unknown benchmark '" + benchmark + "'");
  }
  const Config cfg = resolve_cell_config(base, scheme, benchmark, tweak);
  GpgpuSim sim(cfg, *traits, da2mesh);
  sim.run_with_warmup();
  return sim.collect();
}

std::vector<RunResult> run_suite(const Config& base, Scheme scheme,
                                 const std::vector<std::string>& benchmarks,
                                 bool da2mesh) {
  // One runner per call: parallel across benchmarks, submission-ordered
  // results, no caching (callers opt into caching via exec directly).
  exec::ExperimentRunner runner(base, exec::ExecOptions{});
  std::vector<exec::CellSpec> cells;
  cells.reserve(benchmarks.size());
  for (const auto& b : benchmarks) {
    cells.push_back({"suite", scheme, b, nullptr, da2mesh});
  }
  const auto ran = runner.run(cells);

  std::vector<RunResult> results;
  results.reserve(ran.size());
  for (const auto& r : ran) {
    if (!r.ok()) {  // Preserve the historical all-or-throw contract.
      throw std::runtime_error("run_suite: " + r.scheme + "/" + r.benchmark +
                               " failed (" + r.error_kind + "): " + r.error);
    }
    results.push_back({r.benchmark, scheme, r.metrics});
  }
  return results;
}

}  // namespace arinoc
