#include "core/experiment.hpp"

#include <cassert>
#include <cstdlib>

namespace arinoc {

Config make_base_config() {
  Config cfg;  // Defaults already encode Table I.
  cfg.warmup_cycles = 2000;
  cfg.run_cycles = 8000;  // Keeps full-suite benches minutes-fast; export
                          // ARINOC_RUN_CYCLES for higher-fidelity runs.
  return apply_env_overrides(cfg);
}

Config apply_env_overrides(Config cfg) {
  if (const char* rc = std::getenv("ARINOC_RUN_CYCLES")) {
    cfg.run_cycles = static_cast<Cycle>(std::strtoull(rc, nullptr, 10));
  }
  if (const char* wc = std::getenv("ARINOC_WARMUP_CYCLES")) {
    cfg.warmup_cycles = static_cast<Cycle>(std::strtoull(wc, nullptr, 10));
  }
  return cfg;
}

Metrics run_scheme(const Config& base, Scheme scheme,
                   const std::string& benchmark,
                   const std::function<void(Config&)>& tweak, bool da2mesh) {
  const BenchmarkTraits* traits = find_benchmark(benchmark);
  assert(traits != nullptr && "unknown benchmark");
  Config cfg = apply_scheme(base, scheme);
  if (tweak) tweak(cfg);
  GpgpuSim sim(cfg, *traits, da2mesh);
  sim.run_with_warmup();
  return sim.collect();
}

std::vector<RunResult> run_suite(const Config& base, Scheme scheme,
                                 const std::vector<std::string>& benchmarks,
                                 bool da2mesh) {
  std::vector<RunResult> results;
  results.reserve(benchmarks.size());
  for (const auto& b : benchmarks) {
    results.push_back({b, scheme, run_scheme(base, scheme, b, nullptr,
                                             da2mesh)});
  }
  return results;
}

}  // namespace arinoc
