// Plain-text table formatting for the bench binaries (the figures are
// reproduced as aligned tables: one row per benchmark, one column per
// scheme/series, plus a geomean summary row where the paper reports one).
#pragma once

#include <string>
#include <vector>

#include "core/gpgpu_sim.hpp"

namespace arinoc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers.
std::string fmt(double value, int precision = 3);
std::string fmt_pct(double fraction, int precision = 1);

/// Serializes a Metrics record as a flat JSON object (for scripting around
/// the CLI driver). Stable key names; numbers only. `provenance_json` — a
/// pre-rendered "arinoc-provenance-v1" object (see obs/regress/provenance) —
/// is spliced in as the leading "provenance" member when non-empty; passing
/// it pre-rendered keeps this layer free of an obs dependency and keeps
/// provenance-free output byte-identical to earlier releases.
std::string metrics_to_json(const Metrics& m, int indent = 2,
                            const std::string& provenance_json = {});

}  // namespace arinoc
