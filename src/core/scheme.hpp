// ARI design-guideline calculations (paper §4.2, Eq. (1) and (2)):
// sizing the injection-port crossbar speedup from the ideal packet injection
// rate and the flit-weighted mean packet size.
#pragma once

#include <cstdint>

namespace arinoc {

/// Eq. (1): minimum speedup able to consume the injected traffic,
///   S >= InjRate_pkt * mean_flits_per_pkt.
/// `inj_rate_pkt` is packets/cycle under perfect consumption.
std::uint32_t min_speedup_eq1(double inj_rate_pkt, double mean_flits_per_pkt);

/// Eq. (2): S <= min(N_out, N_vc).
std::uint32_t max_speedup_eq2(std::uint32_t non_local_outputs,
                              std::uint32_t num_vcs);

/// The paper's guideline: the minimal S meeting Eq. (1), clamped by Eq. (2).
std::uint32_t recommended_speedup(double inj_rate_pkt,
                                  double mean_flits_per_pkt,
                                  std::uint32_t non_local_outputs,
                                  std::uint32_t num_vcs);

/// Flit-weighted mean packet size in a reply stream with `read_frac` read
/// replies (long, `long_flits`) and the rest write replies (1 flit).
double mean_reply_flits(double read_frac, std::uint32_t long_flits);

}  // namespace arinoc
