#include "core/analyzer.hpp"

#include "core/report.hpp"

#include <algorithm>
#include <sstream>

namespace arinoc {

std::string BottleneckReport::to_string() const {
  std::ostringstream os;
  os << "bottleneck verdict: " << verdict << "\n";
  for (const ResourceUsage& r : resources) {
    os << "  " << (r.utilization >= 1.0 ? "!" : " ") << " ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.1f%%", r.utilization * 100.0);
    os << buf << "  " << r.name;
    if (!r.detail.empty()) os << "  (" << r.detail << ")";
    os << "\n";
  }
  return os.str();
}

BottleneckReport BottleneckAnalyzer::analyze(
    const Config& cfg, const BenchmarkTraits& traits) const {
  GpgpuSim sim(cfg, traits);
  sim.run_with_warmup();
  return diagnose(sim);
}

BottleneckReport BottleneckAnalyzer::diagnose(GpgpuSim& sim) const {
  const Config& cfg = sim.config();
  const Metrics m = sim.collect();
  const double cycles = m.cycles ? static_cast<double>(m.cycles) : 1.0;
  const double n_mcs = static_cast<double>(sim.num_mcs());
  const double n_ccs = static_cast<double>(sim.num_cores());

  BottleneckReport rep;
  rep.metrics = m;
  auto add = [&](std::string name, double util, std::string detail) {
    rep.resources.push_back({std::move(name), util, std::move(detail)});
  };

  // 1) Core issue width: one warp instruction per warp_size/simd_width
  //    cycles per core.
  const double issue_cap = static_cast<double>(cfg.simd_width) /
                           static_cast<double>(cfg.warp_size);
  add("core issue width", (m.ipc / n_ccs) / issue_cap,
      "IPC/core " + fmt(m.ipc / n_ccs, 3) + " of " + fmt(issue_cap, 3));

  // 2) Request injection links (CC NI -> router, 1 flit/cycle each).
  add("request injection links", m.request_injection_util,
      fmt(m.request_injection_util, 3) + " flit/cycle");

  // 3) Request in-network links.
  add("request network links", m.request_internal_util, "");

  // 4) MC request ejection (drain rate flits/cycle each).
  double req_ejected = 0;
  for (std::size_t i = 0; i < sim.num_mcs(); ++i) {
    req_ejected += static_cast<double>(
        sim.request_net().router(sim.fabric().mc_nodes()[i]).flits_ejected());
  }
  add("MC request ejection",
      req_ejected / cycles / n_mcs / cfg.mc_eject_flits_per_cycle,
      fmt(req_ejected / cycles / n_mcs, 2) + " flit/cycle of " +
          std::to_string(cfg.mc_eject_flits_per_cycle));

  // 5) L2 bank service (one request per cycle per MC).
  double served = 0;
  double dram_act = 0, dram_acc = 0;
  for (std::size_t i = 0; i < sim.num_mcs(); ++i) {
    served += static_cast<double>(sim.mc(i).requests_served());
    dram_act += static_cast<double>(sim.mc(i).dram().activates());
    dram_acc += static_cast<double>(sim.mc(i).dram().accesses());
  }
  add("L2 bank service", served / cycles / n_mcs,
      fmt(served / cycles / n_mcs, 2) + " req/cycle");

  // 6) DRAM activate rate (tRRD-bound) and data bus (burst-bound), in NoC
  //    cycles via the memory clock ratio.
  const double act_cap = cfg.mem_clock_ratio / cfg.t_rrd;
  add("DRAM activate rate (tRRD)", dram_act / cycles / n_mcs / act_cap,
      fmt(dram_act / cycles / n_mcs, 3) + " of " + fmt(act_cap, 3) +
          " ACT/cycle");
  const double bus_cap = cfg.mem_clock_ratio / cfg.burst_cycles;
  add("DRAM data bus", dram_acc / cycles / n_mcs / bus_cap,
      fmt(dram_acc / cycles / n_mcs, 3) + " of " + fmt(bus_cap, 3) +
          " access/cycle");

  // 7) Reply injection links: capacity depends on the NI architecture.
  const double inj_links = cfg.reply_ni == NiArch::kSplitQueue
                               ? static_cast<double>(cfg.split_queues)
                               : 1.0;
  add("reply injection links", m.reply_injection_util / inj_links,
      fmt(m.reply_injection_util, 3) + " flit/cycle over " +
          fmt(inj_links, 0) + " link(s)");

  // 8) Reply in-network links and CC ejection.
  add("reply network links", m.reply_internal_util, "");
  if (!sim.has_overlay()) {
    double rep_ejected = 0;
    for (NodeId cc : sim.fabric().cc_nodes()) {
      rep_ejected +=
          static_cast<double>(sim.reply_net().router(cc).flits_ejected());
    }
    add("CC reply ejection", rep_ejected / cycles / n_ccs, "");
  }

  std::stable_sort(rep.resources.begin(), rep.resources.end(),
                   [](const ResourceUsage& a, const ResourceUsage& b) {
                     return a.utilization > b.utilization;
                   });
  if (rep.resources.front().utilization >= threshold_) {
    rep.verdict = rep.resources.front().name;
  } else {
    rep.verdict = "latency-bound (no resource above " +
                  fmt_pct(threshold_, 0) + ")";
  }
  return rep;
}

}  // namespace arinoc
