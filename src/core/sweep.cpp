#include "core/sweep.hpp"

#include <sstream>

#include "core/experiment.hpp"

namespace arinoc {

std::vector<SweepCell> Sweep::run() const {
  std::vector<SweepCell> cells;
  // A sweep without an explicit axis still runs the base config once per
  // (scheme, benchmark) pair.
  const std::vector<SweepPoint> points =
      points_.empty() ? std::vector<SweepPoint>{{"base", nullptr}} : points_;
  for (const SweepPoint& p : points) {
    for (Scheme s : schemes_) {
      for (const std::string& b : benchmarks_) {
        cells.push_back(
            {p.label, scheme_name(s), b, run_scheme(base_, s, b, p.tweak)});
      }
    }
  }
  return cells;
}

std::string Sweep::to_csv(const std::vector<SweepCell>& cells) {
  std::ostringstream os;
  os << "point,scheme,benchmark,cycles,ipc,request_latency,reply_latency,"
        "mc_stall_cycles,reply_injection_util,reply_internal_util,"
        "l1_hit_rate,l2_hit_rate,dram_row_hit_rate,energy_total_nj\n";
  for (const SweepCell& c : cells) {
    const Metrics& m = c.metrics;
    os << c.point << ',' << c.scheme << ',' << c.benchmark << ','
       << m.cycles << ',' << m.ipc << ',' << m.request_latency << ','
       << m.reply_latency << ',' << m.mc_stall_cycles << ','
       << m.reply_injection_util << ',' << m.reply_internal_util << ','
       << m.l1_hit_rate << ',' << m.l2_hit_rate << ','
       << m.dram_row_hit_rate << ',' << m.energy.total_nj() << '\n';
  }
  return os.str();
}

}  // namespace arinoc
