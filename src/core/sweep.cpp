#include "core/sweep.hpp"

#include <sstream>

#include "exec/runner.hpp"

namespace arinoc {

std::vector<SweepCell> Sweep::run() const {
  // A sweep without an explicit axis still runs the base config once per
  // (scheme, benchmark) pair.
  const std::vector<SweepPoint> points =
      points_.empty() ? std::vector<SweepPoint>{{"base", nullptr}} : points_;

  std::vector<exec::CellSpec> specs;
  specs.reserve(points.size() * schemes_.size() * benchmarks_.size());
  for (const SweepPoint& p : points) {
    for (Scheme s : schemes_) {
      for (const std::string& b : benchmarks_) {
        specs.push_back({p.label, s, b, p.tweak, false});
      }
    }
  }

  exec::ExecOptions opts;
  opts.jobs = jobs_;
  opts.cache_enabled = cache_enabled_;
  opts.cache_dir = cache_dir_;
  opts.progress = progress_;
  opts.sample_interval = sample_interval_;
  opts.telemetry_dir = telemetry_dir_;
  opts.attr_dir = attr_dir_;
  opts.attr_window = attr_window_;
  exec::ExperimentRunner runner(base_, std::move(opts));
  const auto ran = runner.run(specs);

  std::vector<SweepCell> cells;
  cells.reserve(ran.size());
  for (const auto& r : ran) {
    cells.push_back({r.point, r.scheme, r.benchmark, r.fabric, r.metrics,
                     r.error, r.error_kind, r.from_cache, r.telemetry_path,
                     r.attr_path});
  }
  return cells;
}

std::string Sweep::csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string Sweep::to_csv(const std::vector<SweepCell>& cells) {
  std::ostringstream os;
  // New columns append before the trailing `error` column so positional
  // consumers of the original prefix keep working.
  os << "point,scheme,benchmark,cycles,ipc,request_latency,reply_latency,"
        "mc_stall_cycles,reply_injection_util,reply_internal_util,"
        "l1_hit_rate,l2_hit_rate,dram_row_hit_rate,energy_total_nj,"
        "reply_latency_p50,reply_latency_p95,reply_latency_p99,"
        "reply_latency_p999,offered_rate,goodput,requests_shed,"
        "e2e_latency_p99,cycles_degraded,fabric,bottleneck,error\n";
  for (const SweepCell& c : cells) {
    const Metrics& m = c.metrics;
    const std::string error =
        c.ok() ? std::string{} : c.error_kind + ": " + c.error;
    os << csv_escape(c.point) << ',' << csv_escape(c.scheme) << ','
       << csv_escape(c.benchmark) << ',' << m.cycles << ',' << m.ipc << ','
       << m.request_latency << ',' << m.reply_latency << ','
       << m.mc_stall_cycles << ',' << m.reply_injection_util << ','
       << m.reply_internal_util << ',' << m.l1_hit_rate << ','
       << m.l2_hit_rate << ',' << m.dram_row_hit_rate << ','
       << m.energy.total_nj() << ',' << m.reply_latency_p50 << ','
       << m.reply_latency_p95 << ',' << m.reply_latency_p99 << ','
       << m.reply_latency_p999 << ',' << m.offered_rate << ','
       << m.goodput << ',' << m.requests_shed << ','
       << m.e2e_latency_p99 << ','
       << (m.cycles_throttled + m.cycles_shedding) << ','
       << csv_escape(c.fabric) << ',' << csv_escape(m.bottleneck) << ','
       << csv_escape(error) << '\n';
  }
  return os.str();
}

}  // namespace arinoc
