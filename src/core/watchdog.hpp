// Deadlock/livelock watchdog (robustness layer).
//
// GpgpuSim polls the watchdog every cycle with a cheap closure-based probe
// (the watchdog subsamples internally). It detects three failure modes:
//
//  * global deadlock — no flit moved anywhere for `deadlock_window` cycles
//    while packets are still in flight;
//  * livelock — some packet (or unacked retransmission entry) has been
//    alive longer than `livelock_age` cycles;
//  * invariant violation — an optional periodic audit (credit conservation)
//    returned a non-empty diagnosis.
//
// On a trip the caller raises WatchdogTrip, which carries a structured
// diagnostic dump and maps each failure mode to a distinct process exit
// status, so a wedged simulation terminates with a diagnosis instead of
// spinning forever.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace arinoc {

enum class WatchdogTripKind : int {
  kNone = 0,
  kDeadlock,
  kLivelock,
  kInvariant,
};

const char* watchdog_trip_name(WatchdogTripKind kind);

/// Thrown by GpgpuSim::step when the watchdog trips. exit_status() gives the
/// documented process exit code (3 = deadlock, 4 = livelock, 5 = invariant).
class WatchdogTrip : public std::runtime_error {
 public:
  WatchdogTrip(WatchdogTripKind kind, const std::string& summary,
               std::string dump)
      : std::runtime_error(summary), kind_(kind), dump_(std::move(dump)) {}

  WatchdogTripKind kind() const { return kind_; }
  const std::string& dump() const { return dump_; }
  int exit_status() const { return 2 + static_cast<int>(kind_); }

 private:
  WatchdogTripKind kind_;
  std::string dump_;
};

struct WatchdogParams {
  bool enabled = true;
  Cycle deadlock_window = 5000;  ///< K: no-movement cycles before tripping.
  Cycle livelock_age = 50000;    ///< Per-packet age ceiling.
  Cycle audit_interval = 0;      ///< Credit-invariant audit period; 0 = off.
  Cycle check_interval = 64;     ///< Poll subsampling (cheapness).
  /// Pre-trip warning fraction: a warning raises once a stall/age streak
  /// passes this fraction of its trip threshold, so reactive layers (the
  /// admission degradation FSM, telemetry) can act *before* a hard trip.
  double pre_trip_frac = 0.5;
};

class Watchdog {
 public:
  /// Snapshot of system liveness, produced by the caller's probe closure.
  struct Observation {
    std::uint64_t movement = 0;  ///< Monotone-ish activity counter; any
                                 ///< change counts as progress.
    std::size_t live_packets = 0;
    Cycle oldest_created = 0;  ///< Creation cycle of the oldest live packet.
    bool has_oldest = false;
  };

  explicit Watchdog(const WatchdogParams& params) : p_(params) {}

  /// Checks liveness; calls `observe` (and `audit`, when due) only on
  /// subsampled cycles. Returns the trip kind, kNone when healthy. After a
  /// non-kNone return, detail() describes the trigger.
  WatchdogTripKind poll(Cycle now,
                        const std::function<Observation()>& observe,
                        const std::function<std::string()>& audit);

  const std::string& detail() const { return detail_; }
  const WatchdogParams& params() const { return p_; }

  /// True while the current stall streak (or oldest-packet age) exceeds
  /// `pre_trip_frac` of its trip threshold — the system is drifting toward
  /// a hard trip but has not reached it. Level signal; clears when the
  /// streak resets. Updated on poll() subsample cycles only.
  bool warning_active() const { return warning_active_; }

  /// Number of times warning_active() rose (edge-counted), for telemetry.
  std::uint64_t pre_trip_count() const { return pre_trip_count_; }

 private:
  WatchdogParams p_;
  Cycle last_check_ = 0;
  Cycle last_audit_ = 0;
  Cycle last_progress_ = 0;
  std::uint64_t last_movement_ = 0;
  bool seen_movement_ = false;
  bool warning_active_ = false;
  std::uint64_t pre_trip_count_ = 0;
  std::string detail_;
};

}  // namespace arinoc
