// Bottleneck analyzer: the paper's Section-3 diagnosis methodology as a
// reusable tool. Runs a configured system, measures the utilization of
// every throughput-limited resource along the end-to-end path (Fig. 2), and
// names the binding constraint:
//
//   core issue width -> request NI/links -> MC request ejection -> L2 bank
//   -> DRAM (activate rate / data bus) -> MC reply forwarding -> reply NI
//   injection links -> reply network links -> CC ejection.
//
// The "reply injection" verdict on a baseline system is exactly the paper's
// §3 finding; after applying ARI the verdict moves elsewhere (usually DRAM
// or core issue), which is how a user checks that the bottleneck was in
// fact removed and not merely shifted within the NoC.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {

/// One resource's utilization relative to its capacity (0..1+).
struct ResourceUsage {
  std::string name;
  double utilization = 0.0;  ///< Fraction of theoretical capacity.
  std::string detail;        ///< Human-readable evidence.
};

struct BottleneckReport {
  std::vector<ResourceUsage> resources;  ///< Sorted, most-utilized first.
  /// The diagnosed binding constraint (resources[0] if above threshold).
  std::string verdict;
  Metrics metrics;

  std::string to_string() const;
};

class BottleneckAnalyzer {
 public:
  /// Utilization above which a resource is considered saturated.
  explicit BottleneckAnalyzer(double saturation_threshold = 0.85)
      : threshold_(saturation_threshold) {}

  /// Runs the benchmark under `cfg` and diagnoses the binding resource.
  BottleneckReport analyze(const Config& cfg,
                           const BenchmarkTraits& traits) const;

  /// Diagnoses from an already-run simulator (no extra simulation).
  BottleneckReport diagnose(GpgpuSim& sim) const;

 private:
  double threshold_;
};

}  // namespace arinoc
