#include "core/area_model.hpp"

namespace arinoc {

double AreaModel::router_um2(std::uint32_t switch_inputs,
                             std::uint32_t outputs,
                             std::uint32_t input_ports, std::uint32_t vcs,
                             std::uint32_t vc_depth_flits,
                             std::uint32_t flit_bits) const {
  const double buffer_bits = static_cast<double>(input_ports) * vcs *
                             vc_depth_flits * flit_bits;
  const double buffers = buffer_bits * p_.sram_um2_per_bit;
  const double xbar = p_.xbar_coeff *
                      (switch_inputs * flit_bits * p_.wire_pitch_um) *
                      (outputs * flit_bits * p_.wire_pitch_um);
  const double drivers =
      static_cast<double>(input_ports + outputs) * p_.link_driver_um2 / 2.0;
  const double datapath = buffers + xbar + drivers;
  return datapath * (1.0 + p_.logic_fraction);
}

double AreaModel::ni_um2(std::uint32_t queue_flits, std::uint32_t flit_bits,
                         std::uint32_t split_queues,
                         std::uint32_t wide_links,
                         std::uint32_t narrow_links,
                         std::uint32_t wide_bits) const {
  const double queue =
      static_cast<double>(queue_flits) * flit_bits * p_.sram_um2_per_bit;
  const double muxes =
      split_queues > 1 ? static_cast<double>(split_queues) * p_.mux_um2 : 0.0;
  const double wide_wiring = static_cast<double>(wide_links) * wide_bits *
                             p_.wire_pitch_um * p_.intra_tile_wire_um;
  const double narrow_wiring = static_cast<double>(narrow_links) * flit_bits *
                               p_.wire_pitch_um * p_.intra_tile_wire_um;
  return queue + muxes + wide_wiring + narrow_wiring + p_.ni_logic_um2;
}

AreaReport AreaModel::evaluate(const Config& cfg) const {
  AreaReport r;
  const std::uint32_t flit_bits = cfg.link_width_bits_reply;
  const std::uint32_t depth = cfg.vc_depth_flits_reply();
  const std::uint32_t wide_bits =
      cfg.data_payload_bits + flit_bits;  // W carries a whole long packet.

  // Baseline: 5x5 switch (4 directions + 1 injection column), 1 narrow
  // MC->NI link (the pre-enhanced GPGPU-Sim default had narrow links; the
  // enhanced baseline's wide MC->NI link is counted on both sides so the
  // comparison isolates the ARI additions of §4).
  r.baseline_router_um2 =
      router_um2(/*switch_inputs=*/5, /*outputs=*/5, /*input_ports=*/5,
                 cfg.num_vcs, depth, flit_bits);
  r.baseline_ni_um2 =
      ni_um2(cfg.ni_queue_flits, flit_bits, /*split_queues=*/1,
             /*wide_links=*/2, /*narrow_links=*/1, wide_bits);

  // ARI MC-router: injection speedup S adds S-1 switch input columns.
  const std::uint32_t s = cfg.injection_speedup > 0 ? cfg.injection_speedup
                                                    : 4;
  r.ari_router_um2 =
      router_um2(/*switch_inputs=*/4 + s, /*outputs=*/5, /*input_ports=*/5,
                 cfg.num_vcs, depth, flit_bits);
  // ARI NI: split queues (same total bits), per-queue wide links from the
  // core logic, and one narrow link per queue to its hard-wired VC.
  const std::uint32_t k = cfg.split_queues;
  r.ari_ni_um2 = ni_um2(cfg.ni_queue_flits, flit_bits, k,
                        /*wide_links=*/1 + k, /*narrow_links=*/k, wide_bits);

  const double base_pair = r.baseline_router_um2 + r.baseline_ni_um2;
  const double ari_pair = r.ari_router_um2 + r.ari_ni_um2;
  r.pair_overhead_pct = 100.0 * (ari_pair - base_pair) / base_pair;

  // Amortized: only the reply-network MC pairs change; both networks'
  // routers + NIs make up the whole-NoC area.
  const double nodes = static_cast<double>(cfg.num_nodes());
  const double total = 2.0 * nodes * base_pair;
  r.network_overhead_pct =
      100.0 * static_cast<double>(cfg.num_mcs) * (ari_pair - base_pair) /
      total;
  return r;
}

}  // namespace arinoc
