#include "core/watchdog.hpp"

#include <sstream>

namespace arinoc {

const char* watchdog_trip_name(WatchdogTripKind kind) {
  switch (kind) {
    case WatchdogTripKind::kNone:
      return "none";
    case WatchdogTripKind::kDeadlock:
      return "deadlock";
    case WatchdogTripKind::kLivelock:
      return "livelock";
    case WatchdogTripKind::kInvariant:
      return "invariant-violation";
  }
  return "?";
}

WatchdogTripKind Watchdog::poll(Cycle now,
                                const std::function<Observation()>& observe,
                                const std::function<std::string()>& audit) {
  if (!p_.enabled) return WatchdogTripKind::kNone;
  if (now - last_check_ < p_.check_interval) return WatchdogTripKind::kNone;
  last_check_ = now;

  const Observation obs = observe();

  // Any change in the activity counter is progress. Compared by inequality,
  // not '>', so stats resets (which zero the underlying counters) never
  // masquerade as a stall.
  if (!seen_movement_ || obs.movement != last_movement_) {
    last_movement_ = obs.movement;
    last_progress_ = now;
    seen_movement_ = true;
  }

  // Pre-trip warning: raise once the stall streak or the oldest packet's
  // age crosses `pre_trip_frac` of the corresponding trip threshold. The
  // degradation FSM and telemetry consume this as an early-pressure signal.
  const Cycle stall_warn = static_cast<Cycle>(
      static_cast<double>(p_.deadlock_window) * p_.pre_trip_frac);
  const Cycle age_warn = static_cast<Cycle>(
      static_cast<double>(p_.livelock_age) * p_.pre_trip_frac);
  const bool stall_hot =
      obs.live_packets > 0 && stall_warn > 0 && now - last_progress_ >= stall_warn;
  const bool age_hot = obs.has_oldest && age_warn > 0 &&
                       now >= obs.oldest_created &&
                       now - obs.oldest_created >= age_warn;
  const bool warn = stall_hot || age_hot;
  if (warn && !warning_active_) ++pre_trip_count_;
  warning_active_ = warn;

  if (obs.live_packets > 0 && now - last_progress_ >= p_.deadlock_window) {
    std::ostringstream os;
    os << "no flit movement for " << (now - last_progress_) << " cycles (window "
       << p_.deadlock_window << ") with " << obs.live_packets
       << " packet(s) in flight";
    detail_ = os.str();
    return WatchdogTripKind::kDeadlock;
  }

  if (obs.has_oldest && now >= obs.oldest_created &&
      now - obs.oldest_created >= p_.livelock_age) {
    std::ostringstream os;
    os << "oldest live packet is " << (now - obs.oldest_created)
       << " cycles old (ceiling " << p_.livelock_age << ")";
    detail_ = os.str();
    return WatchdogTripKind::kLivelock;
  }

  if (p_.audit_interval > 0 && now - last_audit_ >= p_.audit_interval) {
    last_audit_ = now;
    const std::string err = audit();
    if (!err.empty()) {
      detail_ = err;
      return WatchdogTripKind::kInvariant;
    }
  }

  return WatchdogTripKind::kNone;
}

}  // namespace arinoc
