#include "core/heatmap.hpp"

#include <algorithm>
#include <sstream>

namespace arinoc {

namespace detail {

char shade(double value, double max) {
  static const char kShades[] = " .:-=+*#%@";
  if (max <= 0.0) return kShades[0];
  const double frac = std::clamp(value / max, 0.0, 1.0);
  const int idx = static_cast<int>(frac * 9.0 + 0.5);
  return kShades[idx];
}

}  // namespace detail

namespace {

std::string render(const Network& net, Cycle elapsed,
                   double (*value_of)(const Router&, Cycle),
                   const char* title) {
  const Mesh* mesh_view = net.fabric().mesh_view();
  if (!mesh_view) {
    // ASCII heatmaps are 2D-grid renderings; non-mesh fabrics have no such
    // embedding, so degrade gracefully instead of guessing a layout.
    return std::string(title) + ": unavailable (fabric '" +
           net.fabric().kind() + "' has no mesh geometry)\n";
  }
  const Mesh& mesh = *mesh_view;
  double max = 0.0;
  std::vector<double> values(mesh.nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(mesh.nodes()); ++n) {
    values[static_cast<std::size_t>(n)] = value_of(net.router(n), elapsed);
    max = std::max(max, values[static_cast<std::size_t>(n)]);
  }
  std::ostringstream os;
  os << title << " (peak " << max << " flit/cycle; M = MC)\n";
  for (std::uint32_t y = 0; y < mesh.height(); ++y) {
    os << "  ";
    for (std::uint32_t x = 0; x < mesh.width(); ++x) {
      const NodeId n = mesh.node_at(x, y);
      os << (mesh.is_mc(n) ? 'M' : 'c')
         << detail::shade(values[static_cast<std::size_t>(n)], max) << ' ';
    }
    os << '\n';
  }
  return os.str();
}

double link_value(const Router& r, Cycle elapsed) {
  std::uint64_t flits = 0;
  for (int d = 0; d < kNumDirections; ++d) flits += r.flits_sent(d);
  return elapsed ? static_cast<double>(flits) / static_cast<double>(elapsed)
                 : 0.0;
}

double injection_value(const Router& r, Cycle elapsed) {
  return elapsed ? static_cast<double>(r.flits_injected()) /
                       static_cast<double>(elapsed)
                 : 0.0;
}

}  // namespace

std::string link_heatmap(const Network& net, Cycle elapsed) {
  return render(net, elapsed, link_value, "router link activity");
}

std::string injection_heatmap(const Network& net, Cycle elapsed) {
  return render(net, elapsed, injection_value, "injection activity");
}

}  // namespace arinoc
