// Parameter-sweep driver: runs a grid of (config variant x scheme x
// benchmark) simulations and renders the results as CSV — the plumbing
// behind "make the plot for figure X" scripts.
//
// Execution goes through the exec subsystem (src/exec): the grid is mapped
// onto a work-stealing thread pool, results come back in grid order and are
// byte-identical for any `jobs` count, a cell that trips the watchdog
// records a per-cell error instead of killing the sweep, and an optional
// on-disk cache skips cells whose (config, scheme, benchmark) already ran.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"

namespace arinoc {

/// One axis point: a label plus a config mutation.
struct SweepPoint {
  std::string label;
  std::function<void(Config&)> tweak;
};

struct SweepCell {
  std::string point;      ///< SweepPoint label.
  std::string scheme;     ///< Scheme name.
  std::string benchmark;
  std::string fabric;     ///< Reply-fabric tag (see CellResult::fabric).
  Metrics metrics;        ///< Zeroed when the cell failed.

  // Crash isolation: a failing cell (watchdog trip, invalid config, any
  // exception) is recorded here; the rest of the grid still runs.
  std::string error;       ///< Empty = success.
  std::string error_kind;  ///< "config" | "deadlock" | "livelock" |
                           ///< "invariant-violation" | "runtime".
  bool from_cache = false;
  /// Telemetry JSONL written for this cell (sampling enabled, run ok).
  std::string telemetry_path;
  /// Attribution report JSON written for this cell (attribution on, run ok).
  std::string attr_path;

  bool ok() const { return error.empty(); }
};

class Sweep {
 public:
  explicit Sweep(Config base) : base_(std::move(base)) {}

  Sweep& over(std::vector<SweepPoint> points) {
    points_ = std::move(points);
    return *this;
  }
  Sweep& schemes(std::vector<Scheme> schemes) {
    schemes_ = std::move(schemes);
    return *this;
  }
  Sweep& benchmarks(std::vector<std::string> benchmarks) {
    benchmarks_ = std::move(benchmarks);
    return *this;
  }

  // ---- Execution knobs (see src/exec/runner.hpp) ----
  /// Worker threads; 0 (default) = hardware concurrency, 1 = serial.
  Sweep& jobs(unsigned n) {
    jobs_ = n;
    return *this;
  }
  /// On-disk result cache; disabled by default. An empty dir means
  /// $ARINOC_CACHE_DIR or ".arinoc-cache".
  Sweep& cache(bool enabled, std::string dir = "") {
    cache_enabled_ = enabled;
    cache_dir_ = std::move(dir);
    return *this;
  }
  /// Live [done/total] + ETA reporting on stderr; off by default.
  Sweep& progress(bool on) {
    progress_ = on;
    return *this;
  }
  /// Per-cell telemetry: sample every `interval` cycles and write one JSONL
  /// series per cell into `dir` (empty = "arinoc-telemetry"). 0 disables.
  /// Sampling cells bypass the result cache.
  Sweep& sample(Cycle interval, std::string dir = "") {
    sample_interval_ = interval;
    telemetry_dir_ = std::move(dir);
    return *this;
  }
  /// Per-cell latency attribution: write one report JSON per cell into
  /// `dir` and fill the Metrics attr summary (the CSV `bottleneck` column).
  /// Attribution cells bypass the result cache. `window` = congestion-series
  /// window in cycles (0 = the attributor default).
  Sweep& attribution(std::string dir, Cycle window = 0) {
    attr_dir_ = std::move(dir);
    attr_window_ = window;
    return *this;
  }

  /// Runs the full grid (points x schemes x benchmarks). Results are in
  /// grid order regardless of jobs/scheduling.
  std::vector<SweepCell> run() const;

  /// CSV with one row per cell: point,scheme,benchmark,<metric columns>,
  /// error. Fields are RFC-4180 quoted when they contain commas, quotes,
  /// or newlines (sweep-point labels are free-form strings).
  static std::string to_csv(const std::vector<SweepCell>& cells);

  /// RFC-4180 field quoting helper (exposed for tests and other emitters).
  static std::string csv_escape(const std::string& field);

 private:
  Config base_;
  std::vector<SweepPoint> points_;
  std::vector<Scheme> schemes_;
  std::vector<std::string> benchmarks_;
  unsigned jobs_ = 0;
  bool cache_enabled_ = false;
  std::string cache_dir_;
  bool progress_ = false;
  Cycle sample_interval_ = 0;
  std::string telemetry_dir_;
  std::string attr_dir_;
  Cycle attr_window_ = 0;
};

}  // namespace arinoc
