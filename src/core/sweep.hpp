// Parameter-sweep driver: runs a grid of (config variant x scheme x
// benchmark) simulations and renders the results as CSV — the plumbing
// behind "make the plot for figure X" scripts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"

namespace arinoc {

/// One axis point: a label plus a config mutation.
struct SweepPoint {
  std::string label;
  std::function<void(Config&)> tweak;
};

struct SweepCell {
  std::string point;      ///< SweepPoint label.
  std::string scheme;     ///< Scheme name.
  std::string benchmark;
  Metrics metrics;
};

class Sweep {
 public:
  explicit Sweep(Config base) : base_(std::move(base)) {}

  Sweep& over(std::vector<SweepPoint> points) {
    points_ = std::move(points);
    return *this;
  }
  Sweep& schemes(std::vector<Scheme> schemes) {
    schemes_ = std::move(schemes);
    return *this;
  }
  Sweep& benchmarks(std::vector<std::string> benchmarks) {
    benchmarks_ = std::move(benchmarks);
    return *this;
  }

  /// Runs the full grid (points x schemes x benchmarks), in order.
  std::vector<SweepCell> run() const;

  /// CSV with one row per cell: point,scheme,benchmark,<metric columns>.
  static std::string to_csv(const std::vector<SweepCell>& cells);

 private:
  Config base_;
  std::vector<SweepPoint> points_;
  std::vector<Scheme> schemes_;
  std::vector<std::string> benchmarks_;
};

}  // namespace arinoc
