// ASCII heatmaps of per-router activity over the mesh: a quick visual of
// where traffic concentrates (the paper's "hot regions around memory
// controllers", §4.1). Renders the mesh as a W x H grid; each cell shows
// the node role (M = memory controller, c = compute) and a shade from the
// normalized activity: " .:-=+*#%@" (cold -> hot).
#pragma once

#include <string>

#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace arinoc {

/// Flits forwarded per router per cycle (all direction outputs).
std::string link_heatmap(const Network& net, Cycle elapsed);

/// Flits injected per router per cycle (the injection hot spots).
std::string injection_heatmap(const Network& net, Cycle elapsed);

namespace detail {
/// Maps a value in [0, max] to a shade character (used by both heatmaps).
char shade(double value, double max);
}  // namespace detail

}  // namespace arinoc
