#include "core/scheme.hpp"

#include <algorithm>
#include <cmath>

namespace arinoc {

std::uint32_t min_speedup_eq1(double inj_rate_pkt,
                              double mean_flits_per_pkt) {
  const double s = inj_rate_pkt * mean_flits_per_pkt;
  return static_cast<std::uint32_t>(std::max(1.0, std::ceil(s)));
}

std::uint32_t max_speedup_eq2(std::uint32_t non_local_outputs,
                              std::uint32_t num_vcs) {
  return std::max(1u, std::min(non_local_outputs, num_vcs));
}

std::uint32_t recommended_speedup(double inj_rate_pkt,
                                  double mean_flits_per_pkt,
                                  std::uint32_t non_local_outputs,
                                  std::uint32_t num_vcs) {
  return std::min(min_speedup_eq1(inj_rate_pkt, mean_flits_per_pkt),
                  max_speedup_eq2(non_local_outputs, num_vcs));
}

double mean_reply_flits(double read_frac, std::uint32_t long_flits) {
  return read_frac * long_flits + (1.0 - read_frac) * 1.0;
}

}  // namespace arinoc
