// Experiment driver helpers shared by the bench binaries: building the
// Table-I base configuration, running (scheme x benchmark) combinations and
// collecting metrics.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {

/// The paper's Table-I configuration. `run_cycles`/`warmup_cycles` default
/// to values that keep the full-suite benches minutes-fast; individual
/// benches may lengthen them.
Config make_base_config();

/// Simulation length override honoured by every bench binary:
/// ARINOC_RUN_CYCLES / ARINOC_WARMUP_CYCLES environment variables.
Config apply_env_overrides(Config cfg);

struct RunResult {
  std::string benchmark;
  Scheme scheme;
  Metrics metrics;
};

/// Runs one benchmark under one scheme (with optional config tweaking after
/// the scheme preset is applied) and returns the measured metrics.
Metrics run_scheme(const Config& base, Scheme scheme,
                   const std::string& benchmark,
                   const std::function<void(Config&)>& tweak = nullptr,
                   bool da2mesh = false);

/// Runs a list of benchmarks under one scheme.
std::vector<RunResult> run_suite(const Config& base, Scheme scheme,
                                 const std::vector<std::string>& benchmarks,
                                 bool da2mesh = false);

}  // namespace arinoc
