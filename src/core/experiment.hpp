// Experiment driver helpers shared by the bench binaries: building the
// Table-I base configuration, running (scheme x benchmark) combinations and
// collecting metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "core/gpgpu_sim.hpp"
#include "workloads/benchmark.hpp"

namespace arinoc {

/// The paper's Table-I configuration. `run_cycles`/`warmup_cycles` default
/// to values that keep the full-suite benches minutes-fast; individual
/// benches may lengthen them.
Config make_base_config();

/// Simulation length override honoured by every bench binary:
/// ARINOC_RUN_CYCLES / ARINOC_WARMUP_CYCLES environment variables.
Config apply_env_overrides(Config cfg);

struct RunResult {
  std::string benchmark;
  Scheme scheme;
  Metrics metrics;
};

/// Deterministic per-cell RNG seed: SplitMix64 over seed ^ FNV-1a(benchmark).
/// Different workloads get decorrelated streams; every scheme/point
/// comparison on the same benchmark stays seed-paired. This is the single
/// seeding discipline for run_scheme, run_suite, Sweep, and exec — results
/// depend only on (config, workload), never on thread count or scheduling.
std::uint64_t derive_cell_seed(std::uint64_t seed, std::string_view benchmark);

/// Resolves the full config for one simulation cell: scheme preset, then
/// the optional tweak, then per-cell seed derivation. Throws
/// std::invalid_argument when the result fails Config::validate().
Config resolve_cell_config(const Config& base, Scheme scheme,
                           const std::string& benchmark,
                           const std::function<void(Config&)>& tweak =
                               nullptr);

/// Runs one benchmark under one scheme (with optional config tweaking after
/// the scheme preset is applied) and returns the measured metrics.
Metrics run_scheme(const Config& base, Scheme scheme,
                   const std::string& benchmark,
                   const std::function<void(Config&)>& tweak = nullptr,
                   bool da2mesh = false);

/// Runs a list of benchmarks under one scheme.
std::vector<RunResult> run_suite(const Config& base, Scheme scheme,
                                 const std::vector<std::string>& benchmarks,
                                 bool da2mesh = false);

}  // namespace arinoc
