// Top-level GPGPU system simulator: SIMT cores + request network + memory
// controllers (L2 + GDDR5) + reply network (mesh or DA2mesh overlay), wired
// per the end-to-end flow of paper Fig. 2.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/active_set.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "core/energy.hpp"
#include "core/watchdog.hpp"
#include "gpu/core.hpp"
#include "mem/address_map.hpp"
#include "mem/mem_controller.hpp"
#include "mem/txn.hpp"
#include "noc/admission.hpp"
#include "noc/network.hpp"
#include "noc/ni.hpp"
#include "noc/overlay.hpp"
#include "noc/topology.hpp"
#include "obs/sampler.hpp"
#include "topo/fabric.hpp"
#include "workloads/benchmark.hpp"
#include "workloads/openloop.hpp"
#include "workloads/pace.hpp"
#include "workloads/tracegen.hpp"

namespace arinoc {

namespace exec {
class ThreadTeam;
}

namespace obs {
class PacketTracer;
class CounterRegistry;
class LatencyAttributor;
class SelfProfiler;
}

/// Everything the evaluation figures need from one measured run.
struct Metrics {
  Cycle cycles = 0;
  std::uint64_t warp_instructions = 0;
  double ipc = 0.0;  ///< Warp instructions per cycle (all cores).

  double request_latency = 0.0;  ///< Mean packet latency, request network.
  double reply_latency = 0.0;    ///< Mean packet latency, reply fabric.

  // ---- Tail latency (log-histogram percentiles, all packets per fabric) ----
  double request_latency_p50 = 0.0;
  double request_latency_p95 = 0.0;
  double request_latency_p99 = 0.0;
  double reply_latency_p50 = 0.0;
  double reply_latency_p95 = 0.0;
  double reply_latency_p99 = 0.0;
  /// p99 latency per PacketType: request types measured on the request
  /// network, reply types on the reply fabric.
  std::array<double, 4> latency_p99_by_type{};

  std::uint64_t mc_stall_cycles = 0;  ///< Summed over MCs (Fig. 12).

  std::array<std::uint64_t, 4> flits_by_type{};    ///< Both networks (Fig. 5).
  std::array<std::uint64_t, 4> packets_by_type{};

  double reply_injection_util = 0.0;  ///< Flits/cycle on MC injection links.
  double reply_internal_util = 0.0;   ///< Flits/cycle on in-network links.
  double request_injection_util = 0.0;
  double request_internal_util = 0.0;

  double ni_occupancy_pkts = 0.0;  ///< Mean reply-NI occupancy (Fig. 6).

  double l1_hit_rate = 0.0;
  double l2_hit_rate = 0.0;
  double dram_row_hit_rate = 0.0;

  // ---- Fault / resilience (reply network; all 0 with faults disabled) ----
  std::uint64_t flits_corrupted = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t packets_retransmitted = 0;
  std::uint64_t packets_recovered = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t credits_lost = 0;
  std::uint64_t link_stall_events = 0;
  std::uint64_t port_failures = 0;

  // ---- Serving / overload robustness (all 0 unless open_loop/admission) ----
  std::uint64_t requests_offered = 0;    ///< Scheduled open-loop arrivals.
  std::uint64_t requests_completed = 0;  ///< Replies delivered to clients.
  std::uint64_t requests_shed = 0;       ///< Dropped by admission/overflow.
  std::uint64_t requests_deferred = 0;   ///< Admission defer (backoff) events.
  std::uint64_t queue_drops = 0;         ///< Client arrival-queue overflows.
  double offered_rate = 0.0;             ///< Offered requests/cycle/CC.
  double goodput = 0.0;                  ///< Completed requests/cycle/CC.
  /// End-to-end serving latency (scheduled arrival -> reply delivery).
  double e2e_latency_p50 = 0.0;
  double e2e_latency_p99 = 0.0;
  double e2e_latency_p999 = 0.0;
  double request_latency_p999 = 0.0;
  double reply_latency_p999 = 0.0;
  std::uint64_t degrade_transitions = 0;  ///< Degradation FSM edges.
  Cycle cycles_normal = 0;
  Cycle cycles_throttled = 0;
  Cycle cycles_shedding = 0;
  std::uint64_t watchdog_pre_trips = 0;  ///< Pre-trip warning rising edges.

  // ---- Latency attribution (inert unless an attributor is attached) ----
  bool attr_enabled = false;
  /// Fraction of delivered e2e latency per stage (ni_queue, vc_wait,
  /// sw_wait, link, eject, retx), per fabric; each array sums to ~1 when
  /// any packets were delivered.
  std::array<double, 6> request_stage_share{};
  std::array<double, 6> reply_stage_share{};
  std::uint64_t attr_violations = 0;  ///< Conservation-check failures.
  /// Rank-1 bottleneck label + share ("reply ni_queue at mc21 61.0%").
  std::string bottleneck;

  ActivityCounters activity;
  EnergyBreakdown energy;
};

class GpgpuSim {
 public:
  /// `use_da2mesh` replaces the mesh reply network with the DA2mesh overlay
  /// (§7.5(4)); ARI-ness of the overlay follows cfg.reply_ni == kSplitQueue.
  GpgpuSim(const Config& cfg, const BenchmarkTraits& traits,
           bool use_da2mesh = false);
  /// Drives the cores from a caller-owned instruction source (e.g. a
  /// TraceFileSource) instead of the synthetic benchmark models. `source`
  /// must outlive the simulator.
  GpgpuSim(const Config& cfg, InstrSource* source, bool use_da2mesh = false);
  ~GpgpuSim();

  /// Advances one cycle. Throws WatchdogTrip if the watchdog (enabled by
  /// default, cfg.watchdog_enabled) detects deadlock, livelock, or a credit
  /// invariant violation.
  void step();
  void run(Cycle cycles);
  /// Warmup for cfg.warmup_cycles, reset statistics, run cfg.run_cycles.
  void run_with_warmup();

  /// Flushes deferred activity bookkeeping (idle-cycle stall counts and
  /// occupancy samples of sleeping cores/MCs) up to the current cycle, so
  /// every observer reads the same state always-on stepping would produce.
  /// Called automatically at the end of run(), before reset_stats(), and on
  /// a watchdog trip; a no-op in always-on mode. Idempotent.
  void sync_activity();

  /// Structured diagnostic snapshot: live packets, router VC occupancy, MC
  /// stall state, blocked links, retransmission state. Used by the watchdog
  /// trip path; callable any time.
  std::string diagnostic_dump(const std::string& reason) const;

  void reset_stats();
  Metrics collect() const;

  Cycle now() const { return cycle_; }
  /// The fabric both networks are built over (any topology).
  const topo::Fabric& fabric() const { return fabric_; }
  /// Mesh view of the fabric; throws std::logic_error on non-mesh fabrics
  /// (heatmaps and other geometry-aware probes — fabric() is generic).
  const Mesh& mesh() const;
  const Config& config() const { return cfg_; }

  // ---- Component access (tests, probes) ----
  Network& request_net() { return *request_net_; }
  Network& reply_net() { return *reply_net_; }
  bool has_overlay() const { return overlay_ != nullptr; }
  Da2MeshOverlay& overlay() { return *overlay_; }
  std::size_t num_cores() const { return cores_.size(); }
  std::size_t num_mcs() const { return mcs_.size(); }
  SimtCore& core(std::size_t i) { return *cores_[i]; }
  MemController& mc(std::size_t i) { return *mcs_[i]; }
  InjectNi& reply_ni(std::size_t mc_index) { return *reply_inject_[mc_index]; }
  /// Outstanding memory transactions (conservation probe for tests).
  std::size_t live_txns() const { return txns_.live(); }

  // ---- Serving layer access (open_loop / admission runs only) ----
  std::size_t num_clients() const { return clients_.size(); }
  OpenLoopClient& client(std::size_t i) { return *clients_[i]; }
  /// Current degradation state; kNormal when admission is disabled.
  DegradeState degrade_state() const {
    return degrade_ ? degrade_->state() : DegradeState::kNormal;
  }
  const Watchdog* watchdog() const { return watchdog_.get(); }

  // ---- Observability (all optional; strictly inert when not enabled) ----
  /// Attaches a packet-lifecycle tracer to both mesh networks and their
  /// routers (null detaches). The DA2mesh overlay reply path carries no
  /// trace hooks; with the overlay active only the request side is traced.
  void attach_tracer(obs::PacketTracer* t);
  obs::PacketTracer* tracer() const { return tracer_; }

  /// Attaches a latency attributor to both networks and their routers (null
  /// detaches) and hands it the fabric graph for labels/coordinates. The
  /// DA2mesh overlay reply path has no hooks; with the overlay active only
  /// the request side is attributed.
  void attach_attributor(obs::LatencyAttributor* a);
  obs::LatencyAttributor* attributor() const { return attr_; }

  /// Attaches the wall-clock self-profiler (null detaches). Host-side
  /// measurement only: simulated behaviour is identical either way.
  void attach_self_profiler(obs::SelfProfiler* p) { prof_ = p; }
  obs::SelfProfiler* self_profiler() const { return prof_; }

  /// Starts periodic telemetry sampling: every `interval` cycles one
  /// TelemetrySample is recorded over the window just ended. interval == 0
  /// disables sampling. reset_stats() clears recorded samples and
  /// re-baselines, so warmup windows never leak into the series.
  void enable_sampling(Cycle interval);
  /// Records a trailing partial-window sample (call once after run()).
  void flush_sampler();
  const obs::TelemetrySampler* sampler() const { return sampler_.get(); }

  /// Registers counter/gauge/histogram probes for every component (cores,
  /// caches, MCs, DRAM, networks, NIs) into `reg`. Probes read live state;
  /// register once, dump whenever.
  void register_counters(obs::CounterRegistry* reg) const;

 private:
  class CcRequestPort;
  class McReplyPort;

  void build(bool use_da2mesh, InstrSource* source);
  /// Phase 4 of step(): advances both networks one cycle — in parallel
  /// across spatial domains when the thread team is active and no
  /// per-event observer (tracer/attributor) forces the serial path.
  void step_networks(Cycle now);

  Config cfg_;
  BenchmarkTraits traits_;
  topo::Fabric fabric_;
  AddressMap amap_;
  TxnPool txns_;
  TraceGen tracegen_;  ///< Default source (synthetic benchmark model).

  std::unique_ptr<Network> request_net_;
  std::unique_ptr<Network> reply_net_;
  std::unique_ptr<Da2MeshOverlay> overlay_;

  std::vector<std::unique_ptr<SimtCore>> cores_;          // Per CC node.
  std::vector<std::unique_ptr<MemController>> mcs_;       // Per MC node.
  std::vector<std::unique_ptr<CcRequestPort>> req_ports_;
  std::vector<std::unique_ptr<McReplyPort>> reply_ports_;

  // ---- Serving layer (open-loop front end + admission control) ----
  /// Non-null iff cfg.open_loop: clients replace cores_ one-for-one per CC.
  std::unique_ptr<PaceProfile> pace_;
  std::vector<std::unique_ptr<OpenLoopClient>> clients_;
  /// Non-null iff cfg.admission_enabled.
  std::unique_ptr<DegradationFsm> degrade_;
  std::vector<std::unique_ptr<AdmissionGate>> gates_;  // Per CC.
  /// Watchdog pre-trip count at the last reset_stats (epoch baseline).
  std::uint64_t pre_trip_base_ = 0;

  std::vector<std::unique_ptr<InjectNi>> request_inject_;  // Per CC.
  std::vector<std::unique_ptr<EjectNi>> request_eject_;    // Per MC.
  std::vector<std::unique_ptr<InjectNi>> reply_inject_;    // Per MC.
  std::vector<std::unique_ptr<EjectNi>> reply_eject_;      // Per CC.

  std::unique_ptr<Watchdog> watchdog_;

  // ---- Domain-parallel network stepping (cfg.threads > 1) ----
  /// Both non-null iff the resolved thread count exceeds 1 and the DA2mesh
  /// overlay is not active (the overlay's single-cycle endpoint coupling is
  /// not decomposable, so it always runs serial). The same partition drives
  /// both networks: they share the fabric, so domain d owns the same router
  /// set in each.
  std::unique_ptr<topo::DomainPartition> part_;
  std::unique_ptr<exec::ThreadTeam> team_;

  // ---- Activity-driven stepping (cfg.activity_driven) ----
  /// One active set per stepped subsystem; each is drained once per cycle
  /// in ascending index order (== the order of the always-on loops).
  /// Network-internal router sets live inside the Network objects.
  bool activity_ = false;
  ActiveSet core_act_;      // Index: core i.
  ActiveSet mc_act_;        // Index: MC i.
  ActiveSet req_inj_act_;   // Index: CC i (request_inject_[i]).
  ActiveSet rep_inj_act_;   // Index: MC i (reply_inject_[i]).
  ActiveSet req_ej_act_;    // Index: MC i (request_eject_[i]).
  ActiveSet rep_ej_act_;    // Index: CC i (reply_eject_[i]).

  // ---- Observability state ----
  /// Cumulative-counter snapshot at the last sample boundary; deltas against
  /// it turn monotone counters into per-window rates.
  struct ObsBaseline {
    std::uint64_t warp_instructions = 0;
    std::uint64_t req_injected = 0;
    std::uint64_t req_delivered = 0;
    std::uint64_t rep_injected = 0;
    std::uint64_t rep_delivered = 0;
    std::uint64_t req_link_flits = 0;
    std::uint64_t rep_link_flits = 0;
    std::uint64_t mc_stall_cycles = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t flits_corrupted = 0;
    std::uint64_t requests_shed = 0;
    std::uint64_t pre_trips = 0;
  };
  ObsBaseline capture_obs_baseline() const;
  void take_sample();

  obs::PacketTracer* tracer_ = nullptr;
  obs::LatencyAttributor* attr_ = nullptr;
  obs::SelfProfiler* prof_ = nullptr;
  std::unique_ptr<obs::TelemetrySampler> sampler_;
  ObsBaseline obs_base_;
  Cycle sample_anchor_ = 0;

  Cycle cycle_ = 0;
  Cycle measure_start_ = 0;
};

}  // namespace arinoc
