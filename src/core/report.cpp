#include "core/report.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace arinoc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string metrics_to_json(const Metrics& m, int indent,
                            const std::string& provenance_json) {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const char* sep = "";
  os << "{\n";
  if (!provenance_json.empty()) {
    os << pad << "\"provenance\": " << provenance_json;
    sep = ",\n";
  }
  auto num = [&](const char* key, double v) {
    os << sep << pad << '"' << key << "\": ";
    // Emit integers without a fraction for cleanliness.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
      os << static_cast<long long>(v);
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      os << buf;
    }
    sep = ",\n";
  };
  num("cycles", static_cast<double>(m.cycles));
  num("warp_instructions", static_cast<double>(m.warp_instructions));
  num("ipc", m.ipc);
  num("request_latency", m.request_latency);
  num("reply_latency", m.reply_latency);
  num("request_latency_p50", m.request_latency_p50);
  num("request_latency_p95", m.request_latency_p95);
  num("request_latency_p99", m.request_latency_p99);
  num("reply_latency_p50", m.reply_latency_p50);
  num("reply_latency_p95", m.reply_latency_p95);
  num("reply_latency_p99", m.reply_latency_p99);
  num("latency_p99_read_request", m.latency_p99_by_type[0]);
  num("latency_p99_write_request", m.latency_p99_by_type[1]);
  num("latency_p99_read_reply", m.latency_p99_by_type[2]);
  num("latency_p99_write_reply", m.latency_p99_by_type[3]);
  num("mc_stall_cycles", static_cast<double>(m.mc_stall_cycles));
  num("flits_read_request", static_cast<double>(m.flits_by_type[0]));
  num("flits_write_request", static_cast<double>(m.flits_by_type[1]));
  num("flits_read_reply", static_cast<double>(m.flits_by_type[2]));
  num("flits_write_reply", static_cast<double>(m.flits_by_type[3]));
  num("reply_injection_util", m.reply_injection_util);
  num("reply_internal_util", m.reply_internal_util);
  num("request_injection_util", m.request_injection_util);
  num("request_internal_util", m.request_internal_util);
  num("ni_occupancy_pkts", m.ni_occupancy_pkts);
  num("l1_hit_rate", m.l1_hit_rate);
  num("l2_hit_rate", m.l2_hit_rate);
  num("dram_row_hit_rate", m.dram_row_hit_rate);
  num("flits_corrupted", static_cast<double>(m.flits_corrupted));
  num("packets_corrupted", static_cast<double>(m.packets_corrupted));
  num("packets_retransmitted", static_cast<double>(m.packets_retransmitted));
  num("packets_recovered", static_cast<double>(m.packets_recovered));
  num("packets_lost", static_cast<double>(m.packets_lost));
  num("duplicates_dropped", static_cast<double>(m.duplicates_dropped));
  num("credits_lost", static_cast<double>(m.credits_lost));
  num("link_stall_events", static_cast<double>(m.link_stall_events));
  num("port_failures", static_cast<double>(m.port_failures));
  num("requests_offered", static_cast<double>(m.requests_offered));
  num("requests_completed", static_cast<double>(m.requests_completed));
  num("requests_shed", static_cast<double>(m.requests_shed));
  num("requests_deferred", static_cast<double>(m.requests_deferred));
  num("queue_drops", static_cast<double>(m.queue_drops));
  num("offered_rate", m.offered_rate);
  num("goodput", m.goodput);
  num("e2e_latency_p50", m.e2e_latency_p50);
  num("e2e_latency_p99", m.e2e_latency_p99);
  num("e2e_latency_p999", m.e2e_latency_p999);
  num("request_latency_p999", m.request_latency_p999);
  num("reply_latency_p999", m.reply_latency_p999);
  num("degrade_transitions", static_cast<double>(m.degrade_transitions));
  num("cycles_normal", static_cast<double>(m.cycles_normal));
  num("cycles_throttled", static_cast<double>(m.cycles_throttled));
  num("cycles_shedding", static_cast<double>(m.cycles_shedding));
  num("watchdog_pre_trips", static_cast<double>(m.watchdog_pre_trips));
  num("retx_flits", static_cast<double>(m.activity.noc_retx_flits));
  num("energy_dynamic_nj", m.energy.dynamic_nj());
  num("energy_static_nj", m.energy.static_nj);
  num("energy_total_nj", m.energy.total_nj());
  // Attribution block only when an attributor ran, so unattributed output
  // stays byte-identical to pre-attribution builds.
  if (m.attr_enabled) {
    static const char* kStageKeys[6] = {"ni_queue", "vc_wait", "sw_wait",
                                        "link",     "eject",   "retx"};
    for (int i = 0; i < 6; ++i) {
      num((std::string("attr_request_") + kStageKeys[i]).c_str(),
          m.request_stage_share[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < 6; ++i) {
      num((std::string("attr_reply_") + kStageKeys[i]).c_str(),
          m.reply_stage_share[static_cast<std::size_t>(i)]);
    }
    num("attr_violations", static_cast<double>(m.attr_violations));
    std::string esc;
    for (const char c : m.bottleneck) {
      if (c == '"' || c == '\\') esc += '\\';
      esc += c;
    }
    os << sep << pad << "\"bottleneck\": \"" << esc << '"';
    sep = ",\n";
  }
  os << "\n}";
  return os.str();
}

}  // namespace arinoc
