// Activity-counter energy model (substitute for GPUWattch + Cadence power,
// paper §7.5(1)). Per-event dynamic energies at 45 nm-class magnitudes plus
// a static power term proportional to runtime. Absolute joules are not the
// point — Fig. 14 is about the *composition*: dynamic energy is nearly
// scheme-independent, static energy scales with execution time.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace arinoc {

struct ActivityCounters {
  std::uint64_t noc_link_flits = 0;       ///< Router-to-router flit hops.
  std::uint64_t noc_buffer_ops = 0;       ///< VC buffer writes + reads.
  std::uint64_t noc_crossbar = 0;         ///< Switch traversals.
  std::uint64_t noc_retx_flits = 0;       ///< Flits re-sent for recovery.
  std::uint64_t dram_activates = 0;
  std::uint64_t dram_accesses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l1_accesses = 0;
  std::uint64_t core_instructions = 0;    ///< Warp instructions.
  Cycle cycles = 0;
};

struct EnergyBreakdown {
  double dynamic_noc_nj = 0.0;
  double dynamic_mem_nj = 0.0;
  double dynamic_core_nj = 0.0;
  double static_nj = 0.0;
  double total_nj() const {
    return dynamic_noc_nj + dynamic_mem_nj + dynamic_core_nj + static_nj;
  }
  double dynamic_nj() const {
    return dynamic_noc_nj + dynamic_mem_nj + dynamic_core_nj;
  }
};

struct EnergyParams {
  // Per-event dynamic energies (nJ).
  double link_flit_nj = 0.005;
  double buffer_op_nj = 0.002;
  double crossbar_nj = 0.004;
  /// Retransmission overhead beyond the re-sent flits' ordinary link/buffer
  /// energy: CRC check + retransmission-buffer read per re-sent flit.
  double retx_flit_nj = 0.002;
  double dram_activate_nj = 1.0;
  double dram_access_nj = 2.0;
  double l2_access_nj = 0.05;
  double l1_access_nj = 0.02;
  double instruction_nj = 0.08;
  // Chip static power (W) -> nJ per 1 GHz cycle. The paper notes the tools
  // model a low static share; keep it modest so the Fig. 14 shape matches.
  double static_w = 6.0;
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& params = {}) : p_(params) {}
  EnergyBreakdown evaluate(const ActivityCounters& c) const;

 private:
  EnergyParams p_;
};

}  // namespace arinoc
