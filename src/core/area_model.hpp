// Analytical area model standing in for the paper's RTL flow (§6.1,
// Synopsys DC + NanGate 45 nm + Cadence Encounter).
//
// Structures are costed from first principles at 45 nm-class magnitudes:
// SRAM buffer bits, a wire-dominated crossbar that grows with switch input
// columns (ARI's injection speedup adds S-1 of them at MC-routers), link
// drivers, allocator/control logic, NI queues and the ARI additions (split
// queue muxes, wide intra-tile links, extra narrow injection links).
// The paper reports ~5.4% per modified NI + MC-router pair and ~0.7%
// amortized over the whole network; the model reproduces those relative
// magnitudes from the same structural deltas.
#pragma once

#include "common/config.hpp"

namespace arinoc {

struct AreaParams {
  double sram_um2_per_bit = 1.2;
  double xbar_coeff = 0.25;        ///< Scales (Pin*W*pitch)*(Pout*W*pitch).
  double wire_pitch_um = 0.14;
  double logic_fraction = 0.25;    ///< Allocators/control vs datapath.
  double link_driver_um2 = 4000;   ///< Per router port.
  double ni_logic_um2 = 16000;     ///< Packetization/reassembly core logic.
  double mux_um2 = 200;            ///< Per added mux/demux.
  double intra_tile_wire_um = 6;   ///< Length of widened MC-NI-router wires.
};

struct AreaReport {
  double baseline_router_um2 = 0;
  double ari_router_um2 = 0;
  double baseline_ni_um2 = 0;
  double ari_ni_um2 = 0;
  /// (ARI pair - baseline pair) / baseline pair, percent (paper: ~5.4%).
  double pair_overhead_pct = 0;
  /// Amortized over both networks' routers + NIs, percent (paper: <1%).
  double network_overhead_pct = 0;
};

class AreaModel {
 public:
  explicit AreaModel(const AreaParams& params = {}) : p_(params) {}

  /// Router area for the given port/VC/buffer geometry.
  double router_um2(std::uint32_t switch_inputs, std::uint32_t outputs,
                    std::uint32_t input_ports, std::uint32_t vcs,
                    std::uint32_t vc_depth_flits,
                    std::uint32_t flit_bits) const;
  /// NI area; `split_queues` > 1 adds distribution muxes and extra narrow
  /// links; `wide_links` counts W-bit intra-tile links.
  double ni_um2(std::uint32_t queue_flits, std::uint32_t flit_bits,
                std::uint32_t split_queues, std::uint32_t wide_links,
                std::uint32_t narrow_links, std::uint32_t wide_bits) const;

  AreaReport evaluate(const Config& cfg) const;

 private:
  AreaParams p_;
};

}  // namespace arinoc
