#include "core/energy.hpp"

namespace arinoc {

EnergyBreakdown EnergyModel::evaluate(const ActivityCounters& c) const {
  EnergyBreakdown e;
  e.dynamic_noc_nj = static_cast<double>(c.noc_link_flits) * p_.link_flit_nj +
                     static_cast<double>(c.noc_buffer_ops) * p_.buffer_op_nj +
                     static_cast<double>(c.noc_crossbar) * p_.crossbar_nj +
                     static_cast<double>(c.noc_retx_flits) * p_.retx_flit_nj;
  e.dynamic_mem_nj =
      static_cast<double>(c.dram_activates) * p_.dram_activate_nj +
      static_cast<double>(c.dram_accesses) * p_.dram_access_nj +
      static_cast<double>(c.l2_accesses) * p_.l2_access_nj;
  e.dynamic_core_nj =
      static_cast<double>(c.l1_accesses) * p_.l1_access_nj +
      static_cast<double>(c.core_instructions) * p_.instruction_nj;
  // 1 cycle @ 1 GHz = 1 ns; P[W] * t[ns] = E[nJ].
  e.static_nj = p_.static_w * static_cast<double>(c.cycles);
  return e;
}

}  // namespace arinoc
