#include "core/gpgpu_sim.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exec/thread_team.hpp"
#include "obs/attr.hpp"
#include "obs/registry.hpp"
#include "obs/selfprof.hpp"
#include "obs/trace.hpp"

namespace arinoc {

// ---------------------------------------------------------------- Ports

/// Request injection glue for one CC node. In closed-loop runs with
/// admission enabled the gate is consulted here (a denial surfaces to the
/// core as plain injection backpressure, so its existing retry loop is the
/// backoff); open-loop runs leave `gate` null because OpenLoopClient asks
/// admission itself before calling this port — exactly one layer charges
/// the token.
class GpgpuSim::CcRequestPort final : public RequestPort {
 public:
  CcRequestPort(GpgpuSim* sim, NodeId cc, InjectNi* ni, AdmissionGate* gate)
      : sim_(sim), cc_(cc), ni_(ni), gate_(gate) {}

  bool try_send_request(bool write, TxnId txn, NodeId dest_mc,
                        Cycle now) override {
    if (gate_ && gate_->request(now) != AdmissionDecision::kAdmit) {
      return false;
    }
    const PacketType type =
        write ? PacketType::kWriteRequest : PacketType::kReadRequest;
    const PacketId id =
        sim_->request_net_->make_packet(type, cc_, dest_mc, 0, txn, now);
    if (ni_->try_accept(id, now)) return true;
    sim_->request_net_->abandon_packet(id);
    // The admitted request never reached the fabric: return the token so
    // admission only charges injected traffic.
    if (gate_) gate_->refund_admit();
    return false;
  }

 private:
  GpgpuSim* sim_;
  NodeId cc_;
  InjectNi* ni_;
  AdmissionGate* gate_;  ///< Null unless closed-loop admission.
};

/// Reply injection glue for one MC node (mesh NI or DA2mesh endpoint).
class GpgpuSim::McReplyPort final : public ReplyPort {
 public:
  McReplyPort(GpgpuSim* sim, NodeId mc, InjectNi* ni)
      : sim_(sim), mc_(mc), ni_(ni) {}

  bool try_send_reply(PacketType type, TxnId txn, NodeId dest,
                      Cycle now) override {
    assert(is_reply(type));
    if (sim_->overlay_) {
      const PacketId id =
          sim_->overlay_->make_packet(type, mc_, dest, txn, now);
      if (sim_->overlay_->try_accept(mc_, id, now)) return true;
      sim_->overlay_->abandon_packet(id);
      return false;
    }
    // Replies are born at the top priority level and decay per hop (§5).
    const auto prio = static_cast<std::uint8_t>(
        sim_->cfg_.priority_levels - 1);
    const PacketId id =
        sim_->reply_net_->make_packet(type, mc_, dest, prio, txn, now);
    if (ni_->try_accept(id, now)) return true;
    sim_->reply_net_->abandon_packet(id);
    return false;
  }

 private:
  GpgpuSim* sim_;
  NodeId mc_;
  InjectNi* ni_;
};

// ---------------------------------------------------------------- Setup

namespace {

NetworkParams request_params(const Config& cfg) {
  NetworkParams p;
  p.activity_driven = cfg.activity_driven;
  p.name = "request";
  p.link_width_bits = cfg.link_width_bits_request;
  p.num_vcs = cfg.num_vcs;
  p.vc_depth_flits = cfg.vc_depth_flits_request();
  // Deeper router pipelines show up as extra per-hop transfer latency.
  p.link_latency = cfg.link_latency + cfg.router_pipeline_stages - 1;
  p.routing = cfg.routing;
  p.non_atomic_vc = cfg.non_atomic_vc;
  p.priority_levels = 1;  // ARI touches only the reply side...
  p.treat_mcs_specially = false;
  // ...unless the request-side negative control is enabled.
  p.treat_ccs_specially = cfg.request_side_ari;
  p.mc_injection_speedup = cfg.request_side_ari ? cfg.injection_speedup : 1;
  return p;
}

NetworkParams reply_params(const Config& cfg) {
  NetworkParams p;
  p.activity_driven = cfg.activity_driven;
  p.name = "reply";
  p.link_width_bits = cfg.link_width_bits_reply;
  p.num_vcs = cfg.num_vcs;
  p.vc_depth_flits = cfg.vc_depth_flits_reply();
  p.link_latency = cfg.link_latency + cfg.router_pipeline_stages - 1;
  p.routing = cfg.routing;
  p.non_atomic_vc = cfg.non_atomic_vc;
  p.priority_levels = cfg.priority_levels;
  p.starvation_threshold = cfg.starvation_threshold;
  p.mc_injection_speedup = cfg.injection_speedup;
  p.mc_injection_ports =
      cfg.reply_ni == NiArch::kMultiPort ? cfg.multiport_ports : 1;
  p.treat_mcs_specially = true;
  // The fault campaign targets the reply network — the paper's bottleneck
  // and the side whose loss the cores cannot tolerate.
  p.fault = fault_params_from(cfg);
  return p;
}

}  // namespace

GpgpuSim::GpgpuSim(const Config& cfg, const BenchmarkTraits& traits,
                   bool use_da2mesh)
    : cfg_(cfg),
      traits_(traits),
      fabric_(topo::make_fabric(cfg)),
      amap_(cfg.num_mcs, cfg.line_bytes, cfg.dram_banks),
      tracegen_(traits, static_cast<std::uint32_t>(fabric_.cc_nodes().size()),
                cfg.warps_per_core, cfg.line_bytes, cfg.seed) {
  build(use_da2mesh, &tracegen_);
}

GpgpuSim::GpgpuSim(const Config& cfg, InstrSource* source, bool use_da2mesh)
    : cfg_(cfg),
      traits_(),
      fabric_(topo::make_fabric(cfg)),
      amap_(cfg.num_mcs, cfg.line_bytes, cfg.dram_banks),
      tracegen_(traits_, 1, 1, cfg.line_bytes, cfg.seed) {
  build(use_da2mesh, source);
}

const Mesh& GpgpuSim::mesh() const {
  const Mesh* m = fabric_.mesh_view();
  if (!m) {
    throw std::logic_error("GpgpuSim::mesh(): fabric '" + fabric_.kind() +
                           "' has no mesh geometry");
  }
  return *m;
}

void GpgpuSim::build(bool use_da2mesh, InstrSource* source) {
  const Config& cfg = cfg_;
  const std::string err = cfg.validate();
  if (!err.empty()) {
    throw std::invalid_argument("invalid configuration: " + err);
  }
  if (use_da2mesh && cfg.fault_enabled()) {
    throw std::invalid_argument(
        "fault injection targets the mesh reply network and is not "
        "supported with the DA2mesh overlay");
  }
  if (use_da2mesh && (cfg.open_loop || cfg.admission_enabled)) {
    throw std::invalid_argument(
        "open-loop serving and admission control read mesh reply-NI queue "
        "state and are not supported with the DA2mesh overlay");
  }
  if (use_da2mesh && !fabric_.mesh_view()) {
    throw std::invalid_argument(
        "the DA2mesh overlay is a mesh-geometry bypass and is not supported "
        "on fabric '" + fabric_.kind() + "'");
  }

  request_net_ = std::make_unique<Network>(request_params(cfg), &fabric_);
  request_net_->data_payload_bits = cfg.data_payload_bits;
  reply_net_ = std::make_unique<Network>(reply_params(cfg), &fabric_);
  reply_net_->data_payload_bits = cfg.data_payload_bits;
  if (use_da2mesh) {
    OverlayParams op;
    op.queue_flits = cfg.ni_queue_flits;
    op.ari = cfg.reply_ni == NiArch::kSplitQueue;
    op.lanes = cfg.split_queues;
    op.data_payload_bits = cfg.data_payload_bits;
    op.link_width_bits = cfg.link_width_bits_reply;
    overlay_ = std::make_unique<Da2MeshOverlay>(op, fabric_.mesh_view());
  }

  const auto& mc_nodes = fabric_.mc_nodes();
  const auto& cc_nodes = fabric_.cc_nodes();

  // Serving layer: the degradation FSM is global (one pressure signal, one
  // state every gate reads); gates are per CC and built alongside their
  // request NI below. The pace profile is parsed up front so a malformed
  // spec or missing pace file fails construction, not cycle 1.
  AdmissionParams ap;
  if (cfg.admission_enabled) {
    ap.rate = cfg.adm_rate;
    ap.burst = cfg.adm_burst;
    ap.throttle_factor = cfg.adm_throttle_factor;
    ap.throttle_occ = cfg.adm_throttle_occ;
    ap.shed_occ = cfg.adm_shed_occ;
    ap.recover_occ = cfg.adm_recover_occ;
    ap.dwell = cfg.adm_dwell;
    degrade_ = std::make_unique<DegradationFsm>(ap);
  }
  if (cfg.open_loop) {
    pace_ = std::make_unique<PaceProfile>(PaceProfile::parse_spec(cfg.pace_spec));
  }

  // Memory controllers + their reply injection path.
  for (std::size_t i = 0; i < mc_nodes.size(); ++i) {
    const NodeId node = mc_nodes[i];
    if (!overlay_) {
      reply_inject_.push_back(
          make_inject_ni(cfg.reply_ni, reply_net_.get(), node, cfg));
    } else {
      reply_inject_.push_back(nullptr);  // Overlay NIs live in the overlay.
    }
    reply_ports_.push_back(std::make_unique<McReplyPort>(
        this, node, reply_inject_.back().get()));
    mcs_.push_back(std::make_unique<MemController>(
        cfg, node, &txns_, &amap_, reply_ports_.back().get()));
    request_eject_.push_back(std::make_unique<EjectNi>(
        request_net_.get(), node, mcs_.back().get(),
        cfg.mc_eject_flits_per_cycle));
  }

  // Cores + their request injection / reply ejection paths. With
  // cfg.open_loop the SIMT cores are replaced one-for-one by open-loop
  // serving clients (cores_ stays empty); everything below the request
  // port — NIs, mesh, MCs, replies — is unchanged.
  for (std::size_t i = 0; i < cc_nodes.size(); ++i) {
    const NodeId node = cc_nodes[i];
    // Request-side CC NIs use the enhanced single-queue architecture: the
    // paper leaves the request network untouched (split queues only under
    // the request_side_ari negative control).
    request_inject_.push_back(make_inject_ni(
        cfg.request_side_ari ? NiArch::kSplitQueue : NiArch::kEnhanced,
        request_net_.get(), node, cfg));
    if (degrade_) {
      gates_.push_back(std::make_unique<AdmissionGate>(ap, degrade_.get()));
    }
    AdmissionGate* gate = degrade_ ? gates_.back().get() : nullptr;
    // Exactly one layer consults the gate: the open-loop client (which
    // owns defer/backoff) or, closed-loop, the request port.
    req_ports_.push_back(std::make_unique<CcRequestPort>(
        this, node, request_inject_.back().get(),
        cfg.open_loop ? nullptr : gate));
    PacketSink* reply_sink = nullptr;
    if (cfg.open_loop) {
      clients_.push_back(std::make_unique<OpenLoopClient>(
          cfg, static_cast<std::uint32_t>(i), node, pace_.get(), &txns_,
          &amap_, &fabric_.mc_nodes(), req_ports_.back().get(), gate));
      reply_sink = clients_.back().get();
    } else {
      cores_.push_back(std::make_unique<SimtCore>(
          cfg, static_cast<std::uint32_t>(i), node, source, &txns_, &amap_,
          &fabric_.mc_nodes(), req_ports_.back().get()));
      reply_sink = cores_.back().get();
    }
    if (!overlay_) {
      reply_eject_.push_back(std::make_unique<EjectNi>(
          reply_net_.get(), node, reply_sink));
    } else {
      overlay_->set_sink(node, reply_sink);
    }
  }

  // Recovery: re-injections of NACKed/timed-out reply packets go through the
  // same MC injection NIs as first transmissions.
  if (RetransmitTracker* rtx = reply_net_->retransmit()) {
    for (std::size_t i = 0; i < mc_nodes.size(); ++i) {
      rtx->register_ni(mc_nodes[i], reply_inject_[i].get());
    }
  }

  if (cfg.watchdog_enabled) {
    WatchdogParams wp;
    wp.deadlock_window = cfg.watchdog_deadlock_window;
    wp.livelock_age = cfg.watchdog_livelock_age;
    wp.audit_interval = cfg.watchdog_audit_interval;
    watchdog_ = std::make_unique<Watchdog>(wp);
  }

  // Domain-parallel network stepping: partition the fabric into one spatial
  // domain per thread and spin up the persistent team. threads == 1 (the
  // default) builds none of this and the serial path is untouched.
  // threads == 0 auto-sizes to the host, clamped to the node count; an
  // explicit count larger than the node count is a configuration error
  // (partition_fabric throws). The DA2mesh overlay's same-cycle endpoint
  // coupling is not decomposable, so overlay runs always step serially.
  std::uint32_t threads = cfg.threads;
  if (threads == 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<std::uint32_t>(
        hw, static_cast<std::uint32_t>(fabric_.nodes()));
  }
  if (threads > 1 && !overlay_) {
    part_ = std::make_unique<topo::DomainPartition>(
        topo::partition_fabric(fabric_, threads));
    team_ = std::make_unique<exec::ThreadTeam>(threads);
    request_net_->configure_domains(part_.get(), cfg.domain_epoch);
    reply_net_->configure_domains(part_.get(), cfg.domain_epoch);
  }

  // Activity-driven stepping: register every sleepable component in its
  // subsystem's active set and wire the wake edges (reply delivery -> core,
  // request delivery -> MC, packet accept -> injection NI, ejection-buffer
  // push -> ejection NI; router wake edges live inside Network). Everything
  // starts awake; idle components fall asleep after their first step.
  activity_ = cfg.activity_driven;
  if (activity_) {
    core_act_.resize(cores_.size());
    req_inj_act_.resize(request_inject_.size());
    rep_ej_act_.resize(reply_eject_.size());
    for (std::size_t i = 0; i < cc_nodes.size(); ++i) {
      // Open-loop clients have no sleep state (the pace schedule ticks
      // every cycle), so only real cores register in the active set.
      if (i < cores_.size()) cores_[i]->set_activity_hook(&core_act_, i);
      request_inject_[i]->set_activity_hook(&req_inj_act_, i);
      // Domain-parallel runs install no ejection hooks: routers would fire
      // them from worker threads into the shared active sets. step() scans
      // ejection buffers after the network phase instead, which produces
      // the identical wake set (see the scan's comment).
      if (!overlay_ && !team_) {
        reply_net_->set_eject_hook(cc_nodes[i], &rep_ej_act_, i);
      }
    }
    mc_act_.resize(mcs_.size());
    rep_inj_act_.resize(reply_inject_.size());
    req_ej_act_.resize(request_eject_.size());
    for (std::size_t i = 0; i < mcs_.size(); ++i) {
      mcs_[i]->set_activity_hook(&mc_act_, i);
      if (reply_inject_[i]) {
        reply_inject_[i]->set_activity_hook(&rep_inj_act_, i);
      }
      if (!team_) request_net_->set_eject_hook(mc_nodes[i], &req_ej_act_, i);
    }
    core_act_.wake_all();
    mc_act_.wake_all();
    req_inj_act_.wake_all();
    rep_inj_act_.wake_all();
    req_ej_act_.wake_all();
    rep_ej_act_.wake_all();
  }
}

GpgpuSim::~GpgpuSim() = default;

void GpgpuSim::step() {
  const Cycle now = cycle_;
  // Domain mode can toggle per cycle: per-event observers (tracer,
  // attributor) require the globally-ordered serial path; everything else
  // steps the networks in parallel. set_domain_mode migrates in-flight
  // ring and activity state both ways, so attaching or detaching an
  // observer mid-run stays bit-identical with a pure serial run.
  if (team_) {
    const bool want = !tracer_ && !attr_;
    if (want != request_net_->domains_enabled()) {
      request_net_->set_domain_mode(want);
      reply_net_->set_domain_mode(want);
    }
  }
  if (prof_) prof_->begin(obs::ProfPhase::kFrontend);
  // 0) Degradation FSM: one update per cycle from the reply-side pressure
  // signal (mean reply-NI queue occupancy as a fraction of capacity, plus
  // the watchdog's pre-trip warning), before any traffic source runs so
  // every admission gate sees this cycle's state.
  if (degrade_) {
    double occ = 0.0;
    for (const auto& ni : reply_inject_) {
      occ += static_cast<double>(ni->occupancy_flits());
    }
    occ /= static_cast<double>(reply_inject_.size()) *
           static_cast<double>(cfg_.ni_queue_flits);
    degrade_->update(now, occ, watchdog_ && watchdog_->warning_active());
  }
  // Open-loop clients are paced by the arrival schedule, not system state:
  // they step every cycle in both stepping modes (cores_ is empty here).
  for (auto& cl : clients_) cl->cycle(now);
  if (prof_) {
    prof_->end(obs::ProfPhase::kFrontend);
    // Components that will be stepped this cycle vs the always-on capacity
    // (in always-on mode every component steps).
    const std::uint64_t routers_total =
        static_cast<std::uint64_t>(fabric_.nodes()) * (overlay_ ? 1 : 2);
    if (activity_) {
      prof_->record_wakes(obs::ProfGroup::kCores, core_act_.pending(),
                          cores_.size());
      prof_->record_wakes(obs::ProfGroup::kMcs, mc_act_.pending(),
                          mcs_.size());
      prof_->record_wakes(
          obs::ProfGroup::kInjectNis,
          req_inj_act_.pending() + (overlay_ ? 0 : rep_inj_act_.pending()),
          request_inject_.size() + (overlay_ ? 0 : reply_inject_.size()));
      prof_->record_wakes(
          obs::ProfGroup::kEjectNis,
          req_ej_act_.pending() + rep_ej_act_.pending(),
          request_eject_.size() + reply_eject_.size());
      prof_->record_wakes(
          obs::ProfGroup::kRouters,
          request_net_->routers_pending() +
              (overlay_ ? 0 : reply_net_->routers_pending()),
          routers_total);
    } else {
      prof_->record_wakes(obs::ProfGroup::kCores, cores_.size(),
                          cores_.size());
      prof_->record_wakes(obs::ProfGroup::kMcs, mcs_.size(), mcs_.size());
      prof_->record_wakes(
          obs::ProfGroup::kInjectNis,
          request_inject_.size() + (overlay_ ? 0 : reply_inject_.size()),
          request_inject_.size() + (overlay_ ? 0 : reply_inject_.size()));
      prof_->record_wakes(obs::ProfGroup::kEjectNis,
                          request_eject_.size() + reply_eject_.size(),
                          request_eject_.size() + reply_eject_.size());
      prof_->record_wakes(obs::ProfGroup::kRouters, routers_total,
                          routers_total);
    }
  }
  if (activity_) {
    // Activity-driven stepping: each phase drains its active set in
    // ascending index order — the same order as the always-on loops — so
    // every side effect (arena allocation, trace events, RNG draws) lands
    // in the identical sequence. A component re-wakes itself when its own
    // sleep predicate fails after stepping; external wake edges (deliver,
    // finish_accept, ejection-buffer push) cover everything else.
    // 1) Cores generate and emit traffic (into request NIs via their ports).
    if (prof_) prof_->begin(obs::ProfPhase::kCores);
    core_act_.drain_sorted([&](std::size_t i) {
      cores_[i]->cycle(now);
      if (!cores_[i]->can_sleep()) core_act_.wake(i);
    });
    if (prof_) {
      prof_->end(obs::ProfPhase::kCores);
      prof_->begin(obs::ProfPhase::kMcs);
    }
    // 2) MCs service requests, tick DRAM, forward replies into reply NIs.
    mc_act_.drain_sorted([&](std::size_t i) {
      mcs_[i]->cycle(now);
      if (!mcs_[i]->can_sleep()) mc_act_.wake(i);
    });
    if (prof_) {
      prof_->end(obs::ProfPhase::kMcs);
      prof_->begin(obs::ProfPhase::kInjectNi);
    }
    // 3) Injection NIs move flits into the routers. Accepts from phases 1-2
    //    woke these sets before this drain, so same-cycle supply matches the
    //    always-on schedule; retransmission re-injections (phase 4) wake the
    //    NI for the next cycle, which is also when always-on would move them.
    req_inj_act_.drain_sorted([&](std::size_t i) {
      request_inject_[i]->cycle(now);
      if (!request_inject_[i]->idle()) req_inj_act_.wake(i);
    });
    if (!overlay_) {
      rep_inj_act_.drain_sorted([&](std::size_t i) {
        reply_inject_[i]->cycle(now);
        if (!reply_inject_[i]->idle()) rep_inj_act_.wake(i);
      });
    }
    if (prof_) {
      prof_->end(obs::ProfPhase::kInjectNi);
      prof_->begin(obs::ProfPhase::kNetworks);
    }
    // 4) Networks advance one cycle (router active sets live inside).
    step_networks(now);
    if (team_) {
      // No ejection hooks are installed in domain-parallel builds (routers
      // would fire them from worker threads); scan the ejection buffers
      // instead. The wake set is identical to the hook scheme's: a push in
      // phase 4 leaves the buffer non-empty here, and a buffer left
      // non-empty by a backlogged NI was already re-woken by the phase-5
      // predicate below. wake() is idempotent, so overlap is harmless.
      for (std::size_t i = 0; i < request_eject_.size(); ++i) {
        if (request_net_->router(fabric_.mc_nodes()[i]).has_ejected_flit()) {
          req_ej_act_.wake(i);
        }
      }
      for (std::size_t i = 0; i < reply_eject_.size(); ++i) {
        if (reply_net_->router(fabric_.cc_nodes()[i]).has_ejected_flit()) {
          rep_ej_act_.wake(i);
        }
      }
    }
    if (prof_) {
      prof_->end(obs::ProfPhase::kNetworks);
      prof_->begin(obs::ProfPhase::kEjectNi);
    }
    // 5) Ejection NIs drain router ejection buffers into the sinks. The
    //    routers woke these sets when ejecting (phase 4, same cycle); a
    //    backlog the NI could not clear (drain rate, sink backpressure)
    //    keeps it awake.
    req_ej_act_.drain_sorted([&](std::size_t i) {
      request_eject_[i]->cycle(now);
      if (request_net_->router(fabric_.mc_nodes()[i]).has_ejected_flit()) {
        req_ej_act_.wake(i);
      }
    });
    rep_ej_act_.drain_sorted([&](std::size_t i) {
      reply_eject_[i]->cycle(now);
      if (reply_net_->router(fabric_.cc_nodes()[i]).has_ejected_flit()) {
        rep_ej_act_.wake(i);
      }
    });
    if (prof_) prof_->end(obs::ProfPhase::kEjectNi);
  } else {
    // 1) Cores generate and emit traffic (into request NIs via their ports).
    if (prof_) prof_->begin(obs::ProfPhase::kCores);
    for (auto& core : cores_) core->cycle(now);
    if (prof_) {
      prof_->end(obs::ProfPhase::kCores);
      prof_->begin(obs::ProfPhase::kMcs);
    }
    // 2) MCs service requests, tick DRAM, forward replies into reply NIs.
    for (auto& mc : mcs_) mc->cycle(now);
    if (prof_) {
      prof_->end(obs::ProfPhase::kMcs);
      prof_->begin(obs::ProfPhase::kInjectNi);
    }
    // 3) Injection NIs move flits into the routers.
    for (auto& ni : request_inject_) ni->cycle(now);
    if (!overlay_) {
      for (auto& ni : reply_inject_) ni->cycle(now);
    }
    if (prof_) {
      prof_->end(obs::ProfPhase::kInjectNi);
      prof_->begin(obs::ProfPhase::kNetworks);
    }
    // 4) Networks advance one cycle.
    step_networks(now);
    if (prof_) {
      prof_->end(obs::ProfPhase::kNetworks);
      prof_->begin(obs::ProfPhase::kEjectNi);
    }
    // 5) Ejection NIs drain router ejection buffers into the sinks.
    for (auto& ni : request_eject_) ni->cycle(now);
    for (auto& ni : reply_eject_) ni->cycle(now);
    if (prof_) prof_->end(obs::ProfPhase::kEjectNi);
  }
  // 6) Sampling.
  if (prof_) prof_->begin(obs::ProfPhase::kSampling);
  if (!overlay_) {
    for (auto& ni : reply_inject_) ni->sample();
  }
  ++cycle_;
  if (sampler_ && cycle_ - sample_anchor_ >= sampler_->interval()) {
    take_sample();
  }
  if (prof_) prof_->end(obs::ProfPhase::kSampling);

  // 7) Liveness checks (read-only; subsampled inside the watchdog). The
  // overlay reply path has no movement probes, so only the mesh networks
  // are monitored there.
  if (prof_) prof_->begin(obs::ProfPhase::kWatchdog);
  if (watchdog_) {
    const auto observe = [this]() {
      Watchdog::Observation obs;
      obs.movement = request_net_->movement_count();
      if (!overlay_) obs.movement += reply_net_->movement_count();
      obs.live_packets = request_net_->arena().live();
      if (!overlay_) obs.live_packets += reply_net_->arena().live();
      if (const RetransmitTracker* rtx = reply_net_->retransmit()) {
        obs.live_packets += rtx->pending();
      }
      if (obs.live_packets > 0) {
        Cycle oldest = request_net_->arena().oldest_created(cycle_);
        if (!overlay_) {
          oldest = std::min(oldest, reply_net_->arena().oldest_created(cycle_));
        }
        if (const RetransmitTracker* rtx = reply_net_->retransmit()) {
          oldest = std::min(oldest, rtx->oldest_pending_created(cycle_));
        }
        obs.oldest_created = oldest;
        obs.has_oldest = true;
      }
      return obs;
    };
    const auto audit = [this]() {
      std::string err = request_net_->validate_credit_invariants();
      if (err.empty() && !overlay_) {
        err = reply_net_->validate_credit_invariants();
      }
      return err;
    };
    const WatchdogTripKind kind = watchdog_->poll(cycle_, observe, audit);
    if (kind != WatchdogTripKind::kNone) {
      std::ostringstream summary;
      summary << "watchdog: " << watchdog_trip_name(kind) << " at cycle "
              << cycle_ << " — " << watchdog_->detail();
      // The dump reads deferred stats (MC queue-occupancy means): flush the
      // bookkeeping of sleeping components first.
      sync_activity();
      throw WatchdogTrip(kind, summary.str(),
                         diagnostic_dump(summary.str()));
    }
  }
  if (prof_) {
    prof_->end(obs::ProfPhase::kWatchdog);
    prof_->on_cycle_end(now);
  }
}

void GpgpuSim::step_networks(Cycle now) {
  if (team_ && request_net_->domains_enabled()) {
    // Fork-join over 2K tasks: K request-net domains + K reply-net domains,
    // all independent (domains own disjoint routers; the two networks share
    // nothing but the fabric graph, which is read-only). The serial
    // begin/finish brackets handle fault scheduling, mailbox merging, and
    // counter fold-in — see Network::step_begin/step_domain/step_finish.
    request_net_->step_begin(now);
    reply_net_->step_begin(now);
    const std::uint32_t k = part_->num_domains;
    team_->run(2 * static_cast<std::size_t>(k), [&](std::size_t i) {
      if (i < k) {
        request_net_->step_domain(static_cast<std::uint32_t>(i), now);
      } else {
        reply_net_->step_domain(static_cast<std::uint32_t>(i - k), now);
      }
    });
    request_net_->step_finish(now);
    reply_net_->step_finish(now);
    return;
  }
  request_net_->step(now);
  if (overlay_) {
    overlay_->step(now);
  } else {
    reply_net_->step(now);
  }
}

void GpgpuSim::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
  // Flush deferred bookkeeping so any observer reading after run() (collect,
  // counter dumps, diagnostic probes) sees always-on-identical state.
  sync_activity();
}

void GpgpuSim::run_with_warmup() {
  run(cfg_.warmup_cycles);
  reset_stats();
  run(cfg_.run_cycles);
}

void GpgpuSim::sync_activity() {
  if (!activity_) return;
  for (auto& c : cores_) c->sync_idle(cycle_);
  for (auto& m : mcs_) m->sync_idle(cycle_);
}

void GpgpuSim::reset_stats() {
  // Book slept cycles against the epoch being closed, not the one starting.
  sync_activity();
  request_net_->reset_stats();
  reply_net_->reset_stats();
  if (overlay_) overlay_->stats().reset();
  for (auto& c : cores_) c->reset_stats();
  for (auto& m : mcs_) m->reset_stats();
  for (auto& ni : reply_inject_) {
    if (ni) ni->reset_stats();
  }
  for (auto& cl : clients_) cl->reset_stats();
  for (auto& g : gates_) g->reset_stats();
  if (degrade_) degrade_->reset_stats();
  pre_trip_base_ = watchdog_ ? watchdog_->pre_trip_count() : 0;
  // Warmup traffic never leaks into measured attribution; packets in flight
  // across the reset simply go unattributed (their remaining hooks no-op).
  if (attr_) attr_->clear();
  if (prof_) prof_->clear();
  measure_start_ = cycle_;
  if (sampler_) {
    // Warmup windows never leak into the series: drop them and re-baseline
    // against the just-reset counters.
    sampler_->clear();
    obs_base_ = capture_obs_baseline();
    sample_anchor_ = cycle_;
  }
}

// ---------------------------------------------------------- Observability

void GpgpuSim::attach_tracer(obs::PacketTracer* t) {
  tracer_ = t;
  request_net_->set_tracer(t, 0);
  reply_net_->set_tracer(t, 1);
}

void GpgpuSim::attach_attributor(obs::LatencyAttributor* a) {
  attr_ = a;
  request_net_->set_attributor(a, 0);
  reply_net_->set_attributor(a, 1);
  if (a) a->set_topology(&fabric_.graph());
}

void GpgpuSim::enable_sampling(Cycle interval) {
  if (interval == 0) {
    sampler_.reset();
    return;
  }
  sampler_ = std::make_unique<obs::TelemetrySampler>(interval);
  obs_base_ = capture_obs_baseline();
  sample_anchor_ = cycle_;
}

void GpgpuSim::flush_sampler() {
  if (sampler_ && cycle_ > sample_anchor_) take_sample();
}

GpgpuSim::ObsBaseline GpgpuSim::capture_obs_baseline() const {
  ObsBaseline b;
  for (const auto& c : cores_) b.warp_instructions += c->warp_instructions();
  const NocStats& req = request_net_->stats();
  b.req_injected = req.packets_injected;
  b.req_delivered = req.total_packets();
  const NocStats& rep = overlay_ ? overlay_->stats() : reply_net_->stats();
  b.rep_injected = rep.packets_injected;
  b.rep_delivered = rep.total_packets();
  b.req_link_flits = request_net_->internal_flits_total();
  for (const auto& mc : mcs_) b.mc_stall_cycles += mc->stall_cycles();
  if (!overlay_) {
    b.rep_link_flits = reply_net_->internal_flits_total();
    b.flits_corrupted = reply_net_->stats().flits_corrupted;
    if (const RetransmitTracker* rtx = reply_net_->retransmit()) {
      b.retransmits = rtx->retransmitted();
    }
  }
  for (const auto& cl : clients_) b.requests_shed += cl->shed();
  if (clients_.empty()) {
    for (const auto& g : gates_) b.requests_shed += g->shed();
  }
  if (watchdog_) b.pre_trips = watchdog_->pre_trip_count();
  return b;
}

void GpgpuSim::take_sample() {
  const Cycle window = cycle_ - sample_anchor_;
  if (window == 0) return;
  const ObsBaseline cur = capture_obs_baseline();
  const double w = static_cast<double>(window);

  obs::TelemetrySample s;
  s.cycle = cycle_;
  s.window = window;
  s.ipc =
      static_cast<double>(cur.warp_instructions - obs_base_.warp_instructions) /
      w;
  s.request_inject_rate =
      static_cast<double>(cur.req_injected - obs_base_.req_injected) / w;
  s.request_deliver_rate =
      static_cast<double>(cur.req_delivered - obs_base_.req_delivered) / w;
  s.reply_inject_rate =
      static_cast<double>(cur.rep_injected - obs_base_.rep_injected) / w;
  s.reply_deliver_rate =
      static_cast<double>(cur.rep_delivered - obs_base_.rep_delivered) / w;
  if (const std::uint32_t links = request_net_->num_internal_links()) {
    s.request_link_util =
        static_cast<double>(cur.req_link_flits - obs_base_.req_link_flits) /
        (w * links);
  }
  if (!overlay_) {
    if (const std::uint32_t links = reply_net_->num_internal_links()) {
      s.reply_link_util =
          static_cast<double>(cur.rep_link_flits - obs_base_.rep_link_flits) /
          (w * links);
    }
    double occ = 0.0;
    for (const auto& ni : reply_inject_) {
      occ += static_cast<double>(ni->occupancy_packets());
    }
    s.ni_occupancy_pkts = occ / static_cast<double>(reply_inject_.size());
    s.buffered_flits = request_net_->buffered_flits_total() +
                       reply_net_->buffered_flits_total();
  } else {
    s.buffered_flits = request_net_->buffered_flits_total();
  }
  s.mc_stall_rate =
      static_cast<double>(cur.mc_stall_cycles - obs_base_.mc_stall_cycles) /
      (w * static_cast<double>(mcs_.size()));
  s.live_packets = txns_.live();
  s.retransmits = cur.retransmits - obs_base_.retransmits;
  s.flits_corrupted = cur.flits_corrupted - obs_base_.flits_corrupted;
  s.degrade_state = static_cast<int>(
      degrade_ ? degrade_->state() : DegradeState::kNormal);
  s.requests_shed = cur.requests_shed - obs_base_.requests_shed;
  s.pre_trip_warnings = cur.pre_trips - obs_base_.pre_trips;

  sampler_->push(s);
  obs_base_ = cur;
  sample_anchor_ = cycle_;
}

void GpgpuSim::register_counters(obs::CounterRegistry* reg) const {
  reg->register_counter("sim.cycles",
                        [this] { return static_cast<std::uint64_t>(cycle_); });
  reg->register_counter("sim.live_txns",
                        [this] { return static_cast<std::uint64_t>(txns_.live()); });

  for (const auto& cp : cores_) {
    const SimtCore* c = cp.get();
    const std::string p = "core" + std::to_string(c->core_id()) + ".";
    reg->register_counter(p + "warp_instructions",
                          [c] { return c->warp_instructions(); });
    reg->register_counter(p + "requests_sent",
                          [c] { return c->requests_sent(); });
    reg->register_counter(p + "issue_stall_cycles",
                          [c] { return c->issue_stall_cycles(); });
    reg->register_counter(p + "l1.hits", [c] { return c->l1().hits(); });
    reg->register_counter(p + "l1.misses", [c] { return c->l1().misses(); });
  }

  for (const auto& clp : clients_) {
    const OpenLoopClient* cl = clp.get();
    const std::string p = "client" + std::to_string(cl->node()) + ".";
    reg->register_counter(p + "offered", [cl] { return cl->offered(); });
    reg->register_counter(p + "completed", [cl] { return cl->completed(); });
    reg->register_counter(p + "shed", [cl] { return cl->shed(); });
    reg->register_counter(p + "defer_events",
                          [cl] { return cl->defer_events(); });
    reg->register_gauge(p + "backlog", [cl] {
      return static_cast<double>(cl->backlog());
    });
    reg->register_histogram(p + "e2e_latency", &cl->e2e_latency());
  }

  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const AdmissionGate* g = gates_[i].get();
    const std::string p = "adm.cc" + std::to_string(i) + ".";
    reg->register_counter(p + "admitted", [g] { return g->admitted(); });
    reg->register_counter(p + "deferred", [g] { return g->deferred(); });
    reg->register_counter(p + "shed", [g] { return g->shed(); });
  }
  if (degrade_) {
    const DegradationFsm* fsm = degrade_.get();
    reg->register_gauge("degrade.state", [fsm] {
      return static_cast<double>(static_cast<int>(fsm->state()));
    });
    reg->register_counter("degrade.transitions",
                          [fsm] { return fsm->transitions(); });
    reg->register_counter("degrade.cycles_throttled", [fsm] {
      return static_cast<std::uint64_t>(
          fsm->cycles_in(DegradeState::kThrottled));
    });
    reg->register_counter("degrade.cycles_shedding", [fsm] {
      return static_cast<std::uint64_t>(
          fsm->cycles_in(DegradeState::kShedding));
    });
  }
  if (watchdog_) {
    const Watchdog* wd = watchdog_.get();
    reg->register_counter("watchdog.pre_trip_warnings",
                          [wd] { return wd->pre_trip_count(); });
  }

  for (const auto& mp : mcs_) {
    const MemController* mc = mp.get();
    const std::string p = "mc" + std::to_string(mc->node()) + ".";
    reg->register_counter(p + "stall_cycles", [mc] {
      return static_cast<std::uint64_t>(mc->stall_cycles());
    });
    reg->register_counter(p + "requests_served",
                          [mc] { return mc->requests_served(); });
    reg->register_gauge(p + "reply_backlog", [mc] {
      return static_cast<double>(mc->reply_backlog());
    });
    reg->register_counter(p + "l2.hits", [mc] { return mc->l2().hits(); });
    reg->register_counter(p + "l2.misses", [mc] { return mc->l2().misses(); });
    reg->register_counter(p + "dram.accesses",
                          [mc] { return mc->dram().accesses(); });
    reg->register_counter(p + "dram.row_hits",
                          [mc] { return mc->dram().row_hits(); });
    reg->register_gauge(p + "dram.queue_depth", [mc] {
      return static_cast<double>(mc->dram().queue_depth());
    });
  }

  const auto register_net = [reg](const Network* net, const std::string& p) {
    reg->register_counter(p + "packets_injected", [net] {
      return net->stats().packets_injected;
    });
    reg->register_counter(p + "packets_delivered",
                          [net] { return net->stats().total_packets(); });
    reg->register_counter(p + "movement",
                          [net] { return net->movement_count(); });
    reg->register_gauge(p + "buffered_flits", [net] {
      return static_cast<double>(net->buffered_flits_total());
    });
    for (std::size_t t = 0; t < 4; ++t) {
      reg->register_histogram(
          p + "latency." + packet_type_name(static_cast<PacketType>(t)),
          &net->stats().latency_hist[t]);
    }
  };
  register_net(request_net_.get(), "request.");
  if (!overlay_) {
    register_net(reply_net_.get(), "reply.");
    reg->register_gauge("reply.ni_occupancy_pkts", [this] {
      double occ = 0.0;
      for (const auto& ni : reply_inject_) {
        occ += static_cast<double>(ni->occupancy_packets());
      }
      return reply_inject_.empty()
                 ? 0.0
                 : occ / static_cast<double>(reply_inject_.size());
    });
    if (const RetransmitTracker* rtx = reply_net_->retransmit()) {
      reg->register_counter("reply.retransmitted",
                            [rtx] { return rtx->retransmitted(); });
      reg->register_counter("reply.recovered",
                            [rtx] { return rtx->recovered(); });
      reg->register_counter("reply.lost", [rtx] { return rtx->lost(); });
    }
  }
}

std::string GpgpuSim::diagnostic_dump(const std::string& reason) const {
  std::ostringstream os;
  os << "==== arinoc diagnostic dump (cycle " << cycle_ << ") ====\n";
  if (!reason.empty()) os << "trigger: " << reason << "\n";

  const auto dump_net = [&os](const Network& net, Cycle now) {
    const topo::Fabric& fab = net.fabric();
    const PacketArena& arena = net.arena();
    os << "network '" << net.params().name << "': " << arena.live()
       << " live packet(s)\n";
    // Oldest live packets first-hand: id, type, route, age.
    struct LivePkt {
      PacketId id;
      Cycle created;
    };
    std::vector<LivePkt> live;
    for (PacketId id = 0; id < static_cast<PacketId>(arena.capacity()); ++id) {
      if (arena.is_live(id)) live.push_back({id, arena.at(id).created});
    }
    std::sort(live.begin(), live.end(),
              [](const LivePkt& a, const LivePkt& b) {
                return a.created < b.created;
              });
    const std::size_t show = std::min<std::size_t>(live.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
      const Packet& p = arena.at(live[i].id);
      os << "  pkt " << live[i].id << " " << packet_type_name(p.type) << " "
         << p.src << "->" << p.dest << " age " << (now - p.created)
         << " cycles\n";
    }
    if (live.size() > show) {
      os << "  ... and " << live.size() - show << " more\n";
    }
    // Non-empty router input VCs and ejection backlogs.
    for (NodeId n = 0; n < static_cast<NodeId>(fab.nodes()); ++n) {
      const Router& r = net.router(n);
      std::ostringstream row;
      for (int d = 0; d < fab.max_ports(); ++d) {
        for (std::uint32_t vc = 0; vc < net.params().num_vcs; ++vc) {
          const std::size_t b = r.input_buffered(d, static_cast<int>(vc));
          if (b > 0) {
            row << " " << fab.port_name(d) << "/vc" << vc << "=" << b;
          }
        }
      }
      if (r.ejection_backlog() > 0) row << " eject=" << r.ejection_backlog();
      const std::string s = row.str();
      if (!s.empty()) os << "  router " << n << " occupancy:" << s << "\n";
    }
    if (const FaultInjector* fi = net.fault()) {
      const std::string blocked = fi->describe_blocked();
      if (!blocked.empty()) os << "  blocked links:\n" << blocked;
    }
    if (const RetransmitTracker* rtx = net.retransmit()) {
      os << "  retransmission: " << rtx->pending() << " pending, "
         << rtx->retransmitted() << " retransmitted, " << rtx->lost()
         << " lost\n";
    }
  };
  dump_net(*request_net_, cycle_);
  if (!overlay_) dump_net(*reply_net_, cycle_);

  for (const auto& mc : mcs_) {
    os << "mc node " << mc->node() << ": stall_cycles=" << mc->stall_cycles()
       << " reply_backlog=" << mc->reply_backlog()
       << " mean_request_q=" << mc->mean_request_q() << "\n";
  }
  if (degrade_) {
    std::uint64_t shed = 0;
    for (const auto& cl : clients_) shed += cl->shed();
    if (clients_.empty()) {
      for (const auto& g : gates_) shed += g->shed();
    }
    os << "degradation: state=" << degrade_state_name(degrade_->state())
       << " transitions=" << degrade_->transitions() << " shed=" << shed
       << "\n";
  }
  for (const auto& cl : clients_) {
    if (cl->backlog() == 0 && cl->in_flight() == 0) continue;
    os << "client node " << cl->node() << ": backlog=" << cl->backlog()
       << " in_flight=" << cl->in_flight() << " offered=" << cl->offered()
       << " completed=" << cl->completed() << " shed=" << cl->shed() << "\n";
  }
  os << "live transactions: " << txns_.live() << "\n";
  if (tracer_ && tracer_->size() > 0) {
    os << "last trace events:\n" << tracer_->tail_text(16);
  }
  if (sampler_ && !sampler_->samples().empty()) {
    os << "last telemetry sample: " << sampler_->last_jsonl() << "\n";
  }
  os << "====\n";
  return os.str();
}

Metrics GpgpuSim::collect() const {
  Metrics m;
  m.cycles = cycle_ - measure_start_;
  const double cycles_d = m.cycles ? static_cast<double>(m.cycles) : 1.0;

  for (const auto& c : cores_) m.warp_instructions += c->warp_instructions();
  m.ipc = static_cast<double>(m.warp_instructions) / cycles_d;

  const NocStats& req = request_net_->stats();
  const NocStats& rep = overlay_ ? overlay_->stats() : reply_net_->stats();
  m.request_latency = req.mean_latency_all();
  m.reply_latency = rep.mean_latency_all();
  const LogHistogram req_hist = req.latency_hist_all();
  const LogHistogram rep_hist = rep.latency_hist_all();
  m.request_latency_p50 = req_hist.p50();
  m.request_latency_p95 = req_hist.p95();
  m.request_latency_p99 = req_hist.p99();
  m.reply_latency_p50 = rep_hist.p50();
  m.reply_latency_p95 = rep_hist.p95();
  m.reply_latency_p99 = rep_hist.p99();
  m.request_latency_p999 = req_hist.percentile(99.9);
  m.reply_latency_p999 = rep_hist.percentile(99.9);
  for (std::size_t t = 0; t < 4; ++t) {
    m.latency_p99_by_type[t] = is_reply(static_cast<PacketType>(t))
                                   ? rep.latency_hist[t].p99()
                                   : req.latency_hist[t].p99();
  }

  // Serving / overload robustness. Shed/defer counts come from the clients
  // when they exist (their totals include queue overflow and retry
  // exhaustion) and from the gates alone in closed-loop admission runs —
  // never both, so nothing double-counts.
  if (!clients_.empty()) {
    LogHistogram e2e;
    for (const auto& cl : clients_) {
      m.requests_offered += cl->offered();
      m.requests_completed += cl->completed();
      m.requests_shed += cl->shed();
      m.requests_deferred += cl->defer_events();
      m.queue_drops += cl->queue_drops();
      e2e.merge(cl->e2e_latency());
    }
    const double per_cc = cycles_d * static_cast<double>(clients_.size());
    m.offered_rate = static_cast<double>(m.requests_offered) / per_cc;
    m.goodput = static_cast<double>(m.requests_completed) / per_cc;
    m.e2e_latency_p50 = e2e.p50();
    m.e2e_latency_p99 = e2e.p99();
    m.e2e_latency_p999 = e2e.percentile(99.9);
  } else {
    for (const auto& g : gates_) {
      m.requests_shed += g->shed();
      m.requests_deferred += g->deferred();
    }
  }
  if (degrade_) {
    m.degrade_transitions = degrade_->transitions();
    m.cycles_normal = degrade_->cycles_in(DegradeState::kNormal);
    m.cycles_throttled = degrade_->cycles_in(DegradeState::kThrottled);
    m.cycles_shedding = degrade_->cycles_in(DegradeState::kShedding);
  }
  if (watchdog_) {
    m.watchdog_pre_trips = watchdog_->pre_trip_count() - pre_trip_base_;
  }
  for (std::size_t t = 0; t < 4; ++t) {
    m.flits_by_type[t] = req.flits_delivered[t] + rep.flits_delivered[t];
    m.packets_by_type[t] = req.packets_delivered[t] + rep.packets_delivered[t];
  }

  for (const auto& mc : mcs_) m.mc_stall_cycles += mc->stall_cycles();

  if (!overlay_) {
    m.reply_internal_util = reply_net_->internal_link_utilization(m.cycles);
    m.reply_injection_util =
        reply_net_->injection_link_utilization(m.cycles, fabric_.mc_nodes());
    double occ = 0.0;
    for (const auto& ni : reply_inject_) occ += ni->mean_occupancy_packets();
    m.ni_occupancy_pkts = occ / static_cast<double>(reply_inject_.size());
  }
  m.request_internal_util = request_net_->internal_link_utilization(m.cycles);
  m.request_injection_util =
      request_net_->injection_link_utilization(m.cycles, fabric_.cc_nodes());

  std::uint64_t l1_h = 0, l1_m = 0, l2_h = 0, l2_m = 0;
  for (const auto& c : cores_) {
    l1_h += c->l1().hits();
    l1_m += c->l1().misses();
  }
  std::uint64_t row_hits = 0, dram_acc = 0, dram_act = 0;
  for (const auto& mc : mcs_) {
    l2_h += mc->l2().hits();
    l2_m += mc->l2().misses();
    row_hits += mc->dram().row_hits();
    dram_acc += mc->dram().accesses();
    dram_act += mc->dram().activates();
  }
  m.l1_hit_rate = (l1_h + l1_m) ? double(l1_h) / double(l1_h + l1_m) : 0.0;
  m.l2_hit_rate = (l2_h + l2_m) ? double(l2_h) / double(l2_h + l2_m) : 0.0;
  m.dram_row_hit_rate = dram_acc ? double(row_hits) / double(dram_acc) : 0.0;

  // Fault / resilience counters (reply network only — the campaign target).
  if (!overlay_) {
    const NocStats& rs = reply_net_->stats();
    m.flits_corrupted = rs.flits_corrupted;
    m.packets_corrupted = rs.packets_corrupted;
    m.duplicates_dropped = rs.duplicates_dropped;
    m.packets_lost = rs.packets_lost;
    if (const FaultInjector* fi = reply_net_->fault()) {
      m.credits_lost = fi->counters().credits_dropped;
      m.link_stall_events = fi->counters().stall_events;
      m.port_failures = fi->counters().port_failures;
    }
    if (const RetransmitTracker* rtx = reply_net_->retransmit()) {
      m.packets_retransmitted = rtx->retransmitted();
      m.packets_recovered = rtx->recovered();
      m.packets_lost += rtx->lost();
    }
  }

  // Activity counters for the energy model.
  ActivityCounters& a = m.activity;
  auto add_net = [&a](const Network& net) {
    const topo::Fabric& fab = net.fabric();
    std::uint64_t link_flits = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(fab.nodes()); ++n) {
      const Router& r = net.router(n);
      for (int d = 0; d < fab.max_ports(); ++d) link_flits += r.flits_sent(d);
      a.noc_crossbar += r.crossbar_traversals();
      a.noc_buffer_ops += 2 * (r.flits_injected() + r.flits_ejected());
    }
    a.noc_link_flits += link_flits;
    a.noc_buffer_ops += 2 * link_flits;  // Write + read per buffered hop.
  };
  add_net(*request_net_);
  if (!overlay_) add_net(*reply_net_);
  a.dram_activates = dram_act;
  a.dram_accesses = dram_acc;
  a.l2_accesses = l2_h + l2_m;
  a.l1_accesses = l1_h + l1_m;
  a.core_instructions = m.warp_instructions;
  a.cycles = m.cycles;
  if (!overlay_) {
    if (const RetransmitTracker* rtx = reply_net_->retransmit()) {
      a.noc_retx_flits = rtx->retransmitted_flits();
    }
  }
  // Latency-attribution summary (inert without an attached attributor).
  if (attr_) {
    m.attr_enabled = true;
    m.attr_violations = attr_->conservation_violations();
    for (std::uint8_t net = 0; net < 2; ++net) {
      auto& share = net == 0 ? m.request_stage_share : m.reply_stage_share;
      const double e2e = static_cast<double>(attr_->e2e_total(net));
      if (e2e > 0) {
        for (std::size_t i = 0; i < obs::kNumAttrStages; ++i) {
          share[i] = static_cast<double>(attr_->stage_total(
                         net, static_cast<obs::AttrStage>(i))) /
                     e2e;
        }
      }
    }
    m.bottleneck = attr_->top_label();
  }

  m.energy = EnergyModel{}.evaluate(a);
  return m;
}

}  // namespace arinoc
