#include "noc/router.hpp"

#include <algorithm>
#include <cassert>

#include "obs/attr.hpp"
#include "obs/trace.hpp"

namespace arinoc {

Router::Router(const RouterParams& params, const topo::Fabric* fabric,
               PacketArena* arena)
    : params_(params),
      fabric_(fabric),
      num_dirs_(fabric->max_ports()),
      arena_(arena),
      input_vcs_(num_inputs() * params.num_vcs),
      output_vcs_(num_outputs() * params.num_vcs),
      output_connected_(static_cast<std::size_t>(num_dirs_), false),
      output_blocked_(static_cast<std::size_t>(num_dirs_), false),
      input_connected_(static_cast<std::size_t>(num_dirs_), false),
      ejection_buf_(params.ejection_capacity_flits),
      input_rr_(num_inputs(), 0),
      output_arb_(num_outputs()),
      out_flit_count_(num_outputs(), 0) {
  for (auto& v : input_vcs_) v.buf.set_capacity(params.vc_depth_flits);
  for (std::uint32_t o = 0; o < num_outputs(); ++o) {
    output_arb_[o].resize(num_inputs() * params.num_vcs);
    for (std::uint32_t vc = 0; vc < params.num_vcs; ++vc) {
      // Ejection "credits" are handled through the shared ejection buffer.
      ovc(static_cast<int>(o), static_cast<int>(vc)).credits = 0;
    }
  }
}

void Router::connect_output(int dir, std::uint32_t downstream_depth_flits) {
  assert(dir >= 0 && dir < num_dirs_);
  output_connected_[static_cast<std::size_t>(dir)] = true;
  for (std::uint32_t vc = 0; vc < params_.num_vcs; ++vc) {
    ovc(dir, static_cast<int>(vc)).credits = downstream_depth_flits;
  }
}

void Router::connect_input(int dir) {
  assert(dir >= 0 && dir < num_dirs_);
  input_connected_[static_cast<std::size_t>(dir)] = true;
}

void Router::receive_flit(int dir, int vc, const Flit& flit) {
  InputVC& v = ivc(dir, vc);
  assert(!v.buf.full() && "credit protocol violated");
  if (v.buf.empty()) v.wait_since = 0;  // refreshed at route_stage
  v.buf.push(flit);
  ++buffered_total_;
  if (act_set_) act_set_->wake(act_idx_);
}

void Router::receive_credit(int dir, int vc) {
  OutputVC& o = ovc(dir, vc);
  ++o.credits;
}

std::uint32_t Router::injection_free(std::uint32_t ip, std::uint32_t vc) const {
  return static_cast<std::uint32_t>(
      ivc(num_dirs_ + static_cast<int>(ip), static_cast<int>(vc))
          .buf.free_space());
}

bool Router::injection_vc_ready(std::uint32_t ip, std::uint32_t vc,
                                std::uint32_t flits) const {
  const InputVC& v = ivc(num_dirs_ + static_cast<int>(ip), static_cast<int>(vc));
  const std::uint32_t need =
      std::min<std::uint32_t>(flits, params_.vc_depth_flits);
  if (params_.non_atomic_vc) {
    return v.buf.free_space() >= need;
  }
  return v.buf.empty() && v.state == InputVC::State::kIdle;
}

void Router::inject_flit(std::uint32_t ip, std::uint32_t vc, const Flit& flit,
                         Cycle now) {
  InputVC& v = ivc(num_dirs_ + static_cast<int>(ip), static_cast<int>(vc));
  assert(!v.buf.full() && "injection overflow");
  v.buf.push(flit);
  ++buffered_total_;
  if (act_set_) act_set_->wake(act_idx_);
  if (flit.head) {
    arena_->at(flit.pkt).injected = now;
    if (tracer_) {
      tracer_->record(obs::TraceEventKind::kInject, tracer_net_, now, flit.pkt,
                      arena_->at(flit.pkt).type, params_.node,
                      static_cast<int>(vc));
    }
    if (attr_) attr_->on_inject(attr_net_, flit.pkt, params_.node, now);
  }
  ++injected_flit_count_;
}

Flit Router::pop_ejected_flit() { return ejection_buf_.pop(); }

void Router::reset_stats() {
  out_flit_count_.assign(num_outputs(), 0);
  injected_flit_count_ = 0;
  ejected_flit_count_ = 0;
  crossbar_count_ = 0;
}

std::uint32_t Router::output_free_space(int out_port, int out_vc) const {
  if (out_port == num_dirs_) {
    return static_cast<std::uint32_t>(ejection_buf_.free_space());
  }
  return output_vcs_[static_cast<std::size_t>(out_port) * params_.num_vcs +
                     static_cast<std::size_t>(out_vc)]
      .credits;
}

bool Router::output_vc_admits(int out_port, int vc,
                              std::uint32_t flits) const {
  const OutputVC& o =
      output_vcs_[static_cast<std::size_t>(out_port) * params_.num_vcs +
                  static_cast<std::size_t>(vc)];
  if (o.owner != kInvalidPacket) return false;
  if (out_port == num_dirs_) {
    const std::uint32_t need = std::min<std::uint32_t>(
        flits, params_.ejection_capacity_flits);
    return ejection_buf_.free_space() >= need;
  }
  if (!output_connected_[static_cast<std::size_t>(out_port)]) return false;
  if (output_blocked_[static_cast<std::size_t>(out_port)]) return false;
  if (params_.non_atomic_vc) {
    // Whole-packet forwarding: admit a new packet whenever the full packet
    // fits in the downstream free space, even if the VC is still draining.
    const std::uint32_t need =
        std::min<std::uint32_t>(flits, params_.vc_depth_flits);
    return o.credits >= need;
  }
  return o.credits == params_.vc_depth_flits;  // Atomic: must be empty.
}

bool Router::output_ready_for_flit(int out_port, int out_vc) const {
  if (out_port == num_dirs_) return !ejection_buf_.full();
  if (output_blocked_[static_cast<std::size_t>(out_port)]) return false;
  return output_vcs_[static_cast<std::size_t>(out_port) * params_.num_vcs +
                     static_cast<std::size_t>(out_vc)]
             .credits >= 1;
}

std::uint32_t Router::effective_priority(const InputVC& v, Cycle now) const {
  if (params_.priority_levels <= 1) return 0;
  if (params_.starvation_threshold > 0 && v.wait_since > 0 &&
      now - v.wait_since > params_.starvation_threshold) {
    // §5: grant starving traffic the top level so injection packets cannot
    // monopolize the switch indefinitely.
    return params_.priority_levels - 1;
  }
  // Active VCs arbitrate with the priority latched at VC allocation. The
  // live arena field may already have been decremented by a downstream
  // router (the head flit runs ahead of the body); hardware would not see
  // that — priority rides in the head flit — and not reading the arena here
  // keeps switch arbitration domain-local under parallel stepping.
  if (v.state == InputVC::State::kActive) return v.latched_priority;
  return arena_->at(v.buf.front().pkt).priority;
}

void Router::route_stage(Cycle now) {
  for (std::uint32_t p = 0; p < num_inputs(); ++p) {
    for (std::uint32_t vc = 0; vc < params_.num_vcs; ++vc) {
      InputVC& v = ivc(static_cast<int>(p), static_cast<int>(vc));
      if (v.state != InputVC::State::kIdle || v.buf.empty()) continue;
      const Flit& f = v.buf.front();
      assert(f.head && "non-head flit at idle VC front");
      Packet& pkt = arena_->at(f.pkt);
      v.route = compute_route(*fabric_, params_.node, static_cast<int>(p),
                              pkt.dest, params_.routing);
      v.route_valid = true;
      v.state = InputVC::State::kWaitVC;
      v.wait_since = now;
      // §5: the RC unit decrements the priority field of every packet it
      // routes, except at the packet's own injection router where the
      // injection boost must still apply during switch allocation.
      if (!is_injection_port(static_cast<int>(p)) && pkt.priority > 0) {
        --pkt.priority;
      }
    }
  }
}

void Router::vc_alloc_stage(Cycle now) {
  // With prioritization enabled, high-priority (injecting) packets get the
  // first pass at output-VC allocation — part of transferring them out of
  // the "hot region" quickly (§5).
  const std::uint32_t passes = params_.priority_levels;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    const std::uint32_t wanted = passes - 1 - pass;
    vc_alloc_pass(now, wanted, passes > 1);
  }
  va_rr_ = (va_rr_ + 1) % input_vcs_.size();
}

void Router::vc_alloc_pass(Cycle now, std::uint32_t wanted_priority,
                           bool filter) {
  const std::size_t total = input_vcs_.size();
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t idx = (va_rr_ + i) % total;
    InputVC& v = input_vcs_[idx];
    if (v.state != InputVC::State::kWaitVC) continue;
    if (filter && effective_priority(v, now) != wanted_priority) continue;
    const Packet& pkt = arena_->at(v.buf.front().pkt);
    const std::uint32_t flits = pkt.num_flits;

    // Candidate output ports, best-credit first for adaptive routing.
    std::vector<int> ports = v.route.minimal;
    if (ports.size() > 1) {
      std::stable_sort(ports.begin(), ports.end(), [&](int a, int b) {
        std::uint32_t ca = 0, cb = 0;
        for (std::uint32_t vc = 0; vc < params_.num_vcs; ++vc) {
          ca += output_free_space(a, static_cast<int>(vc));
          cb += output_free_space(b, static_cast<int>(vc));
        }
        return ca > cb;
      });
    }

    int got_port = -1, got_vc = -1;
    const bool adaptive = params_.routing == RoutingAlgo::kMinAdaptive;
    // The fabric's local-port sentinel doubles as the ejection output index
    // (both are num_dirs_), so `out` is the sentinel value either way.
    const int eject = num_dirs_;
    for (int port_dir : ports) {
      const int out = port_dir;
      const std::uint32_t first_vc =
          (adaptive && out != eject) ? 1 : 0;  // VC0 = escape lane.
      for (std::uint32_t vc = first_vc; vc < params_.num_vcs; ++vc) {
        if (output_vc_admits(out, static_cast<int>(vc), flits)) {
          got_port = out;
          got_vc = static_cast<int>(vc);
          break;
        }
      }
      if (got_port != -1) break;
    }
    if (got_port == -1 && adaptive && v.route.xy != eject) {
      // Escape fallback: VC0 along the deadlock-free escape port (the XY
      // direction on meshes; any table port is deadlock-free on any VC).
      if (output_vc_admits(v.route.xy, 0, flits)) {
        got_port = v.route.xy;
        got_vc = 0;
      }
    }
    if (got_port != -1) {
      ovc(got_port, got_vc).owner = v.buf.front().pkt;
      v.out_port = got_port;
      v.out_vc = got_vc;
      v.latched_priority = pkt.priority;
      v.state = InputVC::State::kActive;
      if (tracer_) {
        tracer_->record(obs::TraceEventKind::kVcAlloc, tracer_net_, now,
                        v.buf.front().pkt, pkt.type, params_.node, got_port);
      }
      if (attr_) {
        attr_->on_vc_alloc(attr_net_, v.buf.front().pkt, params_.node,
                           got_port, got_vc, now);
      }
    }
  }
}

void Router::switch_stage(Cycle now, std::vector<OutboundFlit>* out_flits,
                          std::vector<OutboundCredit>* out_credits) {
  // ---- Input arbitration: each port nominates candidates. Normal input
  // ports hold one switch port; injection ports hold S of them (§4.2). ----
  struct OutputRequest {
    std::vector<bool> req;
    std::vector<std::uint32_t> key;
  };
  std::vector<OutputRequest> requests(num_outputs());
  const std::size_t slots = num_inputs() * params_.num_vcs;
  for (auto& r : requests) {
    r.req.assign(slots, false);
    r.key.assign(slots, 0);
  }

  for (std::uint32_t p = 0; p < num_inputs(); ++p) {
    const std::uint32_t budget =
        is_injection_port(static_cast<int>(p)) ? params_.injection_speedup : 1;
    std::uint32_t used = 0;
    // One bit per output port; topo::kMaxPorts (32) + ejection fits u64.
    std::uint64_t port_taken = 0;
    for (std::uint32_t k = 0; k < params_.num_vcs && used < budget; ++k) {
      const std::uint32_t vc =
          static_cast<std::uint32_t>((input_rr_[p] + k) % params_.num_vcs);
      InputVC& v = ivc(static_cast<int>(p), static_cast<int>(vc));
      if (v.state != InputVC::State::kActive || v.buf.empty()) continue;
      if (!output_ready_for_flit(v.out_port, v.out_vc)) continue;
      if ((port_taken >> v.out_port) & 1u) continue;
      port_taken |= 1ull << v.out_port;
      ++used;
      const std::size_t slot =
          static_cast<std::size_t>(p) * params_.num_vcs + vc;
      requests[static_cast<std::size_t>(v.out_port)].req[slot] = true;
      requests[static_cast<std::size_t>(v.out_port)].key[slot] =
          effective_priority(v, now);
    }
    input_rr_[p] = (input_rr_[p] + 1) % params_.num_vcs;
  }

  // ---- Output arbitration + switch traversal. ----
  for (std::uint32_t o = 0; o < num_outputs(); ++o) {
    const int winner = output_arb_[o].pick(requests[o].req, requests[o].key);
    if (winner < 0) continue;
    const int p = winner / static_cast<int>(params_.num_vcs);
    const int vc = winner % static_cast<int>(params_.num_vcs);
    InputVC& v = ivc(p, vc);
    Flit f = v.buf.pop();
    --buffered_total_;
    ++crossbar_count_;
    v.wait_since = now;

    if (static_cast<int>(o) == num_dirs_) {
      assert(!ejection_buf_.full());
      ejection_buf_.push(f);
      if (eject_set_) eject_set_->wake(eject_idx_);
      if (attr_ && f.head) {
        attr_->on_eject_start(attr_net_, f.pkt, params_.node, now);
      }
      ++ejected_flit_count_;
      ++out_flit_count_[static_cast<std::size_t>(num_dirs_)];
    } else {
      OutputVC& out = ovc(static_cast<int>(o), v.out_vc);
      assert(out.credits >= 1);
      --out.credits;
      out_flits->push_back(
          {static_cast<int>(o), v.out_vc, f});
      ++out_flit_count_[o];
    }
    // Return a credit upstream for direction inputs; injection buffers are
    // observed directly by the same-tile NI.
    if (!is_injection_port(p)) {
      out_credits->push_back({p, vc});
    }
    if (f.tail) {
      ovc(static_cast<int>(o), v.out_vc).owner = kInvalidPacket;
      v.state = InputVC::State::kIdle;
      v.out_port = -1;
      v.out_vc = -1;
      v.route_valid = false;
    }
  }
}

void Router::step(Cycle now, std::vector<OutboundFlit>* out_flits,
                  std::vector<OutboundCredit>* out_credits) {
  // Activity catch-up: a step of an empty router mutates exactly one thing —
  // the fairness pointers rotate once (vc_alloc_stage advances va_rr_,
  // switch_stage advances every input_rr_[p]; the priority arbiters do not
  // move on an empty request vector). Replaying those rotations for the
  // slept span makes sleeping bit-identical to always-on stepping. In
  // always-on mode the gap is always zero.
  if (now > next_cycle_) {
    const Cycle gap = now - next_cycle_;
    va_rr_ = (va_rr_ + gap) % input_vcs_.size();
    for (std::size_t& rr : input_rr_) rr = (rr + gap) % params_.num_vcs;
  }
  next_cycle_ = now + 1;
  route_stage(now);
  vc_alloc_stage(now);
  switch_stage(now, out_flits, out_credits);
}

}  // namespace arinoc
