#include "noc/overlay.hpp"

#include <algorithm>
#include <cassert>

namespace arinoc {

Da2MeshOverlay::Da2MeshOverlay(const OverlayParams& params, const Mesh* mesh)
    : params_(params),
      mesh_(mesh),
      mc_index_(mesh->nodes(), -1),
      sinks_(mesh->nodes(), nullptr) {
  const auto& mcs = mesh->mc_nodes();
  endpoints_.resize(mcs.size());
  for (std::size_t i = 0; i < mcs.size(); ++i) {
    mc_index_[static_cast<std::size_t>(mcs[i])] = static_cast<int>(i);
    McEndpoint& ep = endpoints_[i];
    const std::uint32_t nqueues = params.ari ? params.lanes : 1;
    const std::uint32_t long_flits = flits_for(PacketType::kReadReply);
    const std::uint32_t per_queue = std::max(
        params.queue_flits / nqueues, long_flits);
    ep.queues.resize(nqueues);
    for (auto& q : ep.queues) q.capacity_flits = per_queue;
    ep.lanes.resize(params.lanes);
  }
}

std::uint16_t Da2MeshOverlay::flits_for(PacketType type) const {
  if (!is_long_packet(type)) return 1;
  return static_cast<std::uint16_t>(
      1 + ceil_div(params_.data_payload_bits, params_.link_width_bits));
}

Da2MeshOverlay::McEndpoint& Da2MeshOverlay::endpoint(NodeId mc) {
  const int idx = mc_index_[static_cast<std::size_t>(mc)];
  assert(idx >= 0 && "node is not an MC");
  return endpoints_[static_cast<std::size_t>(idx)];
}

void Da2MeshOverlay::set_sink(NodeId cc, PacketSink* sink) {
  sinks_[static_cast<std::size_t>(cc)] = sink;
}

PacketId Da2MeshOverlay::make_packet(PacketType type, NodeId src, NodeId dest,
                                     std::uint64_t txn, Cycle now) {
  ++stats_.packets_injected;
  return arena_.create(type, src, dest, flits_for(type), 0, txn, now);
}

bool Da2MeshOverlay::try_accept(NodeId mc, PacketId id, Cycle now) {
  McEndpoint& ep = endpoint(mc);
  const Packet& pkt = arena_.at(id);
  for (std::size_t k = 0; k < ep.queues.size(); ++k) {
    const std::size_t qi = (ep.accept_rr + k) % ep.queues.size();
    NiQueue& q = ep.queues[qi];
    if (q.flits + pkt.num_flits > q.capacity_flits) continue;
    q.pkts.push_back(id);
    q.flits += pkt.num_flits;
    ep.accept_rr = (qi + 1) % ep.queues.size();
    arena_.at(id).created = now;
    return true;
  }
  return false;
}

void Da2MeshOverlay::step(Cycle now) {
  // Deliver packets whose overlay flight completed.
  for (std::size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].arrive <= now) {
      const PacketId id = in_flight_[i].pkt;
      Packet& pkt = arena_.at(id);
      pkt.ejected = now;
      if (PacketSink* sink = sinks_[static_cast<std::size_t>(pkt.dest)]) {
        sink->deliver(pkt, now);
      }
      stats_.record_delivery(pkt, now);
      arena_.retire(id);
      in_flight_[i] = in_flight_.back();
      in_flight_.pop_back();
    } else {
      ++i;
    }
  }

  for (McEndpoint& ep : endpoints_) {
    // Plain DA2mesh: only lane 0 can be fed (single narrow NI read port);
    // ARI: queue i feeds lane i, all lanes concurrently.
    const std::size_t active_lanes = params_.ari ? ep.lanes.size() : 1;
    for (std::size_t li = 0; li < active_lanes; ++li) {
      Lane& lane = ep.lanes[li];
      NiQueue& q = ep.queues[params_.ari ? li : 0];
      if (lane.busy_pkt == kInvalidPacket && !q.pkts.empty()) {
        lane.busy_pkt = q.pkts.front();
        q.pkts.pop_front();
        Packet& pkt = arena_.at(lane.busy_pkt);
        pkt.injected = now;
        q.flits -= pkt.num_flits;
        lane.flits_left = pkt.num_flits;
        lane.rate_accum = 0.0;
      }
      if (lane.busy_pkt == kInvalidPacket) continue;
      // Serialize at the lane rate; the plain-mode lane is additionally
      // capped at 1 flit/cycle by the NI read port.
      const double rate =
          params_.ari ? params_.lane_rate : std::min(params_.lane_rate, 1.0);
      lane.rate_accum += rate;
      while (lane.rate_accum >= 1.0 && lane.flits_left > 0) {
        lane.rate_accum -= 1.0;
        --lane.flits_left;
      }
      if (lane.flits_left == 0) {
        in_flight_.push_back(
            {lane.busy_pkt, now + params_.base_wire_latency});
        lane.busy_pkt = kInvalidPacket;
      }
    }
  }
}

std::size_t Da2MeshOverlay::occupancy_flits(NodeId mc) const {
  const int idx = mc_index_[static_cast<std::size_t>(mc)];
  assert(idx >= 0);
  std::size_t s = 0;
  for (const auto& q : endpoints_[static_cast<std::size_t>(idx)].queues) {
    s += q.flits;
  }
  return s;
}

}  // namespace arinoc
