// Flit: the unit of link transfer and buffering. Flits carry only a packet
// reference plus head/tail markers; all per-packet metadata lives in the
// PacketArena so buffered flits stay small.
#pragma once

#include "common/types.hpp"

namespace arinoc {

struct Flit {
  PacketId pkt = kInvalidPacket;
  bool head = false;
  bool tail = false;
  /// Set by the fault injector when the flit crosses a corrupting link;
  /// stands in for a failed CRC check at the ejection NI.
  bool corrupted = false;
  std::uint16_t seq = 0;  ///< Position within the packet (0 = head).

  bool valid() const { return pkt != kInvalidPacket; }
};

}  // namespace arinoc
