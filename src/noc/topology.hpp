// 2D mesh topology with diamond memory-controller placement (Abts et al.,
// paper Table I). Maps node ids to coordinates, enumerates neighbour links,
// and designates which nodes are MCs vs compute clusters.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace arinoc {

/// Mesh port directions; kLocal is injection/ejection.
enum Direction : int {
  kNorth = 0,
  kEast = 1,
  kSouth = 2,
  kWest = 3,
  kNumDirections = 4,
  kLocal = 4,
};

const char* direction_name(int dir);

/// Opposite direction (link endpoint pairing).
int opposite(int dir);

class Mesh {
 public:
  Mesh(std::uint32_t width, std::uint32_t height, std::uint32_t num_mcs,
       McPlacement placement = McPlacement::kDiamond);

  std::uint32_t width() const { return width_; }
  std::uint32_t height() const { return height_; }
  std::uint32_t nodes() const { return width_ * height_; }

  std::uint32_t x_of(NodeId n) const { return static_cast<std::uint32_t>(n) % width_; }
  std::uint32_t y_of(NodeId n) const { return static_cast<std::uint32_t>(n) / width_; }
  NodeId node_at(std::uint32_t x, std::uint32_t y) const {
    return static_cast<NodeId>(y * width_ + x);
  }

  /// Neighbour of n in direction dir, or kInvalidNode at the mesh edge.
  NodeId neighbor(NodeId n, int dir) const;

  /// Minimal hop count between two nodes.
  std::uint32_t hops(NodeId a, NodeId b) const;

  bool is_mc(NodeId n) const { return is_mc_[static_cast<std::size_t>(n)]; }
  const std::vector<NodeId>& mc_nodes() const { return mc_nodes_; }
  const std::vector<NodeId>& cc_nodes() const { return cc_nodes_; }

  /// Uni-directional links crossing the vertical bisection (for the
  /// bisection-bandwidth argument in paper §3).
  std::uint32_t bisection_links() const;

 private:
  void place_mcs_diamond(std::uint32_t num_mcs);
  void place_mcs_top_bottom(std::uint32_t num_mcs);
  void place_mcs_column(std::uint32_t num_mcs);

  std::uint32_t width_;
  std::uint32_t height_;
  std::vector<bool> is_mc_;
  std::vector<NodeId> mc_nodes_;
  std::vector<NodeId> cc_nodes_;
};

}  // namespace arinoc
