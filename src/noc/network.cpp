#include "noc/network.hpp"

#include <cassert>
#include <sstream>

namespace arinoc {

Network::Network(const NetworkParams& params, const Mesh* mesh)
    : params_(params), mesh_(mesh) {
  routers_.reserve(mesh->nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(mesh->nodes()); ++n) {
    RouterParams rp;
    rp.node = n;
    rp.num_vcs = params.num_vcs;
    rp.vc_depth_flits = params.vc_depth_flits;
    rp.routing = params.routing;
    rp.non_atomic_vc = params.non_atomic_vc;
    rp.priority_levels = params.priority_levels;
    rp.starvation_threshold = params.starvation_threshold;
    rp.ejection_capacity_flits = 4 * params.vc_depth_flits;
    const bool special = (params.treat_mcs_specially && mesh->is_mc(n)) ||
                         (params.treat_ccs_specially && !mesh->is_mc(n));
    rp.injection_speedup = special ? params.mc_injection_speedup : 1;
    rp.num_injection_ports = special ? params.mc_injection_ports : 1;
    routers_.push_back(std::make_unique<Router>(rp, mesh, &arena_));
  }
  // Wire neighbouring routers.
  for (NodeId n = 0; n < static_cast<NodeId>(mesh->nodes()); ++n) {
    for (int dir = 0; dir < kNumDirections; ++dir) {
      const NodeId nb = mesh->neighbor(n, dir);
      if (nb == kInvalidNode) continue;
      routers_[static_cast<std::size_t>(n)]->connect_output(
          dir, params.vc_depth_flits);
      routers_[static_cast<std::size_t>(n)]->connect_input(dir);
      ++num_internal_links_;
    }
  }
  const std::size_t slots = std::max<std::uint32_t>(1, params.link_latency);
  flit_ring_.resize(slots);
  credit_ring_.resize(slots);
}

std::uint16_t Network::flits_for(PacketType type) const {
  if (!is_long_packet(type)) return 1;
  return static_cast<std::uint16_t>(
      1 + ceil_div(data_payload_bits, params_.link_width_bits));
}

PacketId Network::make_packet(PacketType type, NodeId src, NodeId dest,
                              std::uint8_t priority, std::uint64_t txn,
                              Cycle now) {
  ++stats_.packets_injected;
  return arena_.create(type, src, dest, flits_for(type), priority, txn, now);
}

void Network::finish_packet(PacketId id, Cycle now) {
  Packet& pkt = arena_.at(id);
  pkt.ejected = now;
  stats_.record_delivery(pkt, now);
  arena_.retire(id);
}

void Network::step(Cycle now) {
  // 1) Deliver flits and credits that finished traversing their links.
  auto& due_flits = flit_ring_[ring_pos_];
  for (const FlitEvent& e : due_flits) {
    routers_[static_cast<std::size_t>(e.dst)]->receive_flit(e.in_dir, e.vc,
                                                            e.flit);
  }
  due_flits.clear();
  auto& due_credits = credit_ring_[ring_pos_];
  for (const CreditEvent& e : due_credits) {
    routers_[static_cast<std::size_t>(e.dst)]->receive_credit(e.out_dir, e.vc);
  }
  due_credits.clear();

  // 2) Step every router; stage its outputs onto the link pipelines.
  // Events pushed into the just-cleared slot resurface after exactly
  // `link_latency` ring advances.
  const std::size_t send_slot = ring_pos_;
  for (NodeId n = 0; n < static_cast<NodeId>(mesh_->nodes()); ++n) {
    scratch_flits_.clear();
    scratch_credits_.clear();
    routers_[static_cast<std::size_t>(n)]->step(now, &scratch_flits_,
                                                &scratch_credits_);
    for (const OutboundFlit& of : scratch_flits_) {
      const NodeId dst = mesh_->neighbor(n, of.out_dir);
      assert(dst != kInvalidNode);
      flit_ring_[send_slot].push_back(
          {dst, opposite(of.out_dir), of.out_vc, of.flit});
    }
    for (const OutboundCredit& oc : scratch_credits_) {
      const NodeId up = mesh_->neighbor(n, oc.in_dir);
      assert(up != kInvalidNode);
      credit_ring_[send_slot].push_back({up, opposite(oc.in_dir), oc.vc});
    }
  }

  // 3) Advance the link pipeline.
  ring_pos_ = (ring_pos_ + 1) % flit_ring_.size();
}

double Network::internal_link_utilization(Cycle elapsed) const {
  if (elapsed == 0 || num_internal_links_ == 0) return 0.0;
  std::uint64_t flits = 0;
  for (const auto& r : routers_) {
    for (int dir = 0; dir < kNumDirections; ++dir) {
      flits += r->flits_sent(dir);
    }
  }
  return static_cast<double>(flits) /
         (static_cast<double>(elapsed) * num_internal_links_);
}

double Network::injection_link_utilization(
    Cycle elapsed, const std::vector<NodeId>& nodes) const {
  if (elapsed == 0 || nodes.empty()) return 0.0;
  std::uint64_t flits = 0;
  for (NodeId n : nodes) {
    flits += routers_[static_cast<std::size_t>(n)]->flits_injected();
  }
  return static_cast<double>(flits) /
         (static_cast<double>(elapsed) * nodes.size());
}

void Network::reset_stats() {
  stats_.reset();
  for (auto& r : routers_) r->reset_stats();
}

std::string Network::validate_credit_invariants() const {
  for (NodeId u = 0; u < static_cast<NodeId>(mesh_->nodes()); ++u) {
    const Router& up = *routers_[static_cast<std::size_t>(u)];
    for (int dir = 0; dir < kNumDirections; ++dir) {
      if (!up.output_is_connected(dir)) continue;
      const NodeId v = mesh_->neighbor(u, dir);
      const Router& down = *routers_[static_cast<std::size_t>(v)];
      const int in_dir = opposite(dir);
      for (std::uint32_t vc = 0; vc < params_.num_vcs; ++vc) {
        std::uint32_t inflight_flits = 0;
        std::uint32_t inflight_credits = 0;
        for (const auto& slot : flit_ring_) {
          for (const FlitEvent& e : slot) {
            if (e.dst == v && e.in_dir == in_dir &&
                e.vc == static_cast<int>(vc)) {
              ++inflight_flits;
            }
          }
        }
        for (const auto& slot : credit_ring_) {
          for (const CreditEvent& e : slot) {
            if (e.dst == u && e.out_dir == dir &&
                e.vc == static_cast<int>(vc)) {
              ++inflight_credits;
            }
          }
        }
        const std::uint32_t total =
            up.output_credits(dir, static_cast<int>(vc)) +
            static_cast<std::uint32_t>(
                down.input_buffered(in_dir, static_cast<int>(vc))) +
            inflight_flits + inflight_credits;
        if (total != params_.vc_depth_flits) {
          std::ostringstream os;
          os << "credit invariant violated on link " << u << "->" << v
             << " dir " << direction_name(dir) << " vc " << vc << ": "
             << up.output_credits(dir, static_cast<int>(vc)) << " credits + "
             << down.input_buffered(in_dir, static_cast<int>(vc))
             << " buffered + " << inflight_flits << " flits in flight + "
             << inflight_credits << " credits in flight = " << total
             << " != depth " << params_.vc_depth_flits;
          return os.str();
        }
      }
    }
  }
  return {};
}

}  // namespace arinoc
