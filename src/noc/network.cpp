#include "noc/network.hpp"

#include <cassert>
#include <sstream>

#include "obs/attr.hpp"
#include "obs/trace.hpp"

namespace arinoc {

Network::Network(const NetworkParams& params, const topo::Fabric* fabric)
    : params_(params), fabric_(fabric) {
  const int nodes = fabric->nodes();
  const int ports = fabric->max_ports();
  base_link_latency_ = std::max<std::uint32_t>(1, params.link_latency);
  routers_.reserve(static_cast<std::size_t>(nodes));
  for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
    RouterParams rp;
    rp.node = n;
    rp.num_vcs = params.num_vcs;
    rp.vc_depth_flits = params.vc_depth_flits;
    rp.routing = params.routing;
    rp.non_atomic_vc = params.non_atomic_vc;
    rp.priority_levels = params.priority_levels;
    rp.starvation_threshold = params.starvation_threshold;
    rp.ejection_capacity_flits = 4 * params.vc_depth_flits;
    // Pure-router nodes (cmesh hubs) carry no endpoints, so neither special
    // treatment applies there.
    const bool special =
        (params.treat_mcs_specially && fabric->is_mc(n)) ||
        (params.treat_ccs_specially && fabric->is_endpoint(n) &&
         !fabric->is_mc(n));
    rp.injection_speedup = special ? params.mc_injection_speedup : 1;
    rp.num_injection_ports = special ? params.mc_injection_ports : 1;
    routers_.push_back(std::make_unique<Router>(rp, fabric, &arena_));
  }
  // Wire neighbouring routers.
  for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
    for (int port = 0; port < ports; ++port) {
      const NodeId nb = fabric->neighbor(n, port);
      if (nb == kInvalidNode) continue;
      routers_[static_cast<std::size_t>(n)]->connect_output(
          port, params.vc_depth_flits);
      routers_[static_cast<std::size_t>(n)]->connect_input(port);
      ++num_internal_links_;
    }
  }
  // Ring size covers the slowest link (base + worst serdes extra); uniform
  // fabrics keep the original max(1, link_latency) size and slot math.
  const std::size_t slots = base_link_latency_ + fabric->max_extra_latency();
  flit_ring_.resize(slots);
  credit_ring_.resize(slots);

  if (params.activity_driven) {
    router_act_.resize(static_cast<std::size_t>(nodes));
    for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
      routers_[static_cast<std::size_t>(n)]->set_activity_hook(
          &router_act_, static_cast<std::size_t>(n));
    }
    // All routers run the first cycle; empty ones go straight to sleep.
    router_act_.wake_all();
  }

  if (params.fault.any_enabled()) {
    fault_ = std::make_unique<FaultInjector>(params.fault, fabric);
    if (params.fault.recovery) {
      rtx_ = std::make_unique<RetransmitTracker>(params.fault, this, fabric,
                                                 base_link_latency_);
    }
    if (params.fault.credit_loss_on()) {
      credits_lost_.assign(static_cast<std::size_t>(nodes) *
                               static_cast<std::size_t>(ports) *
                               params.num_vcs,
                           0);
    }
  }
}

Network::Network(const NetworkParams& params,
                 std::unique_ptr<topo::Fabric> owned)
    : Network(params, owned.get()) {
  fabric_owned_ = std::move(owned);
}

Network::Network(const NetworkParams& params, const Mesh* mesh)
    : Network(params, std::make_unique<topo::Fabric>(mesh)) {}

std::uint16_t Network::flits_for(PacketType type) const {
  if (!is_long_packet(type)) return 1;
  return static_cast<std::uint16_t>(
      1 + ceil_div(data_payload_bits, params_.link_width_bits));
}

PacketId Network::make_packet(PacketType type, NodeId src, NodeId dest,
                              std::uint8_t priority, std::uint64_t txn,
                              Cycle now) {
  ++stats_.packets_injected;
  return arena_.create(type, src, dest, flits_for(type), priority, txn, now);
}

void Network::finish_packet(PacketId id, Cycle now) {
  Packet& pkt = arena_.at(id);
  pkt.ejected = now;
  stats_.record_delivery(pkt, now);
  if (tracer_) {
    tracer_->record(obs::TraceEventKind::kDeliver, tracer_net_, now, id,
                    pkt.type, pkt.dest, -1);
  }
  if (attr_) attr_->on_deliver(attr_net_, id, now);
  arena_.retire(id);
}

void Network::step_router(NodeId n, Cycle now, std::size_t send_slot) {
  scratch_flits_.clear();
  scratch_credits_.clear();
  routers_[static_cast<std::size_t>(n)]->step(now, &scratch_flits_,
                                              &scratch_credits_);
  for (const OutboundFlit& of : scratch_flits_) {
    const NodeId dst = fabric_->neighbor(n, of.out_dir);
    assert(dst != kInvalidNode);
    FlitEvent ev{dst, fabric_->peer_port(n, of.out_dir), of.out_vc, of.flit};
    const bool corrupted = fault_ && fault_->corrupt_link(n, of.out_dir);
    if (corrupted) {
      ev.flit.corrupted = true;
      ++stats_.flits_corrupted;
    }
    if (tracer_) {
      const PacketType type = arena_.at(ev.flit.pkt).type;
      if (corrupted) {
        tracer_->record(obs::TraceEventKind::kCorrupt, tracer_net_, now,
                        ev.flit.pkt, type, n, of.out_dir);
      }
      if (ev.flit.head) {
        tracer_->record(obs::TraceEventKind::kLinkHop, tracer_net_, now,
                        ev.flit.pkt, type, n, of.out_dir);
      }
    }
    if (attr_ && ev.flit.head) {
      attr_->on_link_depart(attr_net_, ev.flit.pkt, n, of.out_dir, now);
    }
    // Serdes (chiplet-boundary) links deliver extra cycles later; uniform
    // links land in send_slot itself, exactly as before.
    flit_ring_[slot_after(send_slot,
                          base_link_latency_ +
                              fabric_->link_extra_latency(n, of.out_dir))]
        .push_back(ev);
  }
  for (const OutboundCredit& oc : scratch_credits_) {
    const NodeId up = fabric_->neighbor(n, oc.in_dir);
    assert(up != kInvalidNode);
    const int up_dir = fabric_->peer_port(n, oc.in_dir);
    if (fault_ && fault_->take_credit_drop(up, up_dir)) {
      // The credit vanishes in flight: the upstream (up, up_dir, vc)
      // counter permanently shrinks. Recorded so the invariant audit can
      // tell intentional loss from a protocol bug.
      if (!credits_lost_.empty()) {
        ++credits_lost_[(static_cast<std::size_t>(up) *
                             static_cast<std::size_t>(fabric_->max_ports()) +
                         static_cast<std::size_t>(up_dir)) *
                            params_.num_vcs +
                        static_cast<std::size_t>(oc.vc)];
      }
      continue;
    }
    // Credits cross the same physical channel, so they take the same
    // latency (link attributes are symmetric by validation).
    credit_ring_[slot_after(send_slot,
                            base_link_latency_ +
                                fabric_->link_extra_latency(n, oc.in_dir))]
        .push_back({up, up_dir, oc.vc});
  }
}

void Network::configure_domains(const topo::DomainPartition* part,
                                bool epoch_slack) {
  assert(part && part->domain_of.size() ==
                     static_cast<std::size_t>(fabric_->nodes()));
  part_ = part;
  dom_.clear();
  dom_.resize(part->num_domains);
  const std::size_t slots = flit_ring_.size();
  for (std::uint32_t d = 0; d < part->num_domains; ++d) {
    Domain& dom = dom_[d];
    dom.members = part->members[d];
    dom.flit_ring.resize(slots);
    dom.credit_ring.resize(slots);
    if (params_.activity_driven) dom.act.resize(dom.members.size());
  }
  // Epoch-slack merge period: the fastest boundary link still takes E
  // cycles, so deferring merges to cycles c with c % E == E-1 always lands
  // before the earliest staged delivery (staged at t, merged by t+E-1,
  // delivered at t+lat >= t+E).
  epoch_ = 1;
  if (epoch_slack) {
    epoch_ = base_link_latency_ +
             (part->boundary.empty() ? 0 : part->min_boundary_extra);
  }
}

void Network::set_domain_mode(bool enabled) {
  if (enabled == domains_on_) return;
  assert(part_ && "configure_domains first");
  if (enabled) {
    // Observer hook order is defined by the serial router schedule; the
    // caller must detach (or fall back to serial stepping) first.
    assert(!tracer_ && !attr_);
    // Distribute in-flight ring state by destination domain. The per-slot
    // scan is stable, so per-(dst, port) arrival order is preserved.
    for (std::size_t s = 0; s < flit_ring_.size(); ++s) {
      for (const FlitEvent& e : flit_ring_[s]) {
        dom_[part_->domain_of[static_cast<std::size_t>(e.dst)]]
            .flit_ring[s]
            .push_back(e);
      }
      flit_ring_[s].clear();
      for (const CreditEvent& e : credit_ring_[s]) {
        dom_[part_->domain_of[static_cast<std::size_t>(e.dst)]]
            .credit_ring[s]
            .push_back(e);
      }
      credit_ring_[s].clear();
    }
    if (params_.activity_driven) {
      for (NodeId n = 0; n < static_cast<NodeId>(fabric_->nodes()); ++n) {
        const std::size_t sn = static_cast<std::size_t>(n);
        routers_[sn]->set_activity_hook(&dom_[part_->domain_of[sn]].act,
                                        part_->local_of[sn]);
        if (router_act_.contains(sn)) {
          dom_[part_->domain_of[sn]].act.wake(part_->local_of[sn]);
        }
      }
      router_act_.clear();
    }
  } else {
    // Merging ahead of schedule is exact: events sit in the destination
    // ring until their slot fires.
    merge_outboxes();
    for (std::size_t s = 0; s < flit_ring_.size(); ++s) {
      for (Domain& dom : dom_) {
        flit_ring_[s].insert(flit_ring_[s].end(), dom.flit_ring[s].begin(),
                             dom.flit_ring[s].end());
        dom.flit_ring[s].clear();
        credit_ring_[s].insert(credit_ring_[s].end(),
                               dom.credit_ring[s].begin(),
                               dom.credit_ring[s].end());
        dom.credit_ring[s].clear();
      }
    }
    if (params_.activity_driven) {
      for (NodeId n = 0; n < static_cast<NodeId>(fabric_->nodes()); ++n) {
        const std::size_t sn = static_cast<std::size_t>(n);
        routers_[sn]->set_activity_hook(&router_act_, sn);
        if (dom_[part_->domain_of[sn]].act.contains(part_->local_of[sn])) {
          router_act_.wake(sn);
        }
      }
      for (Domain& dom : dom_) dom.act.clear();
    }
  }
  domains_on_ = enabled;
}

void Network::merge_outboxes() {
  for (Domain& dom : dom_) {
    for (const auto& [slot, e] : dom.out_flits) {
      dom_[part_->domain_of[static_cast<std::size_t>(e.dst)]]
          .flit_ring[slot]
          .push_back(e);
    }
    dom.out_flits.clear();
    for (const auto& [slot, e] : dom.out_credits) {
      dom_[part_->domain_of[static_cast<std::size_t>(e.dst)]]
          .credit_ring[slot]
          .push_back(e);
    }
    dom.out_credits.clear();
  }
}

void Network::step_router_domain(NodeId n, Cycle now, std::size_t send_slot,
                                 Domain& dom) {
  dom.scratch_flits.clear();
  dom.scratch_credits.clear();
  routers_[static_cast<std::size_t>(n)]->step(now, &dom.scratch_flits,
                                              &dom.scratch_credits);
  for (const OutboundFlit& of : dom.scratch_flits) {
    const NodeId dst = fabric_->neighbor(n, of.out_dir);
    assert(dst != kInvalidNode);
    FlitEvent ev{dst, fabric_->peer_port(n, of.out_dir), of.out_vc, of.flit};
    // corrupt_link is a const read of state drawn serially in step_begin;
    // the corruption tally is staged per-domain and folded at the barrier.
    if (fault_ && fault_->corrupt_link(n, of.out_dir)) {
      ev.flit.corrupted = true;
      ++dom.corrupted;
    }
    const std::size_t slot = slot_after(
        send_slot,
        base_link_latency_ + fabric_->link_extra_latency(n, of.out_dir));
    Domain& dd = dom_[part_->domain_of[static_cast<std::size_t>(dst)]];
    if (&dd == &dom) {
      dom.flit_ring[slot].push_back(ev);
    } else {
      dom.out_flits.emplace_back(slot, ev);
    }
  }
  for (const OutboundCredit& oc : dom.scratch_credits) {
    const NodeId up = fabric_->neighbor(n, oc.in_dir);
    assert(up != kInvalidNode);
    const int up_dir = fabric_->peer_port(n, oc.in_dir);
    // Credit-drop state for link (up, up_dir) is consumed only here — the
    // domain owning the downstream router n — so the write is exclusive;
    // only the injector's shared counter must be staged.
    if (fault_ && fault_->take_credit_drop_uncounted(up, up_dir)) {
      ++dom.credit_drops;
      if (!credits_lost_.empty()) {
        // Same exclusivity: this (up, up_dir, vc) entry belongs to link
        // up->n, and only n's domain writes it.
        ++credits_lost_[(static_cast<std::size_t>(up) *
                             static_cast<std::size_t>(fabric_->max_ports()) +
                         static_cast<std::size_t>(up_dir)) *
                            params_.num_vcs +
                        static_cast<std::size_t>(oc.vc)];
      }
      continue;
    }
    const std::size_t slot = slot_after(
        send_slot,
        base_link_latency_ + fabric_->link_extra_latency(n, oc.in_dir));
    CreditEvent ev{up, up_dir, oc.vc};
    Domain& dd = dom_[part_->domain_of[static_cast<std::size_t>(up)]];
    if (&dd == &dom) {
      dom.credit_ring[slot].push_back(ev);
    } else {
      dom.out_credits.emplace_back(slot, ev);
    }
  }
}

void Network::step_begin(Cycle now) {
  if (fault_) {
    fault_->begin_cycle(now);
    for (const auto& [src, dir] : fault_->changed_links()) {
      routers_[static_cast<std::size_t>(src)]->set_output_blocked(
          dir, fault_->link_blocked(src, dir));
      if (params_.activity_driven) {
        const std::size_t sn = static_cast<std::size_t>(src);
        dom_[part_->domain_of[sn]].act.wake(part_->local_of[sn]);
      }
    }
  }
}

void Network::step_domain(std::uint32_t d, Cycle now) {
  Domain& dom = dom_[d];
  auto& due_flits = dom.flit_ring[ring_pos_];
  for (const FlitEvent& e : due_flits) {
    routers_[static_cast<std::size_t>(e.dst)]->receive_flit(e.in_dir, e.vc,
                                                            e.flit);
  }
  due_flits.clear();
  auto& due_credits = dom.credit_ring[ring_pos_];
  for (const CreditEvent& e : due_credits) {
    routers_[static_cast<std::size_t>(e.dst)]->receive_credit(e.out_dir, e.vc);
  }
  due_credits.clear();

  const std::size_t send_slot = ring_pos_;
  if (params_.activity_driven) {
    dom.act.drain_sorted([&](std::size_t i) {
      const NodeId n = dom.members[i];
      step_router_domain(n, now, send_slot, dom);
      if (routers_[static_cast<std::size_t>(n)]->buffered_flits_total() > 0) {
        dom.act.wake(i);
      }
    });
  } else {
    for (const NodeId n : dom.members) {
      step_router_domain(n, now, send_slot, dom);
    }
  }
}

void Network::step_finish(Cycle now) {
  // Fold the per-domain stat staging every cycle: observers (watchdog,
  // telemetry, collect()) read these between cycles.
  for (Domain& dom : dom_) {
    stats_.flits_corrupted += dom.corrupted;
    dom.corrupted = 0;
    if (fault_ && dom.credit_drops > 0) {
      fault_->note_credits_dropped(dom.credit_drops);
      dom.credit_drops = 0;
    }
  }
  if (epoch_ <= 1 || now % epoch_ == epoch_ - 1) merge_outboxes();
  if (++ring_pos_ == flit_ring_.size()) ring_pos_ = 0;
  if (rtx_) rtx_->step(now);
}

void Network::step(Cycle now) {
  if (domains_on_) {
    step_begin(now);
    for (std::uint32_t d = 0; d < part_->num_domains; ++d) {
      step_domain(d, now);
    }
    step_finish(now);
    return;
  }
  // 0) Draw this cycle's fault events and push blocked-link transitions into
  // the affected upstream routers (fault-aware routing sees them during VA).
  // begin_cycle runs unconditionally every cycle so the fault RNG stream is
  // a pure function of the cycle number, independent of router activity.
  if (fault_) {
    fault_->begin_cycle(now);
    for (const auto& [src, dir] : fault_->changed_links()) {
      routers_[static_cast<std::size_t>(src)]->set_output_blocked(
          dir, fault_->link_blocked(src, dir));
      // Defensive wake: a link transition can re-enable VC allocation at
      // the upstream router. A router holding flits is awake anyway, and
      // waking an empty router is always a no-op, so this is cheap
      // insurance rather than a behaviour change.
      if (params_.activity_driven) {
        router_act_.wake(static_cast<std::size_t>(src));
      }
    }
  }

  // 1) Deliver flits and credits that finished traversing their links.
  // receive_flit wakes the destination router; credits never give an empty
  // router work (every credit-consuming action needs a buffered flit), so
  // credit delivery needs no wake.
  auto& due_flits = flit_ring_[ring_pos_];
  for (const FlitEvent& e : due_flits) {
    routers_[static_cast<std::size_t>(e.dst)]->receive_flit(e.in_dir, e.vc,
                                                            e.flit);
    if (attr_ && e.flit.head) {
      attr_->on_head_arrive(attr_net_, e.flit.pkt, e.dst, now);
    }
  }
  due_flits.clear();
  auto& due_credits = credit_ring_[ring_pos_];
  for (const CreditEvent& e : due_credits) {
    routers_[static_cast<std::size_t>(e.dst)]->receive_credit(e.out_dir, e.vc);
  }
  due_credits.clear();

  // 2) Step the routers; stage their outputs onto the link pipelines.
  // Events pushed into the just-cleared slot resurface after exactly
  // `link_latency` ring advances. Activity-driven mode steps only woken
  // routers, in ascending node order — the same order as the full loop, so
  // arena free-list recycling and trace-event order cannot diverge.
  const std::size_t send_slot = ring_pos_;
  if (params_.activity_driven) {
    router_act_.drain_sorted([&](std::size_t i) {
      step_router(static_cast<NodeId>(i), now, send_slot);
      // A router sleeps only when it holds no flits at all; anything
      // buffered (even unmovable under backpressure) keeps it stepping so
      // fairness pointers rotate exactly as in always-on mode.
      if (routers_[i]->buffered_flits_total() > 0) router_act_.wake(i);
    });
  } else {
    for (NodeId n = 0; n < static_cast<NodeId>(fabric_->nodes()); ++n) {
      step_router(n, now, send_slot);
    }
  }

  // 3) Advance the link pipeline (compare-and-wrap; the ring is tiny and a
  // division per cycle is measurable in the hot loop).
  if (++ring_pos_ == flit_ring_.size()) ring_pos_ = 0;

  // 4) Recovery bookkeeping: retire acked retransmission entries and fire
  // NACK/timeout-driven re-injections. Runs unconditionally: timer expiry
  // must re-inject (and wake the injection NI) even when the fabric idles.
  if (rtx_) rtx_->step(now);
}

double Network::internal_link_utilization(Cycle elapsed) const {
  if (elapsed == 0 || num_internal_links_ == 0) return 0.0;
  std::uint64_t flits = 0;
  for (const auto& r : routers_) {
    for (int dir = 0; dir < fabric_->max_ports(); ++dir) {
      flits += r->flits_sent(dir);
    }
  }
  return static_cast<double>(flits) /
         (static_cast<double>(elapsed) * num_internal_links_);
}

double Network::injection_link_utilization(
    Cycle elapsed, const std::vector<NodeId>& nodes) const {
  if (elapsed == 0 || nodes.empty()) return 0.0;
  std::uint64_t flits = 0;
  for (NodeId n : nodes) {
    flits += routers_[static_cast<std::size_t>(n)]->flits_injected();
  }
  return static_cast<double>(flits) /
         (static_cast<double>(elapsed) * nodes.size());
}

RxOutcome Network::classify_rx(PacketId id, bool corrupted, Cycle now) {
  if (rtx_) return rtx_->classify_rx(id, corrupted, now);
  return corrupted ? RxOutcome::kCorrupt : RxOutcome::kDeliver;
}

void Network::drop_packet(PacketId id, Cycle now, RxOutcome why) {
  if (tracer_) {
    const Packet& pkt = arena_.at(id);
    tracer_->record(obs::TraceEventKind::kDrop, tracer_net_, now, id, pkt.type,
                    pkt.dest, static_cast<int>(why));
  }
  if (attr_) attr_->on_drop(attr_net_, id, now);
  switch (why) {
    case RxOutcome::kCorrupt:
      ++stats_.packets_corrupted;
      // Without a tracker nobody will retransmit: the packet is gone.
      if (!rtx_) ++stats_.packets_lost;
      break;
    case RxOutcome::kDuplicate:
    case RxOutcome::kStale:
      ++stats_.duplicates_dropped;
      break;
    case RxOutcome::kDeliver:
      assert(false && "drop_packet called with kDeliver");
      break;
  }
  arena_.retire(id);
}

std::uint64_t Network::credits_lost_total() const {
  std::uint64_t total = 0;
  for (const std::uint32_t c : credits_lost_) total += c;
  return total;
}

void Network::set_tracer(obs::PacketTracer* t, std::uint8_t net) {
  tracer_ = t;
  tracer_net_ = net;
  for (auto& r : routers_) r->set_tracer(t, net);
}

void Network::set_attributor(obs::LatencyAttributor* a, std::uint8_t net) {
  attr_ = a;
  attr_net_ = net;
  for (auto& r : routers_) r->set_attributor(a, net);
}

std::uint64_t Network::internal_flits_total() const {
  std::uint64_t flits = 0;
  for (const auto& r : routers_) {
    for (int dir = 0; dir < fabric_->max_ports(); ++dir) {
      flits += r->flits_sent(dir);
    }
  }
  return flits;
}

std::uint64_t Network::buffered_flits_total() const {
  std::uint64_t flits = 0;
  for (const auto& r : routers_) flits += r->buffered_flits_total();
  return flits;
}

std::uint64_t Network::movement_count() const {
  std::uint64_t moves = 0;
  for (const auto& r : routers_) {
    moves += r->flits_injected() + r->flits_ejected() + r->crossbar_traversals();
  }
  return moves;
}

void Network::reset_stats() {
  stats_.reset();
  for (auto& r : routers_) r->reset_stats();
  if (fault_) fault_->reset_counters();
  if (rtx_) rtx_->reset_counters();
}

std::string Network::validate_credit_invariants() const {
  for (NodeId u = 0; u < static_cast<NodeId>(fabric_->nodes()); ++u) {
    const Router& up = *routers_[static_cast<std::size_t>(u)];
    for (int dir = 0; dir < fabric_->max_ports(); ++dir) {
      if (!up.output_is_connected(dir)) continue;
      const NodeId v = fabric_->neighbor(u, dir);
      const Router& down = *routers_[static_cast<std::size_t>(v)];
      const int in_dir = fabric_->peer_port(u, dir);
      for (std::uint32_t vc = 0; vc < params_.num_vcs; ++vc) {
        // In-flight events live in the global rings (serial mode), the
        // per-domain rings (domain mode), or a domain outbox awaiting its
        // epoch merge; all three are scanned so the audit holds in every
        // stepping mode.
        std::uint32_t inflight_flits = 0;
        std::uint32_t inflight_credits = 0;
        const auto match_flit = [&](const FlitEvent& e) {
          if (e.dst == v && e.in_dir == in_dir && e.vc == static_cast<int>(vc))
            ++inflight_flits;
        };
        const auto match_credit = [&](const CreditEvent& e) {
          if (e.dst == u && e.out_dir == dir && e.vc == static_cast<int>(vc))
            ++inflight_credits;
        };
        for (const auto& slot : flit_ring_) {
          for (const FlitEvent& e : slot) match_flit(e);
        }
        for (const auto& slot : credit_ring_) {
          for (const CreditEvent& e : slot) match_credit(e);
        }
        for (const Domain& dom : dom_) {
          for (const auto& slot : dom.flit_ring) {
            for (const FlitEvent& e : slot) match_flit(e);
          }
          for (const auto& slot : dom.credit_ring) {
            for (const CreditEvent& e : slot) match_credit(e);
          }
          for (const auto& [slot, e] : dom.out_flits) match_flit(e);
          for (const auto& [slot, e] : dom.out_credits) match_credit(e);
        }
        // Credits the fault injector destroyed on this link are accounted
        // loss, not a protocol bug: the usable depth shrank by that much.
        std::uint32_t lost = 0;
        if (!credits_lost_.empty()) {
          lost = credits_lost_[(static_cast<std::size_t>(u) *
                                    static_cast<std::size_t>(
                                        fabric_->max_ports()) +
                                static_cast<std::size_t>(dir)) *
                                   params_.num_vcs +
                               static_cast<std::size_t>(vc)];
        }
        const std::uint32_t total =
            up.output_credits(dir, static_cast<int>(vc)) +
            static_cast<std::uint32_t>(
                down.input_buffered(in_dir, static_cast<int>(vc))) +
            inflight_flits + inflight_credits + lost;
        if (total != params_.vc_depth_flits) {
          std::ostringstream os;
          os << "credit invariant violated on link " << u << "->" << v
             << " dir " << fabric_->port_name(dir) << " vc " << vc << ": "
             << up.output_credits(dir, static_cast<int>(vc)) << " credits + "
             << down.input_buffered(in_dir, static_cast<int>(vc))
             << " buffered + " << inflight_flits << " flits in flight + "
             << inflight_credits << " credits in flight + " << lost
             << " lost = " << total << " != depth " << params_.vc_depth_flits;
          return os.str();
        }
      }
    }
  }
  return {};
}

}  // namespace arinoc
