#include "noc/arbiter.hpp"

#include <cassert>

namespace arinoc {

int RoundRobinArbiter::pick(const std::vector<bool>& request) {
  assert(request.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t idx = (ptr_ + i) % n_;
    if (request[idx]) {
      ptr_ = (idx + 1) % n_;
      return static_cast<int>(idx);
    }
  }
  return -1;
}

int PriorityArbiter::pick(const std::vector<bool>& request,
                          const std::vector<std::uint32_t>& key) {
  assert(request.size() == key.size());
  std::uint32_t best = 0;
  bool any = false;
  for (std::size_t i = 0; i < request.size(); ++i) {
    if (request[i]) {
      if (!any || key[i] > best) best = key[i];
      any = true;
    }
  }
  if (!any) return -1;
  // Mask out requests below the best key, then RR among the rest.
  std::vector<bool> masked(request.size());
  for (std::size_t i = 0; i < request.size(); ++i) {
    masked[i] = request[i] && key[i] == best;
  }
  return rr_.pick(masked);
}

}  // namespace arinoc
