// Arbiters for the separable input-first allocator (Table I).
//
// RoundRobinArbiter: classic rotating-priority arbiter.
// PriorityArbiter:   picks the request with the highest priority key,
//                    breaking ties round-robin. Used by output-port switch
//                    arbitration when ARI's multi-level prioritization (§5)
//                    is enabled; with all keys equal it degenerates to RR.
#pragma once

#include <cstdint>
#include <vector>

namespace arinoc {

class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(std::size_t inputs = 0) : n_(inputs) {}

  void resize(std::size_t inputs) {
    n_ = inputs;
    if (ptr_ >= n_) ptr_ = 0;
  }
  std::size_t size() const { return n_; }

  /// Picks the first requesting input at or after the pointer; advances the
  /// pointer past the grant. Returns -1 if no input requests.
  int pick(const std::vector<bool>& request);

 private:
  std::size_t n_;
  std::size_t ptr_ = 0;
};

class PriorityArbiter {
 public:
  explicit PriorityArbiter(std::size_t inputs = 0) : rr_(inputs) {}

  void resize(std::size_t inputs) { rr_.resize(inputs); }

  /// request[i] paired with key[i]; highest key wins, RR tie-break.
  /// Returns -1 if no input requests.
  int pick(const std::vector<bool>& request,
           const std::vector<std::uint32_t>& key);

 private:
  RoundRobinArbiter rr_;
};

}  // namespace arinoc
