#include "noc/packet.hpp"

#include <cassert>

namespace arinoc {

const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::kReadRequest: return "read_request";
    case PacketType::kWriteRequest: return "write_request";
    case PacketType::kReadReply: return "read_reply";
    case PacketType::kWriteReply: return "write_reply";
  }
  return "?";
}

PacketId PacketArena::create(PacketType type, NodeId src, NodeId dest,
                             std::uint16_t num_flits, std::uint8_t priority,
                             std::uint64_t txn, Cycle now) {
  PacketId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<PacketId>(slots_.size());
    slots_.emplace_back();
    live_.push_back(0);
  }
  live_[id] = 1;
  ++live_count_;
  Packet& p = slots_[id];
  p = Packet{};
  p.type = type;
  p.src = src;
  p.dest = dest;
  p.num_flits = num_flits;
  p.priority = priority;
  p.txn = txn;
  p.created = now;
  return id;
}

void PacketArena::retire(PacketId id) {
  assert(id < slots_.size());
  assert(live_[id]);
  live_[id] = 0;
  --live_count_;
  free_.push_back(id);
}

Cycle PacketArena::oldest_created(Cycle fallback) const {
  Cycle oldest = fallback;
  bool found = false;
  for (PacketId id = 0; id < live_.size(); ++id) {
    if (!live_[id]) continue;
    if (!found || slots_[id].created < oldest) {
      oldest = slots_[id].created;
      found = true;
    }
  }
  return oldest;
}

Flit PacketArena::flit_of(PacketId id, std::uint16_t seq,
                          std::uint16_t num_flits) {
  Flit f;
  f.pkt = id;
  f.seq = seq;
  f.head = (seq == 0);
  f.tail = (seq + 1 == num_flits);
  return f;
}

}  // namespace arinoc
