#include "noc/buffer.hpp"

#include <cassert>

namespace arinoc {

void FlitBuffer::push(const Flit& f) {
  assert(q_.size() < capacity_ && "FlitBuffer overflow");
  q_.push_back(f);
}

Flit FlitBuffer::pop() {
  assert(!q_.empty() && "FlitBuffer underflow");
  Flit f = q_.front();
  q_.pop_front();
  return f;
}

}  // namespace arinoc
