// NI-level admission control with hysteretic graceful degradation
// (overload robustness layer).
//
// The paper's bottleneck is the reply network: once MC reply-injection
// queues back up, every additional admitted request makes the cliff worse —
// the request costs reply bandwidth the fabric no longer has. Admission
// therefore sheds *request-side* traffic first, keeping reply injection
// protected: a token bucket per CC request NI bounds the admitted rate, and
// a global degradation state machine driven by reply-NI queue occupancy
// (plus the watchdog's pre-trip warning) moves the system through
//
//      NORMAL  -->  THROTTLED  -->  SHEDDING
//        ^______________|_______________|        (hysteretic recovery)
//
//  * NORMAL     — the bucket refills at the full configured rate.
//  * THROTTLED  — refill is scaled by `throttle_factor`; new requests that
//                 find the bucket empty are *deferred* (bounded
//                 retry/backoff at the caller).
//  * SHEDDING   — no refill; new requests are *shed* outright (the caller
//                 drops them and accounts the loss). Reply traffic is never
//                 gated.
//
// Transitions are hysteretic: escalation thresholds sit above the recovery
// threshold and every transition must dwell `dwell` cycles before the next,
// so occupancy noise around a threshold cannot flap the state. All
// counters/time-in-state accounting lives here so Metrics/telemetry/counter
// registry read one source of truth.
//
// Admission disabled (the default) constructs nothing: GpgpuSim keeps a
// null controller and every hot path stays a pointer test — bit-identical
// to a build without this file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace arinoc {

enum class DegradeState : int { kNormal = 0, kThrottled = 1, kShedding = 2 };

const char* degrade_state_name(DegradeState s);

/// Tuning knobs (populated from Config by GpgpuSim).
struct AdmissionParams {
  double rate = 0.25;             ///< Tokens/cycle/CC in NORMAL.
  std::uint32_t burst = 8;        ///< Bucket depth (tokens).
  double throttle_factor = 0.5;   ///< Refill scale in THROTTLED.
  double throttle_occ = 0.60;     ///< Reply-NI occupancy to enter THROTTLED.
  double shed_occ = 0.85;         ///< Occupancy to enter SHEDDING.
  double recover_occ = 0.35;      ///< Occupancy to step back down.
  Cycle dwell = 256;              ///< Min cycles between transitions.
};

/// What the gate told the caller to do with one request.
enum class AdmissionDecision { kAdmit, kDefer, kShed };

/// Global degradation state machine. update() is called once per cycle with
/// the current reply-side pressure signal; state() is what every gate and
/// observer reads.
class DegradationFsm {
 public:
  explicit DegradationFsm(const AdmissionParams& p) : p_(p) {}

  /// Advances one cycle. `reply_occ` is the mean reply-NI queue occupancy
  /// as a fraction of capacity; `pre_trip` is the watchdog's early-warning
  /// signal (treated as max-severity pressure: it escalates one level per
  /// dwell period even when occupancy alone would not).
  void update(Cycle now, double reply_occ, bool pre_trip);

  DegradeState state() const { return state_; }
  std::uint64_t transitions() const { return transitions_; }
  Cycle cycles_in(DegradeState s) const {
    return cycles_in_[static_cast<std::size_t>(s)];
  }
  /// Cycles spent in any non-NORMAL state.
  Cycle degraded_cycles() const {
    return cycles_in_[1] + cycles_in_[2];
  }
  void reset_stats() {
    transitions_ = 0;
    cycles_in_[0] = cycles_in_[1] = cycles_in_[2] = 0;
  }

 private:
  void transition(DegradeState next, Cycle now);

  AdmissionParams p_;
  DegradeState state_ = DegradeState::kNormal;
  Cycle entered_at_ = 0;
  std::uint64_t transitions_ = 0;
  Cycle cycles_in_[3] = {0, 0, 0};
};

/// Per-CC token bucket consulted on every request-side injection attempt.
/// Fixed-point (Q32) refill so the admitted schedule is exactly
/// reproducible, matching the repo's ClockRatio discipline.
class AdmissionGate {
 public:
  AdmissionGate(const AdmissionParams& p, const DegradationFsm* fsm);

  /// One admission decision for a new request at `now`. Refills the bucket
  /// lazily for the cycles elapsed since the last call, at the rate the
  /// FSM state dictates, then tries to take a token. Counters are updated
  /// here; callers only act on the verdict.
  AdmissionDecision request(Cycle now);

  /// Returns the token of the most recent kAdmit verdict and reverses its
  /// accounting. Call when the admitted request could not actually enter
  /// the NI this cycle (injection backpressure), so admission only charges
  /// requests that reached the fabric.
  void refund_admit();

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t deferred() const { return deferred_; }
  std::uint64_t shed() const { return shed_; }
  void reset_stats() { admitted_ = deferred_ = shed_ = 0; }

 private:
  void refill(Cycle now);

  AdmissionParams p_;
  const DegradationFsm* fsm_;
  std::uint64_t rate_q32_;           ///< NORMAL refill rate, Q32.
  std::uint64_t throttled_rate_q32_; ///< THROTTLED refill rate, Q32.
  std::uint64_t tokens_q32_;         ///< Current bucket level, Q32.
  std::uint64_t cap_q32_;            ///< Bucket depth, Q32.
  Cycle last_refill_ = 0;

  std::uint64_t admitted_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace arinoc
