// Fault injection and end-to-end recovery for one network.
//
// FaultInjector is a deterministic, seed-driven fault campaign engine. It
// owns its own RNG stream (independent of the traffic RNG) and draws every
// fault event in the *time/space* domain — per cycle, per link, in a fixed
// link order — so the fault schedule is a pure function of (fault seed,
// fabric, rates) and does not shift when the workload or traffic seed
// changes.
// Four fault classes are modelled:
//
//  * transient flit corruption: a link flips payload bits for one cycle;
//    the flit crossing it fails its CRC at the ejection NI;
//  * link stall: a link goes dead for a window of cycles (the upstream
//    router output is blocked; flits wait, nothing is lost);
//  * input-port failure: a link goes dead permanently (modelled as the
//    upstream output feeding that input staying blocked forever);
//  * single-credit loss: one in-flight credit is dropped, permanently
//    shrinking the usable depth of that VC by one.
//
// RetransmitTracker is the NI-level detection/recovery layer: every packet
// accepted by an injection NI is registered in a retransmission buffer and
// held until a (hop-latency-delayed, out-of-band) ACK from the ejection NI
// retires it. A CRC failure at ejection drops the packet and NACKs the
// source, which re-creates and re-injects it; a timeout with exponential
// backoff covers packets wedged behind dead links. Retries are bounded;
// duplicate and superseded ("stale") arrivals are detected by incarnation
// id and silently consumed so sinks see each packet exactly once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/packet.hpp"
#include "noc/topology.hpp"
#include "topo/fabric.hpp"

namespace arinoc {

class Network;
class InjectNi;

/// Fault classes as bits of FaultParams::enable_mask.
enum FaultClass : std::uint32_t {
  kFaultCorrupt = 1u << 0,
  kFaultLinkStall = 1u << 1,
  kFaultPortFail = 1u << 2,
  kFaultCreditLoss = 1u << 3,
  kFaultAll = 0xFu,
};

/// Fault-campaign and recovery knobs for one network (derived from Config
/// by fault_params_from; all-zero rates == subsystem fully absent).
struct FaultParams {
  double corrupt_rate = 0.0;      ///< Per-link per-cycle corruption prob.
  double link_stall_rate = 0.0;   ///< Per-link per-cycle stall-window prob.
  std::uint32_t link_stall_len = 20;  ///< Stall window length (cycles).
  double port_fail_rate = 0.0;    ///< Per-link per-cycle permanent-fail prob.
  double credit_loss_rate = 0.0;  ///< Per-link per-cycle credit-drop prob.
  std::uint64_t seed = 12345;     ///< Fault RNG stream seed (own stream).
  std::uint32_t enable_mask = kFaultAll;
  bool recovery = true;           ///< CRC drop + ACK/timeout retransmission.
  Cycle rtx_timeout = 2048;       ///< Base retransmission timeout.
  std::uint32_t rtx_max_retries = 16;

  bool corrupt_on() const {
    return (enable_mask & kFaultCorrupt) != 0 && corrupt_rate > 0.0;
  }
  bool stall_on() const {
    return (enable_mask & kFaultLinkStall) != 0 && link_stall_rate > 0.0;
  }
  bool port_fail_on() const {
    return (enable_mask & kFaultPortFail) != 0 && port_fail_rate > 0.0;
  }
  bool credit_loss_on() const {
    return (enable_mask & kFaultCreditLoss) != 0 && credit_loss_rate > 0.0;
  }
  bool any_enabled() const {
    return corrupt_on() || stall_on() || port_fail_on() || credit_loss_on();
  }
};

/// Extracts the fault/recovery knobs from the central Config.
FaultParams fault_params_from(const Config& cfg);

/// Windowed fault-event counters (reset with the network stats).
struct FaultCounters {
  std::uint64_t corrupt_windows = 0;  ///< Scheduled corruption link-cycles.
  std::uint64_t stall_events = 0;     ///< Stall windows opened.
  std::uint64_t port_failures = 0;    ///< Links permanently failed.
  std::uint64_t credits_dropped = 0;  ///< Credits lost in flight.
  void reset() { *this = FaultCounters{}; }
};

class FaultInjector {
 public:
  FaultInjector(const FaultParams& params, const topo::Fabric* fabric);
  /// Compatibility: campaigns over a bare Mesh (owns a non-owning fabric
  /// view of it; the schedule is identical to the fabric path).
  FaultInjector(const FaultParams& params, const Mesh* mesh);

  /// Draws this cycle's fault events; call exactly once per network cycle,
  /// before routers step. Fills changed_links() with links whose blocked
  /// state flipped.
  void begin_cycle(Cycle now);

  // ---- Queried by the network while staging this cycle's traffic ----
  /// True if the flit crossing link (src, dir) this cycle gets corrupted.
  bool corrupt_link(NodeId src, int dir) const {
    return link(src, dir).corrupt_now;
  }
  /// Consumes the pending single-credit-loss event on link (src, dir); at
  /// most one credit per link per cycle is dropped.
  bool take_credit_drop(NodeId src, int dir) {
    if (!take_credit_drop_uncounted(src, dir)) return false;
    ++counters_.credits_dropped;
    return true;
  }
  /// take_credit_drop without touching the shared counter. Domain-parallel
  /// stepping calls this concurrently — each link's state is written only by
  /// the domain owning its downstream router, but the counter would be a
  /// shared write — and folds the per-domain tallies back in at the cycle
  /// barrier via note_credits_dropped().
  bool take_credit_drop_uncounted(NodeId src, int dir) {
    LinkState& l = link(src, dir);
    if (!l.drop_credit_now) return false;
    l.drop_credit_now = false;
    return true;
  }
  /// Folds credit drops tallied off to the side (serial context only).
  void note_credits_dropped(std::uint64_t n) {
    counters_.credits_dropped += n;
  }
  /// True while link (src, dir) is stalled or permanently failed.
  bool link_blocked(NodeId src, int dir) const {
    const LinkState& l = link(src, dir);
    return l.failed || l.stalled_until > now_;
  }
  /// Links whose blocked state changed in the last begin_cycle.
  const std::vector<std::pair<NodeId, int>>& changed_links() const {
    return changed_;
  }

  /// FNV-1a digest over every drawn fault event (class, cycle, link):
  /// bit-identical across runs with the same seed/config, regardless of
  /// traffic (the determinism tests compare this).
  std::uint64_t schedule_digest() const { return digest_; }

  const FaultCounters& counters() const { return counters_; }
  void reset_counters() { counters_.reset(); }

  /// Human-readable list of currently blocked links (diagnostic dumps).
  std::string describe_blocked() const;

 private:
  struct LinkState {
    bool exists = false;
    bool failed = false;
    Cycle stalled_until = 0;
    bool corrupt_now = false;
    bool drop_credit_now = false;
    bool blocked_reported = false;  ///< Last blocked state pushed to routers.
  };

  LinkState& link(NodeId src, int dir) {
    return links_[static_cast<std::size_t>(src) * max_ports_ +
                  static_cast<std::size_t>(dir)];
  }
  const LinkState& link(NodeId src, int dir) const {
    return links_[static_cast<std::size_t>(src) * max_ports_ +
                  static_cast<std::size_t>(dir)];
  }
  void mix_digest(std::uint32_t kind, Cycle cycle, std::size_t link_index);
  /// Takes ownership of a fabric built for this injector (mesh-compat path).
  FaultInjector(const FaultParams& params, std::unique_ptr<topo::Fabric> owned);

  FaultParams p_;
  std::unique_ptr<topo::Fabric> fabric_owned_;  ///< Mesh-compat ctor only.
  const topo::Fabric* fabric_;
  std::size_t max_ports_;
  Xoshiro256 rng_;
  Cycle now_ = 0;
  std::vector<LinkState> links_;          // [node * max_ports + dir]
  std::vector<std::size_t> link_order_;   // Valid link indices, fixed order.
  std::vector<std::pair<NodeId, int>> changed_;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;  // FNV offset basis.
  FaultCounters counters_;
};

/// Verdict for a fully reassembled packet at the ejection NI.
enum class RxOutcome {
  kDeliver,    ///< CRC clean, first arrival: hand to the sink.
  kCorrupt,    ///< CRC failed: drop; source NACKed for retransmission.
  kDuplicate,  ///< Already delivered (spurious retransmit): drop silently.
  kStale,      ///< Superseded incarnation of a retransmitted packet: drop.
};

class RetransmitTracker {
 public:
  RetransmitTracker(const FaultParams& params, Network* net,
                    const topo::Fabric* fabric, std::uint32_t link_latency);

  /// Registers the injection NI re-injections for `node` go through.
  void register_ni(NodeId node, InjectNi* ni);

  /// Called by an injection NI when it accepts a packet (fresh packets get
  /// a retransmission-buffer entry; re-injections update theirs).
  void on_accept(PacketId id, Cycle now);

  /// CRC/dedup check for a fully reassembled packet; schedules the ACK or
  /// NACK toward the source as a side effect.
  RxOutcome classify_rx(PacketId id, bool corrupted, Cycle now);

  /// Retires acked entries, fires timeouts/NACK-driven re-injections.
  void step(Cycle now);

  // ---- Stats (windowed; entry state survives resets) ----
  std::uint64_t retransmitted() const { return retransmitted_; }
  std::uint64_t retransmitted_flits() const { return retransmitted_flits_; }
  std::uint64_t recovered() const { return recovered_; }
  std::uint64_t lost() const { return lost_; }
  std::uint64_t duplicates_dropped() const { return duplicates_; }
  std::size_t pending() const { return entries_.size(); }
  /// First-accept cycle of the oldest unacked entry (livelock watchdog);
  /// `fallback` when none pending.
  Cycle oldest_pending_created(Cycle fallback) const;
  void reset_counters();

 private:
  struct Entry {
    PacketType type;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    std::uint8_t priority = 0;
    std::uint64_t txn = 0;
    PacketId cur = kInvalidPacket;  ///< Current in-flight incarnation.
    std::uint32_t retries = 0;
    Cycle created = 0;   ///< First NI accept.
    Cycle deadline = 0;  ///< Next timeout / NACK-arrival cycle.
    Cycle ack_at = 0;    ///< ACK arrival cycle; 0 = not yet delivered.
    bool want_retx = false;
  };

  Cycle ack_latency(NodeId src, NodeId dest) const;
  void try_reinject(std::uint64_t key, Entry& e, Cycle now);

  FaultParams p_;
  Network* net_;
  const topo::Fabric* fabric_;
  std::uint32_t link_latency_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<NodeId, InjectNi*> nis_;
  std::uint64_t next_key_ = 1;  // 0 == "untracked" in Packet::rtx.
  std::uint64_t retransmitted_ = 0;
  std::uint64_t retransmitted_flits_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace arinoc
