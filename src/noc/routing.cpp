#include "noc/routing.hpp"

namespace arinoc {

RouteCandidates compute_route(const Mesh& mesh, NodeId here, NodeId dest,
                              RoutingAlgo algo) {
  RouteCandidates rc;
  if (here == dest) {
    rc.minimal.push_back(kLocal);
    rc.xy = kLocal;
    return rc;
  }
  const int hx = static_cast<int>(mesh.x_of(here));
  const int hy = static_cast<int>(mesh.y_of(here));
  const int dx = static_cast<int>(mesh.x_of(dest));
  const int dy = static_cast<int>(mesh.y_of(dest));

  const int x_dir = dx > hx ? kEast : (dx < hx ? kWest : -1);
  const int y_dir = dy > hy ? kSouth : (dy < hy ? kNorth : -1);

  // XY dimension order: exhaust X first.
  rc.xy = x_dir != -1 ? x_dir : y_dir;

  if (algo == RoutingAlgo::kXY) {
    rc.minimal.push_back(rc.xy);
  } else {
    if (x_dir != -1) rc.minimal.push_back(x_dir);
    if (y_dir != -1) rc.minimal.push_back(y_dir);
  }
  return rc;
}

}  // namespace arinoc
