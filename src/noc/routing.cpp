#include "noc/routing.hpp"

namespace arinoc {

RouteCandidates compute_route(const Mesh& mesh, NodeId here, NodeId dest,
                              RoutingAlgo algo) {
  RouteCandidates rc;
  if (here == dest) {
    rc.minimal.push_back(kLocal);
    rc.xy = kLocal;
    return rc;
  }
  const int hx = static_cast<int>(mesh.x_of(here));
  const int hy = static_cast<int>(mesh.y_of(here));
  const int dx = static_cast<int>(mesh.x_of(dest));
  const int dy = static_cast<int>(mesh.y_of(dest));

  const int x_dir = dx > hx ? kEast : (dx < hx ? kWest : -1);
  const int y_dir = dy > hy ? kSouth : (dy < hy ? kNorth : -1);

  // XY dimension order: exhaust X first.
  rc.xy = x_dir != -1 ? x_dir : y_dir;

  if (algo == RoutingAlgo::kXY) {
    rc.minimal.push_back(rc.xy);
  } else {
    if (x_dir != -1) rc.minimal.push_back(x_dir);
    if (y_dir != -1) rc.minimal.push_back(y_dir);
  }
  return rc;
}

RouteCandidates compute_route(const topo::Fabric& fabric, NodeId here,
                              int in_port, NodeId dest, RoutingAlgo algo) {
  if (const Mesh* mesh = fabric.mesh_view()) {
    return compute_route(*mesh, here, dest, algo);
  }
  RouteCandidates rc;
  const int local = fabric.local_port();
  if (here == dest) {
    rc.minimal.push_back(local);
    rc.xy = local;
    return rc;
  }
  const topo::RoutingTable& table = *fabric.table();
  const int phase = table.phase_of(here, in_port);
  const topo::RouteEntry& e = table.entry(dest, here, phase);
  // validate_graph + the table construction guarantee a legal port from any
  // state routing can reach (docs/fabrics.md, deadlock-freedom argument).
  rc.xy = e.escape;
  if (algo == RoutingAlgo::kXY) {
    // Deterministic: always the single escape port.
    rc.minimal.push_back(e.escape);
  } else {
    for (int port = 0; port < fabric.max_ports(); ++port) {
      if ((e.port_mask >> port) & 1u) rc.minimal.push_back(port);
    }
  }
  return rc;
}

}  // namespace arinoc
