// DA2mesh overlay reply fabric (Kim et al., ICCD'12 — paper §7.5(4)).
//
// DA2mesh provides a direct all-to-all overlay from the few MC nodes to the
// many CC nodes using multiple dedicated narrow channels clocked faster.
// We model the reply side of it: each MC owns `lanes` independent serializer
// lanes; a reply packet is assigned to a lane, serialized at the lane rate,
// then flies to its CC after a distance-dependent wire latency. Because the
// overlay is single-hop, in-network contention disappears — but the paper's
// point stands: the *injection* process (feeding the lanes from the MC) is
// untouched by DA2mesh, so ARI composes with it:
//
//  * plain DA2mesh: single NI queue, one flit per cycle to the lane mux
//    (same supply limit as the enhanced baseline);
//  * DA2mesh+ARI:   split queues, each wired to its own lane, supplying up
//    to `lanes` flits per cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/ni.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"
#include "noc/topology.hpp"

namespace arinoc {

struct OverlayParams {
  std::uint32_t lanes = 4;          ///< Dedicated narrow channels per MC.
  double lane_rate = 1.0;           ///< Flit-equivalents per NoC cycle/lane
                                    ///< (narrow width x higher frequency).
  std::uint32_t base_wire_latency = 3;  ///< Single-hop overlay fly time.
  std::uint32_t queue_flits = 36;
  bool ari = false;                 ///< Split-queue supply (ARI on top).
  std::uint32_t data_payload_bits = 512;
  std::uint32_t link_width_bits = 128;
};

class Da2MeshOverlay {
 public:
  Da2MeshOverlay(const OverlayParams& params, const Mesh* mesh);

  /// Registers the packet consumer for a CC node.
  void set_sink(NodeId cc, PacketSink* sink);

  PacketId make_packet(PacketType type, NodeId src, NodeId dest,
                       std::uint64_t txn, Cycle now);

  /// Offers a reply packet at an MC; false when the NI queue is full
  /// (caller accounts the MC stall, as with the mesh fabric).
  bool try_accept(NodeId mc, PacketId id, Cycle now);

  /// Un-creates a packet that was never accepted.
  void abandon_packet(PacketId id) {
    --stats_.packets_injected;
    arena_.retire(id);
  }

  void step(Cycle now);

  NocStats& stats() { return stats_; }
  const NocStats& stats() const { return stats_; }
  std::size_t occupancy_flits(NodeId mc) const;

 private:
  struct Lane {
    PacketId busy_pkt = kInvalidPacket;
    std::uint32_t flits_left = 0;
    double rate_accum = 0.0;
  };
  struct InFlight {
    PacketId pkt;
    Cycle arrive;
  };
  struct NiQueue {
    std::deque<PacketId> pkts;
    std::size_t flits = 0;
    std::size_t capacity_flits = 0;
  };
  struct McEndpoint {
    // Queues: 1 (plain) or `lanes` (ARI split supply). In plain mode only
    // lane 0 is usable — the single NI read port feeds one lane at a time,
    // which is exactly the supply limit ARI removes.
    std::vector<NiQueue> queues;
    std::vector<Lane> lanes;
    std::size_t accept_rr = 0;
  };

  std::uint16_t flits_for(PacketType type) const;
  McEndpoint& endpoint(NodeId mc);

  OverlayParams params_;
  const Mesh* mesh_;
  PacketArena arena_;
  std::vector<int> mc_index_;  ///< node -> endpoint index or -1.
  std::vector<McEndpoint> endpoints_;
  std::vector<PacketSink*> sinks_;  ///< Indexed by node id.
  std::vector<InFlight> in_flight_;
  NocStats stats_;
};

}  // namespace arinoc
