#include "noc/noc_stats.hpp"

namespace arinoc {

void NocStats::record_delivery(const Packet& pkt, Cycle now) {
  const auto idx = static_cast<std::size_t>(pkt.type);
  latency[idx].add(static_cast<double>(now - pkt.created));
  latency_hist[idx].add(static_cast<double>(now - pkt.created));
  if (pkt.injected >= pkt.created) {
    ni_wait.add(static_cast<double>(pkt.injected - pkt.created));
    net_transit.add(static_cast<double>(now - pkt.injected));
  }
  flits_delivered[idx] += pkt.num_flits;
  packets_delivered[idx] += 1;
}

void NocStats::reset() {
  for (auto& a : latency) a.reset();
  for (auto& h : latency_hist) h.reset();
  ni_wait.reset();
  net_transit.reset();
  flits_delivered = {};
  packets_delivered = {};
  packets_injected = 0;
  flits_corrupted = 0;
  packets_corrupted = 0;
  duplicates_dropped = 0;
  packets_lost = 0;
}

double NocStats::mean_latency_all() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& a : latency) {
    sum += a.sum();
    n += a.count();
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

LogHistogram NocStats::latency_hist_all() const {
  LogHistogram all;
  for (const auto& h : latency_hist) all.merge(h);
  return all;
}

}  // namespace arinoc
