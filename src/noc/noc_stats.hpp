// Aggregated per-network statistics: packet latencies split by type, flit
// counts per type (Fig. 5), and link-utilization probes (§3).
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/packet.hpp"

namespace arinoc {

struct NocStats {
  /// Latency from NI enqueue to tail ejection, indexed by PacketType.
  std::array<Accumulator, 4> latency;
  /// The same latency samples as log-scale histograms, for tail percentiles
  /// (p50/p95/p99). Indexed by PacketType.
  std::array<LogHistogram, 4> latency_hist;
  /// Decomposition: time waiting in the source NI (enqueue -> first flit
  /// into the router) and time in the network (injection -> tail ejection).
  Accumulator ni_wait;
  Accumulator net_transit;
  /// Flits delivered, indexed by PacketType (traffic-load weighting).
  std::array<std::uint64_t, 4> flits_delivered{};
  std::array<std::uint64_t, 4> packets_delivered{};
  std::uint64_t packets_injected = 0;

  // ---- Fault / recovery counters (all stay 0 with faults disabled) ----
  std::uint64_t flits_corrupted = 0;    ///< Flits hit by link corruption.
  std::uint64_t packets_corrupted = 0;  ///< Packets failing CRC at ejection.
  std::uint64_t duplicates_dropped = 0; ///< Duplicate/stale arrivals eaten.
  std::uint64_t packets_lost = 0;       ///< Corrupt with recovery disabled.

  void record_delivery(const Packet& pkt, Cycle now);
  void reset();

  double mean_latency(PacketType t) const {
    return latency[static_cast<std::size_t>(t)].mean();
  }
  std::uint64_t total_flits() const {
    std::uint64_t s = 0;
    for (auto f : flits_delivered) s += f;
    return s;
  }
  std::uint64_t total_packets() const {
    std::uint64_t s = 0;
    for (auto p : packets_delivered) s += p;
    return s;
  }
  /// Mean latency over all delivered packets.
  double mean_latency_all() const;
  /// Latency histogram merged over all packet types (tail percentiles across
  /// the whole network).
  LogHistogram latency_hist_all() const;
};

}  // namespace arinoc
