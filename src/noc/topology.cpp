#include "noc/topology.hpp"

#include <cassert>
#include <cstdlib>

namespace arinoc {

const char* direction_name(int dir) {
  switch (dir) {
    case kNorth: return "N";
    case kEast: return "E";
    case kSouth: return "S";
    case kWest: return "W";
    case kLocal: return "L";
  }
  return "?";
}

int opposite(int dir) {
  switch (dir) {
    case kNorth: return kSouth;
    case kSouth: return kNorth;
    case kEast: return kWest;
    case kWest: return kEast;
  }
  return dir;
}

const char* placement_name(McPlacement p) {
  switch (p) {
    case McPlacement::kDiamond: return "diamond";
    case McPlacement::kTopBottom: return "top-bottom";
    case McPlacement::kColumn: return "column";
  }
  return "?";
}

Mesh::Mesh(std::uint32_t width, std::uint32_t height, std::uint32_t num_mcs,
           McPlacement placement)
    : width_(width), height_(height), is_mc_(width * height, false) {
  assert(num_mcs < nodes());
  switch (placement) {
    case McPlacement::kDiamond:
      place_mcs_diamond(num_mcs);
      break;
    case McPlacement::kTopBottom:
      place_mcs_top_bottom(num_mcs);
      break;
    case McPlacement::kColumn:
      place_mcs_column(num_mcs);
      break;
  }
  for (NodeId n = 0; n < static_cast<NodeId>(nodes()); ++n) {
    if (is_mc_[static_cast<std::size_t>(n)]) {
      mc_nodes_.push_back(n);
    } else {
      cc_nodes_.push_back(n);
    }
  }
}

NodeId Mesh::neighbor(NodeId n, int dir) const {
  const std::uint32_t x = x_of(n);
  const std::uint32_t y = y_of(n);
  switch (dir) {
    case kNorth: return y > 0 ? node_at(x, y - 1) : kInvalidNode;
    case kSouth: return y + 1 < height_ ? node_at(x, y + 1) : kInvalidNode;
    case kWest: return x > 0 ? node_at(x - 1, y) : kInvalidNode;
    case kEast: return x + 1 < width_ ? node_at(x + 1, y) : kInvalidNode;
  }
  return kInvalidNode;
}

std::uint32_t Mesh::hops(NodeId a, NodeId b) const {
  const auto dx = std::abs(static_cast<int>(x_of(a)) - static_cast<int>(x_of(b)));
  const auto dy = std::abs(static_cast<int>(y_of(a)) - static_cast<int>(y_of(b)));
  return static_cast<std::uint32_t>(dx + dy);
}

std::uint32_t Mesh::bisection_links() const {
  // Vertical cut through the middle: `height` bidirectional link pairs,
  // i.e. 2*height uni-directional links.
  return 2 * height_;
}

void Mesh::place_mcs_diamond(std::uint32_t num_mcs) {
  // Deterministic farthest-point placement biased toward interior nodes.
  // Reproduces the intent of the diamond placement (Abts et al.): MCs spread
  // apart so reply traffic is not concentrated on one mesh region, and kept
  // off corners where routers have fewer links.
  auto degree = [&](NodeId n) {
    int d = 0;
    for (int dir = 0; dir < kNumDirections; ++dir) {
      if (neighbor(n, dir) != kInvalidNode) ++d;
    }
    return static_cast<std::uint32_t>(d);
  };

  // Seed near the top-center: matches hand-drawn diamond layouts.
  NodeId seed = node_at(width_ / 2, height_ > 2 ? 1 : 0);
  is_mc_[static_cast<std::size_t>(seed)] = true;

  for (std::uint32_t placed = 1; placed < num_mcs; ++placed) {
    NodeId best = kInvalidNode;
    std::uint32_t best_score = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(nodes()); ++n) {
      if (is_mc_[static_cast<std::size_t>(n)]) continue;
      // Corners (degree 2) make poor MC routers: fewer links to fan reply
      // traffic out. Skip them whenever the mesh offers alternatives.
      if (degree(n) <= 2 && nodes() > num_mcs + 4) continue;
      std::uint32_t min_dist = width_ + height_;
      for (NodeId m = 0; m < static_cast<NodeId>(nodes()); ++m) {
        if (is_mc_[static_cast<std::size_t>(m)] && hops(n, m) < min_dist) {
          min_dist = hops(n, m);
        }
      }
      const std::uint32_t score = 4 * min_dist + degree(n);
      if (best == kInvalidNode || score > best_score) {
        best = n;
        best_score = score;
      }
    }
    is_mc_[static_cast<std::size_t>(best)] = true;
  }
}

void Mesh::place_mcs_top_bottom(std::uint32_t num_mcs) {
  // Half the MCs spread along row 0, half along the bottom row — the
  // classic GPU floorplan the diamond placement improves upon.
  const std::uint32_t top = (num_mcs + 1) / 2;
  const std::uint32_t bottom = num_mcs - top;
  for (std::uint32_t k = 0; k < top; ++k) {
    const std::uint32_t x = (k * width_ + width_ / 2) / top % width_;
    NodeId n = node_at(x, 0);
    while (is_mc_[static_cast<std::size_t>(n)]) {
      n = node_at((x_of(n) + 1) % width_, 0);
    }
    is_mc_[static_cast<std::size_t>(n)] = true;
  }
  for (std::uint32_t k = 0; k < bottom; ++k) {
    const std::uint32_t x = (k * width_ + width_ / 2) / bottom % width_;
    NodeId n = node_at(x, height_ - 1);
    while (is_mc_[static_cast<std::size_t>(n)]) {
      n = node_at((x_of(n) + 1) % width_, height_ - 1);
    }
    is_mc_[static_cast<std::size_t>(n)] = true;
  }
}

void Mesh::place_mcs_column(std::uint32_t num_mcs) {
  // Stack MCs down the two center columns (clustered: worst-case reply
  // injection concentration, used as an ablation reference).
  std::uint32_t placed = 0;
  for (std::uint32_t y = 0; y < height_ && placed < num_mcs; ++y) {
    for (std::uint32_t dx = 0; dx < 2 && placed < num_mcs; ++dx) {
      const NodeId n = node_at(width_ / 2 - 1 + dx, y);
      if (!is_mc_[static_cast<std::size_t>(n)]) {
        is_mc_[static_cast<std::size_t>(n)] = true;
        ++placed;
      }
    }
  }
}

}  // namespace arinoc
