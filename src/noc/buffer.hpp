// Bounded flit FIFO used for VC buffers, NI injection queues and ejection
// staging. Tracks occupancy statistics for the Fig. 6 experiment.
#pragma once

#include <cstddef>
#include <deque>

#include "common/types.hpp"
#include "noc/flit.hpp"

namespace arinoc {

class FlitBuffer {
 public:
  explicit FlitBuffer(std::size_t capacity_flits = 0)
      : capacity_(capacity_flits) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return q_.size(); }
  std::size_t free_space() const { return capacity_ - q_.size(); }
  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= capacity_; }

  /// True if a whole packet of `flits` flits fits right now.
  bool fits(std::size_t flits) const { return free_space() >= flits; }

  /// Push one flit. Caller must have checked capacity.
  void push(const Flit& f);

  const Flit& front() const { return q_.front(); }
  Flit pop();

  /// Flit at queue position i (0 = front); used by wide-link enqueue checks.
  const Flit& at(std::size_t i) const { return q_[i]; }

  void set_capacity(std::size_t capacity_flits) { capacity_ = capacity_flits; }
  void clear() { q_.clear(); }

  // Occupancy sampling (flits): updated on every push/pop.
  std::uint64_t sample_count() const { return samples_; }
  double mean_occupancy() const {
    return samples_ ? occupancy_sum_ / static_cast<double>(samples_) : 0.0;
  }
  std::size_t peak_occupancy() const { return peak_; }
  void reset_stats() {
    samples_ = 0;
    occupancy_sum_ = 0.0;
    peak_ = 0;
  }
  /// Record one occupancy sample (called once per cycle by the owner).
  void sample() {
    ++samples_;
    occupancy_sum_ += static_cast<double>(q_.size());
    if (q_.size() > peak_) peak_ = q_.size();
  }

 private:
  std::size_t capacity_;
  std::deque<Flit> q_;
  std::uint64_t samples_ = 0;
  double occupancy_sum_ = 0.0;
  std::size_t peak_ = 0;
};

}  // namespace arinoc
