#include "noc/ni.hpp"

#include <algorithm>
#include <cassert>

#include "obs/attr.hpp"
#include "obs/trace.hpp"

namespace arinoc {

namespace {

/// Picks an injection VC on port `ip` that can start a packet of `flits`
/// flits; returns -1 if none is available this cycle.
int pick_injection_vc(Router& r, std::uint32_t ip, std::uint32_t flits) {
  for (std::uint32_t vc = 0; vc < r.num_vcs(); ++vc) {
    if (r.injection_vc_ready(ip, vc, flits)) return static_cast<int>(vc);
  }
  return -1;
}

}  // namespace

InjectNi::InjectNi(Network* net, NodeId node) : net_(net), node_(node) {}

void InjectNi::finish_accept(PacketId id, Cycle now) {
  // Wake for activity-driven stepping. This covers every path that can give
  // an idle NI work: first transmissions from the core/MC ports and
  // retransmissions re-injected by the RetransmitTracker.
  if (act_set_) act_set_->wake(act_idx_);
  net_->arena().at(id).created = now;
  if (RetransmitTracker* rtx = net_->retransmit()) rtx->on_accept(id, now);
  if (obs::PacketTracer* t = net_->tracer()) {
    t->record(obs::TraceEventKind::kNiEnqueue, net_->tracer_net(), now, id,
              net_->arena().at(id).type, node_, -1);
  }
  if (obs::LatencyAttributor* a = net_->attributor()) {
    a->on_ni_enqueue(net_->attr_net(), id, net_->arena().at(id).type, node_,
                     now);
  }
}

// ---------------------------------------------------------------- Baseline
BaselineInjectNi::BaselineInjectNi(Network* net, NodeId node,
                                   std::uint32_t queue_flits)
    : InjectNi(net, node), queue_(queue_flits) {}

bool BaselineInjectNi::try_accept(PacketId id, Cycle now) {
  if (incoming_ != kInvalidPacket) return false;  // Narrow link busy.
  const Packet& pkt = net_->arena().at(id);
  if (!queue_.fits(pkt.num_flits)) return false;
  incoming_ = id;
  incoming_remaining_ = pkt.num_flits;  // One cycle per flit over the link.
  finish_accept(id, now);
  return true;
}

void BaselineInjectNi::cycle(Cycle now) {
  if (incoming_ != kInvalidPacket) {
    if (--incoming_remaining_ == 0) {
      const Packet& pkt = net_->arena().at(incoming_);
      for (std::uint16_t s = 0; s < pkt.num_flits; ++s) {
        queue_.push(PacketArena::flit_of(incoming_, s, pkt.num_flits));
      }
      ++queued_packets_;
      incoming_ = kInvalidPacket;
    }
  }
  drain_to_router(now);
}

void BaselineInjectNi::drain_to_router(Cycle now) {
  if (queue_.empty()) return;
  Router& r = router();
  if (locked_vc_ < 0) {
    const Flit& head = queue_.front();
    assert(head.head);
    const Packet& pkt = net_->arena().at(head.pkt);
    locked_vc_ = pick_injection_vc(r, 0, pkt.num_flits);
    if (locked_vc_ < 0) return;
  }
  if (r.injection_free(0, static_cast<std::uint32_t>(locked_vc_)) == 0) return;
  const Flit f = queue_.pop();
  r.inject_flit(0, static_cast<std::uint32_t>(locked_vc_), f, now);
  if (f.tail) {
    locked_vc_ = -1;
    --queued_packets_;
  }
}

std::size_t BaselineInjectNi::occupancy_flits() const { return queue_.size(); }
std::size_t BaselineInjectNi::occupancy_packets() const {
  return queued_packets_;
}

// ---------------------------------------------------------------- Enhanced
EnhancedInjectNi::EnhancedInjectNi(Network* net, NodeId node,
                                   std::uint32_t queue_flits)
    : InjectNi(net, node), queue_(queue_flits) {}

bool EnhancedInjectNi::try_accept(PacketId id, Cycle now) {
  const Packet& pkt = net_->arena().at(id);
  if (!queue_.fits(pkt.num_flits)) return false;
  // Wide W-bit links (Fig. 7a): the whole packet reaches the queue at once.
  for (std::uint16_t s = 0; s < pkt.num_flits; ++s) {
    queue_.push(PacketArena::flit_of(id, s, pkt.num_flits));
  }
  ++queued_packets_;
  finish_accept(id, now);
  return true;
}

void EnhancedInjectNi::cycle(Cycle now) {
  if (queue_.empty()) return;
  Router& r = router();
  if (locked_vc_ < 0) {
    const Flit& head = queue_.front();
    assert(head.head);
    const Packet& pkt = net_->arena().at(head.pkt);
    locked_vc_ = pick_injection_vc(r, 0, pkt.num_flits);
    if (locked_vc_ < 0) return;
  }
  // Narrow link AB: one flit per cycle at most.
  if (r.injection_free(0, static_cast<std::uint32_t>(locked_vc_)) == 0) return;
  const Flit f = queue_.pop();
  r.inject_flit(0, static_cast<std::uint32_t>(locked_vc_), f, now);
  if (f.tail) {
    locked_vc_ = -1;
    --queued_packets_;
  }
}

std::size_t EnhancedInjectNi::occupancy_flits() const { return queue_.size(); }
std::size_t EnhancedInjectNi::occupancy_packets() const {
  return queued_packets_;
}

// -------------------------------------------------------------- SplitQueue
SplitQueueInjectNi::SplitQueueInjectNi(Network* net, NodeId node,
                                       std::uint32_t total_flits,
                                       std::uint32_t num_queues)
    : InjectNi(net, node) {
  // Same total buffer budget as the single queue (§6.2 fairness note); every
  // split queue must hold at least one long packet (§4.1).
  const std::uint32_t long_flits = net->flits_for(PacketType::kReadReply);
  const std::uint32_t per_queue =
      std::max(total_flits / std::max(1u, num_queues), long_flits);
  queues_.resize(num_queues);
  for (auto& q : queues_) q.buf.set_capacity(per_queue);
}

bool SplitQueueInjectNi::try_accept(PacketId id, Cycle now) {
  const Packet& pkt = net_->arena().at(id);
  // Multiplexer distributes incoming packets over split queues (Fig. 7b);
  // round-robin over queues with room for the whole packet.
  for (std::size_t k = 0; k < queues_.size(); ++k) {
    const std::size_t qi = (accept_rr_ + k) % queues_.size();
    SplitQueue& q = queues_[qi];
    if (!q.buf.fits(pkt.num_flits)) continue;
    for (std::uint16_t s = 0; s < pkt.num_flits; ++s) {
      q.buf.push(PacketArena::flit_of(id, s, pkt.num_flits));
    }
    ++q.packets;
    accept_rr_ = (qi + 1) % queues_.size();
    finish_accept(id, now);
    return true;
  }
  return false;
}

void SplitQueueInjectNi::cycle(Cycle now) {
  Router& r = router();
  // Each split queue drives its own narrow link into its hard-wired VC:
  // up to num_queues() flits enter the router per cycle.
  for (std::uint32_t qi = 0; qi < queues_.size(); ++qi) {
    SplitQueue& q = queues_[qi];
    if (q.buf.empty()) continue;
    if (!q.locked) {
      const Flit& head = q.buf.front();
      assert(head.head);
      const Packet& pkt = net_->arena().at(head.pkt);
      if (!r.injection_vc_ready(0, qi, pkt.num_flits)) continue;
      q.locked = true;
    }
    if (r.injection_free(0, qi) == 0) continue;
    const Flit f = q.buf.pop();
    r.inject_flit(0, qi, f, now);
    if (f.tail) {
      q.locked = false;
      --q.packets;
    }
  }
}

std::size_t SplitQueueInjectNi::occupancy_flits() const {
  std::size_t s = 0;
  for (const auto& q : queues_) s += q.buf.size();
  return s;
}
std::size_t SplitQueueInjectNi::occupancy_packets() const {
  std::size_t s = 0;
  for (const auto& q : queues_) s += q.packets;
  return s;
}

// --------------------------------------------------------------- MultiPort
MultiPortInjectNi::MultiPortInjectNi(Network* net, NodeId node,
                                     std::uint32_t queue_flits)
    : InjectNi(net, node), queue_(queue_flits) {}

bool MultiPortInjectNi::try_accept(PacketId id, Cycle now) {
  const Packet& pkt = net_->arena().at(id);
  if (!queue_.fits(pkt.num_flits)) return false;
  for (std::uint16_t s = 0; s < pkt.num_flits; ++s) {
    queue_.push(PacketArena::flit_of(id, s, pkt.num_flits));
  }
  ++queued_packets_;
  finish_accept(id, now);
  return true;
}

void MultiPortInjectNi::cycle(Cycle now) {
  if (queue_.empty()) return;
  Router& r = router();
  if (!streaming_) {
    const Flit& head = queue_.front();
    assert(head.head);
    const Packet& pkt = net_->arena().at(head.pkt);
    // Try the preferred (alternating) port first, then the others.
    const std::uint32_t ports = r.num_injection_ports();
    for (std::uint32_t k = 0; k < ports; ++k) {
      const std::uint32_t p = (current_port_ + k) % ports;
      const int vc = pick_injection_vc(r, p, pkt.num_flits);
      if (vc >= 0) {
        current_port_ = p;
        locked_vc_ = vc;
        streaming_ = true;
        break;
      }
    }
    if (!streaming_) return;
  }
  // The single NI queue read port still supplies at most 1 flit/cycle — the
  // limitation the paper points out for this scheme.
  if (r.injection_free(current_port_, static_cast<std::uint32_t>(locked_vc_)) ==
      0) {
    return;
  }
  const Flit f = queue_.pop();
  r.inject_flit(current_port_, static_cast<std::uint32_t>(locked_vc_), f, now);
  if (f.tail) {
    streaming_ = false;
    --queued_packets_;
    current_port_ = (current_port_ + 1) % r.num_injection_ports();
  }
}

std::size_t MultiPortInjectNi::occupancy_flits() const { return queue_.size(); }
std::size_t MultiPortInjectNi::occupancy_packets() const {
  return queued_packets_;
}

// ---------------------------------------------------------------- Factory
std::unique_ptr<InjectNi> make_inject_ni(NiArch arch, Network* net,
                                         NodeId node, const Config& cfg) {
  switch (arch) {
    case NiArch::kBaseline:
      return std::make_unique<BaselineInjectNi>(net, node, cfg.ni_queue_flits);
    case NiArch::kEnhanced:
      return std::make_unique<EnhancedInjectNi>(net, node, cfg.ni_queue_flits);
    case NiArch::kSplitQueue:
      return std::make_unique<SplitQueueInjectNi>(
          net, node, cfg.ni_queue_flits, cfg.split_queues);
    case NiArch::kMultiPort:
      return std::make_unique<MultiPortInjectNi>(net, node,
                                                 cfg.ni_queue_flits);
  }
  return nullptr;
}

// ----------------------------------------------------------------- EjectNi
EjectNi::EjectNi(Network* net, NodeId node, PacketSink* sink,
                 std::uint32_t drain_flits_per_cycle)
    : net_(net), node_(node), sink_(sink), drain_rate_(drain_flits_per_cycle) {}

void EjectNi::cycle(Cycle now) {
  Router& r = net_->router(node_);
  for (std::uint32_t k = 0; k < drain_rate_; ++k) {
    if (!sink_->sink_ready()) return;  // Backpressure into the network.
    if (!r.has_ejected_flit()) return;
    const Flit f = r.pop_ejected_flit();
    const Packet& pkt = net_->arena().at(f.pkt);
    Partial& part = partial_[f.pkt];
    ++part.have;
    if (f.corrupted) part.corrupted = true;
    if (part.have == pkt.num_flits) {
      const bool corrupted = part.corrupted;
      partial_.erase(f.pkt);
      if (obs::PacketTracer* t = net_->tracer()) {
        t->record(obs::TraceEventKind::kEject, net_->tracer_net(), now, f.pkt,
                  pkt.type, node_, corrupted ? 1 : 0);
      }
      // CRC check + duplicate suppression happen here, at reassembly.
      const RxOutcome outcome = net_->classify_rx(f.pkt, corrupted, now);
      if (outcome == RxOutcome::kDeliver) {
        sink_->deliver(pkt, now);
        net_->finish_packet(f.pkt, now);
      } else {
        net_->drop_packet(f.pkt, now, outcome);
      }
    }
  }
}

}  // namespace arinoc
