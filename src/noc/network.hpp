// A full mesh network instance: routers, pipelined links, credit return
// paths, a packet arena and delivery statistics. The GPGPU system owns two
// of these (request network and reply network, paper Fig. 2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/active_set.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "noc/fault.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "noc/topology.hpp"
#include "topo/fabric.hpp"
#include "topo/partition.hpp"

namespace arinoc {

namespace obs {
class PacketTracer;
class LatencyAttributor;
}

/// Per-network geometry/behaviour knobs derived from Config by the caller
/// (request and reply networks differ in link width and NI/router features).
struct NetworkParams {
  std::string name = "net";
  std::uint32_t link_width_bits = 128;
  std::uint32_t num_vcs = 4;
  std::uint32_t vc_depth_flits = 5;
  std::uint32_t link_latency = 1;
  RoutingAlgo routing = RoutingAlgo::kXY;
  bool non_atomic_vc = true;
  std::uint32_t priority_levels = 1;
  Cycle starvation_threshold = 1000;
  /// Injection crossbar speedup at MC routers (ARI §4.2); non-MC routers
  /// always use speedup 1 (the paper changes only MC-routers).
  std::uint32_t mc_injection_speedup = 1;
  /// Number of injection input ports at MC routers (MultiPort [3]).
  std::uint32_t mc_injection_ports = 1;
  /// Which nodes get the enhanced-router treatment (speedup / extra
  /// ports). The paper applies it to MC routers of the reply network only;
  /// treat_ccs_specially exists for the request-side negative control.
  bool treat_mcs_specially = false;
  bool treat_ccs_specially = false;
  /// Fault campaign + recovery knobs. All rates zero (the default) means no
  /// injector or tracker is even constructed — a strict no-op.
  FaultParams fault;
  /// Activity-driven stepping: step() iterates only routers that can do
  /// work this cycle (woken by flit delivery/injection). Host-side execution
  /// strategy only — simulated behaviour is bit-identical either way.
  bool activity_driven = false;
};

class Network {
 public:
  /// Builds the network over an externally owned fabric (any topology).
  Network(const NetworkParams& params, const topo::Fabric* fabric);
  /// Compatibility: builds over a bare Mesh by wrapping it in an owned
  /// (non-owning view) Fabric — behaviour is bit-identical to the fabric
  /// path for meshes.
  Network(const NetworkParams& params, const Mesh* mesh);

  /// Advances the network by one cycle: delivers in-flight flits/credits,
  /// then steps every router. With domain mode enabled this runs the
  /// decomposed sequence (step_begin / every step_domain / step_finish)
  /// serially — same results, no threads.
  void step(Cycle now);

  // ---- Domain-parallel stepping (spatial decomposition) ----
  //
  // With a partition configured and domain mode enabled, one cycle becomes
  //   step_begin(now);                    // serial: fault draw + blocked links
  //   step_domain(d, now) for every d;    // parallel: domains are disjoint
  //   step_finish(now);                   // serial: mailbox merge + barrier
  // Each domain owns its routers, its slice of the link-pipeline rings, and
  // its own ActiveSet; flits/credits crossing a boundary are staged into the
  // source domain's outbox and merged into the destination domain's ring at
  // step_finish, in ascending domain order. Within one ring slot every
  // (router, input port) pair receives from exactly one upstream router, so
  // the slot-internal order shuffle this introduces is unobservable and the
  // results stay bit-identical to serial stepping for ANY partition (see
  // docs/performance.md "Domain decomposition").

  /// Attaches a partition (not owned; must outlive the network). With
  /// epoch_slack, cross-domain merges happen only every E-th cycle where E =
  /// base link latency + the minimum boundary serdes latency — exact because
  /// an event staged at cycle t is merged by t+E-1, before its delivery at
  /// t+lat >= t+E.
  void configure_domains(const topo::DomainPartition* part, bool epoch_slack);
  /// Toggles between the classic global rings and per-domain stepping,
  /// migrating all in-flight ring/activity state (both directions are
  /// exact). Requires no tracer/attributor while enabled: observer hook
  /// order is defined by the serial router schedule.
  void set_domain_mode(bool enabled);
  bool domains_enabled() const { return domains_on_; }
  std::uint32_t num_domains() const {
    return part_ ? part_->num_domains : 0;
  }
  void step_begin(Cycle now);
  /// Steps domain `d` for one cycle. Thread-safe against other domains of
  /// the same cycle; everything it mutates is owned by domain d.
  void step_domain(std::uint32_t d, Cycle now);
  void step_finish(Cycle now);

  Router& router(NodeId n) { return *routers_[static_cast<std::size_t>(n)]; }
  const Router& router(NodeId n) const {
    return *routers_[static_cast<std::size_t>(n)];
  }

  PacketArena& arena() { return arena_; }
  const PacketArena& arena() const { return arena_; }
  const topo::Fabric& fabric() const { return *fabric_; }
  /// Mesh view of the fabric; only valid for mesh fabrics (heatmaps and
  /// other geometry-aware probes — fabric() is the generic interface).
  const Mesh& mesh() const { return *fabric_->mesh_view(); }
  const NetworkParams& params() const { return params_; }

  /// Creates a packet sized for this network's link width.
  PacketId make_packet(PacketType type, NodeId src, NodeId dest,
                       std::uint8_t priority, std::uint64_t txn, Cycle now);
  /// Number of flits a packet of `type` occupies on this network.
  std::uint16_t flits_for(PacketType type) const;

  /// Records delivery stats and retires the packet. Called by ejection NIs
  /// after the sink has consumed the payload.
  void finish_packet(PacketId id, Cycle now);

  /// Un-creates a packet that was never accepted by an NI (the sender keeps
  /// the data and retries later).
  void abandon_packet(PacketId id) {
    --stats_.packets_injected;
    arena_.retire(id);
  }

  NocStats& stats() { return stats_; }
  const NocStats& stats() const { return stats_; }

  // ---- Fault-injection / recovery (null when no fault class enabled) ----
  FaultInjector* fault() { return fault_.get(); }
  const FaultInjector* fault() const { return fault_.get(); }
  RetransmitTracker* retransmit() { return rtx_.get(); }
  const RetransmitTracker* retransmit() const { return rtx_.get(); }

  /// CRC / dedup verdict for a fully reassembled packet (delegates to the
  /// retransmission tracker; without one, corruption means the packet is
  /// simply lost).
  RxOutcome classify_rx(PacketId id, bool corrupted, Cycle now);
  /// Retires a packet that will NOT be delivered to the sink (corrupt,
  /// duplicate, or stale), keeping the drop statistics.
  void drop_packet(PacketId id, Cycle now, RxOutcome why);

  /// Total credits intentionally destroyed by the fault injector on each
  /// link; validate_credit_invariants accounts for them.
  std::uint64_t credits_lost_total() const;

  /// Monotone activity counter (flits injected + ejected + crossbar
  /// traversals over all routers); the watchdog detects deadlock by
  /// watching this stop changing.
  std::uint64_t movement_count() const;

  // ---- Link-utilization probes (paper §3) ----
  /// Mean flits/cycle over all connected router-to-router links.
  double internal_link_utilization(Cycle elapsed) const;
  /// Mean flits/cycle over NI->router injection links of the given nodes.
  double injection_link_utilization(Cycle elapsed,
                                    const std::vector<NodeId>& nodes) const;
  void reset_stats();

  // ---- Observability ----
  /// Routes ejection-buffer pushes at node `n` to a wake of member `idx` in
  /// `set` (the ejection NI's active set; activity-driven mode only).
  void set_eject_hook(NodeId n, ActiveSet* set, std::size_t idx) {
    routers_[static_cast<std::size_t>(n)]->set_eject_hook(set, idx);
  }

  /// Attaches a packet-lifecycle tracer to this network and all its routers
  /// (null detaches). `net` tags the emitted events (0 = request, 1 = reply).
  void set_tracer(obs::PacketTracer* t, std::uint8_t net);
  obs::PacketTracer* tracer() const { return tracer_; }
  std::uint8_t tracer_net() const { return tracer_net_; }

  /// Attaches a latency attributor to this network and all its routers
  /// (null detaches). Same observer contract as the tracer.
  void set_attributor(obs::LatencyAttributor* a, std::uint8_t net);
  obs::LatencyAttributor* attributor() const { return attr_; }
  std::uint8_t attr_net() const { return attr_net_; }

  /// Routers pending a step next cycle (activity-driven mode; the
  /// self-profiler's wake statistic).
  std::size_t routers_pending() const {
    if (!domains_on_) return router_act_.pending();
    std::size_t sum = 0;
    for (const Domain& d : dom_) sum += d.act.pending();
    return sum;
  }

  std::uint32_t num_internal_links() const { return num_internal_links_; }
  /// Total flits sent over router-to-router links (cumulative).
  std::uint64_t internal_flits_total() const;
  /// Flits currently buffered in router input VCs (instantaneous).
  std::uint64_t buffered_flits_total() const;

  /// Verifies the credit-conservation invariant on every link: upstream
  /// credits + downstream buffered flits + in-flight flits + in-flight
  /// credits == VC depth. Returns an empty string, or a description of the
  /// first violation (a lost/duplicated credit or flit).
  std::string validate_credit_invariants() const;

  /// Payload bits configured for long packets on this network.
  std::uint32_t data_payload_bits = 512;

 private:
  struct FlitEvent {
    NodeId dst;
    int in_dir;
    int vc;
    Flit flit;
  };
  struct CreditEvent {
    NodeId dst;
    int out_dir;
    int vc;
  };

  /// One spatial domain's private stepping state. Everything here is
  /// touched only by the thread running step_domain for this domain within
  /// a cycle; the outboxes are drained serially at step_finish.
  struct Domain {
    std::vector<NodeId> members;  ///< Owned nodes, ascending.
    ActiveSet act;                ///< Local indices into members.
    /// This domain's slice of the link pipeline: events whose destination
    /// router it owns. Same slot geometry as the global rings.
    std::vector<std::vector<FlitEvent>> flit_ring;
    std::vector<std::vector<CreditEvent>> credit_ring;
    std::vector<OutboundFlit> scratch_flits;
    std::vector<OutboundCredit> scratch_credits;
    /// Cross-domain deliveries staged this epoch: (absolute ring slot,
    /// event). The slot index is stable across the deferral because an
    /// event's slot is never reached before its latency elapses.
    std::vector<std::pair<std::size_t, FlitEvent>> out_flits;
    std::vector<std::pair<std::size_t, CreditEvent>> out_credits;
    // Stats staged thread-locally, folded at step_finish.
    std::uint64_t corrupted = 0;
    std::uint64_t credit_drops = 0;
  };

  /// Takes ownership of a fabric built for this network (mesh-compat path).
  Network(const NetworkParams& params, std::unique_ptr<topo::Fabric> owned);

  void step_router(NodeId n, Cycle now, std::size_t send_slot);
  /// step_router for domain mode: per-domain scratch, staged fault
  /// counters, no observer hooks, cross-domain events go to the outbox.
  void step_router_domain(NodeId n, Cycle now, std::size_t send_slot,
                          Domain& dom);
  /// Drains every domain's outboxes into the destination domains' rings,
  /// in ascending domain order.
  void merge_outboxes();
  /// Ring slot that delivers `lat` cycles after `send_slot` (lat is in
  /// [1, ring size]; lat == ring size lands back on send_slot itself, the
  /// uniform-latency fast path).
  std::size_t slot_after(std::size_t send_slot, std::size_t lat) const {
    return (send_slot + (lat % flit_ring_.size())) % flit_ring_.size();
  }

  NetworkParams params_;
  std::unique_ptr<topo::Fabric> fabric_owned_;  ///< Mesh-compat ctor only.
  const topo::Fabric* fabric_;
  std::uint32_t base_link_latency_ = 1;  ///< max(1, params.link_latency).
  PacketArena arena_;
  std::vector<std::unique_ptr<Router>> routers_;
  /// Routers that may do work next cycle (activity-driven mode only).
  ActiveSet router_act_;
  // Ring buffers implementing link pipeline latency.
  std::vector<std::vector<FlitEvent>> flit_ring_;
  std::vector<std::vector<CreditEvent>> credit_ring_;
  std::size_t ring_pos_ = 0;
  std::uint32_t num_internal_links_ = 0;
  NocStats stats_;
  // Scratch buffers reused across cycles.
  std::vector<OutboundFlit> scratch_flits_;
  std::vector<OutboundCredit> scratch_credits_;
  // Fault subsystem (null unless some fault class is enabled).
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<RetransmitTracker> rtx_;
  // Credits destroyed per (node, dir, vc); sized only under credit loss.
  std::vector<std::uint32_t> credits_lost_;
  // Observability (null unless attached; a pure observer).
  obs::PacketTracer* tracer_ = nullptr;
  std::uint8_t tracer_net_ = 0;
  obs::LatencyAttributor* attr_ = nullptr;
  std::uint8_t attr_net_ = 0;
  // Domain-parallel stepping (configure_domains / set_domain_mode).
  const topo::DomainPartition* part_ = nullptr;
  std::vector<Domain> dom_;
  bool domains_on_ = false;
  std::size_t epoch_ = 1;  ///< Outbox-merge period in cycles (1 = every).
};

}  // namespace arinoc
