// Network interfaces (paper Fig. 7).
//
// Injection side — four architectures:
//  * BaselineInjectNi:   narrow MC->NI link; moving a long packet into the
//                        NI queue takes num_flits cycles (GPGPU-Sim default).
//  * EnhancedInjectNi:   wide MC->NI and NI->queue links; a whole packet
//                        enters the single queue in one cycle, but the AB
//                        link to the router is narrow (1 flit/cycle). This
//                        is the paper's "enhanced baseline" (§4.1, Fig.7a).
//  * SplitQueueInjectNi: ARI supply (§4.1, Fig.7b): the queue is split into
//                        k one-packet-or-larger queues, each hard-wired by a
//                        narrow link to one VC of the router injection port;
//                        up to k flits enter the router per cycle.
//  * MultiPortInjectNi:  the [3] comparator: the router has multiple
//                        injection input ports (better consumption), but the
//                        single NI queue still supplies at most 1 flit/cycle.
//
// Ejection side — EjectNi drains the router ejection buffer at the narrow
// link rate, reassembles packets (flits of different packets may interleave
// across ejection VCs) and delivers them to a PacketSink, with optional
// backpressure when the sink is not ready.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/active_set.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "noc/buffer.hpp"
#include "noc/network.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"

namespace arinoc {

/// Consumes packets delivered by an EjectNi.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  /// May the NI deliver a packet this cycle? Returning false backpressures
  /// the ejection buffer (and eventually the network).
  virtual bool sink_ready() const { return true; }
  /// Full packet delivered; `pkt` is still live in the arena during the call.
  virtual void deliver(const Packet& pkt, Cycle now) = 0;
};

/// Common interface of all injection-side NIs.
class InjectNi {
 public:
  InjectNi(Network* net, NodeId node);
  virtual ~InjectNi() = default;

  /// Offers a packet for injection. On success the NI owns the packet and
  /// stamps pkt.created = now (latency measurement starts at the NI queue,
  /// matching §7.4). Returns false when the NI cannot accept this cycle —
  /// the caller keeps the data and accounts the stall (Fig. 12).
  virtual bool try_accept(PacketId id, Cycle now) = 0;

  /// Moves flits from NI queue(s) into the router injection VC buffers.
  virtual void cycle(Cycle now) = 0;

  /// Total flits currently queued in the NI.
  virtual std::size_t occupancy_flits() const = 0;
  /// Queued complete packets (Fig. 6 reports packets).
  virtual std::size_t occupancy_packets() const = 0;

  /// True when cycle() would be a strict no-op: nothing queued and nothing
  /// mid-transfer on the node->NI link. Every accepted packet (first
  /// transmission or retransmission) goes through finish_accept, which
  /// wakes the NI, so an idle NI may sleep without a catch-up step.
  virtual bool idle() const { return occupancy_flits() == 0; }

  /// Registers this NI in `set` (as member `idx`) on every accept.
  void set_activity_hook(ActiveSet* set, std::size_t idx) {
    act_set_ = set;
    act_idx_ = idx;
  }

  /// Per-cycle occupancy sampling for Fig. 6.
  void sample() {
    ++samples_;
    occupancy_sum_ += static_cast<double>(occupancy_packets());
  }
  double mean_occupancy_packets() const {
    return samples_ ? occupancy_sum_ / static_cast<double>(samples_) : 0.0;
  }
  void reset_stats() {
    samples_ = 0;
    occupancy_sum_ = 0.0;
  }

  NodeId node() const { return node_; }

 protected:
  Router& router() { return net_->router(node_); }
  /// Accept bookkeeping shared by every NI flavour: stamps pkt.created and
  /// registers the packet with the retransmission tracker when the network
  /// has one. Call from try_accept exactly when returning true.
  void finish_accept(PacketId id, Cycle now);
  Network* net_;
  NodeId node_;

 private:
  std::uint64_t samples_ = 0;
  double occupancy_sum_ = 0.0;
  ActiveSet* act_set_ = nullptr;
  std::size_t act_idx_ = 0;
};

/// Single queue; narrow link from the node into the NI (serialization delay)
/// and narrow link into the router.
class BaselineInjectNi : public InjectNi {
 public:
  BaselineInjectNi(Network* net, NodeId node, std::uint32_t queue_flits);
  bool try_accept(PacketId id, Cycle now) override;
  void cycle(Cycle now) override;
  std::size_t occupancy_flits() const override;
  std::size_t occupancy_packets() const override;
  /// A packet serializing over the narrow node->NI link keeps the NI busy
  /// even while the queue itself is still empty.
  bool idle() const override {
    return occupancy_flits() == 0 && incoming_ == kInvalidPacket;
  }

 private:
  void drain_to_router(Cycle now);
  FlitBuffer queue_;
  std::size_t queued_packets_ = 0;
  // Narrow node->NI link: the packet being serialized in.
  PacketId incoming_ = kInvalidPacket;
  std::uint32_t incoming_remaining_ = 0;
  // Streaming state of the head packet toward the router.
  int locked_vc_ = -1;
};

/// Wide node->NI link, single queue, narrow NI->router link (Fig. 7a).
class EnhancedInjectNi : public InjectNi {
 public:
  EnhancedInjectNi(Network* net, NodeId node, std::uint32_t queue_flits);
  bool try_accept(PacketId id, Cycle now) override;
  void cycle(Cycle now) override;
  std::size_t occupancy_flits() const override;
  std::size_t occupancy_packets() const override;

 private:
  FlitBuffer queue_;
  std::size_t queued_packets_ = 0;
  int locked_vc_ = -1;
};

/// ARI split queues (Fig. 7b): queue i feeds VC i over its own narrow link.
class SplitQueueInjectNi : public InjectNi {
 public:
  SplitQueueInjectNi(Network* net, NodeId node, std::uint32_t total_flits,
                     std::uint32_t num_queues);
  bool try_accept(PacketId id, Cycle now) override;
  void cycle(Cycle now) override;
  std::size_t occupancy_flits() const override;
  std::size_t occupancy_packets() const override;
  std::uint32_t num_queues() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

 private:
  struct SplitQueue {
    FlitBuffer buf;
    std::size_t packets = 0;
    bool locked = false;  ///< Streaming head packet into its VC.
  };
  std::vector<SplitQueue> queues_;
  std::size_t accept_rr_ = 0;
};

/// [3]: single queue, 1 flit/cycle supply, alternating over the router's
/// multiple injection input ports.
class MultiPortInjectNi : public InjectNi {
 public:
  MultiPortInjectNi(Network* net, NodeId node, std::uint32_t queue_flits);
  bool try_accept(PacketId id, Cycle now) override;
  void cycle(Cycle now) override;
  std::size_t occupancy_flits() const override;
  std::size_t occupancy_packets() const override;

 private:
  FlitBuffer queue_;
  std::size_t queued_packets_ = 0;
  std::uint32_t current_port_ = 0;
  int locked_vc_ = -1;
  bool streaming_ = false;
};

/// Builds the right injection NI for a node given the configuration.
std::unique_ptr<InjectNi> make_inject_ni(NiArch arch, Network* net,
                                         NodeId node, const Config& cfg);

/// Ejection-side NI with count-based packet reassembly.
class EjectNi {
 public:
  EjectNi(Network* net, NodeId node, PacketSink* sink,
          std::uint32_t drain_flits_per_cycle = 1);

  void cycle(Cycle now);
  std::size_t pending_packets() const { return partial_.size(); }

 private:
  /// Reassembly state: flit count plus the sticky CRC verdict (any corrupted
  /// flit taints the whole packet).
  struct Partial {
    std::uint16_t have = 0;
    bool corrupted = false;
  };

  Network* net_;
  NodeId node_;
  PacketSink* sink_;
  std::uint32_t drain_rate_;
  std::unordered_map<PacketId, Partial> partial_;
};

}  // namespace arinoc
