#include "noc/fault.hpp"

#include <algorithm>
#include <sstream>

#include "noc/network.hpp"
#include "noc/ni.hpp"
#include "obs/attr.hpp"
#include "obs/trace.hpp"

namespace arinoc {

FaultParams fault_params_from(const Config& cfg) {
  FaultParams p;
  p.corrupt_rate = cfg.fault_corrupt_rate;
  p.link_stall_rate = cfg.fault_link_stall_rate;
  p.link_stall_len = cfg.fault_link_stall_len;
  p.port_fail_rate = cfg.fault_port_fail_rate;
  p.credit_loss_rate = cfg.fault_credit_loss_rate;
  p.seed = cfg.fault_seed;
  p.enable_mask = cfg.fault_enable_mask;
  p.recovery = cfg.fault_recovery;
  p.rtx_timeout = cfg.rtx_timeout;
  p.rtx_max_retries = cfg.rtx_max_retries;
  return p;
}

// ------------------------------------------------------------ FaultInjector

FaultInjector::FaultInjector(const FaultParams& params,
                             const topo::Fabric* fabric)
    : p_(params),
      fabric_(fabric),
      max_ports_(static_cast<std::size_t>(fabric->max_ports())),
      rng_(params.seed),
      links_(static_cast<std::size_t>(fabric->nodes()) * max_ports_) {
  // Fixed draw order over existing links: (node, port) ascending. The RNG is
  // consumed in exactly this order every cycle, which is what makes the
  // schedule independent of traffic.
  for (NodeId n = 0; n < static_cast<NodeId>(fabric->nodes()); ++n) {
    for (int dir = 0; dir < static_cast<int>(max_ports_); ++dir) {
      if (fabric->neighbor(n, dir) == kInvalidNode) continue;
      const std::size_t idx = static_cast<std::size_t>(n) * max_ports_ +
                              static_cast<std::size_t>(dir);
      links_[idx].exists = true;
      link_order_.push_back(idx);
    }
  }
}

FaultInjector::FaultInjector(const FaultParams& params,
                             std::unique_ptr<topo::Fabric> owned)
    : FaultInjector(params, owned.get()) {
  fabric_owned_ = std::move(owned);
}

FaultInjector::FaultInjector(const FaultParams& params, const Mesh* mesh)
    : FaultInjector(params, std::make_unique<topo::Fabric>(mesh)) {}

void FaultInjector::mix_digest(std::uint32_t kind, Cycle cycle,
                               std::size_t link_index) {
  auto mix = [this](std::uint64_t v) {
    digest_ ^= v;
    digest_ *= 0x100000001b3ull;  // FNV prime.
  };
  mix(kind);
  mix(cycle);
  mix(link_index);
}

void FaultInjector::begin_cycle(Cycle now) {
  now_ = now;
  changed_.clear();
  for (const std::size_t idx : link_order_) {
    LinkState& l = links_[idx];
    l.corrupt_now = false;
    l.drop_credit_now = false;
    // Draw order per link is fixed: corrupt, stall, port-fail, credit-loss.
    if (p_.corrupt_on() && rng_.chance(p_.corrupt_rate)) {
      l.corrupt_now = true;
      ++counters_.corrupt_windows;
      mix_digest(kFaultCorrupt, now, idx);
    }
    if (p_.stall_on() && !l.failed && l.stalled_until <= now &&
        rng_.chance(p_.link_stall_rate)) {
      l.stalled_until = now + p_.link_stall_len;
      ++counters_.stall_events;
      mix_digest(kFaultLinkStall, now, idx);
    }
    if (p_.port_fail_on() && !l.failed && rng_.chance(p_.port_fail_rate)) {
      l.failed = true;
      ++counters_.port_failures;
      mix_digest(kFaultPortFail, now, idx);
    }
    if (p_.credit_loss_on() && rng_.chance(p_.credit_loss_rate)) {
      l.drop_credit_now = true;
      mix_digest(kFaultCreditLoss, now, idx);
    }
    // Diff against the state the routers last saw, not a recomputation at
    // the current cycle: a stall whose window expires exactly now would
    // otherwise read as "was already unblocked" and the unblock transition
    // would never be pushed, leaving the link blocked forever.
    const bool blocked = l.failed || l.stalled_until > now;
    if (blocked != l.blocked_reported) {
      l.blocked_reported = blocked;
      changed_.emplace_back(static_cast<NodeId>(idx / max_ports_),
                            static_cast<int>(idx % max_ports_));
    }
  }
}

std::string FaultInjector::describe_blocked() const {
  std::ostringstream os;
  for (const std::size_t idx : link_order_) {
    const LinkState& l = links_[idx];
    if (!l.failed && l.stalled_until <= now_) continue;
    const NodeId n = static_cast<NodeId>(idx / max_ports_);
    const int dir = static_cast<int>(idx % max_ports_);
    os << "    link " << n << "->" << fabric_->neighbor(n, dir) << " ("
       << fabric_->port_name(dir) << "): "
       << (l.failed ? "failed permanently"
                    : "stalled until cycle " + std::to_string(l.stalled_until))
       << "\n";
  }
  return os.str();
}

// -------------------------------------------------------- RetransmitTracker

RetransmitTracker::RetransmitTracker(const FaultParams& params, Network* net,
                                     const topo::Fabric* fabric,
                                     std::uint32_t link_latency)
    : p_(params), net_(net), fabric_(fabric), link_latency_(link_latency) {}

void RetransmitTracker::register_ni(NodeId node, InjectNi* ni) {
  nis_[node] = ni;
}

Cycle RetransmitTracker::ack_latency(NodeId src, NodeId dest) const {
  // Out-of-band single-flit ACK/NACK channel: hop-proportional wire delay
  // plus a small CRC/notification overhead. Contention-free by design (the
  // sideband carries one bit per packet, not payload).
  return static_cast<Cycle>(fabric_->hops(src, dest)) * link_latency_ + 2;
}

void RetransmitTracker::on_accept(PacketId id, Cycle now) {
  Packet& pkt = net_->arena().at(id);
  if (pkt.rtx == 0) {
    // Fresh packet: open a retransmission-buffer entry holding everything
    // needed to re-create it.
    const std::uint64_t key = next_key_++;
    pkt.rtx = key;
    Entry e;
    e.type = pkt.type;
    e.src = pkt.src;
    e.dest = pkt.dest;
    e.priority = pkt.priority;
    e.txn = pkt.txn;
    e.cur = id;
    e.created = now;
    e.deadline = now + p_.rtx_timeout;
    entries_.emplace(key, e);
    return;
  }
  // Re-injection accepted: arm the next (exponentially backed-off) timeout.
  auto it = entries_.find(pkt.rtx);
  if (it == entries_.end()) return;  // Entry raced to lost; orphan delivery.
  Entry& e = it->second;
  e.cur = id;
  ++e.retries;
  e.want_retx = false;
  const std::uint32_t shift = std::min<std::uint32_t>(e.retries, 6);
  e.deadline = now + (p_.rtx_timeout << shift);
  ++retransmitted_;
  retransmitted_flits_ += pkt.num_flits;
}

RxOutcome RetransmitTracker::classify_rx(PacketId id, bool corrupted,
                                         Cycle now) {
  const Packet& pkt = net_->arena().at(id);
  if (pkt.rtx == 0) return corrupted ? RxOutcome::kCorrupt : RxOutcome::kDeliver;
  auto it = entries_.find(pkt.rtx);
  if (it == entries_.end()) {
    // Entry already retired (acked or given up): late duplicate.
    ++duplicates_;
    return RxOutcome::kDuplicate;
  }
  Entry& e = it->second;
  if (e.cur != id) {
    // A newer incarnation is in flight; this is the superseded copy.
    ++duplicates_;
    return RxOutcome::kStale;
  }
  if (e.ack_at != 0) {
    ++duplicates_;
    return RxOutcome::kDuplicate;
  }
  if (corrupted) {
    // NACK: the source learns after the reverse-trip latency and
    // immediately re-injects (the timeout path picks it up then).
    e.deadline = now + ack_latency(e.src, e.dest);
    return RxOutcome::kCorrupt;
  }
  e.ack_at = now + ack_latency(e.src, e.dest);
  return RxOutcome::kDeliver;
}

void RetransmitTracker::try_reinject(std::uint64_t key, Entry& e, Cycle now) {
  auto ni_it = nis_.find(e.src);
  if (ni_it == nis_.end()) return;
  const PacketId id =
      net_->make_packet(e.type, e.src, e.dest, e.priority, e.txn, now);
  net_->arena().at(id).rtx = key;
  if (!ni_it->second->try_accept(id, now)) {
    net_->abandon_packet(id);  // NI full; retry next cycle.
    return;
  }
  if (obs::PacketTracer* t = net_->tracer()) {
    t->record(obs::TraceEventKind::kRetransmit, net_->tracer_net(), now, id,
              e.type, e.src, static_cast<int>(e.retries));
  }
  if (obs::LatencyAttributor* a = net_->attributor()) {
    // finish_accept already created the new incarnation's span at `now`;
    // re-base it to the first incarnation's accept and book the recovery
    // gap as retransmission overhead.
    a->on_retransmit(net_->attr_net(), id, e.created, now);
  }
}

void RetransmitTracker::step(Cycle now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    if (e.ack_at != 0) {
      if (now >= e.ack_at) {
        if (e.retries > 0) ++recovered_;
        it = entries_.erase(it);
        continue;
      }
      ++it;
      continue;
    }
    if (e.want_retx || now >= e.deadline) {
      if (e.retries >= p_.rtx_max_retries) {
        ++lost_;
        it = entries_.erase(it);
        continue;
      }
      e.want_retx = true;
      try_reinject(it->first, e, now);
    }
    ++it;
  }
}

Cycle RetransmitTracker::oldest_pending_created(Cycle fallback) const {
  Cycle oldest = fallback;
  bool found = false;
  for (const auto& [key, e] : entries_) {
    (void)key;
    if (e.ack_at != 0) continue;  // Delivered; ACK merely in flight.
    if (!found || e.created < oldest) {
      oldest = e.created;
      found = true;
    }
  }
  return oldest;
}

void RetransmitTracker::reset_counters() {
  retransmitted_ = 0;
  retransmitted_flits_ = 0;
  recovered_ = 0;
  lost_ = 0;
  duplicates_ = 0;
}

}  // namespace arinoc
