// Packet metadata and the arena that owns packets for one network.
//
// Packets are created at injection and retired at ejection; the arena keeps
// retired slots on a free list so long runs do not grow memory. Flits refer
// to packets by id (arena index), never by pointer, so the arena may grow.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "noc/flit.hpp"

namespace arinoc {

/// The four coexisting GPGPU packet types (paper Fig. 5).
enum class PacketType : std::uint8_t {
  kReadRequest,   ///< Short: address only.
  kWriteRequest,  ///< Long: address + data.
  kReadReply,     ///< Long: data.
  kWriteReply,    ///< Short: ack.
};

inline bool is_long_packet(PacketType t) {
  return t == PacketType::kWriteRequest || t == PacketType::kReadReply;
}
inline bool is_reply(PacketType t) {
  return t == PacketType::kReadReply || t == PacketType::kWriteReply;
}
const char* packet_type_name(PacketType t);

struct Packet {
  PacketType type = PacketType::kReadRequest;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  std::uint16_t num_flits = 1;
  /// Multi-level injection priority (paper §5): set to levels-1 at packet
  /// generation, decremented by the route-computation unit at each hop.
  std::uint8_t priority = 0;
  /// Memory transaction this packet carries (request id in the owning
  /// GpgpuSim; opaque to the NoC).
  std::uint64_t txn = 0;

  Cycle created = 0;   ///< Enqueued at the source NI (latency starts here).
  Cycle injected = 0;  ///< First flit entered the router injection port.
  Cycle ejected = 0;   ///< Tail flit delivered at the destination NI.

  /// Retransmission-buffer key (RetransmitTracker); 0 = untracked. Keys are
  /// monotone and never recycled, so stale incarnations cannot collide.
  std::uint64_t rtx = 0;
};

class PacketArena {
 public:
  /// Creates a packet; returns its id. O(1) amortized.
  PacketId create(PacketType type, NodeId src, NodeId dest,
                  std::uint16_t num_flits, std::uint8_t priority,
                  std::uint64_t txn, Cycle now);

  /// Releases a packet slot for reuse. The id must be live.
  void retire(PacketId id);

  Packet& at(PacketId id) { return slots_[id]; }
  const Packet& at(PacketId id) const { return slots_[id]; }

  /// Number of currently live (created, not retired) packets. O(1): kept
  /// as a dedicated counter — this sits on the watchdog observation path.
  std::size_t live() const { return live_count_; }
  std::size_t capacity() const { return slots_.size(); }

  /// True if `id` refers to a live (created, not retired) packet. The
  /// liveness map is byte-per-slot (not vector<bool>): this read sits on
  /// the NI ejection / retransmission hot path where a bit-proxy load
  /// costs a shift+mask per call.
  bool is_live(PacketId id) const {
    return id < live_.size() && live_[id] != 0;
  }

  /// Creation cycle of the oldest live packet, or `fallback` when none are
  /// live (watchdog livelock probe; O(capacity) scan, called rarely).
  Cycle oldest_created(Cycle fallback) const;

  /// Builds the flit sequence of a packet (head .. tail).
  static Flit flit_of(PacketId id, std::uint16_t seq, std::uint16_t num_flits);

 private:
  std::vector<Packet> slots_;
  std::vector<PacketId> free_;
  std::vector<std::uint8_t> live_;
  std::size_t live_count_ = 0;
};

}  // namespace arinoc
