#include "noc/admission.hpp"

#include <algorithm>

namespace arinoc {

const char* degrade_state_name(DegradeState s) {
  switch (s) {
    case DegradeState::kNormal: return "normal";
    case DegradeState::kThrottled: return "throttled";
    case DegradeState::kShedding: return "shedding";
  }
  return "?";
}

// ------------------------------------------------------------ DegradationFsm

void DegradationFsm::update(Cycle now, double reply_occ, bool pre_trip) {
  ++cycles_in_[static_cast<std::size_t>(state_)];

  const bool dwelled = now - entered_at_ >= p_.dwell;
  if (!dwelled) return;

  switch (state_) {
    case DegradeState::kNormal:
      if (reply_occ >= p_.throttle_occ || pre_trip) {
        transition(DegradeState::kThrottled, now);
      }
      break;
    case DegradeState::kThrottled:
      if (reply_occ >= p_.shed_occ || pre_trip) {
        transition(DegradeState::kShedding, now);
      } else if (reply_occ <= p_.recover_occ) {
        transition(DegradeState::kNormal, now);
      }
      break;
    case DegradeState::kShedding:
      // Recovery is stepwise (SHEDDING -> THROTTLED -> NORMAL), each step
      // hysteretic: the occupancy must fall below the *recovery* threshold,
      // well under the threshold that caused the escalation, and the
      // pre-trip warning must have cleared.
      if (reply_occ <= p_.recover_occ && !pre_trip) {
        transition(DegradeState::kThrottled, now);
      }
      break;
  }
}

void DegradationFsm::transition(DegradeState next, Cycle now) {
  state_ = next;
  entered_at_ = now;
  ++transitions_;
}

// -------------------------------------------------------------- AdmissionGate

namespace {
constexpr double kQ32 = 4294967296.0;

std::uint64_t to_q32(double x) {
  return static_cast<std::uint64_t>(std::clamp(x, 0.0, 1.0) * kQ32);
}
}  // namespace

AdmissionGate::AdmissionGate(const AdmissionParams& p,
                             const DegradationFsm* fsm)
    : p_(p),
      fsm_(fsm),
      rate_q32_(to_q32(p.rate)),
      throttled_rate_q32_(to_q32(p.rate * p.throttle_factor)),
      tokens_q32_(static_cast<std::uint64_t>(p.burst) << 32),
      cap_q32_(static_cast<std::uint64_t>(std::max<std::uint32_t>(p.burst, 1))
               << 32) {}

void AdmissionGate::refill(Cycle now) {
  if (now <= last_refill_) return;
  const Cycle elapsed = now - last_refill_;
  last_refill_ = now;
  std::uint64_t step = rate_q32_;
  switch (fsm_->state()) {
    case DegradeState::kNormal: break;
    case DegradeState::kThrottled: step = throttled_rate_q32_; break;
    case DegradeState::kShedding: step = 0; break;
  }
  if (step == 0) return;
  // Chunked so rate * elapsed cannot overflow (rate <= 2^32, chunk <= 2^28).
  Cycle left = elapsed;
  while (left > 0) {
    const Cycle chunk = std::min<Cycle>(left, 1ull << 28);
    tokens_q32_ = std::min(cap_q32_, tokens_q32_ + step * chunk);
    left -= chunk;
    if (tokens_q32_ == cap_q32_) break;
  }
}

AdmissionDecision AdmissionGate::request(Cycle now) {
  const DegradeState state = fsm_->state();
  if (state == DegradeState::kShedding) {
    ++shed_;
    return AdmissionDecision::kShed;
  }
  refill(now);
  constexpr std::uint64_t kOne = 1ull << 32;
  if (tokens_q32_ >= kOne) {
    tokens_q32_ -= kOne;
    ++admitted_;
    return AdmissionDecision::kAdmit;
  }
  ++deferred_;
  return AdmissionDecision::kDefer;
}

void AdmissionGate::refund_admit() {
  constexpr std::uint64_t kOne = 1ull << 32;
  tokens_q32_ = std::min(cap_q32_, tokens_q32_ + kOne);
  if (admitted_ > 0) --admitted_;
}

}  // namespace arinoc
