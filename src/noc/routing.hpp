// Route computation: XY dimension-order and minimal adaptive routing.
//
// Adaptive routing is made deadlock-free with an escape virtual channel
// (Duato): VC 0 of every port is the escape lane and only ever follows the
// XY route; VCs 1..V-1 may take any minimal direction. Whole-packet
// forwarding (WPF, Ma et al. HPCA'12) is applied at VC allocation so the
// adaptive lanes can be reallocated non-atomically without deadlock.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "noc/topology.hpp"
#include "topo/fabric.hpp"

namespace arinoc {

struct RouteCandidates {
  /// Minimal productive output ports, or the local (ejection) port when the
  /// packet has arrived. On meshes this is the 1-2 productive directions;
  /// on table-routed fabrics it is every minimal up*/down*-legal port.
  std::vector<int> minimal;
  /// The escape port (always a member of `minimal`): the XY dimension-order
  /// direction on meshes, the lowest-numbered minimal legal port on
  /// table-routed fabrics.
  int xy = kLocal;
};

/// Computes the candidate output ports for a packet at `here` going to
/// `dest`. `algo` selects whether the full minimal set or only the XY
/// direction is productive for adaptive VCs.
RouteCandidates compute_route(const Mesh& mesh, NodeId here, NodeId dest,
                              RoutingAlgo algo);

/// Fabric-generic route computation. Dispatches to the mesh overload above
/// when the fabric has a native mesh view (bit-identical to the pre-fabric
/// path); otherwise consults the compiled up*/down* routing table.
/// `in_port` is the input port the packet occupies at `here` (injection
/// ports or -1 mean "freshly injected") — it determines the up*/down*
/// routing phase and is ignored on meshes.
RouteCandidates compute_route(const topo::Fabric& fabric, NodeId here,
                              int in_port, NodeId dest, RoutingAlgo algo);

}  // namespace arinoc
