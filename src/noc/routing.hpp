// Route computation: XY dimension-order and minimal adaptive routing.
//
// Adaptive routing is made deadlock-free with an escape virtual channel
// (Duato): VC 0 of every port is the escape lane and only ever follows the
// XY route; VCs 1..V-1 may take any minimal direction. Whole-packet
// forwarding (WPF, Ma et al. HPCA'12) is applied at VC allocation so the
// adaptive lanes can be reallocated non-atomically without deadlock.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "noc/topology.hpp"

namespace arinoc {

struct RouteCandidates {
  /// Minimal productive output directions (1 or 2 entries), or kLocal when
  /// the packet has arrived.
  std::vector<int> minimal;
  /// The XY dimension-order direction (always a member of `minimal`).
  int xy = kLocal;
};

/// Computes the candidate output ports for a packet at `here` going to
/// `dest`. `algo` selects whether the full minimal set or only the XY
/// direction is productive for adaptive VCs.
RouteCandidates compute_route(const Mesh& mesh, NodeId here, NodeId dest,
                              RoutingAlgo algo);

}  // namespace arinoc
