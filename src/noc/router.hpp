// Virtual-channel wormhole router with credit-based flow control and a
// separable input-first allocator (Table I), extended with the two ARI
// consumption-side mechanisms (paper §4.2, §5):
//
//  * per-injection-port crossbar speedup S: the injection port may win up to
//    S switch ports per cycle (Eq. (1)/(2) bound the useful S);
//  * multi-level packet prioritization: output-port switch arbitration
//    prefers higher packet priority; the route-computation unit decrements
//    the priority of every forwarded packet, and a starvation threshold
//    restores fairness.
//
// The router also supports multiple injection input ports (the MultiPort [3]
// comparator) and WPF-style non-atomic VC allocation (Table I note).
#pragma once

#include <cstdint>
#include <vector>

#include "common/active_set.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "noc/arbiter.hpp"
#include "noc/buffer.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace arinoc {

namespace obs {
class PacketTracer;
class LatencyAttributor;
}

struct RouterParams {
  NodeId node = 0;
  std::uint32_t num_vcs = 4;
  std::uint32_t vc_depth_flits = 5;
  std::uint32_t num_injection_ports = 1;
  std::uint32_t injection_speedup = 1;  ///< S, per injection port.
  RoutingAlgo routing = RoutingAlgo::kXY;
  std::uint32_t priority_levels = 1;
  Cycle starvation_threshold = 1000;
  bool non_atomic_vc = true;
  std::uint32_t ejection_capacity_flits = 20;
};

/// One flit leaving the router toward a neighbouring router this cycle.
struct OutboundFlit {
  int out_dir;  ///< Fabric output port (kNorth..kWest on meshes).
  int out_vc;
  Flit flit;
};

/// Credit returned to the upstream router for a direction input port.
struct OutboundCredit {
  int in_dir;  ///< Which of our direction inputs freed a slot.
  int vc;
};

class Router {
 public:
  /// `fabric` supplies the radix, adjacency, and route computation; the
  /// router has fabric->max_ports() direction ports (ports beyond them are
  /// injection inputs / the ejection output).
  Router(const RouterParams& params, const topo::Fabric* fabric,
         PacketArena* arena);

  // ---- Wiring (done once by Network) ----
  /// Marks a direction output as connected (edge ports stay disconnected).
  void connect_output(int dir, std::uint32_t downstream_depth_flits);
  void connect_input(int dir);

  // ---- Per-cycle interface (driven by Network) ----
  /// Delivers a flit arriving on a direction input port.
  void receive_flit(int dir, int vc, const Flit& flit);
  /// Returns a credit for one of our direction outputs.
  void receive_credit(int dir, int vc);

  /// Executes RC + VA + SA/ST for this cycle. Outbound flits/credits are
  /// appended to the vectors (cleared by the caller each cycle).
  void step(Cycle now, std::vector<OutboundFlit>* out_flits,
            std::vector<OutboundCredit>* out_credits);

  // ---- Injection-side interface (used by NIs; same-tile, no credit lag) ----
  std::uint32_t num_injection_ports() const { return params_.num_injection_ports; }
  std::uint32_t num_vcs() const { return params_.num_vcs; }
  /// Free flit slots in injection port `ip`, VC `vc`.
  std::uint32_t injection_free(std::uint32_t ip, std::uint32_t vc) const;
  /// True if VC `vc` of injection port `ip` can start a new packet of
  /// `flits` flits (respects the VC-allocation atomicity policy).
  bool injection_vc_ready(std::uint32_t ip, std::uint32_t vc,
                          std::uint32_t flits) const;
  void inject_flit(std::uint32_t ip, std::uint32_t vc, const Flit& flit,
                   Cycle now);

  // ---- Ejection-side interface ----
  bool has_ejected_flit() const { return !ejection_buf_.empty(); }
  Flit pop_ejected_flit();
  std::size_t ejection_backlog() const { return ejection_buf_.size(); }

  // ---- Introspection (invariant checking, heatmaps) ----
  /// Credit counter for direction output (dir, vc).
  std::uint32_t output_credits(int dir, int vc) const {
    return output_vcs_[static_cast<std::size_t>(dir) * params_.num_vcs +
                       static_cast<std::size_t>(vc)]
        .credits;
  }
  /// Flits buffered in direction input (dir, vc).
  std::size_t input_buffered(int dir, int vc) const {
    return ivc(dir, vc).buf.size();
  }
  bool output_is_connected(int dir) const {
    return output_connected_[static_cast<std::size_t>(dir)];
  }
  /// Fault-aware routing hook: while a direction output is blocked (the link
  /// is stalled or permanently failed), VC allocation refuses it and switch
  /// traversal holds its flits, so adaptive routing steers around the fault
  /// and nothing in flight is lost.
  void set_output_blocked(int dir, bool blocked) {
    output_blocked_[static_cast<std::size_t>(dir)] = blocked;
  }
  bool output_is_blocked(int dir) const {
    return output_blocked_[static_cast<std::size_t>(dir)];
  }
  std::uint32_t vc_depth_flits() const { return params_.vc_depth_flits; }
  /// Flits currently buffered across every input VC (direction + injection).
  /// O(1): the activity layer polls this after every step to decide whether
  /// the router may sleep.
  std::size_t buffered_flits_total() const { return buffered_total_; }

  // ---- Activity-driven stepping hooks ----
  /// Registers this router in `set` (as member `idx`) whenever a flit
  /// arrives or is injected — the only events that can give an empty router
  /// work. An empty router's step mutates nothing but its round-robin
  /// pointers, which step() replays exactly on wake, so a router sleeps iff
  /// buffered_flits_total() == 0.
  void set_activity_hook(ActiveSet* set, std::size_t idx) {
    act_set_ = set;
    act_idx_ = idx;
  }
  /// Wakes the ejection-side NI (member `idx` of `set`) whenever a flit is
  /// pushed into the ejection buffer.
  void set_eject_hook(ActiveSet* set, std::size_t idx) {
    eject_set_ = set;
    eject_idx_ = idx;
  }

  /// Attaches a packet-lifecycle tracer (null detaches). The tracer is a
  /// pure observer: hooks fire next to existing bookkeeping and never alter
  /// router state. `net` tags events with the owning network (0 = request).
  void set_tracer(obs::PacketTracer* t, std::uint8_t net) {
    tracer_ = t;
    tracer_net_ = net;
  }

  /// Attaches a latency attributor (null detaches). Same contract as the
  /// tracer: pure observer, one null-pointer branch per hook when detached.
  void set_attributor(obs::LatencyAttributor* a, std::uint8_t net) {
    attr_ = a;
    attr_net_ = net;
  }

  // ---- Stats ----
  std::uint64_t flits_sent(int out_dir) const { return out_flit_count_[static_cast<std::size_t>(out_dir)]; }
  std::uint64_t flits_injected() const { return injected_flit_count_; }
  std::uint64_t flits_ejected() const { return ejected_flit_count_; }
  std::uint64_t crossbar_traversals() const { return crossbar_count_; }
  void reset_stats();

  NodeId node() const { return params_.node; }

 private:
  struct InputVC {
    FlitBuffer buf;
    enum class State { kIdle, kWaitVC, kActive } state = State::kIdle;
    int out_port = -1;
    int out_vc = -1;
    RouteCandidates route;
    Cycle wait_since = 0;
    bool route_valid = false;
    /// Packet priority captured when this VC won its output VC. Active VCs
    /// arbitrate with this latch: hardware sees the priority the head flit
    /// carried through here, not later decrements by downstream routers —
    /// and the latch keeps switch arbitration free of cross-router arena
    /// reads under domain-parallel stepping.
    std::uint32_t latched_priority = 0;
  };
  struct OutputVC {
    PacketId owner = kInvalidPacket;
    std::uint32_t credits = 0;
  };
  struct Candidate {
    int in_port;
    int vc;
  };

  std::uint32_t num_inputs() const {
    return static_cast<std::uint32_t>(num_dirs_) +
           params_.num_injection_ports;
  }
  std::uint32_t num_outputs() const {
    return static_cast<std::uint32_t>(num_dirs_) + 1;  // +1: ejection.
  }
  bool is_injection_port(int in_port) const { return in_port >= num_dirs_; }
  InputVC& ivc(int port, int vc) {
    return input_vcs_[static_cast<std::size_t>(port) * params_.num_vcs +
                      static_cast<std::size_t>(vc)];
  }
  const InputVC& ivc(int port, int vc) const {
    return input_vcs_[static_cast<std::size_t>(port) * params_.num_vcs +
                      static_cast<std::size_t>(vc)];
  }
  OutputVC& ovc(int port, int vc) {
    return output_vcs_[static_cast<std::size_t>(port) * params_.num_vcs +
                       static_cast<std::size_t>(vc)];
  }

  void route_stage(Cycle now);
  void vc_alloc_stage(Cycle now);
  void vc_alloc_pass(Cycle now, std::uint32_t wanted_priority, bool filter);
  void switch_stage(Cycle now, std::vector<OutboundFlit>* out_flits,
                    std::vector<OutboundCredit>* out_credits);

  /// WPF space rule: can a new packet of `flits` flits be admitted to
  /// output VC (port, vc)?
  bool output_vc_admits(int out_port, int vc, std::uint32_t flits) const;
  /// Can one flit be sent to (out_port, out_vc) right now?
  bool output_ready_for_flit(int out_port, int out_vc) const;
  std::uint32_t output_free_space(int out_port, int out_vc) const;
  /// Effective arbitration priority of a packet in an input VC, including
  /// the starvation override (paper §5).
  std::uint32_t effective_priority(const InputVC& v, Cycle now) const;

  RouterParams params_;
  const topo::Fabric* fabric_;
  /// Direction-port count (= fabric radix). The ejection output is port
  /// num_dirs_, injection inputs start at num_dirs_ — the mesh's kLocal
  /// convention generalized. Declared before the containers sized off it.
  int num_dirs_;
  PacketArena* arena_;

  std::vector<InputVC> input_vcs_;    // [input_port][vc]
  std::vector<OutputVC> output_vcs_;  // [output_port][vc]; last = ejection
  std::vector<bool> output_connected_;  // direction outputs only
  std::vector<bool> output_blocked_;    // fault injector (stall/port-fail)
  std::vector<bool> input_connected_;
  FlitBuffer ejection_buf_;

  // Rotating pointers for fairness.
  std::vector<std::size_t> input_rr_;            // per input port, over VCs
  std::vector<PriorityArbiter> output_arb_;      // per output port
  std::size_t va_rr_ = 0;                        // over all input VCs

  obs::PacketTracer* tracer_ = nullptr;
  std::uint8_t tracer_net_ = 0;
  obs::LatencyAttributor* attr_ = nullptr;
  std::uint8_t attr_net_ = 0;

  // Activity-driven stepping (null hooks = always-on mode).
  ActiveSet* act_set_ = nullptr;
  std::size_t act_idx_ = 0;
  ActiveSet* eject_set_ = nullptr;
  std::size_t eject_idx_ = 0;
  /// Next cycle this router expects to step; the gap to `now` is the slept
  /// span whose idle round-robin rotations step() replays on wake.
  Cycle next_cycle_ = 0;
  std::size_t buffered_total_ = 0;

  // Stats.
  std::vector<std::uint64_t> out_flit_count_;  // [output_port]; last=eject
  std::uint64_t injected_flit_count_ = 0;
  std::uint64_t ejected_flit_count_ = 0;
  std::uint64_t crossbar_count_ = 0;
};

}  // namespace arinoc
