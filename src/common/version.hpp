// Library version, baked into on-disk artifacts (the exec result cache key)
// so stale results are never replayed across simulator revisions. Bump on
// any change that can alter simulation results or the Metrics layout.
#pragma once

namespace arinoc {

inline constexpr const char kArinocVersion[] = "0.7.0-regress";

}  // namespace arinoc
