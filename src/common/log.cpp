#include "common/log.hpp"

#include <atomic>

namespace arinoc {

namespace {
// Atomic: exec pool workers read the level concurrently with the driver.
std::atomic<LogLevel> g_level{LogLevel::kOff};
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const char* tag = level == LogLevel::kInfo    ? "info"
                    : level == LogLevel::kDebug ? "debug"
                                                : "trace";
  std::fprintf(stderr, "[arinoc:%s] %s\n", tag, msg.c_str());
}
}  // namespace detail

}  // namespace arinoc
