#include "common/log.hpp"

namespace arinoc {

namespace {
LogLevel g_level = LogLevel::kOff;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const char* tag = level == LogLevel::kInfo    ? "info"
                    : level == LogLevel::kDebug ? "debug"
                                                : "trace";
  std::fprintf(stderr, "[arinoc:%s] %s\n", tag, msg.c_str());
}
}  // namespace detail

}  // namespace arinoc
