// Deterministic, seedable RNG (xoshiro256**). The simulator never uses
// std::rand or random_device: every stochastic component owns an Xoshiro
// seeded from the run seed so results are bit-reproducible.
#pragma once

#include <cstdint>

namespace arinoc {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into 4 lanes.
    std::uint64_t z = seed;
    for (auto& lane : s_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      lane = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace arinoc
