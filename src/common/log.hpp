// Minimal leveled logging. Off by default so hot simulation loops pay only a
// branch; enabled by tests/examples that want traces.
#pragma once

#include <cstdio>
#include <string>

namespace arinoc {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Process-wide log level (atomic: exec pool workers read it concurrently).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log_info(const char* fmt, Args... args) {
  if (log_level() >= LogLevel::kInfo) {
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    detail::log_line(LogLevel::kInfo, buf);
  }
}

template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  if (log_level() >= LogLevel::kDebug) {
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    detail::log_line(LogLevel::kDebug, buf);
  }
}

}  // namespace arinoc
