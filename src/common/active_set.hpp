// Dense epoch-stamped active set for activity-driven stepping.
//
// Each sleepable subsystem (routers of one network, cores, MCs, NIs) gets
// one ActiveSet sized to its member count. A member that may do work next
// cycle is woken (O(1), duplicate-safe); each simulated cycle the owner
// drains the set once and steps only the woken members, in ascending index
// order so iteration order — and therefore free-list recycling, trace event
// order and every other order-sensitive side effect — is identical to the
// always-on full loop.
//
// Wakes issued while a drain is in progress land in the *next* drain: the
// drain snapshots the member list and bumps the epoch first, so a component
// that re-wakes itself (still busy) or wakes a peer is scheduled for the
// following cycle, never re-entered within the current one.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace arinoc {

class ActiveSet {
 public:
  /// Sizes the set for indices [0, n). Drops all members and stamps.
  void resize(std::size_t n) {
    stamp_.assign(n, 0);
    members_.clear();
    epoch_ = 1;
  }

  std::size_t size() const { return stamp_.size(); }
  std::size_t pending() const { return members_.size(); }

  /// Marks member `i` active for the next drain. O(1); duplicate wakes of
  /// the same member within one epoch are absorbed by the stamp.
  void wake(std::size_t i) {
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      members_.push_back(i);
    }
  }

  void wake_all() {
    for (std::size_t i = 0; i < stamp_.size(); ++i) wake(i);
  }

  bool contains(std::size_t i) const { return stamp_[i] == epoch_; }

  /// Drops every pending member without invoking anything.
  void clear() {
    members_.clear();
    ++epoch_;
  }

  /// Invokes `fn(i)` once per pending member, in ascending index order.
  /// wake() calls made during the drain (self re-wakes, peer wakes) are
  /// deferred to the next drain. The epoch is 64-bit: it cannot wrap within
  /// any realistic run, so stale stamps never alias a live epoch.
  template <typename Fn>
  void drain_sorted(Fn&& fn) {
    scratch_.clear();
    scratch_.swap(members_);
    ++epoch_;
    std::sort(scratch_.begin(), scratch_.end());
    for (const std::size_t i : scratch_) fn(i);
  }

 private:
  std::uint64_t epoch_ = 1;
  std::vector<std::uint64_t> stamp_;  ///< stamp_[i] == epoch_ => pending.
  std::vector<std::size_t> members_;
  std::vector<std::size_t> scratch_;  ///< Drain snapshot (reused capacity).
};

}  // namespace arinoc
