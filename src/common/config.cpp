#include "common/config.hpp"

#include <cstdio>
#include <sstream>

namespace arinoc {

bool Config::fault_enabled() const {
  return ((fault_enable_mask & 0x1) != 0 && fault_corrupt_rate > 0.0) ||
         ((fault_enable_mask & 0x2) != 0 && fault_link_stall_rate > 0.0) ||
         ((fault_enable_mask & 0x4) != 0 && fault_port_fail_rate > 0.0) ||
         ((fault_enable_mask & 0x8) != 0 && fault_credit_loss_rate > 0.0);
}

std::string Config::validate() const {
  std::ostringstream err;
  if (mesh_width == 0 || mesh_height == 0) {
    err << "mesh dimensions must be positive (got " << mesh_width << "x"
        << mesh_height << "); ";
  } else if (fabric != "file") {
    // Endpoint budget per generated fabric: MCs live on the WxH grid (mesh,
    // torus, cmesh hubs) or the flattened chiplet grid. File fabrics carry
    // their own MC set; make_fabric cross-checks it against num_mcs.
    std::uint32_t grid = num_nodes();
    if (fabric == "chiplet") grid = num_nodes() * chiplets_x * chiplets_y;
    if (num_mcs == 0 || num_mcs >= grid)
      err << "num_mcs must be in (0, nodes): got " << num_mcs << " MCs for "
          << grid << " " << fabric << " nodes; ";
  }
  if (fabric != "mesh" && fabric != "torus" && fabric != "cmesh" &&
      fabric != "chiplet" && fabric != "file")
    err << "unknown fabric '" << fabric
        << "' (expected mesh, torus, cmesh, chiplet, or file); ";
  if (fabric == "file" && topology_file.empty())
    err << "fabric 'file' requires a topology_file path; ";
  if (topology_file.find('\n') != std::string::npos)
    err << "topology_file must not contain newlines; ";
  if (fabric == "cmesh" && cmesh_concentration == 0)
    err << "cmesh_concentration must be >= 1 (got 0); ";
  if (fabric == "chiplet" && chiplets_x * chiplets_y < 2)
    err << "chiplet fabric needs at least 2 chiplets (got " << chiplets_x
        << "x" << chiplets_y << "); ";
  if (num_vcs == 0) err << "num_vcs must be > 0 (got 0 virtual channels); ";
  if (vc_depth_pkts == 0) err << "vc_depth_pkts must be > 0 (got 0); ";
  if (injection_speedup == 0)
    err << "injection_speedup S must be >= 1 (got 0); ";
  if (num_vcs > 0 && injection_speedup > num_vcs)
    err << "injection_speedup S=" << injection_speedup
        << " exceeds num_vcs=" << num_vcs
        << " (Eq.2: at most one switch port per VC is useful); ";
  if (split_queues == 0) err << "split_queues must be > 0 (got 0); ";
  if (num_vcs > 0 && split_queues > num_vcs)
    err << "split_queues=" << split_queues << " exceeds num_vcs=" << num_vcs
        << " (each split queue hard-wires to one VC); ";
  if (priority_levels == 0) err << "priority_levels must be > 0 (got 0); ";
  if (link_width_bits_request == 0 || link_width_bits_reply == 0)
    err << "link widths must be positive (got request="
        << link_width_bits_request << ", reply=" << link_width_bits_reply
        << " bits); ";
  else if (ni_queue_flits < reply_long_flits())
    err << "ni_queue_flits=" << ni_queue_flits
        << " cannot hold one long reply packet (" << reply_long_flits()
        << " flits); ";
  if (line_bytes * 8 != data_payload_bits)
    err << "line_bytes=" << line_bytes << " must equal data_payload_bits/8="
        << data_payload_bits / 8 << "; ";
  if (multiport_ports == 0) err << "multiport_ports must be > 0 (got 0); ";
  if (router_pipeline_stages == 0 || router_pipeline_stages > 4)
    err << "router_pipeline_stages must be in [1, 4] (got "
        << router_pipeline_stages << "); ";
  if (warps_per_core == 0) err << "warps_per_core must be > 0 (got 0); ";
  if (dram_banks == 0) err << "dram_banks must be > 0 (got 0); ";
  if (link_latency == 0) err << "link_latency must be >= 1 cycle (got 0); ";

  auto check_rate = [&err](const char* name, double v) {
    if (v < 0.0 || v > 1.0)
      err << name << " must be a probability in [0, 1] (got " << v << "); ";
  };
  check_rate("fault_corrupt_rate", fault_corrupt_rate);
  check_rate("fault_link_stall_rate", fault_link_stall_rate);
  check_rate("fault_port_fail_rate", fault_port_fail_rate);
  check_rate("fault_credit_loss_rate", fault_credit_loss_rate);
  if (fault_link_stall_len == 0)
    err << "fault_link_stall_len must be >= 1 cycle (got 0); ";
  if (rtx_timeout == 0) err << "rtx_timeout must be >= 1 cycle (got 0); ";
  if (rtx_max_retries == 0)
    err << "rtx_max_retries must be >= 1 (got 0; use fault_recovery=false "
           "to disable recovery); ";
  if (watchdog_enabled && watchdog_deadlock_window == 0)
    err << "watchdog_deadlock_window must be >= 1 cycle (got 0); ";
  if (watchdog_enabled && watchdog_livelock_age == 0)
    err << "watchdog_livelock_age must be >= 1 cycle (got 0); ";
  if (pace_spec.find('\n') != std::string::npos)
    err << "pace_spec must not contain newlines; ";
  if (open_loop && pace_spec.empty())
    err << "open_loop requires a pace_spec; ";
  if (pace_scale < 0.0)
    err << "pace_scale must be >= 0 (got " << pace_scale << "); ";
  if (open_loop && ol_queue_cap == 0)
    err << "ol_queue_cap must be >= 1 (got 0); ";
  if (ol_write_frac < 0.0 || ol_write_frac > 1.0)
    err << "ol_write_frac must be in [0, 1] (got " << ol_write_frac << "); ";
  if (admission_enabled) {
    if (adm_rate <= 0.0 || adm_rate > 1.0)
      err << "adm_rate must be in (0, 1] tokens/cycle (got " << adm_rate
          << "); ";
    if (adm_burst == 0) err << "adm_burst must be >= 1 token (got 0); ";
    if (adm_throttle_factor <= 0.0 || adm_throttle_factor > 1.0)
      err << "adm_throttle_factor must be in (0, 1] (got "
          << adm_throttle_factor << "); ";
    auto check_occ = [&err](const char* name, double v) {
      if (v <= 0.0 || v > 1.0)
        err << name << " must be an occupancy fraction in (0, 1] (got " << v
            << "); ";
    };
    check_occ("adm_throttle_occ", adm_throttle_occ);
    check_occ("adm_shed_occ", adm_shed_occ);
    check_occ("adm_recover_occ", adm_recover_occ);
    if (!(adm_recover_occ < adm_throttle_occ &&
          adm_throttle_occ < adm_shed_occ))
      err << "admission thresholds must satisfy recover < throttle < shed "
             "(hysteresis): got recover="
          << adm_recover_occ << " throttle=" << adm_throttle_occ
          << " shed=" << adm_shed_occ << "; ";
    if (adm_dwell == 0) err << "adm_dwell must be >= 1 cycle (got 0); ";
    if (adm_backoff == 0) err << "adm_backoff must be >= 1 cycle (got 0); ";
  }
  return err.str();
}

std::string Config::canonical_string() const {
  std::ostringstream os;
  auto u = [&os](const char* name, std::uint64_t v) {
    os << name << '=' << v << '\n';
  };
  auto d = [&os](const char* name, double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);  // Hexfloat: exact round trip.
    os << name << '=' << buf << '\n';
  };
  u("mesh_width", mesh_width);
  u("mesh_height", mesh_height);
  u("num_mcs", num_mcs);
  u("mc_placement", static_cast<std::uint64_t>(mc_placement));
  // validate() limits `fabric` to a fixed word set and rejects newlines in
  // topology_file, so both stay one-line fields. The *path* is canonical
  // here; the exec result-cache key additionally mixes in an FNV hash of
  // the file contents so editing a topology file invalidates cached cells.
  os << "fabric=" << fabric << '\n';
  os << "topology_file=" << topology_file << '\n';
  u("cmesh_concentration", cmesh_concentration);
  u("chiplets_x", chiplets_x);
  u("chiplets_y", chiplets_y);
  u("serdes_latency", serdes_latency);
  u("link_width_bits_request", link_width_bits_request);
  u("link_width_bits_reply", link_width_bits_reply);
  u("data_payload_bits", data_payload_bits);
  u("link_latency", link_latency);
  u("router_pipeline_stages", router_pipeline_stages);
  u("num_vcs", num_vcs);
  u("vc_depth_pkts", vc_depth_pkts);
  u("routing", static_cast<std::uint64_t>(routing));
  u("non_atomic_vc", non_atomic_vc);
  u("ni_queue_flits", ni_queue_flits);
  u("reply_ni", static_cast<std::uint64_t>(reply_ni));
  u("mc_ni_link", static_cast<std::uint64_t>(mc_ni_link));
  u("split_queues", split_queues);
  u("multiport_ports", multiport_ports);
  u("injection_speedup", injection_speedup);
  u("priority_levels", priority_levels);
  u("starvation_threshold", starvation_threshold);
  u("request_side_ari", request_side_ari);
  u("warps_per_core", warps_per_core);
  u("warp_size", warp_size);
  u("simd_width", simd_width);
  u("max_pending_loads", max_pending_loads);
  u("l1_bypass", l1_bypass);
  u("cross_warp_merge", cross_warp_merge);
  u("barrier_interval", barrier_interval);
  u("warps_per_cta", warps_per_cta);
  u("l1_size_bytes", l1_size_bytes);
  u("l1_assoc", l1_assoc);
  u("l2_size_bytes", l2_size_bytes);
  u("l2_assoc", l2_assoc);
  u("line_bytes", line_bytes);
  u("mshr_entries", mshr_entries);
  u("mshr_merges", mshr_merges);
  u("l2_latency", l2_latency);
  u("dram_banks", dram_banks);
  u("dram_queue_depth", dram_queue_depth);
  u("t_rp", t_rp);
  u("t_rc", t_rc);
  u("t_rrd", t_rrd);
  u("t_ras", t_ras);
  u("t_rcd", t_rcd);
  u("t_cl", t_cl);
  u("burst_cycles", burst_cycles);
  u("dram_starvation_cap", dram_starvation_cap);
  d("mem_clock_ratio", mem_clock_ratio);
  u("mc_request_queue", mc_request_queue);
  u("mc_eject_flits_per_cycle", mc_eject_flits_per_cycle);
  u("mc_reply_stage", mc_reply_stage);
  u("warmup_cycles", warmup_cycles);
  u("run_cycles", run_cycles);
  u("seed", seed);
  // activity_driven, threads, and domain_epoch are deliberately absent:
  // they are host-side execution strategies with bit-identical results, so
  // caches and golden baselines stay valid across all of them.
  d("fault_corrupt_rate", fault_corrupt_rate);
  d("fault_link_stall_rate", fault_link_stall_rate);
  u("fault_link_stall_len", fault_link_stall_len);
  d("fault_port_fail_rate", fault_port_fail_rate);
  d("fault_credit_loss_rate", fault_credit_loss_rate);
  u("fault_seed", fault_seed);
  u("fault_enable_mask", fault_enable_mask);
  u("fault_recovery", fault_recovery);
  u("rtx_timeout", rtx_timeout);
  u("rtx_max_retries", rtx_max_retries);
  u("watchdog_enabled", watchdog_enabled);
  u("watchdog_deadlock_window", watchdog_deadlock_window);
  u("watchdog_livelock_age", watchdog_livelock_age);
  u("watchdog_audit_interval", watchdog_audit_interval);
  u("open_loop", open_loop);
  // validate() rejects newlines in pace_spec, so one line stays one field.
  // Note: for file-driven specs the *path* is canonical, not the file
  // contents — file-paced runs should not rely on the result cache.
  os << "pace_spec=" << pace_spec << '\n';
  d("pace_scale", pace_scale);
  u("ol_queue_cap", ol_queue_cap);
  d("ol_write_frac", ol_write_frac);
  u("admission_enabled", admission_enabled);
  d("adm_rate", adm_rate);
  u("adm_burst", adm_burst);
  d("adm_throttle_factor", adm_throttle_factor);
  d("adm_throttle_occ", adm_throttle_occ);
  d("adm_shed_occ", adm_shed_occ);
  d("adm_recover_occ", adm_recover_occ);
  u("adm_dwell", adm_dwell);
  u("adm_retry_max", adm_retry_max);
  u("adm_backoff", adm_backoff);
  return os.str();
}

std::string Config::table1() const {
  std::ostringstream os;
  os << "Table I. Key Parameters for Evaluation\n"
     << "  Compute Nodes          : " << num_ccs() << "\n"
     << "  Memory Controllers     : " << num_mcs << ", FR-FCFS\n"
     << "  Warp Size              : " << warp_size << "\n"
     << "  SIMD Pipeline Width    : " << simd_width << "\n"
     << "  Warps / Core           : " << warps_per_core << "\n"
     << "  L1 Cache Size / Core   : " << l1_size_bytes / 1024 << "KB\n"
     << "  L2 Cache Size / MC     : " << l2_size_bytes / 1024 << "KB\n"
     << "  Warp Scheduling        : Greedy-then-oldest\n"
     << "  MC placement           : Diamond\n"
     << "  GDDR5 Timing           : tRP=" << t_rp << " tRC=" << t_rc
     << " tRRD=" << t_rrd << " tRAS=" << t_ras << " tRCD=" << t_rcd
     << " tCL=" << t_cl << "\n"
     << "  Memory Clock           : " << mem_clock_ratio << " GHz (GTX980)\n"
     << "  Topology               : " << [this] {
          std::ostringstream t;
          const std::string dims =
              std::to_string(mesh_width) + "x" + std::to_string(mesh_height);
          if (fabric == "torus") t << "2D Torus " << dims;
          else if (fabric == "cmesh")
            t << "CMesh " << dims << " (x" << cmesh_concentration << ")";
          else if (fabric == "chiplet")
            t << "Chiplet " << chiplets_x << "x" << chiplets_y << " of "
              << dims << " (serdes +" << serdes_latency << "cy)";
          else if (fabric == "file") t << "File " << topology_file;
          else t << "2D Mesh " << dims;
          return t.str();
        }() << "\n"
     << "  Routing                : "
     << (routing == RoutingAlgo::kXY ? "XY" : "Min. adaptive") << "\n"
     << "  Interconnect/L2 Clock  : 1 GHz\n"
     << "  Virtual channels       : " << num_vcs << " per port, "
     << vc_depth_pkts << " pkt per VC\n"
     << "  Allocator              : Separable Input First\n"
     << "  Link bandwidth         : " << link_width_bits_reply
     << " bit/cycle\n"
     << "  NI injection queue     : " << ni_queue_flits << " flits\n";
  return os.str();
}

Config apply_scheme(Config base, Scheme scheme) {
  // All evaluated schemes build on the enhanced baseline (paper §4.1 uses it
  // "to avoid giving unfair advantage to our proposed design").
  base.mc_ni_link = McNiLink::kWide;
  base.reply_ni = NiArch::kEnhanced;
  base.injection_speedup = 1;
  base.priority_levels = 1;
  switch (scheme) {
    case Scheme::kRawBaseline:
      base.mc_ni_link = McNiLink::kNarrow;
      base.reply_ni = NiArch::kBaseline;
      base.routing = RoutingAlgo::kXY;
      break;
    case Scheme::kXYBaseline:
      base.routing = RoutingAlgo::kXY;
      break;
    case Scheme::kXYARI:
      base.routing = RoutingAlgo::kXY;
      base.reply_ni = NiArch::kSplitQueue;
      base.injection_speedup = std::min(4u, base.num_vcs);
      base.split_queues = std::min(4u, base.num_vcs);
      base.priority_levels = 2;
      break;
    case Scheme::kAdaBaseline:
      base.routing = RoutingAlgo::kMinAdaptive;
      break;
    case Scheme::kAdaMultiPort:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.reply_ni = NiArch::kMultiPort;
      break;
    case Scheme::kAdaARI:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.reply_ni = NiArch::kSplitQueue;
      base.injection_speedup = std::min(4u, base.num_vcs);
      base.split_queues = std::min(4u, base.num_vcs);
      base.priority_levels = 2;
      break;
    case Scheme::kAccSupply:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.reply_ni = NiArch::kSplitQueue;
      base.split_queues = std::min(4u, base.num_vcs);
      break;
    case Scheme::kAccConsume:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.injection_speedup = std::min(4u, base.num_vcs);
      break;
    case Scheme::kAccBothNoPrio:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.reply_ni = NiArch::kSplitQueue;
      base.split_queues = std::min(4u, base.num_vcs);
      base.injection_speedup = std::min(4u, base.num_vcs);
      break;
  }
  return base;
}

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kXYBaseline: return "XY-Baseline";
    case Scheme::kXYARI: return "XY-ARI";
    case Scheme::kAdaBaseline: return "Ada-Baseline";
    case Scheme::kAdaMultiPort: return "Ada-MultiPort";
    case Scheme::kAdaARI: return "Ada-ARI";
    case Scheme::kAccSupply: return "Acc-Supply";
    case Scheme::kAccConsume: return "Acc-Consume";
    case Scheme::kAccBothNoPrio: return "Acc-Both-NoPriority";
    case Scheme::kRawBaseline: return "Raw-Baseline";
  }
  return "?";
}

}  // namespace arinoc
