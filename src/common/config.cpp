#include "common/config.hpp"

#include <sstream>

namespace arinoc {

std::string Config::validate() const {
  std::ostringstream err;
  if (mesh_width == 0 || mesh_height == 0) err << "mesh dims must be > 0; ";
  if (num_mcs == 0 || num_mcs >= num_nodes())
    err << "num_mcs must be in (0, nodes); ";
  if (num_vcs == 0) err << "num_vcs must be > 0; ";
  if (injection_speedup == 0) err << "injection_speedup must be > 0; ";
  if (injection_speedup > num_vcs)
    err << "injection_speedup must be <= num_vcs (Eq.2); ";
  if (split_queues == 0) err << "split_queues must be > 0; ";
  if (split_queues > num_vcs) err << "split_queues must be <= num_vcs; ";
  if (priority_levels == 0) err << "priority_levels must be > 0; ";
  if (ni_queue_flits < reply_long_flits())
    err << "NI queue must hold at least one long packet; ";
  if (line_bytes * 8 != data_payload_bits)
    err << "line_bytes must equal data_payload_bits/8; ";
  if (multiport_ports == 0) err << "multiport_ports must be > 0; ";
  if (router_pipeline_stages == 0 || router_pipeline_stages > 4)
    err << "router_pipeline_stages must be in [1, 4]; ";
  if (warps_per_core == 0) err << "warps_per_core must be > 0; ";
  if (dram_banks == 0) err << "dram_banks must be > 0; ";
  return err.str();
}

std::string Config::table1() const {
  std::ostringstream os;
  os << "Table I. Key Parameters for Evaluation\n"
     << "  Compute Nodes          : " << num_ccs() << "\n"
     << "  Memory Controllers     : " << num_mcs << ", FR-FCFS\n"
     << "  Warp Size              : " << warp_size << "\n"
     << "  SIMD Pipeline Width    : " << simd_width << "\n"
     << "  Warps / Core           : " << warps_per_core << "\n"
     << "  L1 Cache Size / Core   : " << l1_size_bytes / 1024 << "KB\n"
     << "  L2 Cache Size / MC     : " << l2_size_bytes / 1024 << "KB\n"
     << "  Warp Scheduling        : Greedy-then-oldest\n"
     << "  MC placement           : Diamond\n"
     << "  GDDR5 Timing           : tRP=" << t_rp << " tRC=" << t_rc
     << " tRRD=" << t_rrd << " tRAS=" << t_ras << " tRCD=" << t_rcd
     << " tCL=" << t_cl << "\n"
     << "  Memory Clock           : " << mem_clock_ratio << " GHz (GTX980)\n"
     << "  Topology               : 2D Mesh " << mesh_width << "x"
     << mesh_height << "\n"
     << "  Routing                : "
     << (routing == RoutingAlgo::kXY ? "XY" : "Min. adaptive") << "\n"
     << "  Interconnect/L2 Clock  : 1 GHz\n"
     << "  Virtual channels       : " << num_vcs << " per port, "
     << vc_depth_pkts << " pkt per VC\n"
     << "  Allocator              : Separable Input First\n"
     << "  Link bandwidth         : " << link_width_bits_reply
     << " bit/cycle\n"
     << "  NI injection queue     : " << ni_queue_flits << " flits\n";
  return os.str();
}

Config apply_scheme(Config base, Scheme scheme) {
  // All evaluated schemes build on the enhanced baseline (paper §4.1 uses it
  // "to avoid giving unfair advantage to our proposed design").
  base.mc_ni_link = McNiLink::kWide;
  base.reply_ni = NiArch::kEnhanced;
  base.injection_speedup = 1;
  base.priority_levels = 1;
  switch (scheme) {
    case Scheme::kRawBaseline:
      base.mc_ni_link = McNiLink::kNarrow;
      base.reply_ni = NiArch::kBaseline;
      base.routing = RoutingAlgo::kXY;
      break;
    case Scheme::kXYBaseline:
      base.routing = RoutingAlgo::kXY;
      break;
    case Scheme::kXYARI:
      base.routing = RoutingAlgo::kXY;
      base.reply_ni = NiArch::kSplitQueue;
      base.injection_speedup = std::min(4u, base.num_vcs);
      base.split_queues = std::min(4u, base.num_vcs);
      base.priority_levels = 2;
      break;
    case Scheme::kAdaBaseline:
      base.routing = RoutingAlgo::kMinAdaptive;
      break;
    case Scheme::kAdaMultiPort:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.reply_ni = NiArch::kMultiPort;
      break;
    case Scheme::kAdaARI:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.reply_ni = NiArch::kSplitQueue;
      base.injection_speedup = std::min(4u, base.num_vcs);
      base.split_queues = std::min(4u, base.num_vcs);
      base.priority_levels = 2;
      break;
    case Scheme::kAccSupply:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.reply_ni = NiArch::kSplitQueue;
      base.split_queues = std::min(4u, base.num_vcs);
      break;
    case Scheme::kAccConsume:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.injection_speedup = std::min(4u, base.num_vcs);
      break;
    case Scheme::kAccBothNoPrio:
      base.routing = RoutingAlgo::kMinAdaptive;
      base.reply_ni = NiArch::kSplitQueue;
      base.split_queues = std::min(4u, base.num_vcs);
      base.injection_speedup = std::min(4u, base.num_vcs);
      break;
  }
  return base;
}

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kXYBaseline: return "XY-Baseline";
    case Scheme::kXYARI: return "XY-ARI";
    case Scheme::kAdaBaseline: return "Ada-Baseline";
    case Scheme::kAdaMultiPort: return "Ada-MultiPort";
    case Scheme::kAdaARI: return "Ada-ARI";
    case Scheme::kAccSupply: return "Acc-Supply";
    case Scheme::kAccConsume: return "Acc-Consume";
    case Scheme::kAccBothNoPrio: return "Acc-Both-NoPriority";
    case Scheme::kRawBaseline: return "Raw-Baseline";
  }
  return "?";
}

}  // namespace arinoc
