// Lightweight statistics helpers used by instrumentation and the benches.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace arinoc {

/// Online accumulator for a scalar sample stream (mean/min/max/count).
class Accumulator {
 public:
  void add(double x) {
    if (count_ == 0 || x < min_) min_ = x;
    if (count_ == 0 || x > max_) max_ = x;
    sum_ += x;
    ++count_;
  }
  /// Batch form of `n` consecutive add(0.0) calls, bit-identical to the
  /// loop: sum_ += 0.0 never changes a non-negative sum, so only min/max
  /// and the count move. Used by activity-driven catch-up for components
  /// whose skipped cycles would all have sampled an empty queue.
  void add_zeros(std::uint64_t n) {
    if (n == 0) return;
    if (count_ == 0 || 0.0 < min_) min_ = 0.0;
    if (count_ == 0 || 0.0 > max_) max_ = 0.0;
    count_ += n;
  }
  void reset() { *this = Accumulator{}; }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket log-scale histogram for latency-style distributions.
///
/// Buckets are geometric: kSubBuckets buckets per octave (factor-of-two
/// range) over [1, 2^kOctaves), plus an underflow bucket for samples < 1 and
/// an overflow bucket above the covered range. The layout is fixed at
/// compile time, so adding a sample is O(1) with no allocation and two
/// histograms are always mergeable. Percentiles interpolate linearly inside
/// the selected bucket and are clamped to the observed [min, max], so the
/// relative error is bounded by the bucket width (2^(1/kSubBuckets) - 1,
/// ~19% with 4 sub-buckets) and degenerate single-value streams report the
/// exact value.
class LogHistogram {
 public:
  static constexpr std::uint32_t kSubBuckets = 4;  ///< Buckets per octave.
  static constexpr std::uint32_t kOctaves = 32;    ///< Covers [1, 2^32).
  static constexpr std::uint32_t kNumBuckets = 2 + kOctaves * kSubBuckets;

  void add(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Value at percentile `p` (0..100); 0 for an empty histogram.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

  void merge(const LogHistogram& other);
  void reset() { *this = LogHistogram{}; }

  const std::array<std::uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }
  /// Inclusive lower bound of bucket `i` (0 for the underflow bucket).
  static double bucket_lower(std::size_t i);
  /// Exclusive upper bound of bucket `i`.
  static double bucket_upper(std::size_t i);

 private:
  static std::size_t bucket_of(double x);

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values (paper reports geomeans).
double geomean(std::span<const double> xs);

/// Geometric mean with a zero/negative guard: samples <= 0 (a benchmark
/// that made no progress, a baseline of 0 turning a ratio degenerate) are
/// clamped to `floor` instead of poisoning the log. This is the one shared
/// aggregation helper for normalized bench tables — benches must not
/// re-derive their own clamping.
double geomean_guarded(std::span<const double> xs, double floor = 1e-6);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Fixed-ratio clock-domain ticker: converts NoC cycles into a faster
/// domain (e.g. 1.75 GHz GDDR5 against the 1 GHz interconnect clock).
/// Integer fixed-point so the schedule is exactly reproducible.
class ClockRatio {
 public:
  /// ratio = fast-domain frequency / slow-domain frequency, e.g. 1.75.
  explicit ClockRatio(double ratio);

  /// Number of fast-domain ticks to execute for this slow-domain cycle.
  std::uint32_t ticks_this_cycle();

  /// Total ticks for `cycles` consecutive slow-domain cycles, leaving the
  /// accumulator in exactly the state `cycles` sequential
  /// ticks_this_cycle() calls would. Exact by the Q32 invariant
  /// a0 + k*step = ticks*2^32 + a_k, chunked to stay clear of uint64
  /// overflow for any ratio below 2^34/2^32 = 4 per chunk of 2^28 cycles.
  std::uint64_t ticks_for(std::uint64_t cycles);

  void reset() { accum_ = 0; }

 private:
  std::uint64_t step_q32_;  ///< ratio in Q32 fixed point.
  std::uint64_t accum_ = 0;
};

}  // namespace arinoc
