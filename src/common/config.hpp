// Central configuration: every Table-I parameter of the paper plus the ARI
// scheme knobs. A Config fully determines one simulation run (together with
// the workload and the seed).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace arinoc {

/// Routing algorithm used by a network (paper §6.2: XY and minimal adaptive).
enum class RoutingAlgo { kXY, kMinAdaptive };

/// Network-interface architecture at MC nodes on the reply network.
enum class NiArch {
  kBaseline,    ///< Narrow MC->NI link, single queue (GPGPU-Sim default).
  kEnhanced,    ///< Wide MC->NI/NI->queue links, single queue (paper §4.1
                ///< "enhanced baseline"; narrow NI->router link AB).
  kSplitQueue,  ///< ARI supply: split queues + per-queue narrow links to VCs.
  kMultiPort,   ///< [3]-style: multiple router injection ports, single queue.
};

/// How reply data moves from MC core logic toward the NI.
enum class McNiLink { kNarrow, kWide };

/// Memory-controller placement policies. kDiamond (default, Table I) is the
/// Abts et al. staggered-interior placement; kTopBottom models the
/// traditional GPU layout with MCs on the top/bottom edge rows; kColumn
/// stacks them in the two center columns (a deliberately poor layout used
/// as an ablation reference).
enum class McPlacement { kDiamond, kTopBottom, kColumn };

const char* placement_name(McPlacement p);

/// Full parameter set for one simulated GPGPU + NoC instance.
struct Config {
  // ---- Topology (Table I) ----
  std::uint32_t mesh_width = 6;   ///< 6x6 mesh default (4x4/8x8 in scaling).
  std::uint32_t mesh_height = 6;
  std::uint32_t num_mcs = 8;
  McPlacement mc_placement = McPlacement::kDiamond;  ///< Table I: diamond.
  /// Interconnect fabric (docs/fabrics.md): "mesh" (default, the native 2D
  /// mesh), "torus" / "cmesh" / "chiplet" (built-in generators over the
  /// mesh_* dimensions above), or "file" (load topology_file). Non-mesh
  /// fabrics route via compiled up*/down* tables.
  std::string fabric = "mesh";
  std::string topology_file;  ///< Topology path; consulted iff fabric=="file".
  std::uint32_t cmesh_concentration = 4;  ///< Endpoints per cmesh hub router.
  std::uint32_t chiplets_x = 2;  ///< Chiplet grid (fabric=="chiplet"); each
  std::uint32_t chiplets_y = 2;  ///< chiplet is a mesh_width x mesh_height die.
  std::uint32_t serdes_latency = 4;  ///< Extra cycles on die-boundary links.

  // ---- Link / packet geometry ----
  std::uint32_t link_width_bits_request = 128;  ///< Fig.4 sweeps this.
  std::uint32_t link_width_bits_reply = 128;
  std::uint32_t data_payload_bits = 512;  ///< One read-reply / write-request
                                          ///< data chunk (4 narrow flits).
  std::uint32_t link_latency = 1;         ///< Cycles per hop wire traversal.
  std::uint32_t router_pipeline_stages = 1;  ///< Extra per-hop pipeline
                                             ///< cycles beyond the single-
                                             ///< cycle router (1..3).

  // ---- Router (Table I) ----
  std::uint32_t num_vcs = 4;          ///< Per input port.
  std::uint32_t vc_depth_pkts = 1;    ///< Packets per VC (Table I: 1 pkt).
  RoutingAlgo routing = RoutingAlgo::kXY;
  bool non_atomic_vc = true;          ///< WPF-style whole-packet forwarding.

  // ---- NI (Table I: 36-flit injection queue) ----
  std::uint32_t ni_queue_flits = 36;
  NiArch reply_ni = NiArch::kEnhanced;
  McNiLink mc_ni_link = McNiLink::kWide;  ///< kNarrow only for the raw
                                          ///< GPGPU-Sim default baseline.
  std::uint32_t split_queues = 4;         ///< ARI: # split NI queues = # of
                                          ///< narrow NI->VC links.
  std::uint32_t multiport_ports = 2;      ///< [3]: # router injection ports.

  // ---- ARI consumption / prioritization (paper §4.2, §5) ----
  std::uint32_t injection_speedup = 1;    ///< Switch-ports for the injection
                                          ///< port of MC-routers (S). ARI: 4.
  std::uint32_t priority_levels = 1;      ///< 1 = no prioritization; ARI: 2.
  Cycle starvation_threshold = 1000;      ///< §5 anti-starvation bound.
  /// Negative control: apply the ARI mechanisms to the *request* side too
  /// (split CC NIs + CC-router injection speedup). The paper argues the
  /// bottleneck is reply-side only, so this should buy nothing.
  bool request_side_ari = false;

  // ---- GPU cores ----
  std::uint32_t warps_per_core = 24;   ///< 8 CTAs x 3 warps equivalent load.
  std::uint32_t warp_size = 32;
  std::uint32_t simd_width = 8;
  std::uint32_t max_pending_loads = 8;  ///< Scoreboard slots per warp.
  /// Extension knobs (paper §2.2 future work): techniques that shift NoC
  /// traffic intensity. l1_bypass sends every load to the L2/memory side
  /// (cache-bypassing schemes increase NoC traffic); disabling cross-warp
  /// MSHR merging removes the WarpPool-like inter-warp request coalescing
  /// (more duplicate traffic).
  bool l1_bypass = false;
  bool cross_warp_merge = true;
  /// CTA barrier interval in warp instructions (0 = no barriers). Warps of
  /// the same CTA synchronize every `barrier_interval` instructions —
  /// GPU kernels' __syncthreads() rhythm, which phase-aligns memory bursts.
  std::uint32_t barrier_interval = 0;
  std::uint32_t warps_per_cta = 3;  ///< CTA granularity for barriers.

  // ---- Caches ----
  std::uint32_t l1_size_bytes = 16 * 1024;
  std::uint32_t l1_assoc = 4;
  std::uint32_t l2_size_bytes = 128 * 1024;  ///< Per MC bank.
  std::uint32_t l2_assoc = 8;
  std::uint32_t line_bytes = 64;   ///< = data_payload_bits / 8.
  std::uint32_t mshr_entries = 32;
  std::uint32_t mshr_merges = 8;
  std::uint32_t l2_latency = 8;    ///< Bank access latency (cycles @1GHz).

  // ---- GDDR5 (Table I, GTX980) ----
  std::uint32_t dram_banks = 16;  ///< GDDR5 bank count.
  std::uint32_t dram_queue_depth = 64;  ///< FR-FCFS scheduling window.
  std::uint32_t t_rp = 12;
  std::uint32_t t_rc = 40;
  std::uint32_t t_rrd = 6;
  std::uint32_t t_ras = 28;
  std::uint32_t t_rcd = 12;
  std::uint32_t t_cl = 12;
  std::uint32_t burst_cycles = 4;        ///< Data-bus occupancy per access.
  std::uint32_t dram_starvation_cap = 256;  ///< FR-FCFS aging bound.
  double mem_clock_ratio = 1.75;         ///< 1.75 GHz GDDR5 vs 1 GHz NoC.
  std::uint32_t mc_request_queue = 32;   ///< Per-MC in-flight request cap.
  std::uint32_t mc_eject_flits_per_cycle = 2;  ///< MC-side request-NI drain
                                               ///< rate (provisioned to the
                                               ///< MC datapath rate so reply
                                               ///< backpressure, not raw
                                               ///< ejection width, gates MC
                                               ///< request service).
  std::uint32_t mc_reply_stage = 4;      ///< Ready-data slots before the NI
                                         ///< (stall accounting watches this).

  // ---- Simulation control ----
  Cycle warmup_cycles = 2000;
  Cycle run_cycles = 20000;
  std::uint64_t seed = 1;
  /// Step only components that can do work this cycle (active-set gating).
  /// Bit-identical to always-on stepping — every metric, counter, trace
  /// event, and RNG draw is unchanged — so it is deliberately excluded from
  /// canonical_string(): cached results are valid across both modes. Turn
  /// off with --no-activity (arinoc_sim) to cross-check or bisect.
  bool activity_driven = true;
  /// Worker threads stepping ONE simulation: the fabric is partitioned into
  /// this many spatial domains (src/topo/partition) stepped in parallel
  /// each cycle with cross-domain traffic merged at a deterministic barrier
  /// (docs/performance.md "Domain decomposition"). 1 = the classic serial
  /// loop; 0 = one thread per hardware core, clamped to the node count;
  /// N > nodes is a configuration error. Bit-identical to serial stepping
  /// for every artifact, so — like activity_driven — it is excluded from
  /// canonical_string(): caches and golden baselines are shared across
  /// thread counts.
  std::uint32_t threads = 1;
  /// Epoch-slack synchronization for threads > 1: merge cross-domain
  /// deliveries only every E cycles (E = slowest-common link latency on the
  /// domain boundary) instead of every cycle. Exact, still bit-identical
  /// (the merge always lands before the earliest staged delivery); also
  /// excluded from canonical_string().
  bool domain_epoch = false;

  // ---- Fault injection & recovery (robustness subsystem) ----
  // Per-link per-cycle probabilities; all zero (the default) keeps the
  // fault subsystem entirely out of the simulation (strict no-op).
  double fault_corrupt_rate = 0.0;      ///< Transient flit corruption.
  double fault_link_stall_rate = 0.0;   ///< Stall-window openings.
  std::uint32_t fault_link_stall_len = 20;  ///< Stall window (cycles).
  double fault_port_fail_rate = 0.0;    ///< Permanent link/port failure.
  double fault_credit_loss_rate = 0.0;  ///< Single-credit loss.
  std::uint64_t fault_seed = 12345;     ///< Own RNG stream, not `seed`.
  std::uint32_t fault_enable_mask = 0xF;  ///< FaultClass bits.
  bool fault_recovery = true;           ///< CRC drop + ACK/NACK retransmit.
  Cycle rtx_timeout = 2048;             ///< Base retransmission timeout.
  std::uint32_t rtx_max_retries = 16;

  // ---- Watchdog (deadlock / livelock / invariant audit) ----
  bool watchdog_enabled = true;
  Cycle watchdog_deadlock_window = 5000;  ///< K in the acceptance criteria.
  Cycle watchdog_livelock_age = 50000;
  Cycle watchdog_audit_interval = 0;  ///< Credit-audit period; 0 = off.

  // ---- Open-loop serving (overload robustness; docs/workloads.md) ----
  /// Replace the SIMT cores with rate-driven OpenLoopClients. Off (the
  /// default) leaves the closed-loop path untouched and bit-identical.
  bool open_loop = false;
  /// PaceProfile::parse_spec input: constant/diurnal/burst/flash spec or a
  /// pace-file path. Only consulted when open_loop is set.
  std::string pace_spec = "constant:0.02";
  double pace_scale = 1.0;  ///< Load factor multiplying the profile.
  std::uint32_t ol_queue_cap = 4096;  ///< Pending arrivals per client;
                                      ///< overflow is dropped and counted.
  double ol_write_frac = 0.15;  ///< Store fraction of generated requests.

  // ---- Admission control & graceful degradation (noc/admission.*) ----
  // Disabled (the default) constructs nothing: every run is bit-identical
  // to a build without the admission subsystem.
  bool admission_enabled = false;
  double adm_rate = 0.25;        ///< Tokens/cycle/CC in NORMAL state.
  std::uint32_t adm_burst = 8;   ///< Token-bucket depth.
  double adm_throttle_factor = 0.5;  ///< Refill scale in THROTTLED.
  double adm_throttle_occ = 0.60;  ///< Reply-NI occupancy: enter THROTTLED.
  double adm_shed_occ = 0.85;      ///< Occupancy: enter SHEDDING.
  double adm_recover_occ = 0.35;   ///< Occupancy: hysteretic step-down.
  Cycle adm_dwell = 256;           ///< Min cycles between FSM transitions.
  std::uint32_t adm_retry_max = 6; ///< Defer rounds before a request sheds.
  Cycle adm_backoff = 32;          ///< Base defer backoff; doubles/retry.

  // Derived helpers -------------------------------------------------------
  /// Mesh-geometry node/CC counts. Exact for the "mesh" and "torus"
  /// fabrics; cmesh/chiplet/file endpoint counts come from the built
  /// topo::Fabric (GpgpuSim sizes cores off fabric.cc_nodes()).
  std::uint32_t num_nodes() const { return mesh_width * mesh_height; }
  std::uint32_t num_ccs() const { return num_nodes() - num_mcs; }
  /// Flits of a long (data-bearing) packet on the given network link width:
  /// 1 header flit + payload flits.
  std::uint32_t long_packet_flits(std::uint32_t link_bits) const {
    return 1 + ceil_div(data_payload_bits, link_bits);
  }
  std::uint32_t reply_long_flits() const {
    return long_packet_flits(link_width_bits_reply);
  }
  std::uint32_t request_long_flits() const {
    return long_packet_flits(link_width_bits_request);
  }
  /// VC buffer depth in flits on the reply network (1 pkt = long pkt).
  std::uint32_t vc_depth_flits_reply() const {
    return vc_depth_pkts * reply_long_flits();
  }
  std::uint32_t vc_depth_flits_request() const {
    return vc_depth_pkts * request_long_flits();
  }

  /// True when any fault class is enabled with a nonzero rate.
  bool fault_enabled() const;

  /// Validates internal consistency; returns an error string or empty.
  std::string validate() const;

  /// Canonical `field=value` serialization of every parameter, one line per
  /// field in declaration order, doubles in hexfloat (exact). Two configs
  /// produce the same string iff every simulation-relevant knob matches —
  /// this is the config component of the exec result-cache key.
  std::string canonical_string() const;

  /// The paper's Table I, formatted for printing.
  std::string table1() const;
};

/// Named scheme presets used throughout the evaluation (paper §6.2).
enum class Scheme {
  kXYBaseline,      ///< (1) XY + enhanced baseline.
  kXYARI,           ///< (2) XY + full ARI.
  kAdaBaseline,     ///< (3) adaptive + enhanced baseline.
  kAdaMultiPort,    ///< (4) adaptive + MultiPort [3].
  kAdaARI,          ///< (5) adaptive + full ARI.
  kAccSupply,       ///< Fig.10 ablation: supply acceleration only.
  kAccConsume,      ///< Fig.10 ablation: consumption acceleration only.
  kAccBothNoPrio,   ///< Fig.10 ablation: both, no prioritization.
  kRawBaseline,     ///< GPGPU-Sim default (narrow MC->NI), pre-§4.1.
};

/// Applies a scheme preset on top of a base configuration.
Config apply_scheme(Config base, Scheme scheme);

/// Human-readable scheme name as used in the paper's figures.
const char* scheme_name(Scheme scheme);

}  // namespace arinoc
