#include "common/stats.hpp"

#include <cmath>

namespace arinoc {

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double geomean_guarded(std::span<const double> xs, double floor) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x > floor ? x : floor);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

ClockRatio::ClockRatio(double ratio)
    : step_q32_(static_cast<std::uint64_t>(ratio * 4294967296.0)) {}

std::uint32_t ClockRatio::ticks_this_cycle() {
  accum_ += step_q32_;
  const auto ticks = static_cast<std::uint32_t>(accum_ >> 32);
  accum_ &= 0xffffffffull;
  return ticks;
}

}  // namespace arinoc
