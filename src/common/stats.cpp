#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace arinoc {

std::size_t LogHistogram::bucket_of(double x) {
  if (!(x >= 1.0)) return 0;  // Underflow (and NaN, which compares false).
  const double idx = std::floor(std::log2(x) * kSubBuckets);
  if (idx >= static_cast<double>(kOctaves * kSubBuckets)) {
    return kNumBuckets - 1;  // Overflow.
  }
  return 1 + static_cast<std::size_t>(idx);
}

double LogHistogram::bucket_lower(std::size_t i) {
  if (i == 0) return 0.0;
  return std::exp2(static_cast<double>(i - 1) / kSubBuckets);
}

double LogHistogram::bucket_upper(std::size_t i) {
  if (i == 0) return 1.0;
  return std::exp2(static_cast<double>(i) / kSubBuckets);
}

void LogHistogram::add(double x) {
  if (count_ == 0 || x < min_) min_ = x;
  if (count_ == 0 || x > max_) max_ = x;
  sum_ += x;
  ++count_;
  ++buckets_[bucket_of(x)];
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank with interpolation inside the selected bucket.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cum + buckets_[i] >= rank) {
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      const double frac =
          (static_cast<double>(rank - cum) - 0.5) /
          static_cast<double>(buckets_[i]);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cum += buckets_[i];
  }
  return max_;  // p == 100 with rounding; the last sample.
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double geomean_guarded(std::span<const double> xs, double floor) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x > floor ? x : floor);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

ClockRatio::ClockRatio(double ratio)
    : step_q32_(static_cast<std::uint64_t>(ratio * 4294967296.0)) {}

std::uint32_t ClockRatio::ticks_this_cycle() {
  accum_ += step_q32_;
  const auto ticks = static_cast<std::uint32_t>(accum_ >> 32);
  accum_ &= 0xffffffffull;
  return ticks;
}

std::uint64_t ClockRatio::ticks_for(std::uint64_t cycles) {
  std::uint64_t total = 0;
  while (cycles > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(cycles, 1ull << 28);
    accum_ += step_q32_ * chunk;
    total += accum_ >> 32;
    accum_ &= 0xffffffffull;
    cycles -= chunk;
  }
  return total;
}

}  // namespace arinoc
