// Fundamental scalar types and small helpers shared across arinoc.
#pragma once

#include <cstdint>
#include <limits>

namespace arinoc {

/// Simulation time in interconnect-clock cycles (1 GHz domain).
using Cycle = std::uint64_t;

/// Byte address in the simulated global memory space.
using Addr = std::uint64_t;

/// Node index within a mesh (row-major, 0 .. nodes-1).
using NodeId = std::int32_t;

/// Monotonically increasing packet identifier within one network.
using PacketId = std::uint32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr PacketId kInvalidPacket =
    std::numeric_limits<PacketId>::max();

/// Ceiling division for positive integers.
constexpr std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) {
  return (a + b - 1) / b;
}

}  // namespace arinoc
