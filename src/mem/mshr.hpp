// Miss-status holding registers: merge outstanding misses to the same line
// so one network request serves many warps (standard GPGPU L1 behaviour).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace arinoc {

class Mshr {
 public:
  Mshr(std::uint32_t entries, std::uint32_t max_merges);

  enum class Outcome {
    kNewMiss,   ///< Allocated a new entry — caller must send a request.
    kMerged,    ///< Joined an existing entry — no new request needed.
    kFull,      ///< Structural stall: no entry / merge slot available.
  };

  /// Registers a miss for `line` by requester `tag` (e.g. warp id).
  Outcome lookup(Addr line, std::uint32_t tag);

  /// The line's data returned: pops and returns all merged requester tags.
  /// The entry is freed. Returns empty if the line has no entry (spurious).
  std::vector<std::uint32_t> fill(Addr line);

  bool has_entry(Addr line) const { return table_.count(line) != 0; }
  std::size_t used_entries() const { return table_.size(); }
  std::uint32_t capacity() const { return entries_; }
  bool full() const { return table_.size() >= entries_; }

 private:
  std::uint32_t entries_;
  std::uint32_t max_merges_;
  std::unordered_map<Addr, std::vector<std::uint32_t>> table_;
};

}  // namespace arinoc
