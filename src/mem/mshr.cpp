#include "mem/mshr.hpp"

namespace arinoc {

Mshr::Mshr(std::uint32_t entries, std::uint32_t max_merges)
    : entries_(entries), max_merges_(max_merges) {}

Mshr::Outcome Mshr::lookup(Addr line, std::uint32_t tag) {
  auto it = table_.find(line);
  if (it != table_.end()) {
    if (it->second.size() >= max_merges_) return Outcome::kFull;
    it->second.push_back(tag);
    return Outcome::kMerged;
  }
  if (table_.size() >= entries_) return Outcome::kFull;
  table_.emplace(line, std::vector<std::uint32_t>{tag});
  return Outcome::kNewMiss;
}

std::vector<std::uint32_t> Mshr::fill(Addr line) {
  auto it = table_.find(line);
  if (it == table_.end()) return {};
  std::vector<std::uint32_t> tags = std::move(it->second);
  table_.erase(it);
  return tags;
}

}  // namespace arinoc
