#include "mem/cache.hpp"

#include <cassert>

namespace arinoc {

namespace {
std::uint32_t log2u(std::uint32_t x) {
  std::uint32_t l = 0;
  while ((1u << l) < x) ++l;
  return l;
}
}  // namespace

Cache::Cache(std::uint32_t size_bytes, std::uint32_t assoc,
             std::uint32_t line_bytes)
    : line_bytes_(line_bytes),
      num_sets_(size_bytes / (assoc * line_bytes)),
      assoc_(assoc),
      ways_(static_cast<std::size_t>(num_sets_) * assoc) {
  assert(num_sets_ > 0 && "cache too small for its associativity");
  assert((num_sets_ & (num_sets_ - 1)) == 0 && "sets must be a power of two");
}

std::uint32_t Cache::set_of(Addr addr) const {
  return static_cast<std::uint32_t>(addr >> log2u(line_bytes_)) &
         (num_sets_ - 1);
}

Addr Cache::tag_of(Addr addr) const {
  return addr >> (log2u(line_bytes_) + log2u(num_sets_));
}

bool Cache::access(Addr addr) {
  const std::uint32_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Way& way = ways_[static_cast<std::size_t>(set) * assoc_ + w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

bool Cache::contains(Addr addr) const {
  const std::uint32_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    const Way& way = ways_[static_cast<std::size_t>(set) * assoc_ + w];
    if (way.valid && way.tag == tag) return true;
  }
  return false;
}

Addr Cache::fill(Addr addr) {
  const std::uint32_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Way& way = ways_[static_cast<std::size_t>(set) * assoc_ + w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;  // Already present (racing fill) — refresh.
      return 0;
    }
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }
  Addr evicted = 0;
  if (victim->valid) {
    evicted = (victim->tag << (log2u(line_bytes_) + log2u(num_sets_))) |
              (static_cast<Addr>(set) << log2u(line_bytes_));
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
  return evicted;
}

bool Cache::invalidate(Addr addr) {
  const std::uint32_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Way& way = ways_[static_cast<std::size_t>(set) * assoc_ + w];
    if (way.valid && way.tag == tag) {
      way.valid = false;
      return true;
    }
  }
  return false;
}

void Cache::reset() {
  for (auto& w : ways_) w = Way{};
  tick_ = 0;
  reset_stats();
}

}  // namespace arinoc
