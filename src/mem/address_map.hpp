// Global address decomposition: which MC serves an address, and the DRAM
// bank/row split within an MC. Cache-line-interleaved across MCs so GPGPU
// streaming traffic spreads over all controllers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace arinoc {

class AddressMap {
 public:
  AddressMap(std::uint32_t num_mcs, std::uint32_t line_bytes,
             std::uint32_t dram_banks, std::uint32_t row_bytes = 2048);

  /// Index of the MC (0..num_mcs-1) owning the line containing `addr`.
  std::uint32_t mc_of(Addr addr) const;
  /// DRAM bank within that MC.
  std::uint32_t bank_of(Addr addr) const;
  /// DRAM row within that bank.
  std::uint64_t row_of(Addr addr) const;
  /// Line-aligned address.
  Addr line_of(Addr addr) const { return addr & ~static_cast<Addr>(line_bytes_ - 1); }

  std::uint32_t num_mcs() const { return num_mcs_; }
  std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  std::uint32_t num_mcs_;
  std::uint32_t line_bytes_;
  std::uint32_t dram_banks_;
  std::uint32_t row_bytes_;
};

}  // namespace arinoc
