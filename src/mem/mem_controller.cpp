#include "mem/mem_controller.hpp"

#include <cassert>

namespace arinoc {

MemController::MemController(const Config& cfg, NodeId node, TxnPool* txns,
                             const AddressMap* amap, ReplyPort* reply)
    : cfg_(cfg),
      node_(node),
      txns_(txns),
      amap_(amap),
      reply_(reply),
      l2_(cfg.l2_size_bytes, cfg.l2_assoc, cfg.line_bytes),
      dram_(cfg.dram_banks,
            DramTimings{cfg.t_rp, cfg.t_rc, cfg.t_rrd, cfg.t_ras, cfg.t_rcd,
                        cfg.t_cl, cfg.burst_cycles, cfg.dram_starvation_cap},
            cfg.dram_queue_depth),
      mem_clock_(cfg.mem_clock_ratio) {}

void MemController::deliver(const Packet& pkt, Cycle /*now*/) {
  assert(!is_reply(pkt.type) && "MC received a reply packet");
  if (act_set_) act_set_->wake(act_idx_);
  request_q_.push_back(pkt.txn);
}

void MemController::sync_idle(Cycle now) {
  if (now <= next_cycle_) return;
  const Cycle gap = now - next_cycle_;
  // While can_sleep() holds, every skipped cycle would have sampled three
  // empty queues and ticked an idle DRAM: replay exactly that. stall_cycles_
  // cannot accrue (the reply stage is empty) and the L2/reply pipelines
  // cannot move (nothing is in them).
  req_q_occ_.add_zeros(gap);
  dram_q_occ_.add_zeros(gap);
  reply_occ_.add_zeros(gap);
  dram_.advance_idle(mem_clock_.ticks_for(gap));
  next_cycle_ = now;
}

void MemController::push_reply(PacketType type, TxnId txn) {
  reply_stage_.push_back({type, txn});
}

void MemController::handle_l2_op(const L2Op& op) {
  const MemTxn& txn = txns_->at(op.txn);
  ++requests_served_;
  if (op.write) {
    // Write-through with posted acknowledgement: the short write-reply is
    // generated as soon as the L2 bank accepts the data; the DRAM write
    // drains in the background and only consumes bandwidth.
    l2_.access(txn.line);  // Tag update for statistics.
    l2_.fill(txn.line);
    push_reply(PacketType::kWriteReply, op.txn);
    if (dram_.can_enqueue()) {
      dram_.enqueue({op.txn, amap_->bank_of(txn.line), amap_->row_of(txn.line),
                     /*write=*/true, 0});
    }
    return;
  }
  if (l2_.access(txn.line)) {
    push_reply(PacketType::kReadReply, op.txn);
    return;
  }
  // Read miss: merge with an outstanding fill of the same line, or start a
  // new DRAM read.
  auto it = pending_reads_.find(txn.line);
  if (it != pending_reads_.end()) {
    it->second.push_back(op.txn);
    return;
  }
  pending_reads_.emplace(txn.line, std::vector<TxnId>{op.txn});
  dram_.enqueue({op.txn, amap_->bank_of(txn.line), amap_->row_of(txn.line),
                 /*write=*/false, 0});
}

void MemController::cycle(Cycle now) {
  sync_idle(now);  // Replay slept cycles; a zero gap in always-on mode.
  next_cycle_ = now + 1;

  // 1) Forward ready reply data to the NI over the wide intra-tile link
  //    (one data per cycle, §4.1). A blocked head is the Fig. 12 stall.
  if (!reply_stage_.empty()) {
    const StagedReply& head = reply_stage_.front();
    const MemTxn& txn = txns_->at(head.txn);
    if (reply_->try_send_reply(head.type, head.txn, txn.src_cc, now)) {
      reply_stage_.pop_front();
    } else {
      ++stall_cycles_;
    }
  }

  const bool reply_blocked = reply_stage_.size() >= cfg_.mc_reply_stage;

  // 2) L2 bank pipeline (one operation completes per cycle).
  if (!l2_pipe_.empty() && l2_pipe_.front().ready_at <= now) {
    const L2Op op = l2_pipe_.front();
    // A read miss needs a DRAM queue slot; a hit/write needs reply-stage
    // room. If neither can proceed the pipe head stalls (backpressure).
    const bool is_read = !op.write;
    const bool would_miss = is_read && !l2_.contains(txns_->at(op.txn).line);
    const bool needs_dram =
        op.write || (would_miss &&
                     pending_reads_.count(txns_->at(op.txn).line) == 0);
    if ((needs_dram && !dram_.can_enqueue()) ||
        (!would_miss && reply_blocked)) {
      // Stalled this cycle.
    } else {
      l2_pipe_.pop_front();
      handle_l2_op(op);
    }
  }

  // 3) Admit one request from the ejection queue into the L2 pipeline.
  if (!request_q_.empty() &&
      l2_pipe_.size() < static_cast<std::size_t>(cfg_.l2_latency) + 1) {
    const TxnId id = request_q_.front();
    request_q_.pop_front();
    l2_pipe_.push_back({id, txns_->at(id).write, now + cfg_.l2_latency});
  }

  req_q_occ_.add(static_cast<double>(request_q_.size()));
  dram_q_occ_.add(static_cast<double>(dram_.queue_depth()));
  reply_occ_.add(static_cast<double>(reply_stage_.size()));

  // 4) Tick DRAM in its own clock domain.
  const std::uint32_t ticks = mem_clock_.ticks_this_cycle();
  for (std::uint32_t t = 0; t < ticks; ++t) {
    dram_.tick(reply_blocked);
  }
  for (const DramCompletion& c : dram_.drain_completed()) {
    if (c.write) continue;  // Posted writes were acknowledged already.
    const Addr line = txns_->at(c.txn).line;
    l2_.fill(line);
    auto it = pending_reads_.find(line);
    assert(it != pending_reads_.end());
    for (TxnId waiting : it->second) {
      push_reply(PacketType::kReadReply, waiting);
    }
    pending_reads_.erase(it);
  }
}

void MemController::reset_stats() {
  stall_cycles_ = 0;
  requests_served_ = 0;
  l2_.reset_stats();
  dram_.reset_stats();
  req_q_occ_.reset();
  dram_q_occ_.reset();
  reply_occ_.reset();
}

}  // namespace arinoc
