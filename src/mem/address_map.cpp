#include "mem/address_map.hpp"

#include <cassert>

namespace arinoc {

namespace {
[[maybe_unused]] bool is_pow2(std::uint32_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}
std::uint32_t log2u(std::uint32_t x) {
  std::uint32_t l = 0;
  while ((1u << l) < x) ++l;
  return l;
}
}  // namespace

AddressMap::AddressMap(std::uint32_t num_mcs, std::uint32_t line_bytes,
                       std::uint32_t dram_banks, std::uint32_t row_bytes)
    : num_mcs_(num_mcs),
      line_bytes_(line_bytes),
      dram_banks_(dram_banks),
      row_bytes_(row_bytes) {
  assert(is_pow2(line_bytes) && "line size must be a power of two");
  assert(is_pow2(row_bytes) && "row size must be a power of two");
  assert(num_mcs > 0 && dram_banks > 0);
}

std::uint32_t AddressMap::mc_of(Addr addr) const {
  // Line interleaving; num_mcs need not be a power of two.
  return static_cast<std::uint32_t>((addr >> log2u(line_bytes_)) % num_mcs_);
}

std::uint32_t AddressMap::bank_of(Addr addr) const {
  // Bank bits sit above the MC interleave so consecutive lines at one MC
  // rotate banks (bank-level parallelism for streaming traffic).
  const std::uint64_t line_at_mc =
      (addr >> log2u(line_bytes_)) / num_mcs_;
  return static_cast<std::uint32_t>(line_at_mc % dram_banks_);
}

std::uint64_t AddressMap::row_of(Addr addr) const {
  const std::uint64_t line_at_mc = (addr >> log2u(line_bytes_)) / num_mcs_;
  const std::uint64_t lines_per_row = row_bytes_ / line_bytes_;
  return (line_at_mc / dram_banks_) / lines_per_row;
}

}  // namespace arinoc
