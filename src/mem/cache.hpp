// Set-associative cache with true LRU, used for both per-core L1s and the
// per-MC L2 banks. Tag-array-only model: data payloads are not stored, the
// simulator tracks which lines are present and hit/miss statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace arinoc {

class Cache {
 public:
  Cache(std::uint32_t size_bytes, std::uint32_t assoc,
        std::uint32_t line_bytes);

  /// Looks up `addr`; updates LRU on hit. Returns true on hit.
  bool access(Addr addr);

  /// Probes without updating LRU or statistics.
  bool contains(Addr addr) const;

  /// Inserts the line for `addr`, evicting LRU if needed.
  /// Returns the evicted line address, or 0 if no eviction happened.
  Addr fill(Addr addr);

  /// Invalidates the line if present; returns true if it was present.
  bool invalidate(Addr addr);

  void reset();

  std::uint32_t num_sets() const { return num_sets_; }
  std::uint32_t assoc() const { return assoc_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }
  void reset_stats() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  ///< Larger = more recently used.
  };

  std::uint32_t set_of(Addr addr) const;
  Addr tag_of(Addr addr) const;

  std::uint32_t line_bytes_;
  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  std::vector<Way> ways_;  ///< [set * assoc + way]
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace arinoc
