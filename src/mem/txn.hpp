// Memory transaction descriptors shared between GPU cores, memory
// controllers and the NoC (packets carry a TxnId in their `txn` field).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace arinoc {

using TxnId = std::uint64_t;

struct MemTxn {
  Addr line = 0;           ///< Line-aligned address.
  NodeId src_cc = kInvalidNode;
  NodeId dest_mc = kInvalidNode;
  bool write = false;
  std::uint32_t core = 0;  ///< Issuing core index.
  Cycle issued = 0;
  /// MSHR table key at the issuing core. Equals `line` normally; carries a
  /// per-warp salt when cross-warp merging is disabled (WarpPool ablation).
  Addr mshr_key = 0;
};

/// Free-list arena of transactions (same pattern as PacketArena).
class TxnPool {
 public:
  TxnId create(const MemTxn& txn) {
    if (!free_.empty()) {
      const TxnId id = free_.back();
      free_.pop_back();
      slots_[static_cast<std::size_t>(id)] = txn;
      return id;
    }
    slots_.push_back(txn);
    return static_cast<TxnId>(slots_.size() - 1);
  }
  MemTxn& at(TxnId id) { return slots_[static_cast<std::size_t>(id)]; }
  const MemTxn& at(TxnId id) const {
    return slots_[static_cast<std::size_t>(id)];
  }
  void retire(TxnId id) { free_.push_back(id); }
  std::size_t live() const { return slots_.size() - free_.size(); }

 private:
  std::vector<MemTxn> slots_;
  std::vector<TxnId> free_;
};

}  // namespace arinoc
