#include "mem/dram.hpp"

#include <algorithm>
#include <cassert>

namespace arinoc {

GddrDram::GddrDram(std::uint32_t num_banks, const DramTimings& timings,
                   std::uint32_t queue_capacity)
    : banks_(num_banks), t_(timings), queue_capacity_(queue_capacity) {
  // Start the internal clock beyond every timing horizon so the zero-valued
  // per-bank timestamps read as "long in the past" (no cold-start stall).
  now_ = t_.t_rc + t_.t_ras + t_.t_rp + t_.t_rrd;
}

void GddrDram::enqueue(const DramRequest& req) {
  assert(can_enqueue());
  DramRequest r = req;
  r.order = order_counter_++;
  r.enqueued = now_;
  queue_.push_back(r);
}

bool GddrDram::try_issue(const DramRequest& req, std::uint64_t* complete_at) {
  Bank& bank = banks_[req.bank];
  if (bank.busy_until > now_) return false;

  if (bank.open && bank.open_row == req.row) {
    // Row-buffer hit: column access; queues for the shared data bus
    // (a future bus slot is a private reservation — unlike a future ACT it
    // cannot stall other banks).
    const std::uint64_t data_start = std::max(now_, bus_free_at_);
    bus_free_at_ = data_start + t_.burst;
    bank.busy_until = data_start + t_.burst;
    *complete_at = data_start + t_.t_cl + t_.burst;
    ++row_hits_;
    ++accesses_;
    return true;
  }

  // Row miss: the (PRE+)ACT command must be legal *this* cycle — issuing
  // an ACT into the future would stall the whole channel behind one hot
  // bank (tRRD is a channel-global constraint).
  std::uint64_t act_ready = std::max(bank.act_at + t_.t_rc,
                                     last_act_any_ + t_.t_rrd);
  if (bank.open) {
    const std::uint64_t pre_ready = bank.act_at + t_.t_ras;
    act_ready = std::max(act_ready, pre_ready + t_.t_rp);
  }
  if (act_ready > now_) return false;
  const std::uint64_t data_start = std::max(now_ + t_.t_rcd, bus_free_at_);

  bank.open = true;
  bank.open_row = req.row;
  bank.act_at = now_;
  last_act_any_ = now_;
  ++activates_;
  ++accesses_;
  bus_free_at_ = data_start + t_.burst;
  bank.busy_until = data_start + t_.burst;
  *complete_at = data_start + t_.t_cl + t_.burst;
  return true;
}

void GddrDram::tick(bool output_blocked) {
  ++now_;
  // Retire finished accesses.
  for (std::size_t i = 0; i < in_service_.size();) {
    if (in_service_[i].complete_at <= now_) {
      completed_.push_back(in_service_[i].completion);
      in_service_[i] = in_service_.back();
      in_service_.pop_back();
    } else {
      ++i;
    }
  }
  if (queue_.empty()) return;

  // FR-FCFS, one command sequence started per memory cycle:
  // pass 1 — oldest-first among ready row hits; pass 2 — oldest request
  // whose activate can legally issue now.
  auto issuable = [&](const DramRequest& r) {
    return !(output_blocked && !r.write);
  };
  auto try_pick = [&](bool hits_only) -> bool {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const DramRequest& r = queue_[i];
      if (!issuable(r)) continue;
      const Bank& b = banks_[r.bank];
      const bool is_hit = b.open && b.open_row == r.row;
      if (hits_only && !is_hit) continue;
      std::uint64_t complete_at = 0;
      if (try_issue(r, &complete_at)) {
        in_service_.push_back({complete_at, {r.txn, r.write}});
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  };
  // Anti-starvation: once the oldest request has aged past the cap, stop
  // letting younger row hits bypass it (strict oldest-first until it goes).
  const bool starving =
      t_.starvation_cap > 0 &&
      now_ - queue_.front().enqueued > t_.starvation_cap;
  if (starving) {
    try_pick(/*hits_only=*/false);
    return;
  }
  if (!try_pick(/*hits_only=*/true)) {
    try_pick(/*hits_only=*/false);
  }
}

std::vector<DramCompletion> GddrDram::drain_completed() {
  std::vector<DramCompletion> out;
  out.swap(completed_);
  return out;
}

}  // namespace arinoc
