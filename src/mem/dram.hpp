// GDDR5 timing model with FR-FCFS scheduling (Table I).
//
// Runs in the memory clock domain (1.75 GHz vs the 1 GHz NoC clock; the MC
// crosses domains with a ClockRatio ticker). Per-bank row-buffer state
// machines respect tRP/tRC/tRRD/tRAS/tRCD/tCL; a shared data bus serializes
// bursts. The scheduler is First-Ready FCFS: ready row-buffer hits first,
// then the oldest request whose bank can accept an activate.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "mem/txn.hpp"

namespace arinoc {

struct DramTimings {
  std::uint32_t t_rp = 12;
  std::uint32_t t_rc = 40;
  std::uint32_t t_rrd = 6;
  std::uint32_t t_ras = 28;
  std::uint32_t t_rcd = 12;
  std::uint32_t t_cl = 12;
  std::uint32_t burst = 4;  ///< Data-bus cycles per access.
  /// FR-FCFS anti-starvation: once the oldest request has waited this many
  /// memory cycles, scheduling falls back to strict oldest-first until it
  /// issues (row hits stop bypassing it).
  std::uint32_t starvation_cap = 256;
};

struct DramRequest {
  TxnId txn = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  bool write = false;
  std::uint64_t order = 0;      ///< FCFS age.
  std::uint64_t enqueued = 0;   ///< Memory cycle of arrival (starvation).
};

struct DramCompletion {
  TxnId txn = 0;
  bool write = false;
};

class GddrDram {
 public:
  GddrDram(std::uint32_t num_banks, const DramTimings& timings,
           std::uint32_t queue_capacity);

  bool can_enqueue() const { return queue_.size() < queue_capacity_; }
  void enqueue(const DramRequest& req);

  /// Advances one *memory* cycle. If `output_blocked`, reads may not be
  /// issued (the MC reply stage is full) but writes still drain.
  void tick(bool output_blocked);

  /// Completions since the last drain (in completion order).
  std::vector<DramCompletion> drain_completed();

  /// True when tick() would only advance the clock: nothing queued, nothing
  /// in service, nothing awaiting drain. The activity layer may then skip
  /// ticks and replay them with advance_idle().
  bool fully_idle() const {
    return queue_.empty() && in_service_.empty() && completed_.empty();
  }
  /// Replays `ticks` idle memory cycles at once. Exactly equivalent to that
  /// many tick() calls while fully_idle(): each such tick only increments
  /// the clock (the retire loop scans an empty vector and the scheduler
  /// returns before touching any bank or bus state).
  void advance_idle(std::uint64_t ticks) {
    assert(fully_idle());
    now_ += ticks;
  }

  std::size_t queue_depth() const { return queue_.size(); }

  // Stats (for energy model and row-locality diagnostics).
  std::uint64_t activates() const { return activates_; }
  std::uint64_t row_hits() const { return row_hits_; }
  std::uint64_t accesses() const { return accesses_; }
  double row_hit_rate() const {
    return accesses_ ? static_cast<double>(row_hits_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }
  void reset_stats() {
    activates_ = 0;
    row_hits_ = 0;
    accesses_ = 0;
  }

 private:
  struct Bank {
    bool open = false;
    std::uint64_t open_row = 0;
    std::uint64_t act_at = 0;       ///< Memory cycle of the last ACT.
    std::uint64_t busy_until = 0;   ///< Bank unavailable before this.
  };

  /// Attempts to issue `req` now; returns true and fills `complete_at` when
  /// the command sequence was started.
  bool try_issue(const DramRequest& req, std::uint64_t* complete_at);

  std::vector<Bank> banks_;
  DramTimings t_;
  std::uint32_t queue_capacity_;
  std::deque<DramRequest> queue_;
  std::uint64_t now_ = 0;           ///< Memory-domain cycle.
  std::uint64_t bus_free_at_ = 0;
  std::uint64_t last_act_any_ = 0;
  std::uint64_t order_counter_ = 0;

  struct Pending {
    std::uint64_t complete_at;
    DramCompletion completion;
  };
  std::vector<Pending> in_service_;
  std::vector<DramCompletion> completed_;

  std::uint64_t activates_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace arinoc
