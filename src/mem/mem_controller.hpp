// Memory-controller node: L2 bank + FR-FCFS GDDR5 + reply staging.
//
// Receives request packets from the request network (as a PacketSink with
// backpressure), services them through the L2 bank and DRAM, and forwards
// ready reply data to the reply-network NI through a ReplyPort. The cycles
// in which ready data cannot be handed to the NI are the paper's "data
// stall time in memory controllers" (Fig. 12).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/active_set.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/txn.hpp"
#include "noc/ni.hpp"

namespace arinoc {

/// Where the MC hands completed reply data (mesh reply NI or DA2mesh lane).
class ReplyPort {
 public:
  virtual ~ReplyPort() = default;
  /// Attempts to move one reply onto the reply fabric. Returns false when
  /// the NI injection queue cannot accept it this cycle.
  virtual bool try_send_reply(PacketType type, TxnId txn, NodeId dest,
                              Cycle now) = 0;
};

class MemController : public PacketSink {
 public:
  MemController(const Config& cfg, NodeId node, TxnPool* txns,
                const AddressMap* amap, ReplyPort* reply);

  // ---- PacketSink (request-network ejection side) ----
  bool sink_ready() const override {
    return request_q_.size() < cfg_.mc_request_queue;
  }
  void deliver(const Packet& pkt, Cycle now) override;

  /// One interconnect cycle (internally ticks DRAM at the memory clock).
  void cycle(Cycle now);

  // ---- Activity-driven stepping ----
  /// True when cycle() would only perform the fixed idle bookkeeping (three
  /// zero occupancy samples + idle DRAM clock ticks): no staged replies, no
  /// queued or pipelined requests, no outstanding DRAM work. The only event
  /// that can end this state is deliver(), which wakes the MC.
  bool can_sleep() const {
    return reply_stage_.empty() && request_q_.empty() && l2_pipe_.empty() &&
           pending_reads_.empty() && dram_.fully_idle();
  }
  /// Replays the bookkeeping of the idle cycles [next expected, now):
  /// zero-valued occupancy samples and idle DRAM clock ticks, exactly as
  /// the skipped cycle() calls would have produced them. Also called by
  /// GpgpuSim::sync_activity() at run/reset boundaries so deferred samples
  /// are attributed to the measurement window they belong to.
  void sync_idle(Cycle now);
  /// Registers this MC in `set` (as member `idx`); deliver() wakes it.
  void set_activity_hook(ActiveSet* set, std::size_t idx) {
    act_set_ = set;
    act_idx_ = idx;
  }

  // ---- Stats ----
  /// Cycles in which ready reply data was blocked at the MC->NI boundary.
  Cycle stall_cycles() const { return stall_cycles_; }
  const Cache& l2() const { return l2_; }
  const GddrDram& dram() const { return dram_; }
  std::size_t reply_backlog() const { return reply_stage_.size(); }
  std::uint64_t requests_served() const { return requests_served_; }
  /// Per-cycle mean occupancies (diagnostics; sampled every cycle).
  double mean_request_q() const { return req_q_occ_.mean(); }
  double mean_dram_q() const { return dram_q_occ_.mean(); }
  double mean_reply_stage() const { return reply_occ_.mean(); }
  void reset_stats();

  NodeId node() const { return node_; }

 private:
  struct StagedReply {
    PacketType type;
    TxnId txn;
  };
  struct L2Op {
    TxnId txn;
    bool write;
    Cycle ready_at;
  };

  void push_reply(PacketType type, TxnId txn);
  void handle_l2_op(const L2Op& op);

  Config cfg_;
  NodeId node_;
  TxnPool* txns_;
  const AddressMap* amap_;
  ReplyPort* reply_;

  std::deque<StagedReply> reply_stage_;
  std::deque<TxnId> request_q_;
  std::deque<L2Op> l2_pipe_;
  Cache l2_;
  GddrDram dram_;
  ClockRatio mem_clock_;
  /// Read-miss merge table: line -> transactions awaiting the DRAM fill.
  std::unordered_map<Addr, std::vector<TxnId>> pending_reads_;

  Cycle stall_cycles_ = 0;
  std::uint64_t requests_served_ = 0;
  Accumulator req_q_occ_;
  Accumulator dram_q_occ_;
  Accumulator reply_occ_;

  // Activity-driven stepping (null hook = always-on mode).
  ActiveSet* act_set_ = nullptr;
  std::size_t act_idx_ = 0;
  Cycle next_cycle_ = 0;  ///< Next cycle this MC expects to process.
};

}  // namespace arinoc
