// Latency-attribution engine (observability subsystem, layer 2).
//
// A LatencyAttributor splits every delivered packet's end-to-end latency
// into exact additive stage components by timestamping the stage boundaries
// a packet crosses on its way through the fabric:
//
//   stage      boundary interval                         meaning
//   --------   ---------------------------------------   --------------------
//   ni_queue   NI accept -> head enters injection VC     source-NI queueing
//   vc_wait    head at router -> output VC allocated     VC-allocation wait
//   sw_wait    VC allocated -> head leaves the router    switch-arbitration
//                                                        + credit wait
//   link       head on the wire -> head at next router   link traversal
//                                                        (incl. serdes extra)
//   eject      head enters ejection buffer -> delivery   ejection drain, body
//                                                        serialization,
//                                                        reassembly, sink wait
//   retx       first NI accept -> accept of the final    fault-retransmission
//              (delivered) incarnation                   overhead
//
// Because every hook advances one shared `last` timestamp, the components
// telescope: their sum equals (delivery cycle - first NI-accept cycle) by
// construction, and the engine verifies this per packet (any missed or
// doubled hook shows up as a conservation violation, enforced by tests).
//
// Aggregation:
//  * per-(net, type) stage totals over delivered packets (exact partition of
//    total delivered e2e latency);
//  * per-(net, stage, node, port, vc) location totals -> top-k bottleneck
//    report ("reply ni_queue at mc21: 61% of attributed reply cycles");
//  * per-(link, vc, type) time-windowed congestion series for the heatmap
//    dashboard (attr_html_document()).
//
// Like the PacketTracer, components hold a nullable attributor pointer; with
// none attached every hook is one branch on a null pointer and results are
// bit-identical to an unattributed run (guarded by tests and perf_harness).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "noc/packet.hpp"
#include "topo/graph.hpp"

namespace arinoc::obs {

/// Open-addressed u64 -> V accumulator map for the attribution hot paths:
/// linear probing over a power-of-two slot array, insert-or-find only
/// (no erase; clear() drops everything). Keys are stored biased by +1 so 0
/// marks an empty slot — the packed location/window keys can legitimately
/// be 0 and can never be UINT64_MAX.
template <typename V>
class AttrFlatMap {
 public:
  V& operator[](std::uint64_t key) {
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::uint64_t k1 = key + 1;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.key1 == k1) return s.v;
      if (s.key1 == 0) {
        s.key1 = k1;
        ++size_;
        return s.v;
      }
      i = (i + 1) & mask;
    }
  }

  std::size_t size() const { return size_; }

  /// Empties the map but keeps the slot array allocated (the window staging
  /// map is cleared once per window and immediately refilled).
  void clear() {
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

  template <typename F>
  void for_each(F f) const {
    for (const Slot& s : slots_) {
      if (s.key1 != 0) f(s.key1 - 1, s.v);
    }
  }

 private:
  struct Slot {
    std::uint64_t key1 = 0;  ///< key + 1; 0 = empty.
    V v{};
  };

  // splitmix64 finalizer: the packed keys differ mostly in their low bits.
  static std::size_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 1024 : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key1 == 0) continue;
      std::size_t i = mix(s.key1 - 1) & mask;
      while (slots_[i].key1 != 0) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

enum class AttrStage : std::uint8_t {
  kNiQueue = 0,
  kVcWait,
  kSwWait,
  kLink,
  kEject,
  kRetx,
};
inline constexpr std::size_t kNumAttrStages = 6;

const char* attr_stage_name(AttrStage s);

/// Finalized decomposition of one delivered packet.
struct PacketAttr {
  PacketId pkt = kInvalidPacket;
  std::uint8_t net = 0;  ///< 0 = request network, 1 = reply network.
  PacketType type = PacketType::kReadRequest;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  Cycle origin = 0;     ///< First NI accept (of the original incarnation).
  Cycle delivered = 0;  ///< Handed to the sink.
  std::uint64_t stage[kNumAttrStages] = {};

  std::uint64_t e2e() const { return delivered - origin; }
  std::uint64_t stage_sum() const {
    std::uint64_t s = 0;
    for (const std::uint64_t v : stage) s += v;
    return s;
  }
};

/// One row of the top-k bottleneck report: total cycles a stage accumulated
/// at one location, over all packets that crossed it (delivered or not).
struct BottleneckEntry {
  std::uint8_t net = 0;
  AttrStage stage = AttrStage::kNiQueue;
  NodeId node = kInvalidNode;
  int port = -1;  ///< Output port for vc/sw/link stages; -1 = not port-bound.
  int vc = -1;    ///< Output VC for vc/sw stages; -1 = not VC-bound.
  std::uint64_t cycles = 0;
  std::uint64_t count = 0;  ///< Stage crossings accumulated here.
  double share = 0.0;       ///< Of all attributed cycles on this net.
};

/// One cell of the windowed congestion series: in-router wait attributed to
/// one (link, output VC, packet type) during one time window.
struct AttrWindowCell {
  std::uint32_t window = 0;  ///< Window index (cycle / window_cycles).
  std::uint8_t net = 0;
  NodeId node = kInvalidNode;  ///< Upstream router of the link.
  int port = -1;               ///< Output port (the link), or the ejection
                               ///< port sentinel given at construction.
  int vc = -1;
  PacketType type = PacketType::kReadRequest;
  std::uint64_t vc_wait = 0;
  std::uint64_t sw_wait = 0;
  std::uint64_t count = 0;  ///< Head flits that departed over this link.
};

class LatencyAttributor {
 public:
  static constexpr Cycle kDefaultWindow = 512;
  static constexpr std::size_t kDefaultPacketCapacity = 1u << 16;

  explicit LatencyAttributor(Cycle window_cycles = kDefaultWindow,
                             std::size_t packet_capacity =
                                 kDefaultPacketCapacity);

  /// Optional fabric graph for node-role labels and dashboard coordinates.
  /// Copied, so reports stay valid after the simulator that attached us
  /// (and the graph it owns) are gone.
  void set_topology(const topo::FabricGraph* graph) {
    has_graph_ = graph != nullptr;
    graph_ = has_graph_ ? *graph : topo::FabricGraph{};
  }
  const topo::FabricGraph* topology() const {
    return has_graph_ ? &graph_ : nullptr;
  }

  // ---- Hook points (called by NI / router / network / fault code) ----
  void on_ni_enqueue(std::uint8_t net, PacketId id, PacketType type,
                     NodeId node, Cycle now);
  /// Re-injection of a tracked packet: re-bases the span to the original
  /// incarnation's accept cycle and books the gap as retransmission
  /// overhead. Fires after the re-injection's on_ni_enqueue.
  void on_retransmit(std::uint8_t net, PacketId id, Cycle first_accept,
                     Cycle now);
  void on_inject(std::uint8_t net, PacketId id, NodeId node, Cycle now);
  void on_head_arrive(std::uint8_t net, PacketId id, NodeId node, Cycle now);
  void on_vc_alloc(std::uint8_t net, PacketId id, NodeId node, int out_port,
                   int out_vc, Cycle now);
  void on_link_depart(std::uint8_t net, PacketId id, NodeId node,
                      int out_port, Cycle now);
  void on_eject_start(std::uint8_t net, PacketId id, NodeId node, Cycle now);
  void on_deliver(std::uint8_t net, PacketId id, Cycle now);
  void on_drop(std::uint8_t net, PacketId id, Cycle now);

  // ---- Results ----
  Cycle window_cycles() const { return window_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t conservation_violations() const { return violations_; }
  /// Packets still in flight (attributed but not yet delivered/dropped).
  std::uint64_t inflight() const { return inflight_; }

  /// Finalized per-packet decompositions, oldest first (bounded ring:
  /// overwrites the oldest entry past `packet_capacity`).
  std::vector<PacketAttr> packets() const;

  /// Total cycles stage `s` accumulated on `net` over delivered packets.
  std::uint64_t stage_total(std::uint8_t net, AttrStage s) const {
    return stage_totals_[net][static_cast<std::size_t>(s)];
  }
  /// Total e2e cycles of delivered packets on `net` (== sum of stage
  /// totals when conservation holds).
  std::uint64_t e2e_total(std::uint8_t net) const { return e2e_totals_[net]; }
  std::uint64_t delivered_on(std::uint8_t net) const {
    return delivered_net_[net];
  }

  /// Top-k locations by accumulated stage cycles, both networks merged,
  /// ranked by cycles descending (deterministic tie-break on the key).
  std::vector<BottleneckEntry> bottlenecks(std::size_t k) const;

  /// Windowed congestion series, sorted by (window, net, node, port, vc,
  /// type) for deterministic output.
  std::vector<AttrWindowCell> window_series() const;

  /// Human-readable label of one bottleneck entry ("reply ni_queue at
  /// mc21", "reply sw_wait at rtr3->mc1 vc0"); uses set_topology() roles
  /// when available.
  std::string entry_label(const BottleneckEntry& e) const;
  /// Compact rank-1 label + share for CSV columns ("reply ni_queue@mc21
  /// 61%"); empty when nothing was attributed.
  std::string top_label() const;

  /// The full attribution report as JSON (schema "arinoc-attr-v1").
  std::string to_json(std::size_t top_k = 10) const;

  void clear();

 private:
  struct Live {
    Cycle origin = 0;
    Cycle last = 0;
    NodeId src = kInvalidNode;
    NodeId node = kInvalidNode;  ///< Router currently holding the head.
    PacketType type = PacketType::kReadRequest;
    bool active = false;    ///< Slot tracks an in-flight packet.
    int pending_port = -1;  ///< Output port granted by VC allocation.
    int pending_vc = -1;
    std::uint64_t hop_vc_wait = 0;  ///< This hop's vc_wait (window series).
    std::uint64_t stage[kNumAttrStages] = {};
  };

  // PacketIds are dense arena slot indices, so the live table is a flat
  // per-net vector instead of a hash map — the hooks run on every hop of
  // every packet, and a bounds check + flag beats a bucket walk there.
  Live* find_live(std::uint8_t net, PacketId id) {
    std::vector<Live>& v = live_[net];
    if (id >= v.size() || !v[id].active) return nullptr;
    return &v[id];
  }

  /// Location key: net(1b) | stage(3b) | node(20b) | port+1(8b) | vc+1(8b).
  static std::uint64_t loc_key(std::uint8_t net, AttrStage stage, NodeId node,
                               int port, int vc) {
    return (static_cast<std::uint64_t>(net) << 39) |
           (static_cast<std::uint64_t>(stage) << 36) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) <<
            16) |
           (static_cast<std::uint64_t>(port + 1) << 8) |
           static_cast<std::uint64_t>(vc + 1);
  }
  /// Window-series key: window(24b) | net(1b) | node(20b) | port+1(8b) |
  /// vc+1(8b) | type(2b).
  static std::uint64_t win_key(std::uint32_t window, std::uint8_t net,
                               NodeId node, int port, int vc,
                               PacketType type) {
    return (static_cast<std::uint64_t>(window) << 39) |
           (static_cast<std::uint64_t>(net) << 38) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) <<
            18) |
           (static_cast<std::uint64_t>(port + 1) << 10) |
           (static_cast<std::uint64_t>(vc + 1) << 2) |
           static_cast<std::uint64_t>(type);
  }

  struct LocSums {
    std::uint64_t cycles = 0;
    std::uint64_t count = 0;
  };
  struct WinSums {
    std::uint64_t vc_wait = 0;
    std::uint64_t sw_wait = 0;
    std::uint64_t count = 0;
  };
  struct TypeSums {
    std::uint64_t delivered = 0;
    std::uint64_t e2e = 0;
    std::uint64_t stage[kNumAttrStages] = {};
  };

  void add_loc(std::uint8_t net, AttrStage stage, NodeId node, int port,
               int vc, std::uint64_t cycles);
  std::string node_label(std::uint8_t net, NodeId node) const;

  std::uint32_t window_index(Cycle now) const {
    return static_cast<std::uint32_t>(win_shift_ >= 0 ? now >> win_shift_
                                                      : now / window_);
  }
  /// The window-series cell for `key` in `window`. Writes always land in the
  /// small current-window staging map (hot in cache); when the window
  /// advances, the finished window's cells are flushed to `win_done_` so the
  /// staging map never grows with run length.
  WinSums& win_cell(std::uint32_t window, std::uint64_t key) {
    if (window != win_cur_window_) {
      flush_window();
      win_cur_window_ = window;
    }
    return win_cur_[key];
  }
  void flush_window() {
    win_cur_.for_each([this](std::uint64_t key, const WinSums& w) {
      win_done_.push_back({key, w});
    });
    win_cur_.clear();
  }

  Cycle window_;
  int win_shift_ = -1;  ///< log2(window_) when window_ is a power of two.
  std::size_t packet_capacity_;
  std::vector<Live> live_[2];  ///< Indexed by PacketId (arena slot).
  std::uint64_t inflight_ = 0;
  AttrFlatMap<LocSums> loc_;
  AttrFlatMap<WinSums> win_cur_;  ///< Cells of the window being recorded.
  std::uint32_t win_cur_window_ = 0;
  std::vector<std::pair<std::uint64_t, WinSums>> win_done_;
  // Per-net aggregates over delivered packets (exact e2e partition).
  std::uint64_t stage_totals_[2][kNumAttrStages] = {};
  std::uint64_t e2e_totals_[2] = {};
  std::uint64_t delivered_net_[2] = {};
  /// Event-time cycles attributed per net (delivered or not); bottleneck
  /// shares are fractions of this.
  std::uint64_t attributed_net_[2] = {};
  TypeSums type_sums_[2][4];
  // Finalized-packet ring.
  std::vector<PacketAttr> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t violations_ = 0;
  topo::FabricGraph graph_{};
  bool has_graph_ = false;
};

/// Self-contained HTML dashboard: per-link stage heatmap over the fabric
/// layout with a time slider over the attribution windows plus the top-k
/// bottleneck table. `graph` may be null (falls back to a circular layout).
std::string attr_html_document(const LatencyAttributor& attr,
                               const topo::FabricGraph* graph,
                               std::size_t top_k = 10);

}  // namespace arinoc::obs
