// Simulator self-profiler: where does *host* wall-clock time go?
//
// Opt-in (--self-profile): GpgpuSim wraps each step() phase in begin()/end()
// stamps and records, per simulated-cycle epoch,
//  * wall nanoseconds per subsystem phase (cores, MCs, NIs, networks, ...);
//  * activity-driven wake statistics: component-cycles actually stepped vs
//    the always-on capacity, per component group (how much sleeping buys).
//
// Results are written as JSONL (one epoch per line, schema
// "arinoc-selfprof-v1") so long runs stream instead of buffering one huge
// document. This is host-side measurement only: it never touches simulated
// state, so simulation results are identical with or without it (the <5%
// wall-clock budget in perf_harness covers attribution, not this — the
// profiler is the tool you use to find where that budget goes).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace arinoc::obs {

/// One timed phase of GpgpuSim::step(), in execution order.
enum class ProfPhase : std::uint8_t {
  kFrontend = 0,  ///< Degradation FSM + open-loop clients.
  kCores,
  kMcs,
  kInjectNi,
  kNetworks,  ///< Both networks (or request + overlay).
  kEjectNi,
  kSampling,  ///< NI occupancy sampling + telemetry.
  kWatchdog,
};
inline constexpr std::size_t kNumProfPhases = 8;

/// Component groups with wake/sleep accounting.
enum class ProfGroup : std::uint8_t {
  kCores = 0,
  kMcs,
  kInjectNis,
  kEjectNis,
  kRouters,  ///< Both networks' internal router sets.
};
inline constexpr std::size_t kNumProfGroups = 5;

const char* prof_phase_name(ProfPhase p);
const char* prof_group_name(ProfGroup g);

class SelfProfiler {
 public:
  static constexpr Cycle kDefaultEpoch = 4096;

  explicit SelfProfiler(Cycle epoch_cycles = kDefaultEpoch);

  Cycle epoch_cycles() const { return epoch_; }

  void begin(ProfPhase p) {
    t0_[static_cast<std::size_t>(p)] = std::chrono::steady_clock::now();
  }
  void end(ProfPhase p) {
    const std::size_t i = static_cast<std::size_t>(p);
    cur_.wall_ns[i] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_[i])
            .count());
    ++cur_.calls[i];
  }

  /// `awake` components of `total` will be stepped this cycle (activity
  /// mode: the active-set pending count; always-on mode: awake == total).
  void record_wakes(ProfGroup g, std::uint64_t awake, std::uint64_t total) {
    const std::size_t i = static_cast<std::size_t>(g);
    cur_.awake[i] += awake;
    cur_.capacity[i] += total;
  }

  /// Call once per simulated cycle, after the step's phases; closes the
  /// epoch when the boundary is crossed.
  void on_cycle_end(Cycle now);
  /// Flushes the trailing partial epoch (call once after the run).
  void finish(Cycle now);

  struct Epoch {
    std::uint64_t index = 0;
    Cycle start_cycle = 0;
    Cycle end_cycle = 0;  ///< Exclusive.
    std::uint64_t wall_ns[kNumProfPhases] = {};
    std::uint64_t calls[kNumProfPhases] = {};
    std::uint64_t awake[kNumProfGroups] = {};
    std::uint64_t capacity[kNumProfGroups] = {};
  };

  const std::vector<Epoch>& epochs() const { return epochs_; }

  /// One JSON object per epoch, newline-terminated (JSONL), schema
  /// "arinoc-selfprof-v1".
  std::string to_jsonl() const;

  void clear();

 private:
  Cycle epoch_;
  Cycle epoch_start_ = 0;
  bool started_ = false;
  Epoch cur_;
  std::vector<Epoch> epochs_;
  std::chrono::steady_clock::time_point t0_[kNumProfPhases];
};

}  // namespace arinoc::obs
