#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace arinoc::obs {

const char* trace_event_kind_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kNiEnqueue:  return "NiEnqueue";
    case TraceEventKind::kVcAlloc:    return "VcAlloc";
    case TraceEventKind::kInject:     return "Inject";
    case TraceEventKind::kLinkHop:    return "LinkHop";
    case TraceEventKind::kEject:      return "Eject";
    case TraceEventKind::kDeliver:    return "Deliver";
    case TraceEventKind::kDrop:       return "Drop";
    case TraceEventKind::kRetransmit: return "Retransmit";
    case TraceEventKind::kCorrupt:    return "Corrupt";
  }
  return "?";
}

namespace {

const char* net_name(std::uint8_t net) { return net == 0 ? "request" : "reply"; }

/// Per-(net, packet-id) span state while scanning the event stream. Packet
/// ids recycle, so a fresh kNiEnqueue restarts the span.
struct Span {
  Cycle enqueue = 0;
  Cycle inject = 0;
  bool has_enqueue = false;
  bool has_inject = false;
  bool retx = false;  ///< Span is a recovery re-injection of a lost packet.
  std::int16_t src = -1;
};

std::uint64_t span_key(std::uint8_t net, PacketId pkt) {
  return (static_cast<std::uint64_t>(net) << 32) | pkt;
}

}  // namespace

PacketTracer::PacketTracer(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 16)) {}

std::vector<TraceEvent> PacketTracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void PacketTracer::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

std::string PacketTracer::to_chrome_json() const {
  const std::vector<TraceEvent> evs = events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  const char* sep = "";
  auto emit = [&](const std::string& obj) {
    os << sep << "\n" << obj;
    sep = ",";
  };
  char buf[256];
  // Process metadata: one "process" per network keeps Perfetto's track
  // grouping readable (tid = mesh node).
  for (int net = 0; net < 2; ++net) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                  "\"args\":{\"name\":\"%s network\"}}",
                  net, net_name(static_cast<std::uint8_t>(net)));
    emit(buf);
  }
  std::unordered_map<std::uint64_t, Span> spans;
  for (const TraceEvent& e : evs) {
    const std::uint64_t key = span_key(e.net, e.pkt);
    switch (e.kind) {
      case TraceEventKind::kNiEnqueue: {
        Span s;
        s.enqueue = e.cycle;
        s.has_enqueue = true;
        s.src = e.node;
        spans[key] = s;
        break;
      }
      case TraceEventKind::kInject: {
        Span& s = spans[key];
        if (!s.has_inject) {
          s.inject = e.cycle;
          s.has_inject = true;
          if (s.src < 0) s.src = e.node;
        }
        break;
      }
      case TraceEventKind::kDeliver:
      case TraceEventKind::kDrop: {
        auto it = spans.find(key);
        if (it != spans.end() && it->second.has_enqueue) {
          const Span& s = it->second;
          std::snprintf(
              buf, sizeof(buf),
              "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%llu,"
              "\"dur\":%llu,\"name\":\"%s\",\"cat\":\"packet\","
              "\"args\":{\"pkt\":%u,\"dest\":%d,\"outcome\":\"%s\"}}",
              static_cast<int>(e.net), static_cast<int>(s.src),
              static_cast<unsigned long long>(s.enqueue),
              static_cast<unsigned long long>(e.cycle - s.enqueue),
              packet_type_name(static_cast<PacketType>(e.type)),
              static_cast<unsigned>(e.pkt), static_cast<int>(e.node),
              trace_event_kind_name(e.kind));
          emit(buf);
          spans.erase(it);
        }
        break;
      }
      case TraceEventKind::kLinkHop:
      case TraceEventKind::kCorrupt:
      case TraceEventKind::kRetransmit: {
        std::snprintf(
            buf, sizeof(buf),
            "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%llu,\"s\":\"t\","
            "\"name\":\"%s\",\"cat\":\"%s\","
            "\"args\":{\"pkt\":%u,\"aux\":%d}}",
            static_cast<int>(e.net), static_cast<int>(e.node),
            static_cast<unsigned long long>(e.cycle),
            trace_event_kind_name(e.kind),
            packet_type_name(static_cast<PacketType>(e.type)),
            static_cast<unsigned>(e.pkt), static_cast<int>(e.aux));
        emit(buf);
        break;
      }
      case TraceEventKind::kVcAlloc:
      case TraceEventKind::kEject:
        break;  // Span bookkeeping only; not worth a viewer row each.
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"recorded\":" << recorded_ << ",\"dropped\":" << dropped_ << "}}";
  return os.str();
}

std::vector<PacketTracer::Breakdown> PacketTracer::breakdown() const {
  std::vector<Breakdown> out(4);
  std::vector<double> queue_sum(4, 0.0), transit_sum(4, 0.0),
      retx_sum(4, 0.0);
  std::unordered_map<std::uint64_t, Span> spans;
  for (const TraceEvent& e : events()) {
    const std::uint64_t key = span_key(e.net, e.pkt);
    const auto t = static_cast<std::size_t>(e.type) & 3;
    switch (e.kind) {
      case TraceEventKind::kNiEnqueue: {
        Span s;
        s.enqueue = e.cycle;
        s.has_enqueue = true;
        spans[key] = s;
        break;
      }
      case TraceEventKind::kInject: {
        Span& s = spans[key];
        if (!s.has_inject) {
          s.inject = e.cycle;
          s.has_inject = true;
        }
        break;
      }
      case TraceEventKind::kDeliver: {
        auto it = spans.find(key);
        if (it != spans.end() && it->second.has_enqueue &&
            it->second.has_inject) {
          const Span& s = it->second;
          queue_sum[t] += static_cast<double>(s.inject - s.enqueue);
          // A retransmitted span's entire transit is recovery overhead: the
          // first incarnation already crossed the network once, so without
          // the fault this time would not exist. Booking it under `retx`
          // keeps plain `transit` comparable between faulty and fault-free
          // runs.
          (s.retx ? retx_sum : transit_sum)[t] +=
              static_cast<double>(e.cycle - s.inject);
          ++out[t].delivered;
          spans.erase(it);
        }
        break;
      }
      case TraceEventKind::kDrop:
        ++out[t].drops;
        spans.erase(key);
        break;
      case TraceEventKind::kRetransmit:
        // Recorded against the re-injected incarnation right after its
        // kNiEnqueue, so the live span is the recovery copy.
        spans[key].retx = true;
        ++out[t].retransmits;
        break;
      default:
        break;
    }
  }
  for (std::size_t t = 0; t < 4; ++t) {
    if (out[t].delivered > 0) {
      out[t].mean_queue_cycles =
          queue_sum[t] / static_cast<double>(out[t].delivered);
      out[t].mean_transit_cycles =
          transit_sum[t] / static_cast<double>(out[t].delivered);
      out[t].mean_retx_cycles =
          retx_sum[t] / static_cast<double>(out[t].delivered);
    }
  }
  return out;
}

std::string PacketTracer::breakdown_report() const {
  const auto rows = breakdown();
  std::ostringstream os;
  os << "packet latency breakdown (traced window; cycles)\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-14s %10s %12s %12s %10s %8s %6s\n",
                "type", "delivered", "queue(mean)", "transit(mean)",
                "retx(mean)", "retx", "drops");
  os << buf;
  for (std::size_t t = 0; t < 4; ++t) {
    const Breakdown& b = rows[t];
    std::snprintf(buf, sizeof(buf),
                  "%-14s %10llu %12.1f %12.1f %10.1f %8llu %6llu\n",
                  packet_type_name(static_cast<PacketType>(t)),
                  static_cast<unsigned long long>(b.delivered),
                  b.mean_queue_cycles, b.mean_transit_cycles,
                  b.mean_retx_cycles,
                  static_cast<unsigned long long>(b.retransmits),
                  static_cast<unsigned long long>(b.drops));
    os << buf;
  }
  return os.str();
}

std::string PacketTracer::tail_text(std::size_t n) const {
  const std::vector<TraceEvent> evs = events();
  const std::size_t start = evs.size() > n ? evs.size() - n : 0;
  std::ostringstream os;
  for (std::size_t i = start; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    os << "  cycle " << e.cycle << " " << net_name(e.net) << " pkt " << e.pkt
       << " " << packet_type_name(static_cast<PacketType>(e.type)) << " "
       << trace_event_kind_name(e.kind) << " node " << e.node;
    if (e.aux >= 0) os << " aux " << e.aux;
    os << "\n";
  }
  return os.str();
}

}  // namespace arinoc::obs
