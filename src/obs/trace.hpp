// Packet-lifecycle tracer (observability subsystem, layer 1).
//
// A PacketTracer is a fixed-capacity ring buffer of small binary events
// covering the whole life of a packet: NI enqueue, VC allocation, router
// injection, per-hop link traversal, ejection/reassembly, delivery or drop,
// and the fault-recovery path (corruption, retransmission). Components hold
// a nullable tracer pointer; with no tracer attached every hook is a single
// branch on a null pointer, the simulation state is untouched, and results
// are bit-identical to an untraced run (guarded by tests and a bench).
//
// Exporters:
//  * to_chrome_json() — Chrome trace-event JSON ("traceEvents" array),
//    loadable in Perfetto / chrome://tracing. Delivered packets become "X"
//    complete events (pid = network, tid = source node, ts/dur in cycles);
//    hops, corruption, retransmissions and drops become "i" instant events.
//  * breakdown_report() — per-PacketType latency decomposition (NI queueing
//    vs network transit vs retransmission overhead) plus retransmission
//    counts, reconstructed from the event stream.
//  * tail_text(n) — the last n events as text, appended to watchdog trip
//    dumps so a deadlock diagnosis shows what last moved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "noc/packet.hpp"

namespace arinoc::obs {

enum class TraceEventKind : std::uint8_t {
  kNiEnqueue,   ///< Packet accepted by the source NI (latency clock starts).
  kVcAlloc,     ///< Head won output-VC allocation at a router (aux = port).
  kInject,      ///< Head flit entered the router injection buffer (aux = vc).
  kLinkHop,     ///< Head flit staged onto a router-to-router link (aux = dir).
  kEject,       ///< Tail flit reassembled at the destination NI.
  kDeliver,     ///< Packet handed to its sink; retired from the arena.
  kDrop,        ///< Packet dropped at reassembly (aux = RxOutcome).
  kRetransmit,  ///< Recovery re-injection of a tracked packet (aux = retry#).
  kCorrupt,     ///< A flit was corrupted crossing a link (aux = dir).
};
inline constexpr std::size_t kNumTraceEventKinds = 9;

const char* trace_event_kind_name(TraceEventKind k);

/// One binary trace record. 16 bytes; everything needed to interpret it
/// without chasing the (recycled) packet arena slot afterwards.
struct TraceEvent {
  Cycle cycle = 0;
  PacketId pkt = kInvalidPacket;
  std::int16_t node = -1;
  std::int16_t aux = -1;
  TraceEventKind kind = TraceEventKind::kNiEnqueue;
  std::uint8_t type = 0;  ///< PacketType.
  std::uint8_t net = 0;   ///< 0 = request network, 1 = reply network.
};

class PacketTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit PacketTracer(std::size_t capacity = kDefaultCapacity);

  /// Appends one event; O(1), overwrites the oldest event when full.
  void record(TraceEventKind kind, std::uint8_t net, Cycle cycle,
              PacketId pkt, PacketType type, NodeId node, int aux) {
    TraceEvent& e = ring_[head_];
    e.cycle = cycle;
    e.pkt = pkt;
    e.node = static_cast<std::int16_t>(node);
    e.aux = static_cast<std::int16_t>(aux);
    e.kind = kind;
    e.type = static_cast<std::uint8_t>(type);
    e.net = net;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
    ++recorded_;
  }

  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  std::uint64_t recorded() const { return recorded_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  void clear();

  /// Chrome trace-event JSON (deterministic for a deterministic run).
  std::string to_chrome_json() const;

  /// Per-PacketType decomposition over the buffered window.
  struct Breakdown {
    std::uint64_t delivered = 0;     ///< Packets with a full enqueue->deliver
                                     ///< span inside the window.
    double mean_queue_cycles = 0.0;  ///< NI enqueue -> router injection.
    double mean_transit_cycles = 0.0;  ///< Injection -> delivery, first
                                       ///< incarnations only.
    double mean_retx_cycles = 0.0;  ///< Recovery re-injections' transit time
                                    ///< (over all delivered packets of the
                                    ///< type) — fault overhead, kept out of
                                    ///< `transit` so faulty and fault-free
                                    ///< runs stay comparable.
    std::uint64_t retransmits = 0;
    std::uint64_t drops = 0;
  };
  /// Indexed by PacketType (4 entries).
  std::vector<Breakdown> breakdown() const;
  /// The same decomposition as an aligned text table.
  std::string breakdown_report() const;

  /// The last `n` buffered events as text lines (watchdog trip dumps).
  std::string tail_text(std::size_t n) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< Next write position.
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace arinoc::obs
