#include "obs/selfprof.hpp"

#include <sstream>

namespace arinoc::obs {

const char* prof_phase_name(ProfPhase p) {
  switch (p) {
    case ProfPhase::kFrontend: return "frontend";
    case ProfPhase::kCores: return "cores";
    case ProfPhase::kMcs: return "mcs";
    case ProfPhase::kInjectNi: return "inject_ni";
    case ProfPhase::kNetworks: return "networks";
    case ProfPhase::kEjectNi: return "eject_ni";
    case ProfPhase::kSampling: return "sampling";
    case ProfPhase::kWatchdog: return "watchdog";
  }
  return "?";
}

const char* prof_group_name(ProfGroup g) {
  switch (g) {
    case ProfGroup::kCores: return "cores";
    case ProfGroup::kMcs: return "mcs";
    case ProfGroup::kInjectNis: return "inject_nis";
    case ProfGroup::kEjectNis: return "eject_nis";
    case ProfGroup::kRouters: return "routers";
  }
  return "?";
}

SelfProfiler::SelfProfiler(Cycle epoch_cycles)
    : epoch_(epoch_cycles == 0 ? kDefaultEpoch : epoch_cycles) {}

void SelfProfiler::on_cycle_end(Cycle now) {
  if (!started_) {
    // First observed cycle anchors the epoch grid (warmup resets shift it).
    epoch_start_ = now - (now % epoch_);
    started_ = true;
  }
  if (now + 1 >= epoch_start_ + epoch_) {
    cur_.index = epochs_.size();
    cur_.start_cycle = epoch_start_;
    cur_.end_cycle = now + 1;
    epochs_.push_back(cur_);
    cur_ = Epoch{};
    epoch_start_ = now + 1;
  }
}

void SelfProfiler::finish(Cycle now) {
  if (!started_ || now <= epoch_start_) return;
  bool any = false;
  for (const std::uint64_t c : cur_.calls) any = any || c != 0;
  for (const std::uint64_t c : cur_.capacity) any = any || c != 0;
  if (!any) return;
  cur_.index = epochs_.size();
  cur_.start_cycle = epoch_start_;
  cur_.end_cycle = now;
  epochs_.push_back(cur_);
  cur_ = Epoch{};
  epoch_start_ = now;
}

std::string SelfProfiler::to_jsonl() const {
  std::ostringstream os;
  for (const Epoch& e : epochs_) {
    os << "{\"schema\": \"arinoc-selfprof-v1\", \"epoch\": " << e.index
       << ", \"start_cycle\": " << e.start_cycle
       << ", \"end_cycle\": " << e.end_cycle << ", \"cycles\": "
       << (e.end_cycle - e.start_cycle) << ", \"wall_ns\": {";
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumProfPhases; ++i) {
      os << (i ? ", " : "") << '"'
         << prof_phase_name(static_cast<ProfPhase>(i))
         << "\": " << e.wall_ns[i];
      total += e.wall_ns[i];
    }
    os << "}, \"wall_ns_total\": " << total << ", \"awake\": {";
    for (std::size_t i = 0; i < kNumProfGroups; ++i) {
      os << (i ? ", " : "") << '"'
         << prof_group_name(static_cast<ProfGroup>(i))
         << "\": " << e.awake[i];
    }
    os << "}, \"capacity\": {";
    for (std::size_t i = 0; i < kNumProfGroups; ++i) {
      os << (i ? ", " : "") << '"'
         << prof_group_name(static_cast<ProfGroup>(i))
         << "\": " << e.capacity[i];
    }
    os << "}}\n";
  }
  return os.str();
}

void SelfProfiler::clear() {
  epochs_.clear();
  cur_ = Epoch{};
  started_ = false;
  epoch_start_ = 0;
}

}  // namespace arinoc::obs
