// Periodic telemetry sampler (observability subsystem, layer 2).
//
// A TelemetrySampler turns the simulator's end-of-run aggregates into a
// time series: every `interval` cycles the owner (GpgpuSim) computes one
// TelemetrySample over the window just ended — rates from counter deltas,
// occupancies as instantaneous probes — and pushes it here. The sampler
// itself is passive storage plus exporters (JSONL, one object per line, and
// CSV with the same columns), so it never perturbs simulation state and
// costs nothing when no interval is configured.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace arinoc::obs {

/// One telemetry window. Rates are per-cycle over the window; occupancy
/// fields are instantaneous probes taken at the window's closing cycle.
struct TelemetrySample {
  Cycle cycle = 0;   ///< Cycle at which the window closed.
  Cycle window = 0;  ///< Cycles covered (last window may be shorter).

  double ipc = 0.0;  ///< Warp instructions retired / window, all cores.

  double request_inject_rate = 0.0;   ///< Packets entering the request net.
  double request_deliver_rate = 0.0;  ///< Packets delivered by it.
  double reply_inject_rate = 0.0;     ///< Packets entering the reply fabric.
  double reply_deliver_rate = 0.0;    ///< Packets delivered by it.

  double request_link_util = 0.0;  ///< Flit-movements / (links * window).
  double reply_link_util = 0.0;

  double ni_occupancy_pkts = 0.0;          ///< Reply inject-NI packets, now.
  std::uint64_t buffered_flits = 0;        ///< Flits in router VCs, both nets.
  double mc_stall_rate = 0.0;              ///< MC stall cycles / (MCs * window).
  std::uint64_t live_packets = 0;          ///< Outstanding memory transactions.
  std::uint64_t retransmits = 0;           ///< Retransmissions this window.
  std::uint64_t flits_corrupted = 0;       ///< Corruption events this window.
  int degrade_state = 0;                   ///< DegradeState at window close.
  std::uint64_t requests_shed = 0;         ///< Requests shed this window.
  std::uint64_t pre_trip_warnings = 0;     ///< Watchdog warnings this window.
};

class TelemetrySampler {
 public:
  explicit TelemetrySampler(Cycle interval) : interval_(interval) {}

  Cycle interval() const { return interval_; }

  void push(const TelemetrySample& s) { samples_.push_back(s); }
  void clear() { samples_.clear(); }

  const std::vector<TelemetrySample>& samples() const { return samples_; }

  /// All samples, one JSON object per line (JSONL).
  std::string to_jsonl() const;
  /// The most recent sample as a single JSON line; "" when empty.
  std::string last_jsonl() const;
  /// Header row + one CSV row per sample (same columns as the JSONL keys).
  std::string to_csv() const;

 private:
  Cycle interval_;
  std::vector<TelemetrySample> samples_;
};

}  // namespace arinoc::obs
