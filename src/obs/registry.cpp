#include "obs/registry.hpp"

#include <cstdio>
#include <sstream>

namespace arinoc::obs {

std::uint64_t CounterRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second();
}

double CounterRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second();
}

std::string CounterRegistry::to_json() const {
  // Merge the three maps into one name-sorted object. Names are generated
  // internally (no quoting hazards), values are numbers, so the JSON can be
  // assembled directly.
  std::map<std::string, std::string> entries;
  char buf[256];
  for (const auto& [name, fn] : counters_) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(fn()));
    entries[name] = buf;
  }
  for (const auto& [name, fn] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%.6g", fn());
    entries[name] = buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"mean\":%.6g,\"p50\":%.6g,"
                  "\"p95\":%.6g,\"p99\":%.6g,\"max\":%.6g}",
                  static_cast<unsigned long long>(h->count()), h->mean(),
                  h->p50(), h->p95(), h->p99(), h->max());
    entries[name] = buf;
  }
  std::ostringstream os;
  os << "{";
  const char* sep = "";
  for (const auto& [name, value] : entries) {
    os << sep << "\n  \"" << name << "\": " << value;
    sep = ",";
  }
  os << "\n}";
  return os.str();
}

}  // namespace arinoc::obs
