// Self-contained HTML dashboard for a LatencyAttributor: fabric drawn as an
// SVG with per-link congestion heat, a time slider over the attribution
// windows, and the top-k bottleneck table. Everything (data + script) is
// inlined so the file opens from disk with no server and no network.
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/attr.hpp"
#include "topo/graph.hpp"
#include "topo/layout.hpp"

namespace arinoc::obs {

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string attr_html_document(const LatencyAttributor& attr,
                               const topo::FabricGraph* graph,
                               std::size_t top_k) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
        "<title>arinoc latency attribution</title>\n<style>\n"
        "body{font-family:system-ui,sans-serif;margin:16px;background:#fafafa}"
        "\nh1{font-size:18px}h2{font-size:15px}\n"
        "table{border-collapse:collapse;font-size:13px}\n"
        "td,th{border:1px solid #ccc;padding:3px 8px;text-align:left}\n"
        "th{background:#eee}\n"
        ".bar{height:10px;background:#c33;display:inline-block}\n"
        "#fabric{background:#fff;border:1px solid #ccc}\n"
        ".node{fill:#888;stroke:#333}.mc{fill:#d62}.cc{fill:#68a}"
        ".rtr{fill:#aaa}\n"
        ".lbl{font-size:9px;fill:#222;text-anchor:middle}\n"
        "#meta{color:#555;font-size:13px}\n"
        "</style>\n</head>\n<body>\n<h1>arinoc latency attribution</h1>\n";

  os << "<p id=\"meta\">window = " << attr.window_cycles()
     << " cycles &middot; delivered = " << attr.delivered()
     << " &middot; dropped = " << attr.dropped()
     << " &middot; conservation violations = "
     << attr.conservation_violations() << "</p>\n";

  // ---- Per-net stage totals ----
  os << "<h2>Stage totals (delivered packets)</h2>\n<table>\n<tr><th>net"
        "</th>";
  for (std::size_t i = 0; i < kNumAttrStages; ++i) {
    os << "<th>" << attr_stage_name(static_cast<AttrStage>(i)) << "</th>";
  }
  os << "<th>e2e</th></tr>\n";
  for (std::uint8_t net = 0; net < 2; ++net) {
    os << "<tr><td>" << (net == 0 ? "request" : "reply") << "</td>";
    for (std::size_t i = 0; i < kNumAttrStages; ++i) {
      os << "<td>" << attr.stage_total(net, static_cast<AttrStage>(i))
         << "</td>";
    }
    os << "<td>" << attr.e2e_total(net) << "</td></tr>\n";
  }
  os << "</table>\n";

  // ---- Bottleneck table ----
  const std::vector<BottleneckEntry> top = attr.bottlenecks(top_k);
  os << "<h2>Top bottlenecks</h2>\n<table>\n<tr><th>#</th><th>location"
        "</th><th>cycles</th><th>count</th><th>share</th><th></th></tr>\n";
  for (std::size_t i = 0; i < top.size(); ++i) {
    const BottleneckEntry& e = top[i];
    char pct[32];
    std::snprintf(pct, sizeof pct, "%.1f%%", e.share * 100.0);
    os << "<tr><td>" << (i + 1) << "</td><td>"
       << html_escape(attr.entry_label(e)) << "</td><td>" << e.cycles
       << "</td><td>" << e.count << "</td><td>" << pct
       << "</td><td><span class=\"bar\" style=\"width:"
       << static_cast<int>(e.share * 200.0) << "px\"></span></td></tr>\n";
  }
  os << "</table>\n";

  // ---- Fabric heatmap with time slider ----
  const std::vector<AttrWindowCell> series = attr.window_series();
  std::uint32_t max_window = 0;
  for (const AttrWindowCell& c : series) {
    max_window = std::max(max_window, c.window);
  }
  if (graph != nullptr) {
    const std::vector<std::pair<double, double>> pos =
        topo::node_layout(*graph);
    double minx = 0, miny = 0, maxx = 0, maxy = 0;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      if (i == 0) {
        minx = maxx = pos[i].first;
        miny = maxy = pos[i].second;
      } else {
        minx = std::min(minx, pos[i].first);
        maxx = std::max(maxx, pos[i].first);
        miny = std::min(miny, pos[i].second);
        maxy = std::max(maxy, pos[i].second);
      }
    }
    const double scale = 70.0, pad = 40.0;
    const double width = (maxx - minx) * scale + 2 * pad;
    const double height = (maxy - miny) * scale + 2 * pad;
    auto px = [&](std::size_t i) {
      return (pos[i].first - minx) * scale + pad;
    };
    auto py = [&](std::size_t i) {
      return (pos[i].second - miny) * scale + pad;
    };

    os << "<h2>Fabric heatmap (in-router wait per link)</h2>\n"
          "<p>net <select id=\"net\"><option value=\"0\">request</option>"
          "<option value=\"1\" selected>reply</option></select>\n"
          " window <input type=\"range\" id=\"win\" min=\"0\" max=\""
       << max_window << "\" value=\"0\"> <span id=\"winlbl\"></span>"
          " <label><input type=\"checkbox\" id=\"all\" checked> all windows"
          "</label></p>\n";
    os << "<svg id=\"fabric\" width=\"" << static_cast<int>(width)
       << "\" height=\"" << static_cast<int>(height) << "\">\n";
    // Links first (under the nodes). One line per directed link; heat is
    // applied by the script via a data-link key "node:port".
    for (const topo::GraphLink& l : graph->links) {
      const std::size_t a = static_cast<std::size_t>(l.src);
      const std::size_t b = static_cast<std::size_t>(l.dst);
      if (a >= pos.size() || b >= pos.size()) continue;
      os << "<line class=\"link\" data-k=\"" << l.src << ":" << l.src_port
         << "\" x1=\"" << px(a) << "\" y1=\"" << py(a) << "\" x2=\""
         << px(b) << "\" y2=\"" << py(b)
         << "\" stroke=\"#ddd\" stroke-width=\"2\"><title></title></line>\n";
    }
    for (std::size_t i = 0; i < pos.size(); ++i) {
      const topo::NodeRole r = graph->roles[i];
      const char* cls = r == topo::NodeRole::kMC
                            ? "mc"
                            : (r == topo::NodeRole::kCC ? "cc" : "rtr");
      os << "<circle class=\"node " << cls << "\" data-n=\"" << i
         << "\" cx=\"" << px(i) << "\" cy=\"" << py(i)
         << "\" r=\"9\"><title></title></circle>\n"
         << "<text class=\"lbl\" x=\"" << px(i) << "\" y=\""
         << py(i) + 3.5 << "\">" << topo::role_name(r) << i << "</text>\n";
    }
    os << "</svg>\n";
  } else {
    os << "<p>(no fabric graph attached; heatmap omitted)</p>\n";
  }

  // ---- Inline data + script ----
  os << "<script>\nconst SERIES = [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const AttrWindowCell& c = series[i];
    os << (i ? "," : "") << "[" << c.window << ","
       << static_cast<int>(c.net) << "," << c.node << "," << c.port << ","
       << c.vc << "," << static_cast<int>(c.type) << "," << c.vc_wait << ","
       << c.sw_wait << "," << c.count << "]";
  }
  os << "];\n";
  os << R"JS(
// SERIES rows: [window, net, node, port, vc, type, vc_wait, sw_wait, count].
// Heat per link = (vc_wait + sw_wait) summed over VCs and types for the
// selected net and window (or all windows); port -1 = ejection, drawn on
// the node itself.
const netSel = document.getElementById('net');
const winSel = document.getElementById('win');
const winLbl = document.getElementById('winlbl');
const allChk = document.getElementById('all');
function heat(t, max) {
  // white -> yellow -> red
  const f = max > 0 ? t / max : 0;
  const g = Math.round(255 * (1 - Math.max(0, f - 0.5) * 2));
  const b = Math.round(255 * Math.max(0, 1 - f * 2));
  return 'rgb(255,' + g + ',' + b + ')';
}
function render() {
  if (!netSel) return;
  const net = +netSel.value;
  const all = allChk.checked;
  const win = +winSel.value;
  winSel.disabled = all;
  winLbl.textContent = all ? '' : 'w' + win;
  const linkTot = {}, nodeTot = {};
  let max = 0;
  for (const r of SERIES) {
    if (r[1] !== net) continue;
    if (!all && r[0] !== win) continue;
    const t = r[6] + r[7];
    if (r[3] >= 0) {
      const k = r[2] + ':' + r[3];
      linkTot[k] = (linkTot[k] || 0) + t;
      max = Math.max(max, linkTot[k]);
    } else {
      nodeTot[r[2]] = (nodeTot[r[2]] || 0) + t;
    }
  }
  for (const el of document.querySelectorAll('.link')) {
    const t = linkTot[el.dataset.k] || 0;
    el.setAttribute('stroke', t > 0 ? heat(t, max) : '#ddd');
    el.setAttribute('stroke-width', t > 0 ? 2 + 4 * (t / max) : 2);
    el.querySelector('title').textContent =
        el.dataset.k + ': ' + t + ' wait cycles';
  }
  for (const el of document.querySelectorAll('.node')) {
    const t = nodeTot[el.dataset.n] || 0;
    el.setAttribute('stroke-width', t > 0 ? 3 : 1);
    el.setAttribute('stroke', t > 0 ? '#c00' : '#333');
    el.querySelector('title').textContent =
        'node ' + el.dataset.n + ': ' + t + ' ejection-side wait cycles';
  }
}
if (netSel) {
  netSel.onchange = winSel.oninput = allChk.onchange = render;
  render();
}
)JS";
  os << "</script>\n</body>\n</html>\n";
  return os.str();
}

}  // namespace arinoc::obs
