#include "obs/attr.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "topo/graph.hpp"

namespace arinoc::obs {

const char* attr_stage_name(AttrStage s) {
  switch (s) {
    case AttrStage::kNiQueue: return "ni_queue";
    case AttrStage::kVcWait: return "vc_wait";
    case AttrStage::kSwWait: return "sw_wait";
    case AttrStage::kLink: return "link";
    case AttrStage::kEject: return "eject";
    case AttrStage::kRetx: return "retx";
  }
  return "?";
}

LatencyAttributor::LatencyAttributor(Cycle window_cycles,
                                     std::size_t packet_capacity)
    : window_(window_cycles == 0 ? kDefaultWindow : window_cycles),
      packet_capacity_(packet_capacity == 0 ? 1 : packet_capacity) {
  ring_.resize(packet_capacity_);
  if ((window_ & (window_ - 1)) == 0) {
    win_shift_ = 0;
    for (Cycle w = window_; w > 1; w >>= 1) ++win_shift_;
  }
}

void LatencyAttributor::add_loc(std::uint8_t net, AttrStage stage,
                                NodeId node, int port, int vc,
                                std::uint64_t cycles) {
  LocSums& s = loc_[loc_key(net, stage, node, port, vc)];
  s.cycles += cycles;
  ++s.count;
  attributed_net_[net] += cycles;
}

void LatencyAttributor::on_ni_enqueue(std::uint8_t net, PacketId id,
                                      PacketType type, NodeId node,
                                      Cycle now) {
  std::vector<Live>& v = live_[net];
  if (id >= v.size()) v.resize(static_cast<std::size_t>(id) + 64);
  Live& s = v[id];
  if (!s.active) ++inflight_;
  s = Live{};
  s.active = true;
  s.origin = now;
  s.last = now;
  s.src = node;
  s.node = node;
  s.type = type;
}

void LatencyAttributor::on_retransmit(std::uint8_t net, PacketId id,
                                      Cycle first_accept, Cycle now) {
  Live* sp = find_live(net, id);
  if (sp == nullptr) return;
  Live& s = *sp;
  // The original incarnation was accepted at first_accept; everything up to
  // this re-acceptance — flight, drop, NACK/timeout, backoff — is recovery
  // overhead. Re-basing the origin keeps the sum telescoping to the true
  // end-to-end latency since the first attempt.
  const std::uint64_t overhead = now - first_accept;
  s.origin = first_accept;
  s.stage[static_cast<std::size_t>(AttrStage::kRetx)] += overhead;
  add_loc(net, AttrStage::kRetx, s.src, -1, -1, overhead);
}

void LatencyAttributor::on_inject(std::uint8_t net, PacketId id, NodeId node,
                                  Cycle now) {
  Live* sp = find_live(net, id);
  if (sp == nullptr) return;
  Live& s = *sp;
  const std::uint64_t d = now - s.last;
  s.stage[static_cast<std::size_t>(AttrStage::kNiQueue)] += d;
  add_loc(net, AttrStage::kNiQueue, node, -1, -1, d);
  s.last = now;
  s.node = node;
  s.hop_vc_wait = 0;
  s.pending_port = -1;
  s.pending_vc = -1;
}

void LatencyAttributor::on_head_arrive(std::uint8_t net, PacketId id,
                                       NodeId node, Cycle now) {
  Live* sp = find_live(net, id);
  if (sp == nullptr) return;
  Live& s = *sp;
  const std::uint64_t d = now - s.last;
  s.stage[static_cast<std::size_t>(AttrStage::kLink)] += d;
  // The wire the head just crossed is the (upstream node, output port) pair
  // granted at the previous router.
  add_loc(net, AttrStage::kLink, s.node, s.pending_port, s.pending_vc, d);
  s.last = now;
  s.node = node;
  s.hop_vc_wait = 0;
  s.pending_port = -1;
  s.pending_vc = -1;
}

void LatencyAttributor::on_vc_alloc(std::uint8_t net, PacketId id,
                                    NodeId node, int out_port, int out_vc,
                                    Cycle now) {
  Live* sp = find_live(net, id);
  if (sp == nullptr) return;
  Live& s = *sp;
  const std::uint64_t d = now - s.last;
  s.stage[static_cast<std::size_t>(AttrStage::kVcWait)] += d;
  s.hop_vc_wait = d;
  s.pending_port = out_port;
  s.pending_vc = out_vc;
  add_loc(net, AttrStage::kVcWait, node, out_port, out_vc, d);
  s.last = now;
}

void LatencyAttributor::on_link_depart(std::uint8_t net, PacketId id,
                                       NodeId node, int out_port, Cycle now) {
  Live* sp = find_live(net, id);
  if (sp == nullptr) return;
  Live& s = *sp;
  const std::uint64_t d = now - s.last;
  s.stage[static_cast<std::size_t>(AttrStage::kSwWait)] += d;
  add_loc(net, AttrStage::kSwWait, node, out_port, s.pending_vc, d);
  WinSums& w = win_cell(window_index(now),
                        win_key(window_index(now), net, node, out_port,
                                s.pending_vc, s.type));
  w.vc_wait += s.hop_vc_wait;
  w.sw_wait += d;
  ++w.count;
  s.last = now;
}

void LatencyAttributor::on_eject_start(std::uint8_t net, PacketId id,
                                       NodeId node, Cycle now) {
  Live* sp = find_live(net, id);
  if (sp == nullptr) return;
  Live& s = *sp;
  const std::uint64_t d = now - s.last;
  s.stage[static_cast<std::size_t>(AttrStage::kSwWait)] += d;
  // port -1 marks the ejection output (it is not a link).
  add_loc(net, AttrStage::kSwWait, node, -1, -1, d);
  WinSums& w = win_cell(window_index(now),
                        win_key(window_index(now), net, node, -1,
                                s.pending_vc, s.type));
  w.vc_wait += s.hop_vc_wait;
  w.sw_wait += d;
  ++w.count;
  s.last = now;
  s.node = node;
}

void LatencyAttributor::on_deliver(std::uint8_t net, PacketId id, Cycle now) {
  Live* sp = find_live(net, id);
  if (sp == nullptr) return;
  Live& s = *sp;
  const std::uint64_t d = now - s.last;
  s.stage[static_cast<std::size_t>(AttrStage::kEject)] += d;
  add_loc(net, AttrStage::kEject, s.node, -1, -1, d);

  PacketAttr a;
  a.pkt = id;
  a.net = net;
  a.type = s.type;
  a.src = s.src;
  a.dest = s.node;
  a.origin = s.origin;
  a.delivered = now;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kNumAttrStages; ++i) {
    a.stage[i] = s.stage[i];
    sum += s.stage[i];
    stage_totals_[net][i] += s.stage[i];
  }
  if (sum != now - s.origin) ++violations_;
  e2e_totals_[net] += now - s.origin;
  ++delivered_net_[net];
  ++delivered_;
  TypeSums& t = type_sums_[net][static_cast<std::size_t>(s.type)];
  ++t.delivered;
  t.e2e += now - s.origin;
  for (std::size_t i = 0; i < kNumAttrStages; ++i) t.stage[i] += s.stage[i];

  ring_[ring_head_] = a;
  ring_head_ = ring_head_ + 1 == ring_.size() ? 0 : ring_head_ + 1;
  if (ring_size_ < ring_.size()) ++ring_size_;
  s.active = false;
  --inflight_;
}

void LatencyAttributor::on_drop(std::uint8_t net, PacketId id, Cycle now) {
  (void)now;
  Live* sp = find_live(net, id);
  if (sp == nullptr) return;
  ++dropped_;
  sp->active = false;
  --inflight_;
}

std::vector<PacketAttr> LatencyAttributor::packets() const {
  std::vector<PacketAttr> out;
  out.reserve(ring_size_);
  const std::size_t start =
      ring_size_ < ring_.size() ? 0 : ring_head_;  // Oldest surviving entry.
  for (std::size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<BottleneckEntry> LatencyAttributor::bottlenecks(
    std::size_t k) const {
  std::vector<std::pair<std::uint64_t, LocSums>> rows;
  rows.reserve(loc_.size());
  loc_.for_each([&rows](std::uint64_t key, const LocSums& sums) {
    rows.push_back({key, sums});
  });
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.cycles != b.second.cycles) {
      return a.second.cycles > b.second.cycles;
    }
    return a.first < b.first;  // Deterministic tie-break on the packed key.
  });
  if (rows.size() > k) rows.resize(k);

  std::vector<BottleneckEntry> out;
  out.reserve(rows.size());
  for (const auto& [key, sums] : rows) {
    BottleneckEntry e;
    e.net = static_cast<std::uint8_t>((key >> 39) & 1);
    e.stage = static_cast<AttrStage>((key >> 36) & 0x7);
    e.node = static_cast<NodeId>((key >> 16) & 0xFFFFF);
    e.port = static_cast<int>((key >> 8) & 0xFF) - 1;
    e.vc = static_cast<int>(key & 0xFF) - 1;
    e.cycles = sums.cycles;
    e.count = sums.count;
    e.share = attributed_net_[e.net] == 0
                  ? 0.0
                  : static_cast<double>(sums.cycles) /
                        static_cast<double>(attributed_net_[e.net]);
    out.push_back(e);
  }
  return out;
}

std::vector<AttrWindowCell> LatencyAttributor::window_series() const {
  std::vector<std::pair<std::uint64_t, WinSums>> rows = win_done_;
  rows.reserve(rows.size() + win_cur_.size());
  win_cur_.for_each([&rows](std::uint64_t key, const WinSums& sums) {
    rows.push_back({key, sums});
  });
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Merge duplicate keys (a window that reappeared after being flushed).
  std::size_t w_out = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (w_out > 0 && rows[w_out - 1].first == rows[i].first) {
      rows[w_out - 1].second.vc_wait += rows[i].second.vc_wait;
      rows[w_out - 1].second.sw_wait += rows[i].second.sw_wait;
      rows[w_out - 1].second.count += rows[i].second.count;
    } else {
      rows[w_out++] = rows[i];
    }
  }
  rows.resize(w_out);
  std::vector<AttrWindowCell> out;
  out.reserve(rows.size());
  for (const auto& [key, w] : rows) {
    AttrWindowCell c;
    c.window = static_cast<std::uint32_t>(key >> 39);
    c.net = static_cast<std::uint8_t>((key >> 38) & 1);
    c.node = static_cast<NodeId>((key >> 18) & 0xFFFFF);
    c.port = static_cast<int>((key >> 10) & 0xFF) - 1;
    c.vc = static_cast<int>((key >> 2) & 0xFF) - 1;
    c.type = static_cast<PacketType>(key & 0x3);
    c.vc_wait = w.vc_wait;
    c.sw_wait = w.sw_wait;
    c.count = w.count;
    out.push_back(c);
  }
  return out;
}

std::string LatencyAttributor::node_label(std::uint8_t net,
                                          NodeId node) const {
  (void)net;
  if (node == kInvalidNode) return "?";
  if (has_graph_ && node >= 0 && node < graph_.num_nodes()) {
    const topo::NodeRole r = graph_.roles[static_cast<std::size_t>(node)];
    const char* prefix = r == topo::NodeRole::kMC
                             ? "mc"
                             : (r == topo::NodeRole::kCC ? "cc" : "rtr");
    return prefix + std::to_string(node);
  }
  return "node" + std::to_string(node);
}

std::string LatencyAttributor::entry_label(const BottleneckEntry& e) const {
  std::ostringstream os;
  os << (e.net == 0 ? "request" : "reply") << " "
     << attr_stage_name(e.stage) << " at " << node_label(e.net, e.node);
  if (e.port >= 0) {
    // Resolve the link's downstream endpoint when the graph is available.
    NodeId dst = kInvalidNode;
    if (has_graph_) {
      for (const topo::GraphLink& l : graph_.links) {
        if (l.src == e.node && l.src_port == e.port) {
          dst = l.dst;
          break;
        }
      }
    }
    if (dst != kInvalidNode) {
      os << "->" << node_label(e.net, dst);
    } else {
      os << " port" << e.port;
    }
  }
  if (e.vc >= 0) os << " vc" << e.vc;
  return os.str();
}

std::string LatencyAttributor::top_label() const {
  const std::vector<BottleneckEntry> top = bottlenecks(1);
  if (top.empty() || top[0].cycles == 0) return {};
  char pct[32];
  std::snprintf(pct, sizeof pct, " %.1f%%", top[0].share * 100.0);
  return entry_label(top[0]) + pct;
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 1e15 && v > -1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string LatencyAttributor::to_json(std::size_t top_k) const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"arinoc-attr-v1\",\n  \"window_cycles\": "
     << window_ << ",\n  \"stages\": [";
  for (std::size_t i = 0; i < kNumAttrStages; ++i) {
    os << (i ? ", " : "") << '"'
       << attr_stage_name(static_cast<AttrStage>(i)) << '"';
  }
  os << "],\n  \"conservation\": {\"delivered\": " << delivered_
     << ", \"violations\": " << violations_ << ", \"dropped\": " << dropped_
     << ", \"inflight\": " << inflight() << "},\n  \"nets\": [\n";
  for (std::uint8_t net = 0; net < 2; ++net) {
    os << "    {\"net\": \"" << (net == 0 ? "request" : "reply")
       << "\", \"delivered\": " << delivered_net_[net]
       << ", \"e2e_cycles\": " << e2e_totals_[net]
       << ", \"stage_totals\": {";
    for (std::size_t i = 0; i < kNumAttrStages; ++i) {
      os << (i ? ", " : "") << '"'
         << attr_stage_name(static_cast<AttrStage>(i))
         << "\": " << stage_totals_[net][i];
    }
    os << "}, \"by_type\": [";
    bool first = true;
    for (std::size_t t = 0; t < 4; ++t) {
      const TypeSums& ts = type_sums_[net][t];
      if (ts.delivered == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "{\"type\": \"" << packet_type_name(static_cast<PacketType>(t))
         << "\", \"delivered\": " << ts.delivered
         << ", \"e2e_cycles\": " << ts.e2e << ", \"mean_e2e\": "
         << fmt_double(static_cast<double>(ts.e2e) /
                       static_cast<double>(ts.delivered))
         << ", \"stages\": {";
      for (std::size_t i = 0; i < kNumAttrStages; ++i) {
        os << (i ? ", " : "") << '"'
           << attr_stage_name(static_cast<AttrStage>(i))
           << "\": " << ts.stage[i];
      }
      os << "}}";
    }
    os << "]}" << (net == 0 ? ",\n" : "\n");
  }
  os << "  ],\n  \"bottlenecks\": [\n";
  const std::vector<BottleneckEntry> top = bottlenecks(top_k);
  for (std::size_t i = 0; i < top.size(); ++i) {
    const BottleneckEntry& e = top[i];
    os << "    {\"rank\": " << (i + 1) << ", \"net\": \""
       << (e.net == 0 ? "request" : "reply") << "\", \"stage\": \""
       << attr_stage_name(e.stage) << "\", \"node\": " << e.node
       << ", \"port\": " << e.port << ", \"vc\": " << e.vc
       << ", \"cycles\": " << e.cycles << ", \"count\": " << e.count
       << ", \"share\": " << fmt_double(e.share) << ", \"label\": \""
       << json_escape(entry_label(e)) << "\"}"
       << (i + 1 < top.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"series\": [\n";
  const std::vector<AttrWindowCell> series = window_series();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const AttrWindowCell& c = series[i];
    os << "    {\"window\": " << c.window << ", \"net\": "
       << static_cast<int>(c.net) << ", \"node\": " << c.node
       << ", \"port\": " << c.port << ", \"vc\": " << c.vc
       << ", \"type\": \"" << packet_type_name(c.type)
       << "\", \"vc_wait\": " << c.vc_wait << ", \"sw_wait\": " << c.sw_wait
       << ", \"count\": " << c.count << "}"
       << (i + 1 < series.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

void LatencyAttributor::clear() {
  live_[0].clear();
  live_[1].clear();
  inflight_ = 0;
  loc_.clear();
  win_cur_.clear();
  win_cur_window_ = 0;
  win_done_.clear();
  for (std::uint8_t net = 0; net < 2; ++net) {
    for (std::size_t i = 0; i < kNumAttrStages; ++i) {
      stage_totals_[net][i] = 0;
    }
    e2e_totals_[net] = 0;
    delivered_net_[net] = 0;
    attributed_net_[net] = 0;
    for (auto& t : type_sums_[net]) t = TypeSums{};
  }
  ring_head_ = 0;
  ring_size_ = 0;
  delivered_ = 0;
  dropped_ = 0;
  violations_ = 0;
}

}  // namespace arinoc::obs
