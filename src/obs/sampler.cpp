#include "obs/sampler.hpp"

#include <cstdio>
#include <sstream>

namespace arinoc::obs {

namespace {

std::string sample_json(const TelemetrySample& s) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"cycle\":%llu,\"window\":%llu,\"ipc\":%.6g,"
      "\"request_inject_rate\":%.6g,\"request_deliver_rate\":%.6g,"
      "\"reply_inject_rate\":%.6g,\"reply_deliver_rate\":%.6g,"
      "\"request_link_util\":%.6g,\"reply_link_util\":%.6g,"
      "\"ni_occupancy_pkts\":%.6g,\"buffered_flits\":%llu,"
      "\"mc_stall_rate\":%.6g,\"live_packets\":%llu,"
      "\"retransmits\":%llu,\"flits_corrupted\":%llu,"
      "\"degrade_state\":%d,\"requests_shed\":%llu,"
      "\"pre_trip_warnings\":%llu}",
      static_cast<unsigned long long>(s.cycle),
      static_cast<unsigned long long>(s.window), s.ipc,
      s.request_inject_rate, s.request_deliver_rate, s.reply_inject_rate,
      s.reply_deliver_rate, s.request_link_util, s.reply_link_util,
      s.ni_occupancy_pkts, static_cast<unsigned long long>(s.buffered_flits),
      s.mc_stall_rate, static_cast<unsigned long long>(s.live_packets),
      static_cast<unsigned long long>(s.retransmits),
      static_cast<unsigned long long>(s.flits_corrupted), s.degrade_state,
      static_cast<unsigned long long>(s.requests_shed),
      static_cast<unsigned long long>(s.pre_trip_warnings));
  return buf;
}

}  // namespace

std::string TelemetrySampler::to_jsonl() const {
  std::ostringstream os;
  for (const TelemetrySample& s : samples_) os << sample_json(s) << "\n";
  return os.str();
}

std::string TelemetrySampler::last_jsonl() const {
  if (samples_.empty()) return "";
  return sample_json(samples_.back());
}

std::string TelemetrySampler::to_csv() const {
  std::ostringstream os;
  os << "cycle,window,ipc,request_inject_rate,request_deliver_rate,"
        "reply_inject_rate,reply_deliver_rate,request_link_util,"
        "reply_link_util,ni_occupancy_pkts,buffered_flits,mc_stall_rate,"
        "live_packets,retransmits,flits_corrupted,degrade_state,"
        "requests_shed,pre_trip_warnings\n";
  char buf[640];
  for (const TelemetrySample& s : samples_) {
    std::snprintf(buf, sizeof(buf),
                  "%llu,%llu,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%llu,"
                  "%.6g,%llu,%llu,%llu,%d,%llu,%llu\n",
                  static_cast<unsigned long long>(s.cycle),
                  static_cast<unsigned long long>(s.window), s.ipc,
                  s.request_inject_rate, s.request_deliver_rate,
                  s.reply_inject_rate, s.reply_deliver_rate,
                  s.request_link_util, s.reply_link_util, s.ni_occupancy_pkts,
                  static_cast<unsigned long long>(s.buffered_flits),
                  s.mc_stall_rate,
                  static_cast<unsigned long long>(s.live_packets),
                  static_cast<unsigned long long>(s.retransmits),
                  static_cast<unsigned long long>(s.flits_corrupted),
                  s.degrade_state,
                  static_cast<unsigned long long>(s.requests_shed),
                  static_cast<unsigned long long>(s.pre_trip_warnings));
    os << buf;
  }
  return os.str();
}

}  // namespace arinoc::obs
