// Counter registry (observability subsystem, layer 3).
//
// Components do not push values into the registry; they register *probes* —
// callbacks that read the component's own counters on demand. Registration
// happens once (GpgpuSim::register_counters), reads happen only when a dump
// is requested, so an unused registry costs nothing per cycle and the
// registry can never drift out of sync with the component it describes.
//
// Three probe kinds mirror the usual metric taxonomy:
//  * counter   — monotonically increasing uint64 (events since reset),
//  * gauge     — instantaneous double (occupancy, depth, rate),
//  * histogram — a LogHistogram snapshot (count/mean/p50/p95/p99/max).
//
// to_json() emits one sorted object keyed by metric name, suitable for
// dumping alongside Metrics or attaching to a Watchdog trip.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace arinoc::obs {

class CounterRegistry {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;

  /// Registers a probe; a later registration under the same name replaces
  /// the earlier one (re-registration after a rebuild is fine).
  void register_counter(std::string name, CounterFn fn) {
    counters_[std::move(name)] = std::move(fn);
  }
  void register_gauge(std::string name, GaugeFn fn) {
    gauges_[std::move(name)] = std::move(fn);
  }
  /// `h` must outlive the registry (components own their histograms).
  void register_histogram(std::string name, const LogHistogram* h) {
    histograms_[std::move(name)] = h;
  }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Reads a single counter probe; 0 if the name is unknown.
  std::uint64_t counter_value(const std::string& name) const;
  /// Reads a single gauge probe; 0.0 if the name is unknown.
  double gauge_value(const std::string& name) const;

  /// Snapshot of every probe as one JSON object, keys sorted. Counters and
  /// gauges are plain numbers; histograms expand to an object with count,
  /// mean, p50, p95, p99, and max.
  std::string to_json() const;

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  // std::map keeps the dump order deterministic and sorted by name.
  std::map<std::string, CounterFn> counters_;
  std::map<std::string, GaugeFn> gauges_;
  std::map<std::string, const LogHistogram*> histograms_;
};

}  // namespace arinoc::obs
