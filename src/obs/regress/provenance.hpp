// Run provenance: every JSON artifact the simulator emits can carry an
// "arinoc-provenance-v1" block identifying exactly which simulator produced
// it from exactly which configuration, so downstream consumers (the golden
// baseline store, the trend ingester, CI) can reject foreign or stale files
// instead of silently comparing incomparable numbers.
//
// The block has two halves:
//  * identity (always emitted): schema, library version, canonical-config
//    hash, scheme/benchmark/fabric cell coordinates, seed. Deterministic —
//    two runs of the same cell produce byte-identical identity halves, which
//    is what lets the golden store demand byte-for-byte reproducibility.
//  * environment (emitted unless `deterministic`): host name, platform,
//    unix timestamp, run wall-clock seconds. Volatile by nature; baseline
//    files omit it, CLI/bench artifacts include it so a regression report
//    can say *where and when* the anchor was cut.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"

namespace arinoc::obs::regress {

inline constexpr const char kProvenanceSchema[] = "arinoc-provenance-v1";

struct Provenance {
  std::string version;      ///< kArinocVersion of the emitting binary.
  std::string config_hash;  ///< 16-hex FNV-1a-64 of Config::canonical_string.
  std::string scheme;       ///< Empty for aggregate (multi-cell) artifacts.
  std::string benchmark;    ///< Empty for aggregate artifacts.
  std::string fabric;       ///< Fabric tag ("mesh", "da2mesh", "file:<hash>").
  std::uint64_t seed = 0;

  // ---- Environment (volatile; omitted from deterministic renderings) ----
  std::string host;
  std::string platform;
  std::uint64_t unix_time_s = 0;
  double wall_s = 0.0;  ///< Run wall-clock seconds; < 0 = not measured.
};

/// 16-hex-digit FNV-1a-64 of the config's canonical string — the
/// "canonical-config hash" every provenance block and baseline key carries.
std::string config_hash_hex(const Config& cfg);

/// Version + host/platform/time filled in; cell coordinates left empty.
/// `wall_s` starts at -1 (not measured).
Provenance collect_provenance();

/// Renders the block as a single-line JSON object ("{...}", no trailing
/// newline). `deterministic` drops the environment half — used for golden
/// baseline files, which must rewrite byte-identically.
std::string provenance_json(const Provenance& p, bool deterministic = false);

}  // namespace arinoc::obs::regress
