#include "obs/regress/baseline.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/regress/json.hpp"

namespace arinoc::obs::regress {

namespace {

/// Tracked-metric comparison policies. Tolerances are "noise-aware": exact
/// for integer-derived counts (the simulator is deterministic), tight for
/// means, and progressively looser toward the tail percentiles — a p99.9
/// moves on far fewer samples than a p50, so an equal tolerance would either
/// mask mean regressions or cry wolf on tails.
constexpr MetricPolicy kPolicies[] = {
    {"cycles", MetricDirection::kNeutral, 0.0},
    {"warp_instructions", MetricDirection::kHigherBetter, 0.0},
    {"ipc", MetricDirection::kHigherBetter, 0.01},
    {"request_latency", MetricDirection::kLowerBetter, 0.02},
    {"reply_latency", MetricDirection::kLowerBetter, 0.02},
    {"request_latency_p50", MetricDirection::kLowerBetter, 0.02},
    {"request_latency_p95", MetricDirection::kLowerBetter, 0.03},
    {"request_latency_p99", MetricDirection::kLowerBetter, 0.05},
    {"request_latency_p999", MetricDirection::kLowerBetter, 0.08},
    {"reply_latency_p50", MetricDirection::kLowerBetter, 0.02},
    {"reply_latency_p95", MetricDirection::kLowerBetter, 0.03},
    {"reply_latency_p99", MetricDirection::kLowerBetter, 0.05},
    {"reply_latency_p999", MetricDirection::kLowerBetter, 0.08},
    {"e2e_latency_p50", MetricDirection::kLowerBetter, 0.02},
    {"e2e_latency_p99", MetricDirection::kLowerBetter, 0.05},
    {"e2e_latency_p999", MetricDirection::kLowerBetter, 0.08},
    {"mc_stall_cycles", MetricDirection::kLowerBetter, 0.05},
    {"energy_total_nj", MetricDirection::kLowerBetter, 0.01},
    {"goodput", MetricDirection::kHigherBetter, 0.01},
    {"offered_rate", MetricDirection::kNeutral, 0.01},
    {"recovery_rate", MetricDirection::kHigherBetter, 0.005},
};

std::string fmt_metric(double v) {
  // %.17g: shortest spelling is irrelevant, exact round trip is not — the
  // golden store's byte-for-byte contract rides on this.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Filesystem-safe slug (mirrors the exec runner's artifact naming).
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '-';
  }
  return out.empty() ? std::string("cell") : out;
}

}  // namespace

MetricPolicy metric_policy(const std::string& name) {
  for (const MetricPolicy& p : kPolicies) {
    if (name == p.name) return p;
  }
  // Attribution stage shares are fractions of a whole: any drift beyond
  // tolerance (either direction) means the latency structure moved.
  if (name.rfind("attr_", 0) == 0) {
    return {"attr_*", MetricDirection::kNeutral, 0.10};
  }
  return {"unknown", MetricDirection::kNeutral, 0.02};
}

std::vector<std::pair<std::string, double>> snapshot_metrics(
    const Metrics& m) {
  std::vector<std::pair<std::string, double>> out;
  auto add = [&out](const char* name, double v) {
    out.emplace_back(name, v);
  };
  add("cycles", static_cast<double>(m.cycles));
  add("warp_instructions", static_cast<double>(m.warp_instructions));
  add("ipc", m.ipc);
  add("request_latency", m.request_latency);
  add("reply_latency", m.reply_latency);
  add("request_latency_p50", m.request_latency_p50);
  add("request_latency_p95", m.request_latency_p95);
  add("request_latency_p99", m.request_latency_p99);
  add("request_latency_p999", m.request_latency_p999);
  add("reply_latency_p50", m.reply_latency_p50);
  add("reply_latency_p95", m.reply_latency_p95);
  add("reply_latency_p99", m.reply_latency_p99);
  add("reply_latency_p999", m.reply_latency_p999);
  add("e2e_latency_p50", m.e2e_latency_p50);
  add("e2e_latency_p99", m.e2e_latency_p99);
  add("e2e_latency_p999", m.e2e_latency_p999);
  add("mc_stall_cycles", static_cast<double>(m.mc_stall_cycles));
  add("energy_total_nj", m.energy.total_nj());
  add("goodput", m.goodput);
  add("offered_rate", m.offered_rate);
  // Recovery rate: fraction of retransmitted packets that made it. 1.0 when
  // no faults fired — "nothing to recover" is a perfect record, and keeping
  // the metric present means a fault-campaign cell can't silently drop it.
  add("recovery_rate",
      m.packets_retransmitted > 0
          ? static_cast<double>(m.packets_recovered) /
                static_cast<double>(m.packets_retransmitted)
          : 1.0);
  if (m.attr_enabled) {
    static const char* kStageKeys[6] = {"ni_queue", "vc_wait", "sw_wait",
                                        "link",     "eject",   "retx"};
    for (int i = 0; i < 6; ++i) {
      out.emplace_back(std::string("attr_request_") + kStageKeys[i],
                       m.request_stage_share[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < 6; ++i) {
      out.emplace_back(std::string("attr_reply_") + kStageKeys[i],
                       m.reply_stage_share[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

std::string BaselineEntry::file_name() const {
  return sanitize(provenance.benchmark) + "_" + sanitize(provenance.scheme) +
         "_" + sanitize(provenance.fabric) + "_" +
         sanitize(provenance.config_hash) + ".json";
}

std::string baseline_entry_json(const BaselineEntry& e) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kBaselineSchema << "\",\n"
     << "  \"provenance\": "
     << provenance_json(e.provenance, /*deterministic=*/true) << ",\n"
     << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < e.metrics.size(); ++i) {
    os << "    \"" << json_escape(e.metrics[i].first)
       << "\": " << fmt_metric(e.metrics[i].second)
       << (i + 1 < e.metrics.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
  return os.str();
}

BaselineEntry parse_baseline_entry(const std::string& text,
                                   const std::string& origin) {
  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok) {
    throw std::invalid_argument(origin + ": malformed JSON (" + parsed.error +
                                ")");
  }
  const JsonValue& doc = parsed.value;
  if (doc.string_or("schema") != kBaselineSchema) {
    throw std::invalid_argument(
        origin + ": not a baseline entry (schema '" + doc.string_or("schema") +
        "', want '" + kBaselineSchema + "')");
  }
  const JsonValue* prov = doc.find("provenance");
  const JsonValue* metrics = doc.find("metrics");
  if (prov == nullptr || !prov->is_object() || metrics == nullptr ||
      !metrics->is_object()) {
    throw std::invalid_argument(origin +
                                ": missing provenance or metrics block");
  }
  BaselineEntry e;
  e.provenance.version = prov->string_or("version");
  e.provenance.config_hash = prov->string_or("config_hash");
  e.provenance.scheme = prov->string_or("scheme");
  e.provenance.benchmark = prov->string_or("benchmark");
  e.provenance.fabric = prov->string_or("fabric");
  if (const JsonValue* seed = prov->find("seed"); seed && seed->is_number()) {
    e.provenance.seed = static_cast<std::uint64_t>(seed->as_number());
  }
  for (const auto& [name, v] : metrics->members()) {
    if (!v.is_number()) {
      throw std::invalid_argument(origin + ": metric '" + name +
                                  "' is not a number");
    }
    e.metrics.emplace_back(name, v.as_number());
  }
  return e;
}

std::string write_baseline_entry(const std::string& dir,
                                 const BaselineEntry& e) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create baseline directory '" + dir +
                             "': " + ec.message());
  }
  const std::string path = dir + "/" + e.file_name();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) out << baseline_entry_json(e);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  return path;
}

BaselineEntry load_baseline_entry(const std::string& dir,
                                  const BaselineEntry& identity) {
  const std::string path = dir + "/" + identity.file_name();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(
        "no baseline entry '" + path +
        "' for this cell/configuration (anchor it with --baseline-write, or "
        "the configuration changed and the store needs re-anchoring)");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_baseline_entry(text.str(), path);
}

std::string parent_dir_of(const std::string& path) {
  return std::filesystem::path(path).parent_path().string();
}

bool parent_dir_exists(const std::string& path) {
  const std::string parent = parent_dir_of(path);
  if (parent.empty()) return true;  // Bare file name: CWD always exists.
  std::error_code ec;
  return std::filesystem::is_directory(parent, ec);
}

}  // namespace arinoc::obs::regress
