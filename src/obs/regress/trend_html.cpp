// Self-contained HTML sparkline dashboard for a metric-trend history: one
// row per (cell, metric) series with an inline SVG sparkline, first/last
// values, and relative drift. Same contract as the attribution dashboard
// (obs/attr_html.cpp): everything inlined, opens from disk, no network.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/regress/trend.hpp"

namespace arinoc::obs::regress {

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Inline sparkline: a polyline over the series, min/max normalized to the
/// box, last point marked. Flat series draw as a centered line.
std::string sparkline_svg(const TrendSeries& s, std::size_t snapshots) {
  constexpr double kW = 160.0, kH = 28.0, kPad = 3.0;
  double lo = s.points.front().value, hi = lo;
  for (const TrendPoint& p : s.points) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  const double span = hi - lo;
  const double xstep =
      snapshots > 1 ? (kW - 2 * kPad) / static_cast<double>(snapshots - 1)
                    : 0.0;
  auto px = [&](const TrendPoint& p) {
    return kPad + xstep * static_cast<double>(p.snapshot);
  };
  auto py = [&](const TrendPoint& p) {
    if (span <= 0.0) return kH / 2.0;
    return kH - kPad - (p.value - lo) / span * (kH - 2 * kPad);
  };
  std::ostringstream os;
  os << "<svg class=\"spark\" width=\"" << static_cast<int>(kW)
     << "\" height=\"" << static_cast<int>(kH) << "\"><polyline points=\"";
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    char pt[48];
    std::snprintf(pt, sizeof(pt), "%s%.1f,%.1f", i == 0 ? "" : " ",
                  px(s.points[i]), py(s.points[i]));
    os << pt;
  }
  const TrendPoint& last = s.points.back();
  char dot[96];
  std::snprintf(dot, sizeof(dot),
                "\" fill=\"none\" stroke=\"#36c\" stroke-width=\"1.5\"/>"
                "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"#36c\"/>",
                px(last), py(last));
  os << dot << "</svg>";
  return os.str();
}

}  // namespace

std::string trend_html_document(const TrendBuilder& trend,
                                const std::string& title) {
  const std::vector<TrendSeries> series = trend.series();
  const std::vector<std::string>& snaps = trend.snapshots();

  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>"
     << html_escape(title)
     << "</title>\n<style>\n"
        "body{font-family:system-ui,sans-serif;margin:16px;background:#fafafa}"
        "\nh1{font-size:18px}h2{font-size:15px;margin:18px 0 6px}\n"
        "table{border-collapse:collapse;font-size:13px}\n"
        "td,th{border:1px solid #ccc;padding:3px 8px;text-align:left}\n"
        "th{background:#eee}\n"
        ".spark{background:#fff;border:1px solid #ddd;vertical-align:middle}\n"
        ".up{color:#1a7}.down{color:#c33}.flat{color:#888}\n"
        "#meta{color:#555;font-size:13px}\n"
        "</style>\n</head>\n<body>\n<h1>"
     << html_escape(title) << "</h1>\n";

  os << "<p id=\"meta\">" << snaps.size() << " snapshot"
     << (snaps.size() == 1 ? "" : "s") << ": ";
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    os << (i == 0 ? "" : " &rarr; ") << html_escape(snaps[i]);
  }
  os << "</p>\n";

  std::string cell;
  bool table_open = false;
  for (const TrendSeries& s : series) {
    if (s.points.empty()) continue;
    if (s.cell != cell) {
      if (table_open) os << "</table>\n";
      cell = s.cell;
      os << "<h2>" << html_escape(cell) << "</h2>\n<table>\n"
         << "<tr><th>metric</th><th>trend</th><th>first</th><th>last</th>"
            "<th>drift</th></tr>\n";
      table_open = true;
    }
    const double first = s.points.front().value;
    const double last = s.points.back().value;
    const double drift = first != 0.0 ? (last - first) / std::abs(first)
                                      : (last == 0.0 ? 0.0 : 1.0);
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%+.2f%%", drift * 100.0);
    const char* cls = drift > 1e-12 ? "up" : (drift < -1e-12 ? "down" : "flat");
    os << "<tr><td>" << html_escape(s.metric) << "</td><td>"
       << sparkline_svg(s, snaps.size()) << "</td><td>" << fmt_num(first)
       << "</td><td>" << fmt_num(last) << "</td><td class=\"" << cls << "\">"
       << (s.points.size() > 1 ? pct : "-") << "</td></tr>\n";
  }
  if (table_open) os << "</table>\n";
  if (series.empty()) os << "<p>No series ingested.</p>\n";
  os << "</body>\n</html>\n";
  return os.str();
}

}  // namespace arinoc::obs::regress
