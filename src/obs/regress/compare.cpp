#include "obs/regress/compare.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/report.hpp"

namespace arinoc::obs::regress {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kMissing: return "MISSING";
    case Verdict::kNew: return "new";
  }
  return "?";
}

std::size_t CompareReport::count(Verdict v) const {
  std::size_t n = 0;
  for (const MetricDelta& d : deltas) n += d.verdict == v ? 1 : 0;
  return n;
}

std::string CompareReport::text(bool all) const {
  TextTable t({"metric", "baseline", "candidate", "delta", "tol", "verdict"});
  for (const MetricDelta& d : deltas) {
    if (!all && d.verdict == Verdict::kOk) continue;
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.2f%%", d.rel * 100.0);
    char tol[32];
    std::snprintf(tol, sizeof(tol), "%.1f%%", d.tol * 100.0);
    t.add_row({d.name, d.verdict == Verdict::kNew ? "-" : fmt(d.baseline, 6),
               d.verdict == Verdict::kMissing ? "-" : fmt(d.candidate, 6),
               d.verdict == Verdict::kMissing ? "-" : delta, tol,
               verdict_name(d.verdict)});
  }
  std::ostringstream os;
  if (t.columns() > 0) os << t.to_string();
  os << (failed ? "RESULT: REGRESSION" : "RESULT: ok") << " ("
     << count(Verdict::kRegressed) << " regressed, " << count(Verdict::kMissing)
     << " missing, " << count(Verdict::kImproved) << " improved, "
     << count(Verdict::kOk) << " within tolerance, " << count(Verdict::kNew)
     << " new)\n";
  return os.str();
}

CompareReport compare_metrics(
    const std::vector<std::pair<std::string, double>>& baseline,
    const std::vector<std::pair<std::string, double>>& candidate,
    const CompareOptions& opts) {
  CompareReport report;
  auto find = [](const std::vector<std::pair<std::string, double>>& v,
                 const std::string& name) -> const double* {
    for (const auto& [n, val] : v) {
      if (n == name) return &val;
    }
    return nullptr;
  };

  for (const auto& [name, base] : baseline) {
    const MetricPolicy policy = metric_policy(name);
    MetricDelta d;
    d.name = name;
    d.baseline = base;
    d.direction = policy.direction;
    d.tol = policy.rel_tol;
    if (opts.default_tol >= 0.0) d.tol = opts.default_tol;
    if (const auto it = opts.tol_override.find(name);
        it != opts.tol_override.end()) {
      d.tol = it->second;
    }

    const double* cand = find(candidate, name);
    if (cand == nullptr) {
      d.verdict = Verdict::kMissing;
      report.failed = true;
      report.deltas.push_back(d);
      continue;
    }
    d.candidate = *cand;
    // Relative delta against the baseline; absolute when the anchor is 0
    // (a relative tolerance around zero would accept anything or nothing).
    d.rel = base != 0.0 ? (d.candidate - base) / std::abs(base) : d.candidate;
    // Tiny absolute slack so a delta mathematically *at* the tolerance
    // (e.g. 1.01 vs 1.0 at 1%) is not pushed over by floating-point
    // rounding of the division above.
    const bool within = std::abs(d.rel) <= d.tol + 1e-12;
    if (within) {
      d.verdict = Verdict::kOk;
    } else {
      const bool worse =
          policy.direction == MetricDirection::kNeutral ||
          (policy.direction == MetricDirection::kHigherBetter && d.rel < 0) ||
          (policy.direction == MetricDirection::kLowerBetter && d.rel > 0);
      d.verdict = worse ? Verdict::kRegressed : Verdict::kImproved;
      if (worse || !opts.ignore_improvements) report.failed = true;
    }
    report.deltas.push_back(d);
  }

  for (const auto& [name, val] : candidate) {
    if (find(baseline, name) != nullptr) continue;
    MetricDelta d;
    d.name = name;
    d.candidate = val;
    d.verdict = Verdict::kNew;
    report.deltas.push_back(d);
  }
  return report;
}

CompareReport compare_entries(const BaselineEntry& baseline,
                              const BaselineEntry& candidate,
                              const CompareOptions& opts) {
  // Identity gate: comparing across configurations or simulator revisions
  // produces deltas that mean nothing. Surface it as a failing synthetic
  // delta so callers get one uniform report shape.
  std::string mismatch;
  if (baseline.provenance.config_hash != candidate.provenance.config_hash) {
    mismatch = "config_hash " + baseline.provenance.config_hash + " vs " +
               candidate.provenance.config_hash;
  } else if (baseline.provenance.version != candidate.provenance.version) {
    mismatch = "version " + baseline.provenance.version + " vs " +
               candidate.provenance.version;
  }
  if (!mismatch.empty()) {
    CompareReport report;
    MetricDelta d;
    d.name = "provenance (" + mismatch + " — re-anchor the baseline)";
    d.verdict = Verdict::kMissing;
    report.deltas.push_back(d);
    report.failed = true;
    return report;
  }
  return compare_metrics(baseline.metrics, candidate.metrics, opts);
}

}  // namespace arinoc::obs::regress
