// Noise-aware, direction-aware metric comparison for the regression
// sentinel.
//
// Each metric is judged by its MetricPolicy (see baseline.hpp): a relative
// tolerance and a goodness direction. The rules:
//
//  * |delta| within tolerance              -> kOk.
//  * out of tolerance, bad direction       -> kRegressed.
//  * out of tolerance, good direction      -> kImproved. By default an
//    improvement still FAILS the comparison — a golden store exists to pin
//    numbers, and a 30% IPC jump you didn't expect deserves the same scrutiny
//    as a drop (then an intentional re-anchor). --ignore-improvements relaxes
//    this for perf-optimisation branches that expect to move the numbers one
//    way.
//  * metric in the baseline but not the candidate -> kMissing (always fails:
//    a metric that vanished is a broken emitter, not an improvement).
//  * metric in the candidate but not the baseline -> kNew (never fails; the
//    report calls it out so the anchor can be refreshed).
//
// A zero-valued baseline makes a relative delta meaningless, so the
// comparison degrades to absolute: |candidate| <= tolerance passes. That
// keeps "this counter was 0 and must stay 0" cells honest (e.g. packets_lost
// anchored at 0 regresses on the first loss).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/regress/baseline.hpp"

namespace arinoc::obs::regress {

enum class Verdict { kOk, kImproved, kRegressed, kMissing, kNew };

const char* verdict_name(Verdict v);

struct CompareOptions {
  /// Per-metric relative-tolerance overrides (name -> tolerance); metrics
  /// not listed use their MetricPolicy default.
  std::map<std::string, double> tol_override;
  /// Override every metric's tolerance (>= 0 enables). Applied before
  /// per-metric overrides.
  double default_tol = -1.0;
  /// Out-of-tolerance changes in the good direction do not fail.
  bool ignore_improvements = false;
};

struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel = 0.0;  ///< (candidate - baseline) / |baseline|; abs when 0.
  double tol = 0.0;
  MetricDirection direction = MetricDirection::kNeutral;
  Verdict verdict = Verdict::kOk;
};

struct CompareReport {
  std::vector<MetricDelta> deltas;
  bool failed = false;  ///< Regression (per the options) detected.

  std::size_t count(Verdict v) const;
  /// Aligned per-metric delta table; `all` includes in-tolerance rows.
  std::string text(bool all = false) const;
};

/// Compares candidate metrics against baseline metrics.
CompareReport compare_metrics(
    const std::vector<std::pair<std::string, double>>& baseline,
    const std::vector<std::pair<std::string, double>>& candidate,
    const CompareOptions& opts = {});

/// Entry-level wrapper: also verifies the two entries describe the same
/// cell/configuration (config hash + version); a mismatch fails with a
/// synthetic "provenance" delta rather than comparing incomparable runs.
CompareReport compare_entries(const BaselineEntry& baseline,
                              const BaselineEntry& candidate,
                              const CompareOptions& opts = {});

/// Exit status for a comparison: 0 ok, 7 regression (the documented
/// arinoc_sim / arinoc_regress contract).
inline int compare_exit_status(const CompareReport& r) {
  return r.failed ? 7 : 0;
}

}  // namespace arinoc::obs::regress
