#include "obs/regress/provenance.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/version.hpp"
#include "exec/result_cache.hpp"
#include "obs/regress/json.hpp"

#ifdef _WIN32
#include <winsock.h>
#else
#include <unistd.h>
#endif

namespace arinoc::obs::regress {

std::string config_hash_hex(const Config& cfg) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    exec::fnv1a64(cfg.canonical_string())));
  return buf;
}

Provenance collect_provenance() {
  Provenance p;
  p.version = kArinocVersion;
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0) p.host = host;
#if defined(__linux__)
  p.platform = "linux";
#elif defined(__APPLE__)
  p.platform = "darwin";
#elif defined(_WIN32)
  p.platform = "windows";
#else
  p.platform = "unknown";
#endif
  p.unix_time_s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  p.wall_s = -1.0;
  return p;
}

std::string provenance_json(const Provenance& p, bool deterministic) {
  std::ostringstream os;
  os << "{\"schema\": \"" << kProvenanceSchema << "\", \"version\": \""
     << json_escape(p.version) << '"';
  if (!p.config_hash.empty()) {
    os << ", \"config_hash\": \"" << json_escape(p.config_hash) << '"';
  }
  if (!p.scheme.empty()) {
    os << ", \"scheme\": \"" << json_escape(p.scheme) << '"';
  }
  if (!p.benchmark.empty()) {
    os << ", \"benchmark\": \"" << json_escape(p.benchmark) << '"';
  }
  if (!p.fabric.empty()) {
    os << ", \"fabric\": \"" << json_escape(p.fabric) << '"';
  }
  os << ", \"seed\": " << p.seed;
  if (!deterministic) {
    if (!p.host.empty()) os << ", \"host\": \"" << json_escape(p.host) << '"';
    if (!p.platform.empty()) {
      os << ", \"platform\": \"" << json_escape(p.platform) << '"';
    }
    os << ", \"unix_time_s\": " << p.unix_time_s;
    if (p.wall_s >= 0.0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.3f", p.wall_s);
      os << ", \"wall_s\": " << buf;
    }
  }
  os << '}';
  return os.str();
}

}  // namespace arinoc::obs::regress
