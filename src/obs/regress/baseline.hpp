// Golden baseline store: anchored per-cell metric snapshots on disk.
//
// One entry = one simulation cell (benchmark, scheme, fabric) anchored at a
// specific canonical configuration. The entry's file name embeds the
// canonical-config hash, so editing the configuration (cycle counts, mesh
// size, VC depth, ...) makes the old anchor unreachable instead of silently
// comparable — re-anchoring is always an explicit act (see
// docs/observability.md).
//
// Entry files are fully deterministic: identity-half provenance only,
// doubles printed with %.17g (exact round trip). Re-running an unchanged
// cell and re-writing its entry must reproduce the committed file
// byte-for-byte — CI enforces this, which is what makes the store "golden".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/gpgpu_sim.hpp"
#include "obs/regress/provenance.hpp"

namespace arinoc::obs::regress {

inline constexpr const char kBaselineSchema[] = "arinoc-baseline-v1";

/// Which direction of change is a regression for a metric.
enum class MetricDirection {
  kHigherBetter,  ///< Regression = value fell (IPC, goodput, recovery rate).
  kLowerBetter,   ///< Regression = value rose (latency, energy, stalls).
  kNeutral,       ///< Any out-of-tolerance change is suspect (counts, shares).
};

/// Static comparison policy for one tracked metric.
struct MetricPolicy {
  const char* name;
  MetricDirection direction;
  double rel_tol;  ///< Default relative tolerance (0 = exact match).
};

/// Policy for `name`; unknown metrics get {kNeutral, 0.02}.
MetricPolicy metric_policy(const std::string& name);

/// One anchored snapshot: ordered (metric, value) pairs plus identity.
struct BaselineEntry {
  Provenance provenance;  ///< Identity half only (deterministic fields).
  std::vector<std::pair<std::string, double>> metrics;

  /// File name this entry lives under: <benchmark>_<scheme>_<fabric>_<hash>
  /// .json, filesystem-sanitized.
  std::string file_name() const;
};

/// Extracts the tracked metric set from a Metrics record, in canonical
/// order: IPC, request/reply/e2e percentiles, energy, goodput, recovery
/// rate, MC stalls, instruction/cycle counts, and (when attribution ran)
/// the per-stage latency shares.
std::vector<std::pair<std::string, double>> snapshot_metrics(const Metrics& m);

/// Renders the entry as its canonical on-disk JSON document (deterministic;
/// trailing newline included).
std::string baseline_entry_json(const BaselineEntry& e);

/// Parses an entry document. Throws std::invalid_argument (message names
/// `origin`) on malformed JSON, a foreign schema, or missing fields.
BaselineEntry parse_baseline_entry(const std::string& text,
                                   const std::string& origin);

/// Writes the entry under `dir` (created if missing) as e.file_name().
/// Returns the path; throws std::runtime_error on I/O failure.
std::string write_baseline_entry(const std::string& dir,
                                 const BaselineEntry& e);

/// Loads the entry for this identity from `dir`; empty-metrics entry with
/// ok=false semantics is not used — throws std::runtime_error when the file
/// is absent (message suggests --baseline-write) and std::invalid_argument
/// when present but malformed.
BaselineEntry load_baseline_entry(const std::string& dir,
                                  const BaselineEntry& identity);

// ---- Output-path fail-fast helpers (shared by the CLI drivers) ----

/// The directory component of `path` ("" when the path has none).
std::string parent_dir_of(const std::string& path);

/// True when the directory that would hold `path` exists (a bare file name
/// counts: the current directory always exists).
bool parent_dir_exists(const std::string& path);

}  // namespace arinoc::obs::regress
