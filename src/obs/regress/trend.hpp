// Perf-trend layer: folds a history of stamped BENCH_*.json snapshots
// (perf_harness, ext_fabric_sweep, ext_fault_resilience, ext_serving_tail —
// anything carrying the "arinoc-bench-v1" stamp) into per-(cell, metric)
// time series, emitted as "arinoc-trend-v1" JSON and as a self-contained
// HTML sparkline dashboard.
//
// Ingestion is schema-driven, not bench-specific: within a snapshot, every
// array of objects contributes rows; a row's *identity* fields (name,
// workload, scheme, benchmark, fabric, admission, load, corrupt_rate — the
// axes benches sweep over) form the cell key, every other numeric or boolean
// field becomes a metric point. Unstamped or foreign documents are rejected
// with a clear error — trending a stale artifact against a fresh one is how
// silent regressions hide.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/regress/json.hpp"

namespace arinoc::obs::regress {

inline constexpr const char kBenchSchema[] = "arinoc-bench-v1";
inline constexpr const char kTrendSchema[] = "arinoc-trend-v1";

struct TrendPoint {
  std::size_t snapshot = 0;  ///< Index into TrendBuilder::snapshots().
  double value = 0.0;
};

struct TrendSeries {
  std::string cell;    ///< "throughput/saturated-bfs scheme=Ada-ARI ...".
  std::string metric;  ///< "activity_cps", "ipc", "e2e_latency_p99", ...
  std::vector<TrendPoint> points;
};

class TrendBuilder {
 public:
  /// Ingests one parsed snapshot. `label` names it in the output (file
  /// name or date). Snapshots are ordered by call sequence — oldest first.
  /// Throws std::invalid_argument on a document without the
  /// "arinoc-bench-v1" stamp or without any ingestible rows.
  void add_snapshot(const std::string& label, const JsonValue& doc);

  /// Parses `text` and ingests it (convenience over json_parse +
  /// add_snapshot; parse errors are rethrown as std::invalid_argument
  /// naming `label`).
  void add_snapshot_text(const std::string& label, const std::string& text);

  const std::vector<std::string>& snapshots() const { return labels_; }
  /// Series sorted by (cell, metric); points in snapshot order.
  std::vector<TrendSeries> series() const;

  /// The full history as an "arinoc-trend-v1" JSON document.
  std::string to_json() const;

 private:
  std::vector<std::string> labels_;
  std::vector<TrendSeries> series_;  ///< Unsorted accumulation order.

  TrendSeries& series_for(const std::string& cell, const std::string& metric);
};

/// Self-contained HTML dashboard: one sparkline row per (cell, metric)
/// series, grouped by cell, with first/last values and relative drift.
std::string trend_html_document(const TrendBuilder& trend,
                                const std::string& title = "arinoc perf trend");

}  // namespace arinoc::obs::regress
