#include "obs/regress/json.hpp"

#include <cctype>
#include <cstdlib>

namespace arinoc::obs::regress {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonParseResult run() {
    JsonParseResult r;
    skip_ws();
    if (!value(r.value)) {
      r.error = where() + error_;
      return r;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      r.error = where() + "trailing characters after the document";
      return r;
    }
    r.ok = true;
    return r;
  }

 private:
  bool fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  std::string where() const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return "line " + std::to_string(line) + " col " + std::to_string(col) +
           ": ";
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool value(JsonValue& out) {
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': return string_value(out);
      case 't': return literal("true", out, true);
      case 'f': return literal("false", out, false);
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out.kind_ = JsonValue::Kind::kNull;
          return true;
        }
        return fail("expected 'null'");
      default: return number(out);
    }
  }

  bool literal(const char* word, JsonValue& out, bool v) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return fail("malformed literal");
    pos_ += n;
    out.kind_ = JsonValue::Kind::kBool;
    out.bool_ = v;
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      return fail("expected a value");
    }
    // JSON grammar: the integer part is '0' or [1-9][0-9]* — a leading zero
    // followed by more digits (e.g. "01") is malformed.
    if (peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("malformed number (leading zero)");
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("malformed number (digit must follow '.')");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("malformed number (empty exponent)");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out.kind_ = JsonValue::Kind::kNumber;
    out.string_ = s_.substr(start, pos_ - start);
    out.number_ = std::strtod(out.string_.c_str(), nullptr);
    return true;
  }

  bool string_value(JsonValue& out) {
    std::string text;
    if (!string_text(text)) return false;
    out.kind_ = JsonValue::Kind::kString;
    out.string_ = std::move(text);
    return true;
  }

  bool string_text(std::string& out) {
    if (peek() != '"') return fail("expected '\"'");
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return fail("unterminated escape");
        switch (s_[pos_]) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // Pass \uXXXX through verbatim — the emitters never produce it
            // for the fields the sentinel reads.
            if (pos_ + 4 >= s_.size()) return fail("truncated \\u escape");
            out += '\\';
            out.append(s_, pos_, 5);
            pos_ += 5;
            continue;
          default: return fail("unknown escape character");
        }
      }
      out += c;
      ++pos_;
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // Closing quote.
    return true;
  }

  bool array(JsonValue& out) {
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!value(item)) return false;
      out.items_.push_back(std::move(item));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool object(JsonValue& out) {
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string_text(key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member)) return false;
      out.members_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

JsonParseResult json_parse(const std::string& text) {
  return JsonParser(text).run();
}

}  // namespace arinoc::obs::regress
