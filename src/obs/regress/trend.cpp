#include "obs/regress/trend.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace arinoc::obs::regress {

namespace {

/// Row fields that identify a cell (the axes the benches sweep over) rather
/// than measure it. Numeric identity fields (load, corrupt_rate) matter:
/// treating them as metrics would merge every load point of a sweep into
/// one colliding series.
bool is_identity_field(const std::string& key) {
  static const char* kIdentity[] = {"name",      "workload", "scheme",
                                    "benchmark", "fabric",   "admission",
                                    "load",      "corrupt_rate"};
  for (const char* k : kIdentity) {
    if (key == k) return true;
  }
  return false;
}

std::string fmt_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Compact identity string for one row: "scheme=Ada-ARI load=4 ...", in
/// the row's own field order so it reads like the source document.
std::string row_identity(const JsonValue& row) {
  std::string id;
  for (const auto& [key, v] : row.members()) {
    if (!is_identity_field(key)) continue;
    if (!id.empty()) id += ' ';
    if (v.is_string()) {
      id += key + "=" + v.as_string();
    } else if (v.is_bool()) {
      id += key + "=" + (v.as_bool() ? "on" : "off");
    } else if (v.is_number()) {
      id += key + "=" + fmt_num(v.as_number());
    }
  }
  return id;
}

}  // namespace

TrendSeries& TrendBuilder::series_for(const std::string& cell,
                                      const std::string& metric) {
  for (TrendSeries& s : series_) {
    if (s.cell == cell && s.metric == metric) return s;
  }
  series_.push_back(TrendSeries{cell, metric, {}});
  return series_.back();
}

void TrendBuilder::add_snapshot(const std::string& label,
                                const JsonValue& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument(label + ": not a JSON object");
  }
  const std::string schema = doc.string_or("schema");
  if (schema != kBenchSchema) {
    throw std::invalid_argument(
        label + ": not a stamped bench artifact (schema '" + schema +
        "', want '" + kBenchSchema +
        "') — regenerate it with a current bench binary");
  }
  std::string kind = doc.string_or("kind", "bench");
  // Quick and full runs of the same bench measure different grids; folding
  // them into one series would fake a cliff at every quick/full boundary.
  if (const JsonValue* quick = doc.find("quick");
      quick != nullptr && quick->is_bool() && quick->as_bool()) {
    kind += "[quick]";
  }

  const std::size_t snapshot = labels_.size();
  std::size_t rows = 0;

  for (const auto& [key, v] : doc.members()) {
    if (v.is_number()) {
      // Top-level scalars (geomean_speedup, ...) trend under the kind.
      series_for(kind, key).points.push_back({snapshot, v.as_number()});
      ++rows;
      continue;
    }
    if (!v.is_array()) continue;
    const std::string prefix =
        kind + (key == "cells" ? "" : "/" + key) + "/";
    std::size_t unkeyed = 0;
    for (const JsonValue& row : v.items()) {
      if (!row.is_object()) continue;
      std::string id = row_identity(row);
      if (id.empty()) id = "row" + std::to_string(unkeyed++);
      const std::string cell = prefix + id;
      for (const auto& [field, fv] : row.members()) {
        if (is_identity_field(field)) continue;
        if (fv.is_number()) {
          series_for(cell, field).points.push_back({snapshot, fv.as_number()});
        } else if (fv.is_bool()) {
          // bit_identical / non_perturbing: trend as 0/1 so a flip to
          // false is visible as a cliff.
          series_for(cell, field).points.push_back(
              {snapshot, fv.as_bool() ? 1.0 : 0.0});
        }
      }
      ++rows;
    }
  }

  if (rows == 0) {
    throw std::invalid_argument(label +
                                ": stamped but contains no ingestible rows");
  }
  labels_.push_back(label);
}

void TrendBuilder::add_snapshot_text(const std::string& label,
                                     const std::string& text) {
  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok) {
    throw std::invalid_argument(label + ": malformed JSON (" + parsed.error +
                                ")");
  }
  add_snapshot(label, parsed.value);
}

std::vector<TrendSeries> TrendBuilder::series() const {
  std::vector<TrendSeries> out = series_;
  std::sort(out.begin(), out.end(),
            [](const TrendSeries& a, const TrendSeries& b) {
              return a.cell != b.cell ? a.cell < b.cell : a.metric < b.metric;
            });
  return out;
}

std::string TrendBuilder::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kTrendSchema << "\",\n  \"snapshots\": [";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << json_escape(labels_[i]) << '"';
  }
  os << "],\n  \"series\": [\n";
  const std::vector<TrendSeries> sorted = series();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TrendSeries& s = sorted[i];
    os << "    {\"cell\": \"" << json_escape(s.cell) << "\", \"metric\": \""
       << json_escape(s.metric) << "\", \"points\": [";
    for (std::size_t p = 0; p < s.points.size(); ++p) {
      os << (p == 0 ? "" : ", ") << "{\"snapshot\": " << s.points[p].snapshot
         << ", \"value\": " << fmt_num(s.points[p].value) << "}";
    }
    os << "]}" << (i + 1 < sorted.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace arinoc::obs::regress
