// Minimal read-only JSON parser for the regression sentinel.
//
// The simulator *emits* JSON everywhere; the sentinel is the first subsystem
// that must *read* it back (golden baseline entries, candidate metric files,
// historical BENCH_*.json snapshots). This is a strict recursive-descent
// parser over a value tree — objects preserve member order (so rewritten
// documents stay diffable), numbers are kept both as doubles and as their
// raw source text (so a load/store round trip of a "%.17g" baseline value is
// byte-exact), and errors carry a line:column location so a truncated or
// hand-edited file fails with a message worth reading.
//
// Not a general-purpose library: no \uXXXX decoding beyond pass-through, no
// streaming, no mutation. Parsing a few-hundred-KB BENCH file is microseconds
// against a multi-second simulation — clarity wins over speed here.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace arinoc::obs::regress {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  /// The number's exact source spelling (e.g. "1.1463749999999999").
  const std::string& raw_number() const { return string_; }
  const std::string& as_string() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Convenience: member string value, or `fallback` when absent/not string.
  std::string string_or(const std::string& key,
                        const std::string& fallback = {}) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  ///< String value, or raw number text for numbers.
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;  ///< "line L col C: message" when !ok.
};

/// Parses a complete JSON document (trailing garbage is an error).
JsonParseResult json_parse(const std::string& text);

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace arinoc::obs::regress
