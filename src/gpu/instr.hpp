// Warp-level instruction abstraction. The simulator does not execute real
// ISA semantics; a warp instruction is either an ALU op or a memory op that
// touches up to kMaxLines coalesced cache lines (the workload models decide
// the mix and the addresses — see workloads/).
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace arinoc {

struct Instr {
  static constexpr std::uint8_t kMaxLines = 4;

  bool is_mem = false;
  bool is_store = false;
  std::uint8_t num_lines = 0;              ///< Coalesced transactions.
  std::array<Addr, kMaxLines> lines{};     ///< Line-aligned addresses.
};

/// Produces the next warp instruction for (core, warp). Implemented by the
/// synthetic workload models.
class InstrSource {
 public:
  virtual ~InstrSource() = default;
  virtual Instr next(std::uint32_t core, std::uint32_t warp) = 0;
};

}  // namespace arinoc
