// Warp schedulers. Greedy-then-oldest (Table I) keeps issuing from the same
// warp until it stalls, then switches to the warp that has gone longest
// without issuing. A loose round-robin scheduler is provided for ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "gpu/warp.hpp"

namespace arinoc {

enum class SchedPolicy { kGreedyThenOldest, kLooseRoundRobin };

class WarpScheduler {
 public:
  WarpScheduler(SchedPolicy policy, std::uint32_t num_warps);

  /// Picks a warp index to issue from among `warps` where `eligible(w)` is
  /// true; returns -1 if none. Call `issued(w)` after a successful issue.
  int pick(const std::vector<Warp>& warps,
           const std::vector<bool>& eligible);
  void issued(std::uint32_t warp);

 private:
  SchedPolicy policy_;
  int current_ = -1;       ///< GTO: the greedy warp.
  std::size_t rr_ptr_ = 0; ///< LRR pointer.
};

}  // namespace arinoc
