// Per-warp execution state tracked by a SIMT core: scoreboard of pending
// loads, the staged next instruction, and issue statistics.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "gpu/instr.hpp"

namespace arinoc {

struct Warp {
  std::uint32_t id = 0;
  /// Loads in flight; the warp cannot issue until they return (the
  /// scoreboard models an immediate use of every load result — the
  /// conservative end of latency hiding).
  std::uint32_t outstanding_loads = 0;
  /// Staged instruction awaiting issue (fetched from the InstrSource).
  Instr staged;
  bool has_staged = false;
  /// Cycle of the last successful issue (used by the GTO scheduler).
  Cycle last_issue = 0;
  std::uint64_t instructions_issued = 0;

  bool blocked() const { return outstanding_loads > 0; }
};

}  // namespace arinoc
