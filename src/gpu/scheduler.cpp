#include "gpu/scheduler.hpp"

namespace arinoc {

WarpScheduler::WarpScheduler(SchedPolicy policy, std::uint32_t /*num_warps*/)
    : policy_(policy) {}

int WarpScheduler::pick(const std::vector<Warp>& warps,
                        const std::vector<bool>& eligible) {
  if (policy_ == SchedPolicy::kLooseRoundRobin) {
    for (std::size_t k = 0; k < warps.size(); ++k) {
      const std::size_t i = (rr_ptr_ + k) % warps.size();
      if (eligible[i]) {
        rr_ptr_ = (i + 1) % warps.size();
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  // Greedy-then-oldest: stick with the current warp while it can issue.
  if (current_ >= 0 && eligible[static_cast<std::size_t>(current_)]) {
    return current_;
  }
  // Otherwise the eligible warp that issued least recently (oldest).
  int best = -1;
  for (std::size_t i = 0; i < warps.size(); ++i) {
    if (!eligible[i]) continue;
    if (best < 0 ||
        warps[i].last_issue < warps[static_cast<std::size_t>(best)].last_issue) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void WarpScheduler::issued(std::uint32_t warp) {
  current_ = static_cast<int>(warp);
}

}  // namespace arinoc
