#include "gpu/core.hpp"

#include <cassert>

#include "gpu/coalescer.hpp"

namespace arinoc {

namespace {
constexpr std::size_t kOutQueueCap = 16;
}

SimtCore::SimtCore(const Config& cfg, std::uint32_t core_id, NodeId node,
                   InstrSource* source, TxnPool* txns, const AddressMap* amap,
                   const std::vector<NodeId>* mc_nodes,
                   RequestPort* request_port)
    : cfg_(cfg),
      core_id_(core_id),
      node_(node),
      source_(source),
      txns_(txns),
      amap_(amap),
      mc_nodes_(mc_nodes),
      request_port_(request_port),
      warps_(cfg.warps_per_core),
      scheduler_(SchedPolicy::kGreedyThenOldest, cfg.warps_per_core),
      l1_(cfg.l1_size_bytes, cfg.l1_assoc, cfg.line_bytes),
      mshr_(cfg.mshr_entries, cfg.mshr_merges) {
  for (std::uint32_t w = 0; w < cfg.warps_per_core; ++w) warps_[w].id = w;
}

void SimtCore::drain_requests(Cycle now) {
  if (out_q_.empty()) return;
  const OutRequest& head = out_q_.front();
  if (request_port_->try_send_request(head.write, head.txn, head.dest, now)) {
    out_q_.pop_front();
    ++requests_sent_;
  }
}

bool SimtCore::execute_mem(Warp& warp, Cycle now) {
  Instr& instr = warp.staged;
  for (std::uint8_t i = 0; i < instr.num_lines; ++i) {
    const Addr line = instr.lines[i];
    const NodeId dest = (*mc_nodes_)[amap_->mc_of(line)];
    if (instr.is_store) {
      // Write-through, no-allocate, posted: traffic without a scoreboard
      // dependency (GPU stores do not stall the warp).
      const TxnId txn = txns_->create(
          {line, node_, dest, /*write=*/true, core_id_, now, line});
      out_q_.push_back({txn, true, dest});
      continue;
    }
    if (!cfg_.l1_bypass && l1_.access(line)) continue;  // L1 hit.
    // Cross-warp merging off (WarpPool ablation): salt the MSHR key so
    // each warp's miss travels the network independently.
    const Addr key = cfg_.cross_warp_merge
                         ? line
                         : (line | (static_cast<Addr>(warp.id) + 1) << 48);
    switch (mshr_.lookup(key, warp.id)) {
      case Mshr::Outcome::kNewMiss: {
        const TxnId txn = txns_->create(
            {line, node_, dest, /*write=*/false, core_id_, now, key});
        out_q_.push_back({txn, false, dest});
        ++warp.outstanding_loads;
        break;
      }
      case Mshr::Outcome::kMerged:
        ++warp.outstanding_loads;
        break;
      case Mshr::Outcome::kFull:
        // Merge slots exhausted for this line: the fill in flight will
        // bring the line to L1; treat as a hit-under-miss (documented
        // simplification — rare with 8 merge slots).
        break;
    }
  }
  return true;
}

void SimtCore::cycle(Cycle now) {
  sync_idle(now);  // Replay slept stall cycles; a zero gap in always-on mode.
  next_cycle_ = now + 1;
  can_sleep_ = false;

  drain_requests(now);

  if (now < issue_free_at_) return;  // Warp draining through the SIMD lanes.

  // CTA barriers: a warp at an epoch boundary waits until every warp of
  // its CTA has reached that boundary (__syncthreads() rhythm).
  std::vector<std::uint64_t> cta_min_epoch;
  if (cfg_.barrier_interval > 0) {
    const std::uint32_t per_cta = std::max(1u, cfg_.warps_per_cta);
    cta_min_epoch.assign((warps_.size() + per_cta - 1) / per_cta,
                         ~std::uint64_t{0});
    for (const Warp& w : warps_) {
      const std::uint64_t epoch =
          w.instructions_issued / cfg_.barrier_interval;
      std::uint64_t& slot = cta_min_epoch[w.id / per_cta];
      slot = std::min(slot, epoch);
    }
  }
  auto barrier_blocked = [&](const Warp& w) {
    if (cfg_.barrier_interval == 0) return false;
    const std::uint32_t per_cta = std::max(1u, cfg_.warps_per_cta);
    return w.instructions_issued / cfg_.barrier_interval >
           cta_min_epoch[w.id / per_cta];
  };

  // Stage the next instruction of every unblocked warp and compute
  // eligibility (scoreboard + structural resources).
  std::vector<bool> eligible(warps_.size(), false);
  bool any = false;
  for (Warp& w : warps_) {
    if (w.blocked() || barrier_blocked(w)) continue;
    if (!w.has_staged) {
      w.staged = source_->next(core_id_, w.id);
      if (w.staged.is_mem) coalesce(&w.staged);
      w.has_staged = true;
    }
    if (w.staged.is_mem) {
      if (out_q_.size() + w.staged.num_lines > kOutQueueCap) continue;
      if (!w.staged.is_store) {
        if (mshr_.used_entries() + w.staged.num_lines > mshr_.capacity()) {
          continue;
        }
        if (w.outstanding_loads + w.staged.num_lines >
            cfg_.max_pending_loads) {
          continue;
        }
      }
    }
    eligible[w.id] = true;
    any = true;
  }
  if (!any) {
    ++issue_stalls_;
    // Only warp-unblocking events (replies via deliver) can change this
    // outcome, and only if no request is waiting on NI backpressure —
    // staging already happened for every unblocked warp, so re-running this
    // cycle with unchanged state is pure stall counting.
    can_sleep_ = out_q_.empty();
    return;
  }

  const int pick = scheduler_.pick(warps_, eligible);
  assert(pick >= 0);
  Warp& warp = warps_[static_cast<std::size_t>(pick)];
  if (warp.staged.is_mem) execute_mem(warp, now);
  warp.has_staged = false;
  warp.last_issue = now;
  ++warp.instructions_issued;
  ++instructions_;
  scheduler_.issued(static_cast<std::uint32_t>(pick));
  // A 32-thread warp occupies the 8-wide SIMD front-end for 4 cycles.
  issue_free_at_ = now + cfg_.warp_size / cfg_.simd_width;
}

void SimtCore::deliver(const Packet& pkt, Cycle /*now*/) {
  if (act_set_) act_set_->wake(act_idx_);
  const TxnId txn = pkt.txn;
  if (pkt.type == PacketType::kReadReply) {
    const MemTxn& t = txns_->at(txn);
    if (!cfg_.l1_bypass) l1_.fill(t.line);
    for (std::uint32_t warp_id : mshr_.fill(t.mshr_key)) {
      assert(warps_[warp_id].outstanding_loads > 0);
      --warps_[warp_id].outstanding_loads;
    }
  } else {
    assert(pkt.type == PacketType::kWriteReply);
  }
  txns_->retire(txn);
}

void SimtCore::reset_stats() {
  instructions_ = 0;
  requests_sent_ = 0;
  issue_stalls_ = 0;
  l1_.reset_stats();
  for (Warp& w : warps_) w.instructions_issued = 0;
}

}  // namespace arinoc
