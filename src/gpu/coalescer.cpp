#include "gpu/coalescer.hpp"

namespace arinoc {

std::uint8_t coalesce(Instr* instr) {
  std::uint8_t out = 0;
  for (std::uint8_t i = 0; i < instr->num_lines; ++i) {
    bool dup = false;
    for (std::uint8_t j = 0; j < out; ++j) {
      if (instr->lines[j] == instr->lines[i]) {
        dup = true;
        break;
      }
    }
    if (!dup) instr->lines[out++] = instr->lines[i];
  }
  instr->num_lines = out;
  return out;
}

}  // namespace arinoc
