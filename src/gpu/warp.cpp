// Warp is a plain aggregate; this TU anchors the header in the build.
#include "gpu/warp.hpp"
