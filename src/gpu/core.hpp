// SIMT core (compute-cluster node): warps, GTO scheduling, L1 + MSHR, and
// the request/reply plumbing into the two networks. The core is the demand
// side of the latency-hiding loop the NoC experiments depend on: warps stall
// on outstanding loads, so late replies translate directly into lost IPC.
#pragma once

#include <deque>
#include <vector>

#include "common/active_set.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "gpu/instr.hpp"
#include "gpu/scheduler.hpp"
#include "gpu/warp.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "mem/mshr.hpp"
#include "mem/txn.hpp"
#include "noc/ni.hpp"

namespace arinoc {

/// Where the core hands memory requests (the request-network NI).
class RequestPort {
 public:
  virtual ~RequestPort() = default;
  virtual bool try_send_request(bool write, TxnId txn, NodeId dest_mc,
                                Cycle now) = 0;
};

class SimtCore : public PacketSink {
 public:
  /// `mc_nodes` maps MC index (from AddressMap::mc_of) to its mesh node.
  SimtCore(const Config& cfg, std::uint32_t core_id, NodeId node,
           InstrSource* source, TxnPool* txns, const AddressMap* amap,
           const std::vector<NodeId>* mc_nodes, RequestPort* request_port);

  /// One interconnect cycle: issue, access L1, emit requests.
  void cycle(Cycle now);

  // ---- PacketSink (reply-network ejection side) ----
  void deliver(const Packet& pkt, Cycle now) override;

  // ---- Activity-driven stepping ----
  /// True after a cycle in which no warp could issue and no request was
  /// queued: until a reply arrives (deliver(), which wakes the core), every
  /// further cycle would only increment the issue-stall counter — which
  /// sync_idle replays on wake. Any other outcome (issued, SIMD front-end
  /// draining, requests pending at the NI) keeps the core stepping, since
  /// NI backpressure can clear without any callback to the core.
  bool can_sleep() const { return can_sleep_; }
  /// Books the slept cycles [next expected, now) as issue stalls — by the
  /// can_sleep() invariant they all were. Called from cycle() on wake and
  /// by GpgpuSim::sync_activity() at run/reset boundaries.
  void sync_idle(Cycle now) {
    if (now <= next_cycle_) return;
    issue_stalls_ += now - next_cycle_;
    next_cycle_ = now;
  }
  /// Registers this core in `set` (as member `idx`); deliver() wakes it.
  void set_activity_hook(ActiveSet* set, std::size_t idx) {
    act_set_ = set;
    act_idx_ = idx;
  }

  // ---- Stats ----
  std::uint64_t warp_instructions() const { return instructions_; }
  /// Scalar-thread instructions (warp instructions x warp size).
  std::uint64_t thread_instructions() const {
    return instructions_ * cfg_.warp_size;
  }
  const Cache& l1() const { return l1_; }
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t issue_stall_cycles() const { return issue_stalls_; }
  void reset_stats();

  NodeId node() const { return node_; }
  std::uint32_t core_id() const { return core_id_; }

 private:
  struct OutRequest {
    TxnId txn;
    bool write;
    NodeId dest;
  };

  bool execute_mem(Warp& warp, Cycle now);
  void drain_requests(Cycle now);

  Config cfg_;
  std::uint32_t core_id_;
  NodeId node_;
  InstrSource* source_;
  TxnPool* txns_;
  const AddressMap* amap_;
  const std::vector<NodeId>* mc_nodes_;
  RequestPort* request_port_;

  std::vector<Warp> warps_;
  WarpScheduler scheduler_;
  Cache l1_;
  Mshr mshr_;
  std::deque<OutRequest> out_q_;
  /// Issue slot busy until (warp occupies the SIMD pipeline front-end for
  /// warp_size / simd_width cycles).
  Cycle issue_free_at_ = 0;

  std::uint64_t instructions_ = 0;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t issue_stalls_ = 0;

  // Activity-driven stepping (null hook = always-on mode).
  ActiveSet* act_set_ = nullptr;
  std::size_t act_idx_ = 0;
  Cycle next_cycle_ = 0;  ///< Next cycle this core expects to process.
  bool can_sleep_ = false;
};

}  // namespace arinoc
