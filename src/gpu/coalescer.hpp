// Memory-access coalescer: deduplicates the line addresses touched by one
// warp memory instruction into the minimal set of transactions.
#pragma once

#include <cstdint>

#include "gpu/instr.hpp"

namespace arinoc {

/// Collapses duplicate lines in `instr` in place; returns the number of
/// distinct transactions after coalescing.
std::uint8_t coalesce(Instr* instr);

}  // namespace arinoc
