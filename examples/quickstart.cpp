// Quickstart: build a Table-I GPGPU system, run one benchmark under the
// enhanced baseline and under full ARI, and print the headline metrics.
//
//   ./quickstart [benchmark] [run_cycles]
//
// Default: bfs, 15000 measured cycles after a 2000-cycle warmup.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "workloads/benchmark.hpp"

using namespace arinoc;

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "bfs";
  if (find_benchmark(bench) == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'; available:\n",
                 bench.c_str());
    for (const auto& b : benchmark_suite()) {
      std::fprintf(stderr, "  %s (%s NoC sensitivity)\n", b.name.c_str(),
                   sensitivity_name(b.sensitivity));
    }
    return 1;
  }

  Config base = make_base_config();
  if (argc > 2) base.run_cycles = std::strtoull(argv[2], nullptr, 10);

  std::printf("%s\n", base.table1().c_str());
  std::printf("benchmark: %s\n\n", bench.c_str());

  const Metrics baseline = run_scheme(base, Scheme::kAdaBaseline, bench);
  const Metrics ari = run_scheme(base, Scheme::kAdaARI, bench);

  TextTable t({"metric", "Ada-Baseline", "Ada-ARI", "ARI vs baseline"});
  auto rel = [](double a, double b) {
    return b != 0.0 ? fmt(a / b, 3) + "x" : std::string("-");
  };
  t.add_row({"IPC (warp instr/cycle)", fmt(baseline.ipc), fmt(ari.ipc),
             rel(ari.ipc, baseline.ipc)});
  t.add_row({"MC stall cycles", std::to_string(baseline.mc_stall_cycles),
             std::to_string(ari.mc_stall_cycles),
             rel(double(ari.mc_stall_cycles),
                 double(baseline.mc_stall_cycles))});
  t.add_row({"request pkt latency", fmt(baseline.request_latency, 1),
             fmt(ari.request_latency, 1),
             rel(ari.request_latency, baseline.request_latency)});
  t.add_row({"reply pkt latency", fmt(baseline.reply_latency, 1),
             fmt(ari.reply_latency, 1),
             rel(ari.reply_latency, baseline.reply_latency)});
  t.add_row({"reply injection link util", fmt(baseline.reply_injection_util),
             fmt(ari.reply_injection_util), ""});
  t.add_row({"reply in-network link util", fmt(baseline.reply_internal_util),
             fmt(ari.reply_internal_util), ""});
  t.add_row({"L1 hit rate", fmt_pct(baseline.l1_hit_rate),
             fmt_pct(ari.l1_hit_rate), ""});
  t.add_row({"L2 hit rate", fmt_pct(baseline.l2_hit_rate),
             fmt_pct(ari.l2_hit_rate), ""});
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
