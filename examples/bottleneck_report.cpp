// Bottleneck analysis: reproduce the paper's Section-3 diagnosis on any
// benchmark, then show the verdict moving after ARI is applied.
//
//   ./bottleneck_report [benchmark]
#include <cstdio>
#include <string>

#include "core/analyzer.hpp"
#include "core/experiment.hpp"
#include "core/gpgpu_sim.hpp"
#include "core/heatmap.hpp"

using namespace arinoc;

int main(int argc, char** argv) {
  const std::string bench = argc > 1 ? argv[1] : "bfs";
  const BenchmarkTraits* traits = find_benchmark(bench);
  if (traits == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 1;
  }
  const Config base = make_base_config();
  const BottleneckAnalyzer analyzer(/*saturation_threshold=*/0.8);

  std::printf("=== %s under Ada-Baseline (paper Section 3) ===\n",
              bench.c_str());
  const BottleneckReport before =
      analyzer.analyze(apply_scheme(base, Scheme::kAdaBaseline), *traits);
  std::printf("%s\n", before.to_string().c_str());

  std::printf("=== %s under Ada-ARI ===\n", bench.c_str());
  const BottleneckReport after =
      analyzer.analyze(apply_scheme(base, Scheme::kAdaARI), *traits);
  std::printf("%s\n", after.to_string().c_str());

  std::printf("before: %-38s  IPC %.3f\n", before.verdict.c_str(),
              before.metrics.ipc);
  std::printf("after:  %-38s  IPC %.3f\n\n", after.verdict.c_str(),
              after.metrics.ipc);

  // Visualize where the reply traffic concentrates (the §4.1 "hot
  // regions" around memory controllers).
  Config cfg = apply_scheme(base, Scheme::kAdaBaseline);
  GpgpuSim sim(cfg, *traits);
  sim.run_with_warmup();
  std::printf("%s\n", injection_heatmap(sim.reply_net(),
                                        sim.collect().cycles).c_str());
  std::printf("%s", link_heatmap(sim.reply_net(),
                                 sim.collect().cycles).c_str());
  return 0;
}
