// arinoc_sim — the command-line simulator driver.
//
//   arinoc_sim [options]
//     --benchmark <name>      synthetic workload (default: bfs)
//     --replay <file>         trace-file workload (overrides --benchmark)
//     --scheme <name>         XY-Baseline | XY-ARI | Ada-Baseline |
//                             Ada-MultiPort | Ada-ARI | Acc-Supply |
//                             Acc-Consume | Acc-Both-NoPriority |
//                             Raw-Baseline          (default: Ada-ARI)
//     --mesh <k>              k x k mesh             (default: 6)
//     --topology <spec>       fabric: mesh | torus | cmesh[:c] |
//                             chiplet[:CXxCY] | <topology file path>
//                             (default: mesh; cmesh concentration c
//                             defaults to 4, chiplet grid to 2x2 of
//                             --mesh-sized meshes; a path loads a
//                             file-driven fabric and sets --mcs from it)
//     --serdes <n>            chiplet-boundary extra link latency (default 4)
//     --emit-topology <path>  write the configured fabric as a topology
//                             file and exit (no simulation)
//     --mcs <n>               memory controllers     (default: 8)
//     --vcs <n>               virtual channels       (default: 4)
//     --cycles <n>            measured cycles        (default: 8000)
//     --warmup <n>            warmup cycles          (default: 2000)
//     --seed <n>              RNG seed               (default: 1)
//     --da2mesh               use the DA2mesh overlay reply fabric
//     --placement <p>         diamond | top-bottom | column
//     --json                  machine-readable metrics on stdout
//     --list-benchmarks       print the 30-benchmark suite and exit
//
//   Execution engine (synthetic benchmarks run through arinoc::exec):
//     --jobs <n>              exec pool size (single runs need just 1)
//     --no-cache              disable the on-disk result cache
//     --cache-dir <dir>       result-cache directory (default:
//                             $ARINOC_CACHE_DIR or .arinoc-cache)
//   A cache hit replays the stored metrics byte-identically instead of
//   re-simulating. Replay runs bypass the cache (the cache key covers
//   named benchmarks, not trace file contents).
//
//   Observability (see docs/observability.md; all off by default):
//     --trace                 record the packet-lifecycle event trace
//     --trace-out <file>      Chrome trace-event JSON path (implies
//                             --trace; default: arinoc-trace.json)
//     --trace-capacity <n>    trace ring size in events (default: 65536)
//     --sample-interval <n>   telemetry sample every n cycles (0 = off)
//     --sample-out <file>     telemetry JSONL path (needs --sample-interval)
//     --counters-out <file>   dump the counter registry as JSON after the
//                             run
//     --attr-out <file>       latency-attribution report JSON (per-stage
//                             breakdown, top-k bottlenecks, congestion
//                             series; see docs/observability.md)
//     --attr-html <file>      self-contained HTML dashboard: fabric heatmap
//                             with a time-window slider over the congestion
//                             series (implies attribution)
//     --attr-window <n>       congestion-series window in cycles (512)
//     --self-profile <file>   per-epoch simulator self-profile JSONL:
//                             subsystem wall-clock + activity wake rates
//   Environment fallbacks: ARINOC_TRACE (any value), ARINOC_TRACE_OUT,
//   ARINOC_SAMPLE_INTERVAL, ARINOC_SAMPLE_OUT. Observed runs execute the
//   simulator directly (same per-cell seed derivation as the execution
//   engine, so metrics match the unobserved path bit-for-bit) and bypass
//   the result cache. Trace/telemetry files are written even when the
//   watchdog trips — the cycles leading up to a deadlock are exactly the
//   ones worth looking at.
//
//   Fault injection (reply network; all rates default to 0 = off):
//     --fault-corrupt <p>     per-link/cycle transient corruption prob.
//     --fault-stall <p>       per-link/cycle stall-window probability
//     --fault-stall-len <n>   stall window length in cycles (default: 20)
//     --fault-port-fail <p>   per-link/cycle permanent failure probability
//     --fault-credit-loss <p> per-link/cycle credit-loss probability
//     --fault-seed <n>        fault RNG stream seed    (default: 12345)
//     --no-recovery           disable CRC drop + ACK/NACK retransmission
//
//   Simulation core:
//     --no-activity           step every component every cycle instead of
//                             only active ones (bit-identical results,
//                             slower; see docs/performance.md)
//     --threads <n>           network threads (spatial domain decomposition;
//                             1 = serial, 0 = one per hardware core; results
//                             are bit-identical across thread counts; n >
//                             node count is a usage error; see
//                             docs/performance.md). Env: ARINOC_THREADS.
//     --domain-epoch          with --threads > 1: synchronize domains every
//                             min-link-latency cycles instead of every cycle
//                             (exact — delivery times are unchanged)
//
//   Watchdog (on by default):
//     --no-watchdog           disable deadlock/livelock detection
//     --watchdog-deadlock <K> no-movement window        (default: 5000)
//     --watchdog-livelock <n> per-packet age ceiling    (default: 50000)
//     --audit-interval <n>    credit-invariant audit period (default: off)
//
//   Open-loop serving + admission control (see docs/workloads.md,
//   docs/noc.md; all off by default — off means bit-identical to previous
//   releases):
//     --pace <spec>           open-loop front end: pace spec or pace-file
//                             path replaces the closed-loop cores
//                             (constant:0.05, diurnal:..., burst:...,
//                             flash:..., or a *.pace file)
//     --load <x>              load factor scaling the pace profile (1.0)
//     --admission             enable NI admission control + the
//                             NORMAL/THROTTLED/SHEDDING degradation FSM
//     --slo <cycles>          end-to-end p99 latency objective; a run that
//                             finishes above it exits 6 (open-loop runs
//                             check client e2e p99, closed-loop runs check
//                             reply-network p99)
//   Missing/unreadable trace or pace files are rejected up front with exit
//   code 2, before any simulation state is built. File-paced open-loop runs
//   bypass the result cache (the cache key covers the pace spec string, not
//   pace-file contents).
//
//   Regression sentinel (see docs/observability.md):
//     --baseline-write <dir>  anchor this cell: write its golden baseline
//                             entry (deterministic JSON keyed by benchmark/
//                             scheme/fabric/config-hash) under <dir>
//     --baseline-check <dir>  compare this run against the anchored entry;
//                             out-of-tolerance metric movement exits 7 with
//                             a per-metric delta report on stderr
//     --ignore-improvements   with --baseline-check: out-of-tolerance moves
//                             in the good direction (IPC up, latency down)
//                             do not fail
//   Replay runs reject both baseline flags (exit 2): the canonical-config
//   hash keying the store covers named benchmarks, not trace-file contents.
//   --json output carries an "arinoc-provenance-v1" block (version, config
//   hash, cell coordinates, host, wall time) alongside the metrics.
//
//   Every output path (--trace-out, --sample-out, --counters-out,
//   --attr-out, --attr-html, --self-profile, --baseline-*) is checked up
//   front: a parent directory that does not exist is a usage error (exit 2,
//   clear message) before any simulation state is built.
//
//   Exit codes: 0 ok, 1 runtime error, 2 usage/config error,
//               3 deadlock detected, 4 livelock detected,
//               5 invariant violation detected, 6 SLO violated,
//               7 regression detected (--baseline-check).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "core/watchdog.hpp"
#include "core/report.hpp"
#include "exec/options.hpp"
#include "exec/result_cache.hpp"
#include "exec/runner.hpp"
#include "obs/attr.hpp"
#include "obs/regress/baseline.hpp"
#include "obs/regress/compare.hpp"
#include "obs/regress/provenance.hpp"
#include "obs/registry.hpp"
#include "obs/selfprof.hpp"
#include "obs/trace.hpp"
#include "topo/fabric.hpp"
#include "topo/file.hpp"
#include "workloads/suite.hpp"
#include "workloads/tracefile.hpp"

using namespace arinoc;

namespace {

std::optional<Scheme> parse_scheme(const std::string& name) {
  for (Scheme s :
       {Scheme::kXYBaseline, Scheme::kXYARI, Scheme::kAdaBaseline,
        Scheme::kAdaMultiPort, Scheme::kAdaARI, Scheme::kAccSupply,
        Scheme::kAccConsume, Scheme::kAccBothNoPrio, Scheme::kRawBaseline}) {
    if (name == scheme_name(s)) return s;
  }
  return std::nullopt;
}

void print_human(const Metrics& m, bool faults, bool serving) {
  TextTable t({"metric", "value"});
  t.add_row({"cycles", std::to_string(m.cycles)});
  t.add_row({"IPC (warp instr/cycle)", fmt(m.ipc)});
  t.add_row({"request packet latency", fmt(m.request_latency, 1)});
  t.add_row({"reply packet latency", fmt(m.reply_latency, 1)});
  t.add_row({"reply latency p50/p95/p99",
             fmt(m.reply_latency_p50, 1) + " / " +
                 fmt(m.reply_latency_p95, 1) + " / " +
                 fmt(m.reply_latency_p99, 1)});
  t.add_row({"MC stall cycles", std::to_string(m.mc_stall_cycles)});
  t.add_row({"reply injection link util", fmt(m.reply_injection_util)});
  t.add_row({"reply in-network link util", fmt(m.reply_internal_util)});
  t.add_row({"NI occupancy (pkts)", fmt(m.ni_occupancy_pkts, 1)});
  t.add_row({"L1 / L2 hit rate", fmt_pct(m.l1_hit_rate) + " / " +
                                     fmt_pct(m.l2_hit_rate)});
  t.add_row({"DRAM row hit rate", fmt_pct(m.dram_row_hit_rate)});
  t.add_row({"energy (nJ)", fmt(m.energy.total_nj(), 0)});
  if (faults) {
    t.add_row({"flits corrupted", std::to_string(m.flits_corrupted)});
    t.add_row({"packets corrupted", std::to_string(m.packets_corrupted)});
    t.add_row({"packets retransmitted",
               std::to_string(m.packets_retransmitted)});
    t.add_row({"packets recovered", std::to_string(m.packets_recovered)});
    t.add_row({"packets lost", std::to_string(m.packets_lost)});
    t.add_row({"duplicates dropped", std::to_string(m.duplicates_dropped)});
    t.add_row({"credits lost", std::to_string(m.credits_lost)});
    t.add_row({"link stall events", std::to_string(m.link_stall_events)});
    t.add_row({"port failures", std::to_string(m.port_failures)});
    t.add_row({"retransmitted flits",
               std::to_string(m.activity.noc_retx_flits)});
  }
  if (serving) {
    t.add_row({"requests offered/completed",
               std::to_string(m.requests_offered) + " / " +
                   std::to_string(m.requests_completed)});
    t.add_row({"offered rate / goodput",
               fmt(m.offered_rate, 4) + " / " + fmt(m.goodput, 4)});
    t.add_row({"requests shed/deferred",
               std::to_string(m.requests_shed) + " / " +
                   std::to_string(m.requests_deferred)});
    t.add_row({"e2e latency p50/p99/p99.9",
               fmt(m.e2e_latency_p50, 1) + " / " + fmt(m.e2e_latency_p99, 1) +
                   " / " + fmt(m.e2e_latency_p999, 1)});
    t.add_row({"cycles throttled/shedding",
               std::to_string(m.cycles_throttled) + " / " +
                   std::to_string(m.cycles_shedding)});
    t.add_row({"degrade transitions", std::to_string(m.degrade_transitions)});
    t.add_row({"watchdog pre-trips", std::to_string(m.watchdog_pre_trips)});
  }
  std::printf("%s", t.to_string().c_str());
}

struct ObsOptions {
  bool trace = false;
  std::string trace_out;     ///< Defaults to "arinoc-trace.json" if tracing.
  std::size_t trace_capacity = obs::PacketTracer::kDefaultCapacity;
  std::string sample_out;    ///< Telemetry JSONL (needs --sample-interval).
  std::string counters_out;  ///< Counter-registry JSON dump.
  std::string attr_out;      ///< Latency-attribution report JSON.
  std::string attr_html;     ///< Attribution dashboard (self-contained HTML).
  Cycle attr_window = 0;     ///< Congestion-series window (0 = default).
  std::string self_profile;  ///< Simulator self-profile JSONL.

  /// Any observer active means the run executes the simulator directly
  /// instead of going through the exec engine (whose workers own their
  /// simulators, so there is nothing to attach a tracer to).
  bool any() const {
    return trace || !sample_out.empty() || !counters_out.empty() ||
           !attr_out.empty() || !attr_html.empty() || !self_profile.empty();
  }
  bool attr() const { return !attr_out.empty() || !attr_html.empty(); }
};

ObsOptions obs_from_env() {
  ObsOptions obs;
  if (std::getenv("ARINOC_TRACE") != nullptr) obs.trace = true;
  if (const char* out = std::getenv("ARINOC_TRACE_OUT")) {
    obs.trace = true;
    obs.trace_out = out;
  }
  if (const char* out = std::getenv("ARINOC_SAMPLE_OUT")) obs.sample_out = out;
  return obs;
}

/// Applies a --topology spec to the config: a generator keyword (with
/// optional parameters) or a topology file path. Returns false (after
/// printing a usage error) on a malformed generator spec.
bool apply_topology_spec(const std::string& spec, Config& cfg) {
  if (spec == "mesh" || spec == "torus") {
    cfg.fabric = spec;
    return true;
  }
  if (spec == "cmesh" || spec.rfind("cmesh:", 0) == 0) {
    cfg.fabric = "cmesh";
    if (spec.size() > 6) {
      char* end = nullptr;
      cfg.cmesh_concentration = static_cast<std::uint32_t>(
          std::strtoul(spec.c_str() + 6, &end, 10));
      if (end == nullptr || *end != '\0' || cfg.cmesh_concentration == 0) {
        std::fprintf(stderr, "malformed cmesh spec '%s' (want cmesh[:c])\n",
                     spec.c_str());
        return false;
      }
    }
    return true;
  }
  if (spec == "chiplet" || spec.rfind("chiplet:", 0) == 0) {
    cfg.fabric = "chiplet";
    if (spec.size() > 8) {
      char* end = nullptr;
      cfg.chiplets_x = static_cast<std::uint32_t>(
          std::strtoul(spec.c_str() + 8, &end, 10));
      if (end == nullptr || *end != 'x') {
        std::fprintf(stderr,
                     "malformed chiplet spec '%s' (want chiplet[:CXxCY])\n",
                     spec.c_str());
        return false;
      }
      char* end2 = nullptr;
      cfg.chiplets_y = static_cast<std::uint32_t>(
          std::strtoul(end + 1, &end2, 10));
      if (end2 == nullptr || *end2 != '\0' || cfg.chiplets_x == 0 ||
          cfg.chiplets_y == 0) {
        std::fprintf(stderr,
                     "malformed chiplet spec '%s' (want chiplet[:CXxCY])\n",
                     spec.c_str());
        return false;
      }
    }
    return true;
  }
  // Anything else is a topology file path; existence is checked after
  // argument parsing, alongside the other input files.
  cfg.fabric = "file";
  cfg.topology_file = spec;
  return true;
}

/// True when the pace spec names a file rather than a built-in generator
/// (mirrors PaceProfile::parse_spec's dispatch rule).
bool pace_spec_is_file(const std::string& spec) {
  return spec.find('/') != std::string::npos ||
         (spec.size() >= 5 && spec.compare(spec.size() - 5, 5, ".pace") == 0);
}

/// Fail-fast existence/readability check for input files named on the
/// command line: a typo'd path must die with a clear usage error before
/// any simulation state is built, not as a mid-run exception.
bool require_readable(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (in.good()) return true;
  std::fprintf(stderr, "error: %s '%s' is missing or unreadable\n", what,
               path.c_str());
  return false;
}

/// Fail-fast parent-directory check for output files named on the command
/// line: writing into a directory that does not exist must die with a clear
/// usage error before any simulation state is built, not as a mid-run
/// "cannot write" after minutes of simulation.
bool require_parent_dir(const std::string& path, const char* flag) {
  if (path.empty() || obs::regress::parent_dir_exists(path)) return true;
  std::fprintf(stderr,
               "error: %s '%s': parent directory '%s' does not exist\n", flag,
               path.c_str(), obs::regress::parent_dir_of(path).c_str());
  return false;
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) out << body;
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  return true;
}

/// Runs an observed simulation: attaches the requested observers, runs, and
/// writes every requested artifact — including after a watchdog trip.
/// Returns the process exit status; fills `m` and `breakdown` on success.
int run_observed(GpgpuSim& sim, const ObsOptions& obs, Cycle sample_interval,
                 Metrics& m, std::string& breakdown) {
  obs::PacketTracer tracer(obs.trace_capacity);
  if (obs.trace) sim.attach_tracer(&tracer);
  if (sample_interval > 0) sim.enable_sampling(sample_interval);
  obs::LatencyAttributor attr(
      obs.attr_window > 0 ? obs.attr_window
                          : obs::LatencyAttributor::kDefaultWindow);
  if (obs.attr()) sim.attach_attributor(&attr);
  obs::SelfProfiler prof;
  if (!obs.self_profile.empty()) sim.attach_self_profiler(&prof);

  int status = 0;
  std::string trip_text;
  try {
    sim.run_with_warmup();
  } catch (const WatchdogTrip& trip) {
    status = trip.exit_status();
    trip_text = std::string(trip.what()) + "\n" + trip.dump();
  }
  if (sample_interval > 0) sim.flush_sampler();
  if (!obs.self_profile.empty()) prof.finish(sim.now());
  if (status == 0) m = sim.collect();

  if (obs.trace) {
    const std::string path = obs.trace_out.empty()
                                 ? std::string("arinoc-trace.json")
                                 : obs.trace_out;
    if (!write_file(path, tracer.to_chrome_json()) && status == 0) status = 1;
    breakdown = tracer.breakdown_report();
  }
  if (!obs.sample_out.empty() && sim.sampler() != nullptr) {
    if (!write_file(obs.sample_out, sim.sampler()->to_jsonl()) && status == 0)
      status = 1;
  }
  if (!obs.counters_out.empty()) {
    obs::CounterRegistry reg;
    sim.register_counters(&reg);
    if (!write_file(obs.counters_out, reg.to_json() + "\n") && status == 0)
      status = 1;
  }
  if (!obs.attr_out.empty()) {
    if (!write_file(obs.attr_out, attr.to_json() + "\n") && status == 0)
      status = 1;
  }
  if (!obs.attr_html.empty()) {
    const std::string html =
        obs::attr_html_document(attr, &sim.fabric().graph());
    if (!write_file(obs.attr_html, html) && status == 0) status = 1;
  }
  if (!obs.self_profile.empty()) {
    if (!write_file(obs.self_profile, prof.to_jsonl()) && status == 0)
      status = 1;
  }
  if (!trip_text.empty()) std::fprintf(stderr, "%s", trip_text.c_str());
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::string benchmark = "bfs";
  std::string replay_path;
  Scheme scheme = Scheme::kAdaARI;
  Config cfg = make_base_config();
  bool da2mesh = false;
  bool json = false;
  std::string emit_topology_path;
  std::string baseline_write;  ///< --baseline-write dir ("" = off).
  std::string baseline_check;  ///< --baseline-check dir ("" = off).
  bool ignore_improvements = false;
  double slo_cycles = 0.0;  ///< 0 = no SLO check.
  ObsOptions obs = obs_from_env();

  exec::ExecOptions exec_opts = exec::options_from_env(true);
  exec_opts.jobs = 1;        // One cell; a wide pool buys nothing here.
  exec_opts.progress = false;
  if (!exec::parse_exec_flags(argc, argv, exec_opts)) return 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--benchmark") {
      benchmark = value();
    } else if (arg == "--replay") {
      replay_path = value();
    } else if (arg == "--trace") {
      obs.trace = true;
    } else if (arg == "--trace-out") {
      obs.trace = true;
      obs.trace_out = value();
    } else if (arg == "--trace-capacity") {
      obs.trace_capacity = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--sample-out") {
      obs.sample_out = value();
    } else if (arg == "--counters-out") {
      obs.counters_out = value();
    } else if (arg == "--attr-out") {
      obs.attr_out = value();
    } else if (arg == "--attr-html") {
      obs.attr_html = value();
    } else if (arg == "--attr-window") {
      obs.attr_window = std::strtoull(value(), nullptr, 10);
      if (obs.attr_window == 0) {
        std::fprintf(stderr, "--attr-window requires a positive cycle count\n");
        return 2;
      }
    } else if (arg == "--self-profile") {
      obs.self_profile = value();
    } else if (arg == "--scheme") {
      const std::string name = value();
      const auto s = parse_scheme(name);
      if (!s) {
        std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
        return 2;
      }
      scheme = *s;
    } else if (arg == "--mesh") {
      cfg.mesh_width = cfg.mesh_height =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--topology") {
      if (!apply_topology_spec(value(), cfg)) return 2;
    } else if (arg == "--serdes") {
      cfg.serdes_latency =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--emit-topology") {
      emit_topology_path = value();
    } else if (arg == "--mcs") {
      cfg.num_mcs =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--vcs") {
      cfg.num_vcs =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--cycles") {
      cfg.run_cycles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--warmup") {
      cfg.warmup_cycles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--fault-corrupt") {
      cfg.fault_corrupt_rate = std::strtod(value(), nullptr);
    } else if (arg == "--fault-stall") {
      cfg.fault_link_stall_rate = std::strtod(value(), nullptr);
    } else if (arg == "--fault-stall-len") {
      cfg.fault_link_stall_len =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--fault-port-fail") {
      cfg.fault_port_fail_rate = std::strtod(value(), nullptr);
    } else if (arg == "--fault-credit-loss") {
      cfg.fault_credit_loss_rate = std::strtod(value(), nullptr);
    } else if (arg == "--fault-seed") {
      cfg.fault_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--no-recovery") {
      cfg.fault_recovery = false;
    } else if (arg == "--pace") {
      cfg.open_loop = true;
      cfg.pace_spec = value();
    } else if (arg == "--load") {
      cfg.pace_scale = std::strtod(value(), nullptr);
    } else if (arg == "--admission") {
      cfg.admission_enabled = true;
    } else if (arg == "--slo") {
      slo_cycles = std::strtod(value(), nullptr);
      if (slo_cycles <= 0.0) {
        std::fprintf(stderr, "--slo requires a positive cycle count\n");
        return 2;
      }
    } else if (arg == "--no-activity") {
      cfg.activity_driven = false;
    } else if (arg == "--domain-epoch") {
      cfg.domain_epoch = true;
    } else if (arg == "--no-watchdog") {
      cfg.watchdog_enabled = false;
    } else if (arg == "--watchdog-deadlock") {
      cfg.watchdog_deadlock_window = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--watchdog-livelock") {
      cfg.watchdog_livelock_age = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--audit-interval") {
      cfg.watchdog_audit_interval = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--da2mesh") {
      da2mesh = true;
    } else if (arg == "--placement") {
      const std::string p = value();
      if (p == "diamond") {
        cfg.mc_placement = McPlacement::kDiamond;
      } else if (p == "top-bottom") {
        cfg.mc_placement = McPlacement::kTopBottom;
      } else if (p == "column") {
        cfg.mc_placement = McPlacement::kColumn;
      } else {
        std::fprintf(stderr, "unknown placement '%s'\n", p.c_str());
        return 2;
      }
    } else if (arg == "--baseline-write") {
      baseline_write = value();
    } else if (arg == "--baseline-check") {
      baseline_check = value();
    } else if (arg == "--ignore-improvements") {
      ignore_improvements = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-benchmarks") {
      for (const auto& b : benchmark_suite()) {
        std::printf("%-16s %s\n", b.name.c_str(),
                    sensitivity_name(b.sensitivity));
      }
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  // Intra-simulation parallelism (--threads / ARINOC_THREADS, parsed by the
  // shared exec flags above). Results are bit-identical across thread
  // counts and `threads` is excluded from the canonical config hash, so
  // result caches and baseline stores are shared with serial runs.
  cfg.threads = exec_opts.threads;

  if (!obs.sample_out.empty() && exec_opts.sample_interval == 0) {
    std::fprintf(stderr, "--sample-out requires --sample-interval <n>\n");
    return 2;
  }
  if (!baseline_write.empty() && !baseline_check.empty()) {
    std::fprintf(stderr,
                 "--baseline-write and --baseline-check are mutually "
                 "exclusive (anchor first, then check)\n");
    return 2;
  }
  if ((!baseline_write.empty() || !baseline_check.empty()) &&
      !replay_path.empty()) {
    std::fprintf(stderr,
                 "--baseline-write/--baseline-check do not support --replay: "
                 "the canonical-config hash keying the golden store covers "
                 "named benchmarks, not trace-file contents\n");
    return 2;
  }

  // Fail fast on output paths: a parent directory that does not exist is a
  // usage error (exit 2) caught before any simulation state is built.
  if (!require_parent_dir(obs.trace_out, "--trace-out") ||
      !require_parent_dir(obs.sample_out, "--sample-out") ||
      !require_parent_dir(obs.counters_out, "--counters-out") ||
      !require_parent_dir(obs.attr_out, "--attr-out") ||
      !require_parent_dir(obs.attr_html, "--attr-html") ||
      !require_parent_dir(obs.self_profile, "--self-profile") ||
      !require_parent_dir(emit_topology_path, "--emit-topology")) {
    return 2;
  }
  // --baseline-write creates its store directory (one level); its parent
  // must exist. --baseline-check reads an existing store.
  if (!baseline_write.empty() &&
      !require_parent_dir(baseline_write, "--baseline-write")) {
    return 2;
  }
  if (!baseline_check.empty()) {
    if (!obs::regress::parent_dir_exists(baseline_check + "/x")) {
      std::fprintf(stderr,
                   "error: --baseline-check '%s': directory does not exist "
                   "(anchor it first with --baseline-write)\n",
                   baseline_check.c_str());
      return 2;
    }
  }

  // Fail fast on input files: a missing/unreadable trace or pace file is a
  // usage error (exit 2) caught before any simulation state exists.
  if (!replay_path.empty() &&
      !require_readable(replay_path, "trace file")) {
    return 2;
  }
  if (cfg.open_loop && pace_spec_is_file(cfg.pace_spec)) {
    if (!require_readable(cfg.pace_spec, "pace file")) return 2;
    // Pace-file contents are not part of the exec cache key (only the path
    // string is), so a cached result could silently go stale if the file
    // changed. Never cache file-paced cells.
    exec_opts.cache_enabled = false;
  }
  if (cfg.fabric == "file") {
    // Fail fast on the topology file: parse it up front so a malformed
    // fabric dies with a clear location-tagged message (exit 2) before any
    // simulation state exists. Its MC count defines the system's MCs.
    // (Caching stays safe: the cache key hashes the file contents.)
    if (!require_readable(cfg.topology_file, "topology file")) return 2;
    try {
      const topo::FabricGraph g = topo::parse_topology_file(cfg.topology_file);
      cfg.num_mcs = static_cast<std::uint32_t>(
          g.count_role(topo::NodeRole::kMC));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (!emit_topology_path.empty()) {
    // Emit the configured fabric as a topology file and exit: the written
    // file reloads via --topology <path> as the identical graph.
    try {
      const topo::Fabric fab = topo::make_fabric(cfg);
      topo::write_topology_file(fab.graph(), emit_topology_path);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  Metrics m;
  std::string breakdown;
  // Identity of the cell that actually ran — filled by every branch below,
  // consumed by the provenance block (--json) and the baseline store.
  Config resolved_cfg = cfg;
  std::string fabric_tag;
  const auto wall_start = std::chrono::steady_clock::now();
  if (!replay_path.empty()) {
    // Replay runs bypass the exec cache: the cache key covers named
    // benchmarks, not trace file contents.
    Config replayed = apply_scheme(cfg, scheme);
    const std::string err = replayed.validate();
    if (!err.empty()) {
      std::fprintf(stderr, "invalid configuration: %s\n", err.c_str());
      return 2;
    }
    resolved_cfg = replayed;
    fabric_tag = da2mesh ? "da2mesh" : exec::fabric_cache_tag(replayed);
    try {
      Trace trace = Trace::load(replay_path);
      TraceFileSource source(std::move(trace), replayed.num_ccs(),
                             replayed.warps_per_core, replayed.line_bytes);
      GpgpuSim sim(replayed, &source, da2mesh);
      const int status =
          run_observed(sim, obs, exec_opts.sample_interval, m, breakdown);
      if (status != 0) return status;
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else if (obs.any()) {
    // Observed runs execute the simulator directly — the exec workers own
    // their simulators, so there is nothing to attach a tracer to. The
    // config goes through the same resolve_cell_config() as the exec path,
    // so seed derivation (and therefore every metric) matches bit-for-bit.
    const BenchmarkTraits* traits = find_benchmark(benchmark);
    if (traits == nullptr) {
      std::fprintf(stderr, "unknown benchmark '%s' (see --list-benchmarks)\n",
                   benchmark.c_str());
      return 2;
    }
    try {
      const Config resolved = resolve_cell_config(cfg, scheme, benchmark);
      resolved_cfg = resolved;
      fabric_tag = da2mesh ? "da2mesh" : exec::fabric_cache_tag(resolved);
      GpgpuSim sim(resolved, *traits, da2mesh);
      const int status =
          run_observed(sim, obs, exec_opts.sample_interval, m, breakdown);
      if (status != 0) return status;
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else {
    if (find_benchmark(benchmark) == nullptr) {
      std::fprintf(stderr, "unknown benchmark '%s' (see --list-benchmarks)\n",
                   benchmark.c_str());
      return 2;
    }
    // One-cell grid on the execution engine: crash isolation surfaces any
    // watchdog trip as a structured per-cell error, and the result cache
    // replays unchanged configurations without re-simulating.
    exec::ExperimentRunner runner(cfg, exec_opts);
    const exec::CellSpec spec{"cli", scheme, benchmark, nullptr, da2mesh};
    const auto results = runner.run({spec});
    const exec::CellResult& r = results.at(0);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n%s", r.error.c_str(),
                   r.error_detail.c_str());
      return r.exit_status;
    }
    m = r.metrics;
    resolved_cfg = runner.resolve(spec);  // Cannot throw: the cell ran.
    fabric_tag = r.fabric;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Cell provenance: shared by the --json block and the baseline store.
  obs::regress::Provenance prov = obs::regress::collect_provenance();
  prov.config_hash = obs::regress::config_hash_hex(resolved_cfg);
  prov.scheme = scheme_name(scheme);
  prov.benchmark = replay_path.empty() ? benchmark : replay_path;
  prov.fabric = fabric_tag;
  prov.seed = resolved_cfg.seed;
  prov.wall_s = wall_s;

  if (!baseline_write.empty() || !baseline_check.empty()) {
    obs::regress::BaselineEntry entry;
    entry.provenance = prov;
    entry.metrics = obs::regress::snapshot_metrics(m);
    try {
      if (!baseline_write.empty()) {
        const std::string path =
            obs::regress::write_baseline_entry(baseline_write, entry);
        std::fprintf(stderr, "baseline anchored: %s\n", path.c_str());
      } else {
        const obs::regress::BaselineEntry anchored =
            obs::regress::load_baseline_entry(baseline_check, entry);
        obs::regress::CompareOptions copts;
        copts.ignore_improvements = ignore_improvements;
        const obs::regress::CompareReport report =
            obs::regress::compare_entries(anchored, entry, copts);
        if (report.failed) {
          std::fprintf(stderr, "REGRESSION vs %s/%s:\n%s",
                       baseline_check.c_str(), entry.file_name().c_str(),
                       report.text().c_str());
          return 7;
        }
        std::fprintf(stderr, "baseline check ok: %zu metrics within "
                             "tolerance (%zu improved, %zu new)\n",
                     entry.metrics.size(),
                     report.count(obs::regress::Verdict::kImproved),
                     report.count(obs::regress::Verdict::kNew));
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      // A missing anchor is a configuration error (the store does not
      // cover this cell); write-side I/O failures are runtime errors.
      return baseline_check.empty() ? 1 : 2;
    }
  }

  if (json) {
    std::printf("%s\n",
                metrics_to_json(m, 2, obs::regress::provenance_json(prov))
                    .c_str());
  } else {
    std::printf("scheme: %s   workload: %s\n", scheme_name(scheme),
                replay_path.empty() ? benchmark.c_str() : replay_path.c_str());
    if (cfg.open_loop) {
      std::printf("pace: %s   load: %.3g   admission: %s\n",
                  cfg.pace_spec.c_str(), cfg.pace_scale,
                  cfg.admission_enabled ? "on" : "off");
    }
    print_human(m, cfg.fault_enabled(),
                cfg.open_loop || cfg.admission_enabled);
    if (!breakdown.empty()) std::printf("\n%s", breakdown.c_str());
  }

  // SLO gate: open-loop runs are judged on client end-to-end p99 (queueing
  // included); closed-loop runs on reply-network p99.
  if (slo_cycles > 0.0) {
    const double p99 =
        cfg.open_loop ? m.e2e_latency_p99 : m.reply_latency_p99;
    if (p99 > slo_cycles) {
      std::fprintf(stderr, "SLO violated: p99 latency %.1f > objective %.1f\n",
                   p99, slo_cycles);
      return 6;
    }
  }
  return 0;
}
