// arinoc_sim — the command-line simulator driver.
//
//   arinoc_sim [options]
//     --benchmark <name>      synthetic workload (default: bfs)
//     --trace <file>          trace-file workload (overrides --benchmark)
//     --scheme <name>         XY-Baseline | XY-ARI | Ada-Baseline |
//                             Ada-MultiPort | Ada-ARI | Acc-Supply |
//                             Acc-Consume | Acc-Both-NoPriority |
//                             Raw-Baseline          (default: Ada-ARI)
//     --mesh <k>              k x k mesh             (default: 6)
//     --mcs <n>               memory controllers     (default: 8)
//     --vcs <n>               virtual channels       (default: 4)
//     --cycles <n>            measured cycles        (default: 8000)
//     --warmup <n>            warmup cycles          (default: 2000)
//     --seed <n>              RNG seed               (default: 1)
//     --da2mesh               use the DA2mesh overlay reply fabric
//     --placement <p>         diamond | top-bottom | column
//     --json                  machine-readable metrics on stdout
//     --list-benchmarks       print the 30-benchmark suite and exit
//
//   Execution engine (synthetic benchmarks run through arinoc::exec):
//     --jobs <n>              exec pool size (single runs need just 1)
//     --no-cache              disable the on-disk result cache
//     --cache-dir <dir>       result-cache directory (default:
//                             $ARINOC_CACHE_DIR or .arinoc-cache)
//   A cache hit replays the stored metrics byte-identically instead of
//   re-simulating. Trace-file runs bypass the cache (the cache key covers
//   named benchmarks, not trace file contents).
//
//   Fault injection (reply network; all rates default to 0 = off):
//     --fault-corrupt <p>     per-link/cycle transient corruption prob.
//     --fault-stall <p>       per-link/cycle stall-window probability
//     --fault-stall-len <n>   stall window length in cycles (default: 20)
//     --fault-port-fail <p>   per-link/cycle permanent failure probability
//     --fault-credit-loss <p> per-link/cycle credit-loss probability
//     --fault-seed <n>        fault RNG stream seed    (default: 12345)
//     --no-recovery           disable CRC drop + ACK/NACK retransmission
//
//   Watchdog (on by default):
//     --no-watchdog           disable deadlock/livelock detection
//     --watchdog-deadlock <K> no-movement window        (default: 5000)
//     --watchdog-livelock <n> per-packet age ceiling    (default: 50000)
//     --audit-interval <n>    credit-invariant audit period (default: off)
//
//   Exit codes: 0 ok, 1 runtime error, 2 usage/config error,
//               3 deadlock detected, 4 livelock detected,
//               5 invariant violation detected.
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "core/watchdog.hpp"
#include "core/report.hpp"
#include "exec/options.hpp"
#include "exec/runner.hpp"
#include "workloads/suite.hpp"
#include "workloads/tracefile.hpp"

using namespace arinoc;

namespace {

std::optional<Scheme> parse_scheme(const std::string& name) {
  for (Scheme s :
       {Scheme::kXYBaseline, Scheme::kXYARI, Scheme::kAdaBaseline,
        Scheme::kAdaMultiPort, Scheme::kAdaARI, Scheme::kAccSupply,
        Scheme::kAccConsume, Scheme::kAccBothNoPrio, Scheme::kRawBaseline}) {
    if (name == scheme_name(s)) return s;
  }
  return std::nullopt;
}

void print_human(const Metrics& m, bool faults) {
  TextTable t({"metric", "value"});
  t.add_row({"cycles", std::to_string(m.cycles)});
  t.add_row({"IPC (warp instr/cycle)", fmt(m.ipc)});
  t.add_row({"request packet latency", fmt(m.request_latency, 1)});
  t.add_row({"reply packet latency", fmt(m.reply_latency, 1)});
  t.add_row({"MC stall cycles", std::to_string(m.mc_stall_cycles)});
  t.add_row({"reply injection link util", fmt(m.reply_injection_util)});
  t.add_row({"reply in-network link util", fmt(m.reply_internal_util)});
  t.add_row({"NI occupancy (pkts)", fmt(m.ni_occupancy_pkts, 1)});
  t.add_row({"L1 / L2 hit rate", fmt_pct(m.l1_hit_rate) + " / " +
                                     fmt_pct(m.l2_hit_rate)});
  t.add_row({"DRAM row hit rate", fmt_pct(m.dram_row_hit_rate)});
  t.add_row({"energy (nJ)", fmt(m.energy.total_nj(), 0)});
  if (faults) {
    t.add_row({"flits corrupted", std::to_string(m.flits_corrupted)});
    t.add_row({"packets corrupted", std::to_string(m.packets_corrupted)});
    t.add_row({"packets retransmitted",
               std::to_string(m.packets_retransmitted)});
    t.add_row({"packets recovered", std::to_string(m.packets_recovered)});
    t.add_row({"packets lost", std::to_string(m.packets_lost)});
    t.add_row({"duplicates dropped", std::to_string(m.duplicates_dropped)});
    t.add_row({"credits lost", std::to_string(m.credits_lost)});
    t.add_row({"link stall events", std::to_string(m.link_stall_events)});
    t.add_row({"port failures", std::to_string(m.port_failures)});
    t.add_row({"retransmitted flits",
               std::to_string(m.activity.noc_retx_flits)});
  }
  std::printf("%s", t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string benchmark = "bfs";
  std::string trace_path;
  Scheme scheme = Scheme::kAdaARI;
  Config cfg = make_base_config();
  bool da2mesh = false;
  bool json = false;

  exec::ExecOptions exec_opts = exec::options_from_env(true);
  exec_opts.jobs = 1;        // One cell; a wide pool buys nothing here.
  exec_opts.progress = false;
  if (!exec::parse_exec_flags(argc, argv, exec_opts)) return 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--benchmark") {
      benchmark = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--scheme") {
      const std::string name = value();
      const auto s = parse_scheme(name);
      if (!s) {
        std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
        return 2;
      }
      scheme = *s;
    } else if (arg == "--mesh") {
      cfg.mesh_width = cfg.mesh_height =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--mcs") {
      cfg.num_mcs =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--vcs") {
      cfg.num_vcs =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--cycles") {
      cfg.run_cycles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--warmup") {
      cfg.warmup_cycles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--fault-corrupt") {
      cfg.fault_corrupt_rate = std::strtod(value(), nullptr);
    } else if (arg == "--fault-stall") {
      cfg.fault_link_stall_rate = std::strtod(value(), nullptr);
    } else if (arg == "--fault-stall-len") {
      cfg.fault_link_stall_len =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--fault-port-fail") {
      cfg.fault_port_fail_rate = std::strtod(value(), nullptr);
    } else if (arg == "--fault-credit-loss") {
      cfg.fault_credit_loss_rate = std::strtod(value(), nullptr);
    } else if (arg == "--fault-seed") {
      cfg.fault_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--no-recovery") {
      cfg.fault_recovery = false;
    } else if (arg == "--no-watchdog") {
      cfg.watchdog_enabled = false;
    } else if (arg == "--watchdog-deadlock") {
      cfg.watchdog_deadlock_window = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--watchdog-livelock") {
      cfg.watchdog_livelock_age = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--audit-interval") {
      cfg.watchdog_audit_interval = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--da2mesh") {
      da2mesh = true;
    } else if (arg == "--placement") {
      const std::string p = value();
      if (p == "diamond") {
        cfg.mc_placement = McPlacement::kDiamond;
      } else if (p == "top-bottom") {
        cfg.mc_placement = McPlacement::kTopBottom;
      } else if (p == "column") {
        cfg.mc_placement = McPlacement::kColumn;
      } else {
        std::fprintf(stderr, "unknown placement '%s'\n", p.c_str());
        return 2;
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-benchmarks") {
      for (const auto& b : benchmark_suite()) {
        std::printf("%-16s %s\n", b.name.c_str(),
                    sensitivity_name(b.sensitivity));
      }
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  Metrics m;
  if (!trace_path.empty()) {
    // Trace runs bypass the exec cache: the cache key covers named
    // benchmarks, not trace file contents.
    Config traced = apply_scheme(cfg, scheme);
    const std::string err = traced.validate();
    if (!err.empty()) {
      std::fprintf(stderr, "invalid configuration: %s\n", err.c_str());
      return 2;
    }
    try {
      Trace trace = Trace::load(trace_path);
      TraceFileSource source(std::move(trace), traced.num_ccs(),
                             traced.warps_per_core, traced.line_bytes);
      GpgpuSim sim(traced, &source, da2mesh);
      sim.run_with_warmup();
      m = sim.collect();
    } catch (const WatchdogTrip& trip) {
      std::fprintf(stderr, "%s\n%s", trip.what(), trip.dump().c_str());
      return trip.exit_status();
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else {
    if (find_benchmark(benchmark) == nullptr) {
      std::fprintf(stderr, "unknown benchmark '%s' (see --list-benchmarks)\n",
                   benchmark.c_str());
      return 2;
    }
    // One-cell grid on the execution engine: crash isolation surfaces any
    // watchdog trip as a structured per-cell error, and the result cache
    // replays unchanged configurations without re-simulating.
    exec::ExperimentRunner runner(cfg, exec_opts);
    const auto results =
        runner.run({{"cli", scheme, benchmark, nullptr, da2mesh}});
    const exec::CellResult& r = results.at(0);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n%s", r.error.c_str(),
                   r.error_detail.c_str());
      return r.exit_status;
    }
    m = r.metrics;
  }

  if (json) {
    std::printf("%s\n", metrics_to_json(m).c_str());
  } else {
    std::printf("scheme: %s   workload: %s\n", scheme_name(scheme),
                trace_path.empty() ? benchmark.c_str() : trace_path.c_str());
    print_human(m, cfg.fault_enabled());
  }
  return 0;
}
